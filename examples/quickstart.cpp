// Quickstart: simulate pressure-driven flow through a small cylindrical
// vessel, check the physics, and time the kernel — the five-minute tour
// of the HemoFlow API.
//
//   build/examples/quickstart

#include <cstdio>

#include "geom/cylinder.hpp"
#include "lbm/solver.hpp"
#include "proxy/proxy_app.hpp"

int main() {
  using namespace hemo;

  // 1. A geometry: the proxy cylinder at scale x = 0.5 (length 42,
  //    radius 4), with a Zou-He velocity inlet and pressure outlet.
  geom::CylinderSpec spec;
  spec.scale = 0.5;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
  std::printf("geometry: %lld fluid points\n",
              static_cast<long long>(lattice->size()));

  // 2. A solver: BGK with tau = 0.9 (kinematic viscosity %.3f in lattice
  //    units), driven by a 1%% inlet velocity.
  lbm::SolverOptions options;
  options.tau = 0.9;
  options.inlet_velocity = 0.01;
  options.outlet_density = 1.0;
  lbm::Solver solver(lattice, options);
  std::printf("viscosity: %.4f (lattice units)\n",
              lbm::viscosity_of_tau(options.tau));

  // 3. Run and watch the flow develop.
  for (int block = 0; block < 5; ++block) {
    solver.run(200);
    double flux = 0.0;
    int count = 0;
    for (PointIndex i = 0; i < solver.size(); ++i) {
      if (lattice->coord(i).z != 21) continue;
      flux += solver.moments(i).uz;
      ++count;
    }
    std::printf("step %4lld: mean axial velocity at mid-channel = %.5f\n",
                static_cast<long long>(solver.step_count()),
                flux / count);
  }
  // An open channel exchanges mass through its ends; the mean density
  // settles slightly above the outlet value because of the driving
  // pressure gradient.
  std::printf("mean density after %lld steps: %.6f\n",
              static_cast<long long>(solver.step_count()),
              solver.total_mass() / static_cast<double>(solver.size()));

  // 4. The same workload through the proxy application wrapper, with
  //    MFLUPS accounting.
  proxy::ProxyConfig config;
  config.scale = 0.5;
  proxy::ProxyApp app(config);
  const proxy::ProxyMeasurement m = app.run(100);
  std::printf("proxy app: %.2f MFLUPS on the host engine (%lld points, "
              "%d steps)\n",
              m.mflups, static_cast<long long>(m.fluid_points), m.steps);
  return 0;
}
