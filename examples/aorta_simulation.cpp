// Aorta simulation: the real-world workload.  Builds the synthetic
// patient aorta, decomposes it with the load-bisection balancer across
// several ranks, runs pulsatile-ish flow through the distributed solver,
// and reports per-outlet flow splits and decomposition statistics.
//
//   build/examples/aorta_simulation

#include <cstdio>
#include <vector>

#include "decomp/partition.hpp"
#include "geom/aorta.hpp"
#include "harvey/distributed_solver.hpp"
#include "lbm/hemodynamics.hpp"

int main() {
  using namespace hemo;

  geom::AortaSpec spec;
  spec.spacing_mm = 1.4;  // coarse but fully resolved topology
  auto lattice = geom::make_aorta_lattice(spec);
  const Box box = lattice->bounding_box();
  std::printf("synthetic aorta: %lld fluid points in a %lld x %lld x %lld "
              "box (%.1f%% fill)\n",
              static_cast<long long>(lattice->size()),
              static_cast<long long>(box.extent(0)),
              static_cast<long long>(box.extent(1)),
              static_cast<long long>(box.extent(2)),
              100.0 * static_cast<double>(lattice->size()) /
                  static_cast<double>(box.volume()));

  const int ranks = 8;
  const decomp::Partition partition =
      decomp::bisection_partition(*lattice, ranks);
  const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, partition);
  std::printf("bisection decomposition over %d ranks: imbalance %.4f, "
              "%zu halo messages, %lld values/step\n",
              ranks, partition.imbalance(), plan.messages.size(),
              static_cast<long long>(plan.total_values()));

  lbm::SolverOptions options;
  options.tau = 0.85;
  options.inlet_velocity = 0.015;
  options.outlet_density = 1.0;

  harvey::DistributedSolver solver(lattice, partition, options);

  // Pulsatile inflow: one synthetic cardiac cycle of 300 steps, peak
  // systolic inlet velocity 0.02, diastolic baseline 25% of peak.
  const lbm::CardiacWaveform wave(300, 0.02, 0.25);
  std::printf("running %d ranks over two cardiac cycles (period %d, "
              "mean inlet velocity %.4f)...\n",
              ranks, wave.period(), wave.mean());
  for (int step = 0; step < 600; ++step) {
    solver.set_inlet_velocity(wave.at(step));
    solver.step();
  }

  // Flow split across the outlets: descending aorta (domain bottom)
  // versus the three arch branches (domain top).
  double descending = 0.0, branches = 0.0, inflow = 0.0;
  for (PointIndex i = 0; i < lattice->size(); ++i) {
    const lbm::Moments m = solver.global_moments(i);
    switch (lattice->node_type(i)) {
      case lbm::NodeType::kVelocityInlet:
        inflow += m.rho * m.uz;
        break;
      case lbm::NodeType::kPressureOutletLow:
        descending += -m.rho * m.uz;  // outflow points down
        break;
      case lbm::NodeType::kPressureOutlet:
        branches += m.rho * m.uz;
        break;
      default:
        break;
    }
  }
  std::printf("mass flux after %lld steps:\n",
              static_cast<long long>(solver.step_count()));
  std::printf("  inflow (ascending root):    %+.5f\n", inflow);
  std::printf("  outflow (descending aorta): %+.5f (%.0f%%)\n", descending,
              100.0 * descending / (descending + branches));
  std::printf("  outflow (arch branches):    %+.5f (%.0f%%)\n", branches,
              100.0 * branches / (descending + branches));
  std::printf("communication ledger: %lld messages, %lld bytes total\n",
              solver.network().message_count(),
              solver.network().total_bytes());
  return 0;
}
