// Cylinder flow study: body-force-driven Poiseuille flow in the periodic
// proxy cylinder, compared against the analytic parabola — the validation
// workload behind the proxy app — followed by a cross-dialect run showing
// that all four programming models produce identical physics.
//
//   build/examples/cylinder_flow

#include <cmath>
#include <cstdio>

#include "geom/cylinder.hpp"
#include "harvey/device_solver.hpp"
#include "lbm/solver.hpp"

int main() {
  using namespace hemo;

  const double radius = 8.0;
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = radius;
  spec.axial_per_scale = 4.0;  // short periodic segment suffices
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);

  lbm::SolverOptions options;
  options.tau = 1.0;
  const double g = 1e-6;
  options.body_force = {0.0, 0.0, g};

  lbm::Solver solver(lattice, options);
  std::printf("relaxing %lld points toward Poiseuille flow...\n",
              static_cast<long long>(solver.size()));
  solver.run(4000);

  const double nu = lbm::viscosity_of_tau(options.tau);
  const double u_max = g * radius * radius / (4.0 * nu);
  std::printf("analytic centerline velocity: %.6e\n", u_max);
  std::printf("%6s %14s %14s %10s\n", "r", "simulated", "analytic", "err %");

  const auto rc = static_cast<std::int32_t>(std::ceil(radius));
  for (std::int32_t d = 0; d < rc; ++d) {
    const PointIndex i = lattice->find(Coord{rc + d, rc, 2});
    if (i == kSolidNeighbor) continue;
    const double r = std::hypot(d + 0.5, 0.5);
    const double analytic = u_max * (1.0 - (r * r) / (radius * radius));
    const double simulated = solver.moments(i).uz;
    std::printf("%6.2f %14.6e %14.6e %9.2f%%\n", r, simulated, analytic,
                100.0 * (simulated - analytic) / u_max);
  }

  // Cross-dialect check: run 50 steps through two programming models and
  // compare the distributions bit for bit.
  std::printf("\ncross-dialect equivalence (50 steps):\n");
  harvey::DeviceSolver cuda(lattice, options, hal::Model::kCuda);
  harvey::DeviceSolver sycl(lattice, options, hal::Model::kSycl);
  cuda.run(50);
  sycl.run(50);
  const auto fa = cuda.distributions();
  const auto fb = sycl.distributions();
  std::size_t mismatches = 0;
  for (std::size_t k = 0; k < fa.size(); ++k)
    if (fa[k] != fb[k]) ++mismatches;
  std::printf("  CUDA vs SYCL dialect: %zu mismatching values of %zu %s\n",
              mismatches, fa.size(),
              mismatches == 0 ? "(bit-identical)" : "(BUG!)");
  return mismatches == 0 ? 0 : 1;
}
