// Porting workflow: run the mini-HIPify and mini-DPCT tools over one file
// of the legacy mini-CUDA corpus and show what each produced — the
// Section 7 experience of the paper in miniature.
//
//   build/examples/porting_workflow [corpus-file]

#include <cstdio>
#include <string>

#include "port/corpus.hpp"
#include "port/dpct.hpp"
#include "port/hipify.hpp"
#include "port/loc.hpp"

int main(int argc, char** argv) {
  using namespace hemo;

  const std::string file = argc > 1 ? argv[1] : "managed.cpp";
  const std::string cudax =
      port::read_corpus_file(port::CorpusDialect::kCudax, file);

  std::printf("==== legacy CUDA source: %s (%d SLOC) ====\n%s\n",
              file.c_str(), port::count_sloc(cudax), cudax.c_str());

  const port::HipifyResult hip = port::hipify(cudax);
  std::printf("==== HIPify output (%d lines rewritten, 0 manual) ====\n%s\n",
              hip.lines_touched, hip.output.c_str());

  const port::DpctResult sycl = port::dpct_translate(cudax, file);
  std::printf("==== DPCT output ====\n%s\n", sycl.output.c_str());
  std::printf("==== DPCT warnings (%zu) ====\n", sycl.warnings.size());
  for (const port::Warning& w : sycl.warnings)
    std::printf("  %s:%d [%s] %s: %s\n", w.file.c_str(), w.line,
                w.id.c_str(), port::category_name(w.category),
                w.message.c_str());

  const std::string shipped =
      port::read_corpus_file(port::CorpusDialect::kSyclx, file);
  const port::LocDelta manual = port::loc_diff(sycl.output, shipped);
  std::printf("\nmanual lines to finish the DPC++ port of this file: "
              "%d added, %d changed\n",
              manual.added, manual.changed);
  return 0;
}
