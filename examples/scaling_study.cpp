// Scaling study: interrogate the calibrated cluster simulator for one
// (system, model, workload) combination and print the piecewise scaling
// series with the performance-model prediction and both efficiency
// metrics — the analysis loop of Section 8 as a command-line tool.
//
//   build/examples/scaling_study [summit|polaris|crusher|sunspot] [model]
//
// where model is one of: cuda hip sycl kokkos-cuda kokkos-hip kokkos-sycl
// kokkos-openacc (must be available on the chosen system).

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/simulator.hpp"

namespace {

using namespace hemo;

sys::SystemId parse_system(const char* name) {
  if (std::strcmp(name, "summit") == 0) return sys::SystemId::kSummit;
  if (std::strcmp(name, "polaris") == 0) return sys::SystemId::kPolaris;
  if (std::strcmp(name, "crusher") == 0) return sys::SystemId::kCrusher;
  if (std::strcmp(name, "sunspot") == 0) return sys::SystemId::kSunspot;
  std::fprintf(stderr, "unknown system '%s'\n", name);
  std::exit(1);
}

hal::Model parse_model(const char* name) {
  for (const hal::Model m : hal::kAllModels) {
    std::string spelled{hal::name_of(m)};
    for (char& c : spelled) c = static_cast<char>(std::tolower(c));
    if (spelled == name) return m;
  }
  std::fprintf(stderr, "unknown model '%s'\n", name);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const sys::SystemId system =
      parse_system(argc > 1 ? argv[1] : "crusher");
  const hal::Model model = parse_model(argc > 2 ? argv[2] : "hip");

  if (!sim::model_available(system, model)) {
    std::fprintf(stderr, "%s was not evaluated on %s in the study\n",
                 std::string(hal::name_of(model)).c_str(),
                 sys::system_spec(system).name.c_str());
    return 1;
  }

  sim::Workload cylinder =
      sim::Workload::cylinder(sim::DecompositionKind::kBisection);
  sim::Workload aorta = sim::Workload::aorta();

  const sim::ClusterSimulator harvey(system, model, sim::App::kHarvey);
  const sim::ClusterSimulator proxy(system, model, sim::App::kProxy);

  std::printf("%s / %s — HARVEY piecewise scaling\n",
              sys::system_spec(system).name.c_str(),
              std::string(hal::name_of(model)).c_str());
  std::printf("%8s %6s | %12s %12s %9s | %12s %9s\n", "devices", "size",
              "cyl MFLUPS", "pred", "arch-eff", "aorta MFLUPS", "comm %");

  for (const auto& sp :
       sys::piecewise_schedule(sys::system_spec(system).max_devices)) {
    const sim::SimPoint c =
        harvey.simulate(cylinder, sp.devices, sp.size_multiplier);
    const auto pred =
        harvey.predict(cylinder, sp.devices, sp.size_multiplier);
    const sim::SimPoint a =
        harvey.simulate(aorta, sp.devices, sp.size_multiplier);
    std::printf("%8d %5dx | %12.0f %12.0f %8.2f%% | %12.0f %8.1f%%\n",
                sp.devices, sp.size_multiplier, c.mflups, pred.mflups,
                100.0 * c.mflups / pred.mflups, a.mflups,
                100.0 * a.worst_rank.comm_s / a.worst_rank.total_s());
  }

  std::printf("\nproxy app, cylinder:\n");
  for (const auto& sp :
       sys::piecewise_schedule(sys::system_spec(system).max_devices)) {
    const sim::SimPoint p =
        proxy.simulate(cylinder, sp.devices, sp.size_multiplier);
    std::printf("%8d %5dx | %12.0f MFLUPS\n", sp.devices,
                sp.size_multiplier, p.mflups);
  }
  return 0;
}
