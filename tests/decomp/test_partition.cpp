// Decomposition tests: exact covers, balance bounds for both strategies,
// halo-plan symmetry and volume properties — the quantities the paper's
// performance model consumes.

#include <gtest/gtest.h>

#include <numeric>

#include "decomp/partition.hpp"
#include "geom/aorta.hpp"
#include "geom/cylinder.hpp"

namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;

namespace {

std::shared_ptr<lbm::SparseLattice> test_cylinder() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 6.0;
  spec.axial_per_scale = 48.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

std::shared_ptr<lbm::SparseLattice> test_aorta() {
  geom::AortaSpec spec;
  spec.spacing_mm = 2.2;
  return geom::make_aorta_lattice(spec);
}

}  // namespace

class PartitionRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionRankSweep, SlabIsAnExactCover) {
  auto lattice = test_cylinder();
  const int ranks = GetParam();
  const decomp::Partition p = decomp::slab_partition(*lattice, ranks);
  ASSERT_EQ(p.owner.size(), static_cast<std::size_t>(lattice->size()));
  const auto counts = p.rank_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            lattice->size());
  for (std::int64_t c : counts) EXPECT_GT(c, 0);
}

TEST_P(PartitionRankSweep, SlabBalanceIsPerfectUpToOnePoint) {
  auto lattice = test_cylinder();
  const decomp::Partition p = decomp::slab_partition(*lattice, GetParam());
  const auto counts = p.rank_counts();
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST_P(PartitionRankSweep, BisectionIsAnExactCover) {
  auto lattice = test_aorta();
  const decomp::Partition p =
      decomp::bisection_partition(*lattice, GetParam());
  const auto counts = p.rank_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            lattice->size());
  for (std::int64_t c : counts) EXPECT_GT(c, 0);
}

TEST_P(PartitionRankSweep, BisectionBalanceIsTightOnTheAorta) {
  auto lattice = test_aorta();
  const decomp::Partition p =
      decomp::bisection_partition(*lattice, GetParam());
  // The median split balances counts exactly at each level; the only
  // imbalance comes from integer division across levels.
  EXPECT_LT(p.imbalance(), 1.05);
}

TEST_P(PartitionRankSweep, HaloPlanIsPairwiseSymmetric) {
  auto lattice = test_aorta();
  const decomp::Partition p =
      decomp::bisection_partition(*lattice, GetParam());
  const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);
  // The D3Q19 velocity set is symmetric: every crossing link (i <- j in
  // direction q) pairs with (j <- i in direction opposite(q)), so the
  // value count from a to b equals the count from b to a.
  for (const decomp::HaloMessage& m : plan.messages) {
    bool found = false;
    for (const decomp::HaloMessage& r : plan.messages) {
      if (r.src == m.dst && r.dst == m.src) {
        EXPECT_EQ(r.values, m.values)
            << "asymmetric halo " << m.src << "<->" << m.dst;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PartitionRankSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 25, 32));

TEST(Partition, SingleRankHasNoHalos) {
  auto lattice = test_cylinder();
  const decomp::Partition p = decomp::slab_partition(*lattice, 1);
  const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);
  EXPECT_TRUE(plan.messages.empty());
  EXPECT_EQ(plan.total_values(), 0);
}

TEST(Partition, SlabOnCylinderCutsAcrossZOnly) {
  // Each rank's slab must span a contiguous z range with no interleaving.
  auto lattice = test_cylinder();
  const decomp::Partition p = decomp::slab_partition(*lattice, 8);
  std::vector<std::int32_t> z_min(8, INT32_MAX), z_max(8, INT32_MIN);
  for (hemo::PointIndex i = 0; i < lattice->size(); ++i) {
    const hemo::Rank r = p.owner[static_cast<std::size_t>(i)];
    z_min[static_cast<std::size_t>(r)] =
        std::min(z_min[static_cast<std::size_t>(r)], lattice->coord(i).z);
    z_max[static_cast<std::size_t>(r)] =
        std::max(z_max[static_cast<std::size_t>(r)], lattice->coord(i).z);
  }
  for (int r = 0; r + 1 < 8; ++r)
    EXPECT_LE(z_max[static_cast<std::size_t>(r)],
              z_min[static_cast<std::size_t>(r + 1)] + 1);
}

TEST(Partition, SlabHaloTouchesOnlyAdjacentRanks) {
  auto lattice = test_cylinder();
  const decomp::Partition p = decomp::slab_partition(*lattice, 8);
  const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);
  for (const decomp::HaloMessage& m : plan.messages)
    EXPECT_LE(std::abs(m.src - m.dst), 1)
        << "slab decomposition must only exchange with neighbors";
}

TEST(Partition, MoreRanksMeansMoreTotalHaloVolume) {
  auto lattice = test_aorta();
  std::int64_t prev = 0;
  for (int ranks : {2, 4, 8, 16}) {
    const decomp::Partition p = decomp::bisection_partition(*lattice, ranks);
    const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);
    EXPECT_GT(plan.total_values(), prev) << ranks << " ranks";
    prev = plan.total_values();
  }
}

TEST(Partition, BisectionSurfaceScalesLikeVolumeTwoThirds) {
  // Per-rank halo volume should scale ~ (points per rank)^(2/3), the
  // relation the paper's Eq. 3 assumes.  Compare 8 vs 64 ranks on the
  // cylinder: per-rank volume drops 8x, per-rank surface should drop
  // roughly 4x (within generous tolerance for the elongated geometry).
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 10.0;
  spec.axial_per_scale = 60.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);

  auto max_surface = [&](int ranks) {
    const decomp::Partition p = decomp::bisection_partition(*lattice, ranks);
    const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);
    return static_cast<double>(plan.max_rank_send_values(ranks));
  };
  const double s8 = max_surface(8);
  const double s64 = max_surface(64);
  EXPECT_GT(s8, 0.0);
  const double drop = s8 / s64;
  EXPECT_GT(drop, 1.5);
  EXPECT_LT(drop, 8.0);
}

TEST(Partition, DeterministicAcrossCalls) {
  auto lattice = test_aorta();
  const decomp::Partition a = decomp::bisection_partition(*lattice, 16);
  const decomp::Partition b = decomp::bisection_partition(*lattice, 16);
  EXPECT_EQ(a.owner, b.owner);
}

TEST(Partition, PointsOfReturnsSortedOwnedPoints) {
  auto lattice = test_cylinder();
  const decomp::Partition p = decomp::slab_partition(*lattice, 4);
  for (hemo::Rank r = 0; r < 4; ++r) {
    const auto pts = p.points_of(r);
    EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
    for (hemo::PointIndex i : pts)
      EXPECT_EQ(p.owner[static_cast<std::size_t>(i)], r);
  }
}
