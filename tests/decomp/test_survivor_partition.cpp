// Survivor-subset bisection: the shrink-to-survivors re-decomposition the
// elastic recovery path runs after a rank death.  The returned partition
// must keep the original rank numbering (dead ranks own zero points),
// cover the lattice exactly, stay deterministic (recovery must be
// bit-reproducible), handle non-power-of-two survivor counts, and not
// degrade balance beyond a small factor of the pre-shrink partition.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"

namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
using hemo::Rank;

namespace {

std::shared_ptr<lbm::SparseLattice> test_cylinder() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 6.0;
  spec.axial_per_scale = 48.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

/// [0, total) minus the listed dead ranks, ascending.
std::vector<Rank> survivors_of(int total, const std::vector<Rank>& dead) {
  std::vector<Rank> out;
  for (Rank r = 0; r < total; ++r)
    if (std::find(dead.begin(), dead.end(), r) == dead.end())
      out.push_back(r);
  return out;
}

}  // namespace

TEST(SurvivorPartition, ExactCoverOnSurvivorsOnly) {
  auto lattice = test_cylinder();
  const std::vector<Rank> survivors = survivors_of(8, {2, 5});
  const decomp::Partition p =
      decomp::bisection_partition(*lattice, 8, survivors);

  ASSERT_EQ(p.n_ranks, 8);
  ASSERT_EQ(p.owner.size(), static_cast<std::size_t>(lattice->size()));
  const auto counts = p.rank_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            lattice->size());
  // Original numbering: dead ranks own zero points, survivors own > 0.
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[5], 0);
  for (Rank r : survivors)
    EXPECT_GT(counts[static_cast<std::size_t>(r)], 0) << "rank " << r;
  EXPECT_EQ(p.active_ranks(), survivors);
}

TEST(SurvivorPartition, DeterministicAcrossReruns) {
  auto lattice = test_cylinder();
  const std::vector<Rank> survivors = survivors_of(8, {0, 3, 7});
  const decomp::Partition a =
      decomp::bisection_partition(*lattice, 8, survivors);
  const decomp::Partition b =
      decomp::bisection_partition(*lattice, 8, survivors);
  // Bit-identical reruns are what make shrink recovery reproducible.
  EXPECT_EQ(a.owner, b.owner);
}

TEST(SurvivorPartition, FullSurvivorSetMatchesPlainBisection) {
  auto lattice = test_cylinder();
  const decomp::Partition plain = decomp::bisection_partition(*lattice, 8);
  const decomp::Partition full =
      decomp::bisection_partition(*lattice, 8, survivors_of(8, {}));
  EXPECT_EQ(full.owner, plain.owner);
}

class SurvivorCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(SurvivorCountSweep, NonPowerOfTwoSurvivorCountsCoverExactly) {
  auto lattice = test_cylinder();
  constexpr int kTotal = 8;
  const int n_dead = kTotal - GetParam();
  std::vector<Rank> dead;
  for (int k = 0; k < n_dead; ++k) dead.push_back(static_cast<Rank>(k));
  const std::vector<Rank> survivors = survivors_of(kTotal, dead);
  ASSERT_EQ(static_cast<int>(survivors.size()), GetParam());

  const decomp::Partition p =
      decomp::bisection_partition(*lattice, kTotal, survivors);
  const auto counts = p.rank_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            lattice->size());
  EXPECT_EQ(p.active_ranks(), survivors);
}

TEST_P(SurvivorCountSweep, ImbalanceStaysWithinShrinkBudget) {
  auto lattice = test_cylinder();
  constexpr int kTotal = 8;
  const decomp::Partition pre = decomp::bisection_partition(*lattice, kTotal);

  const int n_dead = kTotal - GetParam();
  std::vector<Rank> dead;
  for (int k = 0; k < n_dead; ++k) dead.push_back(static_cast<Rank>(k));
  const decomp::Partition post = decomp::bisection_partition(
      *lattice, kTotal, survivors_of(kTotal, dead));

  // The post-shrink split is a fresh bisection of the whole lattice, so
  // its balance should be comparable to the pre-shrink one — the budget
  // the RS005 diagnostic reports against.
  EXPECT_LE(post.imbalance(), pre.imbalance() * 1.25)
      << "survivors=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SurvivorCounts, SurvivorCountSweep,
                         ::testing::Values(7, 6, 5, 3));

TEST(SurvivorPartition, SingleSurvivorOwnsEverything) {
  auto lattice = test_cylinder();
  const decomp::Partition p =
      decomp::bisection_partition(*lattice, 4, {static_cast<Rank>(2)});
  const auto counts = p.rank_counts();
  EXPECT_EQ(counts[2], lattice->size());
  EXPECT_EQ(p.active_ranks(), std::vector<Rank>{static_cast<Rank>(2)});
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);
}
