// Randomized decomposition properties: the partitioners must behave on
// arbitrary point clouds, not just the study geometries.

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "base/rng.hpp"
#include "decomp/partition.hpp"

namespace decomp = hemo::decomp;
namespace lbm = hemo::lbm;
using hemo::Coord;
using hemo::CoordHash;
using hemo::SplitMix64;

namespace {

std::shared_ptr<lbm::SparseLattice> random_cloud(std::uint64_t seed,
                                                 int count, int extent) {
  SplitMix64 rng(seed);
  std::unordered_set<Coord, CoordHash> unique;
  while (static_cast<int>(unique.size()) < count) {
    unique.insert(Coord{static_cast<std::int32_t>(rng.next_below(extent)),
                        static_cast<std::int32_t>(rng.next_below(extent)),
                        static_cast<std::int32_t>(rng.next_below(extent))});
  }
  std::vector<Coord> points(unique.begin(), unique.end());
  std::sort(points.begin(), points.end(), [](const Coord& a, const Coord& b) {
    if (a.z != b.z) return a.z < b.z;
    if (a.y != b.y) return a.y < b.y;
    return a.x < b.x;
  });
  return std::make_shared<lbm::SparseLattice>(points);
}

}  // namespace

class RandomCloud
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RandomCloud, BothPartitionersCoverExactly) {
  const auto [seed, ranks] = GetParam();
  auto lattice = random_cloud(seed, 600, 24);
  for (const auto& p : {decomp::slab_partition(*lattice, ranks),
                        decomp::bisection_partition(*lattice, ranks)}) {
    const auto counts = p.rank_counts();
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
              lattice->size());
    for (const std::int64_t c : counts) EXPECT_GT(c, 0);
  }
}

TEST_P(RandomCloud, BisectionBalanceHoldsOnArbitraryClouds) {
  const auto [seed, ranks] = GetParam();
  auto lattice = random_cloud(seed, 600, 24);
  const decomp::Partition p = decomp::bisection_partition(*lattice, ranks);
  // Count-median splits keep the imbalance within integer rounding.
  EXPECT_LT(p.imbalance(),
            1.0 + static_cast<double>(ranks) / lattice->size() + 0.02);
}

TEST_P(RandomCloud, HaloPlanNeverCountsIntraRankLinks) {
  const auto [seed, ranks] = GetParam();
  auto lattice = random_cloud(seed, 400, 16);
  const decomp::Partition p = decomp::bisection_partition(*lattice, ranks);
  const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);
  for (const decomp::HaloMessage& m : plan.messages) {
    EXPECT_NE(m.src, m.dst);
    EXPECT_GT(m.values, 0);
  }
}

TEST_P(RandomCloud, HaloTotalEqualsCrossingLinkCount) {
  const auto [seed, ranks] = GetParam();
  auto lattice = random_cloud(seed, 400, 16);
  const decomp::Partition p = decomp::slab_partition(*lattice, ranks);
  const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);

  std::int64_t crossing = 0;
  for (hemo::PointIndex i = 0; i < lattice->size(); ++i)
    for (int q = 1; q < lbm::kQ; ++q) {
      const hemo::PointIndex up = lattice->neighbor(q, i);
      if (up == hemo::kSolidNeighbor) continue;
      if (p.owner[static_cast<std::size_t>(up)] !=
          p.owner[static_cast<std::size_t>(i)])
        ++crossing;
    }
  EXPECT_EQ(plan.total_values(), crossing);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomCloud,
    ::testing::Combine(::testing::Values(3u, 17u, 2024u),
                       ::testing::Values(2, 5, 9, 16)));
