// VTK writer tests: structural validity of the emitted legacy file and
// field correctness.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "geom/cylinder.hpp"
#include "io/vtk.hpp"

namespace {

using namespace hemo;

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

lbm::Solver make_solver() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 3.0;
  spec.axial_per_scale = 5.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions options;
  options.tau = 0.9;
  options.body_force = {0.0, 0.0, 1e-5};
  return lbm::Solver(lattice, options);
}

}  // namespace

TEST(Vtk, EmitsAValidLegacyHeader) {
  lbm::Solver solver = make_solver();
  solver.run(5);
  TempFile file("hemoflow_header.vtk");
  const std::int64_t n = io::write_vtk(file.path, solver);
  EXPECT_EQ(n, solver.size());

  const std::string text = slurp(file.path);
  EXPECT_EQ(text.rfind("# vtk DataFile Version 3.0\n", 0), 0u);
  EXPECT_NE(text.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(text.find("POINTS " + std::to_string(n) + " float"),
            std::string::npos);
  EXPECT_NE(text.find("CELL_TYPES " + std::to_string(n)), std::string::npos);
  EXPECT_NE(text.find("SCALARS density float 1"), std::string::npos);
  EXPECT_NE(text.find("VECTORS velocity float"), std::string::npos);
}

TEST(Vtk, PointCountMatchesLattice) {
  lbm::Solver solver = make_solver();
  TempFile file("hemoflow_count.vtk");
  io::write_vtk(file.path, solver);

  // Count coordinate lines between POINTS and CELLS.
  std::ifstream in(file.path);
  std::string line;
  std::int64_t coords = 0;
  bool counting = false;
  while (std::getline(in, line)) {
    if (line.rfind("POINTS", 0) == 0) {
      counting = true;
      continue;
    }
    if (line.rfind("CELLS", 0) == 0) break;
    if (counting) ++coords;
  }
  EXPECT_EQ(coords, solver.size());
}

TEST(Vtk, ShearFieldIsOptional) {
  lbm::Solver solver = make_solver();
  solver.run(50);
  TempFile file("hemoflow_shear.vtk");
  io::VtkFields fields;
  fields.shear = true;
  io::write_vtk(file.path, solver, fields);
  EXPECT_NE(slurp(file.path).find("SCALARS shear float 1"),
            std::string::npos);
}

TEST(Vtk, RestStateWritesUnitDensity) {
  lbm::Solver solver = make_solver();
  TempFile file("hemoflow_rest.vtk");
  io::write_vtk(file.path, solver);
  // All densities are exactly 1 at initialization.
  const std::string text = slurp(file.path);
  const std::size_t start = text.find("LOOKUP_TABLE default\n");
  ASSERT_NE(start, std::string::npos);
  std::istringstream in(text.substr(start + 21));
  double v = 0.0;
  for (int k = 0; k < 10; ++k) {
    in >> v;
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(Vtk, UnwritablePathAborts) {
  lbm::Solver solver = make_solver();
  EXPECT_DEATH(io::write_vtk("/nonexistent-dir/out.vtk", solver),
               "Precondition");
}
