// io::Blob framing under failure: roundtrips, atomic replacement (the
// .tmp + rename protocol), and fault injection — truncation at every
// interesting byte offset and single-bit payload corruption must surface
// as BlobError, never as silently restored garbage.

#include "io/blob.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace hemo::io {
namespace {

constexpr std::uint64_t kMagic = 0x424f4c424f4d4548ull;
constexpr std::uint32_t kVersion = 3;

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

bool file_exists(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return static_cast<bool>(is);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_blob(const std::string& path,
                const std::vector<std::string>& payloads) {
  BlobWriter writer(path, kMagic, kVersion);
  for (std::size_t i = 0; i < payloads.size(); ++i)
    writer.add_record(static_cast<std::uint32_t>(i + 1), payloads[i].data(),
                      payloads[i].size());
  writer.finish();
}

TEST(Blob, RoundTripsTaggedRecords) {
  TempFile file("blob_roundtrip.bin");
  const std::vector<std::string> payloads = {"alpha", "", "gamma-gamma"};
  write_blob(file.path, payloads);

  BlobReader reader(file.path, kMagic, kVersion);
  EXPECT_EQ(reader.version(), kVersion);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    ASSERT_FALSE(reader.at_end());
    const BlobRecord record = reader.next();
    EXPECT_EQ(record.tag, i + 1);
    EXPECT_EQ(std::string(record.bytes.begin(), record.bytes.end()),
              payloads[i]);
  }
  EXPECT_TRUE(reader.at_end());
}

TEST(Blob, WriteIsAtomic) {
  TempFile file("blob_atomic.bin");
  write_blob(file.path, {"previous checkpoint"});
  const std::string previous = slurp(file.path);

  {
    // While a new write is in flight, the visible file must still be the
    // complete previous blob — records land in the .tmp sibling.
    BlobWriter writer(file.path, kMagic, kVersion);
    const std::string payload = "half-written replacement";
    writer.add_record(9, payload.data(), payload.size());
    EXPECT_EQ(slurp(file.path), previous);
    EXPECT_TRUE(file_exists(file.path + ".tmp"));
    writer.finish();
  }
  EXPECT_FALSE(file_exists(file.path + ".tmp"));  // renamed into place
  BlobReader reader(file.path, kMagic, kVersion);
  EXPECT_EQ(reader.next().tag, 9u);
}

TEST(Blob, AbandonedWriterLeavesPreviousFileIntact) {
  TempFile file("blob_abandoned.bin");
  write_blob(file.path, {"previous checkpoint"});
  const std::string previous = slurp(file.path);
  {
    BlobWriter writer(file.path, kMagic, kVersion);
    const std::string payload = "crashed before finish";
    writer.add_record(1, payload.data(), payload.size());
    // No finish(): the destructor's best-effort finish still renames, so
    // simulate the crash by deleting the temporary out from under it —
    // the rename fails and is swallowed, the original must survive.
    std::remove((file.path + ".tmp").c_str());
  }
  EXPECT_EQ(slurp(file.path), previous);
}

TEST(Blob, DetectsTruncationAtEveryPrefix) {
  TempFile file("blob_truncate.bin");
  write_blob(file.path, {"payload-one", "payload-two"});
  const std::string bytes = slurp(file.path);

  // Truncate inside the header, inside a record frame, and inside a
  // payload; every prefix must be reported, never silently accepted.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{11}, std::size_t{13}, std::size_t{20},
        bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    {
      std::ofstream os(file.path, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    if (keep < 12) {  // u64 magic + u32 version
      EXPECT_THROW(BlobReader(file.path, kMagic, kVersion), BlobError)
          << "keep=" << keep;
      continue;
    }
    BlobReader reader(file.path, kMagic, kVersion);
    EXPECT_THROW(
        {
          while (!reader.at_end()) reader.next();
        },
        BlobError)
        << "keep=" << keep;
  }
}

TEST(Blob, DetectsPayloadCorruption) {
  TempFile file("blob_corrupt.bin");
  write_blob(file.path, {"pristine payload bytes"});
  std::string bytes = slurp(file.path);
  bytes[bytes.size() - 3] ^= 0x40;  // flip one bit inside the payload
  {
    std::ofstream os(file.path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  BlobReader reader(file.path, kMagic, kVersion);
  EXPECT_THROW(reader.next(), BlobError);
}

TEST(Blob, RejectsForeignMagicAndNewerVersion) {
  TempFile file("blob_foreign.bin");
  write_blob(file.path, {"payload"});
  EXPECT_THROW(BlobReader(file.path, kMagic + 1, kVersion), BlobError);
  EXPECT_THROW(BlobReader(file.path, kMagic, kVersion - 1), BlobError);
  EXPECT_NO_THROW(BlobReader(file.path, kMagic, kVersion + 1));
}

TEST(Blob, Crc32MatchesKnownVectorAndChains) {
  // IEEE 802.3 check value for "123456789".
  const std::string check = "123456789";
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
  const std::uint32_t whole = crc32(check.data(), check.size());
  const std::uint32_t first = crc32(check.data(), 4);
  EXPECT_EQ(crc32(check.data() + 4, check.size() - 4, first), whole);
}

}  // namespace
}  // namespace hemo::io
