// Regression suite for the paper's qualitative findings (Section 9): the
// calibrated simulator must reproduce every relationship the paper
// reports — who wins, where the crossovers fall, how the runtime is
// composed.  These tests pin the calibration in hemo::sim::profiles so
// future changes cannot silently break the reproduction.
//
// Schedule indices (piecewise_schedule(1024)):
//   0:2  1:4  2:8  3:16(x1)  4:16(x2)  5:32  6:64  7:128(x2)
//   8:128(x4)  9:256  10:512  11:1024      (Sunspot ends at index 9)

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace sim = hemo::sim;
namespace sys = hemo::sys;
namespace hal = hemo::hal;
using sim::App;
using sys::SystemId;

namespace {

struct Series {
  std::vector<sim::SimPoint> pts;
  double at(std::size_t k) const { return pts.at(k).mflups; }
  double comm_share(std::size_t k) const {
    const sim::Composition& c = pts.at(k).worst_rank;
    return c.comm_s / c.total_s();
  }
};

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cylinder_ = new sim::Workload(
        sim::Workload::cylinder(sim::DecompositionKind::kBisection));
    aorta_ = new sim::Workload(sim::Workload::aorta());
  }
  static void TearDownTestSuite() {
    delete cylinder_;
    delete aorta_;
    cylinder_ = nullptr;
    aorta_ = nullptr;
  }

  static Series run(SystemId id, hal::Model m, App app, sim::Workload& w) {
    sim::ClusterSimulator cs(id, m, app);
    Series s;
    for (const auto& sp :
         sys::piecewise_schedule(sys::system_spec(id).max_devices))
      s.pts.push_back(cs.simulate(w, sp.devices, sp.size_multiplier));
    return s;
  }

  static Series native_harvey(SystemId id, sim::Workload& w) {
    return run(id, sys::system_spec(id).native_model, App::kHarvey, w);
  }
  static Series native_proxy(SystemId id, sim::Workload& w) {
    return run(id, sys::system_spec(id).native_model, App::kProxy, w);
  }

  static sim::Workload& cylinder() { return *cylinder_; }
  static sim::Workload& aorta() { return *aorta_; }

 private:
  static sim::Workload* cylinder_;
  static sim::Workload* aorta_;
};

sim::Workload* PaperShapes::cylinder_ = nullptr;
sim::Workload* PaperShapes::aorta_ = nullptr;

}  // namespace

// Section 9.1: "the HIP implementation of HARVEY performed worse than the
// other programming models for small numbers of GPUs (< 8 GPUs)".
TEST_F(PaperShapes, CrusherHarveyWorstAtSmallDeviceCounts) {
  for (sim::Workload* w : {&cylinder(), &aorta()}) {
    const Series crusher = native_harvey(SystemId::kCrusher, *w);
    const Series summit = native_harvey(SystemId::kSummit, *w);
    const Series polaris = native_harvey(SystemId::kPolaris, *w);
    const Series sunspot = native_harvey(SystemId::kSunspot, *w);
    for (std::size_t k : {0u, 1u}) {  // 2 and 4 devices
      EXPECT_LT(crusher.at(k), summit.at(k)) << w->name() << " idx " << k;
      EXPECT_LT(crusher.at(k), polaris.at(k)) << w->name() << " idx " << k;
      EXPECT_LT(crusher.at(k), sunspot.at(k)) << w->name() << " idx " << k;
    }
  }
}

// Section 9.1: HIP "became competitive for multi-node runs, particularly
// beginning at about 64 GPUs, at which point it generally outperforms the
// native HARVEY implementations on Summit and Sunspot".
TEST_F(PaperShapes, CrusherHarveyOvertakesSummitAndSunspotBy64) {
  for (sim::Workload* w : {&cylinder(), &aorta()}) {
    const Series crusher = native_harvey(SystemId::kCrusher, *w);
    const Series summit = native_harvey(SystemId::kSummit, *w);
    const Series sunspot = native_harvey(SystemId::kSunspot, *w);
    for (std::size_t k : {6u, 7u}) {  // 64 and 128 devices
      EXPECT_GT(crusher.at(k), summit.at(k)) << w->name() << " idx " << k;
      EXPECT_GT(crusher.at(k), sunspot.at(k)) << w->name() << " idx " << k;
    }
  }
}

// Section 9.1 / Fig. 4: "the HIP version of HARVEY running on Crusher's
// MI250X begins to outperform the A100 on Polaris starting at 512 GPUs"
// (aorta workload).
TEST_F(PaperShapes, AortaCrusherPolarisCrossoverAt512) {
  const Series crusher = native_harvey(SystemId::kCrusher, aorta());
  const Series polaris = native_harvey(SystemId::kPolaris, aorta());
  EXPECT_GT(polaris.at(6), crusher.at(6));   // 64: Polaris ahead
  EXPECT_GT(polaris.at(9), crusher.at(9));   // 256: Polaris ahead
  EXPECT_GT(crusher.at(10), polaris.at(10)); // 512: Crusher overtakes
  EXPECT_GT(crusher.at(11), polaris.at(11)); // 1024: stays ahead
}

// Section 9.1: "the [HIP] proxy app... performance is consistently better
// than the other native programming models except where the CUDA proxy
// app on A100 is concerned.  However, the HIP proxy app appears to edge
// out the CUDA proxy app on A100 near the 1024 GPU count."
TEST_F(PaperShapes, ProxyCrusherBeatsAllButPolarisUntil1024) {
  const Series crusher = native_proxy(SystemId::kCrusher, cylinder());
  const Series summit = native_proxy(SystemId::kSummit, cylinder());
  const Series polaris = native_proxy(SystemId::kPolaris, cylinder());
  const Series sunspot = native_proxy(SystemId::kSunspot, cylinder());
  for (std::size_t k = 0; k < crusher.pts.size(); ++k) {
    EXPECT_GT(crusher.at(k), summit.at(k)) << k;
    if (k < sunspot.pts.size()) EXPECT_GT(crusher.at(k), sunspot.at(k)) << k;
  }
  EXPECT_GT(polaris.at(7), crusher.at(7));             // 128: A100 ahead
  EXPECT_GT(polaris.at(9), crusher.at(9));             // 256: A100 ahead
  EXPECT_GE(crusher.at(11), 0.95 * polaris.at(11));    // ~1024: edges out
}

// Section 9.1: "the LBM proxy application consistently outperforms
// HARVEY, with a speedup of approximately 2 on average" (cylinder).
TEST_F(PaperShapes, ProxyIsRoughlyTwiceHarveyOnTheCylinder) {
  for (SystemId id : {SystemId::kSummit, SystemId::kPolaris,
                      SystemId::kCrusher, SystemId::kSunspot}) {
    const Series proxy = native_proxy(id, cylinder());
    const Series harvey = native_harvey(id, cylinder());
    double ratio_sum = 0.0;
    for (std::size_t k = 0; k < proxy.pts.size(); ++k) {
      EXPECT_GT(proxy.at(k), harvey.at(k))
          << sys::system_spec(id).name << " idx " << k;
      ratio_sum += proxy.at(k) / harvey.at(k);
    }
    const double mean_ratio = ratio_sum / proxy.pts.size();
    EXPECT_GT(mean_ratio, 1.4) << sys::system_spec(id).name;
    EXPECT_LT(mean_ratio, 3.2) << sys::system_spec(id).name;
  }
}

// Section 9.1: "the native SYCL implementation of HARVEY running on
// Sunspot PVC weak scales most efficiently, taken from the large jump
// discontinuities at each of the weak scaling points (i.e., at 16 and 128
// GPU counts)".
TEST_F(PaperShapes, SunspotShowsTheLargestWeakScalingJumps) {
  auto jump16 = [&](SystemId id) {
    const Series s = native_harvey(id, cylinder());
    return s.at(4) / s.at(3);
  };
  const double sunspot = jump16(SystemId::kSunspot);
  EXPECT_GT(sunspot, jump16(SystemId::kSummit));
  EXPECT_GT(sunspot, jump16(SystemId::kPolaris));
  EXPECT_GT(sunspot, jump16(SystemId::kCrusher));
  EXPECT_GT(sunspot, 1.15);  // a visible discontinuity
}

// Section 9.2 (Sunspot): "the Kokkos-SYCL implementations outperform the
// corresponding native SYCL codes nearly across the board".
TEST_F(PaperShapes, KokkosSyclBeatsNativeSyclOnSunspot) {
  const Series native = native_harvey(SystemId::kSunspot, aorta());
  const Series kokkos =
      run(SystemId::kSunspot, hal::Model::kKokkosSycl, App::kHarvey, aorta());
  int wins = 0;
  for (std::size_t k = 0; k < native.pts.size(); ++k)
    if (kokkos.at(k) > native.at(k)) ++wins;
  EXPECT_GE(wins, static_cast<int>(native.pts.size()) - 1);
}

// Section 9.2 (Sunspot): "the HIP proxy app performs the worst among all
// programming models considered for the platform" (chipStar).
TEST_F(PaperShapes, ChipStarProxyIsWorstOnSunspot) {
  const Series hip =
      run(SystemId::kSunspot, hal::Model::kHip, App::kProxy, cylinder());
  const Series sycl =
      run(SystemId::kSunspot, hal::Model::kSycl, App::kProxy, cylinder());
  const Series kokkos = run(SystemId::kSunspot, hal::Model::kKokkosSycl,
                            App::kProxy, cylinder());
  for (std::size_t k = 0; k < hip.pts.size(); ++k) {
    EXPECT_LT(hip.at(k), sycl.at(k)) << k;
    EXPECT_LT(hip.at(k), kokkos.at(k)) << k;
  }
}

// Section 9.2 (Summit): "the performance of the HIP proxy app with CUDA
// backend is on par with the native CUDA proxy app... with the lines
// nearly completely overlapping", while "HARVEY HIP generally lags behind
// native HARVEY CUDA, with a notable exception at the lowest task count".
TEST_F(PaperShapes, SummitHipProxyOverlapsCudaButHarveyLagsExceptAtStart) {
  const Series proxy_hip =
      run(SystemId::kSummit, hal::Model::kHip, App::kProxy, cylinder());
  const Series proxy_cuda = native_proxy(SystemId::kSummit, cylinder());
  for (std::size_t k = 0; k < proxy_hip.pts.size(); ++k)
    EXPECT_NEAR(proxy_hip.at(k) / proxy_cuda.at(k), 1.0, 0.12) << k;

  const Series harvey_hip =
      run(SystemId::kSummit, hal::Model::kHip, App::kHarvey, aorta());
  const Series harvey_cuda = native_harvey(SystemId::kSummit, aorta());
  EXPECT_GT(harvey_hip.at(0), harvey_cuda.at(0));  // wins at 2 devices
  int lags = 0;
  for (std::size_t k = 4; k < harvey_hip.pts.size(); ++k)
    if (harvey_hip.at(k) < harvey_cuda.at(k)) ++lags;
  EXPECT_GE(lags, 6);  // generally behind at scale
}

// Section 9.2 (Summit): "it is interesting to see Kokkos-OpenACC
// consistently outperform Kokkos-CUDA irrespective of performance
// measure".
TEST_F(PaperShapes, KokkosOpenAccBeatsKokkosCudaOnSummit) {
  for (App app : {App::kProxy, App::kHarvey}) {
    const Series acc = run(SystemId::kSummit, hal::Model::kKokkosOpenAcc,
                           app, cylinder());
    const Series cuda =
        run(SystemId::kSummit, hal::Model::kKokkosCuda, app, cylinder());
    for (std::size_t k = 0; k < acc.pts.size(); ++k)
      EXPECT_GT(acc.at(k), cuda.at(k)) << k;
  }
}

// Section 9.2 (Polaris): "the SYCL implementations generally outperform
// the other non-native languages, and closely match or even exceed native
// CUDA performance (at the 1024 GPU count)".
TEST_F(PaperShapes, PolarisSyclTracksAndFinallyExceedsCuda) {
  const Series sycl =
      run(SystemId::kPolaris, hal::Model::kSycl, App::kHarvey, cylinder());
  const Series cuda = native_harvey(SystemId::kPolaris, cylinder());
  const Series kcuda = run(SystemId::kPolaris, hal::Model::kKokkosCuda,
                           App::kHarvey, cylinder());
  const Series kacc = run(SystemId::kPolaris, hal::Model::kKokkosOpenAcc,
                          App::kHarvey, cylinder());
  for (std::size_t k = 0; k < sycl.pts.size(); ++k) {
    EXPECT_GT(sycl.at(k), 0.85 * cuda.at(k)) << k;  // closely matches
    EXPECT_GT(sycl.at(k), kcuda.at(k)) << k;        // beats other non-native
    EXPECT_GT(sycl.at(k), kacc.at(k)) << k;
  }
  EXPECT_GT(sycl.at(11), cuda.at(11));  // exceeds at 1024
}

// Section 9.2 (Polaris): proxy Kokkos ordering (Kokkos-CUDA ~
// Kokkos-OpenACC, Kokkos-SYCL worst) versus HARVEY ordering (Kokkos-CUDA
// ~ Kokkos-SYCL, Kokkos-OpenACC worst).
TEST_F(PaperShapes, PolarisKokkosOrderingFlipsBetweenProxyAndHarvey) {
  const Series pk_cuda = run(SystemId::kPolaris, hal::Model::kKokkosCuda,
                             App::kProxy, cylinder());
  const Series pk_sycl = run(SystemId::kPolaris, hal::Model::kKokkosSycl,
                             App::kProxy, cylinder());
  const Series pk_acc = run(SystemId::kPolaris, hal::Model::kKokkosOpenAcc,
                            App::kProxy, cylinder());
  for (std::size_t k = 0; k < pk_cuda.pts.size(); ++k) {
    EXPECT_LT(pk_sycl.at(k), pk_cuda.at(k)) << k;  // proxy: K-SYCL worst
    EXPECT_LT(pk_sycl.at(k), pk_acc.at(k)) << k;
    EXPECT_NEAR(pk_acc.at(k) / pk_cuda.at(k), 1.0, 0.15) << k;  // on par
  }

  const Series hk_cuda = run(SystemId::kPolaris, hal::Model::kKokkosCuda,
                             App::kHarvey, aorta());
  const Series hk_sycl = run(SystemId::kPolaris, hal::Model::kKokkosSycl,
                             App::kHarvey, aorta());
  const Series hk_acc = run(SystemId::kPolaris, hal::Model::kKokkosOpenAcc,
                            App::kHarvey, aorta());
  for (std::size_t k = 0; k < hk_cuda.pts.size(); ++k) {
    EXPECT_NEAR(hk_sycl.at(k) / hk_cuda.at(k), 1.0, 0.15) << k;  // parity
    EXPECT_LT(hk_acc.at(k), hk_sycl.at(k)) << k;  // HARVEY: K-OpenACC worst
    EXPECT_LT(hk_acc.at(k), hk_cuda.at(k)) << k;
  }
}

// Section 9.2 (Crusher): native HIP generally best; SYCL HARVEY is
// comparable to Kokkos-HIP on the cylinder but drops away on the aorta
// (early-development SYCL halo path).
TEST_F(PaperShapes, CrusherSyclCollapsesOnTheAortaOnly) {
  const Series hip = native_harvey(SystemId::kCrusher, cylinder());
  const Series sycl_cyl =
      run(SystemId::kCrusher, hal::Model::kSycl, App::kHarvey, cylinder());
  const Series khip_cyl = run(SystemId::kCrusher, hal::Model::kKokkosHip,
                              App::kHarvey, cylinder());
  for (std::size_t k = 0; k < hip.pts.size(); ++k) {
    EXPECT_GE(hip.at(k), sycl_cyl.at(k)) << k;  // native generally best
    EXPECT_NEAR(sycl_cyl.at(k) / khip_cyl.at(k), 1.0, 0.25) << k;
  }

  // On the aorta the SYCL/Kokkos-HIP gap widens with scale.
  const Series sycl_a =
      run(SystemId::kCrusher, hal::Model::kSycl, App::kHarvey, aorta());
  const Series khip_a =
      run(SystemId::kCrusher, hal::Model::kKokkosHip, App::kHarvey, aorta());
  const double early = sycl_a.at(1) / khip_a.at(1);
  const double late = sycl_a.at(10) / khip_a.at(10);
  EXPECT_LT(late, early);
}

// Section 9.3 / Fig. 7: communication share grows with device count and
// orders Polaris > Sunspot > Crusher (GPUs per node and interconnect
// bandwidth).
TEST_F(PaperShapes, RuntimeCompositionOrdering) {
  const Series polaris = native_harvey(SystemId::kPolaris, aorta());
  const Series crusher = native_harvey(SystemId::kCrusher, aorta());
  const Series sunspot = native_harvey(SystemId::kSunspot, aorta());

  EXPECT_GT(polaris.comm_share(10), polaris.comm_share(2));
  EXPECT_GT(sunspot.comm_share(9), sunspot.comm_share(2));

  EXPECT_GT(polaris.comm_share(9), sunspot.comm_share(9));
  EXPECT_GT(sunspot.comm_share(9), crusher.comm_share(9));

  // Sanity bands: communication is visible but not yet dominant at small
  // scale, and dominant for Polaris at 512.
  EXPECT_LT(polaris.comm_share(2), 0.45);
  EXPECT_GT(polaris.comm_share(10), 0.40);
}

// Section 9.2: a few Polaris CUDA proxy points exceed the model's bound
// (caching effects), i.e. architectural efficiency > 1 somewhere.
TEST_F(PaperShapes, PolarisProxyArchEfficiencyExceedsOneSomewhere) {
  sim::ClusterSimulator cs(SystemId::kPolaris, hal::Model::kCuda,
                           App::kProxy);
  bool above_one = false;
  for (const auto& sp : sys::piecewise_schedule(1024)) {
    const sim::SimPoint p = cs.simulate(cylinder(), sp.devices,
                                        sp.size_multiplier);
    const auto pred = cs.predict(cylinder(), sp.devices, sp.size_multiplier);
    if (sim::architectural_efficiency(p, pred) > 1.0) above_one = true;
  }
  EXPECT_TRUE(above_one);
}

// Section 9.1: "the gap between performance prediction and application
// runtime is narrower for the cylinder" than for the aorta.
TEST_F(PaperShapes, PredictionGapNarrowerForCylinderThanAorta) {
  sim::ClusterSimulator cyl_cs(SystemId::kPolaris, hal::Model::kCuda,
                               App::kHarvey);
  double cyl_gap = 0.0, aorta_gap = 0.0;
  int n = 0;
  for (const auto& sp : sys::piecewise_schedule(1024)) {
    const auto cp = cyl_cs.simulate(cylinder(), sp.devices, sp.size_multiplier);
    const auto cpred = cyl_cs.predict(cylinder(), sp.devices, sp.size_multiplier);
    const auto ap = cyl_cs.simulate(aorta(), sp.devices, sp.size_multiplier);
    const auto apred = cyl_cs.predict(aorta(), sp.devices, sp.size_multiplier);
    cyl_gap += cpred.mflups / cp.mflups;
    aorta_gap += apred.mflups / ap.mflups;
    ++n;
  }
  EXPECT_LT(cyl_gap / n, aorta_gap / n);
}
