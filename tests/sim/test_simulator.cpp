// ClusterSimulator unit tests: mechanics of the pricing model
// (composition accounting, efficiency metrics, profile availability).

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace sim = hemo::sim;
namespace sys = hemo::sys;
namespace hal = hemo::hal;
using sim::App;
using sys::SystemId;

namespace {

sim::Workload& shared_cylinder() {
  static sim::Workload w = sim::Workload::cylinder(
      sim::DecompositionKind::kBisection, /*measure_scale=*/1.5);
  return w;
}

}  // namespace

TEST(Profiles, AvailabilityMatchesSection81) {
  using hal::Model;
  EXPECT_TRUE(sim::model_available(SystemId::kSummit, Model::kCuda));
  EXPECT_TRUE(sim::model_available(SystemId::kSummit, Model::kHip));
  EXPECT_FALSE(sim::model_available(SystemId::kSummit, Model::kSycl));
  EXPECT_TRUE(sim::model_available(SystemId::kPolaris, Model::kSycl));
  EXPECT_FALSE(sim::model_available(SystemId::kPolaris, Model::kHip));
  EXPECT_TRUE(sim::model_available(SystemId::kCrusher, Model::kHip));
  EXPECT_FALSE(sim::model_available(SystemId::kCrusher, Model::kCuda));
  EXPECT_TRUE(sim::model_available(SystemId::kSunspot, Model::kHip));
  EXPECT_FALSE(sim::model_available(SystemId::kSunspot, Model::kCuda));
  EXPECT_TRUE(
      sim::model_available(SystemId::kSunspot, Model::kKokkosSycl));
  EXPECT_FALSE(
      sim::model_available(SystemId::kSunspot, Model::kKokkosOpenAcc));
}

TEST(Profiles, UnavailableModelAborts) {
  EXPECT_DEATH(sim::profile_for(SystemId::kSummit, hal::Model::kSycl),
               "Precondition");
}

TEST(Profiles, HarveyIsSlowerThanProxyEverywhere) {
  for (SystemId id : sys::kAllSystems)
    for (hal::Model m : hal::kAllModels) {
      if (!sim::model_available(id, m)) continue;
      // The one exception in the paper: the chipStar-compiled proxy on
      // Sunspot is worse code than its HARVEY port (Section 9.2).
      if (id == SystemId::kSunspot && m == hal::Model::kHip) continue;
      const sim::BackendProfile p = sim::profile_for(id, m);
      EXPECT_LT(p.harvey_efficiency, p.proxy_efficiency)
          << sys::system_spec(id).name << " " << hal::name_of(m);
    }
}

TEST(Simulator, SingleDeviceHasNoCommunication) {
  sim::ClusterSimulator cs(SystemId::kPolaris, hal::Model::kCuda,
                           App::kHarvey);
  const sim::SimPoint p = cs.simulate(shared_cylinder(), 1, 1);
  EXPECT_DOUBLE_EQ(p.worst_rank.comm_s, 0.0);
  EXPECT_DOUBLE_EQ(p.worst_rank.h2d_s, 0.0);
  EXPECT_DOUBLE_EQ(p.worst_rank.d2h_s, 0.0);
  EXPECT_GT(p.mflups, 0.0);
}

TEST(Simulator, CompositionComponentsSumToIterationTime) {
  sim::ClusterSimulator cs(SystemId::kPolaris, hal::Model::kCuda,
                           App::kHarvey);
  const sim::SimPoint p = cs.simulate(shared_cylinder(), 32, 2);
  EXPECT_NEAR(p.worst_rank.total_s(), p.iteration_s, 1e-12);
  EXPECT_GT(p.worst_rank.streamcollide_s, 0.0);
}

TEST(Simulator, MflupsEqualsPointsOverIterationTime) {
  sim::ClusterSimulator cs(SystemId::kCrusher, hal::Model::kHip,
                           App::kProxy);
  const sim::SimPoint p = cs.simulate(shared_cylinder(), 16, 1);
  EXPECT_NEAR(p.mflups, p.total_points / p.iteration_s / 1e6, 1e-6);
}

TEST(Simulator, BiggerProblemsRaiseDeviceEfficiency) {
  // Same device count, doubled size: more points per device, higher
  // occupancy, smaller comm fraction -> more than 1x MFLUPS per point.
  sim::ClusterSimulator cs(SystemId::kSunspot, hal::Model::kSycl,
                           App::kHarvey);
  const sim::SimPoint small = cs.simulate(shared_cylinder(), 16, 1);
  const sim::SimPoint big = cs.simulate(shared_cylinder(), 16, 2);
  // At a fixed device count, MFLUPS is devices x per-device update rate,
  // so a higher value means each device runs more efficiently; the jump
  // must be well clear of noise (this is the Fig. 3 discontinuity).
  EXPECT_GT(big.mflups, 1.1 * small.mflups);
}

TEST(Simulator, ScheduleRespectsSunspotCap) {
  sim::ClusterSimulator cs(SystemId::kSunspot, hal::Model::kSycl,
                           App::kHarvey);
  const auto series = cs.simulate_schedule(shared_cylinder());
  EXPECT_EQ(series.back().devices, 256);
}

TEST(Simulator, HostStagedMpiInflatesStagingOnly) {
  sim::BackendProfile base =
      sim::profile_for(SystemId::kSummit, hal::Model::kHip);
  sim::BackendProfile aware = base;
  aware.host_staged_mpi = false;
  sim::ClusterSimulator staged(SystemId::kSummit, hal::Model::kHip,
                               App::kHarvey, base);
  sim::ClusterSimulator direct(SystemId::kSummit, hal::Model::kHip,
                               App::kHarvey, aware);
  const sim::SimPoint a = staged.simulate(shared_cylinder(), 64, 2);
  const sim::SimPoint b = direct.simulate(shared_cylinder(), 64, 2);
  EXPECT_GT(a.worst_rank.h2d_s + a.worst_rank.d2h_s,
            b.worst_rank.h2d_s + b.worst_rank.d2h_s);
  EXPECT_DOUBLE_EQ(a.worst_rank.streamcollide_s,
                   b.worst_rank.streamcollide_s);
  EXPECT_LT(a.mflups, b.mflups);
}

TEST(Simulator, ApplicationEfficiencyIsOneForTheBest) {
  sim::ClusterSimulator fast(SystemId::kPolaris, hal::Model::kCuda,
                             App::kHarvey);
  sim::ClusterSimulator slow(SystemId::kPolaris, hal::Model::kKokkosOpenAcc,
                             App::kHarvey);
  std::vector<std::vector<sim::SimPoint>> series = {
      fast.simulate_schedule(shared_cylinder()),
      slow.simulate_schedule(shared_cylinder())};
  const auto eff = sim::application_efficiencies(series);
  for (std::size_t k = 0; k < eff[0].size(); ++k) {
    const double best = std::max(eff[0][k], eff[1][k]);
    EXPECT_DOUBLE_EQ(best, 1.0);
    EXPECT_LE(eff[1][k], 1.0);
    EXPECT_GT(eff[1][k], 0.0);
  }
}

TEST(Simulator, ArchitecturalEfficiencyIsMeasuredOverPredicted) {
  sim::ClusterSimulator cs(SystemId::kPolaris, hal::Model::kCuda,
                           App::kProxy);
  const sim::SimPoint p = cs.simulate(shared_cylinder(), 8, 1);
  const auto pred = cs.predict(shared_cylinder(), 8, 1);
  const double eff = sim::architectural_efficiency(p, pred);
  EXPECT_NEAR(eff, p.mflups / pred.mflups, 1e-12);
  EXPECT_GT(eff, 0.0);
  EXPECT_LT(eff, 1.5);
}

TEST(Simulator, SurfaceGuardOnlyShrinksHalos) {
  // With the guard disabled (huge shape constant), communication can only
  // be larger or equal.
  sim::Workload guarded = sim::Workload::cylinder(
      sim::DecompositionKind::kBisection, /*measure_scale=*/1.5);
  sim::Workload unguarded = sim::Workload::cylinder(
      sim::DecompositionKind::kBisection, /*measure_scale=*/1.5);
  unguarded.set_surface_shape(1e18);
  sim::ClusterSimulator cs(SystemId::kPolaris, hal::Model::kCuda,
                           App::kHarvey);
  for (int devices : {8, 64, 256}) {
    const sim::SimPoint g = cs.simulate(guarded, devices, 2);
    const sim::SimPoint u = cs.simulate(unguarded, devices, 2);
    EXPECT_LE(u.mflups, g.mflups + 1e-9) << devices;
  }
}
