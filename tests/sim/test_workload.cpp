// Workload model tests: measured statistics and the cubic/quadratic
// extrapolation used in place of instantiating billion-point problems.

#include <gtest/gtest.h>

#include <numeric>

#include "sim/workload.hpp"

namespace sim = hemo::sim;

namespace {

sim::Workload small_cylinder() {
  // Small measurement instance keeps the test fast.
  return sim::Workload::cylinder(sim::DecompositionKind::kBisection,
                                 /*measure_scale=*/1.5,
                                 /*target_base_scale=*/12.0);
}

}  // namespace

TEST(Workload, StatsPartitionTheMeasuredPoints) {
  sim::Workload w = small_cylinder();
  for (int ranks : {2, 4, 8, 16}) {
    const sim::RankStats& stats = w.stats(ranks);
    EXPECT_EQ(stats.n_ranks, ranks);
    EXPECT_EQ(std::accumulate(stats.points.begin(), stats.points.end(),
                              std::int64_t{0}),
              w.measured_points());
  }
}

TEST(Workload, StatsAreCachedAcrossCalls) {
  sim::Workload w = small_cylinder();
  const sim::RankStats& a = w.stats(8);
  const sim::RankStats& b = w.stats(8);
  EXPECT_EQ(&a, &b);
}

TEST(Workload, ExtrapolationIsCubicInPointsQuadraticInHalos) {
  sim::Workload w = small_cylinder();
  const double r = w.base_linear_ratio();
  EXPECT_DOUBLE_EQ(r, 8.0);  // 12 / 1.5
  EXPECT_DOUBLE_EQ(w.point_scale(1), r * r * r);
  EXPECT_DOUBLE_EQ(w.point_scale(2), 8.0 * r * r * r);  // (2r)^3
  EXPECT_DOUBLE_EQ(w.halo_scale(1), r * r);
  EXPECT_DOUBLE_EQ(w.halo_scale(4), 16.0 * r * r);  // (4r)^2
}

TEST(Workload, TargetPointsMatchAnalyticCylinderSize) {
  sim::Workload w = small_cylinder();
  // Target base problem: the paper's proxy at size 12 (radius 96,
  // length 1008): ~pi * 96^2 * 1008 fluid points.
  const double expected = 3.14159265 * 96.0 * 96.0 * 1008.0;
  EXPECT_NEAR(w.target_points(1) / expected, 1.0, 0.05);
}

TEST(Workload, AortaUsesBisectionAndElevatedSurfaceShape) {
  sim::Workload w = sim::Workload::aorta(/*measure_spacing_mm=*/2.0);
  EXPECT_EQ(w.kind(), sim::DecompositionKind::kBisection);
  EXPECT_GT(w.surface_shape(), 26.0);
  EXPECT_NEAR(w.base_linear_ratio(), 2.0 / 0.110, 1e-9);
}

TEST(Workload, HaloVolumesAreSymmetricPerPair) {
  sim::Workload w = small_cylinder();
  const sim::RankStats& stats = w.stats(8);
  for (const auto& m : stats.halos) {
    bool found = false;
    for (const auto& rev : stats.halos)
      if (rev.src == m.dst && rev.dst == m.src) {
        EXPECT_EQ(rev.values, m.values);
        found = true;
      }
    EXPECT_TRUE(found);
  }
}

TEST(Workload, ImbalanceNearOneForBothGeometries) {
  sim::Workload cyl = small_cylinder();
  EXPECT_LT(cyl.stats(16).imbalance, 1.01);
  sim::Workload aorta = sim::Workload::aorta(2.2);
  EXPECT_LT(aorta.stats(16).imbalance, 1.05);
}
