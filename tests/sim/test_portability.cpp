// Performance-portability metric tests: the harmonic-mean definition,
// its non-portable-means-zero rule, and the study-level conclusion that
// only Kokkos backends can cover all four systems.

#include <gtest/gtest.h>

#include "sim/portability.hpp"

namespace sim = hemo::sim;
namespace sys = hemo::sys;
namespace hal = hemo::hal;

TEST(PerformancePortability, HarmonicMeanOfEqualValuesIsThatValue) {
  EXPECT_DOUBLE_EQ(sim::performance_portability({0.5, 0.5, 0.5}, 3), 0.5);
}

TEST(PerformancePortability, HarmonicMeanIsDominatedByTheWorstPlatform) {
  const double pp = sim::performance_portability({1.0, 1.0, 0.1}, 3);
  EXPECT_NEAR(pp, 3.0 / (1.0 + 1.0 + 10.0), 1e-12);
  EXPECT_LT(pp, (1.0 + 1.0 + 0.1) / 3.0);  // below the arithmetic mean
}

TEST(PerformancePortability, MissingPlatformMeansZero) {
  EXPECT_DOUBLE_EQ(sim::performance_portability({0.9, 0.8}, 3), 0.0);
}

TEST(PerformancePortability, NonPositiveEfficiencyMeansZero) {
  EXPECT_DOUBLE_EQ(sim::performance_portability({0.9, 0.0, 0.8}, 3), 0.0);
}

TEST(PerformancePortability, SinglePlatformIsItsOwnEfficiency) {
  EXPECT_DOUBLE_EQ(sim::performance_portability({0.73}, 1), 0.73);
}

namespace {

sim::Workload& shared_workload() {
  static sim::Workload w = sim::Workload::cylinder(
      sim::DecompositionKind::kBisection, /*measure_scale=*/1.5);
  return w;
}

}  // namespace

TEST(PortabilityTable, OnlyKokkosSyclCoversAllFourSystems) {
  const auto rows = sim::portability_table(
      sim::App::kHarvey, shared_workload(), 64, 2,
      sim::EfficiencyKind::kApplication);
  for (const auto& row : rows) {
    if (row.model == hal::Model::kKokkosSycl) {
      // Runs on Polaris, Crusher and Sunspot plus (per the paper's single
      // Kokkos codebase) would need Summit; in the study's availability
      // matrix Kokkos-SYCL covers 3 of 4, so even it scores zero on the
      // strict all-systems metric at this count.
      EXPECT_EQ(row.platforms, 3);
    }
    if (row.platforms < 4) EXPECT_DOUBLE_EQ(row.pp_all, 0.0);
    EXPECT_GT(row.pp_supported, 0.0);
    EXPECT_LE(row.pp_supported, 1.0 + 1e-9);
  }
}

TEST(PortabilityTable, SingleSystemNativeModelsScoreHighOnSupported) {
  // CUDA runs only on Summit and Polaris, where it is (near-)best: its
  // supported-set PP must beat Kokkos-OpenACC's.
  const auto rows = sim::portability_table(
      sim::App::kHarvey, shared_workload(), 64, 2,
      sim::EfficiencyKind::kApplication);
  double cuda = 0.0, kacc = 0.0;
  for (const auto& row : rows) {
    if (row.model == hal::Model::kCuda) cuda = row.pp_supported;
    if (row.model == hal::Model::kKokkosOpenAcc) kacc = row.pp_supported;
  }
  EXPECT_GT(cuda, kacc);
}

TEST(PortabilityTable, EfficienciesRespectTheirDefinitions) {
  const auto rows = sim::portability_table(
      sim::App::kHarvey, shared_workload(), 16, 1,
      sim::EfficiencyKind::kApplication);
  // Application efficiency: some model achieves 1.0 on each system.
  for (const sys::SystemId id : sys::kAllSystems) {
    double best = 0.0;
    for (const auto& row : rows) {
      auto it = row.efficiency.find(id);
      if (it != row.efficiency.end()) best = std::max(best, it->second);
    }
    EXPECT_NEAR(best, 1.0, 1e-12) << sys::system_spec(id).name;
  }
}
