// GPU performance model tests (Eqs. 1-4 of Section 6): the face-count
// correction, the surface law, bandwidth-bound stream-collide time, and
// qualitative properties of the prediction.

#include <gtest/gtest.h>

#include <cmath>

#include "perf/model.hpp"

namespace perf = hemo::perf;
namespace sys = hemo::sys;
using sys::SystemId;

namespace {

perf::PerformanceModel polaris_model() {
  return perf::PerformanceModel(sys::system_spec(SystemId::kPolaris));
}

}  // namespace

class FaceCorrectionSweep
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(FaceCorrectionSweep, MatchesEquationFour) {
  const auto [n_gpus, expected] = GetParam();
  EXPECT_DOUBLE_EQ(polaris_model().face_correction(n_gpus), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Values, FaceCorrectionSweep,
    ::testing::Values(std::make_pair(1, 0.0), std::make_pair(2, 2.0),
                      std::make_pair(4, 4.0), std::make_pair(8, 6.0),
                      std::make_pair(16, 8.0), std::make_pair(32, 10.0),
                      std::make_pair(64, 12.0),
                      // Saturation: w caps at 2 * 6 = 12 faces.
                      std::make_pair(128, 12.0), std::make_pair(1024, 12.0),
                      std::make_pair(4096, 12.0)));

TEST(PerformanceModel, SurfaceFollowsVTwoThirds) {
  const auto model = polaris_model();
  const double s1 = model.communication_surface(1e6, 64);
  const double s8 = model.communication_surface(8e6, 64);
  EXPECT_NEAR(s8 / s1, 4.0, 1e-9);  // volume x8 => surface x4
  EXPECT_NEAR(s1, 12.0 * std::pow(1e6, 2.0 / 3.0), 1e-6);
}

TEST(PerformanceModel, SingleDeviceHasNoCommunication) {
  const auto p = polaris_model().predict(1e7, 1);
  EXPECT_DOUBLE_EQ(p.t_comm_s, 0.0);
  EXPECT_EQ(p.comm_events, 0);
  EXPECT_DOUBLE_EQ(p.t_total_s, p.t_streamcollide_s);
}

TEST(PerformanceModel, StreamCollideTimeIsBytesOverBandwidth) {
  // Eq. 1 with the asymptotic bandwidth: large per-device volume.
  const auto model = polaris_model();
  const auto p = model.predict(1e9, 1);
  const double expected_seconds =
      1e9 * model.params().bytes_per_point / (1.30e12);
  // Within the BabelStream droop allowance (~2% at this working set).
  EXPECT_NEAR(p.t_streamcollide_s, expected_seconds, 0.03 * expected_seconds);
}

TEST(PerformanceModel, MflupsIsPointsOverTime) {
  const auto p = polaris_model().predict(5e7, 16);
  EXPECT_NEAR(p.mflups, 5e7 / p.t_total_s / 1e6, 1e-6);
}

TEST(PerformanceModel, PredictionIsMonotoneInBandwidth) {
  sys::SystemSpec fast = sys::system_spec(SystemId::kSummit);
  sys::SystemSpec faster = fast;
  faster.mem_bandwidth_tbs *= 2.0;
  const auto slow_p = perf::PerformanceModel(fast).predict(1e8, 8);
  const auto fast_p = perf::PerformanceModel(faster).predict(1e8, 8);
  EXPECT_GT(fast_p.mflups, slow_p.mflups);
}

TEST(PerformanceModel, MoreDevicesMeansMoreAggregateThroughput) {
  const auto model = polaris_model();
  double prev = 0.0;
  for (int gpus : {1, 2, 4, 8, 16, 32, 64}) {
    const auto p = model.predict(1e9, gpus);
    EXPECT_GT(p.mflups, prev) << gpus;
    prev = p.mflups;
  }
}

TEST(PerformanceModel, StrongScalingEfficiencyDegrades) {
  // Per-device throughput falls as communication grows: MFLUPS at 64
  // devices is less than 32x the 2-device value.
  const auto model = polaris_model();
  const double m2 = model.predict(1e9, 2).mflups;
  const double m64 = model.predict(1e9, 64).mflups;
  EXPECT_LT(m64, 32.0 * m2);
  EXPECT_GT(m64, 8.0 * m2);  // but not catastrophically
}

TEST(PerformanceModel, CommTimeGrowsWithDeviceCountAtFixedProblem) {
  const auto model = polaris_model();
  // More devices: more faces (until saturation) but smaller per-face
  // messages; the per-iteration comm *fraction* must rise because compute
  // shrinks faster (V vs V^(2/3)).
  const auto p8 = model.predict(1e9, 8);
  const auto p512 = model.predict(1e9, 512);
  EXPECT_GT(p512.t_comm_s / p512.t_total_s, p8.t_comm_s / p8.t_total_s);
}

TEST(PerformanceModel, HigherBandwidthSystemPredictsHigherMflups) {
  // Predictions track Table 1 bandwidth: Polaris (1.30) > Crusher (1.28)
  // > Sunspot (0.997) > Summit (0.770) for a single device.
  auto mflups = [](SystemId id) {
    return perf::PerformanceModel(sys::system_spec(id)).predict(1e8, 1).mflups;
  };
  EXPECT_GT(mflups(SystemId::kPolaris), mflups(SystemId::kCrusher));
  EXPECT_GT(mflups(SystemId::kCrusher), mflups(SystemId::kSunspot));
  EXPECT_GT(mflups(SystemId::kSunspot), mflups(SystemId::kSummit));
}

TEST(PerformanceModel, CrusherPredictedAtOrAbovePolarisAtScale) {
  // Section 9.1: "our performance model suggests that native HIP on
  // Crusher would perform at about the same or slightly better than CUDA
  // on Polaris" over the full range of device counts (Crusher's fatter
  // interconnect compensates its marginally lower bandwidth).
  const auto crusher =
      perf::PerformanceModel(sys::system_spec(SystemId::kCrusher));
  const auto polaris =
      perf::PerformanceModel(sys::system_spec(SystemId::kPolaris));
  for (int gpus : {64, 128, 256, 512, 1024}) {
    const double c = crusher.predict(2e9, gpus).mflups;
    const double p = polaris.predict(2e9, gpus).mflups;
    EXPECT_GT(c, 0.95 * p) << gpus;
  }
}

TEST(PerformanceModel, RejectsNonPositiveInputs) {
  const auto model = polaris_model();
  EXPECT_DEATH(model.predict(0.0, 4), "Precondition");
  EXPECT_DEATH(model.predict(1e6, 0), "Precondition");
}
