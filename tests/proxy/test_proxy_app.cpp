// Proxy application tests: geometry parameterisation, perfect slab
// balance, MFLUPS accounting, flux development, and host-dialect parity.

#include <gtest/gtest.h>

#include "proxy/proxy_app.hpp"

namespace proxy = hemo::proxy;
namespace hal = hemo::hal;

namespace {

proxy::ProxyConfig small_config(int ranks = 1) {
  proxy::ProxyConfig c;
  c.scale = 0.5;  // length 42, radius 4: fast tests
  c.ranks = ranks;
  return c;
}

}  // namespace

TEST(ProxyApp, GeometryFollowsThePaperParameterisation) {
  proxy::ProxyApp app(small_config());
  const hemo::Box box = app.lattice().bounding_box();
  EXPECT_EQ(box.extent(2), 42);  // 84 * 0.5
  // Radius 4: the cross-section fits in an 8x8 square.
  EXPECT_LE(box.extent(0), 8);
  EXPECT_LE(box.extent(1), 8);
}

TEST(ProxyApp, MflupsAccountingIsPointsTimesStepsOverSeconds) {
  proxy::ProxyApp app(small_config());
  const proxy::ProxyMeasurement m = app.run(5);
  EXPECT_EQ(m.steps, 5);
  EXPECT_EQ(m.fluid_points, app.fluid_points());
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_NEAR(m.mflups,
              static_cast<double>(m.fluid_points) * m.steps / m.seconds / 1e6,
              1e-9 * m.mflups);
}

TEST(ProxyApp, MultiRankRunMatchesSingleRank) {
  proxy::ProxyApp single(small_config(1));
  proxy::ProxyApp multi(small_config(4));
  single.run(30);
  multi.run(30);
  // Identical physics regardless of decomposition.
  EXPECT_DOUBLE_EQ(single.mean_axial_velocity(21),
                   multi.mean_axial_velocity(21));
}

TEST(ProxyApp, ChannelFlowDevelopsTowardTheInletFlux) {
  proxy::ProxyConfig c = small_config();
  c.inlet_velocity = 0.02;
  proxy::ProxyApp app(c);
  app.run(2500);
  // Mass conservation: the developed mid-channel mean axial velocity
  // matches the prescribed inlet plug, up to the slight downstream
  // acceleration from the axial density (pressure) gradient that drives
  // the weakly compressible LBM flow.
  EXPECT_NEAR(app.mean_axial_velocity(21), c.inlet_velocity,
              0.12 * c.inlet_velocity);
  EXPECT_GT(app.mean_axial_velocity(21), c.inlet_velocity);
}

TEST(ProxyApp, ExpectedPeakVelocityIsTwiceTheMean) {
  proxy::ProxyConfig c = small_config();
  c.inlet_velocity = 0.015;
  proxy::ProxyApp app(c);
  EXPECT_DOUBLE_EQ(app.expected_peak_velocity(), 0.03);
}

TEST(ProxyApp, DialectRunsProduceConsistentThroughput) {
  proxy::ProxyApp app(small_config());
  const auto cuda = app.run_on_model(hal::Model::kCuda, 5);
  const auto sycl = app.run_on_model(hal::Model::kSycl, 5);
  EXPECT_GT(cuda.mflups, 0.0);
  EXPECT_GT(sycl.mflups, 0.0);
  EXPECT_EQ(cuda.fluid_points, sycl.fluid_points);
}

TEST(ProxyApp, RejectsInvalidConfiguration) {
  proxy::ProxyConfig c = small_config();
  c.ranks = 0;
  EXPECT_DEATH(proxy::ProxyApp{c}, "Precondition");
}
