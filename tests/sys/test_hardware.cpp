// Hardware registry tests: Table 1 fidelity, benchmark substrates
// (BabelStream / PingPong models) and the piecewise scaling schedule.

#include <gtest/gtest.h>

#include "sys/hardware.hpp"

namespace sys = hemo::sys;
using sys::SystemId;

TEST(Hardware, RegistryHasTheFourSystems) {
  const auto& all = sys::all_system_specs();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(sys::system_spec(SystemId::kSummit).name, "Summit");
  EXPECT_EQ(sys::system_spec(SystemId::kPolaris).name, "Polaris");
  EXPECT_EQ(sys::system_spec(SystemId::kCrusher).name, "Crusher");
  EXPECT_EQ(sys::system_spec(SystemId::kSunspot).name, "Sunspot");
}

TEST(Hardware, Table1ValuesAreEncodedExactly) {
  const auto& summit = sys::system_spec(SystemId::kSummit);
  EXPECT_EQ(summit.devices_per_node, 6);
  EXPECT_DOUBLE_EQ(summit.gpu_memory_gb, 16.0);
  EXPECT_DOUBLE_EQ(summit.mem_bandwidth_tbs, 0.770);
  EXPECT_DOUBLE_EQ(summit.cpu_gpu_gbs, 50.0);
  EXPECT_DOUBLE_EQ(summit.internode_gbs, 25.0);
  EXPECT_EQ(summit.cores_per_cpu, 21);

  const auto& polaris = sys::system_spec(SystemId::kPolaris);
  EXPECT_EQ(polaris.devices_per_node, 4);
  EXPECT_DOUBLE_EQ(polaris.gpu_memory_gb, 40.0);
  EXPECT_DOUBLE_EQ(polaris.mem_bandwidth_tbs, 1.30);

  const auto& crusher = sys::system_spec(SystemId::kCrusher);
  EXPECT_EQ(crusher.devices_per_node, 8);  // 8 GCDs = 4 MI250X
  EXPECT_DOUBLE_EQ(crusher.gpu_memory_gb, 64.0);
  EXPECT_DOUBLE_EQ(crusher.mem_bandwidth_tbs, 1.28);
  EXPECT_DOUBLE_EQ(crusher.internode_gbs, 100.0);

  const auto& sunspot = sys::system_spec(SystemId::kSunspot);
  EXPECT_EQ(sunspot.devices_per_node, 12);  // 12 tiles = 6 PVC
  EXPECT_DOUBLE_EQ(sunspot.gpu_memory_gb, 64.0);
  EXPECT_DOUBLE_EQ(sunspot.mem_bandwidth_tbs, 0.997);
  EXPECT_EQ(sunspot.max_devices, 256);
}

TEST(Hardware, NativeModelsMatchThePaper) {
  EXPECT_EQ(sys::system_spec(SystemId::kSummit).native_model,
            hemo::hal::Model::kCuda);
  EXPECT_EQ(sys::system_spec(SystemId::kPolaris).native_model,
            hemo::hal::Model::kCuda);
  EXPECT_EQ(sys::system_spec(SystemId::kCrusher).native_model,
            hemo::hal::Model::kHip);
  EXPECT_EQ(sys::system_spec(SystemId::kSunspot).native_model,
            hemo::hal::Model::kSycl);
}

TEST(Hardware, BabelStreamApproachesTable1Asymptotically) {
  for (const auto& spec : sys::all_system_specs()) {
    const double measured =
        sys::babelstream_bandwidth_tbs(spec, 256ll * 1024 * 1024);
    EXPECT_NEAR(measured, spec.mem_bandwidth_tbs,
                0.02 * spec.mem_bandwidth_tbs)
        << spec.name;
  }
}

TEST(Hardware, BabelStreamDroopsForSmallArrays) {
  const auto& spec = sys::system_spec(SystemId::kPolaris);
  const double small = sys::babelstream_bandwidth_tbs(spec, 64 * 1024);
  const double large =
      sys::babelstream_bandwidth_tbs(spec, 512ll * 1024 * 1024);
  EXPECT_LT(small, 0.25 * large);
}

TEST(Hardware, BabelStreamIsMonotoneInArraySize) {
  const auto& spec = sys::system_spec(SystemId::kSummit);
  double prev = 0.0;
  for (std::int64_t bytes = 1024; bytes <= (1ll << 32); bytes *= 4) {
    const double b = sys::babelstream_bandwidth_tbs(spec, bytes);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(Hardware, PingPongIsLatencyPlusBandwidth) {
  const auto& spec = sys::system_spec(SystemId::kCrusher);
  const double t0 = sys::pingpong_time_s(spec, sys::LinkKind::kInternode, 0);
  EXPECT_DOUBLE_EQ(t0, spec.internode_latency_us * 1e-6);
  const double t1m =
      sys::pingpong_time_s(spec, sys::LinkKind::kInternode, 1 << 20);
  EXPECT_GT(t1m, t0);
}

TEST(Hardware, PingPongRendezvousStepAtEagerLimit) {
  const auto& spec = sys::system_spec(SystemId::kSummit);
  const double just_below =
      sys::pingpong_time_s(spec, sys::LinkKind::kInternode, 64 * 1024);
  const double just_above =
      sys::pingpong_time_s(spec, sys::LinkKind::kInternode, 64 * 1024 + 1);
  EXPECT_GT(just_above - just_below,
            1.5 * sys::link_latency_s(spec, sys::LinkKind::kInternode));
}

TEST(Hardware, MeasuredLatencyOrderingMatchesSection91) {
  // The paper measured lower internodal latencies on Summit and Crusher
  // than on Sunspot.
  const double summit =
      sys::link_latency_s(sys::system_spec(SystemId::kSummit),
                          sys::LinkKind::kInternode);
  const double crusher =
      sys::link_latency_s(sys::system_spec(SystemId::kCrusher),
                          sys::LinkKind::kInternode);
  const double sunspot =
      sys::link_latency_s(sys::system_spec(SystemId::kSunspot),
                          sys::LinkKind::kInternode);
  EXPECT_LT(summit, sunspot);
  EXPECT_LT(crusher, sunspot);
}

TEST(Schedule, CoversTwoTo1024WithSizeJumpsAt16And128) {
  const auto schedule = sys::piecewise_schedule(1024);
  ASSERT_EQ(schedule.size(), 12u);
  EXPECT_EQ(schedule.front().devices, 2);
  EXPECT_EQ(schedule.front().size_multiplier, 1);
  EXPECT_EQ(schedule.back().devices, 1024);
  EXPECT_EQ(schedule.back().size_multiplier, 4);

  // Boundary counts appear twice with both sizes (the visual "jump").
  int sixteen = 0, one_two_eight = 0;
  for (const auto& sp : schedule) {
    if (sp.devices == 16) ++sixteen;
    if (sp.devices == 128) ++one_two_eight;
  }
  EXPECT_EQ(sixteen, 2);
  EXPECT_EQ(one_two_eight, 2);
}

TEST(Schedule, RespectsSunspotAvailabilityCap) {
  const auto schedule = sys::piecewise_schedule(256);
  for (const auto& sp : schedule) EXPECT_LE(sp.devices, 256);
  EXPECT_EQ(schedule.back().devices, 256);
}

TEST(Schedule, EachSegmentStrongScalesFourPowersOfTwo) {
  const auto schedule = sys::piecewise_schedule(1024);
  // Segment sizes: 4 points at x1, 4 at x2, 4 at x4.
  int count1 = 0, count2 = 0, count4 = 0;
  for (const auto& sp : schedule) {
    if (sp.size_multiplier == 1) ++count1;
    if (sp.size_multiplier == 2) ++count2;
    if (sp.size_multiplier == 4) ++count4;
  }
  EXPECT_EQ(count1, 4);
  EXPECT_EQ(count2, 4);
  EXPECT_EQ(count4, 4);
}
