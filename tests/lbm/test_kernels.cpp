// Kernel-body invariants: collision conservation laws, relaxation toward
// equilibrium, the Guo forcing discretization, and Zou-He boundary moment
// exactness — all tested directly on the per-point kernel functions.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "base/rng.hpp"
#include "lbm/kernels.hpp"

namespace lbm = hemo::lbm;
using hemo::SplitMix64;

namespace {

std::array<double, lbm::kQ> random_state(SplitMix64& rng) {
  std::array<double, lbm::kQ> f;
  for (int q = 0; q < lbm::kQ; ++q)
    f[q] = lbm::kWeights[q] * rng.uniform(0.8, 1.2);
  return f;
}

}  // namespace

class CollisionConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollisionConservation, MassAndMomentumConservedWithoutForce) {
  SplitMix64 rng(GetParam());
  const auto f = random_state(rng);
  const lbm::Moments m = lbm::moments_of(f.data(), 0, 0, 0);
  const double omega = rng.uniform(0.3, 1.8);

  double out[lbm::kQ];
  lbm::bgk_collide(f.data(), m, omega, 0, 0, 0, out);
  const lbm::Moments after = lbm::moments_of(out, 0, 0, 0);

  EXPECT_NEAR(after.rho, m.rho, 1e-13);
  EXPECT_NEAR(after.ux, m.ux, 1e-13);
  EXPECT_NEAR(after.uy, m.uy, 1e-13);
  EXPECT_NEAR(after.uz, m.uz, 1e-13);
}

TEST_P(CollisionConservation, ForceAddsExactlyOneImpulse) {
  SplitMix64 rng(GetParam());
  const auto f = random_state(rng);
  const double fx = rng.uniform(-1e-3, 1e-3);
  const double fy = rng.uniform(-1e-3, 1e-3);
  const double fz = rng.uniform(-1e-3, 1e-3);
  const double omega = rng.uniform(0.3, 1.8);

  const lbm::Moments m = lbm::moments_of(f.data(), fx, fy, fz);
  double out[lbm::kQ];
  lbm::bgk_collide(f.data(), m, omega, fx, fy, fz, out);

  // Guo scheme: raw momentum after collision = raw momentum before + F/2
  // relaxation effect... verified via the invariant that the *corrected*
  // velocity advances by exactly F/rho per step at steady density:
  // sum(out * c) = sum(f * c) + F * (1 - ... ). The robust check is mass
  // conservation plus the known total: sum(out*c) + F/2 gives the
  // post-step velocity; for BGK+Guo, sum(out*c) = sum(f*c) + F*(1/2+...).
  double rho_after = 0.0, mz_before = 0.0, mz_after = 0.0;
  for (int q = 0; q < lbm::kQ; ++q) {
    rho_after += out[q];
    mz_before += f[q] * lbm::c(q, 2);
    mz_after += out[q] * lbm::c(q, 2);
  }
  EXPECT_NEAR(rho_after, m.rho, 1e-13);
  // BGK relaxes raw momentum toward rho*u = raw + F/2, then the source
  // term adds (1 - omega/2) F: net change = omega*F/2 + (1-omega/2)*F = F.
  EXPECT_NEAR(mz_after, mz_before + fz, 1e-13);
}

TEST_P(CollisionConservation, EquilibriumIsAFixedPointWithoutForce) {
  SplitMix64 rng(GetParam());
  const double rho = rng.uniform(0.8, 1.2);
  const double ux = rng.uniform(-0.05, 0.05);
  const double uy = rng.uniform(-0.05, 0.05);
  const double uz = rng.uniform(-0.05, 0.05);
  double f[lbm::kQ];
  for (int q = 0; q < lbm::kQ; ++q)
    f[q] = lbm::equilibrium(q, rho, ux, uy, uz);

  const lbm::Moments m = lbm::moments_of(f, 0, 0, 0);
  double out[lbm::kQ];
  lbm::bgk_collide(f, m, 1.0, 0, 0, 0, out);
  for (int q = 0; q < lbm::kQ; ++q) EXPECT_NEAR(out[q], f[q], 1e-14);
}

TEST_P(CollisionConservation, RelaxationContractsTowardEquilibrium) {
  SplitMix64 rng(GetParam());
  const auto f = random_state(rng);
  const lbm::Moments m = lbm::moments_of(f.data(), 0, 0, 0);
  const double omega = rng.uniform(0.2, 1.0);  // contraction regime

  double out[lbm::kQ];
  lbm::bgk_collide(f.data(), m, omega, 0, 0, 0, out);
  for (int q = 0; q < lbm::kQ; ++q) {
    const double feq = lbm::equilibrium(q, m.rho, m.ux, m.uy, m.uz);
    EXPECT_LE(std::abs(out[q] - feq), std::abs(f[q] - feq) + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollisionConservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------------------------------------
// Zou-He completion: after filling the unknowns, the distribution's moments
// must equal the prescribed (rho, u) exactly for a face-interior point.
// ---------------------------------------------------------------------------

namespace {

/// Builds a face-interior inlet state: knowns from a slightly perturbed
/// equilibrium, unknowns zeroed.
std::uint32_t make_inlet_state(SplitMix64& rng, double f[lbm::kQ]) {
  std::uint32_t unknown = 0;
  for (int q = 0; q < lbm::kQ; ++q) {
    if (lbm::c(q, 2) > 0) {
      unknown |= 1u << q;
      f[q] = 0.0;
    } else {
      f[q] = lbm::equilibrium(q, 1.0, 0.0, 0.0, 0.01) *
             rng.uniform(0.97, 1.03);
    }
  }
  return unknown;
}

}  // namespace

class ZouHeExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZouHeExactness, VelocityInletEnforcesPrescribedMoments) {
  SplitMix64 rng(GetParam());
  double f[lbm::kQ];
  const std::uint32_t unknown = make_inlet_state(rng, f);

  const double w = 0.03;
  double s0 = 0.0, sm = 0.0;
  for (int q = 0; q < lbm::kQ; ++q) {
    if (lbm::c(q, 2) == 0) s0 += f[q];
    if (lbm::c(q, 2) < 0) sm += f[q];
  }
  const double rho = (s0 + 2.0 * sm) / (1.0 - w);
  lbm::detail::zou_he_complete(f, unknown, rho, 0.0, 0.0, w, 11, 14, 15, 18);

  const lbm::Moments m = lbm::moments_of(f, 0, 0, 0);
  EXPECT_NEAR(m.rho, rho, 1e-13);
  EXPECT_NEAR(m.ux, 0.0, 1e-13);
  EXPECT_NEAR(m.uy, 0.0, 1e-13);
  EXPECT_NEAR(m.uz, w, 1e-13);
}

TEST_P(ZouHeExactness, PressureOutletEnforcesPrescribedDensity) {
  SplitMix64 rng(GetParam());
  double f[lbm::kQ];
  std::uint32_t unknown = 0;
  for (int q = 0; q < lbm::kQ; ++q) {
    if (lbm::c(q, 2) < 0) {
      unknown |= 1u << q;
      f[q] = 0.0;
    } else {
      f[q] = lbm::equilibrium(q, 1.0, 0.0, 0.0, 0.01) *
             rng.uniform(0.97, 1.03);
    }
  }
  const double rho_spec = 1.0;
  double s0 = 0.0, sp = 0.0;
  for (int q = 0; q < lbm::kQ; ++q) {
    if (lbm::c(q, 2) == 0) s0 += f[q];
    if (lbm::c(q, 2) > 0) sp += f[q];
  }
  const double uz = -1.0 + (s0 + 2.0 * sp) / rho_spec;
  lbm::detail::zou_he_complete(f, unknown, rho_spec, 0.0, 0.0, uz, 13, 12, 17,
                               16);

  const lbm::Moments m = lbm::moments_of(f, 0, 0, 0);
  EXPECT_NEAR(m.rho, rho_spec, 1e-13);
  EXPECT_NEAR(m.ux, 0.0, 1e-13);
  EXPECT_NEAR(m.uy, 0.0, 1e-13);
  EXPECT_NEAR(m.uz, uz, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZouHeExactness,
                         ::testing::Values(7, 11, 19, 23, 42, 77, 101, 997));

// ---------------------------------------------------------------------------
// AoS/SoA layout equivalence of the fused kernel.
// ---------------------------------------------------------------------------

TEST(LayoutEquivalence, AosMatchesSoaOnRandomBulkState) {
  // 3x3x3 periodic block: every point is bulk with full adjacency.
  std::vector<hemo::Coord> coords;
  for (int z = 0; z < 3; ++z)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 3; ++x) coords.push_back({x, y, z});
  lbm::Periodicity per;
  for (int a = 0; a < 3; ++a) {
    per.axis[a] = true;
    per.period[a] = 3;
  }
  const lbm::SparseLattice lattice(coords, per);
  const auto n = static_cast<std::size_t>(lattice.size());

  SplitMix64 rng(1234);
  std::vector<double> f_soa(lbm::kQ * n), f_aos(lbm::kQ * n);
  for (std::size_t i = 0; i < n; ++i)
    for (int q = 0; q < lbm::kQ; ++q) {
      const double v = lbm::kWeights[q] * rng.uniform(0.9, 1.1);
      f_soa[static_cast<std::size_t>(q) * n + i] = v;
      f_aos[i * lbm::kQ + static_cast<std::size_t>(q)] = v;
    }

  std::vector<std::uint8_t> types(n, 0);
  std::vector<double> out_soa(lbm::kQ * n), out_aos(lbm::kQ * n);

  lbm::KernelArgs a;
  a.adjacency = lattice.adjacency().data();
  a.node_type = types.data();
  a.n = static_cast<std::int64_t>(n);
  a.omega = 1.2;
  a.force_z = 1e-5;

  a.f_in = f_soa.data();
  a.f_out = out_soa.data();
  for (std::int64_t i = 0; i < a.n; ++i) lbm::stream_collide_point(a, i);

  a.f_in = f_aos.data();
  a.f_out = out_aos.data();
  for (std::int64_t i = 0; i < a.n; ++i) lbm::stream_collide_point_aos(a, i);

  for (std::size_t i = 0; i < n; ++i)
    for (int q = 0; q < lbm::kQ; ++q)
      EXPECT_DOUBLE_EQ(out_soa[static_cast<std::size_t>(q) * n + i],
                       out_aos[i * lbm::kQ + static_cast<std::size_t>(q)]);
}

TEST(TwoPassEquivalence, StreamThenCollideMatchesFusedKernel) {
  std::vector<hemo::Coord> coords;
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 3; ++x) coords.push_back({x, y, z});
  lbm::Periodicity per;
  per.axis[2] = true;
  per.period[2] = 4;
  const lbm::SparseLattice lattice(coords, per);
  const auto n = static_cast<std::size_t>(lattice.size());

  SplitMix64 rng(77);
  std::vector<double> f(lbm::kQ * n);
  for (std::size_t k = 0; k < f.size(); ++k)
    f[k] = lbm::kWeights[static_cast<int>(k / n)] * rng.uniform(0.9, 1.1);

  std::vector<std::uint8_t> types(n, 0);
  std::vector<double> fused(lbm::kQ * n), two_pass(lbm::kQ * n);

  lbm::KernelArgs a;
  a.adjacency = lattice.adjacency().data();
  a.node_type = types.data();
  a.n = static_cast<std::int64_t>(n);
  a.omega = 0.9;
  a.force_x = 2e-5;

  a.f_in = f.data();
  a.f_out = fused.data();
  for (std::int64_t i = 0; i < a.n; ++i) lbm::stream_collide_point(a, i);

  a.f_out = two_pass.data();
  for (std::int64_t i = 0; i < a.n; ++i) lbm::stream_point(a, i);
  for (std::int64_t i = 0; i < a.n; ++i) lbm::collide_point(a, i);

  for (std::size_t k = 0; k < f.size(); ++k)
    EXPECT_DOUBLE_EQ(fused[k], two_pass[k]);
}
