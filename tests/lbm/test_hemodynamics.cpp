// Hemodynamics tests: the cardiac inflow waveform, pulsatile channel
// response, and the deviatoric stress tensor against the analytic
// Poiseuille shear profile.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/cylinder.hpp"
#include "lbm/hemodynamics.hpp"
#include "lbm/solver.hpp"

namespace lbm = hemo::lbm;
namespace geom = hemo::geom;

TEST(CardiacWaveform, PeaksAtSystoleAndRestsAtBaseline) {
  const lbm::CardiacWaveform wave(600, 0.05, 0.2);
  EXPECT_NEAR(wave.at(100), 0.05, 1e-12);       // T/6: systolic peak
  EXPECT_NEAR(wave.at(0), 0.01, 1e-12);         // start: baseline
  EXPECT_NEAR(wave.at(400), 0.01, 1e-12);       // diastole: baseline
  EXPECT_NEAR(wave.at(599), 0.01, 1e-12);
}

TEST(CardiacWaveform, IsPeriodic) {
  const lbm::CardiacWaveform wave(500, 0.04);
  for (const std::int64_t s : {0, 37, 123, 499})
    EXPECT_DOUBLE_EQ(wave.at(s), wave.at(s + 500));
}

TEST(CardiacWaveform, IsContinuousAcrossTheSystolicWindow) {
  const lbm::CardiacWaveform wave(900, 0.06);
  for (int s = 1; s < 900; ++s)
    EXPECT_LT(std::abs(wave.at(s) - wave.at(s - 1)), 0.002)
        << "jump at step " << s;
}

TEST(CardiacWaveform, MeanLiesBetweenBaselineAndPeak) {
  const lbm::CardiacWaveform wave(600, 0.05, 0.2);
  EXPECT_GT(wave.mean(), wave.baseline());
  EXPECT_LT(wave.mean(), wave.peak());
}

TEST(CardiacWaveform, RejectsUnphysicalParameters) {
  EXPECT_DEATH(lbm::CardiacWaveform(0, 0.05), "Precondition");
  EXPECT_DEATH(lbm::CardiacWaveform(100, 0.5), "Precondition");
}

TEST(PulsatileFlow, ChannelVelocityFollowsTheWaveform) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 5.0;
  spec.axial_per_scale = 16.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);

  lbm::SolverOptions options;
  options.tau = 0.9;
  options.outlet_density = 1.0;
  lbm::Solver solver(lattice, options);

  const lbm::CardiacWaveform wave(400, 0.03, 0.25);
  auto inlet_velocity = [&]() {
    double u = 0.0;
    int count = 0;
    for (hemo::PointIndex i = 0; i < solver.size(); ++i) {
      if (lattice->coord(i).z != 0) continue;
      const hemo::Coord& c = lattice->coord(i);
      const double dx = c.x - 4.5, dy = c.y - 4.5;
      if (dx * dx + dy * dy > 9.0) continue;  // face interior
      u += solver.moments(i).uz;
      ++count;
    }
    return u / count;
  };

  double tracked_peak = 0.0, tracked_min = 1.0;
  for (int step = 0; step < 800; ++step) {
    solver.set_inlet_velocity(wave.at(step));
    solver.step();
    if (step > 400) {  // second cycle: transients gone at the inlet
      const double u = inlet_velocity();
      tracked_peak = std::max(tracked_peak, u);
      tracked_min = std::min(tracked_min, u);
    }
  }
  // The Zou-He inlet enforces the waveform exactly per step.
  EXPECT_NEAR(tracked_peak, wave.peak(), 0.02 * wave.peak());
  EXPECT_NEAR(tracked_min, wave.baseline(), 0.05 * wave.baseline());
}

TEST(Stress, VanishesAtEquilibrium) {
  double f[lbm::kQ];
  for (int q = 0; q < lbm::kQ; ++q)
    f[q] = lbm::equilibrium(q, 1.1, 0.02, -0.01, 0.03);
  const lbm::StressTensor sigma = lbm::deviatoric_stress(f, 1.0);
  for (const double s : sigma) EXPECT_NEAR(s, 0.0, 1e-14);
}

TEST(Stress, PoiseuilleShearMatchesAnalyticProfile) {
  // sigma_xz = rho nu du_z/dx = -rho g x / 2 across the pipe.
  const double radius = 8.0;
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = radius;
  spec.axial_per_scale = 4.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);

  lbm::SolverOptions options;
  options.tau = 1.0;
  const double g = 1e-6;
  options.body_force = {0.0, 0.0, g};
  lbm::Solver solver(lattice, options);
  solver.run(4000);

  const auto rc = static_cast<std::int32_t>(std::ceil(radius));
  for (std::int32_t d = 1; d < rc - 2; ++d) {
    const hemo::PointIndex i = lattice->find(hemo::Coord{rc + d, rc, 2});
    ASSERT_NE(i, hemo::kSolidNeighbor);
    const double x = d + 0.5;  // distance from the axis along +x
    const double analytic = -0.5 * g * x;  // rho ~ 1
    const auto sigma = solver.stress(i);
    EXPECT_NEAR(sigma[4], analytic, 0.08 * std::abs(analytic) + 1e-9)
        << "offset " << d;
  }
}

TEST(Stress, ShearMagnitudeGrowsTowardTheWall) {
  const double radius = 6.0;
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = radius;
  spec.axial_per_scale = 4.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions options;
  options.tau = 0.8;
  options.body_force = {0.0, 0.0, 2e-6};
  lbm::Solver solver(lattice, options);
  solver.run(3000);

  const auto rc = static_cast<std::int32_t>(std::ceil(radius));
  double prev = -1.0;
  for (std::int32_t d = 0; d < rc - 1; ++d) {
    const hemo::PointIndex i = lattice->find(hemo::Coord{rc + d, rc, 1});
    if (i == hemo::kSolidNeighbor) break;
    const double mag = lbm::shear_magnitude(solver.stress(i));
    EXPECT_GT(mag, prev) << "offset " << d;
    prev = mag;
  }
}
