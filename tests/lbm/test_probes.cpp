// Flow-probe, dimensionless-number and checkpoint tests.

#include <gtest/gtest.h>

#include <cstdio>

#include "geom/cylinder.hpp"
#include "lbm/probes.hpp"
#include "resilience/policy.hpp"

namespace lbm = hemo::lbm;
namespace geom = hemo::geom;

namespace {

std::shared_ptr<lbm::SparseLattice> channel() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 5.0;
  spec.axial_per_scale = 24.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions driven_options() {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.inlet_velocity = 0.012;
  o.outlet_density = 1.0;
  return o;
}

}  // namespace

TEST(Probes, MassFluxIsConservedAlongTheChannelAtSteadyState) {
  lbm::Solver solver(channel(), driven_options());
  solver.run(4000);
  const double upstream = lbm::slice_mass_flux(solver, 4);
  const double mid = lbm::slice_mass_flux(solver, 12);
  const double downstream = lbm::slice_mass_flux(solver, 20);
  ASSERT_GT(upstream, 0.0);
  EXPECT_NEAR(mid / upstream, 1.0, 0.02);
  EXPECT_NEAR(downstream / upstream, 1.0, 0.02);
}

TEST(Probes, PressureDropsDownstream) {
  lbm::Solver solver(channel(), driven_options());
  solver.run(3000);
  // Driving a viscous channel needs a positive pressure gradient.
  EXPECT_GT(lbm::pressure_drop(solver, 3, 20), 0.0);
  // And it is monotone along the channel.
  EXPECT_GT(lbm::slice_mean_density(solver, 3),
            lbm::slice_mean_density(solver, 12));
  EXPECT_GT(lbm::slice_mean_density(solver, 12),
            lbm::slice_mean_density(solver, 20));
}

TEST(Probes, ProbingAnEmptySliceAborts) {
  lbm::Solver solver(channel(), driven_options());
  EXPECT_DEATH((void)lbm::slice_mass_flux(solver, 999), "Precondition");
}

// Body-force-driven periodic cylinder: the closed system whose invariants
// calibrate the resilience mass-drift guard (RS002).  Collisions and
// bounce-back conserve mass exactly up to rounding, so total mass must
// stay within the guard's own accumulated-rounding tolerance; the body
// force injects exactly one impulse per bulk point per step into the axial
// momentum, and none transversally.
TEST(Probes, MassAndMomentumConservationUnderBodyForce) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 5.0;
  spec.axial_per_scale = 16.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);

  lbm::SolverOptions o;
  o.tau = 0.8;
  o.body_force = {0.0, 0.0, 1e-6};
  lbm::Solver solver(lattice, o);
  const auto n = static_cast<double>(solver.size());

  const double m0 = solver.total_mass();
  const hemo::Vec3 p0 = lbm::total_momentum(solver);
  // At rest the only momentum is the Guo half-force correction.
  EXPECT_NEAR(p0.z, 0.5 * n * o.body_force.z, 1e-12 * n);

  solver.step();
  const hemo::Vec3 p1 = lbm::total_momentum(solver);
  // One step adds close to one impulse per point; bounce-back at the wall
  // absorbs a little of it from the boundary layer.
  EXPECT_NEAR((p1.z - p0.z) / (n * o.body_force.z), 1.0, 0.25);

  const int steps = 200;
  solver.run(steps - 1);
  const double drift = std::abs(solver.total_mass() - m0);
  const double tol = hemo::resilience::conserved_mass_tolerance(
      lbm::kQ * solver.size(), steps);
  EXPECT_LE(drift, tol) << "drift " << drift << " vs tolerance " << tol;

  const hemo::Vec3 p = lbm::total_momentum(solver);
  EXPECT_GT(p.z, p1.z);                    // the force keeps driving
  EXPECT_NEAR(p.x, 0.0, 1e-9 * n);         // no transverse forcing
  EXPECT_NEAR(p.y, 0.0, 1e-9 * n);
}

TEST(Dimensionless, ReynoldsNumberDefinition) {
  EXPECT_DOUBLE_EQ(lbm::reynolds_number(0.01, 100.0, 0.1), 10.0);
}

TEST(Dimensionless, WomersleyScalesWithRadiusAndRate) {
  const double nu = lbm::viscosity_of_tau(1.0);
  const double a1 = lbm::womersley_number(10.0, 1000.0, nu);
  EXPECT_DOUBLE_EQ(lbm::womersley_number(20.0, 1000.0, nu), 2.0 * a1);
  // Quadrupling the period halves alpha.
  EXPECT_NEAR(lbm::womersley_number(10.0, 4000.0, nu), a1 / 2.0, 1e-12);
}

TEST(Checkpoint, RestartContinuesBitwiseIdentically) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_ckpt.bin";

  lbm::Solver original(channel(), driven_options());
  original.run(37);
  original.save_checkpoint(path);
  original.run(25);

  lbm::Solver restarted(channel(), driven_options());
  restarted.restore_checkpoint(path);
  EXPECT_EQ(restarted.step_count(), 37);
  restarted.run(25);

  const auto& fa = original.distributions();
  const auto& fb = restarted.distributions();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t k = 0; k < fa.size(); ++k) ASSERT_EQ(fa[k], fb[k]);
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedLatticeIsRejected) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_ckpt_mismatch.bin";
  lbm::Solver solver(channel(), driven_options());
  solver.save_checkpoint(path);

  geom::CylinderSpec other;
  other.scale = 0.5;
  auto small = geom::make_cylinder_lattice(other,
                                           geom::CylinderEnds::kInletOutlet);
  lbm::Solver wrong(small, driven_options());
  EXPECT_THROW(wrong.restore_checkpoint(path), lbm::CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptFileIsRejected) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_ckpt_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  lbm::Solver solver(channel(), driven_options());
  EXPECT_THROW(solver.restore_checkpoint(path), lbm::CheckpointError);
  std::remove(path.c_str());
}
