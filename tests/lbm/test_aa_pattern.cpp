// Cross-pattern equivalence suite: the AA in-place propagation must be
// bit-identical to the pull-SoA reference at every step count (both
// parities), on every example geometry and boundary mix, through every
// observer, and across checkpoint save/restore — including restores that
// land on an odd AA step and restores across patterns.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "geom/aorta.hpp"
#include "geom/cylinder.hpp"
#include "lbm/aa_layout.hpp"
#include "lbm/propagation.hpp"
#include "lbm/solver.hpp"

namespace lbm = hemo::lbm;
namespace geom = hemo::geom;

namespace {

std::shared_ptr<lbm::SparseLattice> cylinder(geom::CylinderEnds ends) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 12.0;
  return geom::make_cylinder_lattice(spec, ends);
}

std::shared_ptr<lbm::SparseLattice> small_aorta() {
  geom::AortaSpec spec;
  spec.spacing_mm = 2.6;  // a few thousand points: fast but multi-outlet
  return geom::make_aorta_lattice(spec);
}

lbm::SolverOptions driven_options(lbm::Propagation pattern) {
  lbm::SolverOptions o;
  o.tau = 0.8;
  o.inlet_velocity = 0.015;
  o.outlet_density = 1.0;
  o.body_force = {0.0, 0.0, 1e-6};
  o.propagation = pattern;
  return o;
}

void expect_bitwise_equal(const lbm::Solver& a, const lbm::Solver& b) {
  const auto& fa = a.distributions();
  const auto& fb = b.distributions();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t k = 0; k < fa.size(); ++k)
    ASSERT_EQ(fa[k], fb[k]) << "slot " << k << " after " << a.step_count()
                            << " steps";
}

void expect_lockstep_equal(std::shared_ptr<lbm::SparseLattice> lattice,
                           lbm::SolverOptions pull_options, int steps) {
  lbm::SolverOptions aa_options = pull_options;
  pull_options.propagation = lbm::Propagation::kPullSoA;
  aa_options.propagation = lbm::Propagation::kAAInPlace;
  lbm::Solver pull(lattice, pull_options);
  lbm::Solver aa(lattice, aa_options);
  expect_bitwise_equal(pull, aa);  // step 0: identical initial snapshot
  for (int s = 1; s <= steps; ++s) {
    pull.step();
    aa.step();
    expect_bitwise_equal(pull, aa);  // every parity along the way
  }
}

}  // namespace

TEST(AAPattern, MatchesPullBitwiseAtEveryParityOnInletOutletCylinder) {
  expect_lockstep_equal(cylinder(geom::CylinderEnds::kInletOutlet),
                        driven_options(lbm::Propagation::kPullSoA), 9);
}

TEST(AAPattern, MatchesPullBitwiseOnPeriodicCylinderWithBodyForce) {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.body_force = {0.0, 0.0, 2e-6};
  expect_lockstep_equal(cylinder(geom::CylinderEnds::kPeriodic), o, 8);
}

TEST(AAPattern, MatchesPullBitwiseOnAortaGeometry) {
  expect_lockstep_equal(small_aorta(),
                        driven_options(lbm::Propagation::kPullSoA), 7);
}

TEST(AAPattern, ObserversAgreeAfterOddStepCount) {
  auto lattice = cylinder(geom::CylinderEnds::kInletOutlet);
  lbm::Solver pull(lattice, driven_options(lbm::Propagation::kPullSoA));
  lbm::Solver aa(lattice, driven_options(lbm::Propagation::kAAInPlace));
  pull.run(7);
  aa.run(7);
  EXPECT_EQ(pull.total_mass(), aa.total_mass());
  EXPECT_EQ(pull.max_speed(), aa.max_speed());
  for (hemo::PointIndex i : {hemo::PointIndex{0}, lattice->size() / 2,
                             lattice->size() - 1}) {
    const lbm::Moments mp = pull.moments(i);
    const lbm::Moments ma = aa.moments(i);
    EXPECT_EQ(mp.rho, ma.rho);
    EXPECT_EQ(mp.uz, ma.uz);
    const auto sp = pull.stress(i);
    const auto sa = aa.stress(i);
    for (int k = 0; k < 6; ++k) EXPECT_EQ(sp[k], sa[k]);
  }
}

TEST(AAPattern, CanonicalizeRoundTripsAtBothParities) {
  auto lattice = cylinder(geom::CylinderEnds::kInletOutlet);
  const auto* adjacency = lattice->adjacency().data();
  const std::int64_t n = lattice->size();
  lbm::Solver aa(lattice, driven_options(lbm::Propagation::kAAInPlace));
  for (int steps : {4, 7}) {  // even and odd parity
    lbm::Solver fresh(lattice, driven_options(lbm::Propagation::kAAInPlace));
    fresh.run(steps);
    const auto& canonical = fresh.distributions();
    std::vector<double> as_aa(canonical.size());
    std::vector<double> back(canonical.size());
    lbm::aa_decanonicalize(adjacency, n, steps, canonical.data(),
                           as_aa.data());
    lbm::aa_canonicalize(adjacency, n, steps, as_aa.data(), back.data());
    for (std::size_t k = 0; k < canonical.size(); ++k)
      ASSERT_EQ(back[k], canonical[k]);
  }
}

TEST(AAPattern, CheckpointOnOddStepRestoresBitwiseIntoBothPatterns) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_aa_ckpt.bin";
  auto lattice = cylinder(geom::CylinderEnds::kInletOutlet);

  lbm::Solver original(lattice, driven_options(lbm::Propagation::kAAInPlace));
  original.run(7);  // odd AA step: the in-place array is mid-cycle
  original.save_checkpoint(path);
  original.run(6);

  // Checkpoints store the canonical snapshot, so the same file restores
  // into either propagation pattern and both continue bit-identically.
  for (lbm::Propagation pattern :
       {lbm::Propagation::kAAInPlace, lbm::Propagation::kPullSoA}) {
    lbm::Solver restarted(lattice, driven_options(pattern));
    restarted.restore_checkpoint(path);
    EXPECT_EQ(restarted.step_count(), 7);
    restarted.run(6);
    expect_bitwise_equal(original, restarted);
  }
  std::remove(path.c_str());
}

TEST(AAPattern, PullCheckpointRestoresIntoAASolver) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_pull_to_aa.bin";
  auto lattice = small_aorta();
  lbm::Solver pull(lattice, driven_options(lbm::Propagation::kPullSoA));
  pull.run(5);
  pull.save_checkpoint(path);
  pull.run(4);

  lbm::Solver aa(lattice, driven_options(lbm::Propagation::kAAInPlace));
  aa.restore_checkpoint(path);
  aa.run(4);
  expect_bitwise_equal(pull, aa);
  std::remove(path.c_str());
}

TEST(Checkpoint, SaveLeavesNoTempFileBehind) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_atomic_ckpt.bin";
  lbm::Solver solver(cylinder(geom::CylinderEnds::kInletOutlet),
                     driven_options(lbm::Propagation::kPullSoA));
  solver.save_checkpoint(path);
  std::ifstream live(path, std::ios::binary);
  EXPECT_TRUE(live.good());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedPayloadThrowsTypedError) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_truncated_ckpt.bin";
  lbm::Solver solver(cylinder(geom::CylinderEnds::kInletOutlet),
                     driven_options(lbm::Propagation::kPullSoA));
  solver.run(3);
  solver.save_checkpoint(path);

  // Chop off the last kilobyte of the payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 1024u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 1024));
  out.close();

  const double mass_before = solver.total_mass();
  EXPECT_THROW(solver.restore_checkpoint(path), lbm::CheckpointError);
  // A failed restore must leave the solver untouched.
  EXPECT_EQ(solver.total_mass(), mass_before);
  EXPECT_EQ(solver.step_count(), 3);
  std::remove(path.c_str());
}

TEST(Checkpoint, TrailingGarbageThrowsTypedError) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_trailing_ckpt.bin";
  lbm::Solver solver(cylinder(geom::CylinderEnds::kInletOutlet),
                     driven_options(lbm::Propagation::kPullSoA));
  solver.save_checkpoint(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk appended after the payload";
  }
  EXPECT_THROW(solver.restore_checkpoint(path), lbm::CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedHeaderThrowsTypedError) {
  const std::string path =
      std::string(::testing::TempDir()) + "hemoflow_short_header.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t magic = 0x48454D4F464C4F57ull;
    out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
    // File ends before the point-count field.
  }
  lbm::Solver solver(cylinder(geom::CylinderEnds::kInletOutlet),
                     driven_options(lbm::Propagation::kPullSoA));
  EXPECT_THROW(solver.restore_checkpoint(path), lbm::CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrowsTypedError) {
  lbm::Solver solver(cylinder(geom::CylinderEnds::kInletOutlet),
                     driven_options(lbm::Propagation::kPullSoA));
  EXPECT_THROW(solver.restore_checkpoint("no_such_checkpoint_file.bin"),
               lbm::CheckpointError);
}
