// SparseLattice structural tests: adjacency correctness under pull-scheme
// semantics, periodic wrapping, wall-link counting and point lookup.

#include <gtest/gtest.h>

#include <vector>

#include "lbm/sparse_lattice.hpp"

namespace lbm = hemo::lbm;
using hemo::Coord;

namespace {

std::vector<Coord> block(int nx, int ny, int nz) {
  std::vector<Coord> coords;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) coords.push_back({x, y, z});
  return coords;
}

}  // namespace

TEST(SparseLattice, FindLocatesEveryPoint) {
  const lbm::SparseLattice lattice(block(3, 4, 5));
  for (hemo::PointIndex i = 0; i < lattice.size(); ++i)
    EXPECT_EQ(lattice.find(lattice.coord(i)), i);
  EXPECT_EQ(lattice.find(Coord{-1, 0, 0}), hemo::kSolidNeighbor);
  EXPECT_EQ(lattice.find(Coord{3, 0, 0}), hemo::kSolidNeighbor);
}

TEST(SparseLattice, PullAdjacencyPointsUpstream) {
  const lbm::SparseLattice lattice(block(3, 3, 3));
  // Interior point (1,1,1): neighbor in direction q must be at coord - c_q.
  const hemo::PointIndex center = lattice.find(Coord{1, 1, 1});
  ASSERT_NE(center, hemo::kSolidNeighbor);
  for (int q = 0; q < lbm::kQ; ++q) {
    const hemo::PointIndex up = lattice.neighbor(q, center);
    ASSERT_NE(up, hemo::kSolidNeighbor) << "q=" << q;
    const Coord expected = Coord{1, 1, 1} - lbm::velocity(q);
    EXPECT_TRUE(lattice.coord(up) == expected);
  }
}

TEST(SparseLattice, BoundaryPointsSeeSolidOutside) {
  const lbm::SparseLattice lattice(block(3, 3, 3));
  const hemo::PointIndex corner = lattice.find(Coord{0, 0, 0});
  ASSERT_NE(corner, hemo::kSolidNeighbor);
  // Direction q = 1 is (+1,0,0); its upstream is (-1,0,0): outside.
  EXPECT_EQ(lattice.neighbor(1, corner), hemo::kSolidNeighbor);
  // Direction q = 2 is (-1,0,0); its upstream is (1,0,0): inside.
  EXPECT_NE(lattice.neighbor(2, corner), hemo::kSolidNeighbor);
}

TEST(SparseLattice, PeriodicWrapConnectsFaces) {
  lbm::Periodicity per;
  per.axis[2] = true;
  per.period[2] = 5;
  const lbm::SparseLattice lattice(block(3, 3, 5), per);
  const hemo::PointIndex bottom = lattice.find(Coord{1, 1, 0});
  // q = 5 is (0,0,1): upstream is (1,1,-1) which wraps to (1,1,4).
  const hemo::PointIndex up = lattice.neighbor(5, bottom);
  ASSERT_NE(up, hemo::kSolidNeighbor);
  EXPECT_TRUE(lattice.coord(up) == (Coord{1, 1, 4}));
}

TEST(SparseLattice, FullyPeriodicBlockHasNoWallLinks) {
  lbm::Periodicity per;
  for (int a = 0; a < 3; ++a) {
    per.axis[a] = true;
    per.period[a] = 4;
  }
  const lbm::SparseLattice lattice(block(4, 4, 4), per);
  EXPECT_EQ(lattice.wall_link_count(), 0);
}

TEST(SparseLattice, WallLinkCountMatchesHandCount) {
  // A single point: all 18 non-rest directions hit solid.
  const lbm::SparseLattice lattice({Coord{0, 0, 0}});
  EXPECT_EQ(lattice.wall_link_count(), lbm::kQ - 1);
}

TEST(SparseLattice, BoundingBoxIsTight) {
  const lbm::SparseLattice lattice(
      {Coord{2, 3, 4}, Coord{5, 3, 4}, Coord{2, 7, 9}});
  const hemo::Box box = lattice.bounding_box();
  EXPECT_EQ(box.lo.x, 2);
  EXPECT_EQ(box.lo.y, 3);
  EXPECT_EQ(box.lo.z, 4);
  EXPECT_EQ(box.hi.x, 6);
  EXPECT_EQ(box.hi.y, 8);
  EXPECT_EQ(box.hi.z, 10);
}

TEST(SparseLattice, NodeTypesDefaultToBulkAndAreSettable) {
  lbm::SparseLattice lattice(block(2, 2, 2));
  for (hemo::PointIndex i = 0; i < lattice.size(); ++i)
    EXPECT_EQ(lattice.node_type(i), lbm::NodeType::kBulk);
  lattice.set_node_type(0, lbm::NodeType::kVelocityInlet);
  EXPECT_EQ(lattice.node_type(0), lbm::NodeType::kVelocityInlet);
}

class BlockAdjacencyCount
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockAdjacencyCount, WallLinksMatchSurfaceFormula) {
  const auto [nx, ny, nz] = GetParam();
  const lbm::SparseLattice lattice(block(nx, ny, nz));
  // Count by brute force against find(): definitionally correct.
  std::int64_t expected = 0;
  for (hemo::PointIndex i = 0; i < lattice.size(); ++i)
    for (int q = 0; q < lbm::kQ; ++q)
      if (lattice.find(lattice.coord(i) - lbm::velocity(q)) ==
          hemo::kSolidNeighbor)
        ++expected;
  EXPECT_EQ(lattice.wall_link_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockAdjacencyCount,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 2, 2),
                                           std::make_tuple(4, 1, 1),
                                           std::make_tuple(3, 4, 5),
                                           std::make_tuple(6, 2, 3)));
