// Physics validation of the reference solver: Poiseuille flow in the
// proxy cylinder (body-force driven), Zou-He driven channel flow, mass
// conservation, and stability/symmetry properties.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "geom/cylinder.hpp"
#include "lbm/solver.hpp"

namespace lbm = hemo::lbm;
namespace geom = hemo::geom;

namespace {

geom::CylinderSpec small_cylinder(double radius, double length) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = radius;
  spec.axial_per_scale = length;
  return spec;
}

}  // namespace

TEST(SolverPhysics, MassConservedWithPeriodicEnds) {
  auto lattice = geom::make_cylinder_lattice(small_cylinder(5.0, 6.0),
                                             geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions options;
  options.tau = 0.8;
  options.body_force = {0.0, 0.0, 1e-5};
  lbm::Solver solver(lattice, options);

  const double mass0 = solver.total_mass();
  solver.run(200);
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-9 * mass0);
}

TEST(SolverPhysics, RestStateStaysAtRestWithoutForcing) {
  auto lattice = geom::make_cylinder_lattice(small_cylinder(4.0, 5.0),
                                             geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions options;
  options.tau = 1.0;
  lbm::Solver solver(lattice, options);
  solver.run(50);
  EXPECT_LT(solver.max_speed(), 1e-14);
  for (hemo::PointIndex i = 0; i < solver.size(); ++i)
    EXPECT_NEAR(solver.moments(i).rho, 1.0, 1e-13);
}

TEST(SolverPhysics, PoiseuilleProfileMatchesAnalyticSolution) {
  // Body-force-driven flow in a periodic cylinder relaxes to the
  // Hagen-Poiseuille parabola u(r) = g (R^2 - r^2) / (4 nu).  Halfway
  // bounce-back puts the wall ~half a cell outside the last fluid point.
  const double radius = 8.0;
  auto lattice = geom::make_cylinder_lattice(small_cylinder(radius, 4.0),
                                             geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions options;
  options.tau = 1.0;  // nu = 1/6
  const double g = 1e-6;
  options.body_force = {0.0, 0.0, g};
  lbm::Solver solver(lattice, options);
  solver.run(4000);  // > 10 momentum diffusion times (R^2/nu = 384)

  const double nu = lbm::viscosity_of_tau(options.tau);
  const double r_eff = radius;  // halfway wall: effective radius ~ R
  const double u_max_analytic = g * r_eff * r_eff / (4.0 * nu);

  // The axis passes through (r_cells-0.5, r_cells-0.5): between cells, so
  // probe the four nearest points and average.
  const auto rc = static_cast<std::int32_t>(std::ceil(radius));
  double u_center = 0.0;
  int found = 0;
  for (std::int32_t dx = -1; dx <= 0; ++dx)
    for (std::int32_t dy = -1; dy <= 0; ++dy) {
      const hemo::PointIndex i =
          lattice->find(hemo::Coord{rc + dx, rc + dy, 2});
      if (i == hemo::kSolidNeighbor) continue;
      u_center += solver.moments(i).uz;
      ++found;
    }
  ASSERT_GT(found, 0);
  u_center /= found;

  EXPECT_NEAR(u_center, u_max_analytic, 0.08 * u_max_analytic);

  // Parabolic shape: u(r)/u(0) = 1 - (r/R)^2 at mid-radius.
  const hemo::PointIndex mid =
      lattice->find(hemo::Coord{rc + 4, rc, 2});
  ASSERT_NE(mid, hemo::kSolidNeighbor);
  const double r_probe = std::hypot(4.5, 0.5);
  const double expected =
      u_max_analytic * (1.0 - (r_probe * r_probe) / (r_eff * r_eff));
  EXPECT_NEAR(solver.moments(mid).uz, expected, 0.08 * u_max_analytic);

  // Transverse velocity should vanish in fully developed flow.
  EXPECT_LT(std::abs(solver.moments(mid).ux), 1e-9);
  EXPECT_LT(std::abs(solver.moments(mid).uy), 1e-9);
}

TEST(SolverPhysics, PoiseuilleProfileIsAxisymmetric) {
  const double radius = 6.0;
  auto lattice = geom::make_cylinder_lattice(small_cylinder(radius, 3.0),
                                             geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions options;
  options.tau = 0.9;
  options.body_force = {0.0, 0.0, 2e-6};
  lbm::Solver solver(lattice, options);
  solver.run(2500);

  // The lattice is symmetric under x <-> y reflection about the axis; the
  // solution must be too (exactly, by symmetry of the update rule).
  const auto rc = static_cast<std::int32_t>(std::ceil(radius));
  for (std::int32_t d = 0; d < rc; ++d) {
    const hemo::PointIndex a = lattice->find(hemo::Coord{rc + d, rc, 1});
    const hemo::PointIndex b = lattice->find(hemo::Coord{rc, rc + d, 1});
    if (a == hemo::kSolidNeighbor || b == hemo::kSolidNeighbor) continue;
    EXPECT_NEAR(solver.moments(a).uz, solver.moments(b).uz, 1e-13);
  }
}

TEST(SolverPhysics, ZouHeInletEnforcesVelocityExactly) {
  auto lattice = geom::make_cylinder_lattice(small_cylinder(6.0, 20.0),
                                             geom::CylinderEnds::kInletOutlet);
  lbm::SolverOptions options;
  options.tau = 0.8;
  options.inlet_velocity = 0.02;
  options.outlet_density = 1.0;
  lbm::Solver solver(lattice, options);
  solver.run(50);

  // Face-interior inlet points (full lateral neighborhood) carry exactly
  // the prescribed velocity after the Zou-He completion.
  const auto rc = static_cast<std::int32_t>(std::ceil(6.0));
  int checked = 0;
  for (hemo::PointIndex i = 0; i < solver.size(); ++i) {
    const hemo::Coord& c = lattice->coord(i);
    if (c.z != 0) continue;
    const double dx = c.x - (rc - 0.5), dy = c.y - (rc - 0.5);
    if (std::sqrt(dx * dx + dy * dy) > 6.0 - 2.0) continue;  // interior only
    const lbm::Moments m = solver.moments(i);
    EXPECT_NEAR(m.uz, options.inlet_velocity, 1e-12);
    EXPECT_NEAR(m.ux, 0.0, 1e-12);
    EXPECT_NEAR(m.uy, 0.0, 1e-12);
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(SolverPhysics, ZouHeOutletEnforcesDensityExactly) {
  auto lattice = geom::make_cylinder_lattice(small_cylinder(6.0, 20.0),
                                             geom::CylinderEnds::kInletOutlet);
  lbm::SolverOptions options;
  options.tau = 0.8;
  options.inlet_velocity = 0.02;
  options.outlet_density = 1.0;
  lbm::Solver solver(lattice, options);
  solver.run(50);

  const auto rc = static_cast<std::int32_t>(std::ceil(6.0));
  const auto z_out = static_cast<std::int32_t>(20.0) - 1;
  int checked = 0;
  for (hemo::PointIndex i = 0; i < solver.size(); ++i) {
    const hemo::Coord& c = lattice->coord(i);
    if (c.z != z_out) continue;
    const double dx = c.x - (rc - 0.5), dy = c.y - (rc - 0.5);
    if (std::sqrt(dx * dx + dy * dy) > 6.0 - 2.0) continue;
    EXPECT_NEAR(solver.moments(i).rho, 1.0, 1e-12);
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(SolverPhysics, ChannelFlowReachesSteadyThroughflow) {
  auto lattice = geom::make_cylinder_lattice(small_cylinder(5.0, 30.0),
                                             geom::CylinderEnds::kInletOutlet);
  lbm::SolverOptions options;
  options.tau = 0.9;
  options.inlet_velocity = 0.01;
  options.outlet_density = 1.0;
  lbm::Solver solver(lattice, options);
  // Development needs several advective transits (L/u = 3000 steps each).
  solver.run(9000);

  // Steady state: *mass* flux (rho u) through every axial slice is equal.
  // Volume flux is not: the axial pressure (density) gradient that drives
  // the flow makes u rise slightly as rho falls downstream.
  auto slice_flux = [&](std::int32_t z) {
    double flux = 0.0;
    for (hemo::PointIndex i = 0; i < solver.size(); ++i)
      if (lattice->coord(i).z == z) {
        const lbm::Moments m = solver.moments(i);
        flux += m.rho * m.uz;
      }
    return flux;
  };
  const double f5 = slice_flux(5);
  const double f15 = slice_flux(15);
  const double f25 = slice_flux(25);
  ASSERT_GT(f5, 0.0);
  EXPECT_NEAR(f15 / f5, 1.0, 0.02);
  EXPECT_NEAR(f25 / f5, 1.0, 0.02);
}

TEST(SolverPhysics, StabilityGuardRejectsTauAtOrBelowHalf) {
  auto lattice = geom::make_cylinder_lattice(small_cylinder(3.0, 3.0),
                                             geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions options;
  options.tau = 0.5;
  EXPECT_DEATH(lbm::Solver(lattice, options), "Precondition");
}
