// Structural invariants of the D3Q19 lattice descriptor: weight
// normalization, velocity-set symmetry, isotropy moments, and the
// opposite-direction mapping.  These are the algebraic identities every
// LBM derivation relies on.

#include <gtest/gtest.h>

#include "lbm/d3q19.hpp"

namespace lbm = hemo::lbm;

TEST(D3Q19, WeightsSumToOne) {
  double sum = 0.0;
  for (int q = 0; q < lbm::kQ; ++q) sum += lbm::kWeights[q];
  EXPECT_NEAR(sum, 1.0, 1e-15);
}

TEST(D3Q19, WeightsArePositive) {
  for (int q = 0; q < lbm::kQ; ++q) EXPECT_GT(lbm::kWeights[q], 0.0);
}

TEST(D3Q19, VelocitiesSumToZero) {
  int sx = 0, sy = 0, sz = 0;
  for (int q = 0; q < lbm::kQ; ++q) {
    sx += lbm::c(q, 0);
    sy += lbm::c(q, 1);
    sz += lbm::c(q, 2);
  }
  EXPECT_EQ(sx, 0);
  EXPECT_EQ(sy, 0);
  EXPECT_EQ(sz, 0);
}

TEST(D3Q19, FirstMomentOfWeightsVanishes) {
  for (int a = 0; a < 3; ++a) {
    double m = 0.0;
    for (int q = 0; q < lbm::kQ; ++q) m += lbm::kWeights[q] * lbm::c(q, a);
    EXPECT_NEAR(m, 0.0, 1e-15) << "axis " << a;
  }
}

TEST(D3Q19, SecondMomentIsIsotropicCs2) {
  // sum_q w_q c_qa c_qb = cs^2 delta_ab with cs^2 = 1/3.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double m = 0.0;
      for (int q = 0; q < lbm::kQ; ++q)
        m += lbm::kWeights[q] * lbm::c(q, a) * lbm::c(q, b);
      const double expected = (a == b) ? lbm::kCs2 : 0.0;
      EXPECT_NEAR(m, expected, 1e-15) << "a=" << a << " b=" << b;
    }
  }
}

TEST(D3Q19, ThirdMomentVanishes) {
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      for (int g = 0; g < 3; ++g) {
        double m = 0.0;
        for (int q = 0; q < lbm::kQ; ++q)
          m += lbm::kWeights[q] * lbm::c(q, a) * lbm::c(q, b) * lbm::c(q, g);
        EXPECT_NEAR(m, 0.0, 1e-15);
      }
}

TEST(D3Q19, OppositeIsAnInvolutionNegatingVelocity) {
  for (int q = 0; q < lbm::kQ; ++q) {
    const int o = lbm::opposite(q);
    EXPECT_EQ(lbm::opposite(o), q);
    for (int a = 0; a < 3; ++a) EXPECT_EQ(lbm::c(o, a), -lbm::c(q, a));
    EXPECT_DOUBLE_EQ(lbm::kWeights[o], lbm::kWeights[q]);
  }
}

TEST(D3Q19, SpeedsAreZeroOneOrSqrtTwo) {
  for (int q = 0; q < lbm::kQ; ++q) {
    const int s2 = lbm::c(q, 0) * lbm::c(q, 0) + lbm::c(q, 1) * lbm::c(q, 1) +
                   lbm::c(q, 2) * lbm::c(q, 2);
    if (q == 0)
      EXPECT_EQ(s2, 0);
    else if (q <= 6)
      EXPECT_EQ(s2, 1);
    else
      EXPECT_EQ(s2, 2);
  }
}

TEST(D3Q19, VelocitiesAreDistinct) {
  for (int p = 0; p < lbm::kQ; ++p)
    for (int q = p + 1; q < lbm::kQ; ++q)
      EXPECT_FALSE(lbm::velocity(p) == lbm::velocity(q))
          << "p=" << p << " q=" << q;
}

TEST(D3Q19, EquilibriumAtRestIsWeightTimesDensity) {
  const double rho = 1.37;
  for (int q = 0; q < lbm::kQ; ++q)
    EXPECT_NEAR(lbm::equilibrium(q, rho, 0, 0, 0), lbm::kWeights[q] * rho,
                1e-15);
}

// Equilibrium moments: sum feq = rho, sum feq c = rho u (exact for the
// second-order polynomial equilibrium).
class EquilibriumMoments
    : public ::testing::TestWithParam<std::tuple<double, double, double, double>> {};

TEST_P(EquilibriumMoments, MassAndMomentumExact) {
  const auto [rho, ux, uy, uz] = GetParam();
  double m0 = 0.0, mx = 0.0, my = 0.0, mz = 0.0;
  for (int q = 0; q < lbm::kQ; ++q) {
    const double feq = lbm::equilibrium(q, rho, ux, uy, uz);
    m0 += feq;
    mx += feq * lbm::c(q, 0);
    my += feq * lbm::c(q, 1);
    mz += feq * lbm::c(q, 2);
  }
  EXPECT_NEAR(m0, rho, 1e-13 * rho);
  EXPECT_NEAR(mx, rho * ux, 1e-13);
  EXPECT_NEAR(my, rho * uy, 1e-13);
  EXPECT_NEAR(mz, rho * uz, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquilibriumMoments,
    ::testing::Values(std::make_tuple(1.0, 0.0, 0.0, 0.0),
                      std::make_tuple(1.0, 0.05, 0.0, 0.0),
                      std::make_tuple(0.9, 0.0, -0.08, 0.02),
                      std::make_tuple(1.2, 0.03, 0.03, 0.03),
                      std::make_tuple(1.05, -0.1, 0.05, -0.02),
                      std::make_tuple(0.5, 0.0, 0.0, 0.12)));
