// Invariance and robustness properties of the solver: translation and
// reflection equivariance of the update rule, and randomized porous
// geometries (mass conservation, boundedness, no divergence) — failure
// modes a stencil code can hit silently.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <unordered_set>
#include <vector>

#include "base/rng.hpp"
#include "lbm/solver.hpp"

namespace lbm = hemo::lbm;
using hemo::Coord;
using hemo::CoordHash;
using hemo::PointIndex;
using hemo::SplitMix64;

namespace {

/// Random connected-ish porous blob: a box with random spheres carved out.
std::vector<Coord> porous_box(std::uint64_t seed, int extent) {
  SplitMix64 rng(seed);
  std::vector<std::array<double, 4>> holes;  // x, y, z, r
  for (int h = 0; h < 5; ++h)
    holes.push_back({rng.uniform(0, extent), rng.uniform(0, extent),
                     rng.uniform(0, extent), rng.uniform(1.0, extent / 3.0)});
  std::vector<Coord> points;
  for (int z = 0; z < extent; ++z)
    for (int y = 0; y < extent; ++y)
      for (int x = 0; x < extent; ++x) {
        bool solid = false;
        for (const auto& hole : holes) {
          const double dx = x - hole[0], dy = y - hole[1], dz = z - hole[2];
          if (dx * dx + dy * dy + dz * dz < hole[3] * hole[3]) solid = true;
        }
        if (!solid) points.push_back({x, y, z});
      }
  return points;
}

lbm::SolverOptions forced_options() {
  lbm::SolverOptions o;
  o.tau = 0.8;
  o.body_force = {3e-6, -2e-6, 5e-6};
  return o;
}

}  // namespace

TEST(Invariance, TranslationOfCoordinatesIsExactlyIrrelevant) {
  const std::vector<Coord> base = porous_box(5, 10);
  std::vector<Coord> shifted;
  for (const Coord& c : base)
    shifted.push_back({c.x + 137, c.y + 23, c.z + 911});

  auto la = std::make_shared<lbm::SparseLattice>(base);
  auto lb = std::make_shared<lbm::SparseLattice>(shifted);
  lbm::Solver sa(la, forced_options());
  lbm::Solver sb(lb, forced_options());
  sa.run(25);
  sb.run(25);

  const auto& fa = sa.distributions();
  const auto& fb = sb.distributions();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t k = 0; k < fa.size(); ++k) ASSERT_EQ(fa[k], fb[k]);
}

TEST(Invariance, ReflectionMirrorsTheVelocityField) {
  // Mirror the geometry and the force in x; u_x must negate exactly,
  // u_y/u_z and rho must match exactly (the D3Q19 set is reflection
  // symmetric and the update commutes with it).
  const int extent = 9;
  const std::vector<Coord> base = porous_box(11, extent);
  std::vector<Coord> mirrored;
  std::unordered_set<Coord, CoordHash> base_set(base.begin(), base.end());
  for (const Coord& c : base)
    mirrored.push_back({extent - 1 - c.x, c.y, c.z});

  auto la = std::make_shared<lbm::SparseLattice>(base);
  auto lb = std::make_shared<lbm::SparseLattice>(mirrored);

  lbm::SolverOptions oa = forced_options();
  lbm::SolverOptions ob = oa;
  ob.body_force.x = -oa.body_force.x;

  lbm::Solver sa(la, oa);
  lbm::Solver sb(lb, ob);
  sa.run(30);
  sb.run(30);

  for (PointIndex i = 0; i < la->size(); ++i) {
    const Coord& c = la->coord(i);
    const PointIndex j = lb->find({extent - 1 - c.x, c.y, c.z});
    ASSERT_NE(j, hemo::kSolidNeighbor);
    const lbm::Moments ma = sa.moments(i);
    const lbm::Moments mb = sb.moments(j);
    // Equality holds up to summation order: the mirrored distributions
    // occupy permuted q slots, so the moment sums accumulate rounding in
    // a different order.
    ASSERT_NEAR(ma.rho, mb.rho, 1e-13);
    ASSERT_NEAR(ma.ux, -mb.ux, 1e-13);
    ASSERT_NEAR(ma.uy, mb.uy, 1e-13);
    ASSERT_NEAR(ma.uz, mb.uz, 1e-13);
  }
}

class PorousRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PorousRobustness, ClosedDomainConservesMassExactly) {
  auto lattice =
      std::make_shared<lbm::SparseLattice>(porous_box(GetParam(), 10));
  lbm::Solver solver(lattice, forced_options());
  const double mass0 = solver.total_mass();
  solver.run(150);
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-10 * mass0);
}

TEST_P(PorousRobustness, VelocitiesStayBoundedAndFinite) {
  auto lattice =
      std::make_shared<lbm::SparseLattice>(porous_box(GetParam(), 10));
  lbm::Solver solver(lattice, forced_options());
  solver.run(150);
  for (PointIndex i = 0; i < solver.size(); ++i) {
    const lbm::Moments m = solver.moments(i);
    ASSERT_TRUE(std::isfinite(m.rho)) << i;
    ASSERT_GT(m.rho, 0.0) << i;
    ASSERT_TRUE(std::isfinite(m.ux) && std::isfinite(m.uy) &&
                std::isfinite(m.uz))
        << i;
    ASSERT_LT(std::sqrt(m.ux * m.ux + m.uy * m.uy + m.uz * m.uz), 0.3) << i;
  }
}

TEST_P(PorousRobustness, StepIsDeterministic) {
  auto lattice =
      std::make_shared<lbm::SparseLattice>(porous_box(GetParam(), 8));
  lbm::Solver a(lattice, forced_options());
  lbm::Solver b(lattice, forced_options());
  a.run(40);
  b.run(40);
  const auto& fa = a.distributions();
  const auto& fb = b.distributions();
  for (std::size_t k = 0; k < fa.size(); ++k) ASSERT_EQ(fa[k], fb[k]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PorousRobustness,
                         ::testing::Values(1, 7, 42, 1234, 99991));
