// LoC diff/count unit tests for the Table 3 accounting.

#include <gtest/gtest.h>

#include "port/loc.hpp"

namespace port = hemo::port;

TEST(LocDiff, IdenticalTextsHaveNoDelta) {
  const std::string text = "a\nb\nc\n";
  const port::LocDelta d = port::loc_diff(text, text);
  EXPECT_EQ(d.added, 0);
  EXPECT_EQ(d.changed, 0);
  EXPECT_EQ(d.removed, 0);
}

TEST(LocDiff, PureAddition) {
  const port::LocDelta d = port::loc_diff("a\nc\n", "a\nb\nc\n");
  EXPECT_EQ(d.added, 1);
  EXPECT_EQ(d.changed, 0);
  EXPECT_EQ(d.removed, 0);
}

TEST(LocDiff, PureRemoval) {
  const port::LocDelta d = port::loc_diff("a\nb\nc\n", "a\nc\n");
  EXPECT_EQ(d.added, 0);
  EXPECT_EQ(d.changed, 0);
  EXPECT_EQ(d.removed, 1);
}

TEST(LocDiff, SingleLineEditCountsAsChanged) {
  const port::LocDelta d = port::loc_diff("a\nb\nc\n", "a\nB\nc\n");
  EXPECT_EQ(d.added, 0);
  EXPECT_EQ(d.changed, 1);
  EXPECT_EQ(d.removed, 0);
}

TEST(LocDiff, MixedRegionPairsChangesFirst) {
  // Two old lines replaced by three new ones: 2 changed + 1 added.
  const port::LocDelta d =
      port::loc_diff("keep\nx\ny\nkeep2\n", "keep\n1\n2\n3\nkeep2\n");
  EXPECT_EQ(d.changed, 2);
  EXPECT_EQ(d.added, 1);
  EXPECT_EQ(d.removed, 0);
}

TEST(LocDiff, DisjointRegionsAccumulate) {
  const port::LocDelta d =
      port::loc_diff("a\nb\nc\nd\n", "A\nb\nc\nD\nE\n");
  EXPECT_EQ(d.changed, 2);  // a->A and d->D
  EXPECT_EQ(d.added, 1);    // E
  EXPECT_EQ(d.removed, 0);
}

TEST(LocDiff, EmptyInputs) {
  EXPECT_EQ(port::loc_diff("", "").added, 0);
  const port::LocDelta d = port::loc_diff("", "x\ny\n");
  EXPECT_EQ(d.added, 2);
  const port::LocDelta r = port::loc_diff("x\ny\n", "");
  EXPECT_EQ(r.removed, 2);
}

TEST(CountSloc, SkipsBlanksAndCommentOnlyLines) {
  const std::string text =
      "// header comment\n"
      "\n"
      "int x = 1;  // trailing comment counts as code\n"
      "   \t\n"
      "// another\n"
      "return x;\n";
  EXPECT_EQ(port::count_sloc(text), 2);
}

TEST(CountSloc, EmptyTextIsZero) { EXPECT_EQ(port::count_sloc(""), 0); }
