// Functional test of the kokkosx corpus: the port must produce the same
// physics as every other dialect's port.

#include "common.h"

#include "corpus_run_test.inc"
