// Mini-DPCT tests: per-rule translation behaviour, the Table 2 warning
// census over the corpus, and the Table 3 manual-line count against the
// checked-in (hand-fixed) syclx corpus.

#include <gtest/gtest.h>

#include "port/corpus.hpp"
#include "port/dpct.hpp"
#include "port/loc.hpp"

namespace port = hemo::port;
using port::WarningCategory;

TEST(Dpct, MapsMemoryApiOntoDpctx) {
  const auto r = port::dpct_translate(
      "cudaxMalloc(&p, n);\ncudaxFree(p);\n", "t.cpp");
  EXPECT_NE(r.output.find("dpctx::malloc_device(&p, n);"), std::string::npos);
  EXPECT_NE(r.output.find("dpctx::free(p);"), std::string::npos);
}

TEST(Dpct, MapsMemcpyKindsToDirections) {
  const auto r = port::dpct_translate(
      "cudaxMemcpy(a, b, n, cudaxMemcpyHostToDevice);\n", "t.cpp");
  EXPECT_NE(r.output.find("dpctx::memcpy(a, b, n, dpctx::host_to_device);"),
            std::string::npos);
}

TEST(Dpct, RewritesErrorCheckMacroAndWarns) {
  const std::string source =
      "#define CUDAX_CHECK(expr) \\\n  do { (void)(expr); } while (0)\n";
  const auto r = port::dpct_translate(source, "check.h");
  EXPECT_NE(r.output.find("#define DPCTX_CHECK(expr)"), std::string::npos);
  EXPECT_EQ(r.output.find("CUDAX_CHECK"), std::string::npos);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0].category, WarningCategory::kErrorHandling);
}

TEST(Dpct, WarnsOnEveryErrorCheckedCall) {
  const auto r = port::dpct_translate(
      "CUDAX_CHECK(cudaxDeviceSynchronize());\n"
      "CUDAX_CHECK(cudaxGetLastError());\n",
      "t.cpp");
  const auto hist = port::warning_histogram(r.warnings);
  EXPECT_EQ(hist[static_cast<int>(WarningCategory::kErrorHandling)], 2);
}

TEST(Dpct, LaunchBecomesParallelForWithWarning) {
  const auto r = port::dpct_translate(
      "cudaxLaunchKernel(grid_dim, block_dim, kernel);\n", "t.cpp");
  EXPECT_NE(r.output.find("dpctx::parallel_for(grid_dim, block_dim, kernel);"),
            std::string::npos);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0].category, WarningCategory::kKernelInvocation);
}

TEST(Dpct, UnsupportedFeatureIsRemovedWithBreadcrumb) {
  const auto r = port::dpct_translate(
      "  cudaxDeviceSetLimit(cudaxLimitMallocHeapSize, 1024);\n", "t.cpp");
  // The call survives only inside the breadcrumb comment.
  EXPECT_NE(
      r.output.find("/* DPCTX1007 removed: cudaxDeviceSetLimit("),
      std::string::npos);
  EXPECT_EQ(r.output.find("\n  cudaxDeviceSetLimit("), std::string::npos);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0].category, WarningCategory::kUnsupportedFeature);
}

TEST(Dpct, TrigIntrinsicGetsFunctionalEquivalenceWarning) {
  const auto r = port::dpct_translate(
      "const double s = sincospi(phase, &c);\n", "t.cpp");
  EXPECT_NE(r.output.find("dpctx::sincospi(phase, &c)"), std::string::npos);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0].category, WarningCategory::kFunctionalEquivalence);
}

TEST(Dpct, PrefetchGetsPerformanceWarning) {
  const auto r = port::dpct_translate(
      "cudaxMemPrefetchAsync(field, bytes, 0, 0);\n", "t.cpp");
  EXPECT_NE(r.output.find("dpctx::prefetch(field, bytes, 0, 0);"),
            std::string::npos);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0].category,
            WarningCategory::kPerformanceImprovement);
}

TEST(Dpct, UninitializedDim3BecomesInvalidRangeDeclaration) {
  // The deliberate imperfection behind Table 3's manual DPCT lines:
  // dpctx::range has no default constructor, so this output does not
  // compile until a human initializes it.
  const auto r = port::dpct_translate("  dim3x grid_dim;\n", "t.cpp");
  EXPECT_NE(r.output.find("dpctx::range grid_dim;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Table 2: the warning census over the full 28-file corpus.
// ---------------------------------------------------------------------------

namespace {

std::vector<int> corpus_histogram() {
  std::vector<port::Warning> all;
  for (const std::string& name : port::corpus_files()) {
    const auto r = port::dpct_translate(
        port::read_corpus_file(port::CorpusDialect::kCudax, name), name);
    all.insert(all.end(), r.warnings.begin(), r.warnings.end());
  }
  return port::warning_histogram(all);
}

}  // namespace

TEST(DpctTable2, WarningCensusMatchesThePaperExactly) {
  const std::vector<int> hist = corpus_histogram();
  const int total = hist[0] + hist[1] + hist[2] + hist[3] + hist[4];
  EXPECT_EQ(total, 133);  // "generating 133 warning messages"
  EXPECT_EQ(hist[static_cast<int>(WarningCategory::kErrorHandling)], 107);
  EXPECT_EQ(hist[static_cast<int>(WarningCategory::kUnsupportedFeature)], 3);
  EXPECT_EQ(hist[static_cast<int>(WarningCategory::kFunctionalEquivalence)],
            1);
  EXPECT_EQ(hist[static_cast<int>(WarningCategory::kKernelInvocation)], 20);
  EXPECT_EQ(hist[static_cast<int>(WarningCategory::kPerformanceImprovement)],
            2);
}

TEST(DpctTable2, PercentagesMatchThePaper) {
  const std::vector<int> hist = corpus_histogram();
  const double total = 133.0;
  EXPECT_NEAR(hist[static_cast<int>(WarningCategory::kErrorHandling)] /
                  total * 100.0,
              80.45, 0.01);
  EXPECT_NEAR(hist[static_cast<int>(WarningCategory::kKernelInvocation)] /
                  total * 100.0,
              15.04, 0.01);
  EXPECT_NEAR(hist[static_cast<int>(WarningCategory::kUnsupportedFeature)] /
                  total * 100.0,
              2.26, 0.01);
  EXPECT_NEAR(
      hist[static_cast<int>(WarningCategory::kPerformanceImprovement)] /
          total * 100.0,
      1.50, 0.01);
  EXPECT_NEAR(
      hist[static_cast<int>(WarningCategory::kFunctionalEquivalence)] /
          total * 100.0,
      0.75, 0.01);
}

// ---------------------------------------------------------------------------
// Table 3: manual lines for the DPCT port.
// ---------------------------------------------------------------------------

TEST(DpctTable3, ManualFixesAreExactly27ChangedLines) {
  port::LocDelta manual;
  for (const std::string& name : port::corpus_files()) {
    const auto tool = port::dpct_translate(
        port::read_corpus_file(port::CorpusDialect::kCudax, name), name);
    const std::string shipped =
        port::read_corpus_file(port::CorpusDialect::kSyclx, name);
    manual += port::loc_diff(tool.output, shipped);
  }
  EXPECT_EQ(manual.added, 0);
  EXPECT_EQ(manual.changed, 27);  // the dim3/range zero-initializations
  EXPECT_EQ(manual.removed, 0);
}
