// Mini-HIPify tests: prefix-aware rewriting, idempotence, and — the
// paper's Table 3 headline for HIPify — the property that the tool output
// IS the working HIP port, byte for byte, with zero manual lines.

#include <gtest/gtest.h>

#include "port/corpus.hpp"
#include "port/hipify.hpp"
#include "port/loc.hpp"

namespace port = hemo::port;

TEST(Hipify, RewritesApiPrefixes) {
  const auto r = port::hipify("cudaxMalloc(&p, n); cudaxFree(p);");
  EXPECT_EQ(r.output, "hipxMalloc(&p, n); hipxFree(p);");
  EXPECT_EQ(r.lines_touched, 1);
}

TEST(Hipify, RewritesIncludeAndCheckMacro) {
  const auto r = port::hipify(
      "#include \"hal/cudax.hpp\"\nCUDAX_CHECK(cudaxDeviceSynchronize());\n");
  EXPECT_EQ(r.output,
            "#include \"hal/hipx.hpp\"\nHIPX_CHECK(hipxDeviceSynchronize());\n");
  EXPECT_EQ(r.lines_touched, 2);
}

TEST(Hipify, LeavesNonIdentifierPrefixMatchesAlone) {
  // "mycudaxThing" does not start the identifier with "cudax".
  const auto r = port::hipify("int mycudaxThing = 0;");
  EXPECT_EQ(r.output, "int mycudaxThing = 0;");
  EXPECT_EQ(r.lines_touched, 0);
}

TEST(Hipify, LeavesDim3AndKernelBodiesAlone) {
  const auto r = port::hipify("dim3x grid_dim;\ndouble x = sincospi(p, &c);\n");
  EXPECT_EQ(r.output, "dim3x grid_dim;\ndouble x = sincospi(p, &c);\n");
}

TEST(Hipify, IsIdempotent) {
  const std::string source =
      port::read_corpus_file(port::CorpusDialect::kCudax, "memory.cpp");
  const auto once = port::hipify(source);
  const auto twice = port::hipify(once.output);
  EXPECT_EQ(once.output, twice.output);
  EXPECT_EQ(twice.lines_touched, 0);
}

TEST(Hipify, OutputContainsNoCudaIdentifiers) {
  for (const std::string& name : port::corpus_files()) {
    const auto r = port::hipify(
        port::read_corpus_file(port::CorpusDialect::kCudax, name));
    EXPECT_EQ(r.output.find("cudax"), std::string::npos) << name;
    EXPECT_EQ(r.output.find("CUDAX_"), std::string::npos) << name;
  }
}

TEST(Hipify, CheckedInHipCorpusIsExactlyTheToolOutput) {
  // Table 3, HIPify row: 0 lines added, 0 lines changed by hand.  The
  // shipped (and compiled!) hipx corpus must equal the translation of the
  // cudax corpus byte for byte.
  for (const std::string& name : port::corpus_files()) {
    const auto tool = port::hipify(
        port::read_corpus_file(port::CorpusDialect::kCudax, name));
    const std::string shipped =
        port::read_corpus_file(port::CorpusDialect::kHipx, name);
    EXPECT_EQ(tool.output, shipped) << name;
    const port::LocDelta manual = port::loc_diff(tool.output, shipped);
    EXPECT_EQ(manual.added, 0) << name;
    EXPECT_EQ(manual.changed, 0) << name;
  }
}

TEST(Hipify, CorpusHasTwentyEightFiles) {
  // The paper: "DPCT processed 28 source code files"; the same corpus
  // feeds both tools.
  EXPECT_EQ(port::corpus_files().size(), 28u);
}
