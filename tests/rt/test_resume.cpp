// CheckpointSlot + run_job: a campaign job that checkpoints through the
// distributed solver resumes a failed attempt from its last good step
// instead of recomputing, and the resumed result is bit-identical.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "harvey/distributed_solver.hpp"
#include "resilience/fault.hpp"
#include "resilience/faulty_network.hpp"
#include "resilience/policy.hpp"
#include "rt/job.hpp"

namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
namespace resilience = hemo::resilience;
namespace rt = hemo::rt;
using hemo::harvey::DistributedSolver;

namespace {

std::shared_ptr<lbm::SparseLattice> small_cylinder() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 16.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions flow_options() {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.inlet_velocity = 0.01;
  o.outlet_density = 1.0;
  return o;
}

}  // namespace

TEST(CheckpointSlot, TracksLatestRecordAndClears) {
  rt::CheckpointSlot slot;
  EXPECT_FALSE(slot.has_checkpoint());
  slot.record("a.bin", 5);
  EXPECT_TRUE(slot.has_checkpoint());
  EXPECT_EQ(slot.path, "a.bin");
  EXPECT_EQ(slot.step, 5);
  slot.record("b.bin", 9);
  EXPECT_EQ(slot.path, "b.bin");
  EXPECT_EQ(slot.step, 9);
  slot.clear();
  EXPECT_FALSE(slot.has_checkpoint());
  EXPECT_EQ(slot.step, -1);
}

TEST(JobResume, RetryResumesFromTheLastCheckpoint) {
  constexpr int kRanks = 4;
  constexpr int kSteps = 20;
  constexpr int kCkptEvery = 5;
  constexpr int kFaultStep = 12;

  auto lattice = small_cylinder();
  const decomp::Partition partition = decomp::slab_partition(*lattice, kRanks);

  std::vector<double> reference;
  {
    DistributedSolver solver(lattice, partition, flow_options());
    solver.run(kSteps);
    reference = solver.global_distributions();
  }

  // A stall longer than any retransmission budget, with rollback disabled:
  // attempt 1 dies with a structured SolverFault mid-run.  The fired flag
  // is carried across attempts (transient fault semantics), so the retry
  // runs clean from the restored step.
  resilience::FaultPlan plan;
  {
    resilience::FaultEvent e;
    e.kind = resilience::FaultKind::kStall;
    e.step = kFaultStep;
    e.src = 0;
    e.stall_polls = 1000;
    plan.add(e);
  }

  const std::string ckpt_path = "rt_resume_ckpt.bin";
  rt::CheckpointSlot slot;
  std::int64_t resumed_from = -1;

  rt::JobOptions options;
  options.name = "resumable-point";
  options.retry.max_attempts = 3;

  const rt::JobOutcome<std::vector<double>> outcome =
      rt::run_job<std::vector<double>>(options, [&](int attempt) {
        DistributedSolver solver(lattice, partition, flow_options());
        auto net =
            std::make_unique<resilience::FaultyNetwork>(kRanks, plan);
        resilience::FaultyNetwork* net_raw = net.get();
        solver.set_network(std::move(net));
        resilience::Options opts;
        opts.recovery.max_rollbacks = 0;
        solver.enable_resilience(opts);

        if (attempt > 1 && slot.has_checkpoint()) {
          solver.restore_checkpoint(slot.path);
          resumed_from = solver.step_count();
        }
        try {
          while (solver.step_count() < kSteps) {
            const std::int64_t remaining = kSteps - solver.step_count();
            solver.run(static_cast<int>(
                remaining < kCkptEvery ? remaining : kCkptEvery));
            solver.save_checkpoint(ckpt_path);
            slot.record(ckpt_path, solver.step_count());
          }
        } catch (const resilience::SolverFault&) {
          plan = net_raw->plan();  // carry the fired flags to the retry
          throw;
        }
        return solver.global_distributions();
      });

  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 2);
  // Attempt 1 checkpointed at steps 5 and 10 before dying at 12; the
  // retry must pick up at 10, not at 0.
  EXPECT_EQ(resumed_from, 10);
  EXPECT_EQ(*outcome.value, reference);
  std::remove(ckpt_path.c_str());
}

TEST(JobResume, ExhaustedRetriesSurfaceTheSolverFaultMessage) {
  constexpr int kRanks = 2;
  auto lattice = small_cylinder();
  const decomp::Partition partition = decomp::slab_partition(*lattice, kRanks);

  rt::JobOptions options;
  options.name = "doomed-point";
  options.retry.max_attempts = 2;

  const rt::JobOutcome<int> outcome =
      rt::run_job<int>(options, [&](int /*attempt*/) -> int {
        DistributedSolver solver(lattice, partition, flow_options());
        // A fresh plan every attempt: the fault is persistent, not
        // transient, so every retry hits it again.
        resilience::FaultPlan plan;
        resilience::FaultEvent e;
        e.kind = resilience::FaultKind::kStall;
        e.step = 2;
        e.src = 0;
        e.stall_polls = 1000;
        plan.add(e);
        solver.set_network(
            std::make_unique<resilience::FaultyNetwork>(kRanks, plan));
        resilience::Options opts;
        opts.recovery.max_rollbacks = 0;
        solver.enable_resilience(opts);
        solver.run(6);
        return 0;
      });

  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_NE(outcome.failure->message.find("step 2"), std::string::npos);
}
