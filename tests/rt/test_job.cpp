// Job layer: retry with backoff, structured failure capture, and the
// cooperative timeout classification.

#include "rt/job.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

namespace hemo::rt {
namespace {

using std::chrono::milliseconds;

JobOptions fast_retry(int max_attempts) {
  JobOptions options;
  options.name = "test-job";
  options.retry.max_attempts = max_attempts;
  options.retry.initial_backoff = milliseconds(1);
  options.retry.max_backoff = milliseconds(2);
  return options;
}

TEST(Job, FirstAttemptSuccess) {
  const JobOutcome<int> outcome =
      run_job<int>(fast_retry(3), [](int) { return 11; });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome.value, 11);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_FALSE(outcome.failure.has_value());
}

TEST(Job, FailsTwiceThenSucceeds) {
  const JobOutcome<int> outcome = run_job<int>(fast_retry(3), [](int attempt) {
    if (attempt <= 2) throw std::runtime_error("transient");
    return attempt;
  });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome.value, 3);
  EXPECT_EQ(outcome.attempts, 3);
}

TEST(Job, PermanentFailureCapturesTheLastError) {
  const JobOutcome<int> outcome = run_job<int>(fast_retry(3), [](int) -> int {
    throw std::runtime_error("disk on fire");
  });
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 3);
  ASSERT_TRUE(outcome.failure.has_value());
  EXPECT_EQ(outcome.failure->job, "test-job");
  EXPECT_EQ(outcome.failure->attempts, 3);
  EXPECT_FALSE(outcome.failure->timed_out);
  EXPECT_EQ(outcome.failure->message, "disk on fire");

  const std::string text = describe(*outcome.failure);
  EXPECT_NE(text.find("test-job"), std::string::npos);
  EXPECT_NE(text.find("disk on fire"), std::string::npos);
  EXPECT_NE(text.find("failed"), std::string::npos);
}

TEST(Job, NonStdExceptionIsStillCaptured) {
  const JobOutcome<int> outcome =
      run_job<int>(fast_retry(1), [](int) -> int { throw 42; });
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.failure->message, "unknown exception");
}

TEST(Job, SlowAttemptIsClassifiedAsTimeout) {
  JobOptions options = fast_retry(2);
  options.timeout = milliseconds(5);
  const JobOutcome<int> outcome = run_job<int>(options, [](int) {
    std::this_thread::sleep_for(milliseconds(25));
    return 1;
  });
  EXPECT_FALSE(outcome.ok());
  ASSERT_TRUE(outcome.failure.has_value());
  EXPECT_TRUE(outcome.failure->timed_out);
  EXPECT_NE(describe(*outcome.failure).find("timed out"), std::string::npos);
}

TEST(Job, ZeroTimeoutMeansUnlimited) {
  JobOptions options = fast_retry(1);
  options.timeout = milliseconds(0);
  const JobOutcome<int> outcome = run_job<int>(options, [](int) {
    std::this_thread::sleep_for(milliseconds(10));
    return 5;
  });
  EXPECT_TRUE(outcome.ok());
}

TEST(Job, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(2);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(10);
  EXPECT_EQ(backoff_delay(policy, 1), milliseconds(2));
  EXPECT_EQ(backoff_delay(policy, 2), milliseconds(4));
  EXPECT_EQ(backoff_delay(policy, 3), milliseconds(8));
  EXPECT_EQ(backoff_delay(policy, 4), milliseconds(10));   // capped
  EXPECT_EQ(backoff_delay(policy, 20), milliseconds(10));  // stays capped
}

}  // namespace
}  // namespace hemo::rt
