// Degraded-mode campaigns: a point whose solver lost ranks mid-run
// completes as "degraded" — re-priced against the survivor count, with
// {failed_ranks, recovery_step, survivor_count} provenance in the CSV and
// JSON sinks — and never aborts the campaign.  Efficiency bookkeeping is
// the key property: measured MFLUPS and the ideal prediction are both
// judged against the post-shrink device count, so a hardware loss does
// not masquerade as a framework inefficiency.

#include "rt/campaign.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace hemo::rt {
namespace {

SeriesSpec summit_series() {
  return {sys::SystemId::kSummit, hal::Model::kCuda, sim::App::kHarvey,
          WorkloadKind::kCylinderBisection};
}

/// Kills rank 5 of every 8-device point; the run finishes on 7 survivors
/// after a shrink that resumed at step 12.
std::optional<ShrinkProvenance> kill_at_eight(const SeriesSpec&,
                                              const sys::SchedulePoint& p) {
  if (p.devices != 8) return std::nullopt;
  ShrinkProvenance shrink;
  shrink.failed_ranks = {5};
  shrink.recovery_step = 12;
  shrink.survivor_count = 7;
  return shrink;
}

CampaignResult run_degraded(int workers) {
  CampaignSpec spec;
  spec.name = "degraded-test";
  spec.series = {summit_series()};
  spec.workers = workers;
  spec.rank_failure_injector = kill_at_eight;
  ArtifactCache cache;
  return run_campaign(spec, cache);
}

const PointResult* find_devices(const CampaignResult& result, int devices) {
  for (const PointResult& p : result.series.front().points)
    if (p.schedule.devices == devices) return &p;
  return nullptr;
}

}  // namespace

TEST(DegradedCampaign, RankDeathDegradesThePointNotTheCampaign) {
  const CampaignResult result = run_degraded(1);

  // Every point completed; exactly one is degraded.
  EXPECT_EQ(result.failed_points(), 0u);
  EXPECT_EQ(result.degraded_points(), 1u);

  const PointResult* p = find_devices(result, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->ok());
  EXPECT_TRUE(p->degraded());
  ASSERT_TRUE(p->shrink.has_value());
  EXPECT_EQ(p->shrink->failed_ranks, std::vector<Rank>{5});
  EXPECT_EQ(p->shrink->recovery_step, 12);
  EXPECT_EQ(p->shrink->survivor_count, 7);

  // Undegraded neighbours are untouched.
  const PointResult* clean = find_devices(result, 4);
  ASSERT_NE(clean, nullptr);
  EXPECT_FALSE(clean->degraded());
  EXPECT_FALSE(clean->shrink.has_value());
}

TEST(DegradedCampaign, DegradedPointIsPricedAgainstSurvivors) {
  const CampaignResult result = run_degraded(1);
  const PointResult* p = find_devices(result, 8);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->degraded());

  // The measured side runs the 7-survivor decomposition...
  EXPECT_EQ(p->sim.devices, 7);

  // ...and the ideal side is the survivor-count prediction, so the
  // efficiency ratio compares like with like.
  sim::Workload workload = make_workload(WorkloadKind::kCylinderBisection);
  const sim::ClusterSimulator simulator(sys::SystemId::kSummit,
                                        hal::Model::kCuda, sim::App::kHarvey);
  const sim::SimPoint expected_sim =
      simulator.simulate(workload, 7, p->schedule.size_multiplier);
  const perf::Prediction expected_pred = simulator.predict_degraded(
      workload, 8, 7, p->schedule.size_multiplier);
  EXPECT_EQ(p->sim.mflups, expected_sim.mflups);
  EXPECT_EQ(p->prediction.mflups, expected_pred.mflups);
}

TEST(DegradedCampaign, DeterministicAtAnyWorkerCount) {
  const CampaignResult serial = run_degraded(1);
  const CampaignResult concurrent = run_degraded(4);
  const PointResult* a = find_devices(serial, 8);
  const PointResult* b = find_devices(concurrent, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->sim.mflups, b->sim.mflups);
  EXPECT_EQ(a->prediction.mflups, b->prediction.mflups);
  EXPECT_EQ(concurrent.degraded_points(), 1u);
}

TEST(DegradedCampaign, CsvRowCarriesShrinkProvenance) {
  const CampaignResult result = run_degraded(1);
  std::ostringstream csv;
  write_campaign_csv(result, csv);
  const std::string text = csv.str();

  // Header declares the provenance columns.
  EXPECT_NE(text.find("survivors"), std::string::npos);
  EXPECT_NE(text.find("failed_ranks"), std::string::npos);
  EXPECT_NE(text.find("recovery_step"), std::string::npos);

  // The degraded row: status + survivor count + dead rank + resume step.
  std::istringstream lines(text);
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    if (line.find(",degraded,") == std::string::npos) continue;
    found = true;
    // survivors, failed_ranks, recovery_step are adjacent columns.
    EXPECT_NE(line.find(",7,5,12,"), std::string::npos) << line;
  }
  EXPECT_TRUE(found) << "no degraded row in:\n" << text;
}

TEST(DegradedCampaign, JsonCarriesShrinkProvenance) {
  const CampaignResult result = run_degraded(1);
  std::ostringstream json;
  write_campaign_json(result, json);
  const std::string text = json.str();

  EXPECT_NE(text.find("\"degraded_points\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(text.find("\"failed_ranks\": [5]"), std::string::npos);
  EXPECT_NE(text.find("\"recovery_step\": 12"), std::string::npos);
  EXPECT_NE(text.find("\"survivor_count\": 7"), std::string::npos);
}

TEST(DegradedCampaign, EveryPointDegradedStillCompletes) {
  CampaignSpec spec;
  spec.series = {summit_series()};
  spec.workers = 2;
  // Worst case: every multi-device point loses a rank.  The campaign must
  // still complete every point — a rank death never aborts a campaign.
  spec.rank_failure_injector =
      [](const SeriesSpec&,
         const sys::SchedulePoint& p) -> std::optional<ShrinkProvenance> {
    if (p.devices < 2) return std::nullopt;
    ShrinkProvenance shrink;
    shrink.failed_ranks = {0};
    shrink.recovery_step = 0;
    shrink.survivor_count = p.devices - 1;
    return shrink;
  };
  const CampaignResult result = run_campaign(spec);

  EXPECT_EQ(result.failed_points(), 0u);
  std::size_t multi = 0;
  for (const PointResult& p : result.series.front().points)
    multi += (p.schedule.devices >= 2);
  EXPECT_EQ(result.degraded_points(), multi);
  EXPECT_GT(multi, 0u);
}

}  // namespace hemo::rt
