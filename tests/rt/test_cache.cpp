// ArtifactCache: hit/miss counting, LRU eviction, in-flight dedup of
// concurrent computes, and failure (non-)caching.

#include "rt/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace hemo::rt {
namespace {

TEST(ArtifactCache, MissThenHitReturnsTheSameArtifact) {
  ArtifactCache cache;
  int computes = 0;
  auto make = [&computes] {
    ++computes;
    return std::make_shared<int>(42);
  };
  const std::shared_ptr<int> first = cache.get_or_compute<int>("k", make);
  const std::shared_ptr<int> second = cache.get_or_compute<int>("k", make);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(*second, 42);

  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsed) {
  ArtifactCache cache(/*capacity=*/2);
  int computes = 0;
  auto value = [&computes](int v) {
    return [&computes, v] {
      ++computes;
      return std::make_shared<int>(v);
    };
  };
  cache.get_or_compute<int>("a", value(1));
  cache.get_or_compute<int>("b", value(2));
  cache.get_or_compute<int>("a", value(1));  // refresh a: b is now LRU
  cache.get_or_compute<int>("c", value(3));  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.get_or_compute<int>("a", value(1));  // still resident
  EXPECT_EQ(computes, 3);
  cache.get_or_compute<int>("b", value(2));  // evicted: recomputed
  EXPECT_EQ(computes, 4);
}

TEST(ArtifactCache, ConcurrentCallersShareOneCompute) {
  ArtifactCache cache;
  std::atomic<int> computes{0};
  auto slow_make = [&computes] {
    ++computes;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::make_shared<int>(7);
  };

  std::vector<std::shared_ptr<int>> results(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < results.size(); ++i)
    threads.emplace_back([&, i] {
      results[i] = cache.get_or_compute<int>("shared", slow_make);
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(ArtifactCache, FailedComputeIsNotCached) {
  ArtifactCache cache;
  int computes = 0;
  EXPECT_THROW(cache.get_or_compute<int>("k",
                                         [&computes]() -> std::shared_ptr<int> {
                                           ++computes;
                                           throw std::runtime_error("boom");
                                         }),
               std::runtime_error);
  // The failure was not memoized; the next caller recomputes and succeeds.
  const std::shared_ptr<int> ok = cache.get_or_compute<int>("k", [&computes] {
    ++computes;
    return std::make_shared<int>(9);
  });
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(*ok, 9);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ArtifactCache, EvictedArtifactStaysAliveForHolders) {
  ArtifactCache cache(/*capacity=*/1);
  const std::shared_ptr<int> held =
      cache.get_or_compute<int>("a", [] { return std::make_shared<int>(5); });
  cache.get_or_compute<int>("b", [] { return std::make_shared<int>(6); });
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(*held, 5);  // shared_ptr semantics keep the artifact valid
}

TEST(ArtifactCache, ClearResetsEntriesAndCounters) {
  ArtifactCache cache;
  cache.get_or_compute<int>("a", [] { return std::make_shared<int>(1); });
  cache.get_or_compute<int>("a", [] { return std::make_shared<int>(1); });
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);  // clear() starts a fresh measurement
  EXPECT_EQ(cache.stats().misses, 0u);

  // The artifact is gone: the next lookup recomputes.
  int computes = 0;
  cache.get_or_compute<int>("a", [&computes] {
    ++computes;
    return std::make_shared<int>(1);
  });
  EXPECT_EQ(computes, 1);
}

TEST(ArtifactCache, CanonicalKeyJoinsWithSlashes) {
  EXPECT_EQ(canonical_key({"workload", "aorta"}), "workload/aorta");
  EXPECT_EQ(canonical_key({"stats", "cyl", "ranks=4"}), "stats/cyl/ranks=4");
}


TEST(ArtifactCache, ShardStatsPartitionTheAggregate) {
  ArtifactCache cache(/*capacity=*/64, /*shards=*/4);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity(), 64u);

  for (int i = 0; i < 32; ++i) {
    const std::string key = "key-" + std::to_string(i);
    cache.get_or_compute<int>(key, [i] { return std::make_shared<int>(i); });
    cache.get_or_compute<int>(key, [i] { return std::make_shared<int>(i); });
  }

  const std::vector<ArtifactCache::Stats> shards = cache.shard_stats();
  ASSERT_EQ(shards.size(), 4u);
  ArtifactCache::Stats sum;
  int populated = 0;
  for (const ArtifactCache::Stats& shard : shards) {
    sum.hits += shard.hits;
    sum.misses += shard.misses;
    sum.evictions += shard.evictions;
    sum.entries += shard.entries;
    populated += shard.entries > 0;
  }
  const ArtifactCache::Stats total = cache.stats();
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.evictions, total.evictions);
  EXPECT_EQ(sum.entries, total.entries);
  EXPECT_EQ(total.misses, 32u);
  EXPECT_EQ(total.hits, 32u);
  EXPECT_GT(populated, 1);  // std::hash spreads 32 keys past one stripe
}

TEST(ArtifactCache, ShardedCapacityBoundsResidency) {
  // ceil(8/4) = 2 entries per shard; flooding far past capacity must keep
  // residency within the per-shard bounds and account every eviction.
  ArtifactCache cache(/*capacity=*/8, /*shards=*/4);
  for (int i = 0; i < 64; ++i)
    cache.get_or_compute<int>("key-" + std::to_string(i),
                              [i] { return std::make_shared<int>(i); });
  const ArtifactCache::Stats total = cache.stats();
  EXPECT_LE(total.entries, 8u);
  EXPECT_EQ(total.evictions, total.misses - total.entries);
  for (const ArtifactCache::Stats& shard : cache.shard_stats())
    EXPECT_LE(shard.entries, 2u);
}

TEST(ArtifactCache, ShardCapacityRoundsUpToAMultiple) {
  ArtifactCache cache(/*capacity=*/5, /*shards=*/4);  // ceil(5/4) = 2/shard
  EXPECT_EQ(cache.capacity(), 8u);
  EXPECT_EQ(ArtifactCache(/*capacity=*/256).shard_count(), 1u);
}

TEST(ArtifactCache, ShardedConcurrentCallersComputeEachKeyOnce) {
  ArtifactCache cache(/*capacity=*/256, /*shards=*/8);
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &computes] {
      for (int i = 0; i < 64; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const std::shared_ptr<int> value =
            cache.get_or_compute<int>(key, [&computes, i] {
              ++computes;
              return std::make_shared<int>(i);
            });
        EXPECT_EQ(*value, i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 64);  // in-flight dedup holds per shard
}

}  // namespace
}  // namespace hemo::rt
