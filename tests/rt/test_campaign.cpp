// Campaign layer: deterministic results at any worker count, seeded-fault
// retry, structured failure capture, figure matrices, spec parsing, and
// the CSV/JSON sinks.

#include "rt/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hemo::rt {
namespace {

/// A small but non-trivial matrix: two systems, both apps, one cylinder
/// workload — enough jobs to exercise stealing and cache sharing.
std::vector<SeriesSpec> small_matrix() {
  return {
      {sys::SystemId::kSummit, hal::Model::kCuda, sim::App::kHarvey,
       WorkloadKind::kCylinderBisection},
      {sys::SystemId::kCrusher, hal::Model::kHip, sim::App::kProxy,
       WorkloadKind::kCylinderBisection},
  };
}

CampaignResult run_small(int workers) {
  CampaignSpec spec;
  spec.name = "test";
  spec.series = small_matrix();
  spec.workers = workers;
  ArtifactCache cache;  // private per run: runs share nothing
  return run_campaign(spec, cache);
}

TEST(Campaign, BitIdenticalResultsAtAnyWorkerCount) {
  const CampaignResult serial = run_small(1);
  ASSERT_EQ(serial.failed_points(), 0u);
  ASSERT_GT(serial.total_points(), 0u);

  for (const int workers : {2, 8}) {
    const CampaignResult concurrent = run_small(workers);
    ASSERT_EQ(concurrent.series.size(), serial.series.size());
    for (std::size_t s = 0; s < serial.series.size(); ++s) {
      const auto& a = serial.series[s].points;
      const auto& b = concurrent.series[s].points;
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) {
        ASSERT_TRUE(b[k].ok());
        EXPECT_EQ(a[k].schedule.devices, b[k].schedule.devices);
        EXPECT_EQ(a[k].schedule.size_multiplier, b[k].schedule.size_multiplier);
        // Exact equality on purpose: determinism means the same bits.
        EXPECT_EQ(a[k].sim.mflups, b[k].sim.mflups);
        EXPECT_EQ(a[k].sim.iteration_s, b[k].sim.iteration_s);
        EXPECT_EQ(a[k].sim.worst_rank.comm_s, b[k].sim.worst_rank.comm_s);
        EXPECT_EQ(a[k].prediction.mflups, b[k].prediction.mflups);
      }
    }
  }
}

TEST(Campaign, SeededFaultIsRetriedToSuccess) {
  CampaignSpec spec;
  spec.series = {small_matrix().front()};
  spec.workers = 2;
  spec.job.retry.initial_backoff = std::chrono::milliseconds(1);
  spec.fault_injector = [](const SeriesSpec&, const sys::SchedulePoint& point,
                           int attempt) {
    if (point.devices == 4 && attempt <= 2)
      throw std::runtime_error("seeded transient fault");
  };

  const CampaignResult result = run_campaign(spec);
  EXPECT_EQ(result.failed_points(), 0u);
  for (const PointResult& p : result.series.front().points) {
    EXPECT_TRUE(p.ok());
    EXPECT_EQ(p.attempts, p.schedule.devices == 4 ? 3 : 1);
  }

  // The retried point's numbers match an unfaulted run exactly.
  const CampaignResult clean = run_small(1);
  for (std::size_t k = 0; k < clean.series.front().points.size(); ++k)
    EXPECT_EQ(result.series.front().points[k].sim.mflups,
              clean.series.front().points[k].sim.mflups);
}

TEST(Campaign, PermanentFaultDegradesOnePointNotTheCampaign) {
  CampaignSpec spec;
  spec.series = {small_matrix().front()};
  spec.job.retry.max_attempts = 2;
  spec.job.retry.initial_backoff = std::chrono::milliseconds(1);
  spec.fault_injector = [](const SeriesSpec&, const sys::SchedulePoint& point,
                           int) {
    if (point.devices == 8) throw std::runtime_error("seeded permanent fault");
  };

  const CampaignResult result = run_campaign(spec);
  EXPECT_EQ(result.failed_points(), 1u);
  for (const PointResult& p : result.series.front().points) {
    if (p.schedule.devices == 8) {
      EXPECT_FALSE(p.ok());
      EXPECT_EQ(p.attempts, 2);
      EXPECT_NE(p.failure->message.find("seeded permanent fault"),
                std::string::npos);
    } else {
      EXPECT_TRUE(p.ok());
    }
  }
  ASSERT_EQ(result.failures().size(), 1u);

  // Both sinks carry the failure without losing the healthy points.
  std::ostringstream csv;
  write_campaign_csv(result, csv);
  EXPECT_NE(csv.str().find("failed"), std::string::npos);
  EXPECT_NE(csv.str().find("seeded permanent fault"), std::string::npos);
  std::ostringstream json;
  write_campaign_json(result, json);
  EXPECT_NE(json.str().find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(json.str().find("\"failed_points\": 1"), std::string::npos);
}

TEST(Campaign, UnavailableModelYieldsStructuredFailures) {
  CampaignSpec spec;
  // SYCL was never evaluated on Summit; profile_for would abort, so the
  // campaign must pre-check and degrade gracefully.
  spec.series = {{sys::SystemId::kSummit, hal::Model::kSycl,
                  sim::App::kHarvey, WorkloadKind::kCylinderBisection}};
  const CampaignResult result = run_campaign(spec);
  EXPECT_EQ(result.failed_points(), result.total_points());
  EXPECT_GT(result.total_points(), 0u);
  for (const PointResult& p : result.series.front().points) {
    EXPECT_FALSE(p.ok());
    EXPECT_EQ(p.attempts, 0);
    EXPECT_NE(p.failure->message.find("not evaluated"), std::string::npos);
  }
}

TEST(Campaign, WorkloadArtifactsAreSharedThroughTheCache) {
  ArtifactCache cache;
  const auto first = shared_workload(cache, WorkloadKind::kCylinderBisection);
  const auto second = shared_workload(cache, WorkloadKind::kCylinderBisection);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  const auto stats4 = shared_rank_stats(cache, first, 4);
  const auto stats4_again = shared_rank_stats(cache, first, 4);
  EXPECT_EQ(stats4.get(), stats4_again.get());
  EXPECT_EQ(stats4->n_ranks, 4);
  EXPECT_EQ(stats4->points.size(), 4u);
}

TEST(Campaign, FigureMatricesAreNonEmptyAndAvailable) {
  std::size_t sum = 0;
  for (const std::string& figure : known_figures()) {
    if (figure == "all") continue;
    const std::vector<SeriesSpec> specs = figure_matrix(figure);
    EXPECT_FALSE(specs.empty()) << figure;
    sum += specs.size();
    // Figure matrices reproduce the study: every combination was run.
    for (const SeriesSpec& s : specs)
      EXPECT_TRUE(sim::model_available(s.system, s.model))
          << figure << ": " << series_label(s);
  }
  EXPECT_EQ(figure_matrix("all").size(), sum);
}

TEST(Campaign, ParsesSeriesSpecs) {
  SeriesSpec spec;
  ASSERT_TRUE(parse_series("crusher:hip:harvey:aorta", &spec));
  EXPECT_EQ(spec.system, sys::SystemId::kCrusher);
  EXPECT_EQ(spec.model, hal::Model::kHip);
  EXPECT_EQ(spec.app, sim::App::kHarvey);
  EXPECT_EQ(spec.workload, WorkloadKind::kAorta);

  ASSERT_TRUE(parse_series("summit:cuda", &spec));
  EXPECT_EQ(spec.system, sys::SystemId::kSummit);
  EXPECT_EQ(spec.app, sim::App::kHarvey);  // default
  EXPECT_EQ(spec.workload, WorkloadKind::kCylinderBisection);  // default

  ASSERT_TRUE(parse_series("polaris:kokkos-sycl:proxy", &spec));
  EXPECT_EQ(spec.model, hal::Model::kKokkosSycl);
  EXPECT_EQ(spec.app, sim::App::kProxy);

  EXPECT_FALSE(parse_series("atlantis:cuda", &spec));
  EXPECT_FALSE(parse_series("summit:morsecode", &spec));
  EXPECT_FALSE(parse_series("summit", &spec));
  EXPECT_FALSE(parse_series("summit:cuda:harvey:aorta:extra", &spec));
}

TEST(Campaign, SeriesLabelsAreHumanReadable) {
  const SeriesSpec spec{sys::SystemId::kCrusher, hal::Model::kHip,
                        sim::App::kHarvey, WorkloadKind::kAorta};
  EXPECT_EQ(series_label(spec), "Crusher/HIP/HARVEY/aorta");
}


TEST(Campaign, TrafficAuditBlockIsEmittedWhenFilled) {
  CampaignSpec spec;
  spec.series = {{sys::SystemId::kSummit, hal::Model::kCuda,
                  sim::App::kHarvey, WorkloadKind::kCylinderBisection}};
  CampaignResult result = run_campaign(spec);

  // Absent by default: rt does not depend on the analysis layer.
  std::ostringstream without;
  write_campaign_json(result, without);
  EXPECT_EQ(without.str().find("traffic_audit"), std::string::npos);

  // The campaign tool fills the field with the pre-rendered hemo-flux
  // object; the sink must embed it verbatim under "traffic_audit".
  result.traffic_audit_json = "{\"version\": \"hemo-flux/1\"}";
  std::ostringstream with;
  write_campaign_json(result, with);
  EXPECT_NE(
      with.str().find("\"traffic_audit\": {\"version\": \"hemo-flux/1\"}"),
      std::string::npos);
}

}  // namespace
}  // namespace hemo::rt
