// Work-stealing executor: completion, steal path, bounded-queue
// backpressure, worker-submit bypass, and graceful shutdown drain.

#include "rt/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace hemo::rt {
namespace {

/// A manually released gate that a task can park on, with a flag that
/// reports when the task has actually started running on a worker.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> started{false};

  void wait() {
    started = true;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait_started() {
    while (!started) std::this_thread::yield();
  }
};

TEST(Executor, RunsEverySubmittedTask) {
  Executor executor({4, 1024});
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i)
    executor.submit([&count] { ++count; });
  executor.wait_idle();
  EXPECT_EQ(count.load(), 200);
  const Executor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 200u);
  EXPECT_EQ(stats.executed, 200u);
}

TEST(Executor, DefaultsToAtLeastOneWorker) {
  Executor executor;
  EXPECT_GE(executor.workers(), 1);
}

TEST(Executor, StealsFromABusyWorkersDeque) {
  // Two workers.  Park worker A on a gate, then submit a burst: round-robin
  // placement lands half the burst in A's deque, and the only way those
  // tasks can run while A is parked is for B to steal them.
  Executor executor({2, 1024});
  Gate gate;
  executor.submit([&gate] { gate.wait(); });
  gate.wait_started();

  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i)
    executor.submit([&count] { ++count; });

  // The 20 quick tasks finish while one worker is still parked.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (count.load() < 20 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(count.load(), 20);
  EXPECT_GE(executor.stats().stolen, 1u);

  gate.release();
  executor.wait_idle();
}

TEST(Executor, BoundedQueueBlocksExternalSubmit) {
  // One worker parked on a gate, capacity 2: two fillers saturate the
  // queue, so a third external submit must block until the gate opens.
  Executor executor({1, 2});
  Gate gate;
  executor.submit([&gate] { gate.wait(); });
  gate.wait_started();
  executor.submit([] {});
  executor.submit([] {});

  std::atomic<bool> third_submitted{false};
  std::thread producer([&] {
    executor.submit([] {});
    third_submitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_submitted.load());

  gate.release();
  producer.join();
  EXPECT_TRUE(third_submitted.load());
  executor.wait_idle();
  EXPECT_EQ(executor.stats().executed, 4u);
}

TEST(Executor, WorkerSubmitBypassesTheBound) {
  // A task fanning out from inside a worker would deadlock if its submits
  // honored the bound; they bypass it instead.
  Executor executor({1, 1});
  std::atomic<int> count{0};
  executor.submit([&] {
    for (int i = 0; i < 8; ++i)
      executor.submit([&count] { ++count; });
  });
  executor.wait_idle();
  EXPECT_EQ(count.load(), 8);
}

TEST(Executor, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    Executor executor({2, 1024});
    for (int i = 0; i < 100; ++i)
      executor.submit([&count] { ++count; });
    executor.shutdown();  // must finish everything already accepted
    EXPECT_EQ(count.load(), 100);
    executor.shutdown();  // idempotent
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(Executor, WaitIdleReturnsImmediatelyWhenEmpty) {
  Executor executor({2, 16});
  executor.wait_idle();
  EXPECT_EQ(executor.stats().submitted, 0u);
}


TEST(Executor, QueueHighWatermarkStartsAtZero) {
  Executor executor({1, 16});
  EXPECT_EQ(executor.stats().queue_high_watermark, 0u);
}

TEST(Executor, TracksQueueHighWatermark) {
  Executor executor({1, 64});
  Gate gate;
  // Park the only worker so every later submit piles up in the deques.
  executor.submit([&gate] { gate.wait(); });
  gate.wait_started();
  for (int i = 0; i < 8; ++i) executor.submit([] {});
  gate.release();
  executor.wait_idle();

  const Executor::Stats stats = executor.stats();
  EXPECT_EQ(stats.queue_high_watermark, 8u);  // deepest backlog reached
  EXPECT_EQ(stats.executed, 9u);
}

TEST(Executor, QueueHighWatermarkIsAMaxNotACounter) {
  Executor executor({1, 64});
  Gate gate;
  executor.submit([&gate] { gate.wait(); });
  gate.wait_started();
  executor.submit([] {});
  gate.release();
  executor.wait_idle();
  EXPECT_EQ(executor.stats().queue_high_watermark, 1u);

  // Draining does not reset the watermark, and shallower backlogs later
  // do not lower it.
  executor.submit([] {});
  executor.wait_idle();
  EXPECT_EQ(executor.stats().queue_high_watermark, 1u);
}

}  // namespace
}  // namespace hemo::rt
