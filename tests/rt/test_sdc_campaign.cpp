// SDC-audited campaigns: a point whose solver run detected (and survived)
// silent data corruption stays "ok" — detection plus rollback IS the
// success path — but carries its SdcReport through PointResult into the
// CSV and JSON sinks, so a campaign is self-auditing about the corruption
// it absorbed rather than silently pretending nothing happened.

#include "rt/campaign.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

namespace hemo::rt {
namespace {

SeriesSpec summit_series() {
  return {sys::SystemId::kSummit, hal::Model::kCuda, sim::App::kHarvey,
          WorkloadKind::kCylinderBisection};
}

/// Every 8-device point reports sentinel activity: 3 detections, one
/// retracted checker glitch, one rank quarantined.
std::optional<SdcReport> sdc_at_eight(const SeriesSpec&,
                                      const sys::SchedulePoint& p) {
  if (p.devices != 8) return std::nullopt;
  SdcReport report;
  report.detected = 3;
  report.false_positives = 1;
  report.quarantines = 1;
  return report;
}

CampaignResult run_with_sdc() {
  CampaignSpec spec;
  spec.name = "sdc-test";
  spec.series = {summit_series()};
  spec.workers = 1;
  spec.sdc_injector = sdc_at_eight;
  ArtifactCache cache;
  return run_campaign(spec, cache);
}

}  // namespace

TEST(SdcCampaign, ReportIsAttachedWithoutFailingOrDegradingThePoint) {
  const CampaignResult result = run_with_sdc();
  EXPECT_EQ(result.failed_points(), 0u);
  EXPECT_EQ(result.degraded_points(), 0u);

  std::int64_t hit_points = 0;
  for (const PointResult& p : result.series.front().points) {
    if (p.schedule.devices == 8) {
      ++hit_points;
      EXPECT_TRUE(p.ok());
      EXPECT_FALSE(p.degraded());
      ASSERT_TRUE(p.sdc.has_value());
      EXPECT_EQ(p.sdc->detected, 3);
      EXPECT_EQ(p.sdc->false_positives, 1);
      EXPECT_EQ(p.sdc->quarantines, 1);
    } else {
      EXPECT_FALSE(p.sdc.has_value());
    }
  }
  ASSERT_GE(hit_points, 1);
  EXPECT_EQ(result.sdc_detected_total(), 3 * hit_points);
}

TEST(SdcCampaign, SinksCarryTheSdcColumnsAndBlocks) {
  const CampaignResult result = run_with_sdc();

  std::ostringstream csv;
  write_campaign_csv(result, csv);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("sdc_detected"), std::string::npos);
  EXPECT_NE(csv_text.find("sdc_false_positive"), std::string::npos);
  EXPECT_NE(csv_text.find("sdc_quarantines"), std::string::npos);

  std::ostringstream json;
  write_campaign_json(result, json);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"sdc_detected_total\": "), std::string::npos);
  EXPECT_NE(
      json_text.find(
          "\"sdc\": {\"detected\": 3, \"false_positives\": 1, "
          "\"quarantines\": 1}"),
      std::string::npos);
}

TEST(SdcCampaign, CleanCampaignsReportZeroTotalsAndNoBlocks) {
  CampaignSpec spec;
  spec.name = "clean";
  spec.series = {summit_series()};
  spec.workers = 1;
  ArtifactCache cache;
  const CampaignResult result = run_campaign(spec, cache);

  EXPECT_EQ(result.sdc_detected_total(), 0);
  std::ostringstream json;
  write_campaign_json(result, json);
  EXPECT_EQ(json.str().find("\"sdc\": {"), std::string::npos);
}

}  // namespace hemo::rt
