// Admission control: perf-priced budgets, pending-point bounds, charge
// and release accounting, and the point cost model itself.

#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include "rt/cache.hpp"
#include "rt/campaign.hpp"
#include "sys/hardware.hpp"

namespace hemo::serve {
namespace {

TEST(Admission, AdmitsWithinDefaultsAndTracksUsage) {
  AdmissionController admission;
  const AdmissionController::Decision decision = admission.admit("a", 3.0, 4);
  EXPECT_TRUE(decision.admitted);
  const TenantUsage& usage = admission.usage("a");
  EXPECT_DOUBLE_EQ(usage.charged, 3.0);
  EXPECT_EQ(usage.pending_points, 4);
  EXPECT_EQ(usage.admitted, 1u);
}

TEST(Admission, EnforcesThePendingPointBound) {
  TenantConfig defaults;
  defaults.max_pending_points = 10;
  AdmissionController admission(defaults);
  EXPECT_TRUE(admission.admit("a", 0.0, 8).admitted);

  const AdmissionController::Decision decision = admission.admit("a", 0.0, 3);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.reason, RejectReason::kQueueFull);
  EXPECT_EQ(admission.usage("a").rejected, 1u);

  // Exactly filling the bound is allowed.
  EXPECT_TRUE(admission.admit("a", 0.0, 2).admitted);
}

TEST(Admission, EnforcesTheCostBudget) {
  TenantConfig defaults;
  defaults.budget = 10.0;
  AdmissionController admission(defaults);
  EXPECT_TRUE(admission.admit("a", 7.0, 1).admitted);

  const AdmissionController::Decision decision = admission.admit("a", 4.0, 1);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.reason, RejectReason::kOverBudget);
  EXPECT_NE(decision.detail.find("budget"), std::string::npos);

  // The budget bounds *outstanding* work: releasing frees headroom.
  admission.release_point("a", 7.0);
  EXPECT_TRUE(admission.admit("a", 4.0, 1).admitted);
}

TEST(Admission, BudgetsAreIndependentPerTenant) {
  TenantConfig defaults;
  defaults.budget = 5.0;
  AdmissionController admission(defaults);
  EXPECT_TRUE(admission.admit("a", 5.0, 1).admitted);
  EXPECT_FALSE(admission.admit("a", 1.0, 1).admitted);
  EXPECT_TRUE(admission.admit("b", 5.0, 1).admitted);  // b is unaffected
}

TEST(Admission, ConfigureOverridesTheDefaults) {
  TenantConfig defaults;
  defaults.budget = 1.0;
  AdmissionController admission(defaults);

  TenantConfig roomy;
  roomy.budget = 100.0;
  admission.configure("a", roomy);
  EXPECT_TRUE(admission.admit("a", 50.0, 1).admitted);
  EXPECT_FALSE(admission.admit("b", 50.0, 1).admitted);  // b keeps defaults
}

TEST(Admission, ReleaseClearsPhantomRoundingResidue) {
  AdmissionController admission;
  EXPECT_TRUE(admission.admit("a", 0.3, 3).admitted);
  admission.release_point("a", 0.1);
  admission.release_point("a", 0.1);
  admission.release_point("a", 0.1);
  const TenantUsage& usage = admission.usage("a");
  EXPECT_EQ(usage.pending_points, 0);
  EXPECT_DOUBLE_EQ(usage.charged, 0.0);  // not 5.5e-17
  EXPECT_EQ(usage.completed_points, 3u);
}

TEST(Admission, PointCostScalesWithDevicesOccupied) {
  rt::ArtifactCache cache;
  rt::SeriesSpec series;  // Summit/CUDA/HARVEY/cylinder-bisection
  const double small = predicted_point_cost(cache, series, {2, 1});
  const double large = predicted_point_cost(cache, series, {1024, 4});
  EXPECT_GT(small, 0.0);
  // A 1024-device point occupies far more capacity than a 2-device probe,
  // even though per-device time shrinks with scale.
  EXPECT_GT(large, small * 10.0);
}

TEST(Admission, PointCostIsDeterministic) {
  rt::ArtifactCache cache;
  rt::SeriesSpec series;
  const sys::SchedulePoint point{64, 2};
  EXPECT_DOUBLE_EQ(predicted_point_cost(cache, series, point),
                   predicted_point_cost(cache, series, point));
}

}  // namespace
}  // namespace hemo::serve
