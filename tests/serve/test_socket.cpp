// The TCP loopback front-end: submit/stats/tenant/shutdown round trips,
// streamed event lines, parse errors as typed rejections, and coalescing
// across two client connections.

#include "serve/socket.hpp"

#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace hemo::serve {
namespace {

/// Reads lines until one contains `needle`; fails the test after `limit`
/// lines.  Returns the matching line.
std::string read_until(SocketClient& client, const std::string& needle,
                       int limit = 64) {
  std::string line;
  for (int i = 0; i < limit; ++i) {
    if (!client.recv_line(&line)) break;
    if (line.find(needle) != std::string::npos) return line;
  }
  ADD_FAILURE() << "no line containing '" << needle << "'";
  return {};
}

TEST(SocketServe, SubmitStreamsAcceptedPointsAndDone) {
  Server server;
  SocketServer front(server);  // ephemeral port
  SocketClient client(front.port());

  client.send_line(
      R"({"op": "submit", "tenant": "alice", "name": "job",)"
      R"( "series": ["sunspot:sycl:harvey:cylinder-slab"]})");

  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("\"event\": \"accepted\""), std::string::npos);
  EXPECT_NE(line.find("\"tenant\": \"alice\""), std::string::npos);

  int points = 0;
  for (;;) {
    ASSERT_TRUE(client.recv_line(&line));
    if (line.find("\"event\": \"done\"") != std::string::npos) break;
    ASSERT_NE(line.find("\"event\": \"point\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"status\": \"ok\""), std::string::npos) << line;
    ++points;
  }
  EXPECT_EQ(points,
            static_cast<int>(sys::piecewise_schedule(
                sys::system_spec(sys::SystemId::kSunspot).max_devices)
                .size()));
  EXPECT_NE(line.find("\"failed\": 0"), std::string::npos);
}

TEST(SocketServe, MalformedLinesGetTypedRejections) {
  Server server;
  SocketServer front(server);
  SocketClient client(front.port());

  client.send_line("this is not json");
  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("\"event\": \"rejected\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\": \"bad_request\""), std::string::npos);

  client.send_line(R"({"op": "submit", "tenant": "a", "figure": "fig99"})");
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("\"reason\": \"bad_request\""), std::string::npos);
  EXPECT_NE(line.find("fig99"), std::string::npos);

  EXPECT_EQ(server.stats().rejected_bad_request, 2u);
}

TEST(SocketServe, TenantConfigAppliesToAdmission) {
  Server server;
  SocketServer front(server);
  SocketClient client(front.port());

  client.send_line(
      R"({"op": "tenant", "tenant": "alice", "budget": 0.000001})");
  read_until(client, "\"event\": \"ack\"");

  client.send_line(
      R"({"op": "submit", "tenant": "alice",)"
      R"( "series": ["polaris:cuda:harvey:cylinder-slab"]})");
  const std::string line = read_until(client, "\"event\": \"rejected\"");
  EXPECT_NE(line.find("\"reason\": \"over_budget\""), std::string::npos);
}

TEST(SocketServe, HostileTenantNumbersAreRejectedNotFatal) {
  // One malformed line must never abort the shared server: nan/inf and
  // out-of-int-range limits come back as bad_request rejections and the
  // connection keeps serving.
  Server server;
  SocketServer front(server);
  SocketClient client(front.port());

  for (const std::string hostile : {
           R"({"op": "tenant", "tenant": "a", "weight": nan})",
           R"({"op": "tenant", "tenant": "a", "weight": inf})",
           R"({"op": "tenant", "tenant": "a", "budget": nan})",
           R"({"op": "tenant", "tenant": "a", "max_pending": 1e18})",
       }) {
    client.send_line(hostile);
    const std::string line = read_until(client, "\"event\": \"rejected\"");
    EXPECT_NE(line.find("\"reason\": \"bad_request\""), std::string::npos)
        << hostile;
  }

  client.send_line(R"({"op": "stats"})");
  read_until(client, "\"event\": \"stats\"");
}

TEST(SocketServe, TwoConnectionsCoalesceOntoSharedWork) {
  Server server;
  SocketServer front(server);
  SocketClient alice(front.port());
  SocketClient bob(front.port());

  const std::string submit_tail =
      R"( "series": ["crusher:sycl:harvey:cylinder-slab"]})";
  alice.send_line(R"({"op": "submit", "tenant": "alice",)" + submit_tail);
  read_until(alice, "\"event\": \"done\"");
  bob.send_line(R"({"op": "submit", "tenant": "bob",)" + submit_tail);
  read_until(bob, "\"event\": \"done\"");

  SocketClient observer(front.port());
  observer.send_line(R"({"op": "stats"})");
  std::string line;
  ASSERT_TRUE(observer.recv_line(&line));
  EXPECT_NE(line.find("\"event\": \"stats\""), std::string::npos);
  // bob's whole campaign was answered from the memo: executions stayed
  // at one campaign's worth while two campaigns' points completed.
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.board.memo_hits,
            stats.board.executions);
  EXPECT_EQ(stats.points_completed, 2 * stats.board.executions);
}

TEST(SocketServe, ShutdownOpAcksAndStopsIntake) {
  Server server;
  SocketServer front(server);
  SocketClient client(front.port());

  client.send_line(R"({"op": "shutdown"})");
  read_until(client, "\"op\": \"shutdown\"");
  front.wait_shutdown();  // returns because the op was received
  EXPECT_TRUE(server.shutting_down());

  client.send_line(
      R"({"op": "submit", "tenant": "late",)"
      R"( "series": ["polaris:cuda:harvey:cylinder-slab"]})");
  const std::string line = read_until(client, "\"event\": \"rejected\"");
  EXPECT_NE(line.find("\"reason\": \"shutting_down\""), std::string::npos);
  front.stop();
}

}  // namespace
}  // namespace hemo::serve
