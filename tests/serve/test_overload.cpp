// Load shedding under executor overload: once the fair-share backlog
// crosses the configured depth, new low-priority submits are rejected
// with the retryable `overloaded` reason, high-weight tenants keep being
// admitted until the hard limit, and admission recovers as soon as the
// backlog drains.  All deterministic: the executor is a single parked
// worker, so the backlog is exactly what the test queued.

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "rt/campaign.hpp"
#include "serve/server.hpp"

namespace hemo::serve {
namespace {

rt::SeriesSpec series_of(const std::string& text) {
  rt::SeriesSpec spec;
  EXPECT_TRUE(rt::parse_series(text, &spec)) << text;
  return spec;
}

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

// One series = 12 schedule points; with one parked worker and one
// in-flight slot, a submitted campaign leaves 11 points in the
// fair-share queues.
const char* kSeries = "polaris:cuda:harvey:cylinder-slab";

ServeOptions parked_options(Gate* gate, std::size_t shed_queue_depth) {
  ServeOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.shed_queue_depth = shed_queue_depth;
  options.execution_hook = [gate](const rt::SeriesSpec&,
                                  const sys::SchedulePoint&) { gate->wait(); };
  return options;
}

TEST(Overload, ShedsLowPriorityRejectsRetryablyAndRecoversAfterDrain) {
  Gate gate;
  Server server(parked_options(&gate, 8));
  TenantConfig heavy;
  heavy.weight = 2.0;  // >= shed_exempt_weight: exempt until the hard limit
  ASSERT_FALSE(server.configure_tenant("prio", heavy));
  ServeHandle low(server, "alice");
  ServeHandle high(server, "prio");

  // Fill the backlog past the shed depth (11 queued > 8).
  const Server::SubmitOutcome first =
      low.submit("fill", {series_of(kSeries)});
  ASSERT_TRUE(first.admitted);
  {
    const ServeStats stats = server.stats();
    EXPECT_GT(stats.queued, 8u);
  }

  // A low-weight tenant is shed with the retryable overloaded reason.
  const Server::SubmitOutcome shed =
      low.submit("shed-me", {series_of(kSeries)});
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, RejectReason::kOverloaded);
  EXPECT_TRUE(reject_retryable(shed.reason));
  {
    const std::optional<Event> event = low.next_event();  // accepted(fill)
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->kind, Event::Kind::kAccepted);
  }

  // The exempt tenant still gets in: 11 queued < hard limit 8 * 2.
  const Server::SubmitOutcome exempt =
      high.submit("priority", {series_of(kSeries)});
  EXPECT_TRUE(exempt.admitted) << exempt.detail;

  // ... but not unboundedly: 22 queued >= 16 sheds even weight 2.
  const Server::SubmitOutcome hard =
      high.submit("too-much", {series_of(kSeries)});
  EXPECT_FALSE(hard.admitted);
  EXPECT_EQ(hard.reason, RejectReason::kOverloaded);

  {
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.rejected_overloaded, 2u);
    EXPECT_EQ(stats.requests_rejected(), 2u);  // shed counts as rejected
    EXPECT_EQ(stats.requests_admitted, 2u);
  }

  // Fair-share recovery: release the worker, drain, and the same
  // low-weight tenant is admitted again.
  gate.release();
  low.wait(first.request_id);
  high.wait(exempt.request_id);
  server.wait_idle();
  {
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.queued, 0u);
  }
  const Server::SubmitOutcome retry =
      low.submit("retry", {series_of(kSeries)});
  EXPECT_TRUE(retry.admitted) << retry.detail;
  low.wait(retry.request_id);
}

TEST(Overload, SheddingOffByDefault) {
  Gate gate;
  Server server(parked_options(&gate, 0));  // 0 = shedding disabled
  ServeHandle client(server, "alice");
  const Server::SubmitOutcome a = client.submit("a", {series_of(kSeries)});
  const Server::SubmitOutcome b = client.submit("b", {series_of(kSeries)});
  EXPECT_TRUE(a.admitted);
  EXPECT_TRUE(b.admitted);  // 23 queued, but no threshold to cross
  gate.release();
  client.wait(a.request_id);
  client.wait(b.request_id);
  server.wait_idle();
}

// The rejected event carries the machine-readable retryable hint.
TEST(Overload, RejectedEventSaysOverloaded) {
  Gate gate;
  Server server(parked_options(&gate, 4));
  ServeHandle client(server, "alice");
  const Server::SubmitOutcome fill =
      client.submit("fill", {series_of(kSeries)});
  ASSERT_TRUE(fill.admitted);

  Event rejected;
  bool saw_rejected = false;
  server.submit("alice", "shed", {series_of(kSeries)}, [&](const Event& e) {
    rejected = e;
    saw_rejected = true;
  });
  ASSERT_TRUE(saw_rejected);
  EXPECT_EQ(rejected.kind, Event::Kind::kRejected);
  EXPECT_EQ(rejected.reason, RejectReason::kOverloaded);
  EXPECT_EQ(std::string(reject_reason_name(rejected.reason)), "overloaded");
  const std::string json = event_json(rejected);
  EXPECT_NE(json.find("\"retryable\": true"), std::string::npos) << json;

  gate.release();
  client.wait(fill.request_id);
  server.wait_idle();
}

// Journal group-commit backlog shedding: with an fsync window larger
// than the campaign's record count, finishing one campaign leaves
// unsynced records, and a threshold of 1 sheds the next submit.
TEST(Overload, FsyncBacklogSheds) {
  const std::string wal =
      std::string(::testing::TempDir()) + "overload_fsync.wal";
  std::remove(wal.c_str());
  {
    ServeOptions options;
    options.workers = 2;
    JournalOptions journal;
    journal.path = wal;
    journal.group_commit = 1000;  // never syncs within this test
    options.journal = journal;
    options.shed_fsync_backlog = 1;
    Server server(options);
    ServeHandle client(server, "alice");
    const Server::SubmitOutcome first =
        client.submit("durable", {series_of(kSeries)});
    ASSERT_TRUE(first.admitted);  // backlog was empty at admission
    client.wait(first.request_id);
    {
      const ServeStats stats = server.stats();
      EXPECT_TRUE(stats.journal_active);
      EXPECT_GE(stats.journal_unsynced, 1u);
    }
    const Server::SubmitOutcome shed =
        client.submit("backlogged", {series_of(kSeries)});
    EXPECT_FALSE(shed.admitted);
    EXPECT_EQ(shed.reason, RejectReason::kOverloaded);
    server.wait_idle();
  }
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace hemo::serve
