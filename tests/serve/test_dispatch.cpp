// Fair-share dispatcher: deficit-round-robin order, weight ratios, FIFO
// within a tenant, credit clearing, and the bulk-vs-interactive bound.

#include "serve/dispatch.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hemo::serve {
namespace {

PointTask task_of(const std::string& tenant, std::size_t point_index) {
  PointTask task;
  task.tenant = tenant;
  task.point_index = point_index;
  return task;
}

std::vector<std::string> drain(FairShareDispatcher& dispatcher) {
  std::vector<std::string> order;
  PointTask task;
  while (dispatcher.pop(&task)) order.push_back(task.tenant);
  return order;
}

TEST(Dispatch, EqualWeightsAlternateStrictly) {
  FairShareDispatcher dispatcher;
  for (std::size_t i = 0; i < 3; ++i) {
    dispatcher.enqueue(task_of("a", i));
    dispatcher.enqueue(task_of("b", i));
  }
  EXPECT_EQ(drain(dispatcher),
            (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
  EXPECT_TRUE(dispatcher.empty());
  EXPECT_EQ(dispatcher.dispatched(), 6u);
}

TEST(Dispatch, WeightTwoGetsTwoPerRound) {
  FairShareDispatcher dispatcher;
  dispatcher.set_weight("a", 2.0);
  for (std::size_t i = 0; i < 4; ++i) dispatcher.enqueue(task_of("a", i));
  for (std::size_t i = 0; i < 2; ++i) dispatcher.enqueue(task_of("b", i));
  EXPECT_EQ(drain(dispatcher),
            (std::vector<std::string>{"a", "a", "b", "a", "a", "b"}));
}

TEST(Dispatch, FractionalWeightSkipsRounds) {
  FairShareDispatcher dispatcher;
  dispatcher.set_weight("b", 0.5);  // b earns a slot every second visit
  for (std::size_t i = 0; i < 4; ++i) dispatcher.enqueue(task_of("a", i));
  for (std::size_t i = 0; i < 2; ++i) dispatcher.enqueue(task_of("b", i));
  // set_weight registered b first, so the ring visits b, skips it (credit
  // 0.5), and b only spends on every second visit thereafter.
  EXPECT_EQ(drain(dispatcher),
            (std::vector<std::string>{"a", "b", "a", "a", "b", "a"}));
}

TEST(Dispatch, FifoWithinATenant) {
  FairShareDispatcher dispatcher;
  for (std::size_t i = 0; i < 5; ++i) dispatcher.enqueue(task_of("a", i));
  PointTask task;
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(dispatcher.pop(&task));
    EXPECT_EQ(task.point_index, i);
  }
}

TEST(Dispatch, EmptyQueueCannotStockpileCredit) {
  FairShareDispatcher dispatcher;
  // a drains alone: its credit must not accumulate while b is absent.
  for (std::size_t i = 0; i < 8; ++i) dispatcher.enqueue(task_of("a", i));
  PointTask task;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(dispatcher.pop(&task));

  // A fresh burst from both: still strict alternation, no hoarded credit
  // letting a run ahead.
  for (std::size_t i = 0; i < 2; ++i) {
    dispatcher.enqueue(task_of("a", i));
    dispatcher.enqueue(task_of("b", i));
  }
  EXPECT_EQ(drain(dispatcher),
            (std::vector<std::string>{"a", "b", "a", "b"}));
}

TEST(Dispatch, PopOnEmptyReturnsFalse) {
  FairShareDispatcher dispatcher;
  PointTask task;
  EXPECT_FALSE(dispatcher.pop(&task));
  EXPECT_TRUE(dispatcher.empty());
}

TEST(Dispatch, LateJoinerEntersTheRotationImmediately) {
  FairShareDispatcher dispatcher;
  for (std::size_t i = 0; i < 4; ++i) dispatcher.enqueue(task_of("bulk", i));
  PointTask task;
  ASSERT_TRUE(dispatcher.pop(&task));  // bulk gets one out first

  dispatcher.enqueue(task_of("late", 0));
  std::vector<std::string> order = drain(dispatcher);
  // The late tenant is served within one round, not after bulk's backlog.
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[1], "late");
}

TEST(Dispatch, InteractiveCompletionIsBoundedByTenantsNotBacklog) {
  // The satellite fairness property, stated on dispatch sequence numbers:
  // with equal weights, the interactive tenant's k-th point is dispatched
  // within ~2k pops, no matter how deep the bulk backlog is.
  constexpr std::size_t kBulkBacklog = 500;
  constexpr std::size_t kInteractive = 10;

  FairShareDispatcher dispatcher;
  for (std::size_t i = 0; i < kBulkBacklog; ++i)
    dispatcher.enqueue(task_of("bulk", i));
  for (std::size_t i = 0; i < kInteractive; ++i)
    dispatcher.enqueue(task_of("interactive", i));

  PointTask task;
  std::uint64_t last_interactive_dispatch = 0;
  std::size_t interactive_seen = 0;
  while (dispatcher.pop(&task)) {
    if (task.tenant == "interactive") {
      ++interactive_seen;
      last_interactive_dispatch = dispatcher.dispatched();
    }
  }
  EXPECT_EQ(interactive_seen, kInteractive);
  EXPECT_LE(last_interactive_dispatch, 2 * kInteractive + 1);
}

}  // namespace
}  // namespace hemo::serve
