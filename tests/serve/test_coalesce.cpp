// Coalescing board: in-flight subscription, result memoization, the
// failures-not-memoized rule, and LRU memo eviction.

#include "serve/coalesce.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rt/job.hpp"

namespace hemo::serve {
namespace {

PointSubscriber sub_of(std::uint64_t request_id, std::size_t point_index) {
  return PointSubscriber{request_id, "tenant", 0, point_index};
}

rt::PointResult ok_result(double mflups) {
  rt::PointResult result;
  result.schedule = {8, 1};
  result.sim.mflups = mflups;
  result.attempts = 1;
  return result;
}

rt::PointResult failed_result() {
  rt::PointResult result;
  result.schedule = {8, 1};
  result.failure = rt::JobFailure{"point", 1, false, "boom"};
  return result;
}

TEST(Coalesce, FirstClaimExecutesLaterClaimsAttach) {
  CoalescingBoard board;
  rt::PointResult memoized;
  EXPECT_EQ(board.claim("k", sub_of(1, 0), &memoized),
            CoalescingBoard::Claim::kExecute);
  EXPECT_EQ(board.claim("k", sub_of(2, 0), &memoized),
            CoalescingBoard::Claim::kCoalesced);
  EXPECT_EQ(board.claim("k", sub_of(3, 0), &memoized),
            CoalescingBoard::Claim::kCoalesced);

  const std::vector<PointSubscriber> subscribers =
      board.complete("k", ok_result(100.0));
  ASSERT_EQ(subscribers.size(), 3u);
  EXPECT_EQ(subscribers[0].request_id, 1u);  // the executor comes first
  EXPECT_EQ(subscribers[1].request_id, 2u);
  EXPECT_EQ(subscribers[2].request_id, 3u);

  const CoalescingBoard::Stats stats = board.stats();
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.coalesced, 2u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(Coalesce, CompletedResultsAnswerFromTheMemo) {
  CoalescingBoard board;
  rt::PointResult memoized;
  EXPECT_EQ(board.claim("k", sub_of(1, 0), &memoized),
            CoalescingBoard::Claim::kExecute);
  board.complete("k", ok_result(123.0));

  EXPECT_EQ(board.claim("k", sub_of(2, 0), &memoized),
            CoalescingBoard::Claim::kMemoized);
  EXPECT_DOUBLE_EQ(memoized.sim.mflups, 123.0);
  EXPECT_EQ(board.stats().memo_hits, 1u);
  EXPECT_EQ(board.stats().executions, 1u);  // no second execution
}

TEST(Coalesce, FailuresAreDeliveredButNotMemoized) {
  CoalescingBoard board;
  rt::PointResult memoized;
  EXPECT_EQ(board.claim("k", sub_of(1, 0), &memoized),
            CoalescingBoard::Claim::kExecute);
  EXPECT_EQ(board.claim("k", sub_of(2, 0), &memoized),
            CoalescingBoard::Claim::kCoalesced);
  const std::vector<PointSubscriber> subscribers =
      board.complete("k", failed_result());
  EXPECT_EQ(subscribers.size(), 2u);  // everyone hears about the failure

  // ...but the next identical request retries from scratch.
  EXPECT_EQ(board.claim("k", sub_of(3, 0), &memoized),
            CoalescingBoard::Claim::kExecute);
  EXPECT_EQ(board.stats().memo_entries, 0u);
}

TEST(Coalesce, MemoEvictsLeastRecentlyUsed) {
  CoalescingBoard board(/*memo_capacity=*/2);
  rt::PointResult memoized;
  for (const char* key : {"a", "b"}) {
    board.claim(key, sub_of(1, 0), &memoized);
    board.complete(key, ok_result(1.0));
  }
  // Touch "a" so "b" is the LRU victim when "c" lands.
  EXPECT_EQ(board.claim("a", sub_of(2, 0), &memoized),
            CoalescingBoard::Claim::kMemoized);
  board.claim("c", sub_of(3, 0), &memoized);
  board.complete("c", ok_result(3.0));

  EXPECT_EQ(board.stats().memo_evictions, 1u);
  EXPECT_EQ(board.claim("a", sub_of(4, 0), &memoized),
            CoalescingBoard::Claim::kMemoized);
  EXPECT_EQ(board.claim("b", sub_of(5, 0), &memoized),
            CoalescingBoard::Claim::kExecute);  // b was evicted
}

TEST(Coalesce, DistinctKeysDoNotCoalesce) {
  CoalescingBoard board;
  rt::PointResult memoized;
  EXPECT_EQ(board.claim("k1", sub_of(1, 0), &memoized),
            CoalescingBoard::Claim::kExecute);
  EXPECT_EQ(board.claim("k2", sub_of(1, 1), &memoized),
            CoalescingBoard::Claim::kExecute);
  EXPECT_EQ(board.stats().executions, 2u);
  EXPECT_EQ(board.stats().inflight, 2u);
}

}  // namespace
}  // namespace hemo::serve
