// The serve::Server engine end to end, through the in-process
// ServeHandle: byte-identical determinism against run_campaign,
// exactly-one-execution coalescing under concurrent identical submits,
// memoized repeat answers, fair-share completion bounds, typed admission
// rejections, and stats surfacing.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "rt/campaign.hpp"

namespace hemo::serve {
namespace {

rt::SeriesSpec series_of(const std::string& text) {
  rt::SeriesSpec spec;
  EXPECT_TRUE(rt::parse_series(text, &spec)) << text;
  return spec;
}

std::string campaign_csv(const rt::CampaignResult& result) {
  std::ostringstream os;
  rt::write_campaign_csv(result, os);
  return os.str();
}

/// JSON with the runtime metadata (shared cache/executor counters, wall
/// clock) cleared, so equality is about the priced results.
std::string normalized_json(rt::CampaignResult result) {
  result.wall_s = 0.0;
  result.workers = 0;
  result.cache = {};
  result.cache_shards.clear();
  result.executor = {};
  std::ostringstream os;
  rt::write_campaign_json(result, os);
  return os.str();
}

/// A gate the execution hook can park on until the test releases it.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

// ---------------------------------------------------------------------------
// Determinism: the serve path must be byte-identical to run_campaign.
// ---------------------------------------------------------------------------

TEST(ServeDeterminism, ServedCampaignMatchesRunCampaignByteForByte) {
  // A mixed spec: two live series plus one the study never evaluated
  // (Summit/SYCL), which must surface as the same structured failures.
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab"),
      series_of("summit:sycl:harvey:cylinder-slab"),
      series_of("summit:cuda:proxy:cylinder-bisection"),
  };
  ASSERT_TRUE(rt::unavailable_failure(series[1]).has_value());

  ServeOptions options;
  options.workers = 4;
  Server server(options);
  ServeHandle handle(server, "alice");
  const Server::SubmitOutcome outcome = handle.submit("job", series);
  ASSERT_TRUE(outcome.admitted);
  const rt::CampaignResult served = handle.wait(outcome.request_id);

  rt::CampaignSpec spec;
  spec.name = "job";
  spec.series = series;
  spec.workers = 4;
  const rt::CampaignResult reference = rt::run_campaign(spec);

  EXPECT_EQ(campaign_csv(served), campaign_csv(reference));
  EXPECT_EQ(normalized_json(served), normalized_json(reference));
}

TEST(ServeDeterminism, ServedResultIsIndependentOfWorkerCount) {
  const std::vector<rt::SeriesSpec> series = {
      series_of("crusher:sycl:harvey:cylinder-bisection")};
  std::string first;
  for (const int workers : {1, 4}) {
    ServeOptions options;
    options.workers = workers;
    Server server(options);
    ServeHandle handle(server, "t");
    const Server::SubmitOutcome outcome = handle.submit("job", series);
    ASSERT_TRUE(outcome.admitted);
    const std::string csv = campaign_csv(handle.wait(outcome.request_id));
    if (first.empty())
      first = csv;
    else
      EXPECT_EQ(csv, first);
  }
}

// ---------------------------------------------------------------------------
// Coalescing.
// ---------------------------------------------------------------------------

TEST(ServeCoalescing, ConcurrentIdenticalCampaignsExecuteEachPointOnce) {
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab")};
  const std::size_t points = sys::piecewise_schedule(1024).size();

  // Park every execution until both tenants have submitted, so the
  // second submission demonstrably overlaps the first in flight.
  Gate gate;
  std::atomic<std::uint64_t> executions{0};
  ServeOptions options;
  options.workers = 2;
  options.execution_hook = [&gate, &executions](const rt::SeriesSpec&,
                                                const sys::SchedulePoint&) {
    ++executions;
    gate.wait();
  };
  Server server(options);
  ServeHandle alice(server, "alice");
  ServeHandle bob(server, "bob");

  const Server::SubmitOutcome a = alice.submit("job", series);
  const Server::SubmitOutcome b = bob.submit("job", series);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  gate.release();

  const rt::CampaignResult result_a = alice.wait(a.request_id);
  const rt::CampaignResult result_b = bob.wait(b.request_id);
  EXPECT_EQ(campaign_csv(result_a), campaign_csv(result_b));

  // The exactly-once property: every distinct point priced one time,
  // the duplicate campaign served entirely by subscription or memo.
  EXPECT_EQ(executions.load(), points);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.board.executions, points);
  EXPECT_EQ(stats.board.coalesced + stats.board.memo_hits, points);
  EXPECT_EQ(stats.points_completed, 2 * points);
}

TEST(ServeCoalescing, RepeatSubmissionIsAnsweredFromTheMemo) {
  const std::vector<rt::SeriesSpec> series = {
      series_of("sunspot:sycl:harvey:cylinder-slab")};
  ServeOptions options;
  options.workers = 2;
  Server server(options);

  ServeHandle alice(server, "alice");
  const Server::SubmitOutcome a = alice.submit("job", series);
  ASSERT_TRUE(a.admitted);
  alice.wait(a.request_id);
  const std::uint64_t executions_after_first =
      server.stats().board.executions;

  // A later identical campaign re-executes nothing, and every point
  // event announces it was coalesced.
  ServeHandle bob(server, "bob");
  const Server::SubmitOutcome b = bob.submit("job", series);
  ASSERT_TRUE(b.admitted);
  std::size_t coalesced_points = 0;
  for (;;) {
    const std::optional<Event> event = bob.next_event();
    ASSERT_TRUE(event.has_value());
    if (event->kind == Event::Kind::kDone) break;
    if (event->kind == Event::Kind::kPoint) {
      EXPECT_TRUE(event->coalesced);
      ++coalesced_points;
    }
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.board.executions, executions_after_first);
  EXPECT_EQ(coalesced_points, stats.board.memo_hits);
}

// ---------------------------------------------------------------------------
// Fair share.
// ---------------------------------------------------------------------------

TEST(ServeFairness, InteractiveTenantFinishesIndependentOfBulkBacklog) {
  // Bulk floods 4 series first; the interactive tenant's single series
  // (distinct keys — no coalescing) must complete while bulk still has
  // most of its backlog outstanding.
  const std::vector<rt::SeriesSpec> bulk_series = {
      series_of("summit:cuda:harvey:cylinder-slab"),
      series_of("polaris:cuda:harvey:cylinder-slab"),
      series_of("crusher:hip:harvey:cylinder-slab"),
      series_of("sunspot:sycl:harvey:cylinder-slab"),
  };
  const std::vector<rt::SeriesSpec> interactive_series = {
      series_of("summit:cuda:proxy:cylinder-slab")};

  // One worker, window of one: dispatch order is the completion order.
  // The gate holds the first execution until both tenants are queued.
  Gate gate;
  std::atomic<bool> first{true};
  ServeOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.execution_hook = [&gate, &first](const rt::SeriesSpec&,
                                           const sys::SchedulePoint&) {
    if (first.exchange(false)) gate.wait();
  };
  Server server(options);

  ServeHandle bulk(server, "bulk");
  ServeHandle interactive(server, "interactive");
  const Server::SubmitOutcome b = bulk.submit("bulk", bulk_series);
  const Server::SubmitOutcome i =
      interactive.submit("interactive", interactive_series);
  ASSERT_TRUE(b.admitted);
  ASSERT_TRUE(i.admitted);
  gate.release();

  const rt::CampaignResult result = interactive.wait(i.request_id);
  const std::size_t interactive_points = result.total_points();

  // Round-robin bounds the interactive tenant's completion: when its
  // done event fired, at most ~one bulk point per interactive point had
  // run.  A FIFO would have priced all 46 bulk points first.
  const ServeStats stats = server.stats();
  EXPECT_LE(stats.points_completed, 2 * interactive_points + 4);
  bulk.wait(b.request_id);  // drain before teardown
  EXPECT_EQ(server.stats().points_completed,
            stats.points_admitted);
}

// ---------------------------------------------------------------------------
// Admission.
// ---------------------------------------------------------------------------

TEST(ServeAdmission, OverBudgetSubmitsAreRejectedWithTypedEvents) {
  ServeOptions options;
  options.workers = 1;
  Server server(options);
  TenantConfig tiny;
  tiny.budget = 1e-6;  // smaller than any real campaign's predicted cost
  server.configure_tenant("alice", tiny);

  ServeHandle alice(server, "alice");
  const Server::SubmitOutcome outcome = alice.submit(
      "job", {series_of("polaris:cuda:harvey:cylinder-slab")});
  EXPECT_FALSE(outcome.admitted);
  EXPECT_EQ(outcome.reason, RejectReason::kOverBudget);

  const std::optional<Event> event = alice.next_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, Event::Kind::kRejected);
  EXPECT_EQ(event->reason, RejectReason::kOverBudget);
  EXPECT_EQ(server.stats().rejected_over_budget, 1u);

  // Rejection charges nothing: a cheap probe still fits after raising
  // the budget.
  TenantConfig roomy;
  server.configure_tenant("alice", roomy);
  const Server::SubmitOutcome retry = alice.submit(
      "job", {series_of("polaris:cuda:harvey:cylinder-slab")});
  EXPECT_TRUE(retry.admitted);
  alice.wait(retry.request_id);
}

TEST(ServeAdmission, PendingPointBoundRejectsAsQueueFull) {
  ServeOptions options;
  options.workers = 1;
  options.tenant_defaults.max_pending_points = 5;  // < 12 schedule points
  Server server(options);
  ServeHandle alice(server, "alice");
  const Server::SubmitOutcome outcome = alice.submit(
      "job", {series_of("polaris:cuda:harvey:cylinder-slab")});
  EXPECT_FALSE(outcome.admitted);
  EXPECT_EQ(outcome.reason, RejectReason::kQueueFull);
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);
}

TEST(ServeAdmission, ShutdownRejectsNewWorkButDrainsAdmitted) {
  ServeOptions options;
  options.workers = 2;
  Server server(options);
  ServeHandle alice(server, "alice");
  const Server::SubmitOutcome admitted = alice.submit(
      "job", {series_of("crusher:hip:harvey:cylinder-slab")});
  ASSERT_TRUE(admitted.admitted);

  server.begin_shutdown();
  const Server::SubmitOutcome late = alice.submit(
      "late", {series_of("crusher:hip:harvey:cylinder-slab")});
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.reason, RejectReason::kShuttingDown);

  // The admitted campaign still completes.
  const rt::CampaignResult result = alice.wait(admitted.request_id);
  EXPECT_EQ(result.failed_points(), 0u);
  server.wait_idle();
}

TEST(ServeAdmission, InvalidTenantConfigIsReportedNotFatal) {
  // Client-supplied configs must come back as errors; only the typed
  // validator stands between a NaN weight and a HEMO_EXPECTS abort.
  Server server;
  TenantConfig bad;
  bad.weight = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(server.configure_tenant("alice", bad).has_value());
  bad = TenantConfig{};
  bad.weight = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(server.configure_tenant("alice", bad).has_value());
  bad = TenantConfig{};
  bad.budget = 0.0;
  EXPECT_TRUE(server.configure_tenant("alice", bad).has_value());
  bad = TenantConfig{};
  bad.max_pending_points = 0;
  EXPECT_TRUE(server.configure_tenant("alice", bad).has_value());

  // A rejected config leaves the tenant on its previous settings.
  ServeHandle alice(server, "alice");
  const Server::SubmitOutcome outcome = alice.submit(
      "job", {series_of("polaris:cuda:harvey:cylinder-slab")});
  ASSERT_TRUE(outcome.admitted);
  alice.wait(outcome.request_id);
}

TEST(ServeAdmission, EmptyOrAnonymousSubmitsAreBadRequests) {
  Server server;
  ServeHandle alice(server, "alice");
  EXPECT_EQ(alice.submit("job", {}).reason, RejectReason::kBadRequest);
  ServeHandle anonymous(server, "");
  EXPECT_EQ(anonymous
                .submit("job", {series_of("polaris:cuda")})
                .reason,
            RejectReason::kBadRequest);
  EXPECT_EQ(server.stats().rejected_bad_request, 2u);
}

// ---------------------------------------------------------------------------
// Unavailable combinations and event-stream shape.
// ---------------------------------------------------------------------------

TEST(ServeEvents, UnavailableSeriesDeliversStructuredFailures) {
  ServeOptions options;
  options.workers = 1;
  Server server(options);
  ServeHandle alice(server, "alice");
  const Server::SubmitOutcome outcome =
      alice.submit("job", {series_of("summit:sycl:harvey:cylinder-slab")});
  ASSERT_TRUE(outcome.admitted);

  std::size_t failed = 0;
  for (;;) {
    const std::optional<Event> event = alice.next_event();
    ASSERT_TRUE(event.has_value());
    if (event->kind == Event::Kind::kDone) {
      EXPECT_EQ(event->failed, failed);
      break;
    }
    if (event->kind != Event::Kind::kPoint) continue;
    ASSERT_FALSE(event->result.ok());
    EXPECT_EQ(event->result.attempts, 0);
    EXPECT_NE(event->result.failure->message.find("was not evaluated"),
              std::string::npos);
    ++failed;
  }
  EXPECT_EQ(failed, sys::piecewise_schedule(1024).size());
}

TEST(ServeEvents, AcceptedComesFirstAndDoneComesLast) {
  // Repeated rounds: every round races the workers against the
  // submitting thread, and the per-request outbox must still deliver
  // accepted before any point a fast worker completes, and done last.
  ServeOptions options;
  options.workers = 4;
  Server server(options);
  ServeHandle alice(server, "alice");
  for (int round = 0; round < 5; ++round) {
    const Server::SubmitOutcome outcome =
        alice.submit("job", {series_of("sunspot:hip:harvey:cylinder-slab")});
    ASSERT_TRUE(outcome.admitted);

    std::vector<Event::Kind> kinds;
    for (;;) {
      const std::optional<Event> event = alice.next_event();
      ASSERT_TRUE(event.has_value());
      kinds.push_back(event->kind);
      if (event->kind == Event::Kind::kDone) break;
    }
    ASSERT_GE(kinds.size(), 3u);
    EXPECT_EQ(kinds.front(), Event::Kind::kAccepted);
    EXPECT_EQ(kinds.back(), Event::Kind::kDone);
    for (std::size_t i = 1; i + 1 < kinds.size(); ++i)
      EXPECT_EQ(kinds[i], Event::Kind::kPoint);
  }
}

TEST(ServeStatsSurface, SharedRuntimeCountersAreExposed) {
  ServeOptions options;
  options.workers = 2;
  options.cache_shards = 8;
  Server server(options);
  ServeHandle alice(server, "alice");
  const Server::SubmitOutcome outcome = alice.submit(
      "job", {series_of("polaris:kokkos-sycl:harvey:cylinder-slab")});
  ASSERT_TRUE(outcome.admitted);
  alice.wait(outcome.request_id);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.cache_shards.size(), 8u);
  EXPECT_GT(stats.cache.misses, 0u);
  EXPECT_GT(stats.executor.executed, 0u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].first, "alice");
  EXPECT_EQ(stats.tenants[0].second.completed_points,
            sys::piecewise_schedule(1024).size());
  EXPECT_EQ(stats.tenants[0].second.pending_points, 0);
  EXPECT_DOUBLE_EQ(stats.tenants[0].second.charged, 0.0);
}

}  // namespace
}  // namespace hemo::serve
