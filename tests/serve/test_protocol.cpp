// Wire protocol: the flat line-JSON grammar, field validation, figure and
// series expansion, and escaping.

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hemo::serve {
namespace {

Request parse_ok(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_TRUE(parse_request(line, &request, &error)) << error;
  return request;
}

std::string parse_error(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_FALSE(parse_request(line, &request, &error)) << line;
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(Protocol, ParsesASubmitRequest) {
  const Request req = parse_ok(
      R"({"op": "submit", "tenant": "alice", "name": "job1",)"
      R"( "figure": "fig7", "series": ["crusher:hip", "polaris:cuda"]})");
  EXPECT_EQ(req.op, Op::kSubmit);
  EXPECT_EQ(req.tenant, "alice");
  EXPECT_EQ(req.name, "job1");
  EXPECT_EQ(req.figure, "fig7");
  ASSERT_EQ(req.series.size(), 2u);
  EXPECT_EQ(req.series[0], "crusher:hip");
  EXPECT_EQ(req.series[1], "polaris:cuda");
}

TEST(Protocol, ParsesATenantConfigRequest) {
  const Request req = parse_ok(
      R"({"op": "tenant", "tenant": "bob", "weight": 2.5,)"
      R"( "budget": 40, "max_pending": 64})");
  EXPECT_EQ(req.op, Op::kTenant);
  EXPECT_EQ(req.tenant, "bob");
  ASSERT_TRUE(req.weight.has_value());
  EXPECT_DOUBLE_EQ(*req.weight, 2.5);
  ASSERT_TRUE(req.budget.has_value());
  EXPECT_DOUBLE_EQ(*req.budget, 40.0);
  ASSERT_TRUE(req.max_pending.has_value());
  EXPECT_EQ(*req.max_pending, 64);
}

TEST(Protocol, ParsesBareOps) {
  EXPECT_EQ(parse_ok(R"({"op": "stats"})").op, Op::kStats);
  EXPECT_EQ(parse_ok(R"({"op": "shutdown"})").op, Op::kShutdown);
}

TEST(Protocol, EscapedStringsRoundTrip) {
  const Request req = parse_ok(
      R"({"op": "submit", "tenant": "a\"b\\c", "name": "tab\there"})");
  EXPECT_EQ(req.tenant, "a\"b\\c");
  EXPECT_EQ(req.name, "tab\there");
}

TEST(Protocol, RejectsMalformedLines) {
  parse_error("");
  parse_error("not json");
  parse_error(R"({"op": "submit", "tenant": "a")");   // unterminated object
  parse_error(R"({"op": "submit", "tenant": "a"} x)");  // trailing bytes
  parse_error(R"({"tenant": "a"})");                  // missing op
  parse_error(R"({"op": "frobnicate"})");             // unknown op
  parse_error(R"({"op": "submit"})");                 // submit needs tenant
  parse_error(R"({"op": "tenant"})");                 // tenant op needs tenant
}

TEST(Protocol, RejectsUnknownFieldsLoudly) {
  // Catching the typo beats silently ignoring a misspelled budget.
  const std::string error =
      parse_error(R"({"op": "tenant", "tenant": "a", "weigth": 2})");
  EXPECT_NE(error.find("weigth"), std::string::npos);
}

TEST(Protocol, RejectsNonPositiveLimits) {
  parse_error(R"({"op": "tenant", "tenant": "a", "weight": 0})");
  parse_error(R"({"op": "tenant", "tenant": "a", "budget": -1})");
  parse_error(R"({"op": "tenant", "tenant": "a", "max_pending": 0})");
}

TEST(Protocol, RejectsNonFiniteNumbers) {
  // strtod happily reads these spellings; admission must never see them
  // (nan slips past a '<= 0' check, inf monopolizes fair share).
  parse_error(R"({"op": "tenant", "tenant": "a", "weight": nan})");
  parse_error(R"({"op": "tenant", "tenant": "a", "weight": inf})");
  parse_error(R"({"op": "tenant", "tenant": "a", "budget": nan})");
  parse_error(R"({"op": "tenant", "tenant": "a", "budget": 1e999})");
  parse_error(R"({"op": "tenant", "tenant": "a", "max_pending": nan})");
}

TEST(Protocol, BoundsMaxPendingToIntRange) {
  // Casting past INT_MAX is UB; the largest int must still round-trip.
  parse_error(R"({"op": "tenant", "tenant": "a", "max_pending": 1e18})");
  const Request req = parse_ok(
      R"({"op": "tenant", "tenant": "a", "max_pending": 2147483647})");
  ASSERT_TRUE(req.max_pending.has_value());
  EXPECT_EQ(*req.max_pending, 2147483647);
}

TEST(Protocol, BuildSeriesExpandsFigureAndSeriesStrings) {
  Request req;
  req.op = Op::kSubmit;
  req.tenant = "a";
  req.figure = "fig7";
  req.series = {"crusher:hip:harvey:aorta"};
  std::vector<rt::SeriesSpec> series;
  std::string error;
  ASSERT_TRUE(build_series(req, &series, &error)) << error;
  // The figure matrix comes first, then the explicit series.
  EXPECT_EQ(series.size(), rt::figure_matrix("fig7").size() + 1);
  EXPECT_EQ(series.back().system, sys::SystemId::kCrusher);
  EXPECT_EQ(series.back().model, hal::Model::kHip);
  EXPECT_EQ(series.back().workload, rt::WorkloadKind::kAorta);
}

TEST(Protocol, BuildSeriesRejectsUnknownInputs) {
  Request req;
  req.op = Op::kSubmit;
  req.tenant = "a";
  std::vector<rt::SeriesSpec> series;
  std::string error;

  req.figure = "fig99";
  EXPECT_FALSE(build_series(req, &series, &error));

  req.figure.clear();
  req.series = {"atlantis:cuda"};
  EXPECT_FALSE(build_series(req, &series, &error));

  req.series.clear();  // no figure, no series: nothing to run
  EXPECT_FALSE(build_series(req, &series, &error));
}

TEST(Protocol, JsonEscapeHandlesSpecialsAndControlBytes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01" "b", 3)), "a\\u0001b");
}

}  // namespace
}  // namespace hemo::serve
