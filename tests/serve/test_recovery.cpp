// Journal replay and Server::restore() end to end: a journal written by
// a live server replays into the state that produced it; an interrupted
// journal (admission + a prefix of points, no terminal record) restores
// into a fresh server that delivers the journaled points without
// re-executing them and finishes the campaign byte-identical to an
// uninterrupted run; torn tails, corrupt records, duplicates and foreign
// files are absorbed or rejected exactly as documented.

#include "serve/recovery.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rt/campaign.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"

namespace hemo::serve {
namespace {

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

rt::SeriesSpec series_of(const std::string& text) {
  rt::SeriesSpec spec;
  EXPECT_TRUE(rt::parse_series(text, &spec)) << text;
  return spec;
}

std::string campaign_csv(const rt::CampaignResult& result) {
  std::ostringstream os;
  rt::write_campaign_csv(result, os);
  return os.str();
}

ServeOptions journaled_options(const std::string& path) {
  ServeOptions options;
  options.workers = 2;
  JournalOptions journal;
  journal.path = path;
  options.journal = journal;
  return options;
}

/// One campaign served to completion with a journal; returns its CSV.
std::string serve_with_journal(const std::string& wal_path,
                               const std::vector<rt::SeriesSpec>& series) {
  Server server(journaled_options(wal_path));
  TenantConfig config;
  config.weight = 2.0;
  config.budget = 1e9;
  config.max_pending_points = 512;
  EXPECT_FALSE(server.configure_tenant("alice", config));
  ServeHandle client(server, "alice");
  const Server::SubmitOutcome outcome = client.submit("recover-me", series);
  EXPECT_TRUE(outcome.admitted);
  return campaign_csv(client.wait(outcome.request_id));
}

TEST(Recovery, MissingFileIsEmptyFirstBoot) {
  TempFile file("recovery_missing.wal");
  const RecoveredState state = replay_journal(file.path);
  EXPECT_EQ(state.records, 0u);
  EXPECT_TRUE(state.requests.empty());
  EXPECT_FALSE(state.clean_shutdown);
  EXPECT_TRUE(state.truncated_reason.empty());
}

TEST(Recovery, ForeignHeaderThrows) {
  TempFile file("recovery_foreign.wal");
  {
    std::ofstream os(file.path, std::ios::binary);
    os << "this is not a hemo journal, do not resume against it";
  }
  EXPECT_THROW(replay_journal(file.path), JournalError);
}

TEST(Recovery, ReplaysCleanShutdownLog) {
  TempFile file("recovery_clean.wal");
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab")};
  serve_with_journal(file.path, series);

  const RecoveredState state = replay_journal(file.path);
  EXPECT_TRUE(state.clean_shutdown);
  EXPECT_TRUE(state.truncated_reason.empty());
  ASSERT_EQ(state.tenants.size(), 1u);
  EXPECT_EQ(state.tenants[0].first, "alice");
  EXPECT_EQ(state.tenants[0].second.weight, 2.0);
  ASSERT_EQ(state.requests.size(), 1u);
  const RecoveredRequest& request = state.requests[0];
  EXPECT_TRUE(request.done);
  EXPECT_EQ(request.status, WalDoneStatus::kCompleted);
  EXPECT_EQ(request.tenant, "alice");
  EXPECT_EQ(request.name, "recover-me");
  ASSERT_EQ(request.series.size(), 1u);
  EXPECT_FALSE(request.completed.empty());
  EXPECT_EQ(state.unfinished_requests(), 0u);
}

TEST(Recovery, TornTailIsReportedNotFatal) {
  TempFile file("recovery_torn.wal");
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab")};
  serve_with_journal(file.path, series);
  const RecoveredState whole = replay_journal(file.path);
  {
    std::ofstream os(file.path, std::ios::binary | std::ios::app);
    os.write("\x03\x00\x00\x00torn-record", 15);
  }
  const RecoveredState state = replay_journal(file.path);
  EXPECT_FALSE(state.truncated_reason.empty());
  EXPECT_EQ(state.valid_bytes, whole.valid_bytes);  // the prefix survives
  EXPECT_EQ(state.records, whole.records);
  EXPECT_TRUE(state.clean_shutdown);
}

TEST(Recovery, IgnoresDuplicateAndUnknownPoints) {
  TempFile file("recovery_dupes.wal");
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab")};
  rt::PointResult result;
  result.schedule.devices = 2;
  result.attempts = 1;
  result.sim.mflups = 1234.5;
  {
    Journal journal({file.path});
    WalBuffer admitted;
    wal_encode_admitted(&admitted, 1, "alice", "job", series);
    journal.append(WalTag::kAdmitted, admitted);
    WalBuffer point;
    wal_encode_point(&point, 1, 0, 3, result);
    journal.append(WalTag::kPoint, point);
    journal.append(WalTag::kPoint, point);  // duplicate: replay keeps one
    WalBuffer unknown;
    wal_encode_point(&unknown, 99, 0, 0, result);  // never admitted
    journal.append(WalTag::kPoint, unknown);
  }
  const RecoveredState state = replay_journal(file.path);
  EXPECT_TRUE(state.truncated_reason.empty());
  ASSERT_EQ(state.requests.size(), 1u);
  ASSERT_EQ(state.requests[0].completed.size(), 1u);
  EXPECT_EQ(state.requests[0].completed[0].point_index, 3u);
  EXPECT_EQ(state.unfinished_requests(), 1u);
}

// The tentpole property: an interrupted journal restores into a server
// that finishes the campaign byte-identical to the uninterrupted run,
// delivering journaled points from the log instead of re-executing them.
TEST(Recovery, RestoreFinishesInterruptedRequestByteIdentically) {
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab")};

  // Golden: the same campaign served uninterrupted.
  TempFile golden_wal("recovery_golden.wal");
  const std::string golden = serve_with_journal(golden_wal.path, series);
  const RecoveredState golden_state = replay_journal(golden_wal.path);
  ASSERT_EQ(golden_state.requests.size(), 1u);
  const RecoveredRequest& done_request = golden_state.requests[0];
  const std::size_t total = done_request.completed.size();
  ASSERT_GE(total, 4u);

  // Interrupted journal: the admission and the first half of the golden
  // run's point records, but neither the rest nor a terminal record —
  // exactly what a mid-campaign SIGKILL leaves (module the torn tail,
  // covered above).
  TempFile wal("recovery_interrupted.wal");
  const std::size_t keep = total / 2;
  {
    Journal journal({wal.path});
    WalBuffer tenant;
    wal_encode_tenant(&tenant, "alice", golden_state.tenants[0].second);
    journal.append(WalTag::kTenantConfig, tenant);
    WalBuffer admitted;
    wal_encode_admitted(&admitted, done_request.id, "alice", "recover-me",
                        series);
    journal.append(WalTag::kAdmitted, admitted);
    for (std::size_t k = 0; k < keep; ++k) {
      WalBuffer point;
      wal_encode_point(&point, done_request.id,
                       done_request.completed[k].series_index,
                       done_request.completed[k].point_index,
                       done_request.completed[k].result);
      journal.append(WalTag::kPoint, point);
    }
  }

  const RecoveredState state = replay_journal(wal.path);
  EXPECT_TRUE(state.truncated_reason.empty());
  EXPECT_FALSE(state.clean_shutdown);
  ASSERT_EQ(state.unfinished_requests(), 1u);

  {
    ServeOptions options = journaled_options(wal.path);
    options.journal->resume_offset = state.valid_bytes;
    Server server(options);
    ServeHandle client(server, "alice");
    std::uint64_t resumed_id = 0;
    const Server::RestoreOutcome outcome =
        server.restore(state, [&](const RecoveredRequest& request) {
          resumed_id = request.id;
          return client.adopt(request);
        });
    EXPECT_EQ(outcome.requests_resumed, 1u);
    EXPECT_EQ(outcome.points_replayed, keep);
    EXPECT_EQ(outcome.points_requeued, total - keep);
    EXPECT_EQ(resumed_id, done_request.id);

    const rt::CampaignResult result = client.wait(resumed_id);
    EXPECT_EQ(campaign_csv(result), golden);

    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.requests_resumed, 1u);
    EXPECT_EQ(stats.points_replayed, keep);
    // The dedup guarantee: only the lost half was executed.
    EXPECT_EQ(stats.board.executions, total - keep);
  }

  // The resumed journal is now terminal for the request and records the
  // orderly exit, so a further restart resumes nothing.
  const RecoveredState final_state = replay_journal(wal.path);
  EXPECT_TRUE(final_state.clean_shutdown);
  EXPECT_TRUE(final_state.truncated_reason.empty());
  ASSERT_EQ(final_state.requests.size(), 1u);
  EXPECT_TRUE(final_state.requests[0].done);
  EXPECT_EQ(final_state.unfinished_requests(), 0u);
}

// Replayed `recovered` point events are flagged so clients can tell a
// journal delivery from a fresh execution.
TEST(Recovery, ReplayedPointEventsCarryRecoveredFlag) {
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab")};
  TempFile golden_wal("recovery_flag_golden.wal");
  serve_with_journal(golden_wal.path, series);
  const RecoveredState golden_state = replay_journal(golden_wal.path);
  const RecoveredRequest& done_request = golden_state.requests[0];

  TempFile wal("recovery_flag.wal");
  {
    Journal journal({wal.path});
    WalBuffer admitted;
    wal_encode_admitted(&admitted, done_request.id, "alice", "job", series);
    journal.append(WalTag::kAdmitted, admitted);
    WalBuffer point;
    wal_encode_point(&point, done_request.id,
                     done_request.completed[0].series_index,
                     done_request.completed[0].point_index,
                     done_request.completed[0].result);
    journal.append(WalTag::kPoint, point);
  }
  const RecoveredState state = replay_journal(wal.path);

  ServeOptions options = journaled_options(wal.path);
  options.journal->resume_offset = state.valid_bytes;
  Server server(options);
  ServeHandle client(server, "alice");
  std::uint64_t id = 0;
  server.restore(state, [&](const RecoveredRequest& request) {
    id = request.id;
    return client.adopt(request);
  });
  std::size_t recovered_points = 0, executed_points = 0;
  for (;;) {
    const std::optional<Event> event = client.next_event();
    ASSERT_TRUE(event.has_value());
    if (event->kind == Event::Kind::kPoint)
      (event->recovered ? recovered_points : executed_points)++;
    if (event->kind == Event::Kind::kDone) break;
  }
  EXPECT_EQ(recovered_points, 1u);
  EXPECT_EQ(executed_points, done_request.completed.size() - 1);
}

}  // namespace
}  // namespace hemo::serve
