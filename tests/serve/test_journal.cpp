// The write-ahead journal in isolation: codec roundtrips (doubles must
// survive bit-exactly — the byte-identical-CSV property hangs on it),
// append/fsync accounting under group commit, and the open policies that
// keep stale logs from being silently clobbered or blindly extended.

#include "serve/journal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "rt/campaign.hpp"

namespace hemo::serve {
namespace {

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::uint64_t file_size(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is ? static_cast<std::uint64_t>(is.tellg()) : 0;
}

rt::SeriesSpec series_of(const std::string& text) {
  rt::SeriesSpec spec;
  EXPECT_TRUE(rt::parse_series(text, &spec)) << text;
  return spec;
}

rt::PointResult sample_point(bool failed) {
  rt::PointResult point;
  point.schedule.devices = 16;
  point.schedule.size_multiplier = 2;
  point.attempts = failed ? 3 : 1;
  if (failed) {
    rt::JobFailure failure;
    failure.job = "point-job";
    failure.attempts = 3;
    failure.timed_out = true;
    failure.message = "injected timeout";
    point.failure = failure;
    return point;
  }
  point.sim.devices = 16;
  point.sim.size_multiplier = 2;
  point.sim.total_points = 123456.0;
  point.sim.mflups = 8961.574538231;       // not representable exactly:
  point.sim.iteration_s = 0.003246629468;  // bit-exactness is the test
  point.sim.worst_rank.streamcollide_s = 0.25;
  point.sim.worst_rank.comm_s = 0.0123456789;
  point.sim.worst_rank.h2d_s = 1.25e-4;
  point.sim.worst_rank.d2h_s = -0.0;  // signed zero must survive
  point.prediction.t_streamcollide_s = 0.0011;
  point.prediction.t_comm_s = 0.0007;
  point.prediction.t_total_s = 0.0018;
  point.prediction.mflups = 16085.09489;
  point.prediction.surface_points = 98304.0;
  point.prediction.comm_events = 6;
  return point;
}

void expect_bit_equal(const rt::PointResult& a, const rt::PointResult& b) {
  EXPECT_EQ(a.schedule.devices, b.schedule.devices);
  EXPECT_EQ(a.schedule.size_multiplier, b.schedule.size_multiplier);
  EXPECT_EQ(a.attempts, b.attempts);
  ASSERT_EQ(a.failure.has_value(), b.failure.has_value());
  if (a.failure) {
    EXPECT_EQ(a.failure->job, b.failure->job);
    EXPECT_EQ(a.failure->attempts, b.failure->attempts);
    EXPECT_EQ(a.failure->timed_out, b.failure->timed_out);
    EXPECT_EQ(a.failure->message, b.failure->message);
  }
  // Doubles compared through their bit patterns: == would also accept
  // -0.0 vs 0.0 and miss NaN payload changes.
  auto bits = [](double v) {
    std::uint64_t out = 0;
    std::memcpy(&out, &v, sizeof out);
    return out;
  };
  EXPECT_EQ(bits(a.sim.mflups), bits(b.sim.mflups));
  EXPECT_EQ(bits(a.sim.iteration_s), bits(b.sim.iteration_s));
  EXPECT_EQ(bits(a.sim.total_points), bits(b.sim.total_points));
  EXPECT_EQ(bits(a.sim.worst_rank.streamcollide_s),
            bits(b.sim.worst_rank.streamcollide_s));
  EXPECT_EQ(bits(a.sim.worst_rank.comm_s), bits(b.sim.worst_rank.comm_s));
  EXPECT_EQ(bits(a.sim.worst_rank.h2d_s), bits(b.sim.worst_rank.h2d_s));
  EXPECT_EQ(bits(a.sim.worst_rank.d2h_s), bits(b.sim.worst_rank.d2h_s));
  EXPECT_EQ(bits(a.prediction.t_total_s), bits(b.prediction.t_total_s));
  EXPECT_EQ(bits(a.prediction.mflups), bits(b.prediction.mflups));
  EXPECT_EQ(bits(a.prediction.surface_points),
            bits(b.prediction.surface_points));
  EXPECT_EQ(a.prediction.comm_events, b.prediction.comm_events);
}

TEST(WalCodec, TenantRoundTrip) {
  TenantConfig config;
  config.weight = 2.5;
  config.budget = 750.125;
  config.max_pending_points = 37;
  WalBuffer buffer;
  wal_encode_tenant(&buffer, "alice", config);

  WalCursor cursor(buffer.bytes().data(), buffer.bytes().size());
  std::string tenant;
  TenantConfig decoded;
  wal_decode_tenant(&cursor, &tenant, &decoded);
  EXPECT_TRUE(cursor.at_end());
  EXPECT_EQ(tenant, "alice");
  EXPECT_EQ(decoded.weight, 2.5);
  EXPECT_EQ(decoded.budget, 750.125);
  EXPECT_EQ(decoded.max_pending_points, 37);
}

TEST(WalCodec, AdmittedRoundTrip) {
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab"),
      series_of("summit:sycl:proxy:cylinder-bisection")};
  WalBuffer buffer;
  wal_encode_admitted(&buffer, 42, "bob", "fig7-sweep", series);

  WalCursor cursor(buffer.bytes().data(), buffer.bytes().size());
  std::uint64_t id = 0;
  std::string tenant, name;
  std::vector<rt::SeriesSpec> decoded;
  wal_decode_admitted(&cursor, &id, &tenant, &name, &decoded);
  EXPECT_TRUE(cursor.at_end());
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(tenant, "bob");
  EXPECT_EQ(name, "fig7-sweep");
  ASSERT_EQ(decoded.size(), series.size());
  for (std::size_t s = 0; s < series.size(); ++s)
    EXPECT_EQ(rt::series_label(decoded[s]), rt::series_label(series[s]));
}

TEST(WalCodec, PointRoundTripIsBitExact) {
  for (const bool failed : {false, true}) {
    WalBuffer buffer;
    wal_encode_point(&buffer, 7, 1, 9, sample_point(failed));

    WalCursor cursor(buffer.bytes().data(), buffer.bytes().size());
    std::uint64_t id = 0;
    std::uint32_t series_index = 0, point_index = 0;
    rt::PointResult decoded;
    wal_decode_point(&cursor, &id, &series_index, &point_index, &decoded);
    EXPECT_TRUE(cursor.at_end());
    EXPECT_EQ(id, 7u);
    EXPECT_EQ(series_index, 1u);
    EXPECT_EQ(point_index, 9u);
    expect_bit_equal(decoded, sample_point(failed));
  }
}

TEST(WalCodec, DoneRoundTripAndStatusValidation) {
  WalBuffer buffer;
  wal_encode_done(&buffer, 13, WalDoneStatus::kDeadlineExceeded, 4);
  WalCursor cursor(buffer.bytes().data(), buffer.bytes().size());
  std::uint64_t id = 0, failed = 0;
  WalDoneStatus status = WalDoneStatus::kCompleted;
  wal_decode_done(&cursor, &id, &status, &failed);
  EXPECT_EQ(id, 13u);
  EXPECT_EQ(status, WalDoneStatus::kDeadlineExceeded);
  EXPECT_EQ(failed, 4u);

  // A CRC-valid record with an out-of-range status byte is corruption.
  WalBuffer bad;
  bad.u64(13);
  bad.u8(7);
  bad.u64(0);
  WalCursor bad_cursor(bad.bytes().data(), bad.bytes().size());
  EXPECT_THROW(wal_decode_done(&bad_cursor, &id, &status, &failed),
               JournalError);
}

TEST(WalCursor, ThrowsOnUnderflow) {
  WalBuffer buffer;
  buffer.u32(5);
  WalCursor cursor(buffer.bytes().data(), buffer.bytes().size());
  EXPECT_THROW(cursor.u64(), JournalError);
  WalCursor str_cursor(buffer.bytes().data(), buffer.bytes().size());
  EXPECT_THROW(str_cursor.str(), JournalError);  // length 5, zero bytes left
}

TEST(Journal, AppendsAndCountsRecords) {
  TempFile file("journal_append.wal");
  WalBuffer payload;
  wal_encode_done(&payload, 1, WalDoneStatus::kCompleted, 0);

  Journal journal({file.path});
  EXPECT_EQ(journal.appended(), 0u);
  journal.append(WalTag::kDone, payload);
  journal.append(WalTag::kDone, payload);
  EXPECT_EQ(journal.appended(), 2u);
  EXPECT_EQ(journal.unsynced(), 0u);  // group_commit = 1: strict WAL
}

TEST(Journal, GroupCommitBatchesFsyncs) {
  TempFile file("journal_group.wal");
  WalBuffer payload;
  wal_encode_done(&payload, 1, WalDoneStatus::kCompleted, 0);

  JournalOptions options;
  options.path = file.path;
  options.group_commit = 3;
  Journal journal(options);
  journal.append(WalTag::kDone, payload);
  journal.append(WalTag::kDone, payload);
  EXPECT_EQ(journal.unsynced(), 2u);
  journal.append(WalTag::kDone, payload);  // third record: the batch syncs
  EXPECT_EQ(journal.unsynced(), 0u);
  journal.append(WalTag::kDone, payload);
  EXPECT_EQ(journal.unsynced(), 1u);
  journal.sync();
  EXPECT_EQ(journal.unsynced(), 0u);
}

TEST(Journal, RefusesNonEmptyFileWithoutResumeOffset) {
  TempFile file("journal_refuse.wal");
  WalBuffer payload;
  wal_encode_done(&payload, 1, WalDoneStatus::kCompleted, 0);
  { Journal journal({file.path}); journal.append(WalTag::kDone, payload); }
  EXPECT_THROW(Journal{JournalOptions{file.path}}, JournalError);
}

TEST(Journal, ResumeTruncatesTornTail) {
  TempFile file("journal_resume.wal");
  WalBuffer payload;
  wal_encode_done(&payload, 1, WalDoneStatus::kCompleted, 0);
  std::uint64_t valid = 0;
  {
    Journal journal({file.path});
    journal.append(WalTag::kDone, payload);
    valid = file_size(file.path);
  }
  {  // a SIGKILL's torn tail: half a record frame
    std::ofstream os(file.path, std::ios::binary | std::ios::app);
    os.write("torn", 4);
  }
  ASSERT_GT(file_size(file.path), valid);

  JournalOptions options;
  options.path = file.path;
  options.resume_offset = valid;
  Journal journal(options);
  EXPECT_EQ(file_size(file.path), valid);  // tail discarded
  journal.append(WalTag::kDone, payload);
  EXPECT_GT(file_size(file.path), valid);  // appends continue after it
}

}  // namespace
}  // namespace hemo::serve
