// Request deadlines end to end: an expired request gets exactly one
// deadline_exceeded event (then done), its queued points are cancelled
// and their admission budget freed, in-flight executions are dropped
// cooperatively, and an expiry never blocks the server's drain.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "rt/campaign.hpp"
#include "serve/server.hpp"

namespace hemo::serve {
namespace {

using std::chrono::milliseconds;

rt::SeriesSpec series_of(const std::string& text) {
  rt::SeriesSpec spec;
  EXPECT_TRUE(rt::parse_series(text, &spec)) << text;
  return spec;
}

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

struct EventTally {
  std::size_t accepted = 0;
  std::size_t points = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t done = 0;
  Event accepted_event;
  Event deadline_event;
};

/// Drains one request's events until done; the relative order asserted
/// here (a deadline_exceeded, when present, arrives before done and
/// after which no point events follow) is the wire contract.
EventTally drain(ServeHandle& client) {
  EventTally tally;
  for (;;) {
    const std::optional<Event> event = client.next_event();
    EXPECT_TRUE(event.has_value());
    if (!event) return tally;
    switch (event->kind) {
      case Event::Kind::kAccepted:
        ++tally.accepted;
        tally.accepted_event = *event;
        break;
      case Event::Kind::kPoint:
        ++tally.points;
        EXPECT_EQ(tally.deadline_exceeded, 0u)
            << "point event after deadline_exceeded";
        break;
      case Event::Kind::kDeadlineExceeded:
        ++tally.deadline_exceeded;
        tally.deadline_event = *event;
        break;
      case Event::Kind::kDone: ++tally.done; return tally;
      case Event::Kind::kRejected: ADD_FAILURE() << "rejected"; return tally;
    }
  }
}

const TenantUsage* usage_of(const ServeStats& stats,
                            const std::string& tenant) {
  for (const auto& [name, usage] : stats.tenants)
    if (name == tenant) return &usage;
  return nullptr;
}

// A deadline of zero is already expired at submission: deterministic
// zero-budget semantics — admitted, then every point cancelled before
// any executes, with the charged budget released in full.
TEST(Deadline, ZeroDeadlineCancelsEverythingDeterministically) {
  ServeOptions options;
  options.workers = 2;
  Server server(options);
  ServeHandle client(server, "alice");

  Server::SubmitOptions submit;
  submit.deadline = milliseconds(0);
  const Server::SubmitOutcome outcome = client.submit(
      "expired", {series_of("polaris:cuda:harvey:cylinder-slab")}, submit);
  ASSERT_TRUE(outcome.admitted);

  const EventTally tally = drain(client);
  EXPECT_EQ(tally.accepted, 1u);
  EXPECT_EQ(tally.points, 0u);
  EXPECT_EQ(tally.deadline_exceeded, 1u);
  EXPECT_EQ(tally.done, 1u);
  EXPECT_EQ(tally.deadline_event.delivered, 0u);
  EXPECT_EQ(tally.deadline_event.cancelled, tally.deadline_event.points);
  EXPECT_GT(tally.deadline_event.points, 0u);

  server.wait_idle();  // the expired request must not block drain
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_expired, 1u);
  EXPECT_EQ(stats.points_cancelled, stats.points_admitted);
  EXPECT_EQ(stats.points_completed, 0u);
  EXPECT_EQ(stats.board.executions, 0u);

  // The admission budget is fully released: the tenant can immediately
  // hold new work again.
  const TenantUsage* usage = usage_of(stats, "alice");
  ASSERT_NE(usage, nullptr);
  EXPECT_EQ(usage->charged, 0.0);
  EXPECT_EQ(usage->pending_points, 0);
}

// The watcher-thread path: the deadline passes while the first point is
// parked in flight.  The queued remainder is cancelled immediately; the
// parked execution is dropped when it finally completes; done arrives
// only after every point is accounted.
TEST(Deadline, ExpiryMidFlightDropsInFlightExecutionCooperatively) {
  Gate gate;
  ServeOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.execution_hook = [&](const rt::SeriesSpec&,
                               const sys::SchedulePoint&) { gate.wait(); };
  Server server(options);
  ServeHandle client(server, "alice");

  Server::SubmitOptions submit;
  submit.deadline = milliseconds(50);
  const Server::SubmitOutcome outcome = client.submit(
      "parked", {series_of("polaris:cuda:harvey:cylinder-slab")}, submit);
  ASSERT_TRUE(outcome.admitted);

  // The deadline_exceeded event arrives while the execution is still
  // parked — expiry must not wait for the in-flight point.
  std::optional<Event> event;
  do {
    event = client.next_event();
    ASSERT_TRUE(event.has_value());
    ASSERT_NE(event->kind, Event::Kind::kDone)
        << "done before the parked execution was released";
  } while (event->kind != Event::Kind::kDeadlineExceeded);

  gate.release();
  for (;;) {
    event = client.next_event();
    ASSERT_TRUE(event.has_value());
    EXPECT_NE(event->kind, Event::Kind::kPoint)
        << "point delivered after deadline_exceeded";
    if (event->kind == Event::Kind::kDone) break;
  }

  server.wait_idle();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_expired, 1u);
  EXPECT_EQ(stats.points_completed, 0u);
  EXPECT_EQ(stats.points_cancelled, stats.points_admitted);
  const TenantUsage* usage = usage_of(stats, "alice");
  ASSERT_NE(usage, nullptr);
  EXPECT_EQ(usage->charged, 0.0);
  EXPECT_EQ(usage->pending_points, 0);
}

// A deadline the campaign beats comfortably changes nothing: no
// deadline_exceeded event, all points delivered.
TEST(Deadline, GenerousDeadlineIsInert) {
  ServeOptions options;
  options.workers = 2;
  Server server(options);
  ServeHandle client(server, "alice");

  Server::SubmitOptions submit;
  submit.deadline = milliseconds(60000);
  const Server::SubmitOutcome outcome = client.submit(
      "plenty", {series_of("polaris:cuda:harvey:cylinder-slab")}, submit);
  ASSERT_TRUE(outcome.admitted);

  const EventTally tally = drain(client);
  EXPECT_EQ(tally.deadline_exceeded, 0u);
  EXPECT_EQ(tally.points, tally.accepted_event.points);
  EXPECT_GT(tally.points, 0u);
  EXPECT_EQ(tally.done, 1u);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_expired, 0u);
  EXPECT_EQ(stats.points_cancelled, 0u);
  EXPECT_EQ(stats.points_completed, stats.points_admitted);
}

// An expired request frees budget for the next one: with a budget sized
// for a single campaign, a zero-deadline submit followed by a normal
// submit must both be admitted.
TEST(Deadline, ExpiryReleasesBudgetForSubsequentAdmissions) {
  ServeOptions options;
  options.workers = 2;
  Server server(options);
  ServeHandle client(server, "alice");

  // Find the campaign's cost from a probe admission, then configure the
  // tenant to exactly that budget.
  const std::vector<rt::SeriesSpec> series = {
      series_of("polaris:cuda:harvey:cylinder-slab")};
  const Server::SubmitOutcome probe = client.submit("probe", series);
  ASSERT_TRUE(probe.admitted);
  client.wait(probe.request_id);
  double cost = 0.0;
  {
    const ServeStats stats = server.stats();
    const TenantUsage* usage = usage_of(stats, "alice");
    ASSERT_NE(usage, nullptr);
    EXPECT_EQ(usage->charged, 0.0);
  }
  {
    Server::SubmitOptions expired;
    expired.deadline = milliseconds(0);
    const Server::SubmitOutcome outcome =
        client.submit("expired", series, expired);
    ASSERT_TRUE(outcome.admitted);
    const EventTally tally = drain(client);
    EXPECT_EQ(tally.deadline_exceeded, 1u);
    cost = tally.accepted_event.cost;
  }
  TenantConfig config;
  config.budget = cost > 0.0 ? cost : 1.0;
  ASSERT_FALSE(server.configure_tenant("alice", config));
  const Server::SubmitOutcome after = client.submit("after", series);
  EXPECT_TRUE(after.admitted) << after.detail;
  client.wait(after.request_id);
  server.wait_idle();
}

}  // namespace
}  // namespace hemo::serve
