// Resilience tests for the distributed solver: chaos runs under every
// fault kind must end bit-identical to an uninjected run, on-disk
// checkpoint round-trips must be bit-identical across rank counts, the
// health guards must catch corruption that slips past the CRC frames, and
// exhausted recovery budgets must surface as a structured SolverFault.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "harvey/distributed_solver.hpp"
#include "io/blob.hpp"
#include "resilience/fault.hpp"
#include "resilience/faulty_network.hpp"
#include "resilience/policy.hpp"

namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
namespace resilience = hemo::resilience;
using hemo::harvey::DistributedSolver;

namespace {

std::shared_ptr<lbm::SparseLattice> small_cylinder() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 16.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions flow_options() {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.inlet_velocity = 0.01;
  o.outlet_density = 1.0;
  return o;
}

std::vector<double> clean_run(int ranks, int steps) {
  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, ranks),
                           flow_options());
  solver.run(steps);
  return solver.global_distributions();
}

/// Removes `path` when the test scope ends, pass or fail.
struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Chaos recovery: the acceptance property.  Every fault kind, injected into
// a 4-rank cylinder, is recovered and the final state is bit-identical.

class ChaosKindSweep
    : public ::testing::TestWithParam<resilience::FaultKind> {};

TEST_P(ChaosKindSweep, SingleKindRecoversBitIdentically) {
  constexpr int kRanks = 4;
  constexpr int kSteps = 16;
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  const resilience::FaultPlan plan = resilience::FaultPlan::random(
      /*seed=*/91, kSteps, solver.exchange_pairs(), {GetParam()},
      /*events_per_kind=*/2);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(kRanks, plan));
  solver.enable_resilience(resilience::Options{});

  solver.run(kSteps);

  const auto* net =
      dynamic_cast<const resilience::FaultyNetwork*>(&solver.network());
  ASSERT_NE(net, nullptr);
  EXPECT_GT(net->plan().fired_count(), 0)
      << "seed 91 never triggered a " << resilience::fault_kind_name(GetParam())
      << " event; pick a different seed";

  const std::vector<double> state = solver.global_distributions();
  ASSERT_EQ(state.size(), reference.size());
  for (std::size_t k = 0; k < state.size(); ++k)
    ASSERT_EQ(state[k], reference[k])
        << resilience::fault_kind_name(GetParam()) << " diverged at index "
        << k;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ChaosKindSweep,
    ::testing::ValuesIn(std::begin(resilience::kAllFaultKinds),
                        std::end(resilience::kAllFaultKinds)),
    [](const ::testing::TestParamInfo<resilience::FaultKind>& info) {
      return std::string(resilience::fault_kind_name(info.param));
    });

TEST(ResilientSolver, AllKindsTogetherRecoverBitIdentically) {
  constexpr int kRanks = 4;
  constexpr int kSteps = 20;
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  const resilience::FaultPlan plan = resilience::FaultPlan::random(
      /*seed=*/7, kSteps, solver.exchange_pairs(),
      {std::begin(resilience::kAllFaultKinds),
       std::end(resilience::kAllFaultKinds)},
      /*events_per_kind=*/1);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(kRanks, plan));
  solver.enable_resilience(resilience::Options{});

  solver.run(kSteps);

  const resilience::RunStats& stats = solver.resilience_stats();
  EXPECT_GT(stats.faults_detected(), 0);
  EXPECT_EQ(solver.global_distributions(), reference);
  EXPECT_EQ(solver.step_count(), kSteps);
}

TEST(ResilientSolver, RollbackPathRecoversWhenRetransmitBudgetIsZero) {
  constexpr int kRanks = 4;
  constexpr int kSteps = 12;
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::FaultPlan plan;
  resilience::FaultEvent e;
  e.kind = resilience::FaultKind::kDrop;
  e.step = 5;
  e.src = 0;
  e.dst = 1;
  plan.add(e);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(kRanks, plan));
  resilience::Options opts;
  opts.recovery.max_retransmits = 0;  // only rollback can save this run
  solver.enable_resilience(opts);

  solver.run(kSteps);

  EXPECT_GE(solver.resilience_stats().rollbacks, 1);
  EXPECT_EQ(solver.global_distributions(), reference);
}

TEST(ResilientSolver, ExhaustedBudgetsRaiseStructuredFault) {
  constexpr int kRanks = 4;
  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::FaultPlan plan;
  resilience::FaultEvent e;
  e.kind = resilience::FaultKind::kStall;
  e.step = 3;
  e.src = 0;
  e.stall_polls = 1000;  // outlasts any retransmission budget
  plan.add(e);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(kRanks, plan));
  resilience::Options opts;
  opts.recovery.max_rollbacks = 0;
  solver.enable_resilience(opts);

  try {
    solver.run(10);
    FAIL() << "expected SolverFault";
  } catch (const resilience::SolverFault& fault) {
    EXPECT_NE(std::string(fault.what()).find("step 3"), std::string::npos);
  }
}

TEST(ResilientSolver, HealthGuardCatchesCorruptionWithoutFrames) {
  // With CRC frames disabled the corrupted payload reaches the state; the
  // RS001 non-finite scan must catch it post-step and roll back.
  constexpr int kRanks = 4;
  constexpr int kSteps = 10;
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::FaultPlan plan;
  resilience::FaultEvent e;
  e.kind = resilience::FaultKind::kCorrupt;
  e.step = 4;
  e.src = 0;
  e.dst = 1;
  e.xor_mask = 0x7FF0000000000000ull;  // force the exponent to inf/nan
  plan.add(e);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(kRanks, plan));
  resilience::Options opts;
  opts.recovery.checksum_frames = false;
  solver.enable_resilience(opts);

  solver.run(kSteps);

  EXPECT_GE(solver.resilience_stats().health_errors, 1);
  EXPECT_GE(solver.resilience_stats().rollbacks, 1);
  EXPECT_EQ(solver.global_distributions(), reference);
}

TEST(ResilientSolver, CheckHealthIsCleanOnAHealthyRun) {
  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, 2),
                           flow_options());
  solver.run(5);
  EXPECT_TRUE(solver.check_health().empty());
}

TEST(ResilientSolver, ResilientRunWithoutFaultsIsBitIdenticalToPlain) {
  // The CRC frames and guards must be pure observers: enabling resilience
  // on a fault-free run changes nothing.
  constexpr int kRanks = 4;
  constexpr int kSteps = 12;
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  solver.enable_resilience(resilience::Options{});
  solver.run(kSteps);

  EXPECT_EQ(solver.resilience_stats().faults_detected(), 0);
  EXPECT_EQ(solver.global_distributions(), reference);
}

// ---------------------------------------------------------------------------
// Checkpoint / restart.

class CheckpointRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointRankSweep, RoundTripIsBitIdentical) {
  const int ranks = GetParam();
  constexpr int kSteps = 14;
  constexpr int kCut = 6;
  const std::vector<double> reference = clean_run(ranks, kSteps);

  const TempFile ckpt("ckpt_roundtrip_" + std::to_string(ranks) + ".bin");
  auto lattice = small_cylinder();
  {
    DistributedSolver solver(lattice, decomp::slab_partition(*lattice, ranks),
                             flow_options());
    solver.run(kCut);
    solver.save_checkpoint(ckpt.path);
  }
  DistributedSolver resumed(lattice, decomp::slab_partition(*lattice, ranks),
                            flow_options());
  resumed.restore_checkpoint(ckpt.path);
  EXPECT_EQ(resumed.step_count(), kCut);
  resumed.run(kSteps - kCut);

  const std::vector<double> state = resumed.global_distributions();
  ASSERT_EQ(state.size(), reference.size());
  for (std::size_t k = 0; k < state.size(); ++k)
    ASSERT_EQ(state[k], reference[k])
        << ranks << " ranks diverged at index " << k;
}

INSTANTIATE_TEST_SUITE_P(Ranks, CheckpointRankSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(Checkpoint, PerRankRoundTripRestoresEveryRank) {
  constexpr int kRanks = 3;
  constexpr int kSteps = 9;
  constexpr int kCut = 4;
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  std::vector<TempFile> files;
  for (int r = 0; r < kRanks; ++r)
    files.emplace_back("ckpt_rank_" + std::to_string(r) + ".bin");
  {
    DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                             flow_options());
    solver.run(kCut);
    for (int r = 0; r < kRanks; ++r)
      solver.save_rank_checkpoint(files[static_cast<std::size_t>(r)].path, r);
  }
  DistributedSolver resumed(lattice, decomp::slab_partition(*lattice, kRanks),
                            flow_options());
  for (int r = 0; r < kRanks; ++r) {
    const std::int64_t step = resumed.restore_rank_checkpoint(
        files[static_cast<std::size_t>(r)].path, r);
    EXPECT_EQ(step, kCut);
  }
  resumed.run(kSteps - kCut);
  EXPECT_EQ(resumed.global_distributions(), reference);
}

TEST(Checkpoint, CorruptedFileIsRejected) {
  const TempFile ckpt("ckpt_corrupt.bin");
  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, 2),
                           flow_options());
  solver.run(3);
  solver.save_checkpoint(ckpt.path);

  // Flip one byte in the middle of the file: the record CRC must trip.
  {
    std::fstream f(ckpt.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 64);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  DistributedSolver fresh(lattice, decomp::slab_partition(*lattice, 2),
                          flow_options());
  EXPECT_THROW(fresh.restore_checkpoint(ckpt.path), hemo::io::BlobError);
}

TEST(Checkpoint, WrongConfigurationIsRejected) {
  const TempFile ckpt("ckpt_wrong_config.bin");
  auto lattice = small_cylinder();
  {
    DistributedSolver solver(lattice, decomp::slab_partition(*lattice, 2),
                             flow_options());
    solver.run(2);
    solver.save_checkpoint(ckpt.path);
  }
  // A 4-rank solver must refuse a 2-rank checkpoint.
  DistributedSolver other(lattice, decomp::slab_partition(*lattice, 4),
                          flow_options());
  EXPECT_THROW(other.restore_checkpoint(ckpt.path), hemo::io::BlobError);
}

TEST(Checkpoint, MissingFileIsRejected) {
  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, 2),
                           flow_options());
  EXPECT_THROW(solver.restore_checkpoint("no_such_checkpoint.bin"),
               hemo::io::BlobError);
}

TEST(ResilientSolver, VelocityCeilingGuardFiresRS003) {
  // A ceiling below any physical inflow velocity makes the very first
  // resilient step trip the compressibility guard; with no rollback
  // budget the run must surface it as a structured fault carrying the
  // RS003 diagnostic.
  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, 2),
                           flow_options());
  resilience::Options opts;
  opts.health.scan_nonfinite = false;
  opts.health.check_mass = false;
  opts.health.max_velocity = 1e-9;
  opts.recovery.max_rollbacks = 0;
  solver.enable_resilience(opts);

  try {
    solver.run(4);
    FAIL() << "expected SolverFault";
  } catch (const resilience::SolverFault& fault) {
    bool saw_rs003 = false;
    for (const hemo::analysis::Diagnostic& d : fault.diagnostics())
      saw_rs003 |= (d.rule_id == "RS003");
    EXPECT_TRUE(saw_rs003);
  }
  EXPECT_GE(solver.resilience_stats().health_errors, 1);
}

TEST(ResilientSolver, OffPlanHaloTrafficIsRecordedAsRS004) {
  // A duplicated halo message is a valid frame arriving twice: the halo
  // audit must drain the straggler, record RS004, and let the run finish
  // bit-identical to the clean reference (the audit is an observer).
  constexpr int kRanks = 4;
  constexpr int kSteps = 10;
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::FaultPlan plan;
  resilience::FaultEvent e;
  e.kind = resilience::FaultKind::kDuplicate;
  e.step = 4;
  e.src = 1;
  e.dst = 2;
  plan.add(e);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(kRanks, plan));
  solver.enable_resilience(resilience::Options{});

  solver.run(kSteps);

  EXPECT_GE(solver.resilience_stats().halo_audit_mismatches, 1);
  bool saw_rs004 = false;
  for (const hemo::analysis::Diagnostic& d :
       solver.resilience_stats().diagnostics)
    saw_rs004 |= (d.rule_id == "RS004");
  EXPECT_TRUE(saw_rs004);
  EXPECT_EQ(solver.global_distributions(), reference);
}
