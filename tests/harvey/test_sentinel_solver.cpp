// SDC sentinel on the distributed solver: an injected in-memory bit flip
// must be detected, localized to the exact {rank, tile} it struck, rolled
// back, and the run must finish bit-identical to the clean reference —
// with the one-shot fault never re-firing on the rollback replay, the
// RunStats counters monotone, repeated hits quarantining the failing rank
// through the RS005 shrink path, and a clean run under full sentinel
// instrumentation staying detection-free.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "harvey/device_solver.hpp"
#include "harvey/distributed_solver.hpp"
#include "lbm/tile_probe.hpp"
#include "resilience/fault.hpp"
#include "resilience/faulty_network.hpp"
#include "resilience/policy.hpp"

namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
namespace hal = hemo::hal;
namespace resilience = hemo::resilience;
using hemo::Rank;
using hemo::harvey::DeviceSolver;
using hemo::harvey::DistributedSolver;

namespace {

constexpr int kRanks = 4;
constexpr int kSteps = 16;
constexpr std::int64_t kTilePoints = 64;

std::shared_ptr<lbm::SparseLattice> small_cylinder() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 16.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions flow_options() {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.inlet_velocity = 0.01;
  o.outlet_density = 1.0;
  return o;
}

std::vector<double> clean_run(int ranks, int steps) {
  auto lattice = small_cylinder();
  DistributedSolver solver(lattice, decomp::slab_partition(*lattice, ranks),
                           flow_options());
  solver.run(steps);
  return solver.global_distributions();
}

resilience::Options sentinel_options() {
  resilience::Options o;
  o.recovery.checkpoint_interval = 4;
  o.sentinel.enabled = true;
  o.sentinel.tile_points = kTilePoints;
  return o;
}

resilience::FaultEvent bit_flip_at(std::int64_t step, std::int64_t point,
                                   int q, int bit) {
  resilience::FaultEvent e;
  e.kind = resilience::FaultKind::kBitFlip;
  e.step = step;
  e.flip_point = point;
  e.flip_q = q;
  e.flip_bit = bit;
  return e;
}

bool has_rule(const std::vector<hemo::analysis::Diagnostic>& diags,
              const std::string& rule) {
  for (const auto& d : diags)
    if (d.rule_id == rule) return true;
  return false;
}

void expect_bit_identical(const std::vector<double>& state,
                          const std::vector<double>& reference) {
  ASSERT_EQ(state.size(), reference.size());
  for (std::size_t k = 0; k < state.size(); ++k)
    ASSERT_EQ(state[k], reference[k]) << "diverged at flat index " << k;
}

}  // namespace

TEST(SentinelSolver, DetectsLocalizesAndRecoversAnInjectedFlip) {
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice,
                           decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::FaultPlan plan;
  plan.add(bit_flip_at(/*step=*/6, lattice->size() / 2, /*q=*/7,
                       /*bit=*/44));
  solver.set_fault_injection(&plan);
  solver.enable_resilience(sentinel_options());

  solver.run(kSteps);

  // The flip fired exactly once and stamped its ground truth.
  const resilience::FaultEvent& fired = plan.events().front();
  ASSERT_TRUE(fired.fired);
  ASSERT_GE(fired.fired_rank, 0);
  ASSERT_GE(fired.fired_tile, 0);

  const resilience::RunStats& stats = solver.resilience_stats();
  EXPECT_EQ(stats.sdc_detected, 1);
  EXPECT_EQ(stats.sdc_false_positive, 0);
  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_GT(stats.sdc_checks, 0);
  EXPECT_TRUE(has_rule(stats.diagnostics, "RS006"));

  // Localization: the detection blames the rank and tile the flip
  // actually landed on, within one record/verify window of the event.
  ASSERT_EQ(stats.sdc_detections.size(), 1u);
  const resilience::SdcDetection& d = stats.sdc_detections.front();
  EXPECT_EQ(d.rank, fired.fired_rank);
  EXPECT_EQ(d.tile, fired.fired_tile);
  EXPECT_GE(d.step, 6);
  EXPECT_GE(d.latency_steps, 0);
  EXPECT_LE(d.latency_steps, sentinel_options().sentinel.check_interval);
  EXPECT_FALSE(d.reexec);

  expect_bit_identical(solver.global_distributions(), reference);
}

TEST(SentinelSolver, OneShotFlipNeverRefiresAndCountersStayMonotone) {
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice,
                           decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::FaultPlan plan;
  plan.add(bit_flip_at(/*step=*/6, lattice->size() / 3, /*q=*/3,
                       /*bit=*/40));
  solver.set_fault_injection(&plan);
  solver.enable_resilience(sentinel_options());

  // Step one at a time so every counter can be watched: the rollback
  // replay of step 6 must not re-fire the (one-shot) flip, so detections
  // stop at 1 and every counter is nondecreasing.
  resilience::RunStats last;
  for (int step = 0; step < kSteps; ++step) {
    solver.run(1);
    const resilience::RunStats& now = solver.resilience_stats();
    EXPECT_GE(now.sdc_checks, last.sdc_checks);
    EXPECT_GE(now.sdc_detected, last.sdc_detected);
    EXPECT_GE(now.sdc_false_positive, last.sdc_false_positive);
    EXPECT_GE(now.rollbacks, last.rollbacks);
    EXPECT_GE(now.snapshots, last.snapshots);
    last = now;
  }

  EXPECT_EQ(plan.fired_count(resilience::FaultKind::kBitFlip), 1);
  EXPECT_EQ(last.sdc_detected, 1);
  EXPECT_GE(last.rollbacks, 1);
  expect_bit_identical(solver.global_distributions(), reference);
}

TEST(SentinelSolver, CorruptFaultStaysOneShotAcrossRollback) {
  // Without CRC frames, a corrupted halo payload enters the state and is
  // only caught by the health guards — forcing the rollback path.  The
  // replay must not re-corrupt (one-shot), so one rollback suffices and
  // the run still ends bit-identical.
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice,
                           decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::FaultEvent e;
  e.kind = resilience::FaultKind::kCorrupt;
  e.step = 6;
  const auto edge = solver.exchange_pairs().front();
  e.src = edge.first;
  e.dst = edge.second;
  resilience::FaultPlan plan;
  plan.add(e);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(kRanks, plan));

  resilience::Options options = sentinel_options();
  options.recovery.checksum_frames = false;
  solver.enable_resilience(options);

  solver.run(kSteps);

  const auto* net =
      dynamic_cast<const resilience::FaultyNetwork*>(&solver.network());
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->plan().fired_count(resilience::FaultKind::kCorrupt), 1);
  EXPECT_GE(solver.resilience_stats().rollbacks, 1);
  expect_bit_identical(solver.global_distributions(), reference);
}

TEST(SentinelSolver, RepeatedHitsQuarantineTheFailingRank) {
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  const decomp::Partition partition =
      decomp::slab_partition(*lattice, kRanks);

  // Two flips aimed at points owned by the same rank: the second
  // detection crosses quarantine_threshold and retires the rank through
  // the shrink path instead of rolling back forever.
  const Rank victim = partition.owner.front();
  std::vector<std::int64_t> victim_points;
  for (std::int64_t gi = 0;
       gi < static_cast<std::int64_t>(partition.owner.size()) &&
       victim_points.size() < 2;
       ++gi)
    if (partition.owner[static_cast<std::size_t>(gi)] == victim)
      victim_points.push_back(gi);
  ASSERT_EQ(victim_points.size(), 2u);

  DistributedSolver solver(lattice, partition, flow_options());
  resilience::FaultPlan plan;
  plan.add(bit_flip_at(/*step=*/6, victim_points[0], /*q=*/2, /*bit=*/33));
  plan.add(bit_flip_at(/*step=*/10, victim_points[1], /*q=*/8, /*bit=*/50));
  solver.set_fault_injection(&plan);

  resilience::Options options = sentinel_options();
  options.sentinel.quarantine_threshold = 2;
  options.shrink.enabled = true;
  options.recovery.max_rollbacks = 8;
  solver.enable_resilience(options);

  solver.run(kSteps);

  const resilience::RunStats& stats = solver.resilience_stats();
  EXPECT_EQ(stats.sdc_detected, 2);
  EXPECT_EQ(stats.sdc_quarantines, 1);
  EXPECT_GE(stats.shrinks, 1);
  EXPECT_EQ(solver.survivor_count(), kRanks - 1);
  expect_bit_identical(solver.global_distributions(), reference);
}

TEST(SentinelSolver, FullInstrumentationStaysQuietOnACleanRun) {
  const std::vector<double> reference = clean_run(kRanks, kSteps);

  auto lattice = small_cylinder();
  DistributedSolver solver(lattice,
                           decomp::slab_partition(*lattice, kRanks),
                           flow_options());
  resilience::Options options = sentinel_options();
  options.sentinel.reexec_sample = 2;  // duplicate re-execution armed
  solver.enable_resilience(options);

  solver.run(kSteps);

  const resilience::RunStats& stats = solver.resilience_stats();
  EXPECT_GT(stats.sdc_checks, 0);
  EXPECT_EQ(stats.sdc_detected, 0);
  EXPECT_EQ(stats.sdc_false_positive, 0);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_FALSE(has_rule(stats.diagnostics, "RS006"));
  expect_bit_identical(solver.global_distributions(), reference);
}

// ---------------------------------------------------------------------------
// DeviceSolver probes: the live digest table is a pure function of the
// state, so identical runs agree exactly and an extra step moves it.

TEST(DeviceSolverSentinelProbes, LiveDigestsAreDeterministicAcrossReruns) {
  auto lattice = small_cylinder();
  lbm::SolverOptions options = flow_options();
  options.propagation = lbm::Propagation::kAAInPlace;

  DeviceSolver a(lattice, options, hal::Model::kCuda);
  DeviceSolver b(lattice, options, hal::Model::kCuda);
  a.run(5);
  b.run(5);
  EXPECT_EQ(a.live_layout(), lbm::LiveLayout::kAAOddParity);
  EXPECT_EQ(a.tile_digests(kTilePoints), b.tile_digests(kTilePoints));

  b.run(1);
  EXPECT_EQ(b.live_layout(), lbm::LiveLayout::kAAEvenParity);
  EXPECT_NE(a.tile_digests(kTilePoints), b.tile_digests(kTilePoints));
}
