// DeviceSolver tests: every programming-model dialect must produce
// bit-identical physics to the host reference solver — the functional
// portability property underlying the whole study.

#include <gtest/gtest.h>

#include <memory>

#include "geom/aorta.hpp"
#include "geom/cylinder.hpp"
#include "hal/device.hpp"
#include "hal/kokkosx.hpp"
#include "harvey/device_solver.hpp"
#include "lbm/solver.hpp"

namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
namespace hal = hemo::hal;
using hemo::harvey::DeviceSolver;

namespace {

std::shared_ptr<lbm::SparseLattice> workload() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 12.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions options() {
  lbm::SolverOptions o;
  o.tau = 0.8;
  o.inlet_velocity = 0.015;
  o.outlet_density = 1.0;
  o.body_force = {0.0, 0.0, 1e-6};
  return o;
}

}  // namespace

class DeviceSolverModels : public ::testing::TestWithParam<hal::Model> {};

TEST_P(DeviceSolverModels, MatchesHostReferenceBitwise) {
  auto lattice = workload();
  lbm::Solver reference(lattice, options());
  DeviceSolver device(lattice, options(), GetParam());

  reference.run(20);
  device.run(20);

  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dev = device.distributions();
  ASSERT_EQ(ref.size(), dev.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(ref[k], dev[k]) << "mismatch at flat index " << k << " for "
                              << hal::name_of(GetParam());
}

TEST_P(DeviceSolverModels, ConservesMassWithClosedBoundaries) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 6.0;
  auto lattice = geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);
  lbm::SolverOptions o;
  o.tau = 1.0;
  o.body_force = {0.0, 0.0, 1e-6};
  DeviceSolver device(lattice, o, GetParam());
  const double mass0 = device.total_mass();
  device.run(50);
  EXPECT_NEAR(device.total_mass(), mass0, 1e-9 * mass0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, DeviceSolverModels,
    ::testing::Values(hal::Model::kCuda, hal::Model::kHip, hal::Model::kSycl,
                      hal::Model::kKokkosCuda),
    [](const ::testing::TestParamInfo<hal::Model>& info) {
      std::string n{hal::name_of(info.param)};
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(DeviceSolverCrossDialect, AllSevenModelsAgreeBitwise) {
  auto lattice = workload();
  const lbm::SolverOptions o = options();

  // Kokkos backends must be exercised one at a time (one backend per
  // process-wide runtime, as with real Kokkos); plain dialects coexist.
  std::vector<double> baseline;
  {
    DeviceSolver cuda(lattice, o, hal::Model::kCuda);
    cuda.run(10);
    baseline = cuda.distributions();
  }
  for (hal::Model m : hal::kAllModels) {
    DeviceSolver solver(lattice, o, m);
    solver.run(10);
    const std::vector<double> f = solver.distributions();
    ASSERT_EQ(f.size(), baseline.size());
    for (std::size_t k = 0; k < f.size(); ++k)
      ASSERT_EQ(f[k], baseline[k]) << hal::name_of(m) << " diverged at " << k;
  }
}

TEST(DeviceSolverLifecycle, NoDeviceMemoryLeaks) {
  auto& eng = hal::DeviceEngine::instance();
  const std::size_t live_before = eng.live_allocations();
  {
    DeviceSolver solver(workload(), options(), hal::Model::kSycl);
    solver.run(2);
    EXPECT_GT(eng.live_allocations(), live_before);
  }
  EXPECT_EQ(eng.live_allocations(), live_before);
}

TEST(DeviceSolverLifecycle, KokkosRuntimeIsScopedToTheSolver) {
  namespace kx = hal::kokkosx;
  ASSERT_FALSE(kx::is_initialized());
  {
    DeviceSolver solver(workload(), options(), hal::Model::kKokkosSycl);
    EXPECT_TRUE(kx::is_initialized());
    EXPECT_EQ(kx::current_backend(), hal::Backend::kSycl);
  }
  EXPECT_FALSE(kx::is_initialized());
}

namespace {

lbm::SolverOptions aa_options() {
  lbm::SolverOptions o = options();
  o.propagation = lbm::Propagation::kAAInPlace;
  return o;
}

std::shared_ptr<lbm::SparseLattice> small_aorta() {
  geom::AortaSpec spec;
  spec.spacing_mm = 2.6;
  return geom::make_aorta_lattice(spec);
}

void expect_aa_matches_pull_host(std::shared_ptr<lbm::SparseLattice> lattice,
                                 hal::Model model, int steps) {
  lbm::Solver reference(lattice, options());  // pull-SoA host ground truth
  DeviceSolver device(lattice, aa_options(), model);
  reference.run(steps);
  device.run(steps);
  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dev = device.distributions();
  ASSERT_EQ(ref.size(), dev.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(ref[k], dev[k]) << "mismatch at flat index " << k << " for "
                              << hal::name_of(model) << " after " << steps
                              << " steps";
}

}  // namespace

// The AA in-place pattern must be bit-identical to the pull-SoA host
// reference in every dialect, at both step-count parities (the AA array's
// layout differs between the two) and on both example geometries.
TEST_P(DeviceSolverModels, AAPatternMatchesPullHostAtEvenParity) {
  expect_aa_matches_pull_host(workload(), GetParam(), 20);
}

TEST_P(DeviceSolverModels, AAPatternMatchesPullHostAtOddParity) {
  expect_aa_matches_pull_host(workload(), GetParam(), 13);
}

TEST_P(DeviceSolverModels, AAPatternMatchesPullHostOnAorta) {
  expect_aa_matches_pull_host(small_aorta(), GetParam(), 5);
}

TEST(DeviceSolverCrossDialect, AAPatternAllSevenModelsAgreeBitwise) {
  auto lattice = workload();
  std::vector<double> baseline;
  {
    lbm::Solver host(lattice, aa_options());
    host.run(11);
    baseline = host.distributions();
  }
  for (hal::Model m : hal::kAllModels) {
    DeviceSolver solver(lattice, aa_options(), m);
    solver.run(11);
    const std::vector<double> f = solver.distributions();
    ASSERT_EQ(f.size(), baseline.size());
    for (std::size_t k = 0; k < f.size(); ++k)
      ASSERT_EQ(f[k], baseline[k]) << hal::name_of(m) << " diverged at " << k;
  }
}

TEST(DeviceSolverThreading, AAChunkedExecutionIsBitwiseIdentical) {
  // The odd AA step scatters into neighbor slots; the slot-ownership
  // argument (each slot written by exactly one point, no point reads a
  // slot another point writes that step) must hold under real threads.
  auto lattice = workload();
  lbm::Solver reference(lattice, options());
  reference.run(11);

  auto& eng = hal::DeviceEngine::instance();
  eng.set_threads(4);
  DeviceSolver threaded(lattice, aa_options(), hal::Model::kCuda);
  threaded.run(11);
  eng.set_threads(1);

  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dev = threaded.distributions();
  ASSERT_EQ(ref.size(), dev.size());
  for (std::size_t k = 0; k < ref.size(); ++k) ASSERT_EQ(ref[k], dev[k]);
}

TEST(DeviceSolverThreading, ChunkedExecutionIsBitwiseIdentical) {
  // The engine may split launches across host threads; each index writes
  // only its own point, so results must not depend on the chunking.
  auto lattice = workload();
  lbm::Solver reference(lattice, options());
  reference.run(10);

  auto& eng = hal::DeviceEngine::instance();
  eng.set_threads(4);
  DeviceSolver threaded(lattice, options(), hal::Model::kCuda);
  threaded.run(10);
  eng.set_threads(1);

  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dev = threaded.distributions();
  ASSERT_EQ(ref.size(), dev.size());
  for (std::size_t k = 0; k < ref.size(); ++k) ASSERT_EQ(ref[k], dev[k]);
}
