// DistributedSolver tests: multi-rank runs must be bit-identical to the
// single-domain reference for both decomposition strategies and both
// geometries, and the message traffic must match the halo plan exactly.

#include <gtest/gtest.h>

#include <memory>

#include "decomp/partition.hpp"
#include "geom/aorta.hpp"
#include "geom/cylinder.hpp"
#include "harvey/distributed_solver.hpp"
#include "lbm/hemodynamics.hpp"
#include "lbm/solver.hpp"

namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
using hemo::harvey::DistributedSolver;

namespace {

std::shared_ptr<lbm::SparseLattice> cylinder_workload() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 16.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

std::shared_ptr<lbm::SparseLattice> cylinder_workload_for_dialects() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 3.0;
  spec.axial_per_scale = 12.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions flow_options() {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.inlet_velocity = 0.01;
  o.outlet_density = 1.0;
  return o;
}

}  // namespace

class DistributedRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistributedRankSweep, SlabDecompositionMatchesReferenceBitwise) {
  auto lattice = cylinder_workload();
  const int ranks = GetParam();

  lbm::Solver reference(lattice, flow_options());
  DistributedSolver distributed(
      lattice, decomp::slab_partition(*lattice, ranks), flow_options());

  reference.run(15);
  distributed.run(15);

  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dist = distributed.global_distributions();
  ASSERT_EQ(ref.size(), dist.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(ref[k], dist[k]) << ranks << " ranks diverged at index " << k;
}

TEST_P(DistributedRankSweep, BisectionDecompositionMatchesReferenceBitwise) {
  auto lattice = cylinder_workload();
  const int ranks = GetParam();

  lbm::Solver reference(lattice, flow_options());
  DistributedSolver distributed(
      lattice, decomp::bisection_partition(*lattice, ranks), flow_options());

  reference.run(15);
  distributed.run(15);

  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dist = distributed.global_distributions();
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(ref[k], dist[k]) << ranks << " ranks diverged at index " << k;
}

TEST_P(DistributedRankSweep, MessageTrafficMatchesHaloPlanExactly) {
  auto lattice = cylinder_workload();
  const int ranks = GetParam();
  const decomp::Partition partition =
      decomp::bisection_partition(*lattice, ranks);
  const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, partition);

  DistributedSolver distributed(lattice, partition, flow_options());
  distributed.run(3);

  // Every step sends exactly one message per plan entry, of exactly the
  // planned byte volume.
  const auto& ledger = distributed.network().ledger();
  ASSERT_EQ(ledger.size(), plan.messages.size() * 3);
  for (std::size_t k = 0; k < plan.messages.size(); ++k) {
    const auto& expected = plan.messages[k];
    const auto& actual = ledger[k];  // first step, same (src,dst) order
    EXPECT_EQ(actual.src, expected.src);
    EXPECT_EQ(actual.dst, expected.dst);
    EXPECT_EQ(actual.bytes, expected.bytes());
  }
  EXPECT_EQ(distributed.network().total_bytes(),
            3 * plan.total_values() *
                static_cast<std::int64_t>(sizeof(double)));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedRankSweep,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST(DistributedSolver, AortaWithBisectionMatchesReference) {
  geom::AortaSpec spec;
  spec.spacing_mm = 2.4;  // tiny instance for test speed
  auto lattice = geom::make_aorta_lattice(spec);

  lbm::SolverOptions o;
  o.tau = 0.85;
  o.inlet_velocity = 0.008;
  o.outlet_density = 1.0;

  lbm::Solver reference(lattice, o);
  DistributedSolver distributed(lattice,
                                decomp::bisection_partition(*lattice, 6), o);
  reference.run(10);
  distributed.run(10);

  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dist = distributed.global_distributions();
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(ref[k], dist[k]) << "aorta diverged at index " << k;
}

TEST(DistributedSolver, SingleRankSendsNothing) {
  auto lattice = cylinder_workload();
  DistributedSolver distributed(
      lattice, decomp::slab_partition(*lattice, 1), flow_options());
  distributed.run(5);
  EXPECT_EQ(distributed.network().message_count(), 0);
}

TEST(DistributedSolver, OwnedCountsMatchPartition) {
  auto lattice = cylinder_workload();
  const decomp::Partition partition = decomp::slab_partition(*lattice, 4);
  DistributedSolver distributed(lattice, partition, flow_options());
  const auto counts = partition.rank_counts();
  for (hemo::Rank r = 0; r < 4; ++r)
    EXPECT_EQ(distributed.owned_count(r),
              counts[static_cast<std::size_t>(r)]);
}

TEST(DistributedSolver, GlobalMomentsAgreeWithReference) {
  auto lattice = cylinder_workload();
  lbm::Solver reference(lattice, flow_options());
  DistributedSolver distributed(
      lattice, decomp::slab_partition(*lattice, 3), flow_options());
  reference.run(8);
  distributed.run(8);
  for (hemo::PointIndex i = 0; i < lattice->size(); i += 37) {
    const lbm::Moments a = reference.moments(i);
    const lbm::Moments b = distributed.global_moments(i);
    EXPECT_DOUBLE_EQ(a.rho, b.rho);
    EXPECT_DOUBLE_EQ(a.uz, b.uz);
  }
}

// ---------------------------------------------------------------------------
// Dialect-routed distributed execution: MPI ranks each driving a device
// through a programming model, the study's actual execution mode.
// ---------------------------------------------------------------------------

class DistributedDialects : public ::testing::TestWithParam<hemo::hal::Model> {};

TEST_P(DistributedDialects, DialectExecutionMatchesHostLoopBitwise) {
  auto lattice = cylinder_workload_for_dialects();
  lbm::Solver reference(lattice, flow_options());
  DistributedSolver distributed(
      lattice, decomp::bisection_partition(*lattice, 4), flow_options());
  distributed.set_execution_model(GetParam());

  reference.run(12);
  distributed.run(12);

  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dist = distributed.global_distributions();
  ASSERT_EQ(ref.size(), dist.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(ref[k], dist[k])
        << hemo::hal::name_of(GetParam()) << " diverged at " << k;
}

INSTANTIATE_TEST_SUITE_P(
    Models, DistributedDialects,
    ::testing::Values(hemo::hal::Model::kCuda, hemo::hal::Model::kHip,
                      hemo::hal::Model::kSycl,
                      hemo::hal::Model::kKokkosHip),
    [](const ::testing::TestParamInfo<hemo::hal::Model>& info) {
      std::string n{hemo::hal::name_of(info.param)};
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(DistributedDialects, PulsatileInflowMatchesReference) {
  auto lattice = cylinder_workload_for_dialects();
  lbm::Solver reference(lattice, flow_options());
  DistributedSolver distributed(
      lattice, decomp::slab_partition(*lattice, 3), flow_options());
  distributed.set_execution_model(hemo::hal::Model::kSycl);

  const hemo::lbm::CardiacWaveform wave(40, 0.02);
  for (int step = 0; step < 80; ++step) {
    reference.set_inlet_velocity(wave.at(step));
    distributed.set_inlet_velocity(wave.at(step));
    reference.step();
    distributed.step();
  }
  const std::vector<double>& ref = reference.distributions();
  const std::vector<double> dist = distributed.global_distributions();
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(ref[k], dist[k]) << "pulsatile diverged at " << k;
}
