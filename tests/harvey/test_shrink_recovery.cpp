// Elastic shrink-recovery: a permanently killed rank is escalated from
// "transient" to "dead" by the deadline failure detector, the domain is
// re-bisected over the survivors, the last checkpointed state is
// redistributed, and the run finishes bit-identical to an unfaulted run —
// at any kill step (first, mid-run, last), for multiple sequential kills,
// and deterministically across reruns.  A shrink below min_survivors is a
// structured SolverFault, not a hang.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "harvey/distributed_solver.hpp"
#include "resilience/fault.hpp"
#include "resilience/faulty_network.hpp"
#include "resilience/policy.hpp"

namespace analysis = hemo::analysis;
namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
namespace resilience = hemo::resilience;
using hemo::Rank;
using hemo::harvey::DistributedSolver;

namespace {

constexpr int kRanks = 8;
constexpr int kSteps = 24;

std::shared_ptr<lbm::SparseLattice> small_cylinder() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 16.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions flow_options() {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.inlet_velocity = 0.01;
  o.outlet_density = 1.0;
  return o;
}

resilience::Options shrink_options(int min_survivors = 1) {
  resilience::Options o;
  o.shrink.enabled = true;
  o.shrink.death_deadline = 2;
  o.shrink.min_survivors = min_survivors;
  return o;
}

struct KilledRun {
  std::vector<double> state;
  double mass = 0.0;
  resilience::RunStats stats;
  int survivors = 0;
  std::vector<char> alive;
  std::vector<analysis::Diagnostic> validate;
};

/// One full run with the given kill schedule {(rank, step), ...}.
KilledRun killed_run(const std::vector<std::pair<Rank, std::int64_t>>& kills,
                     int ranks = kRanks, int steps = kSteps,
                     int min_survivors = 1) {
  auto lattice = small_cylinder();
  DistributedSolver solver(
      lattice, decomp::bisection_partition(*lattice, ranks), flow_options());
  resilience::FaultPlan plan;
  for (const auto& [rank, step] : kills) plan.kill_rank(rank, step);
  solver.set_network(
      std::make_unique<resilience::FaultyNetwork>(ranks, plan));
  solver.enable_resilience(shrink_options(min_survivors));
  solver.run(steps);

  KilledRun out;
  out.state = solver.global_distributions();
  out.mass = solver.total_mass();
  out.stats = solver.resilience_stats();
  out.survivors = solver.survivor_count();
  for (Rank r = 0; r < ranks; ++r) out.alive.push_back(solver.rank_alive(r));
  out.validate = solver.validate();
  return out;
}

std::vector<double> clean_run(int ranks = kRanks, int steps = kSteps) {
  auto lattice = small_cylinder();
  DistributedSolver solver(
      lattice, decomp::bisection_partition(*lattice, ranks), flow_options());
  solver.run(steps);
  return solver.global_distributions();
}

double clean_mass(int ranks = kRanks, int steps = kSteps) {
  auto lattice = small_cylinder();
  DistributedSolver solver(
      lattice, decomp::bisection_partition(*lattice, ranks), flow_options());
  solver.run(steps);
  return solver.total_mass();
}

int count_rule(const std::vector<analysis::Diagnostic>& ds,
               const char* rule) {
  int n = 0;
  for (const analysis::Diagnostic& d : ds) n += (d.rule_id == rule);
  return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// The acceptance property: kill any rank at any step; the run recovers on
// the survivors and ends bit-identical to the unfaulted run.

class KillStepSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(KillStepSweep, KilledRankIsShrunkAroundBitIdentically) {
  const std::vector<double> reference = clean_run();
  const KilledRun run = killed_run({{5, GetParam()}});

  EXPECT_EQ(run.stats.rank_deaths, 1);
  EXPECT_EQ(run.stats.shrinks, 1);
  ASSERT_EQ(run.stats.dead_ranks, std::vector<Rank>{5});
  EXPECT_GE(run.stats.last_recovery_step, 0);
  EXPECT_LE(run.stats.last_recovery_step, GetParam());
  EXPECT_EQ(run.survivors, kRanks - 1);
  EXPECT_EQ(run.alive[5], 0);

  // Distributions are the bit-identity witness; total mass is a float
  // reduction whose summation order legitimately changes with the
  // decomposition, so it is compared within the RS002-style tolerance.
  ASSERT_EQ(run.state.size(), reference.size());
  EXPECT_EQ(run.state, reference) << "kill step " << GetParam();
  EXPECT_NEAR(run.mass, clean_mass(), 1e-9 * std::abs(clean_mass()));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, KillStepSweep,
                         ::testing::Values<std::int64_t>(0, 10, kSteps - 1));

TEST(ShrinkRecovery, RecoveryIsDeterministicAcrossReruns) {
  const KilledRun a = killed_run({{3, 7}});
  const KilledRun b = killed_run({{3, 7}});
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.mass, b.mass);  // same decomposition -> same summation order
  EXPECT_EQ(a.stats.last_recovery_step, b.stats.last_recovery_step);
  EXPECT_EQ(a.stats.rollbacks, b.stats.rollbacks);
}

TEST(ShrinkRecovery, TwoSequentialDeathsShrinkTwice) {
  const std::vector<double> reference = clean_run();
  const KilledRun run = killed_run({{2, 6}, {6, 16}});

  EXPECT_EQ(run.stats.rank_deaths, 2);
  EXPECT_EQ(run.stats.shrinks, 2);
  ASSERT_EQ(run.stats.dead_ranks, (std::vector<Rank>{2, 6}));
  EXPECT_EQ(run.survivors, kRanks - 2);
  EXPECT_EQ(run.alive[2], 0);
  EXPECT_EQ(run.alive[6], 0);
  EXPECT_EQ(run.state, reference);
}

TEST(ShrinkRecovery, ShrinkRecordsAnRS005Diagnostic) {
  const KilledRun run = killed_run({{5, 10}});
  EXPECT_GE(count_rule(run.stats.diagnostics, "RS005"), 1);
  bool names_rank = false;
  for (const analysis::Diagnostic& d : run.stats.diagnostics)
    if (d.rule_id == "RS005" &&
        d.message.find("rank 5") != std::string::npos)
      names_rank = true;
  EXPECT_TRUE(names_rank) << "RS005 should name the dead rank";
}

TEST(ShrinkRecovery, PostShrinkStateValidatesWithoutErrors) {
  // In-vivo LC011 negative: after the shrink rebuilt the exchanges, the
  // live halo plan must not route traffic through the dead rank.  The
  // starved-rank LC007 *warning* is expected — the dead rank owns zero
  // points by design — but no error-severity diagnostic may remain.
  const KilledRun run = killed_run({{5, 10}});
  EXPECT_EQ(analysis::count_at(run.validate, analysis::Severity::kError), 0);
  EXPECT_EQ(count_rule(run.validate, "LC011"), 0);
}

TEST(ShrinkRecovery, RefusesToShrinkBelowMinSurvivors) {
  auto lattice = small_cylinder();
  DistributedSolver solver(
      lattice, decomp::bisection_partition(*lattice, 4), flow_options());
  resilience::FaultPlan plan;
  plan.kill_rank(1, 8);
  solver.set_network(std::make_unique<resilience::FaultyNetwork>(4, plan));
  solver.enable_resilience(shrink_options(/*min_survivors=*/4));
  EXPECT_THROW(solver.run(16), resilience::SolverFault);
}

TEST(ShrinkRecovery, ShrinkDisabledFallsBackToStructuredFault) {
  auto lattice = small_cylinder();
  DistributedSolver solver(
      lattice, decomp::bisection_partition(*lattice, 4), flow_options());
  resilience::FaultPlan plan;
  plan.kill_rank(2, 5);
  solver.set_network(std::make_unique<resilience::FaultyNetwork>(4, plan));
  solver.enable_resilience(resilience::Options{});  // shrink.enabled = false
  EXPECT_THROW(solver.run(16), resilience::SolverFault);
}

TEST(ShrinkRecovery, SurvivorCountIsFullWithoutDeaths) {
  auto lattice = small_cylinder();
  DistributedSolver solver(
      lattice, decomp::bisection_partition(*lattice, kRanks), flow_options());
  solver.enable_resilience(shrink_options());
  solver.run(4);
  EXPECT_EQ(solver.survivor_count(), kRanks);
  for (Rank r = 0; r < kRanks; ++r) EXPECT_TRUE(solver.rank_alive(r));
}
