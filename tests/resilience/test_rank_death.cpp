// kRankDeath semantics: a permanent kill, unlike every transient kind.
// From the event step onward the dead rank's traffic is black-holed in
// both directions, death survives network resets (a rollback cannot
// resurrect hardware), pre-death in-flight messages stay deliverable, and
// the death counters are excluded from total_injected() — a dead rank
// swallows traffic without bound by design.

#include <gtest/gtest.h>

#include <vector>

#include "comm/network.hpp"
#include "resilience/fault.hpp"
#include "resilience/faulty_network.hpp"

namespace hemo::resilience {
namespace {

FaultPlan kill_plan(Rank rank, std::int64_t step) {
  FaultPlan plan;
  plan.kill_rank(rank, step);
  return plan;
}

}  // namespace

TEST(RankDeathPlan, KillRankSchedulesAPermanentDeathEvent) {
  const FaultPlan plan = kill_plan(2, 5);
  ASSERT_EQ(plan.total(), 1);
  EXPECT_EQ(plan.count(FaultKind::kRankDeath), 1);
  const FaultEvent& e = plan.events().front();
  EXPECT_EQ(e.kind, FaultKind::kRankDeath);
  EXPECT_EQ(e.src, 2);
  EXPECT_EQ(e.step, 5);
}

TEST(RankDeathPlan, MatchFiresAtOrAfterItsStep) {
  FaultPlan plan = kill_plan(1, 10);
  EXPECT_EQ(plan.match_rank_death(9), nullptr);
  // A permanent kill does not need traffic on its exact step: any step at
  // or past the deadline matches.
  EXPECT_NE(plan.match_rank_death(10), nullptr);
  EXPECT_NE(plan.match_rank_death(17), nullptr);
}

TEST(RankDeathPlan, KindNameRoundTrips) {
  EXPECT_EQ(fault_kind_name(FaultKind::kRankDeath), "rank-death");
  FaultKind kind = FaultKind::kDrop;
  ASSERT_TRUE(parse_fault_kind("rank-death", &kind));
  EXPECT_EQ(kind, FaultKind::kRankDeath);
}

TEST(RankDeathPlan, RandomPlansNeverDrawRankDeath) {
  // kAllFaultKinds is the transient catalogue; a permanent kill must be
  // opted into explicitly, never sampled into a "--kinds all" chaos plan.
  for (const FaultKind kind : kAllFaultKinds)
    EXPECT_NE(kind, FaultKind::kRankDeath);
}

TEST(RankDeathNetwork, BlackHolesBothDirectionsFromTheEventStep) {
  FaultyNetwork net(3, kill_plan(1, 2));
  net.begin_step(1);
  net.send(1, 0, {1.0});
  EXPECT_EQ(net.receive(0, 1), (std::vector<double>{1.0}));
  EXPECT_FALSE(net.is_dead(1));

  net.begin_step(2);
  EXPECT_TRUE(net.is_dead(1));
  ASSERT_EQ(net.dead_ranks().size(), 1u);
  EXPECT_EQ(net.dead_ranks().front(), 1);

  // Sends from and to the dead rank are swallowed.
  net.send(1, 0, {2.0});
  net.send(0, 1, {3.0});
  EXPECT_EQ(net.pending(0, 1), 0);
  EXPECT_EQ(net.log().death_swallowed, 2);

  // Receives from the dead rank are denied.
  EXPECT_THROW(net.receive(0, 1), comm::RecvError);
  EXPECT_EQ(net.log().death_polls, 1);

  // Traffic between live ranks is untouched.
  net.send(0, 2, {4.0});
  EXPECT_EQ(net.receive(2, 0), (std::vector<double>{4.0}));
}

TEST(RankDeathNetwork, PreDeathInFlightTrafficStaysDeliverable) {
  FaultyNetwork net(2, kill_plan(0, 3));
  net.begin_step(2);
  net.send(0, 1, {5.0});
  net.begin_step(3);
  // The message left the NIC before the death step; the wire still holds
  // it, so the receiver may drain it even though the sender is now dead.
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{5.0}));
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
}

TEST(RankDeathNetwork, DeathSurvivesReset) {
  FaultyNetwork net(2, kill_plan(1, 0));
  net.begin_step(0);
  EXPECT_TRUE(net.is_dead(1));

  // A rollback resets the wire; it cannot resurrect hardware.
  net.reset();
  EXPECT_TRUE(net.is_dead(1));
  net.begin_step(0);
  net.send(1, 0, {1.0});
  EXPECT_EQ(net.pending(0, 1), 0);
  EXPECT_THROW(net.receive(0, 1), comm::RecvError);
}

TEST(RankDeathNetwork, DeathCountersAreNotTransientInjections) {
  FaultyNetwork net(2, kill_plan(1, 0));
  net.begin_step(0);
  net.send(1, 0, {1.0});
  net.send(0, 1, {2.0});
  EXPECT_THROW(net.receive(0, 1), comm::RecvError);

  // Unbounded-by-design black-holing must not pollute the transient
  // injection count the chaos report totals.
  EXPECT_EQ(net.log().death_swallowed, 2);
  EXPECT_EQ(net.log().death_polls, 1);
  EXPECT_EQ(net.log().total_injected(), 0);
}

}  // namespace hemo::resilience
