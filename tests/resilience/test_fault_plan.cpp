// FaultPlan: seeded determinism, matching semantics, one-shot firing.

#include "resilience/fault.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace hemo::resilience {
namespace {

const std::vector<std::pair<Rank, Rank>> kEdges = {
    {0, 1}, {1, 0}, {1, 2}, {2, 1}};

std::vector<FaultKind> all_kinds() {
  return {std::begin(kAllFaultKinds), std::end(kAllFaultKinds)};
}

TEST(FaultPlan, RandomIsDeterministicInSeed) {
  const FaultPlan a = FaultPlan::random(42, 50, kEdges, all_kinds(), 3);
  const FaultPlan b = FaultPlan::random(42, 50, kEdges, all_kinds(), 3);
  ASSERT_EQ(a.total(), b.total());
  for (int i = 0; i < a.total(); ++i) {
    const FaultEvent& ea = a.events()[static_cast<std::size_t>(i)];
    const FaultEvent& eb = b.events()[static_cast<std::size_t>(i)];
    EXPECT_EQ(ea.step, eb.step);
    EXPECT_EQ(ea.src, eb.src);
    EXPECT_EQ(ea.dst, eb.dst);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.payload_index, eb.payload_index);
    EXPECT_EQ(ea.xor_mask, eb.xor_mask);
    EXPECT_EQ(ea.truncate_by, eb.truncate_by);
    EXPECT_EQ(ea.stall_polls, eb.stall_polls);
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a = FaultPlan::random(1, 50, kEdges, all_kinds(), 4);
  const FaultPlan b = FaultPlan::random(2, 50, kEdges, all_kinds(), 4);
  bool any_difference = false;
  for (int i = 0; i < a.total(); ++i) {
    const FaultEvent& ea = a.events()[static_cast<std::size_t>(i)];
    const FaultEvent& eb = b.events()[static_cast<std::size_t>(i)];
    any_difference |= (ea.step != eb.step || ea.src != eb.src ||
                       ea.dst != eb.dst);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, RandomRespectsBoundsAndCounts) {
  const FaultPlan plan = FaultPlan::random(7, 20, kEdges, all_kinds(), 2);
  EXPECT_EQ(plan.total(), 12);
  for (const FaultKind kind : kAllFaultKinds) EXPECT_EQ(plan.count(kind), 2);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.step, 0);
    EXPECT_LT(e.step, 20);
    bool on_edge = false;
    for (const auto& [src, dst] : kEdges)
      on_edge |= (e.src == src && e.dst == dst);
    EXPECT_TRUE(on_edge);
    EXPECT_FALSE(e.fired);
    if (e.kind == FaultKind::kStall) {
      EXPECT_GE(e.stall_polls, 1);
      EXPECT_LE(e.stall_polls, 6);
    }
    if (e.kind == FaultKind::kTruncate) {
      EXPECT_GE(e.truncate_by, 1);
      EXPECT_LE(e.truncate_by, 4);
    }
  }
}

TEST(FaultPlan, MatchSendIsKeyedAndOneShot) {
  FaultPlan plan;
  FaultEvent e;
  e.step = 3;
  e.src = 1;
  e.dst = 2;
  e.kind = FaultKind::kDrop;
  plan.add(e);

  EXPECT_EQ(plan.match_send(2, 1, 2), nullptr);  // wrong step
  EXPECT_EQ(plan.match_send(3, 2, 1), nullptr);  // wrong direction
  FaultEvent* hit = plan.match_send(3, 1, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kind, FaultKind::kDrop);

  // Matching does not consume; firing does.
  EXPECT_NE(plan.match_send(3, 1, 2), nullptr);
  hit->fired = true;
  EXPECT_EQ(plan.match_send(3, 1, 2), nullptr);
  EXPECT_EQ(plan.fired_count(), 1);
  EXPECT_EQ(plan.unfired_count(), 0);
}

TEST(FaultPlan, MatchStallIgnoresDstAndNonStallEvents) {
  FaultPlan plan;
  FaultEvent drop;
  drop.step = 5;
  drop.src = 0;
  drop.dst = 1;
  drop.kind = FaultKind::kDrop;
  plan.add(drop);
  FaultEvent stall;
  stall.step = 5;
  stall.src = 0;
  stall.dst = 3;  // ignored for stalls
  stall.kind = FaultKind::kStall;
  plan.add(stall);

  FaultEvent* hit = plan.match_stall(5, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kind, FaultKind::kStall);
  EXPECT_EQ(plan.match_stall(5, 1), nullptr);
  // match_send never returns stall events.
  FaultEvent* send_hit = plan.match_send(5, 0, 1);
  ASSERT_NE(send_hit, nullptr);
  EXPECT_EQ(send_hit->kind, FaultKind::kDrop);
}

TEST(FaultKinds, NameParseRoundTrip) {
  for (const FaultKind kind : kAllFaultKinds) {
    FaultKind parsed;
    ASSERT_TRUE(parse_fault_kind(fault_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  FaultKind parsed;
  EXPECT_FALSE(parse_fault_kind("segfault", &parsed));
  EXPECT_FALSE(parse_fault_kind("", &parsed));
}

TEST(FaultKinds, OptInKindsParseButStayOutOfTheTransientCatalogue) {
  for (const FaultKind kind : {FaultKind::kRankDeath, FaultKind::kBitFlip}) {
    FaultKind parsed;
    ASSERT_TRUE(parse_fault_kind(fault_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    for (const FaultKind transient : kAllFaultKinds)
      EXPECT_NE(transient, kind);
  }
}

// ---------------------------------------------------------------------------
// Degenerate random() inputs: both axes of "no events requested" must
// yield an empty (but valid) plan, not a guard failure.

TEST(FaultPlan, RandomWithNoKindsIsEmpty) {
  const FaultPlan plan = FaultPlan::random(5, 10, kEdges, {}, 3);
  EXPECT_EQ(plan.total(), 0);
  EXPECT_EQ(plan.fired_count(), 0);
}

TEST(FaultPlan, RandomWithZeroEventsPerKindIsEmpty) {
  const FaultPlan plan = FaultPlan::random(5, 10, kEdges, all_kinds(), 0);
  EXPECT_EQ(plan.total(), 0);
  EXPECT_EQ(plan.unfired_count(), 0);
}

TEST(FaultPlan, RandomDrawsBitFlipParameters) {
  const FaultPlan plan =
      FaultPlan::random(9, 20, kEdges, {FaultKind::kBitFlip}, 8);
  EXPECT_EQ(plan.count(FaultKind::kBitFlip), 8);
  bool any_q = false, any_bit = false;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.flip_point, 0);  // random() knows no lattice extent
    EXPECT_GE(e.flip_q, 0);
    EXPECT_LT(e.flip_q, 19);
    EXPECT_GE(e.flip_bit, 0);
    EXPECT_LT(e.flip_bit, 64);
    EXPECT_EQ(e.fired_rank, -1);  // ground truth is stamped at fire time
    EXPECT_EQ(e.fired_tile, -1);
    any_q |= e.flip_q != 0;
    any_bit |= e.flip_bit != 0;
  }
  EXPECT_TRUE(any_q);
  EXPECT_TRUE(any_bit);
}

// ---------------------------------------------------------------------------
// bit_flips(): the seeded SDC campaign generator.

TEST(FaultPlan, BitFlipsIsSeededDeterministicAndBounded) {
  const FaultPlan a = FaultPlan::bit_flips(42, 30, 5000, 12);
  const FaultPlan b = FaultPlan::bit_flips(42, 30, 5000, 12);
  ASSERT_EQ(a.total(), 12);
  ASSERT_EQ(b.total(), 12);
  for (int k = 0; k < a.total(); ++k) {
    const FaultEvent& ea = a.events()[static_cast<std::size_t>(k)];
    const FaultEvent& eb = b.events()[static_cast<std::size_t>(k)];
    EXPECT_EQ(ea.kind, FaultKind::kBitFlip);
    EXPECT_EQ(ea.step, eb.step);
    EXPECT_EQ(ea.flip_point, eb.flip_point);
    EXPECT_EQ(ea.flip_q, eb.flip_q);
    EXPECT_EQ(ea.flip_bit, eb.flip_bit);
    EXPECT_GE(ea.step, 0);
    EXPECT_LT(ea.step, 30);
    EXPECT_GE(ea.flip_point, 0);
    EXPECT_LT(ea.flip_point, 5000);
    EXPECT_GE(ea.flip_q, 0);
    EXPECT_LT(ea.flip_q, 19);
    EXPECT_GE(ea.flip_bit, 0);
    EXPECT_LT(ea.flip_bit, 64);
    EXPECT_FALSE(ea.fired);
  }
}

TEST(FaultPlan, BitFlipsWithZeroCountIsEmpty) {
  EXPECT_EQ(FaultPlan::bit_flips(3, 10, 100, 0).total(), 0);
}

TEST(FaultPlan, MatchBitFlipIsExactStepOneShotAndInvisibleToSends) {
  FaultPlan plan;
  FaultEvent drop;
  drop.step = 4;
  drop.src = 0;
  drop.dst = 1;
  drop.kind = FaultKind::kDrop;
  plan.add(drop);
  FaultEvent flip;
  flip.step = 4;
  flip.kind = FaultKind::kBitFlip;
  flip.flip_point = 17;
  plan.add(flip);

  // Exact-step matching: neither an earlier nor a later step fires it.
  EXPECT_EQ(plan.match_bit_flip(3), nullptr);
  EXPECT_EQ(plan.match_bit_flip(5), nullptr);
  FaultEvent* hit = plan.match_bit_flip(4);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kind, FaultKind::kBitFlip);

  // The wire never sees a memory fault: match_send skips bit flips.
  FaultEvent* send_hit = plan.match_send(4, 0, 1);
  ASSERT_NE(send_hit, nullptr);
  EXPECT_EQ(send_hit->kind, FaultKind::kDrop);

  // One-shot: a rollback replaying step 4 must not re-fire the flip.
  hit->fired = true;
  EXPECT_EQ(plan.match_bit_flip(4), nullptr);
  EXPECT_EQ(plan.fired_count(FaultKind::kBitFlip), 1);
}

}  // namespace
}  // namespace hemo::resilience
