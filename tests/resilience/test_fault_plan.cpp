// FaultPlan: seeded determinism, matching semantics, one-shot firing.

#include "resilience/fault.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace hemo::resilience {
namespace {

const std::vector<std::pair<Rank, Rank>> kEdges = {
    {0, 1}, {1, 0}, {1, 2}, {2, 1}};

std::vector<FaultKind> all_kinds() {
  return {std::begin(kAllFaultKinds), std::end(kAllFaultKinds)};
}

TEST(FaultPlan, RandomIsDeterministicInSeed) {
  const FaultPlan a = FaultPlan::random(42, 50, kEdges, all_kinds(), 3);
  const FaultPlan b = FaultPlan::random(42, 50, kEdges, all_kinds(), 3);
  ASSERT_EQ(a.total(), b.total());
  for (int i = 0; i < a.total(); ++i) {
    const FaultEvent& ea = a.events()[static_cast<std::size_t>(i)];
    const FaultEvent& eb = b.events()[static_cast<std::size_t>(i)];
    EXPECT_EQ(ea.step, eb.step);
    EXPECT_EQ(ea.src, eb.src);
    EXPECT_EQ(ea.dst, eb.dst);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.payload_index, eb.payload_index);
    EXPECT_EQ(ea.xor_mask, eb.xor_mask);
    EXPECT_EQ(ea.truncate_by, eb.truncate_by);
    EXPECT_EQ(ea.stall_polls, eb.stall_polls);
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a = FaultPlan::random(1, 50, kEdges, all_kinds(), 4);
  const FaultPlan b = FaultPlan::random(2, 50, kEdges, all_kinds(), 4);
  bool any_difference = false;
  for (int i = 0; i < a.total(); ++i) {
    const FaultEvent& ea = a.events()[static_cast<std::size_t>(i)];
    const FaultEvent& eb = b.events()[static_cast<std::size_t>(i)];
    any_difference |= (ea.step != eb.step || ea.src != eb.src ||
                       ea.dst != eb.dst);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, RandomRespectsBoundsAndCounts) {
  const FaultPlan plan = FaultPlan::random(7, 20, kEdges, all_kinds(), 2);
  EXPECT_EQ(plan.total(), 12);
  for (const FaultKind kind : kAllFaultKinds) EXPECT_EQ(plan.count(kind), 2);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.step, 0);
    EXPECT_LT(e.step, 20);
    bool on_edge = false;
    for (const auto& [src, dst] : kEdges)
      on_edge |= (e.src == src && e.dst == dst);
    EXPECT_TRUE(on_edge);
    EXPECT_FALSE(e.fired);
    if (e.kind == FaultKind::kStall) {
      EXPECT_GE(e.stall_polls, 1);
      EXPECT_LE(e.stall_polls, 6);
    }
    if (e.kind == FaultKind::kTruncate) {
      EXPECT_GE(e.truncate_by, 1);
      EXPECT_LE(e.truncate_by, 4);
    }
  }
}

TEST(FaultPlan, MatchSendIsKeyedAndOneShot) {
  FaultPlan plan;
  FaultEvent e;
  e.step = 3;
  e.src = 1;
  e.dst = 2;
  e.kind = FaultKind::kDrop;
  plan.add(e);

  EXPECT_EQ(plan.match_send(2, 1, 2), nullptr);  // wrong step
  EXPECT_EQ(plan.match_send(3, 2, 1), nullptr);  // wrong direction
  FaultEvent* hit = plan.match_send(3, 1, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kind, FaultKind::kDrop);

  // Matching does not consume; firing does.
  EXPECT_NE(plan.match_send(3, 1, 2), nullptr);
  hit->fired = true;
  EXPECT_EQ(plan.match_send(3, 1, 2), nullptr);
  EXPECT_EQ(plan.fired_count(), 1);
  EXPECT_EQ(plan.unfired_count(), 0);
}

TEST(FaultPlan, MatchStallIgnoresDstAndNonStallEvents) {
  FaultPlan plan;
  FaultEvent drop;
  drop.step = 5;
  drop.src = 0;
  drop.dst = 1;
  drop.kind = FaultKind::kDrop;
  plan.add(drop);
  FaultEvent stall;
  stall.step = 5;
  stall.src = 0;
  stall.dst = 3;  // ignored for stalls
  stall.kind = FaultKind::kStall;
  plan.add(stall);

  FaultEvent* hit = plan.match_stall(5, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kind, FaultKind::kStall);
  EXPECT_EQ(plan.match_stall(5, 1), nullptr);
  // match_send never returns stall events.
  FaultEvent* send_hit = plan.match_send(5, 0, 1);
  ASSERT_NE(send_hit, nullptr);
  EXPECT_EQ(send_hit->kind, FaultKind::kDrop);
}

TEST(FaultKinds, NameParseRoundTrip) {
  for (const FaultKind kind : kAllFaultKinds) {
    FaultKind parsed;
    ASSERT_TRUE(parse_fault_kind(fault_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  FaultKind parsed;
  EXPECT_FALSE(parse_fault_kind("segfault", &parsed));
  EXPECT_FALSE(parse_fault_kind("", &parsed));
}

}  // namespace
}  // namespace hemo::resilience
