// SDC sentinel unit tests: tile digests must be bit-sensitive in every
// live layout, the record-then-verify protocol must localize a flipped
// bit to the exact tile (and only ever digest owned points), and the
// layout-aware health scan must catch corrupted live AA slots at both
// step parities — the coverage the canonical-snapshot guards cannot give.

#include "resilience/sentinel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "geom/cylinder.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/solver.hpp"
#include "lbm/tile_probe.hpp"
#include "resilience/policy.hpp"

namespace lbm = hemo::lbm;
namespace geom = hemo::geom;
namespace resilience = hemo::resilience;
using hemo::Rank;
using lbm::LiveLayout;
using resilience::Sentinel;

namespace {

constexpr LiveLayout kAllLayouts[] = {LiveLayout::kCanonical,
                                      LiveLayout::kAAEvenParity,
                                      LiveLayout::kAAOddParity};

/// Deterministic synthetic SoA state: kQ rows of `stride` doubles, every
/// slot distinct and O(equilibrium) in magnitude.
std::vector<double> synthetic_state(std::int64_t stride) {
  std::vector<double> f(static_cast<std::size_t>(lbm::kQ) *
                        static_cast<std::size_t>(stride));
  for (int q = 0; q < lbm::kQ; ++q)
    for (std::int64_t i = 0; i < stride; ++i)
      f[static_cast<std::size_t>(q) * static_cast<std::size_t>(stride) +
        static_cast<std::size_t>(i)] =
          0.05 + 0.003 * q + 1.0e-7 * static_cast<double>(i);
  return f;
}

void flip_bit(double* slot, int bit) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, slot, sizeof bits);
  bits ^= (1ull << bit);
  std::memcpy(slot, &bits, sizeof bits);
}

std::shared_ptr<lbm::SparseLattice> aa_cylinder() {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 12.0;
  return geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
}

lbm::SolverOptions aa_options() {
  lbm::SolverOptions o;
  o.tau = 0.9;
  o.inlet_velocity = 0.01;
  o.outlet_density = 1.0;
  o.propagation = lbm::Propagation::kAAInPlace;
  return o;
}

bool has_rule(const std::vector<hemo::analysis::Diagnostic>& diags,
              const std::string& rule) {
  for (const auto& d : diags)
    if (d.rule_id == rule) return true;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tile probe: counting, bit sensitivity, layout algebra.

TEST(TileProbe, TileCountEdges) {
  EXPECT_EQ(lbm::tile_count(0, 256), 0);
  EXPECT_EQ(lbm::tile_count(1, 256), 1);
  EXPECT_EQ(lbm::tile_count(256, 256), 1);
  EXPECT_EQ(lbm::tile_count(257, 256), 2);
  EXPECT_EQ(lbm::tile_count(1000, 100), 10);
  // Degenerate grain: no tiles rather than a division fault.
  EXPECT_EQ(lbm::tile_count(5, 0), 0);
}

TEST(TileProbe, DigestDetectsEverySingleBitFlip) {
  constexpr std::int64_t kPoints = 37;  // odd: exercises the scalar tail
  std::vector<double> f = synthetic_state(kPoints);
  for (const LiveLayout layout : kAllLayouts) {
    const lbm::TileDigest baseline =
        lbm::tile_digest(f.data(), kPoints, 0, kPoints, layout);
    for (const int q : {0, 1, 9, lbm::kQ - 1}) {
      for (const std::int64_t i : {std::int64_t{0}, kPoints - 1}) {
        double* slot =
            f.data() + static_cast<std::size_t>(q) * kPoints + i;
        for (int bit = 0; bit < 64; ++bit) {
          flip_bit(slot, bit);
          EXPECT_NE(lbm::tile_digest(f.data(), kPoints, 0, kPoints, layout),
                    baseline)
              << "missed flip of bit " << bit << " at (q=" << q
              << ", i=" << i << ")";
          flip_bit(slot, bit);  // restore
        }
      }
    }
    EXPECT_EQ(lbm::tile_digest(f.data(), kPoints, 0, kPoints, layout),
              baseline);
  }
}

TEST(TileProbe, OddParityDigestReadsOppositeRows) {
  constexpr std::int64_t kPoints = 64;
  const std::vector<double> raw = synthetic_state(kPoints);
  // permuted row q := raw row opposite(q), i.e. what the even AA kernel
  // left behind: the post-collision f_q landed in the opposite slot.
  std::vector<double> permuted(raw.size());
  for (int q = 0; q < lbm::kQ; ++q)
    std::memcpy(permuted.data() + static_cast<std::size_t>(q) * kPoints,
                raw.data() +
                    static_cast<std::size_t>(lbm::opposite(q)) * kPoints,
                sizeof(double) * kPoints);
  EXPECT_EQ(lbm::tile_digest(raw.data(), kPoints, 0, kPoints,
                             LiveLayout::kAAOddParity),
            lbm::tile_digest(permuted.data(), kPoints, 0, kPoints,
                             LiveLayout::kCanonical));
  // Even parity is the identity mapping: same digest as canonical.
  EXPECT_EQ(lbm::tile_digest(raw.data(), kPoints, 0, kPoints,
                             LiveLayout::kAAEvenParity),
            lbm::tile_digest(raw.data(), kPoints, 0, kPoints,
                             LiveLayout::kCanonical));
}

TEST(TileProbe, DigestTablesLocalizeFlipsToOneTile) {
  constexpr std::int64_t kPoints = 1000;
  constexpr std::int64_t kTilePoints = 256;  // 4 tiles, last one short
  std::vector<double> f = synthetic_state(kPoints);
  const std::vector<lbm::TileDigest> before = lbm::digest_tiles(
      f.data(), kPoints, kPoints, kTilePoints, LiveLayout::kCanonical);
  ASSERT_EQ(before.size(), 4u);

  // Flips on both sides of a tile boundary land in different tiles.
  for (const auto& [point, tile] :
       std::vector<std::pair<std::int64_t, std::size_t>>{
           {255, 0}, {256, 1}, {700, 2}, {999, 3}}) {
    flip_bit(f.data() + 5 * kPoints + point, 13);
    const std::vector<lbm::TileDigest> after = lbm::digest_tiles(
        f.data(), kPoints, kPoints, kTilePoints, LiveLayout::kCanonical);
    for (std::size_t t = 0; t < after.size(); ++t) {
      if (t == tile)
        EXPECT_NE(after[t], before[t]) << "point " << point;
      else
        EXPECT_EQ(after[t], before[t]) << "point " << point;
    }
    flip_bit(f.data() + 5 * kPoints + point, 13);  // restore
  }
}

// ---------------------------------------------------------------------------
// Sentinel: record-then-verify protocol.

namespace {

resilience::SentinelPolicy tile100_policy() {
  resilience::SentinelPolicy p;
  p.enabled = true;
  p.tile_points = 100;
  return p;
}

Sentinel::RankView view_of(const std::vector<double>& f,
                           std::int64_t stride, std::int64_t owned,
                           LiveLayout layout) {
  return {f.data(), stride, owned, layout};
}

}  // namespace

TEST(Sentinel, RecordThenVerifyIsQuietOnCleanState) {
  constexpr std::int64_t kStride = 1050;  // 1000 owned + 50 ghost slots
  constexpr std::int64_t kOwned = 1000;
  std::vector<double> f = synthetic_state(kStride);

  Sentinel sentinel(tile100_policy());
  sentinel.reset(3);
  EXPECT_EQ(sentinel.tiles_of(kOwned), 10);
  EXPECT_FALSE(sentinel.has_record(2));

  sentinel.record(2, view_of(f, kStride, kOwned, LiveLayout::kCanonical), 5);
  EXPECT_TRUE(sentinel.has_record(2));
  EXPECT_FALSE(sentinel.has_record(0));
  EXPECT_EQ(sentinel.recorded_step(2), 5);

  // Ghost slots are legitimately rewritten by every exchange: a flip
  // there must be invisible to the digests.
  flip_bit(f.data() + 3 * kStride + 1010, 21);

  std::vector<Sentinel::Mismatch> mismatches;
  std::int64_t checks = 0, false_positives = 0;
  sentinel.verify(2, view_of(f, kStride, kOwned, LiveLayout::kCanonical),
                  &mismatches, &checks, &false_positives);
  EXPECT_TRUE(mismatches.empty());
  EXPECT_EQ(checks, 10);
  EXPECT_EQ(false_positives, 0);
}

TEST(Sentinel, VerifyLocalizesEachCorruptTile) {
  constexpr std::int64_t kOwned = 1000;
  std::vector<double> f = synthetic_state(kOwned);
  Sentinel sentinel(tile100_policy());
  sentinel.reset(4);
  sentinel.record(1, view_of(f, kOwned, kOwned, LiveLayout::kAAEvenParity),
                  7);

  flip_bit(f.data() + 7 * kOwned + 537, 3);   // tile 5
  flip_bit(f.data() + 0 * kOwned + 123, 60);  // tile 1

  std::vector<Sentinel::Mismatch> mismatches;
  std::int64_t checks = 0, false_positives = 0;
  sentinel.verify(1, view_of(f, kOwned, kOwned, LiveLayout::kAAEvenParity),
                  &mismatches, &checks, &false_positives);
  ASSERT_EQ(mismatches.size(), 2u);
  EXPECT_EQ(mismatches[0].rank, 1);
  EXPECT_EQ(mismatches[0].tile, 1);
  EXPECT_EQ(mismatches[0].recorded_step, 7);
  EXPECT_EQ(mismatches[1].rank, 1);
  EXPECT_EQ(mismatches[1].tile, 5);
  EXPECT_EQ(mismatches[1].recorded_step, 7);
  // The corruption reproduces on the confirming re-digest: a real
  // detection, not a retracted checker glitch.
  EXPECT_EQ(false_positives, 0);
}

TEST(Sentinel, VerifyIsVacuousWithoutAMatchingRecord) {
  constexpr std::int64_t kOwned = 400;
  std::vector<double> f = synthetic_state(kOwned);
  Sentinel sentinel(tile100_policy());
  sentinel.reset(2);

  std::vector<Sentinel::Mismatch> mismatches;
  std::int64_t checks = 0, false_positives = 0;

  // No record at all.
  sentinel.verify(0, view_of(f, kOwned, kOwned, LiveLayout::kCanonical),
                  &mismatches, &checks, &false_positives);
  EXPECT_EQ(checks, 0);

  sentinel.record(0, view_of(f, kOwned, kOwned, LiveLayout::kCanonical), 2);

  // Coverage changed (shrink redistributed points): the record cannot
  // describe this state any more.
  sentinel.verify(0, view_of(f, kOwned, 300, LiveLayout::kCanonical),
                  &mismatches, &checks, &false_positives);
  EXPECT_EQ(checks, 0);

  // Layout changed (AA parity advanced past the record).
  sentinel.verify(0, view_of(f, kOwned, kOwned, LiveLayout::kAAOddParity),
                  &mismatches, &checks, &false_positives);
  EXPECT_EQ(checks, 0);

  // reset() drops every table.
  sentinel.reset(2);
  EXPECT_FALSE(sentinel.has_record(0));
  sentinel.verify(0, view_of(f, kOwned, kOwned, LiveLayout::kCanonical),
                  &mismatches, &checks, &false_positives);
  EXPECT_EQ(checks, 0);
  EXPECT_TRUE(mismatches.empty());
  EXPECT_EQ(false_positives, 0);
}

// ---------------------------------------------------------------------------
// Layout-aware live health scan over a real AA solver, both parities.

TEST(LiveHealthScan, CleanAAStateScansQuietAtBothParities) {
  auto lattice = aa_cylinder();
  lbm::Solver solver(lattice, aa_options());
  const resilience::HealthPolicy health;

  solver.run(2);  // even parity
  ASSERT_EQ(solver.live_layout(), LiveLayout::kAAEvenParity);
  EXPECT_TRUE(resilience::scan_live_health(
                  solver.live_state(), lattice->size(), lattice->size(),
                  solver.live_layout(), health, 0.0, 0.0, 0.0, 2, "solver")
                  .empty());

  solver.run(1);  // odd parity
  ASSERT_EQ(solver.live_layout(), LiveLayout::kAAOddParity);
  EXPECT_TRUE(resilience::scan_live_health(
                  solver.live_state(), lattice->size(), lattice->size(),
                  solver.live_layout(), health, 0.0, 0.0, 0.0, 3, "solver")
                  .empty());
}

TEST(LiveHealthScan, NonFiniteLiveSlotRaisesRS001AtBothParities) {
  for (const int steps : {2, 3}) {  // even and odd parity
    auto lattice = aa_cylinder();
    lbm::Solver solver(lattice, aa_options());
    solver.run(steps);

    // Saturate the exponent of one live slot: set every zero exponent
    // bit, turning the value into Inf/NaN in place.
    const hemo::PointIndex i = lattice->size() / 2;
    const int q = 5;
    const double* row =
        solver.live_state() +
        static_cast<std::size_t>(lbm::live_slot_q(solver.live_layout(), q)) *
            static_cast<std::size_t>(lattice->size());
    std::uint64_t bits = 0;
    std::memcpy(&bits, row + i, sizeof bits);
    for (int bit = 52; bit < 63; ++bit)
      if (((bits >> bit) & 1ull) == 0) solver.corrupt_live_bit(i, q, bit);

    const auto diags = resilience::scan_live_health(
        solver.live_state(), lattice->size(), lattice->size(),
        solver.live_layout(), resilience::HealthPolicy{}, 0.0, 0.0, 0.0,
        steps, "solver");
    EXPECT_TRUE(has_rule(diags, "RS001")) << "parity of step " << steps;
  }
}

TEST(LiveHealthScan, HugeFiniteLiveSlotRaisesRS003) {
  auto lattice = aa_cylinder();
  lbm::Solver solver(lattice, aa_options());
  solver.run(2);

  // Flip the top exponent bit of a moving-direction slot: the value
  // stays finite (exponent < 0x7FF) but becomes ~2^1000, so the point's
  // velocity magnitude blows through the compressibility ceiling while
  // the non-finite scan stays silent.
  const hemo::PointIndex i = lattice->size() / 3;
  const int q = 1;
  const double* row =
      solver.live_state() +
      static_cast<std::size_t>(lbm::live_slot_q(solver.live_layout(), q)) *
          static_cast<std::size_t>(lattice->size());
  const double value = row[i];
  ASSERT_GT(value, 0.0);
  ASSERT_LT(value, 1.0);  // exponent < 0x3FF, so bit 62 is currently 0
  solver.corrupt_live_bit(i, q, 62);
  ASSERT_TRUE(std::isfinite(row[i]));

  const auto diags = resilience::scan_live_health(
      solver.live_state(), lattice->size(), lattice->size(),
      solver.live_layout(), resilience::HealthPolicy{}, 0.0, 0.0, 0.0, 2,
      "solver");
  EXPECT_TRUE(has_rule(diags, "RS003"));
  EXPECT_FALSE(has_rule(diags, "RS001"));
}

TEST(LiveHealthScan, SolverTileDigestsLocalizeAndRoundTripCorruption) {
  auto lattice = aa_cylinder();
  lbm::Solver solver(lattice, aa_options());
  solver.run(3);  // odd parity: the permuted slot mapping is in effect

  constexpr std::int64_t kTilePoints = 64;
  const std::vector<lbm::TileDigest> before =
      solver.tile_digests(kTilePoints);

  const hemo::PointIndex i = lattice->size() / 2;
  solver.corrupt_live_bit(i, 9, 17);
  const std::vector<lbm::TileDigest> after = solver.tile_digests(kTilePoints);
  ASSERT_EQ(after.size(), before.size());
  const std::size_t hit = static_cast<std::size_t>(i / kTilePoints);
  for (std::size_t t = 0; t < after.size(); ++t) {
    if (t == hit)
      EXPECT_NE(after[t], before[t]);
    else
      EXPECT_EQ(after[t], before[t]);
  }

  // Flipping the same bit again restores the exact state.
  solver.corrupt_live_bit(i, 9, 17);
  EXPECT_EQ(solver.tile_digests(kTilePoints), before);
}
