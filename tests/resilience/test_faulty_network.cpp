// FaultyNetwork wire semantics: every fault kind's observable behavior,
// stall hold/flush ordering, pending/drained accounting, reset.

#include "resilience/faulty_network.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "comm/network.hpp"

namespace hemo::resilience {
namespace {

FaultPlan one_event(FaultKind kind, std::int64_t step, Rank src, Rank dst) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = kind;
  e.step = step;
  e.src = src;
  e.dst = dst;
  plan.add(e);
  return plan;
}

TEST(FaultyNetwork, CleanTrafficPassesThrough) {
  FaultyNetwork net(2, FaultPlan{});
  net.begin_step(0);
  net.send(0, 1, {1.0, 2.0});
  EXPECT_EQ(net.pending(1, 0), 1);
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.log().total_injected(), 0);
}

TEST(FaultyNetwork, DropSwallowsTheMessage) {
  FaultyNetwork net(2, one_event(FaultKind::kDrop, 0, 0, 1));
  net.begin_step(0);
  net.send(0, 1, {1.0});
  EXPECT_EQ(net.pending(1, 0), 0);
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
  EXPECT_EQ(net.log().dropped, 1);
  EXPECT_TRUE(net.plan().events()[0].fired);
  // One-shot: a replayed send goes through untouched.
  net.send(0, 1, {2.0});
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{2.0}));
}

TEST(FaultyNetwork, DuplicateDeliversTwice) {
  FaultyNetwork net(2, one_event(FaultKind::kDuplicate, 0, 0, 1));
  net.begin_step(0);
  net.send(0, 1, {3.0, 4.0});
  EXPECT_EQ(net.pending(1, 0), 2);
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{3.0, 4.0}));
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.log().duplicated, 1);
}

TEST(FaultyNetwork, CorruptFlipsExactlyTheMaskedBits) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kCorrupt;
  e.step = 0;
  e.src = 0;
  e.dst = 1;
  e.payload_index = 1;
  e.xor_mask = 1ull;  // flip the lowest mantissa bit of payload[1]
  plan.add(e);
  FaultyNetwork net(2, plan);
  net.begin_step(0);
  net.send(0, 1, {1.0, 2.0, 3.0});
  const std::vector<double> got = net.receive(1, 0);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 1.0);
  EXPECT_EQ(got[2], 3.0);
  std::uint64_t expected_bits = 0, got_bits = 0;
  const double two = 2.0;
  std::memcpy(&expected_bits, &two, sizeof two);
  std::memcpy(&got_bits, &got[1], sizeof got_bits);
  EXPECT_EQ(got_bits, expected_bits ^ 1ull);
  EXPECT_EQ(net.log().corrupted, 1);
}

TEST(FaultyNetwork, DelayReleasesAfterOneFailedPoll) {
  FaultyNetwork net(2, one_event(FaultKind::kDelay, 0, 0, 1));
  net.begin_step(0);
  net.send(0, 1, {5.0});
  // In flight but not yet visible.
  EXPECT_EQ(net.pending(1, 0), 1);
  EXPECT_FALSE(net.drained());
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
  // The failed poll released it onto the wire.
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{5.0}));
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.log().delayed, 1);
}

TEST(FaultyNetwork, DelayedMessageArrivesAfterARetransmit) {
  // The reordering that matters for the solver: the retransmission posted
  // between the failed poll and the retry is consumed first; the original
  // becomes a straggler.
  FaultyNetwork net(2, one_event(FaultKind::kDelay, 0, 0, 1));
  net.begin_step(0);
  net.send(0, 1, {5.0});
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
  net.send(0, 1, {5.0});  // retransmit, same data
  EXPECT_EQ(net.pending(1, 0), 2);
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{5.0}));
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{5.0}));
  EXPECT_TRUE(net.drained());
}

TEST(FaultyNetwork, TruncateShortensThePayload) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kTruncate;
  e.step = 2;
  e.src = 1;
  e.dst = 0;
  e.truncate_by = 2;
  plan.add(e);
  FaultyNetwork net(2, plan);
  net.begin_step(2);
  net.send(1, 0, {1.0, 2.0, 3.0});
  EXPECT_EQ(net.receive(0, 1), (std::vector<double>{1.0}));
  EXPECT_EQ(net.log().truncated, 1);
}

TEST(FaultyNetwork, StallHoldsSendsAndFlushesInOrder) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kStall;
  e.step = 0;
  e.src = 0;
  e.stall_polls = 3;  // the third poll clears the stall and delivers
  plan.add(e);
  FaultyNetwork net(3, plan);
  net.begin_step(0);
  net.send(0, 1, {1.0});  // activates the stall, held
  net.send(0, 2, {2.0});  // held too
  net.send(1, 2, {9.0});  // other ranks unaffected
  EXPECT_EQ(net.pending(1, 0), 1);  // held messages still count as in flight
  EXPECT_EQ(net.pending(2, 0), 1);
  EXPECT_FALSE(net.drained());
  EXPECT_EQ(net.receive(2, 1), (std::vector<double>{9.0}));

  // Two silent polls, then the NIC queue drains in order.
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
  EXPECT_EQ(net.receive(1, 0), (std::vector<double>{1.0}));
  EXPECT_EQ(net.receive(2, 0), (std::vector<double>{2.0}));
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.log().stall_held, 2);
  EXPECT_EQ(net.log().stall_polls, 3);
}

TEST(FaultyNetwork, StallSwallowsRetransmitsFromTheSilentRank) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kStall;
  e.step = 0;
  e.src = 0;
  e.stall_polls = 5;
  plan.add(e);
  FaultyNetwork net(2, plan);
  net.begin_step(0);
  net.send(0, 1, {1.0});
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
  net.send(0, 1, {1.0});  // retransmit while down: held, not delivered
  EXPECT_THROW(net.receive(1, 0), comm::RecvError);
  EXPECT_EQ(net.log().stall_held, 2);
}

TEST(FaultyNetwork, SizeContractStillEnforcedThroughDecorator) {
  FaultyNetwork net(2, one_event(FaultKind::kTruncate, 0, 0, 1));
  net.begin_step(0);
  net.send(0, 1, {1.0, 2.0, 3.0});
  try {
    (void)net.receive(1, 0, 3);  // truncated to 2 values
    FAIL() << "expected RecvError";
  } catch (const comm::RecvError& err) {
    EXPECT_EQ(err.kind(), comm::RecvError::Kind::kWrongSize);
    EXPECT_EQ(err.expected(), 3u);
    EXPECT_EQ(err.got(), 2u);
  }
}

TEST(FaultyNetwork, ResetClearsDelayedAndStallState) {
  FaultPlan plan = one_event(FaultKind::kDelay, 0, 0, 1);
  FaultEvent stall;
  stall.kind = FaultKind::kStall;
  stall.step = 0;
  stall.src = 1;
  stall.stall_polls = 100;
  plan.add(stall);
  FaultyNetwork net(2, plan);
  net.begin_step(0);
  net.send(0, 1, {1.0});  // delayed
  net.send(1, 0, {2.0});  // stall activates, held
  EXPECT_FALSE(net.drained());
  net.reset();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.pending(1, 0), 0);
  EXPECT_EQ(net.pending(0, 1), 0);
  // Post-reset traffic flows normally (the stall is gone and its event
  // already fired).
  net.send(1, 0, {7.0});
  EXPECT_EQ(net.receive(0, 1), (std::vector<double>{7.0}));
}

}  // namespace
}  // namespace hemo::resilience
