// Synthetic aorta tests: anatomy proportions, sparsity (the property the
// paper's load-balance discussion hinges on), connectivity of the fluid
// domain, and inlet/outlet marking.

#include <gtest/gtest.h>

#include <queue>

#include "geom/aorta.hpp"

namespace geom = hemo::geom;
namespace lbm = hemo::lbm;

namespace {

geom::AortaSpec coarse_spec() {
  geom::AortaSpec spec;
  spec.spacing_mm = 1.6;  // very coarse: fast tests
  return spec;
}

}  // namespace

TEST(Aorta, CenterlineCoversFiveVessels) {
  const auto line = geom::aorta_centerline(coarse_spec());
  ASSERT_FALSE(line.empty());
  for (const auto& s : line) EXPECT_GT(s.radius, 0.0);

  // The centerline must span from below the arch (descending outlet) to
  // the branch tips above it.
  double z_min = 1e9, z_max = -1e9;
  for (const auto& s : line) {
    z_min = std::min(z_min, s.position.z);
    z_max = std::max(z_max, s.position.z);
  }
  const geom::AortaSpec spec = coarse_spec();
  EXPECT_LE(z_min, -spec.descending_length + 1.0);
  EXPECT_GE(z_max, spec.ascending_length + spec.arch_radius + 30.0);
}

TEST(Aorta, FluidDomainIsSparseInBoundingBox) {
  auto lattice = geom::make_aorta_lattice(coarse_spec());
  const hemo::Box box = lattice->bounding_box();
  const double fill = static_cast<double>(lattice->size()) /
                      static_cast<double>(box.volume());
  // The paper calls the aorta workload "sparser fluid points than the
  // idealized cylinder": expect well under a third of the box.
  EXPECT_LT(fill, 0.33);
  EXPECT_GT(fill, 0.005);
}

TEST(Aorta, FluidDomainIsConnected) {
  auto lattice = geom::make_aorta_lattice(coarse_spec());
  const auto n = static_cast<std::size_t>(lattice->size());
  std::vector<bool> seen(n, false);
  std::queue<hemo::PointIndex> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const hemo::PointIndex i = frontier.front();
    frontier.pop();
    for (int q = 1; q < lbm::kQ; ++q) {
      const hemo::PointIndex j = lattice->neighbor(q, i);
      if (j == hemo::kSolidNeighbor || seen[static_cast<std::size_t>(j)])
        continue;
      seen[static_cast<std::size_t>(j)] = true;
      ++reached;
      frontier.push(j);
    }
  }
  EXPECT_EQ(reached, n) << "disconnected fluid islands would break flow";
}

TEST(Aorta, HasInletAndBothOutletKinds) {
  auto lattice = geom::make_aorta_lattice(coarse_spec());
  std::int64_t inlet = 0, outlet_hi = 0, outlet_lo = 0;
  for (hemo::PointIndex i = 0; i < lattice->size(); ++i) {
    switch (lattice->node_type(i)) {
      case lbm::NodeType::kVelocityInlet: ++inlet; break;
      case lbm::NodeType::kPressureOutlet: ++outlet_hi; break;
      case lbm::NodeType::kPressureOutletLow: ++outlet_lo; break;
      default: break;
    }
  }
  EXPECT_GT(inlet, 10);      // ascending root cap
  EXPECT_GT(outlet_hi, 10);  // three branch tips
  EXPECT_GT(outlet_lo, 10);  // descending end
  // Inlet area ~ pi * (14 mm / 1.6 mm)^2 ~ 240 voxels at this spacing.
  EXPECT_LT(inlet, 400);
}

TEST(Aorta, BranchTipsFormThreeSeparateOutlets) {
  auto lattice = geom::make_aorta_lattice(coarse_spec());
  const hemo::Box box = lattice->bounding_box();
  // Collect distinct x-clusters on the top plane: expect three branches.
  std::vector<std::int32_t> xs;
  for (hemo::PointIndex i = 0; i < lattice->size(); ++i)
    if (lattice->coord(i).z == box.hi.z - 1)
      xs.push_back(lattice->coord(i).x);
  ASSERT_FALSE(xs.empty());
  std::sort(xs.begin(), xs.end());
  int clusters = 1;
  for (std::size_t k = 1; k < xs.size(); ++k)
    if (xs[k] - xs[k - 1] > 3) ++clusters;
  EXPECT_EQ(clusters, 3);
}

TEST(Aorta, ResolutionScalingGrowsPointCountCubically) {
  geom::AortaSpec coarse = coarse_spec();
  geom::AortaSpec fine = coarse_spec();
  fine.spacing_mm = coarse.spacing_mm / 2.0;
  const auto n_coarse = geom::aorta_points(coarse).size();
  const auto n_fine = geom::aorta_points(fine).size();
  const double ratio =
      static_cast<double>(n_fine) / static_cast<double>(n_coarse);
  // Halving the spacing should multiply fluid points by ~8.
  EXPECT_NEAR(ratio, 8.0, 1.6);
}

TEST(Aorta, DeterministicAcrossCalls) {
  const auto a = geom::aorta_points(coarse_spec());
  const auto b = geom::aorta_points(coarse_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}
