// Cylinder geometry tests: voxel counts vs the analytic cross-section,
// paper parameterisation (84x axial, 8x radius), boundary marking, and
// periodic wiring.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/cylinder.hpp"

namespace geom = hemo::geom;
namespace lbm = hemo::lbm;

TEST(Cylinder, PaperParameterisationDimensions) {
  geom::CylinderSpec spec;
  spec.scale = 2.0;
  EXPECT_EQ(spec.length(), 168);          // 84 * x
  EXPECT_DOUBLE_EQ(spec.radius(), 16.0);  // 8 * x
}

class CylinderVoxelCount : public ::testing::TestWithParam<double> {};

TEST_P(CylinderVoxelCount, ApproachesPiR2L) {
  geom::CylinderSpec spec;
  spec.scale = GetParam();
  spec.axial_per_scale = 8.0;  // shorten the axis to keep tests fast
  const auto points = geom::cylinder_points(spec);
  const double expected = geom::cylinder_point_estimate(spec);
  // Voxelization error is O(perimeter/area) ~ 2/R per slice.
  const double tolerance = 3.0 / spec.radius();
  EXPECT_NEAR(static_cast<double>(points.size()) / expected, 1.0, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Scales, CylinderVoxelCount,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0));

TEST(Cylinder, AllPointsInsideRadius) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.axial_per_scale = 4.0;
  const auto rc = static_cast<std::int32_t>(std::ceil(spec.radius()));
  for (const hemo::Coord& c : geom::cylinder_points(spec)) {
    const double dx = c.x - (rc - 0.5);
    const double dy = c.y - (rc - 0.5);
    EXPECT_LT(dx * dx + dy * dy, spec.radius() * spec.radius());
    EXPECT_GE(c.z, 0);
    EXPECT_LT(c.z, spec.length());
  }
}

TEST(Cylinder, CrossSectionIsIdenticalInEverySlice) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.axial_per_scale = 6.0;
  const auto points = geom::cylinder_points(spec);
  std::vector<std::int64_t> per_slice(static_cast<std::size_t>(spec.length()), 0);
  for (const hemo::Coord& c : points)
    ++per_slice[static_cast<std::size_t>(c.z)];
  for (std::size_t z = 1; z < per_slice.size(); ++z)
    EXPECT_EQ(per_slice[z], per_slice[0]);
}

TEST(Cylinder, InletOutletMarkingCoversEndPlanesOnly) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 4.0;
  spec.axial_per_scale = 10.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
  for (hemo::PointIndex i = 0; i < lattice->size(); ++i) {
    const std::int32_t z = lattice->coord(i).z;
    const lbm::NodeType t = lattice->node_type(i);
    if (z == 0)
      EXPECT_EQ(t, lbm::NodeType::kVelocityInlet);
    else if (z == spec.length() - 1)
      EXPECT_EQ(t, lbm::NodeType::kPressureOutlet);
    else
      EXPECT_EQ(t, lbm::NodeType::kBulk);
  }
}

TEST(Cylinder, PeriodicEndsHaveNoAxialWallLinks) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 3.0;
  spec.axial_per_scale = 5.0;
  auto periodic =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);
  // Direction q = 5 (0,0,1) pulls from below; with periodic wrap, no point
  // may lack that neighbor (the lateral wall only blocks x/y motion).
  for (hemo::PointIndex i = 0; i < periodic->size(); ++i)
    EXPECT_NE(periodic->neighbor(5, i), hemo::kSolidNeighbor);
}

TEST(Cylinder, NonPeriodicEndsBlockAxialNeighbors) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 3.0;
  spec.axial_per_scale = 5.0;
  auto capped =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
  int missing = 0;
  for (hemo::PointIndex i = 0; i < capped->size(); ++i)
    if (capped->coord(i).z == 0 &&
        capped->neighbor(5, i) == hemo::kSolidNeighbor)
      ++missing;
  EXPECT_GT(missing, 0);
}
