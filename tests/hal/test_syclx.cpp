// syclx dialect tests: queue submission, USM, buffers/accessors with
// write-back, nd_range validation, and exception-based error reporting.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hal/syclx.hpp"

namespace sx = hemo::hal::syclx;

TEST(Syclx, UsmRoundTrip) {
  sx::queue q;
  double* d = sx::malloc_device<double>(100, q);
  std::vector<double> host(100);
  std::iota(host.begin(), host.end(), 0.0);
  q.memcpy(d, host.data(), 100 * sizeof(double)).wait();
  std::vector<double> back(100, -1.0);
  q.memcpy(back.data(), d, 100 * sizeof(double)).wait();
  EXPECT_EQ(back, host);
  sx::free(d, q);
}

TEST(Syclx, ParallelForOverRangeExecutesKernel) {
  sx::queue q;
  double* d = sx::malloc_device<double>(64, q);
  q.submit([&](sx::handler& h) {
    h.parallel_for(sx::range<1>(64), [d](sx::id<1> i) {
      d[i] = 3.0 * static_cast<double>(i);
    });
  });
  q.wait();
  std::vector<double> host(64);
  q.memcpy(host.data(), d, 64 * sizeof(double));
  for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(host[i], 3.0 * i);
  sx::free(d, q);
}

TEST(Syclx, ShortcutParallelForMatchesSubmitForm) {
  sx::queue q;
  int* d = sx::malloc_device<int>(32, q);
  q.parallel_for(sx::range<1>(32), [d](sx::id<1> i) {
    d[i] = static_cast<int>(i) + 1;
  });
  std::vector<int> host(32);
  q.memcpy(host.data(), d, 32 * sizeof(int));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(host[i], i + 1);
  sx::free(d, q);
}

TEST(Syclx, NdRangeProvidesGroupDecomposition) {
  sx::queue q;
  int* d = sx::malloc_device<int>(64, q);
  q.submit([&](sx::handler& h) {
    h.parallel_for(sx::nd_range(sx::range<1>(64), sx::range<1>(16)),
                   [d](sx::nd_item it) {
                     d[it.get_global_id(0)] =
                         static_cast<int>(it.get_group(0) * 100 +
                                          it.get_local_id(0));
                   });
  });
  std::vector<int> host(64);
  q.memcpy(host.data(), d, 64 * sizeof(int));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(host[i], (i / 16) * 100 + i % 16);
  sx::free(d, q);
}

TEST(Syclx, InvalidWorkGroupSizeThrows) {
  sx::queue q;
  // 64 global, 24 local: local does not divide global.
  EXPECT_THROW(q.submit([&](sx::handler& h) {
    h.parallel_for(sx::nd_range(sx::range<1>(64), sx::range<1>(24)),
                   [](sx::nd_item) {});
  }),
               sx::exception);
  // Work-group size beyond the device limit.
  EXPECT_THROW(q.submit([&](sx::handler& h) {
    h.parallel_for(sx::nd_range(sx::range<1>(4096), sx::range<1>(2048)),
                   [](sx::nd_item) {});
  }),
               sx::exception);
}

TEST(Syclx, ErrorsAreExceptionsNotCodes) {
  // SYCL reports failures by exception — the semantic difference from
  // CUDA that dominates DPCT's warning count (Table 2 of the paper).
  sx::queue q;
  std::vector<double> a(4), b(4);
  EXPECT_THROW(q.memcpy(a.data(), b.data(), 32), sx::exception);
  EXPECT_THROW(sx::free(a.data(), q), sx::exception);
  EXPECT_THROW(q.memset(a.data(), 0, 32), sx::exception);
}

TEST(Syclx, BufferCopiesInAndWritesBackOnDestruction) {
  std::vector<double> host(16, 1.0);
  {
    sx::buffer<double> buf(host.data(), sx::range<1>(16));
    sx::queue q;
    q.submit([&](sx::handler& h) {
      auto acc = buf.get_access(h, sx::access_mode::read_write);
      h.parallel_for(sx::range<1>(16),
                     [acc](sx::id<1> i) { acc[i] = acc[i] + 2.0; });
    });
  }  // destruction writes back
  for (double v : host) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Syclx, ReadOnlyBufferAccessDoesNotWriteBack) {
  std::vector<double> host(8, 5.0);
  {
    sx::buffer<double> buf(host.data(), sx::range<1>(8));
    sx::queue q;
    q.submit([&](sx::handler& h) {
      auto acc = buf.get_access(h, sx::access_mode::read);
      h.parallel_for(sx::range<1>(8), [acc](sx::id<1> i) {
        (void)acc[i];  // read only
      });
    });
    // Mutate host behind the buffer's back; a read-only buffer must not
    // clobber it on destruction.
    host.assign(8, 7.0);
  }
  for (double v : host) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Syclx, MallocSharedBehavesLikeDevice) {
  sx::queue q;
  double* s = sx::malloc_shared<double>(8, q);
  q.parallel_for(sx::range<1>(8),
                 [s](sx::id<1> i) { s[i] = static_cast<double>(i); });
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(s[i], i);
  sx::free(s, q);
}
