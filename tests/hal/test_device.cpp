// DeviceEngine tests: allocation registry, byte accounting, and the
// parallel_for execution contract (including threaded chunking).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "hal/device.hpp"

using hemo::hal::DeviceEngine;

TEST(DeviceEngine, AllocateTracksOwnershipAndSize) {
  DeviceEngine eng;
  void* p = eng.allocate(128);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(eng.owns(p));
  EXPECT_EQ(eng.allocation_size(p), 128u);
  EXPECT_EQ(eng.live_allocations(), 1u);
  EXPECT_TRUE(eng.deallocate(p));
  EXPECT_FALSE(eng.owns(p));
  EXPECT_EQ(eng.live_allocations(), 0u);
}

TEST(DeviceEngine, DeallocateUnknownPointerFails) {
  DeviceEngine eng;
  int x = 0;
  EXPECT_FALSE(eng.deallocate(&x));
}

TEST(DeviceEngine, ZeroByteAllocationYieldsValidPointer) {
  DeviceEngine eng;
  void* p = eng.allocate(0);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(eng.deallocate(p));
}

TEST(DeviceEngine, CopiesMoveBytesAndCount) {
  DeviceEngine eng;
  void* d = eng.allocate(64);
  std::vector<std::uint8_t> host(64);
  std::iota(host.begin(), host.end(), 0);

  eng.copy_h2d(d, host.data(), 64);
  std::vector<std::uint8_t> back(64, 0);
  eng.copy_d2h(back.data(), d, 64);
  EXPECT_EQ(back, host);

  EXPECT_EQ(eng.counters().bytes_h2d, 64);
  EXPECT_EQ(eng.counters().bytes_d2h, 64);
  eng.deallocate(d);
}

TEST(DeviceEngine, ParallelForVisitsEveryIndexOnce) {
  DeviceEngine eng;
  std::vector<int> hits(1000, 0);
  eng.parallel_for(1000, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(eng.counters().kernel_launches, 1);
  EXPECT_EQ(eng.counters().kernel_indices, 1000);
}

TEST(DeviceEngine, ThreadedChunkingVisitsEveryIndexOnce) {
  DeviceEngine eng;
  eng.set_threads(4);
  std::vector<std::atomic<int>> hits(5000);
  eng.parallel_for(5000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DeviceEngine, EmptyRangeLaunchesButExecutesNothing) {
  DeviceEngine eng;
  bool ran = false;
  eng.parallel_for(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.counters().kernel_launches, 1);
  EXPECT_EQ(eng.counters().kernel_indices, 0);
}

TEST(DeviceEngine, ResetCountersClearsEverything) {
  DeviceEngine eng;
  void* p = eng.allocate(8);
  eng.parallel_for(10, [](std::int64_t) {});
  eng.reset_counters();
  EXPECT_EQ(eng.counters().allocations, 0);
  EXPECT_EQ(eng.counters().kernel_launches, 0);
  EXPECT_EQ(eng.counters().kernel_indices, 0);
  eng.deallocate(p);
}
