// cudax dialect tests: CUDA-style error-code semantics, memory API
// behaviour, launch geometry validation, and kernel execution.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hal/cudax.hpp"

TEST(Cudax, MallocMemcpyRoundTrip) {
  void* d = nullptr;
  ASSERT_EQ(cudaxMalloc(&d, 256), cudaxSuccess);
  std::vector<std::uint8_t> host(256);
  std::iota(host.begin(), host.end(), 0);
  ASSERT_EQ(cudaxMemcpy(d, host.data(), 256, cudaxMemcpyHostToDevice),
            cudaxSuccess);
  std::vector<std::uint8_t> back(256, 0);
  ASSERT_EQ(cudaxMemcpy(back.data(), d, 256, cudaxMemcpyDeviceToHost),
            cudaxSuccess);
  EXPECT_EQ(back, host);
  EXPECT_EQ(cudaxFree(d), cudaxSuccess);
}

TEST(Cudax, MallocNullArgumentReturnsInvalidValue) {
  EXPECT_EQ(cudaxMalloc(nullptr, 8), cudaxErrorInvalidValue);
  // Error-code reporting (not exceptions) is the CUDA idiom that
  // generates most DPCT warnings during porting.
  EXPECT_EQ(cudaxGetLastError(), cudaxErrorInvalidValue);
  EXPECT_EQ(cudaxGetLastError(), cudaxSuccess);  // sticky error cleared
}

TEST(Cudax, FreeingHostPointerFails) {
  int x = 0;
  EXPECT_EQ(cudaxFree(&x), cudaxErrorInvalidDevicePointer);
}

TEST(Cudax, FreeingNullptrIsANoOpSuccess) {
  EXPECT_EQ(cudaxFree(nullptr), cudaxSuccess);
}

TEST(Cudax, MemcpyToNonDevicePointerFails) {
  std::vector<double> host(4, 0.0), src(4, 1.0);
  EXPECT_EQ(cudaxMemcpy(host.data(), src.data(), 32, cudaxMemcpyHostToDevice),
            cudaxErrorInvalidDevicePointer);
}

TEST(Cudax, LaunchExecutesGridTimesBlockThreads) {
  void* d = nullptr;
  ASSERT_EQ(cudaxMalloc(&d, 1024 * sizeof(int)), cudaxSuccess);
  auto* out = static_cast<int*>(d);
  const std::int64_t n = 1000;
  ASSERT_EQ(cudaxLaunchKernel(dim3x(4), dim3x(256),
                              [out, n](std::int64_t i) {
                                if (i >= n) return;  // CUDA-style tail guard
                                out[i] = static_cast<int>(2 * i);
                              }),
            cudaxSuccess);
  ASSERT_EQ(cudaxDeviceSynchronize(), cudaxSuccess);
  std::vector<int> host(1000);
  ASSERT_EQ(cudaxMemcpy(host.data(), d, 1000 * sizeof(int),
                        cudaxMemcpyDeviceToHost),
            cudaxSuccess);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(host[i], 2 * i);
  cudaxFree(d);
}

TEST(Cudax, LaunchRejectsInvalidGeometry) {
  auto noop = [](std::int64_t) {};
  EXPECT_EQ(cudaxLaunchKernel(dim3x(0), dim3x(128), noop),
            cudaxErrorInvalidConfiguration);
  EXPECT_EQ(cudaxLaunchKernel(dim3x(1), dim3x(2048), noop),
            cudaxErrorInvalidConfiguration);
  EXPECT_EQ(cudaxGetLastError(), cudaxErrorInvalidConfiguration);
}

TEST(Cudax, ManagedMemoryBehavesLikeDeviceMemory) {
  void* m = nullptr;
  ASSERT_EQ(cudaxMallocManaged(&m, 64), cudaxSuccess);
  EXPECT_EQ(cudaxMemPrefetchAsync(m, 64, 0, 0), cudaxSuccess);
  EXPECT_EQ(cudaxMemset(m, 0xAB, 64), cudaxSuccess);
  std::vector<std::uint8_t> host(64);
  ASSERT_EQ(cudaxMemcpy(host.data(), m, 64, cudaxMemcpyDeviceToHost),
            cudaxSuccess);
  for (auto b : host) EXPECT_EQ(b, 0xAB);
  cudaxFree(m);
}

TEST(Cudax, MemcpyToSymbolWritesDeviceConstant) {
  // Symbols are device-resident constant blocks (lattice weights in the
  // HARVEY corpus); cudaxMemcpyToSymbol stages host data into them.
  void* symbol = nullptr;
  ASSERT_EQ(cudaxMalloc(&symbol, 19 * sizeof(double)), cudaxSuccess);
  std::vector<double> weights(19, 1.0 / 19.0);
  ASSERT_EQ(cudaxMemcpyToSymbol(symbol, weights.data(), 19 * sizeof(double)),
            cudaxSuccess);
  std::vector<double> back(19, 0.0);
  ASSERT_EQ(cudaxMemcpy(back.data(), symbol, 19 * sizeof(double),
                        cudaxMemcpyDeviceToHost),
            cudaxSuccess);
  EXPECT_EQ(back, weights);
  cudaxFree(symbol);
}

TEST(Cudax, StreamsCreateAndSynchronize) {
  cudaxStream_t s = 0;
  ASSERT_EQ(cudaxStreamCreate(&s), cudaxSuccess);
  EXPECT_NE(s, 0u);
  void* d = nullptr;
  ASSERT_EQ(cudaxMalloc(&d, 16), cudaxSuccess);
  std::vector<std::uint8_t> host(16, 7);
  EXPECT_EQ(cudaxMemcpyAsync(d, host.data(), 16, cudaxMemcpyHostToDevice, s),
            cudaxSuccess);
  EXPECT_EQ(cudaxStreamSynchronize(s), cudaxSuccess);
  EXPECT_EQ(cudaxStreamDestroy(s), cudaxSuccess);
  cudaxFree(d);
}
