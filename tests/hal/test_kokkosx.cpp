// kokkosx dialect tests: View lifecycle, deep_copy staging, parallel
// dispatch, per-backend memory spaces, and the constant-view
// initialization idiom from the paper's Section 7.3.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hal/kokkosx.hpp"

namespace kx = hemo::hal::kokkosx;
using hemo::hal::Backend;

namespace {

/// Initializes/finalizes the kokkosx runtime around each test.
class KokkosxTest : public ::testing::Test {
 protected:
  void SetUp() override { kx::initialize(Backend::kCuda); }
  void TearDown() override { kx::finalize(); }
};

}  // namespace

TEST_F(KokkosxTest, ViewAllocatesDeviceMemoryWithLabel) {
  kx::View<double*> v("distributions", 100);
  EXPECT_TRUE(v.is_allocated());
  EXPECT_EQ(v.extent(0), 100u);
  EXPECT_EQ(v.label(), "distributions");
  EXPECT_NE(v.data(), nullptr);
  EXPECT_TRUE(hemo::hal::DeviceEngine::instance().owns(v.data()));
}

TEST_F(KokkosxTest, HostMirrorLivesOutsideTheEngine) {
  kx::View<double*> v("x", 10);
  auto mirror = kx::create_mirror_view(v);
  EXPECT_EQ(mirror.extent(0), 10u);
  EXPECT_FALSE(hemo::hal::DeviceEngine::instance().owns(mirror.data()));
}

TEST_F(KokkosxTest, DeepCopyStagesHostDataToDeviceAndBack) {
  kx::View<double*> dev("dev", 50);
  auto host = kx::create_mirror_view(dev);
  for (std::size_t i = 0; i < 50; ++i) host(i) = static_cast<double>(i * i);
  kx::deep_copy(dev, host);

  auto back = kx::create_mirror_view(dev);
  kx::deep_copy(back, dev);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(back(i), static_cast<double>(i * i));
}

TEST_F(KokkosxTest, DeepCopyFillsWithScalar) {
  kx::View<double*, kx::HostSpace> v("v", 16);
  kx::deep_copy(v, 2.5);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(v(i), 2.5);
}

TEST_F(KokkosxTest, ParallelForUsesParenthesisAccess) {
  kx::View<double*> v("v", 128);
  kx::parallel_for("fill", kx::RangePolicy(0, 128),
                   [v](std::int64_t i) { v(static_cast<std::size_t>(i)) = 2.0 * i; });
  kx::fence();
  auto host = kx::create_mirror_view(v);
  kx::deep_copy(host, v);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_DOUBLE_EQ(host(i), 2.0 * i);
}

TEST_F(KokkosxTest, RangePolicyOffsetsAreRespected) {
  kx::View<int*, kx::HostSpace> v("v", 10);
  kx::deep_copy(v, 0);
  kx::parallel_for(kx::RangePolicy(3, 7),
                   [v](std::int64_t i) { v(static_cast<std::size_t>(i)) = 1; });
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(v(i), (i >= 3 && i < 7) ? 1 : 0);
}

TEST_F(KokkosxTest, ParallelReduceSums) {
  kx::View<double*> v("v", 100);
  kx::parallel_for(kx::RangePolicy(0, 100),
                   [v](std::int64_t i) { v(static_cast<std::size_t>(i)) = 1.0; });
  double total = 0.0;
  kx::parallel_reduce("mass", kx::RangePolicy(0, 100),
                      [v](std::int64_t i, double& sum) {
                        sum += v(static_cast<std::size_t>(i));
                      },
                      total);
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST_F(KokkosxTest, RawPointerLaunchIdiomWorks) {
  // The paper's trick for reusing CUDA kernel bodies: pass view.data()
  // through the launch interface instead of capturing the view.
  kx::View<double*> v("v", 64);
  double* raw = v.data();
  kx::parallel_for(kx::RangePolicy(0, 64),
                   [raw](std::int64_t i) { raw[i] = 7.0; });
  auto host = kx::create_mirror_view(v);
  kx::deep_copy(host, v);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(host(i), 7.0);
}

TEST_F(KokkosxTest, ConstViewInitializationRequiresStaging) {
  // deep_copy into View<const T*> is a compile error (static_assert), so
  // constant lattice data is staged through a non-const view and the
  // const view aliases it — the exact workaround described in the paper.
  kx::View<double*> staging("weights_staging", 19);
  auto host = kx::create_mirror_view(staging);
  for (std::size_t q = 0; q < 19; ++q) host(q) = 1.0 / 19.0;
  kx::deep_copy(staging, host);

  kx::View<const double*> weights = staging;  // aliasing, no copy
  EXPECT_EQ(weights.data(), staging.data());
  EXPECT_DOUBLE_EQ(weights(7), 1.0 / 19.0);
}

TEST_F(KokkosxTest, ViewsAreReferenceCountedLikeKokkos) {
  auto& eng = hemo::hal::DeviceEngine::instance();
  const std::size_t live_before = eng.live_allocations();
  {
    kx::View<double*> a("a", 32);
    kx::View<double*> b = a;  // shared ownership
    EXPECT_EQ(a.data(), b.data());
    EXPECT_EQ(eng.live_allocations(), live_before + 1);
  }
  EXPECT_EQ(eng.live_allocations(), live_before);
}

TEST(KokkosxRuntime, BackendSelectionIsVisible) {
  kx::initialize(Backend::kHip);
  EXPECT_TRUE(kx::is_initialized());
  EXPECT_EQ(kx::current_backend(), Backend::kHip);
  kx::finalize();
  EXPECT_FALSE(kx::is_initialized());
}

TEST(KokkosxRuntime, MemorySpaceNamesMatchKokkosSpelling) {
  EXPECT_STREQ(kx::CudaSpace::name, "CudaSpace");
  EXPECT_STREQ(kx::HIPSpace::name, "HIPSpace");
  EXPECT_STREQ(kx::Experimental::SYCLDeviceUSMSpace::name,
               "SYCLDeviceUSMSpace");
  EXPECT_FALSE(kx::CudaSpace::is_host);
  EXPECT_TRUE(kx::HostSpace::is_host);
}

TEST(KokkosxRuntime, DispatchWithoutInitializeAborts) {
  EXPECT_DEATH(kx::parallel_for(kx::RangePolicy(0, 1), [](std::int64_t) {}),
               "Precondition");
}
