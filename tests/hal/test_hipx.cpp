// hipx dialect tests: the API must mirror cudax exactly (the property
// HIPify-perl relies on), with identical functional behaviour.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hal/hipx.hpp"

TEST(Hipx, MallocMemcpyRoundTrip) {
  void* d = nullptr;
  ASSERT_EQ(hipxMalloc(&d, 128), hipxSuccess);
  std::vector<std::uint8_t> host(128);
  std::iota(host.begin(), host.end(), 1);
  ASSERT_EQ(hipxMemcpy(d, host.data(), 128, hipxMemcpyHostToDevice),
            hipxSuccess);
  std::vector<std::uint8_t> back(128, 0);
  ASSERT_EQ(hipxMemcpy(back.data(), d, 128, hipxMemcpyDeviceToHost),
            hipxSuccess);
  EXPECT_EQ(back, host);
  EXPECT_EQ(hipxFree(d), hipxSuccess);
}

TEST(Hipx, ErrorCodesMirrorCudax) {
  // The numeric values must match so that regex-ported error handling
  // keeps working unchanged.
  EXPECT_EQ(static_cast<int>(hipxSuccess), static_cast<int>(cudaxSuccess));
  EXPECT_EQ(static_cast<int>(hipxErrorInvalidValue),
            static_cast<int>(cudaxErrorInvalidValue));
  EXPECT_EQ(static_cast<int>(hipxErrorMemoryAllocation),
            static_cast<int>(cudaxErrorMemoryAllocation));
  EXPECT_EQ(static_cast<int>(hipxErrorInvalidDevicePointer),
            static_cast<int>(cudaxErrorInvalidDevicePointer));
  EXPECT_EQ(static_cast<int>(hipxMemcpyHostToDevice),
            static_cast<int>(cudaxMemcpyHostToDevice));
}

TEST(Hipx, ErrorStringsMatchCudaxBehaviour) {
  EXPECT_STREQ(hipxGetErrorString(hipxErrorInvalidValue),
               cudaxGetErrorString(cudaxErrorInvalidValue));
}

TEST(Hipx, LaunchExecutesKernel) {
  void* d = nullptr;
  ASSERT_EQ(hipxMalloc(&d, 512 * sizeof(float)), hipxSuccess);
  auto* out = static_cast<float*>(d);
  ASSERT_EQ(hipxLaunchKernel(dim3x(2), dim3x(256),
                             [out](std::int64_t i) {
                               out[i] = static_cast<float>(i) * 0.5f;
                             }),
            hipxSuccess);
  ASSERT_EQ(hipxDeviceSynchronize(), hipxSuccess);
  std::vector<float> host(512);
  ASSERT_EQ(hipxMemcpy(host.data(), d, 512 * sizeof(float),
                       hipxMemcpyDeviceToHost),
            hipxSuccess);
  for (int i = 0; i < 512; ++i) EXPECT_FLOAT_EQ(host[i], i * 0.5f);
  hipxFree(d);
}

TEST(Hipx, DeviceMemoryInteroperatesWithCudax) {
  // Both dialects drive the same device engine, so a buffer allocated via
  // hipx is a valid device pointer for cudax — mirroring how HIP on
  // NVIDIA hardware is a thin layer over the CUDA runtime.
  void* d = nullptr;
  ASSERT_EQ(hipxMalloc(&d, 64), hipxSuccess);
  std::vector<std::uint8_t> host(64, 9);
  EXPECT_EQ(cudaxMemcpy(d, host.data(), 64, cudaxMemcpyHostToDevice),
            cudaxSuccess);
  EXPECT_EQ(hipxFree(d), hipxSuccess);
}

TEST(Hipx, PrefetchAndManagedMemoryWork) {
  void* m = nullptr;
  ASSERT_EQ(hipxMallocManaged(&m, 32), hipxSuccess);
  EXPECT_EQ(hipxMemPrefetchAsync(m, 32, 0, 0), hipxSuccess);
  EXPECT_EQ(hipxMemset(m, 3, 32), hipxSuccess);
  hipxFree(m);
}

TEST(Hipx, MemcpyToSymbolMatchesCudaxSemantics) {
  void* symbol = nullptr;
  ASSERT_EQ(hipxMalloc(&symbol, 8), hipxSuccess);
  const double v = 42.0;
  EXPECT_EQ(hipxMemcpyToSymbol(symbol, &v, sizeof v), hipxSuccess);
  double back = 0.0;
  EXPECT_EQ(hipxMemcpy(&back, symbol, sizeof back, hipxMemcpyDeviceToHost),
            hipxSuccess);
  EXPECT_DOUBLE_EQ(back, 42.0);
  hipxFree(symbol);
}
