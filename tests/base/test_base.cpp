// Base utility tests: geometry primitives, the deterministic RNG, the
// table formatter, and the contract macros.

#include <gtest/gtest.h>

#include <sstream>

#include "base/contracts.hpp"
#include "base/rng.hpp"
#include "base/table.hpp"
#include "base/types.hpp"

using namespace hemo;

TEST(Types, BoxVolumeAndContainment) {
  const Box box{{0, 0, 0}, {2, 3, 4}};
  EXPECT_EQ(box.volume(), 24);
  EXPECT_TRUE(box.contains({0, 0, 0}));
  EXPECT_TRUE(box.contains({1, 2, 3}));
  EXPECT_FALSE(box.contains({2, 0, 0}));  // hi is exclusive
  EXPECT_FALSE(box.contains({-1, 0, 0}));
}

TEST(Types, LongestAxisBreaksTiesLow) {
  EXPECT_EQ((Box{{0, 0, 0}, {5, 3, 3}}).longest_axis(), 0);
  EXPECT_EQ((Box{{0, 0, 0}, {3, 5, 3}}).longest_axis(), 1);
  EXPECT_EQ((Box{{0, 0, 0}, {3, 3, 5}}).longest_axis(), 2);
  EXPECT_EQ((Box{{0, 0, 0}, {4, 4, 4}}).longest_axis(), 0);
}

TEST(Types, Vec3Algebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ((a + b).z, 9.0);
  EXPECT_DOUBLE_EQ((b - a).x, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 14.0);
}

TEST(Types, CoordHashSpreadsNearbyPoints) {
  const CoordHash hash;
  // Collision-free over a small dense block (sanity, not a guarantee).
  std::vector<std::size_t> seen;
  for (int z = 0; z < 8; ++z)
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x) seen.push_back(hash(Coord{x, y, z}));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Rng, DeterministicAcrossInstances) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDecorrelate) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBounds) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, MeanOfUniformIsCentered) {
  SplitMix64 rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Table, AlignedOutputPadsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::ostringstream os;
  t.print_aligned(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a       long_header"), std::string::npos);
  EXPECT_NE(out.find("longer  2"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialFields) {
  Table t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumTrimsTrailingZeros) {
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  EXPECT_EQ(Table::num(2.0, 3), "2");
  EXPECT_EQ(Table::num(0.125, 3), "0.125");
  EXPECT_EQ(Table::num(1234.0, 0), "1234");
}

TEST(Table, RowArityIsEnforced) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "Precondition");
}

TEST(Contracts, ExpectsAbortsWithDiagnostic) {
  EXPECT_DEATH(HEMO_EXPECTS(1 == 2), "Precondition violation");
  EXPECT_DEATH(HEMO_ENSURES(false), "Postcondition violation");
}
