// Message-passing substrate tests: matched send/receive semantics, FIFO
// ordering per pair, the traffic ledger, and misuse detection.

#include <gtest/gtest.h>

#include "comm/network.hpp"

namespace comm = hemo::comm;

TEST(Network, SendReceiveRoundTrip) {
  comm::Network net(2);
  net.send(0, 1, {1.0, 2.0, 3.0});
  const std::vector<double> got = net.receive(1, 0);
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(net.drained());
}

TEST(Network, FifoOrderPerOrderedPair) {
  comm::Network net(2);
  net.send(0, 1, {1.0});
  net.send(0, 1, {2.0});
  net.send(1, 0, {9.0});
  EXPECT_DOUBLE_EQ(net.receive(1, 0)[0], 1.0);
  EXPECT_DOUBLE_EQ(net.receive(1, 0)[0], 2.0);
  EXPECT_DOUBLE_EQ(net.receive(0, 1)[0], 9.0);
  EXPECT_TRUE(net.drained());
}

TEST(Network, PairsAreIndependentChannels) {
  comm::Network net(3);
  net.send(0, 2, {7.0});
  net.send(1, 2, {8.0});
  // Receive in the opposite order of posting.
  EXPECT_DOUBLE_EQ(net.receive(2, 1)[0], 8.0);
  EXPECT_DOUBLE_EQ(net.receive(2, 0)[0], 7.0);
}

TEST(Network, LedgerRecordsEveryMessageWithBytes) {
  comm::Network net(2);
  net.send(0, 1, std::vector<double>(10, 0.0));
  net.send(1, 0, std::vector<double>(3, 0.0));
  (void)net.receive(1, 0);
  (void)net.receive(0, 1);

  ASSERT_EQ(net.message_count(), 2);
  EXPECT_EQ(net.ledger()[0].src, 0);
  EXPECT_EQ(net.ledger()[0].dst, 1);
  EXPECT_EQ(net.ledger()[0].bytes, 80);
  EXPECT_EQ(net.ledger()[1].bytes, 24);
  EXPECT_EQ(net.total_bytes(), 104);

  net.clear_ledger();
  EXPECT_EQ(net.message_count(), 0);
}

TEST(Network, DrainedReflectsInFlightMessages) {
  comm::Network net(2);
  EXPECT_TRUE(net.drained());
  net.send(0, 1, {1.0});
  EXPECT_FALSE(net.drained());
  (void)net.receive(1, 0);
  EXPECT_TRUE(net.drained());
}

// A missing message is a communication fault, not a programmer error: it
// must surface as a typed, recoverable exception so the resilient halo
// exchange can retransmit — never terminate the process.
TEST(Network, ReceiveWithoutSendThrowsRecvError) {
  comm::Network net(2);
  try {
    (void)net.receive(1, 0);
    FAIL() << "receive of a missing message must throw";
  } catch (const comm::RecvError& err) {
    EXPECT_EQ(err.kind(), comm::RecvError::Kind::kMissing);
    EXPECT_EQ(err.src(), 0);
    EXPECT_EQ(err.dst(), 1);
  }
  EXPECT_TRUE(net.drained());  // the failed receive did not corrupt state
}

TEST(Network, ReceiveWithSizeContractAcceptsMatchingMessage) {
  comm::Network net(2);
  net.send(0, 1, {1.0, 2.0});
  EXPECT_EQ(net.receive(1, 0, 2), (std::vector<double>{1.0, 2.0}));
}

TEST(Network, MismatchedReceiveThrowsInsteadOfTerminating) {
  comm::Network net(2);
  net.send(0, 1, {1.0, 2.0, 3.0});
  try {
    (void)net.receive(1, 0, 5);
    FAIL() << "mis-sized message must throw";
  } catch (const comm::RecvError& err) {
    EXPECT_EQ(err.kind(), comm::RecvError::Kind::kWrongSize);
    EXPECT_EQ(err.expected(), 5u);
    EXPECT_EQ(err.got(), 3u);
  }
  // The unusable message was consumed, so a retransmission arrives on a
  // clean channel.
  EXPECT_EQ(net.pending(1, 0), 0);
  net.send(0, 1, std::vector<double>(5, 4.0));
  EXPECT_EQ(net.receive(1, 0, 5).size(), 5u);
}

TEST(Network, SelfSendAborts) {
  comm::Network net(2);
  EXPECT_DEATH(net.send(1, 1, {1.0}), "Precondition");
}

TEST(Network, OutOfRangeRankAborts) {
  comm::Network net(2);
  EXPECT_DEATH(net.send(0, 5, {1.0}), "Precondition");
  EXPECT_DEATH(net.send(-1, 0, {1.0}), "Precondition");
}

TEST(Network, EmptyPayloadIsAValidMessage) {
  comm::Network net(2);
  net.send(0, 1, {});
  EXPECT_TRUE(net.receive(1, 0).empty());
  EXPECT_EQ(net.total_bytes(), 0);
}
