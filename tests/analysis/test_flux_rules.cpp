// MT rule tests: each seeded-defect fixture fires exactly its rule, the
// matching clean fixture stays silent, and the full checked-in corpora
// audit reports zero findings (the ctest/CI gate in unit-test form).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/flux_rules.hpp"

namespace analysis = hemo::analysis;
namespace port = hemo::port;
using hemo::perf::ModelParams;

namespace {

std::set<std::string> rule_ids(const std::vector<analysis::Diagnostic>& ds) {
  std::set<std::string> ids;
  for (const analysis::Diagnostic& d : ds) ids.insert(d.rule_id);
  return ids;
}

std::vector<analysis::Diagnostic> audit_fixture(const std::string& content,
                                                const ModelParams& params) {
  return analysis::audit_traffic(
      "fixture",
      analysis::extract_kernel_profiles(
          {analysis::FluxSource{"fixture/kernels.h", content}}),
      params);
}

// The canonical clean hot loop: 19 SoA loads + 19 SoA stores = 304 B.
const char* kCleanStreamCollide = R"(
struct StreamCollideKernel {
  void operator()(int i, int n) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q) f[q] = f_in[q * n + i];
    for (int q = 0; q < kQ; ++q) f_out[q * n + i] = f[q];
  }
};
)";

}  // namespace

TEST(FluxRules, CleanHotLoopFixtureIsSilent) {
  EXPECT_TRUE(audit_fixture(kCleanStreamCollide, ModelParams{}).empty());
}

TEST(FluxRules, MT001FiresOnShortWritePass) {
  // 19 loads but only 18 stores: 296 B/point against the model's 304.
  const auto ds = audit_fixture(R"(
struct StreamCollideKernel {
  void operator()(int i, int n) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q) f[q] = f_in[q * n + i];
    for (int q = 0; q < 18; ++q) f_out[q * n + i] = f[q];
  }
};
)",
                                ModelParams{});
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.front().rule_id, "MT001");
  EXPECT_EQ(ds.front().severity, analysis::Severity::kError);
  EXPECT_NE(ds.front().message.find("296"), std::string::npos);
  EXPECT_NE(ds.front().message.find("304"), std::string::npos);
}

TEST(FluxRules, MT002FiresOnAoSHotLoop) {
  // Full 304 B moved (MT001 silent) but with the 19-element thread stride.
  const auto ds = audit_fixture(R"(
struct StreamCollideKernel {
  void operator()(int i, int n) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q) f[q] = f_in[i * kQ + q];
    for (int q = 0; q < kQ; ++q) f_out[i * kQ + q] = f[q];
  }
};
)",
                                ModelParams{});
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.front().rule_id, "MT002");
}

TEST(FluxRules, MT003FiresOnRedundantReload) {
  // The kernel re-reads f_in instead of caching it: 38 loads/point.  The
  // model parameter is widened so MT001 stays silent and the fixture
  // isolates the re-load rule.
  ModelParams params;
  params.bytes_per_point = (38.0 + 19.0) * 8.0;
  const auto ds = audit_fixture(R"(
struct StreamCollideKernel {
  void operator()(int i, int n) const {
    for (int q = 0; q < kQ; ++q) {
      f_out[q * n + i] = f_in[q * n + i] + f_in[q * n + i] * 0.5;
    }
  }
};
)",
                                params);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.front().rule_id, "MT003");
  EXPECT_NE(ds.front().message.find("38"), std::string::npos);
}

TEST(FluxRules, MT004FiresOnSplitLaunchSequence) {
  const std::vector<analysis::FluxSource> sources = {
      {"fixture/streaming.cpp", "launch(StreamOnlyKernel{}, args);\n"},
      {"fixture/collision.cpp", "launch(CollideOnlyKernel{}, args);\n"},
      {"fixture/driver.cpp",
       "launch(StreamOnlyKernel{}, args);\n"
       "launch(CollideOnlyKernel{}, args);\n"},
  };
  const auto ds = analysis::audit_launch_fusion(sources);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.front().rule_id, "MT004");
  EXPECT_EQ(ds.front().file, "fixture/driver.cpp");
  EXPECT_EQ(ds.front().line, 2);
}

TEST(FluxRules, MT004IgnoresTheKernelDefinitionHeader) {
  const std::vector<analysis::FluxSource> sources = {
      {"fixture/kernels.h",
       "struct StreamOnlyKernel {};\nstruct CollideOnlyKernel {};\n"}};
  EXPECT_TRUE(analysis::audit_launch_fusion(sources).empty());
}

TEST(FluxRules, MT005FiresOnOverwidePackPayload) {
  // Two doubles per halo value: 80 B/surface point against the model's 40.
  const auto ds = audit_fixture(R"(
struct PackHaloKernel {
  void operator()(int k) const {
    send[2 * k] = f[indices[k]];
    send[2 * k + 1] = f[indices[k]];
  }
};
)",
                                ModelParams{});
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.front().rule_id, "MT005");
  EXPECT_NE(ds.front().message.find("80"), std::string::npos);
}

TEST(FluxRules, MT005CleanPackFixtureIsSilent) {
  EXPECT_TRUE(audit_fixture(R"(
struct PackHaloKernel {
  void operator()(int k) const {
    send[k] = f[indices[k]];
  }
};
)",
                            ModelParams{})
                  .empty());
}

TEST(FluxRules, MT006FiresOnDialectDivergence) {
  const auto profiles_of = [](const char* body) {
    return analysis::extract_kernel_profiles(
        {analysis::FluxSource{"fixture/kernels.h", body}});
  };
  const auto ds = analysis::audit_dialect_divergence(
      {{"alpha", profiles_of(kCleanStreamCollide)},
       {"beta", profiles_of(R"(
struct StreamCollideKernel {
  void operator()(int i, int n) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q) f[q] = f_in[q * n + i];
    for (int q = 0; q < 18; ++q) f_out[q * n + i] = f[q];
  }
};
)")}});
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.front().rule_id, "MT006");
  EXPECT_NE(ds.front().message.find("beta"), std::string::npos);
  EXPECT_NE(ds.front().message.find("alpha"), std::string::npos);
}

TEST(FluxRules, MT006AgreementIsSilent) {
  const auto profiles_of = [](const char* body) {
    return analysis::extract_kernel_profiles(
        {analysis::FluxSource{"fixture/kernels.h", body}});
  };
  EXPECT_TRUE(analysis::audit_dialect_divergence(
                  {{"alpha", profiles_of(kCleanStreamCollide)},
                   {"beta", profiles_of(kCleanStreamCollide)}})
                  .empty());
}

TEST(FluxRules, CheckedInCorporaAreTrafficClean) {
  // The unit-test form of the `hemo_lint --flux all` gate: all four
  // dialect corpora plus the cross-dialect comparison report nothing.
  EXPECT_TRUE(analysis::audit_all_corpora(ModelParams{}).empty());
}

TEST(FluxRules, PerDialectAuditIsCleanToo) {
  for (const port::CorpusDialect dialect :
       {port::CorpusDialect::kCudax, port::CorpusDialect::kHipx,
        port::CorpusDialect::kSyclx, port::CorpusDialect::kKokkosx}) {
    EXPECT_TRUE(
        analysis::audit_corpus_traffic(dialect, ModelParams{}).empty())
        << static_cast<int>(dialect);
  }
}
