// Baseline suppression tests: the emit -> rerun round trip yields zero
// findings, matching ignores line numbers but respects multiset counts,
// and the file format survives a parse/re-emit cycle byte-identically.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/diagnostics.hpp"

namespace analysis = hemo::analysis;

namespace {

analysis::Diagnostic diag(const std::string& rule, const std::string& file,
                          int line, const std::string& message) {
  analysis::Diagnostic d;
  d.rule_id = rule;
  d.severity = analysis::Severity::kWarning;
  d.file = file;
  d.line = line;
  d.message = message;
  return d;
}

std::vector<analysis::Diagnostic> sample_findings() {
  return {
      diag("MT001", "cudax/kernels.h", 10, "derived 296 B, model 304"),
      diag("CC001", "rt/executor.cpp", 42, "count_ written without mu_"),
      diag("CC001", "rt/executor.cpp", 77, "count_ written without mu_"),
  };
}

}  // namespace

TEST(Baseline, EmitThenRerunYieldsZeroFindings) {
  const auto findings = sample_findings();
  const std::string baseline = analysis::write_baseline(findings);
  const auto remaining =
      analysis::apply_baseline(findings, analysis::parse_baseline(baseline));
  EXPECT_TRUE(remaining.empty());
}

TEST(Baseline, NewFindingsSurviveSuppression) {
  auto findings = sample_findings();
  const std::string baseline = analysis::write_baseline(findings);
  findings.push_back(diag("MT005", "hipx/kernels.h", 3, "80 B, model 40"));
  const auto remaining =
      analysis::apply_baseline(findings, analysis::parse_baseline(baseline));
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining.front().rule_id, "MT005");
}

TEST(Baseline, MatchingIgnoresLineNumbers) {
  // An unrelated edit above a finding moves its line; the baseline entry
  // must keep cancelling it.
  const std::string baseline = analysis::write_baseline(sample_findings());
  auto moved = sample_findings();
  for (analysis::Diagnostic& d : moved) d.line += 100;
  EXPECT_TRUE(
      analysis::apply_baseline(moved, analysis::parse_baseline(baseline))
          .empty());
}

TEST(Baseline, SuppressionIsMultisetNotSet) {
  // Two identical findings, one baseline entry: exactly one survives.
  const std::vector<analysis::Diagnostic> once = {
      diag("CC001", "rt/executor.cpp", 42, "count_ written without mu_")};
  const std::string baseline = analysis::write_baseline(once);
  const std::vector<analysis::Diagnostic> twice = {
      diag("CC001", "rt/executor.cpp", 42, "count_ written without mu_"),
      diag("CC001", "rt/executor.cpp", 77, "count_ written without mu_")};
  const auto remaining =
      analysis::apply_baseline(twice, analysis::parse_baseline(baseline));
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining.front().line, 77);
}

TEST(Baseline, FormatRoundTripsByteIdentically) {
  const std::string first = analysis::write_baseline(sample_findings());
  const std::string second =
      analysis::write_baseline(analysis::parse_baseline(first));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.front(), '#');  // self-describing header line
}

TEST(Baseline, CommentsAndGarbageLinesAreIgnored) {
  const auto entries = analysis::parse_baseline(
      "# comment\n"
      "\n"
      "not a record\n"
      "MT001\tcudax/kernels.h\tderived 296 B, model 304\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.front().rule_id, "MT001");
  EXPECT_EQ(entries.front().file, "cudax/kernels.h");
}
