// Golden-file determinism: hemo_lint's machine-readable outputs must be
// byte-stable — fixed key order, no timestamps, no iteration-order or
// locale dependence — so diffs against the checked-in goldens are
// meaningful and CI can gate on them.  Regenerate with
// HEMO_UPDATE_GOLDEN=1 ./test_analysis after an intentional change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/flux_rules.hpp"
#include "analysis/report.hpp"

namespace analysis = hemo::analysis;

namespace {

const char* kGoldenDir = HEMO_REPO_DIR "/tests/analysis/golden";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Compares `actual` against the named golden; HEMO_UPDATE_GOLDEN=1
/// rewrites the golden instead (and the assertion then trivially holds).
void expect_matches_golden(const std::string& actual,
                           const std::string& name) {
  const std::string path = std::string(kGoldenDir) + "/" + name;
  if (std::getenv("HEMO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << actual;
    return;
  }
  EXPECT_EQ(actual, read_file(path))
      << "golden mismatch for " << name
      << " (intentional change? regenerate with HEMO_UPDATE_GOLDEN=1)";
}

std::vector<analysis::Diagnostic> sample_diagnostics() {
  analysis::Diagnostic a;
  a.rule_id = "MT001";
  a.severity = analysis::Severity::kError;
  a.file = "cudax/kernels.h";
  a.line = 12;
  a.message = "derived 296 distribution B/point, model charges 304";
  a.fixit_hint = "make the kernel move 19 loads + 19 stores";
  analysis::Diagnostic b;
  b.rule_id = "CC003";
  b.severity = analysis::Severity::kWarning;
  b.file = "rt/executor.hpp";
  b.line = 81;
  b.message = "queued_ read without mu_ (\"quoted\" and \\ escaped)";
  return {a, b};
}

}  // namespace

TEST(Determinism, JsonReportIsByteStableAcrossRuns) {
  const auto ds = sample_diagnostics();
  EXPECT_EQ(analysis::json_report(ds), analysis::json_report(ds));
}

TEST(Determinism, JsonReportMatchesGolden) {
  expect_matches_golden(analysis::json_report(sample_diagnostics()),
                        "report.json");
}

TEST(Determinism, TrafficAuditJsonIsByteStableAcrossRuns) {
  const hemo::perf::ModelParams params;
  EXPECT_EQ(analysis::traffic_audit_json(params),
            analysis::traffic_audit_json(params));
}

TEST(Determinism, TrafficAuditJsonMatchesGolden) {
  // This golden doubles as the SoA-refactor gate: any change to a corpus
  // kernel's access pattern shows up as a reviewable diff here.
  expect_matches_golden(
      analysis::traffic_audit_json(hemo::perf::ModelParams{}) + "\n",
      "traffic_audit.json");
}

TEST(Determinism, ReportsCarryNoTimestamps) {
  const std::string traffic =
      analysis::traffic_audit_json(hemo::perf::ModelParams{});
  for (const char* needle : {"time", "date", "stamp", "seed"})
    EXPECT_EQ(traffic.find(needle), std::string::npos) << needle;
}
