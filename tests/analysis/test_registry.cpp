// Registry integrity: every rule id across the five families (HL, LC,
// RS, MT, CC) is unique, documented in DESIGN.md's rule-catalog tables,
// and exercised by at least one test fixture.  A new rule cannot land
// undocumented or untested without failing here.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/registry.hpp"

namespace analysis = hemo::analysis;
namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Concatenated content of every test source except this file (which
/// names every id and would satisfy the coverage check vacuously).
std::string all_test_sources() {
  std::string all;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(HEMO_REPO_DIR "/tests")) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".cpp" && p.extension() != ".hpp") continue;
    if (p.filename() == "test_registry.cpp") continue;
    all += slurp(p);
  }
  return all;
}

}  // namespace

TEST(Registry, IdsAreUnique) {
  EXPECT_TRUE(analysis::registry_ids_unique());
}

TEST(Registry, AllFiveFamiliesArePresent) {
  std::set<std::string> families;
  for (const std::string& id : analysis::rule_ids()) {
    ASSERT_GE(id.size(), 5u) << id;
    families.insert(id.substr(0, 2));
  }
  EXPECT_EQ(families,
            (std::set<std::string>{"HL", "LC", "RS", "MT", "CC"}));
}

TEST(Registry, EveryRuleIsWellFormed) {
  for (const analysis::RuleInfo& rule : analysis::rule_registry()) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.name.empty()) << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
}

TEST(Registry, LookupFindsKnownAndRejectsUnknown) {
  EXPECT_EQ(analysis::find_rule("MT001").name, "model-bytes-mismatch");
  EXPECT_EQ(analysis::find_rule("CC002").name, "lock-order-inversion");
  EXPECT_TRUE(analysis::find_rule("XX999").id.empty());
}

TEST(Registry, EveryRuleIsDocumentedInDesignDoc) {
  const std::string design = slurp(HEMO_REPO_DIR "/DESIGN.md");
  for (const analysis::RuleInfo& rule : analysis::rule_registry()) {
    EXPECT_NE(design.find(rule.id), std::string::npos)
        << rule.id << " missing from DESIGN.md's rule catalog";
    EXPECT_NE(design.find(rule.name), std::string::npos)
        << rule.id << " (" << rule.name
        << "): name missing from DESIGN.md's rule catalog";
  }
}

TEST(Registry, EveryRuleHasTestFixtureCoverage) {
  const std::string tests = all_test_sources();
  for (const std::string& id : analysis::rule_ids())
    EXPECT_NE(tests.find(id), std::string::npos)
        << id << " is referenced by no test under tests/";
}
