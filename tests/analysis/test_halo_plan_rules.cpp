// LC011 (halo-endpoint-not-in-partition): a halo plan that routes traffic
// through a rank the partition does not know — out of range, or owning
// zero points after a shrink — is a correctness hazard: that traffic is
// never delivered.  Positive fixtures (tampered endpoint, stale pre-shrink
// plan), negative fixtures (clean full and survivor partitions), and the
// text-report golden the hemo_lint CLI prints for the finding.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lattice_check.hpp"
#include "analysis/report.hpp"
#include "decomp/partition.hpp"
#include "lbm/sparse_lattice.hpp"

namespace analysis = hemo::analysis;
namespace decomp = hemo::decomp;
namespace lbm = hemo::lbm;
using hemo::Coord;
using hemo::Rank;

namespace {

lbm::SparseLattice box_lattice(int nx, int ny, int nz) {
  std::vector<Coord> coords;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) coords.push_back({x, y, z});
  return lbm::SparseLattice(coords);
}

int count_rule(const std::vector<analysis::Diagnostic>& ds,
               const std::string& rule) {
  int n = 0;
  for (const analysis::Diagnostic& d : ds) n += (d.rule_id == rule);
  return n;
}

}  // namespace

TEST(HaloPlanRules, CleanSurvivorPartitionPlanIsSilent) {
  const lbm::SparseLattice lattice = box_lattice(6, 5, 5);
  // Rank 2 of 4 is dead; the plan is rebuilt from the shrunken partition,
  // exactly what DistributedSolver::shrink_to_survivors does.
  const decomp::Partition partition =
      decomp::bisection_partition(lattice, 4, {0, 1, 3});
  const decomp::HaloPlan plan = decomp::build_halo_plan(lattice, partition);
  EXPECT_TRUE(analysis::check_halo_plan(lattice, partition, plan).empty());
}

TEST(HaloPlanRules, OutOfRangeEndpointYieldsLC011) {
  const lbm::SparseLattice lattice = box_lattice(5, 5, 5);
  const decomp::Partition partition = decomp::slab_partition(lattice, 3);
  decomp::HaloPlan plan = decomp::build_halo_plan(lattice, partition);
  plan.messages.push_back(decomp::HaloMessage{7, 0, 4});

  const auto ds = analysis::check_halo_plan(lattice, partition, plan);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC011");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
  EXPECT_NE(ds[0].message.find("outside the partition's [0, 3) rank range"),
            std::string::npos);
}

TEST(HaloPlanRules, RetiredRankEndpointYieldsLC011) {
  const lbm::SparseLattice lattice = box_lattice(6, 5, 5);
  const decomp::Partition partition =
      decomp::bisection_partition(lattice, 4, {0, 1, 3});
  decomp::HaloPlan plan = decomp::build_halo_plan(lattice, partition);
  // A message still addressing the retired rank, as a plan that survived
  // the shrink un-rebuilt would.
  plan.messages.push_back(decomp::HaloMessage{2, 0, 4});

  const auto ds = analysis::check_halo_plan(lattice, partition, plan);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC011");
  EXPECT_NE(ds[0].message.find("owns zero points"), std::string::npos);
}

TEST(HaloPlanRules, OneStaleMessageIsOneFindingNotACascade) {
  const lbm::SparseLattice lattice = box_lattice(5, 5, 5);
  const decomp::Partition partition = decomp::slab_partition(lattice, 3);
  decomp::HaloPlan plan = decomp::build_halo_plan(lattice, partition);
  plan.messages.push_back(decomp::HaloMessage{0, 9, 16});

  // The flagged message is excluded from the LC008 volume reconciliation,
  // so the single stale entry yields exactly one diagnostic.
  const auto ds = analysis::check_halo_plan(lattice, partition, plan);
  EXPECT_EQ(count_rule(ds, "LC011"), 1);
  EXPECT_EQ(count_rule(ds, "LC008"), 0);
}

TEST(HaloPlanRules, StalePreShrinkPlanFlagsEveryDeadEndpointMessage) {
  const lbm::SparseLattice lattice = box_lattice(6, 5, 5);
  const decomp::Partition full = decomp::bisection_partition(lattice, 4);
  const decomp::HaloPlan stale = decomp::build_halo_plan(lattice, full);

  const decomp::Partition shrunk =
      decomp::bisection_partition(lattice, 4, {0, 1, 3});
  int touching_dead = 0;
  for (const decomp::HaloMessage& m : stale.messages)
    touching_dead += (m.src == 2 || m.dst == 2);
  ASSERT_GT(touching_dead, 0);

  // Checking the pre-shrink plan against the post-shrink partition: every
  // message through the dead rank is an LC011; survivor-to-survivor
  // volume drift is LC008's (the shrink moved ownership around).
  const auto ds = analysis::check_halo_plan(lattice, shrunk, stale);
  EXPECT_EQ(count_rule(ds, "LC011"), touching_dead);
  for (const analysis::Diagnostic& d : ds)
    EXPECT_TRUE(d.rule_id == "LC011" || d.rule_id == "LC008") << d.rule_id;
}

TEST(HaloPlanRules, TextReportGolden) {
  const lbm::SparseLattice lattice = box_lattice(5, 5, 5);
  const decomp::Partition partition = decomp::slab_partition(lattice, 3);
  decomp::HaloPlan plan = decomp::build_halo_plan(lattice, partition);
  plan.messages.push_back(decomp::HaloMessage{7, 0, 4});

  auto ds = analysis::check_halo_plan(lattice, partition, plan);
  analysis::sort_diagnostics(ds);
  const std::string report = analysis::text_report(ds);
  EXPECT_EQ(report,
            "halo-plan: error: [LC011] message 7 -> 0 (4 values) references "
            "rank 7, which is outside the partition's [0, 3) rank range\n"
            "    fixit: rebuild the halo plan from the current partition; "
            "traffic routed through a missing rank is never delivered\n"
            "\n"
            "1 diagnostic (1 error)\n"
            "  LC011: 1\n");
}
