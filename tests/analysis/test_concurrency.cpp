// CC rule tests: the seeded-defect fixture fires every rule at the
// expected line, the clean/annotated idioms the runtime actually uses
// stay silent, and the checked-in src/rt + src/resilience trees audit
// clean (the `hemo_lint --concurrency` gate in unit-test form).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/concurrency.hpp"

namespace analysis = hemo::analysis;

namespace {

std::vector<analysis::Diagnostic> check_fixture(const std::string& content) {
  return analysis::check_concurrency(
      {analysis::FluxSource{"fixture/bad.hpp", content}});
}

}  // namespace

TEST(Concurrency, SeededDefectsFireEachRuleAtItsLine) {
  const auto ds = check_fixture(R"(
#include <mutex>
class Counter {
 public:
  void bump() { ++count_; }
  long value() const { return count_; }
  void sync_ab() {
    std::lock_guard<std::mutex> g1(a_);
    std::lock_guard<std::mutex> g2(b_);
  }
  void sync_ba() {
    std::lock_guard<std::mutex> g1(b_);
    std::lock_guard<std::mutex> g2(a_);
  }
 private:
  mutable std::mutex mu_;
  std::mutex a_;
  std::mutex b_;
  long count_ = 0;
};

void recover_from_fault(CheckpointSlot* slot) {
  slot->clear();
}
)");
  std::map<std::string, int> line_of;
  for (const analysis::Diagnostic& d : ds) line_of[d.rule_id] = d.line;
  ASSERT_EQ(ds.size(), 4u);
  EXPECT_EQ(line_of["CC001"], 5);   // ++count_ without mu_
  EXPECT_EQ(line_of["CC003"], 6);   // return count_ without mu_
  EXPECT_EQ(line_of["CC002"], 13);  // b_ then a_, inverting sync_ab
  EXPECT_EQ(line_of["CC004"], 23);  // slot->clear() inside recover_*
}

TEST(Concurrency, LockAtTopIdiomIsClean) {
  EXPECT_TRUE(check_fixture(R"(
#include <mutex>
class Counter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }
  long value() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
 private:
  mutable std::mutex mu_;
  long count_ = 0;
};
)")
                  .empty());
}

TEST(Concurrency, ExemptionsSuppressTheRules) {
  // Constructors, *_locked helpers, annotated methods and atomics are the
  // runtime's sanctioned lock-free idioms; none may fire.
  EXPECT_TRUE(check_fixture(R"(
#include <atomic>
#include <mutex>
class Pool {
 public:
  Pool() { size_ = 0; }
  ~Pool() { size_ = 0; }
  void grow_locked() { ++size_; }  // requires mu_ held
  // immutable after construction: workers_ is sized once
  int workers() const { return workers_; }
  long hits() const { return hits_; }
 private:
  std::mutex mu_;
  long size_ = 0;
  int workers_ = 0;
  std::atomic<long> hits_{0};
};
)")
                  .empty());
}

TEST(Concurrency, ConsistentLockOrderIsClean) {
  EXPECT_TRUE(check_fixture(R"(
#include <mutex>
class Pair {
 public:
  void first() {
    std::lock_guard<std::mutex> g1(a_);
    std::lock_guard<std::mutex> g2(b_);
  }
  void second() {
    std::lock_guard<std::mutex> g1(a_);
    std::lock_guard<std::mutex> g2(b_);
  }
 private:
  std::mutex a_;
  std::mutex b_;
};
)")
                  .empty());
}

TEST(Concurrency, CheckpointMutationOutsideRecoveryIsClean) {
  // record()/clear() are fine on the forward path; only in-flight
  // recovery functions may not mutate the slot they restore from.
  EXPECT_TRUE(check_fixture(R"(
void publish_checkpoint(CheckpointSlot* slot) {
  slot->record(7, "path");
}
)")
                  .empty());
}

TEST(Concurrency, CheckedInRuntimeIsClean) {
  const auto ds = analysis::check_runtime_concurrency();
  EXPECT_TRUE(ds.empty());
  for (const analysis::Diagnostic& d : ds)
    ADD_FAILURE() << d.rule_id << " " << d.file << ":" << d.line << " "
                  << d.message;
}
