// Portability-linter tests: every rule fires on a minimal crafted
// snippet, stays silent on clean code, and the full corpus sweep shows
// the Table-2 shape (all four backends diagnosed, >= 6 distinct rules).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hpp"

namespace analysis = hemo::analysis;
namespace port = hemo::port;

namespace {

std::set<std::string> rule_ids(const std::vector<analysis::Diagnostic>& ds) {
  std::set<std::string> ids;
  for (const analysis::Diagnostic& d : ds) ids.insert(d.rule_id);
  return ids;
}

bool has_rule(const std::vector<analysis::Diagnostic>& ds,
              const std::string& id) {
  return rule_ids(ds).contains(id);
}

}  // namespace

TEST(LintRules, RegistryIsStableAndOrdered) {
  const auto& rules = analysis::lint_rules();
  ASSERT_GE(rules.size(), 6u);
  for (std::size_t i = 1; i < rules.size(); ++i)
    EXPECT_LT(rules[i - 1].id, rules[i].id);
  for (const analysis::LintRule& r : rules) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.summary.empty());
    EXPECT_TRUE(r.check != nullptr);
  }
}

TEST(LintRules, CleanSourceIsSilent) {
  const std::string clean =
      "#include \"common.h\"\n"
      "void f() {\n"
      "  CUDAX_CHECK(cudaxDeviceSynchronize());\n"
      "}\n";
  EXPECT_TRUE(analysis::lint_source("clean.cpp", clean).empty());
}

TEST(LintRules, WarpSizeAssumptionFires) {
  const auto ds =
      analysis::lint_source("a.cpp", "  kx::View<double*> p(\"p\", 32);\n");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL001");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kWarning);
  EXPECT_EQ(ds[0].line, 1);
  // 32 embedded in a longer number is not a warp size.
  EXPECT_TRUE(analysis::lint_source("b.cpp", "double p = 3.14159232;\n")
                  .empty());
}

TEST(LintRules, UninitializedDim3Fires) {
  const auto ds = analysis::lint_source("a.cpp", "  dim3x grid_dim;\n");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL002");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
  // An initialized declaration is the documented manual fix.
  EXPECT_TRUE(
      analysis::lint_source("b.cpp", "  dim3x grid_dim(1);\n").empty());
}

TEST(LintRules, RawPointerKernelCaptureFires) {
  const std::string kernel =
      "struct PackKernel {\n"
      "  const double* f;\n"
      "  std::int64_t n;\n"
      "};\n";
  const auto ds = analysis::lint_source("k.h", kernel);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL003");
  EXPECT_EQ(ds[0].line, 2);
  // Pointers outside kernel functors are not capture hazards.
  EXPECT_TRUE(analysis::lint_source("s.h",
                                    "struct DeviceState {\n"
                                    "  double* f_old;\n"
                                    "};\n")
                  .empty());
}

TEST(LintRules, SyncMixingFiresOncePerFile) {
  const std::string mixed =
      "void f() {\n"
      "  CUDAX_CHECK(cudaxDeviceSynchronize());\n"
      "  CUDAX_CHECK(cudaxStreamSynchronize(stream));\n"
      "}\n";
  const auto ds = analysis::lint_source("m.cpp", mixed);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL004");
}

TEST(LintRules, UncheckedDeviceCallFires) {
  const auto ds =
      analysis::lint_source("u.cpp", "  cudaxMemPrefetchAsync(f, b, 0, 0);\n");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL005");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
}

TEST(LintRules, LaunchThenGetLastErrorIsNotUnchecked) {
  const std::string idiom =
      "  cudaxLaunchKernel(grid, block, kernel);\n"
      "  CUDAX_CHECK(cudaxGetLastError());\n";
  for (const analysis::Diagnostic& d :
       analysis::lint_source("l.cpp", idiom))
    EXPECT_NE(d.rule_id, "HL005") << d.message;
}

TEST(LintRules, HardCodedGeometryFires) {
  const auto ds = analysis::lint_source(
      "g.cpp", "  block_dim.x = 256;\n  g.x = (n + 255) / 256;\n");
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].rule_id, "HL006");
  EXPECT_EQ(ds[1].rule_id, "HL006");
}

TEST(LintRules, NonPortableApiFires) {
  const auto ds = analysis::lint_source(
      "n.cpp", "  CUDAX_CHECK(cudaxDeviceSetLimit(lim, 1));\n");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL007");
}

TEST(LintRules, TranslationResidueFiresOnBreadcrumbOnly) {
  const std::string residue =
      "  /* DPCTX1007 removed: cudaxStreamAttachMemAsync(a, b, c); */\n";
  const auto ds = analysis::lint_source("r.cpp", residue);
  // The commented-out call must not also count as an unchecked or
  // non-portable live call.
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL008");
}

TEST(LintRules, NullStreamSyncFires) {
  const auto ds = analysis::lint_source(
      "s.cpp", "  CUDAX_CHECK(cudaxStreamSynchronize(0));\n");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "HL009");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kNote);
}

TEST(LintRules, CorpusSweepCoversTheRuleSpectrum) {
  std::vector<analysis::Diagnostic> all;
  const std::vector<port::CorpusDialect> dialects = {
      port::CorpusDialect::kCudax, port::CorpusDialect::kHipx,
      port::CorpusDialect::kSyclx, port::CorpusDialect::kKokkosx};
  for (const port::CorpusDialect d : dialects) {
    const auto ds = analysis::lint_corpus(d);
    EXPECT_FALSE(ds.empty()) << "dialect " << static_cast<int>(d);
    all.insert(all.end(), ds.begin(), ds.end());
  }
  EXPECT_GE(analysis::distinct_rule_count(all), 6);
}

TEST(LintRules, CorpusBackendsShowTheExpectedHazards) {
  const auto cudax = analysis::lint_corpus(port::CorpusDialect::kCudax);
  const auto hipx = analysis::lint_corpus(port::CorpusDialect::kHipx);
  const auto syclx = analysis::lint_corpus(port::CorpusDialect::kSyclx);
  const auto kokkosx = analysis::lint_corpus(port::CorpusDialect::kKokkosx);

  // The legacy CUDA code (and its line-for-line HIP twin) carry the
  // uninitialized-dim3 and unsupported-API hazards the paper's Section 7
  // counts; DPCT's output carries the removal breadcrumbs instead; the
  // manual Kokkos port keeps only the structural hazards.
  EXPECT_TRUE(has_rule(cudax, "HL002"));
  EXPECT_TRUE(has_rule(cudax, "HL007"));
  EXPECT_TRUE(has_rule(hipx, "HL002"));
  EXPECT_TRUE(has_rule(hipx, "HL007"));
  EXPECT_TRUE(has_rule(syclx, "HL008"));
  EXPECT_FALSE(has_rule(syclx, "HL002"));
  EXPECT_TRUE(has_rule(kokkosx, "HL001"));
  EXPECT_TRUE(has_rule(kokkosx, "HL003"));
  EXPECT_FALSE(has_rule(kokkosx, "HL002"));
  EXPECT_FALSE(has_rule(kokkosx, "HL007"));

  // The Kokkos port eliminated most hazard classes: it must lint cleaner
  // than the legacy code, mirroring Table 3's effort ordering.
  EXPECT_LT(kokkosx.size(), cudax.size());
}

TEST(LintRules, DiagnosticsCarryFilePrefixAndLineNumbers) {
  const auto ds = analysis::lint_corpus(port::CorpusDialect::kHipx);
  ASSERT_FALSE(ds.empty());
  for (const analysis::Diagnostic& d : ds) {
    EXPECT_TRUE(d.file.starts_with("hipx/")) << d.file;
    EXPECT_GT(d.line, 0);
    EXPECT_FALSE(d.message.empty());
  }
}
