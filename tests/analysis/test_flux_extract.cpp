// hemo-flux extractor tests.  The headline assertion is the paper's: the
// baseline D3Q19 stream-collide kernel of EVERY dialect corpus must
// statically derive to exactly perf::ModelParams::bytes_per_point
// (2*19*8 = 304 B) of distribution traffic per lattice point, and the
// halo pack/unpack kernels to one 8-byte double per crossing value.
// Fixture tests pin the symbolic-walk semantics the corpus counts rely
// on: loop multiplication, branch maxima, stride classification, and
// register-resident stack arrays.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/flux_extract.hpp"
#include "analysis/flux_ir.hpp"
#include "analysis/flux_rules.hpp"
#include "lbm/propagation.hpp"
#include "perf/model.hpp"
#include "port/corpus.hpp"

namespace analysis = hemo::analysis;
namespace port = hemo::port;

namespace {

const std::vector<port::CorpusDialect> kAllDialects = {
    port::CorpusDialect::kCudax, port::CorpusDialect::kHipx,
    port::CorpusDialect::kSyclx, port::CorpusDialect::kKokkosx};

const analysis::KernelProfile* find_kernel(
    const std::vector<analysis::KernelProfile>& profiles,
    const std::string& kernel) {
  for (const analysis::KernelProfile& p : profiles)
    if (p.kernel == kernel) return &p;
  return nullptr;
}

std::vector<analysis::KernelProfile> extract_fixture(
    const std::string& content) {
  return analysis::extract_kernel_profiles(
      {analysis::FluxSource{"fixture/kernels.h", content}});
}

}  // namespace

TEST(FluxExtract, HotLoopKernelsDeriveTheModel304BytesInEveryDialect) {
  const hemo::perf::ModelParams params;
  ASSERT_DOUBLE_EQ(params.bytes_per_point, 304.0);
  for (const port::CorpusDialect dialect : kAllDialects) {
    const auto profiles = analysis::extract_dialect_profiles(dialect);
    for (const char* kernel :
         {"StreamCollideKernel", "StreamOnlyKernel", "CollideOnlyKernel"}) {
      const analysis::KernelProfile* p = find_kernel(profiles, kernel);
      ASSERT_NE(p, nullptr) << kernel << " missing in dialect "
                            << static_cast<int>(dialect);
      EXPECT_TRUE(analysis::is_hot_loop_kernel(p->kernel));
      EXPECT_DOUBLE_EQ(p->distribution_bytes_per_point(),
                       params.bytes_per_point)
          << p->file << ":" << p->kernel;
    }
  }
}

TEST(FluxExtract, StreamedBytesFollowThePropagationPatternInEveryDialect) {
  // The array-pass convention of Section 6: the double-buffered pull
  // kernels make two passes (2*19*8 = 304 B/point), while kernels that
  // update their distribution storage in place — the AA pair and the
  // collide-only ablation — make one (19*8 = 152 B/point).
  const double pull_bytes =
      hemo::lbm::propagation_bytes_per_point(hemo::lbm::Propagation::kPullSoA);
  const double aa_bytes = hemo::lbm::propagation_bytes_per_point(
      hemo::lbm::Propagation::kAAInPlace);
  ASSERT_DOUBLE_EQ(pull_bytes, 304.0);
  ASSERT_DOUBLE_EQ(aa_bytes, 152.0);
  for (const port::CorpusDialect dialect : kAllDialects) {
    const auto profiles = analysis::extract_dialect_profiles(dialect);
    for (const char* kernel : {"StreamCollideKernel", "StreamOnlyKernel"}) {
      const analysis::KernelProfile* p = find_kernel(profiles, kernel);
      ASSERT_NE(p, nullptr) << kernel;
      EXPECT_FALSE(p->in_place_distribution_update())
          << p->file << ":" << p->kernel;
      EXPECT_DOUBLE_EQ(p->streamed_distribution_bytes_per_point(), pull_bytes)
          << p->file << ":" << p->kernel;
    }
    for (const char* kernel :
         {"StreamCollideAAEvenKernel", "StreamCollideAAOddKernel",
          "CollideOnlyKernel"}) {
      const analysis::KernelProfile* p = find_kernel(profiles, kernel);
      ASSERT_NE(p, nullptr) << kernel << " missing in dialect "
                            << static_cast<int>(dialect);
      EXPECT_TRUE(analysis::is_hot_loop_kernel(p->kernel));
      EXPECT_TRUE(p->in_place_distribution_update())
          << p->file << ":" << p->kernel;
      EXPECT_DOUBLE_EQ(p->streamed_distribution_bytes_per_point(), aa_bytes)
          << p->file << ":" << p->kernel;
    }
  }
}

TEST(FluxExtract, LocalArrayShadowingADeviceNameKeepsItsOwnBucket) {
  // The AA kernels declare a stack array `f` beside the device args.f;
  // the accumulator must keep the two apart (role is part of the access
  // key) or every register access would be charged as device traffic.
  const auto profiles = extract_fixture(R"(
struct ShadowKernel {
  hemo::lbm::KernelArgs args;
  void operator()(int i) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q) f[q] = args.f[q * args.n + i];
    for (int q = 0; q < kQ; ++q) f[q] += f[q];
    for (int q = 0; q < kQ; ++q) args.f[q * args.n + i] = f[q];
  }
};
)");
  const analysis::KernelProfile* p = find_kernel(profiles, "ShadowKernel");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->distribution_bytes_per_point(), 304.0);
  EXPECT_DOUBLE_EQ(p->streamed_distribution_bytes_per_point(), 152.0);
  EXPECT_DOUBLE_EQ(p->total_bytes_per_point(), 304.0);
  EXPECT_TRUE(p->in_place_distribution_update());
}

TEST(FluxExtract, HaloKernelsMoveOneDoublePerCrossingValue) {
  const hemo::perf::ModelParams params;
  for (const port::CorpusDialect dialect : kAllDialects) {
    const auto profiles = analysis::extract_dialect_profiles(dialect);
    const analysis::KernelProfile* pack =
        find_kernel(profiles, "PackHaloKernel");
    const analysis::KernelProfile* unpack =
        find_kernel(profiles, "UnpackHaloKernel");
    ASSERT_NE(pack, nullptr);
    ASSERT_NE(unpack, nullptr);
    const double pack_payload = pack->bytes_per_point(
        analysis::ArrayRole::kHaloBuffer, analysis::AccessDir::kStore);
    const double unpack_payload = unpack->bytes_per_point(
        analysis::ArrayRole::kHaloBuffer, analysis::AccessDir::kLoad);
    EXPECT_DOUBLE_EQ(pack_payload, 8.0);
    EXPECT_DOUBLE_EQ(unpack_payload, 8.0);
    // 5 crossing values per surface point => the model's 40 B.
    EXPECT_DOUBLE_EQ(
        pack_payload * analysis::kHaloValuesPerSurfacePoint,
        params.halo_bytes_per_surface_point);
  }
}

TEST(FluxExtract, DialectProfilesAgreeKernelForKernel) {
  // Stronger than the MT006 audit: the full per-kernel distribution AND
  // total byte counts of the hot kernels must agree across dialects.
  const auto reference =
      analysis::extract_dialect_profiles(port::CorpusDialect::kCudax);
  for (const port::CorpusDialect dialect :
       {port::CorpusDialect::kHipx, port::CorpusDialect::kSyclx,
        port::CorpusDialect::kKokkosx}) {
    const auto profiles = analysis::extract_dialect_profiles(dialect);
    for (const analysis::KernelProfile& ref : reference) {
      if (!analysis::is_hot_loop_kernel(ref.kernel)) continue;
      const analysis::KernelProfile* p = find_kernel(profiles, ref.kernel);
      ASSERT_NE(p, nullptr) << ref.kernel;
      EXPECT_DOUBLE_EQ(p->distribution_bytes_per_point(),
                       ref.distribution_bytes_per_point())
          << p->file;
      EXPECT_DOUBLE_EQ(p->total_bytes_per_point(),
                       ref.total_bytes_per_point())
          << p->file;
    }
  }
}

TEST(FluxExtract, PopulationLoopsMultiplyBy19) {
  const auto profiles = extract_fixture(R"(
struct StreamCollideKernel {
  void operator()(int i, int n) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q) f[q] = f_in[q * n + i];
    for (int q = 0; q < kQ; ++q) f_out[q * n + i] = f[q];
  }
};
)");
  const analysis::KernelProfile* p =
      find_kernel(profiles, "StreamCollideKernel");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->loads_per_point("f_in"), 19.0);
  EXPECT_DOUBLE_EQ(p->stores_per_point("f_out"), 19.0);
  EXPECT_DOUBLE_EQ(p->distribution_bytes_per_point(), 304.0);
  // The stack array is register-class: no streamed traffic at all.
  EXPECT_DOUBLE_EQ(p->total_bytes_per_point(), 304.0);
}

TEST(FluxExtract, BranchAlternativesContributeTheirMaximum) {
  // One branch loads f_in 19 times, the other stores f_out 19 times; the
  // charged bound is the per-array maximum, not the sum of both arms.
  const auto profiles = extract_fixture(R"(
struct ProbeKernel {
  void operator()(int i, int n) const {
    if (node_type[i] == 0) {
      for (int q = 0; q < kQ; ++q) out[i] += f_in[q * n + i];
    } else {
      for (int q = 0; q < kQ; ++q) f_out[q * n + i] = 1.0;
    }
  }
};
)");
  const analysis::KernelProfile* p = find_kernel(profiles, "ProbeKernel");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->loads_per_point("f_in"), 19.0);
  EXPECT_DOUBLE_EQ(p->stores_per_point("f_out"), 19.0);
  EXPECT_DOUBLE_EQ(p->loads_per_point("node_type"), 1.0);
}

TEST(FluxExtract, StrideClassification) {
  const auto profiles = extract_fixture(R"(
struct LayoutKernel {
  void operator()(int i, int n) const {
    out[i] = f_in[0 * n + i];        // SoA
    out[i] += f_old[i * kQ + 3];     // AoS
    out[i] += f_new[adjacency[i]];   // gather through the index array
  }
};
)");
  const analysis::KernelProfile* p = find_kernel(profiles, "LayoutKernel");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->touches_stride(analysis::ArrayRole::kDistribution,
                                analysis::StrideClass::kSoA));
  EXPECT_TRUE(p->touches_stride(analysis::ArrayRole::kDistribution,
                                analysis::StrideClass::kAoS));
  EXPECT_TRUE(p->touches_stride(analysis::ArrayRole::kDistribution,
                                analysis::StrideClass::kGather));
  EXPECT_TRUE(p->touches_stride(analysis::ArrayRole::kScratch,
                                analysis::StrideClass::kUnit));
}

TEST(FluxExtract, ConstantTablesAreNotStreamedTraffic) {
  const auto profiles = extract_fixture(R"(
struct WeightKernel {
  void operator()(int i, int n) const {
    double rho = 0.0;
    for (int q = 0; q < kQ; ++q) rho += kWeights[q] * f_in[q * n + i];
    out[i] = rho;
  }
};
)");
  const analysis::KernelProfile* p = find_kernel(profiles, "WeightKernel");
  ASSERT_NE(p, nullptr);
  // 19 f_in loads + 1 out store; the weight table is cached, not streamed.
  EXPECT_DOUBLE_EQ(p->total_bytes_per_point(), 19.0 * 8.0 + 8.0);
}

TEST(FluxExtract, ProfilesComeBackSortedAndLocated) {
  for (const port::CorpusDialect dialect : kAllDialects) {
    const auto profiles = analysis::extract_dialect_profiles(dialect);
    ASSERT_GT(profiles.size(), 4u);
    for (std::size_t i = 1; i < profiles.size(); ++i)
      EXPECT_LE(std::make_pair(profiles[i - 1].file, profiles[i - 1].kernel),
                std::make_pair(profiles[i].file, profiles[i].kernel));
    for (const analysis::KernelProfile& p : profiles) {
      EXPECT_GT(p.line, 0) << p.kernel;
      EXPECT_FALSE(p.file.empty());
    }
  }
}
