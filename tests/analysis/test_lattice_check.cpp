// Lattice-checker seeded-fault suite: a clean geometry is silent, and
// each injected corruption (OOB neighbor, duplicated streaming target,
// broken rest link, one-sided bounce-back link, truncated halo map,
// corrupt partition) yields exactly the expected diagnostic and severity
// — zero false negatives, zero cascades.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/lattice_check.hpp"
#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "harvey/distributed_solver.hpp"
#include "lbm/sparse_lattice.hpp"

namespace analysis = hemo::analysis;
namespace decomp = hemo::decomp;
namespace geom = hemo::geom;
namespace lbm = hemo::lbm;
using hemo::Coord;
using hemo::PointIndex;

namespace {

std::vector<Coord> block(int nx, int ny, int nz) {
  std::vector<Coord> coords;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) coords.push_back({x, y, z});
  return coords;
}

/// A 5^3 box plus a mutable copy of its adjacency for fault injection.
struct Fixture {
  lbm::SparseLattice lattice{block(5, 5, 5)};
  std::vector<PointIndex> adjacency{lattice.adjacency()};

  analysis::LatticeView view() const {
    return analysis::LatticeView{lattice.size(), adjacency.data(),
                                 lattice.node_types().data()};
  }
  std::size_t slot(int q, PointIndex i) const {
    return static_cast<std::size_t>(q) *
               static_cast<std::size_t>(lattice.size()) +
           static_cast<std::size_t>(i);
  }
};

}  // namespace

TEST(LatticeCheck, CleanBoxIsSilent) {
  const Fixture f;
  EXPECT_TRUE(analysis::check_lattice(f.view()).empty());
}

TEST(LatticeCheck, CleanCylinderIsSilent) {
  for (const geom::CylinderEnds ends :
       {geom::CylinderEnds::kPeriodic, geom::CylinderEnds::kInletOutlet}) {
    const auto lattice = geom::make_cylinder_lattice(geom::CylinderSpec{}, ends);
    EXPECT_TRUE(analysis::check_lattice(*lattice).empty());
  }
}

TEST(LatticeCheck, OutOfBoundsNeighborYieldsExactlyLC001) {
  Fixture f;
  const PointIndex center = f.lattice.find(Coord{2, 2, 2});
  f.adjacency[f.slot(1, center)] = f.lattice.size() + 7;
  const auto ds = analysis::check_lattice(f.view());
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC001");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
}

TEST(LatticeCheck, NegativeGarbageNeighborYieldsExactlyLC001) {
  Fixture f;
  const PointIndex center = f.lattice.find(Coord{2, 2, 2});
  f.adjacency[f.slot(5, center)] = -42;  // not the solid sentinel
  const auto ds = analysis::check_lattice(f.view());
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC001");
}

TEST(LatticeCheck, BrokenRestLinkYieldsExactlyLC002) {
  Fixture f;
  const PointIndex center = f.lattice.find(Coord{2, 2, 2});
  f.adjacency[f.slot(0, center)] = center + 1;
  const auto ds = analysis::check_lattice(f.view());
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC002");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
}

TEST(LatticeCheck, DuplicatedWriteTargetYieldsExactlyLC003) {
  Fixture f;
  const PointIndex i1 = f.lattice.find(Coord{2, 2, 2});
  const PointIndex i2 = f.lattice.find(Coord{2, 2, 3});
  // Redirect i2's direction-1 link onto i1's upstream: in push streaming
  // both points would now write the same slot.
  f.adjacency[f.slot(1, i2)] = f.adjacency[f.slot(1, i1)];
  const auto ds = analysis::check_lattice(f.view());
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC003");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
}

TEST(LatticeCheck, OneSidedLinkYieldsExactlyLC004) {
  Fixture f;
  // Carve a spurious wall into one side of an interior link; the reverse
  // link still exists, so the bounce-back map is no longer involutive.
  const PointIndex center = f.lattice.find(Coord{2, 2, 2});
  f.adjacency[f.slot(1, center)] = hemo::kSolidNeighbor;
  const auto ds = analysis::check_lattice(f.view());
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC004");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
}

TEST(LatticeCheck, FloodedCorruptionIsSummarized) {
  Fixture f;
  // Corrupt every direction-1 link: the checker caps per-rule output and
  // appends one summary diagnostic instead of flooding.
  for (PointIndex i = 0; i < f.lattice.size(); ++i)
    f.adjacency[f.slot(1, i)] = f.lattice.size() + i;
  const auto ds = analysis::check_lattice(f.view());
  ASSERT_FALSE(ds.empty());
  for (const analysis::Diagnostic& d : ds) EXPECT_EQ(d.rule_id, "LC001");
  EXPECT_LT(ds.size(), static_cast<std::size_t>(f.lattice.size()));
  EXPECT_NE(ds.back().message.find("suppressed"), std::string::npos);
}

TEST(LatticeCheck, UnreachablePocketYieldsLC005) {
  // Two 3^3 blocks with a gap in z: the far block never sees the inlet.
  std::vector<Coord> coords = block(3, 3, 3);
  for (const Coord& c : block(3, 3, 3))
    coords.push_back(Coord{c.x, c.y, c.z + 5});
  lbm::SparseLattice lattice(std::move(coords));
  for (PointIndex i = 0; i < lattice.size(); ++i)
    if (lattice.coord(i).z == 0)
      lattice.set_node_type(i, lbm::NodeType::kVelocityInlet);
  const auto ds = analysis::check_lattice(lattice);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC005");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kWarning);
  EXPECT_NE(ds[0].message.find("27"), std::string::npos);  // 3^3 cells
}

TEST(LatticeCheck, PartitionOwnerOutOfRangeYieldsLC006) {
  const Fixture f;
  decomp::Partition partition = decomp::slab_partition(f.lattice, 2);
  partition.owner[0] = 5;
  const auto ds = analysis::check_partition(f.lattice, partition);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC006");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
}

TEST(LatticeCheck, TruncatedOwnerArrayYieldsLC006) {
  const Fixture f;
  decomp::Partition partition = decomp::slab_partition(f.lattice, 2);
  partition.owner.pop_back();
  const auto ds = analysis::check_partition(f.lattice, partition);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC006");
}

TEST(LatticeCheck, EmptyRankYieldsLC007) {
  const Fixture f;
  decomp::Partition partition = decomp::slab_partition(f.lattice, 2);
  for (auto& owner : partition.owner) owner = 0;  // rank 1 starves
  const auto ds = analysis::check_partition(f.lattice, partition);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC007");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kWarning);
}

TEST(LatticeCheck, IntactHaloPlanIsSilent) {
  const Fixture f;
  const decomp::Partition partition = decomp::slab_partition(f.lattice, 3);
  const decomp::HaloPlan plan = decomp::build_halo_plan(f.lattice, partition);
  EXPECT_TRUE(analysis::check_halo_plan(f.lattice, partition, plan).empty());
}

TEST(LatticeCheck, TruncatedHaloMapYieldsLC008) {
  const Fixture f;
  const decomp::Partition partition = decomp::slab_partition(f.lattice, 3);
  decomp::HaloPlan plan = decomp::build_halo_plan(f.lattice, partition);
  ASSERT_FALSE(plan.messages.empty());

  // Truncation flavor 1: a whole message dropped.
  decomp::HaloPlan missing = plan;
  missing.messages.pop_back();
  auto ds = analysis::check_halo_plan(f.lattice, partition, missing);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC008");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kError);
  EXPECT_NE(ds[0].message.find("missing message"), std::string::npos);

  // Truncation flavor 2: a message shortened by a few values.
  decomp::HaloPlan shortened = plan;
  shortened.messages.front().values -= 3;
  ds = analysis::check_halo_plan(f.lattice, partition, shortened);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC008");
  EXPECT_NE(ds[0].message.find("truncated halo map"), std::string::npos);
}

TEST(LatticeCheck, SelfMessageYieldsLC008) {
  const Fixture f;
  const decomp::Partition partition = decomp::slab_partition(f.lattice, 3);
  decomp::HaloPlan plan = decomp::build_halo_plan(f.lattice, partition);
  ASSERT_FALSE(plan.messages.empty());
  plan.messages.push_back(decomp::HaloMessage{1, 1, 4});
  const auto ds = analysis::check_halo_plan(f.lattice, partition, plan);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC008");
  EXPECT_NE(ds[0].message.find("overlap"), std::string::npos);
}

TEST(LatticeCheck, DistributedSolverValidateIsCleanOnCylinder) {
  const auto lattice = geom::make_cylinder_lattice(
      geom::CylinderSpec{}, geom::CylinderEnds::kInletOutlet);
  const decomp::Partition partition = decomp::slab_partition(*lattice, 4);
  lbm::SolverOptions options;
  options.inlet_velocity = 0.01;
  hemo::harvey::DistributedSolver solver(lattice, partition, options);
  const auto ds = solver.validate();
  EXPECT_TRUE(ds.empty());
  // The hook is pre-flight: validating must not advance the simulation.
  EXPECT_EQ(solver.step_count(), 0);
  solver.run(2);
  EXPECT_EQ(solver.step_count(), 2);
}

// ---------------------------------------------------------------------------
// LC010: cross-exchange CRC auditability.

namespace {

analysis::ExchangeSlots make_slots(hemo::Rank src, hemo::Rank dst,
                                   const std::vector<int>& q,
                                   const std::vector<std::int64_t>& slots) {
  analysis::ExchangeSlots e;
  e.src = src;
  e.dst = dst;
  e.q = q.data();
  e.dst_local = slots.data();
  e.count = static_cast<std::int64_t>(q.size());
  return e;
}

}  // namespace

TEST(ExchangeAuditability, DisjointUnpackTargetsAreSilent) {
  const std::vector<int> qa = {1, 2};
  const std::vector<std::int64_t> sa = {10, 11};
  const std::vector<int> qb = {1, 2};
  const std::vector<std::int64_t> sb = {20, 21};
  const std::vector<analysis::ExchangeSlots> exchanges = {
      make_slots(0, 1, qa, sa), make_slots(2, 1, qb, sb)};
  EXPECT_TRUE(analysis::check_exchange_auditability(exchanges).empty());
}

TEST(ExchangeAuditability, CrossExchangeDuplicateYieldsLC010) {
  // Two different senders unpack into the same (dst, q, slot): a CRC frame
  // failure on that slot cannot be attributed to an edge.
  const std::vector<int> qa = {1, 2};
  const std::vector<std::int64_t> sa = {10, 11};
  const std::vector<int> qb = {3, 2};
  const std::vector<std::int64_t> sb = {20, 11};  // (q=2, slot=11) again
  const std::vector<analysis::ExchangeSlots> exchanges = {
      make_slots(0, 1, qa, sa), make_slots(2, 1, qb, sb)};
  const auto ds = analysis::check_exchange_auditability(exchanges);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule_id, "LC010");
  EXPECT_EQ(ds[0].severity, analysis::Severity::kWarning);
  EXPECT_NE(ds[0].message.find("CRC"), std::string::npos);
}

TEST(ExchangeAuditability, SamePairDuplicateIsLeftToLC009) {
  // A duplicate within one (src, dst) exchange is LC009's finding — the
  // auditability rule must not double-report it.
  const std::vector<int> qa = {1, 1};
  const std::vector<std::int64_t> sa = {10, 10};
  const std::vector<int> qb = {1};
  const std::vector<std::int64_t> sb = {10};
  const std::vector<analysis::ExchangeSlots> exchanges = {
      make_slots(0, 1, qa, sa), make_slots(0, 1, qb, sb)};
  EXPECT_TRUE(analysis::check_exchange_auditability(exchanges).empty());
}

TEST(ExchangeAuditability, DifferentDstRanksDoNotCollide) {
  const std::vector<int> qa = {4};
  const std::vector<std::int64_t> sa = {10};
  const std::vector<int> qb = {4};
  const std::vector<std::int64_t> sb = {10};
  const std::vector<analysis::ExchangeSlots> exchanges = {
      make_slots(0, 1, qa, sa), make_slots(0, 2, qb, sb)};
  EXPECT_TRUE(analysis::check_exchange_auditability(exchanges).empty());
}
