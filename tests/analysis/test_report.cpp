// Reporter tests: the text listing is compiler-style, the JSON document
// is well-formed and stable (CI diffs lint baselines across PRs), and
// aggregation helpers count correctly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/report.hpp"

namespace analysis = hemo::analysis;
using analysis::Diagnostic;
using analysis::Severity;

namespace {

std::vector<Diagnostic> sample() {
  return {
      {"HL002", Severity::kError, "cudax/streaming.cpp", 9,
       "uninitialized dim3 declaration", "initialize at the declaration"},
      {"HL006", Severity::kWarning, "cudax/streaming.cpp", 12,
       "hard-coded work-group geometry", ""},
      {"LC001", Severity::kError, "lattice", 0, "out-of-bounds neighbor", ""},
  };
}

}  // namespace

TEST(Report, TextListsLocationsAndSummary) {
  const std::string text = analysis::text_report(sample());
  EXPECT_NE(text.find("cudax/streaming.cpp:9: error: [HL002]"),
            std::string::npos);
  EXPECT_NE(text.find("cudax/streaming.cpp:12: warning: [HL006]"),
            std::string::npos);
  // Line 0 means "not line-oriented": no colon-zero suffix.
  EXPECT_NE(text.find("lattice: error: [LC001]"), std::string::npos);
  EXPECT_EQ(text.find("lattice:0"), std::string::npos);
  EXPECT_NE(text.find("3 diagnostics"), std::string::npos);
  EXPECT_NE(text.find("2 errors"), std::string::npos);
  EXPECT_NE(text.find("fixit: initialize at the declaration"),
            std::string::npos);
}

TEST(Report, TextHandlesEmptyInput) {
  const std::string text = analysis::text_report({});
  EXPECT_NE(text.find("0 diagnostics"), std::string::npos);
}

TEST(Report, JsonCarriesSchemaRecordsAndSummary) {
  const std::string json = analysis::json_report(sample());
  EXPECT_NE(json.find("\"version\": \"hemo-lint/1\""), std::string::npos);
  EXPECT_NE(json.find("{\"ruleId\": \"HL002\", \"level\": \"error\", "
                      "\"file\": \"cudax/streaming.cpp\", \"line\": 9,"),
            std::string::npos);
  EXPECT_NE(json.find("\"summary\": {\"total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"byRule\": {\"HL002\": 1, \"HL006\": 1, "
                      "\"LC001\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"bySeverity\": {\"warning\": 1, \"error\": 2}"),
            std::string::npos);
}

TEST(Report, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(analysis::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(analysis::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(analysis::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(analysis::json_escape(std::string("a\x01""b")), "a\\u0001b");
}

TEST(Report, JsonHandlesEmptyInput) {
  const std::string json = analysis::json_report({});
  EXPECT_NE(json.find("\"results\": []"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 0"), std::string::npos);
}

TEST(Diagnostics, SortIsStableByFileLineRule) {
  std::vector<Diagnostic> ds = {
      {"HL006", Severity::kWarning, "b.cpp", 3, "m", ""},
      {"HL002", Severity::kError, "a.cpp", 9, "m", ""},
      {"HL001", Severity::kWarning, "a.cpp", 9, "m", ""},
  };
  analysis::sort_diagnostics(ds);
  EXPECT_EQ(ds[0].rule_id, "HL001");
  EXPECT_EQ(ds[1].rule_id, "HL002");
  EXPECT_EQ(ds[2].file, "b.cpp");
}

TEST(Diagnostics, CountsBySeverityAndRule) {
  const std::vector<Diagnostic> ds = sample();
  EXPECT_EQ(analysis::count_at(ds, Severity::kError), 2);
  EXPECT_EQ(analysis::count_at(ds, Severity::kWarning), 1);
  EXPECT_EQ(analysis::count_at(ds, Severity::kNote), 0);
  const auto by_file = analysis::count_by_file(ds);
  EXPECT_EQ(by_file.at("cudax/streaming.cpp"), 2);
  EXPECT_EQ(by_file.at("lattice"), 1);
}
