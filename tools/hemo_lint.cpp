// hemo_lint: CLI driver for the hemo::analysis subsystem.
//
//   hemo_lint --corpus [cudax|hipx|syclx|kokkosx|all] [--json] [--werror]
//             [--min-rules N]
//       Lint the porting-study corpus.  Exits nonzero if --werror and any
//       error-severity diagnostic fired, or if fewer than N distinct
//       rules fired (regression guard used by ctest).
//
//   hemo_lint --lattice [periodic|inletoutlet] [--scale S] [--ranks R]
//             [--json]
//       Build a cylinder geometry, run the lattice consistency checker
//       (plus partition/halo-plan checks when --ranks > 1) and exit
//       nonzero if any diagnostic fired: a clean geometry must be silent.
//
//   hemo_lint --flux [cudax|hipx|syclx|kokkosx|all] [--json]
//       Static memory-traffic audit (MT rules) of the dialect corpora
//       against the Section 6 model.  With --json, emits the combined
//       {"traffic": ..., "findings": ...} document.  Exits 2 on any
//       finding: the checked-in corpora must be traffic-clean.
//
//   hemo_lint --concurrency [--json]
//       Static concurrency audit (CC rules) of src/rt + src/resilience.
//       Exits 2 on any finding.
//
//   Any analysis mode also accepts:
//     --baseline FILE       suppress findings recorded in FILE
//     --emit-baseline FILE  write the current findings to FILE and exit 0
//
//   hemo_lint --list-rules
//       Print the unified rule registry (HL/LC/RS/MT/CC).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/concurrency.hpp"
#include "analysis/flux_rules.hpp"
#include "analysis/lattice_check.hpp"
#include "analysis/registry.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "perf/model.hpp"
#include "port/corpus.hpp"

namespace {

using namespace hemo;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --corpus [cudax|hipx|syclx|kokkosx|all] [--json] "
               "[--werror] [--min-rules N]\n"
               "       %s --lattice [periodic|inletoutlet] [--scale S] "
               "[--ranks R] [--json]\n"
               "       %s --flux [cudax|hipx|syclx|kokkosx|all] [--json]\n"
               "       %s --concurrency [--json]\n"
               "       %s --list-rules\n"
               "  analysis modes also accept --baseline FILE and "
               "--emit-baseline FILE\n",
               argv0, argv0, argv0, argv0, argv0);
  return 1;
}

bool parse_int(const char* text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_double(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

int bad_number(const std::string& flag, const char* value, const char* argv0) {
  std::fprintf(stderr, "%s requires a valid number, got '%s'\n", flag.c_str(),
               value == nullptr ? "" : value);
  return usage(argv0);
}

void print(const std::vector<analysis::Diagnostic>& diagnostics, bool json) {
  std::cout << (json ? analysis::json_report(diagnostics)
                     : analysis::text_report(diagnostics));
}

bool parse_dialects(const std::string& which,
                    std::vector<port::CorpusDialect>* out) {
  if (which == "all" || which.empty()) {
    *out = {port::CorpusDialect::kCudax, port::CorpusDialect::kHipx,
            port::CorpusDialect::kSyclx, port::CorpusDialect::kKokkosx};
  } else if (which == "cudax") {
    *out = {port::CorpusDialect::kCudax};
  } else if (which == "hipx") {
    *out = {port::CorpusDialect::kHipx};
  } else if (which == "syclx") {
    *out = {port::CorpusDialect::kSyclx};
  } else if (which == "kokkosx") {
    *out = {port::CorpusDialect::kKokkosx};
  } else {
    std::fprintf(stderr, "unknown corpus dialect '%s'\n", which.c_str());
    return false;
  }
  return true;
}

/// Baseline handling shared by every analysis mode.  Returns false (and
/// sets *exit_code) when the run should stop after emitting a baseline,
/// or when the baseline file cannot be read.
bool apply_baseline_flags(std::vector<analysis::Diagnostic>* all,
                          const std::string& baseline_path,
                          const std::string& emit_baseline_path,
                          int* exit_code) {
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in.good()) {
      std::fprintf(stderr, "hemo_lint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      *exit_code = 1;
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *all = analysis::apply_baseline(*all,
                                    analysis::parse_baseline(buffer.str()));
  }
  if (!emit_baseline_path.empty()) {
    std::ofstream out(emit_baseline_path);
    if (!out.good()) {
      std::fprintf(stderr, "hemo_lint: cannot write baseline '%s'\n",
                   emit_baseline_path.c_str());
      *exit_code = 1;
      return false;
    }
    out << analysis::write_baseline(*all);
    std::fprintf(stderr, "hemo_lint: wrote %zu finding(s) to baseline %s\n",
                 all->size(), emit_baseline_path.c_str());
    *exit_code = 0;
    return false;
  }
  return true;
}

int run_corpus(const std::string& which, bool json, bool werror, int min_rules,
               const std::string& baseline_path,
               const std::string& emit_baseline_path) {
  std::vector<port::CorpusDialect> dialects;
  if (!parse_dialects(which, &dialects)) return 1;

  std::vector<analysis::Diagnostic> all;
  for (const port::CorpusDialect d : dialects) {
    std::vector<analysis::Diagnostic> ds = analysis::lint_corpus(d);
    all.insert(all.end(), ds.begin(), ds.end());
  }
  analysis::sort_diagnostics(all);
  int exit_code = 0;
  if (!apply_baseline_flags(&all, baseline_path, emit_baseline_path,
                            &exit_code))
    return exit_code;
  print(all, json);

  const int distinct = analysis::distinct_rule_count(all);
  if (distinct < min_rules) {
    std::fprintf(stderr,
                 "hemo_lint: only %d distinct rules fired, expected >= %d "
                 "(lint regression?)\n",
                 distinct, min_rules);
    return 2;
  }
  if (werror && analysis::count_at(all, analysis::Severity::kError) > 0)
    return 2;
  return 0;
}

int run_lattice(const std::string& ends_name, double scale, int ranks,
                bool json, const std::string& baseline_path,
                const std::string& emit_baseline_path) {
  if (ends_name != "periodic" && ends_name != "inletoutlet") {
    std::fprintf(stderr, "unknown lattice ends '%s'\n", ends_name.c_str());
    return 1;
  }
  geom::CylinderSpec spec;
  spec.scale = scale;
  const geom::CylinderEnds ends = (ends_name == "periodic")
                                      ? geom::CylinderEnds::kPeriodic
                                      : geom::CylinderEnds::kInletOutlet;
  const auto lattice = geom::make_cylinder_lattice(spec, ends);

  std::vector<analysis::Diagnostic> all = analysis::check_lattice(*lattice);
  if (ranks > 1) {
    const decomp::Partition partition =
        decomp::bisection_partition(*lattice, ranks);
    std::vector<analysis::Diagnostic> ds =
        analysis::check_partition(*lattice, partition);
    all.insert(all.end(), ds.begin(), ds.end());
    const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, partition);
    ds = analysis::check_halo_plan(*lattice, partition, plan);
    all.insert(all.end(), ds.begin(), ds.end());
  }
  analysis::sort_diagnostics(all);
  int exit_code = 0;
  if (!apply_baseline_flags(&all, baseline_path, emit_baseline_path,
                            &exit_code))
    return exit_code;
  print(all, json);
  return all.empty() ? 0 : 2;
}

int run_flux(const std::string& which, bool json,
             const std::string& baseline_path,
             const std::string& emit_baseline_path) {
  std::vector<port::CorpusDialect> dialects;
  if (!parse_dialects(which, &dialects)) return 1;
  const perf::ModelParams params;

  std::vector<analysis::Diagnostic> all;
  if (which == "all" || which.empty()) {
    all = analysis::audit_all_corpora(params);  // includes MT006
  } else {
    for (const port::CorpusDialect d : dialects) {
      std::vector<analysis::Diagnostic> ds =
          analysis::audit_corpus_traffic(d, params);
      all.insert(all.end(), ds.begin(), ds.end());
    }
    analysis::sort_diagnostics(all);
  }
  int exit_code = 0;
  if (!apply_baseline_flags(&all, baseline_path, emit_baseline_path,
                            &exit_code))
    return exit_code;
  if (json) {
    std::cout << "{\"traffic\": " << analysis::traffic_audit_json(params)
              << ", \"findings\": " << analysis::json_report(all) << "}\n";
  } else {
    print(all, json);
  }
  return all.empty() ? 0 : 2;
}

int run_concurrency(bool json, const std::string& baseline_path,
                    const std::string& emit_baseline_path) {
  std::vector<analysis::Diagnostic> all =
      analysis::check_runtime_concurrency();
  int exit_code = 0;
  if (!apply_baseline_flags(&all, baseline_path, emit_baseline_path,
                            &exit_code))
    return exit_code;
  print(all, json);
  return all.empty() ? 0 : 2;
}

int list_rules() {
  for (const analysis::RuleInfo& r : analysis::rule_registry())
    std::printf("%s  %-36s  %-7s  %s\n", r.id.c_str(), r.name.c_str(),
                analysis::severity_name(r.severity), r.summary.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::string mode_arg;
  bool json = false;
  bool werror = false;
  int min_rules = 0;
  double scale = 1.0;
  int ranks = 1;
  std::string baseline_path;
  std::string emit_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--corpus" || arg == "--lattice" || arg == "--flux") {
      mode = arg;
      // Optional positional operand (dialect / end treatment).
      if (i + 1 < argc && argv[i + 1][0] != '-') mode_arg = argv[++i];
    } else if (arg == "--concurrency" || arg == "--list-rules") {
      mode = arg;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--min-rules") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, &min_rules) || min_rules < 0)
        return bad_number(arg, v, argv[0]);
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr || !parse_double(v, &scale) || scale <= 0.0)
        return bad_number(arg, v, argv[0]);
    } else if (arg == "--ranks") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, &ranks) || ranks < 1)
        return bad_number(arg, v, argv[0]);
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--emit-baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      emit_baseline_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  if (mode == "--corpus")
    return run_corpus(mode_arg, json, werror, min_rules, baseline_path,
                      emit_baseline_path);
  if (mode == "--lattice")
    return run_lattice(mode_arg.empty() ? "inletoutlet" : mode_arg, scale,
                       ranks, json, baseline_path, emit_baseline_path);
  if (mode == "--flux")
    return run_flux(mode_arg, json, baseline_path, emit_baseline_path);
  if (mode == "--concurrency")
    return run_concurrency(json, baseline_path, emit_baseline_path);
  if (mode == "--list-rules") return list_rules();
  return usage(argv[0]);
}
