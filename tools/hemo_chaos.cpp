// hemo_chaos: chaos harness for the resilience subsystem.
//
//   hemo_chaos [--scale S] [--ranks N] [--steps N] [--seed N]
//              [--kinds all|k1,k2,...] [--events N] [--periodic]
//              [--decomp slab|bisection] [--max-retransmits N]
//              [--max-rollbacks N] [--snapshot-interval N] [--no-frames]
//              [--kill-rank R@S ...] [--death-deadline N]
//              [--min-survivors N] [--report FILE|-] [--json FILE|-]
//              [--quiet]
//       Runs the distributed cylinder solver twice — once clean, once with
//       a seeded deterministic fault schedule injected into its network —
//       and emits a survival/recovery report.  --kill-rank R@S injects a
//       PERMANENT rank death (repeatable); the solver must then shrink
//       onto the survivors.  Kill runs are executed twice with the same
//       schedule and the two final states compared, so the report also
//       certifies that recovery is deterministic.
//
//   hemo_chaos --sdc [common flags above] [--flips N] [--tile-points N]
//              [--check-interval N] [--reexec-sample N]
//              [--quarantine-threshold N]
//       Silent-data-corruption gate for the RS006 sentinel: a seeded plan
//       of in-memory bit flips (FaultPlan::bit_flips) is injected directly
//       into live distribution slots — the wire never sees them — and the
//       run is scored against the plan's ground truth: every fired flip
//       must be detected by the sentinel, localized to the {rank, tile} it
//       actually landed on within the snapshot interval, and rolled back
//       to a final state bit-identical to the unfaulted reference, with
//       zero spurious detections and zero false positives.
//
//   hemo_chaos --campaign [common flags above] [--ckpt-interval N]
//       Demonstrates checkpoint/restart through the hemo-rt job layer: the
//       job checkpoints periodically, attempt 1 dies on an unrecoverable
//       injected stall (structured SolverFault), and the retry resumes
//       from the last on-disk checkpoint.
//
//   hemo_chaos --serve-crash [--series S]... [--workers N] [--seed N]
//              [--report FILE|-] [--json FILE|-] [--quiet]
//       Crash/recovery gate for the hemo-durable serving tier.  A golden
//       child process serves a campaign uninterrupted; then, for each of
//       three seeded kill points — pre-admission, mid-campaign, and
//       pre-terminal-record — a child serves the same campaign with a
//       write-ahead journal armed to SIGKILL-style _exit(137) after the
//       Nth record, and a recovery child replays the journal, resumes
//       the unfinished request, and finishes it.  The gate passes only
//       if every recovered campaign is byte-identical to the golden CSV
//       and the dedup counters prove journaled points were delivered
//       from the log, never re-executed.
//
// Fault kinds (--list-kinds prints this): drop duplicate corrupt delay
// truncate stall (transient, one-shot; what --kinds all draws from),
// rank-death (permanent; via --kill-rank), and bit-flip (in-memory SDC;
// via --sdc, or --kinds bit-flip to mix flips into a network chaos run —
// either arms the sentinel).
//
// Exit codes (consumed by the ctest gates and the CI chaos-smoke matrix):
//   0  survived: every fault recovered, final state bit-identical to the
//      clean reference (and, for kill runs, across reruns)
//   2  structural fault: the recovery ladder was exhausted (SolverFault),
//      or the command line was malformed
//   3  divergence: the run survived but its final state differs from the
//      clean reference, or a kill-run rerun did not reproduce it
//
// Examples:
//   hemo_chaos --ranks 4 --steps 40 --seed 7 --kinds all --report chaos.csv
//   hemo_chaos --ranks 8 --steps 40 --events 0 --kill-rank 5@17 --json -
//   hemo_chaos --campaign --ranks 4 --steps 60 --seed 11

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "base/table.hpp"
#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "harvey/distributed_solver.hpp"
#include "resilience/fault.hpp"
#include "resilience/faulty_network.hpp"
#include "rt/campaign.hpp"
#include "rt/job.hpp"
#include "serve/recovery.hpp"
#include "serve/server.hpp"
#include "sys/hardware.hpp"

namespace {

using namespace hemo;

/// One --kill-rank R@S: rank R dies permanently at step S.
struct KillSpec {
  int rank = 0;
  int step = 0;
};

struct Config {
  double scale = 1.0;
  int ranks = 4;
  int steps = 40;
  std::uint64_t seed = 7;
  std::vector<resilience::FaultKind> kinds{std::begin(resilience::kAllFaultKinds),
                                           std::end(resilience::kAllFaultKinds)};
  int events_per_kind = 1;
  bool periodic = false;
  bool bisection = false;
  int max_retransmits = 3;
  int max_rollbacks = 4;
  int snapshot_interval = 8;
  bool frames = true;
  bool campaign = false;
  int ckpt_interval = 10;
  bool sdc = false;
  int flips = 8;
  int tile_points = 256;
  int check_interval = 1;
  int reexec_sample = 0;
  int quarantine_threshold = 3;
  bool serve_crash = false;
  int workers = 4;
  std::vector<std::string> serve_series;  // empty: the default series
  std::vector<KillSpec> kills;
  int death_deadline = 2;
  int min_survivors = 1;
  std::string report_path;
  std::string json_path;
  bool quiet = false;
};

// Exit codes, documented in the header comment above.
constexpr int kExitSurvived = 0;
constexpr int kExitStructural = 2;
constexpr int kExitDivergence = 3;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scale S] [--ranks N] [--steps N] [--seed N]\n"
      "       %*s [--kinds all|k1,k2,...] [--list-kinds]\n"
      "       %*s [--events N] [--periodic] [--decomp slab|bisection]\n"
      "       %*s [--max-retransmits N] [--max-rollbacks N]\n"
      "       %*s [--snapshot-interval N] [--no-frames]\n"
      "       %*s [--kill-rank R@S] [--death-deadline N] [--min-survivors N]\n"
      "       %*s [--campaign] [--ckpt-interval N] [--report FILE|-]\n"
      "       %*s [--json FILE|-] [--quiet]\n"
      "       %s --sdc [--flips N] [--tile-points N] [--check-interval N]\n"
      "       %*s [--reexec-sample N] [--quarantine-threshold N]\n"
      "       %s --serve-crash [--series S]... [--workers N] [--seed N]\n"
      "       %*s [--report FILE|-] [--json FILE|-] [--quiet]\n",
      argv0, static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "", argv0,
      static_cast<int>(std::strlen(argv0)), "", argv0,
      static_cast<int>(std::strlen(argv0)), "");
  return kExitStructural;
}

/// Every kind --kinds accepts, in enum order: the transient set plus the
/// two opt-in kinds (which parse_fault_kind also recognizes).
std::vector<resilience::FaultKind> all_parseable_kinds() {
  std::vector<resilience::FaultKind> kinds(
      std::begin(resilience::kAllFaultKinds),
      std::end(resilience::kAllFaultKinds));
  kinds.push_back(resilience::FaultKind::kRankDeath);
  kinds.push_back(resilience::FaultKind::kBitFlip);
  return kinds;
}

std::string valid_kinds_text() {
  std::string out = "all";
  for (const resilience::FaultKind kind : all_parseable_kinds()) {
    out += ", ";
    out += resilience::fault_kind_name(kind);
  }
  return out;
}

/// --list-kinds: the machine-checkable catalogue of injectable faults.
int list_kinds() {
  std::printf("transient network faults (what --kinds all draws from):\n");
  for (const resilience::FaultKind kind : resilience::kAllFaultKinds)
    std::printf("  %s\n",
                std::string(resilience::fault_kind_name(kind)).c_str());
  std::printf(
      "opt-in faults (accepted by --kinds, excluded from 'all'):\n"
      "  rank-death  permanent kill; scheduled via --kill-rank R@S\n"
      "  bit-flip    in-memory SDC; seeded via --sdc or --kinds bit-flip\n");
  return kExitSurvived;
}

/// "R@S" -> {rank R, step S}.
bool parse_kill(const char* text, KillSpec* out) {
  const char* at = std::strchr(text, '@');
  if (at == nullptr || at == text || at[1] == '\0') return false;
  char* end = nullptr;
  const long rank = std::strtol(text, &end, 10);
  if (end != at || rank < 0) return false;
  const long step = std::strtol(at + 1, &end, 10);
  if (*end != '\0' || step < 0) return false;
  out->rank = static_cast<int>(rank);
  out->step = static_cast<int>(step);
  return true;
}

bool parse_int(const char* text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

/// Parses "all" or a comma list of kind names.  On failure `*bad_token`
/// holds the first token that did not parse (possibly empty, for a
/// dangling comma or an empty list), so the caller can name the culprit
/// instead of dumping the generic usage text.
bool parse_kinds(const std::string& text,
                 std::vector<resilience::FaultKind>* out,
                 std::string* bad_token) {
  if (text == "all") {
    out->assign(std::begin(resilience::kAllFaultKinds),
                std::end(resilience::kAllFaultKinds));
    return true;
  }
  out->clear();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    resilience::FaultKind kind;
    if (!resilience::parse_fault_kind(token, &kind)) {
      *bad_token = token;
      return false;
    }
    out->push_back(kind);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out->empty()) {
    *bad_token = "";
    return false;
  }
  return true;
}

struct SolverSetup {
  std::shared_ptr<const lbm::SparseLattice> lattice;
  decomp::Partition partition;
  lbm::SolverOptions options;
};

SolverSetup make_setup(const Config& cfg) {
  geom::CylinderSpec spec;
  spec.scale = cfg.scale;
  spec.radius_per_scale = 5.0;
  spec.axial_per_scale = 24.0;
  SolverSetup s;
  s.lattice = geom::make_cylinder_lattice(
      spec, cfg.periodic ? geom::CylinderEnds::kPeriodic
                         : geom::CylinderEnds::kInletOutlet);
  s.partition = cfg.bisection ? decomp::bisection_partition(*s.lattice, cfg.ranks)
                              : decomp::slab_partition(*s.lattice, cfg.ranks);
  s.options.tau = 0.9;
  if (cfg.periodic) {
    s.options.body_force = {0.0, 0.0, 1e-6};
  } else {
    s.options.inlet_velocity = 0.01;
    s.options.outlet_density = 1.0;
  }
  return s;
}

bool wants_bit_flips(const Config& cfg) {
  return cfg.sdc ||
         std::find(cfg.kinds.begin(), cfg.kinds.end(),
                   resilience::FaultKind::kBitFlip) != cfg.kinds.end();
}

resilience::Options resilience_options(const Config& cfg) {
  resilience::Options o;
  o.health.closed_system = cfg.periodic;
  o.recovery.max_retransmits = cfg.max_retransmits;
  o.recovery.max_rollbacks = cfg.max_rollbacks;
  o.recovery.checkpoint_interval = cfg.snapshot_interval;
  o.recovery.checksum_frames = cfg.frames;
  // A permanent kill is unrecoverable by the transient ladder; arm the
  // shrink rung whenever one is scheduled.
  o.shrink.enabled = !cfg.kills.empty();
  o.shrink.death_deadline = cfg.death_deadline;
  o.shrink.min_survivors = cfg.min_survivors;
  if (wants_bit_flips(cfg)) {
    // Bit flips are invisible to the wire-level guards; arm the sentinel.
    o.sentinel.enabled = true;
    o.sentinel.tile_points = cfg.tile_points;
    o.sentinel.check_interval = cfg.check_interval;
    o.sentinel.reexec_sample = cfg.reexec_sample;
    o.sentinel.quarantine_threshold = cfg.quarantine_threshold;
    // Every detection spends one rollback; budget for the whole plan so
    // the run is scored on coverage, not on running out of recoveries.
    o.recovery.max_rollbacks +=
        cfg.sdc ? cfg.flips : cfg.events_per_kind;
    // Let repeated hits on one rank escalate to quarantine (RS005).
    o.shrink.enabled = true;
  }
  return o;
}

std::vector<double> clean_reference(const SolverSetup& s, int steps) {
  harvey::DistributedSolver solver(s.lattice, s.partition, s.options);
  solver.run(steps);
  return solver.global_distributions();
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

void write_report(const Config& cfg, const std::vector<Table>& tables) {
  if (cfg.report_path.empty()) return;
  if (cfg.report_path == "-") {
    for (const Table& t : tables) t.print_csv(std::cout);
    return;
  }
  std::ofstream os(cfg.report_path);
  if (!os) {
    std::fprintf(stderr, "hemo_chaos: cannot open report file '%s'\n",
                 cfg.report_path.c_str());
    return;
  }
  for (const Table& t : tables) t.print_csv(os);
}

const char* yes_no(bool v) { return v ? "yes" : "no"; }

/// Everything observed in one faulted run, detached from the solver so
/// that a rerun with the same schedule can be compared against it.
struct ChaosRun {
  bool survived = false;
  std::string fault_message;
  std::vector<double> state;  // valid iff survived
  double final_mass = 0.0;
  resilience::RunStats stats;
  resilience::FaultLog log;
  std::vector<std::pair<std::string, std::pair<int, int>>>
      events;  // kind -> (planned, fired)
  std::vector<Rank> dead_ranks;
  int survivor_count = 0;
};

ChaosRun run_once(const Config& cfg, const SolverSetup& setup,
                  const resilience::FaultPlan& plan) {
  harvey::DistributedSolver solver(setup.lattice, setup.partition,
                                   setup.options);
  auto owned_net = std::make_unique<resilience::FaultyNetwork>(
      solver.n_ranks(), plan);
  resilience::FaultyNetwork* net_raw = owned_net.get();
  solver.set_network(std::move(owned_net));
  // Bit-flip events live in the same plan but are applied by the solver,
  // not the network; sharing the network's copy keeps the one-shot fired
  // flags consistent across both injection paths.
  solver.set_fault_injection(&net_raw->plan());
  solver.enable_resilience(resilience_options(cfg));

  ChaosRun run;
  run.survived = true;
  try {
    solver.run(cfg.steps);
  } catch (const resilience::SolverFault& fault) {
    run.survived = false;
    run.fault_message = fault.what();
  }

  const auto* net =
      dynamic_cast<const resilience::FaultyNetwork*>(&solver.network());
  run.stats = solver.resilience_stats();
  run.log = net->log();
  std::vector<resilience::FaultKind> kinds = cfg.kinds;
  if (!cfg.kills.empty()) kinds.push_back(resilience::FaultKind::kRankDeath);
  for (const resilience::FaultKind kind : kinds)
    run.events.emplace_back(
        std::string(resilience::fault_kind_name(kind)),
        std::make_pair(net->plan().count(kind),
                       net->plan().fired_count(kind)));
  run.dead_ranks = run.stats.dead_ranks;
  run.survivor_count = solver.survivor_count();
  run.final_mass = solver.total_mass();
  if (run.survived) run.state = solver.global_distributions();
  return run;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// Machine-readable single-object report: configuration, per-kind event
/// counts, recovery counters, shrink provenance, and the verdict with the
/// exit code the process is about to return.
void write_json(const Config& cfg, const ChaosRun& run, double reference_mass,
                bool identical, bool rerun_identical, int exit_code) {
  if (cfg.json_path.empty()) return;
  std::ofstream file;
  if (cfg.json_path != "-") {
    file.open(cfg.json_path);
    if (!file) {
      std::fprintf(stderr, "hemo_chaos: cannot open json file '%s'\n",
                   cfg.json_path.c_str());
      return;
    }
  }
  std::ostream& os = cfg.json_path == "-" ? std::cout : file;

  os << "{\n";
  os << "  \"config\": {\"ranks\": " << cfg.ranks << ", \"steps\": "
     << cfg.steps << ", \"seed\": " << cfg.seed << ", \"decomp\": \""
     << (cfg.bisection ? "bisection" : "slab") << "\", \"kills\": [";
  for (std::size_t k = 0; k < cfg.kills.size(); ++k)
    os << (k ? ", " : "") << "{\"rank\": " << cfg.kills[k].rank
       << ", \"step\": " << cfg.kills[k].step << "}";
  os << "]},\n";

  os << "  \"events\": [";
  for (std::size_t k = 0; k < run.events.size(); ++k)
    os << (k ? ", " : "") << "{\"kind\": \"" << run.events[k].first
       << "\", \"planned\": " << run.events[k].second.first
       << ", \"fired\": " << run.events[k].second.second << "}";
  os << "],\n";

  const resilience::RunStats& s = run.stats;
  os << "  \"recovery\": {\"recv_missing\": " << s.recv_missing
     << ", \"recv_wrong_size\": " << s.recv_wrong_size
     << ", \"crc_mismatches\": " << s.crc_mismatch
     << ", \"retransmits\": " << s.retransmits
     << ", \"stragglers_drained\": " << s.stragglers_drained
     << ", \"halo_audit_mismatches\": " << s.halo_audit_mismatches
     << ", \"health_errors\": " << s.health_errors
     << ", \"rollbacks\": " << s.rollbacks
     << ", \"snapshots\": " << s.snapshots
     << ", \"sdc_detected\": " << s.sdc_detected
     << ", \"sdc_false_positive\": " << s.sdc_false_positive
     << ", \"sdc_quarantines\": " << s.sdc_quarantines << "},\n";

  os << "  \"shrink\": {\"rank_deaths\": " << s.rank_deaths
     << ", \"shrinks\": " << s.shrinks << ", \"dead_ranks\": [";
  for (std::size_t k = 0; k < run.dead_ranks.size(); ++k)
    os << (k ? ", " : "") << run.dead_ranks[k];
  os << "], \"recovery_step\": " << s.last_recovery_step
     << ", \"survivor_count\": " << run.survivor_count << "},\n";

  char mass[64];
  std::snprintf(mass, sizeof(mass), "%.17g", run.final_mass);
  char ref_mass[64];
  std::snprintf(ref_mass, sizeof(ref_mass), "%.17g", reference_mass);
  os << "  \"verdict\": {\"survived\": " << (run.survived ? "true" : "false")
     << ", \"bit_identical\": " << (identical ? "true" : "false")
     << ", \"rerun_identical\": " << (rerun_identical ? "true" : "false")
     << ", \"final_mass\": " << mass << ", \"reference_mass\": " << ref_mass
     << ", \"fault\": \"" << json_escape(run.fault_message)
     << "\", \"exit_code\": " << exit_code << "}\n";
  os << "}\n";
}

int run_solver_chaos(const Config& cfg) {
  const SolverSetup setup = make_setup(cfg);
  const std::vector<double> reference = clean_reference(setup, cfg.steps);
  double reference_mass = 0.0;
  for (const double v : reference) reference_mass += v;

  resilience::FaultPlan plan;
  {
    harvey::DistributedSolver probe(setup.lattice, setup.partition,
                                    setup.options);
    plan = resilience::FaultPlan::random(cfg.seed, cfg.steps,
                                         probe.exchange_pairs(), cfg.kinds,
                                         cfg.events_per_kind);
  }
  for (const KillSpec& kill : cfg.kills) {
    if (kill.rank >= cfg.ranks) {
      std::fprintf(stderr, "hemo_chaos: --kill-rank %d@%d: rank out of "
                           "range for --ranks %d\n",
                   kill.rank, kill.step, cfg.ranks);
      return kExitStructural;
    }
    plan.kill_rank(kill.rank, kill.step);
  }

  const ChaosRun run = run_once(cfg, setup, plan);
  const bool identical =
      run.survived && bit_identical(run.state, reference);

  // Determinism gate for permanent kills: the same seed + kill schedule
  // must reproduce the recovery — and the final state — bit for bit.
  bool rerun_identical = true;
  if (!cfg.kills.empty()) {
    const ChaosRun rerun = run_once(cfg, setup, plan);
    rerun_identical = run.survived == rerun.survived &&
                      (!run.survived ||
                       bit_identical(run.state, rerun.state));
  }

  const int exit_code = !run.survived ? kExitStructural
                        : (identical && rerun_identical) ? kExitSurvived
                                                         : kExitDivergence;

  Table injection({"Fault kind", "Planned", "Fired", "Recovered"});
  for (const auto& [kind, counts] : run.events)
    injection.add_row({kind, std::to_string(counts.first),
                       std::to_string(counts.second),
                       run.survived ? std::to_string(counts.second) : "?"});

  const resilience::RunStats& stats = run.stats;
  Table recovery({"Metric", "Value"});
  recovery.add_row({"steps", std::to_string(cfg.steps)});
  recovery.add_row({"ranks", std::to_string(cfg.ranks)});
  recovery.add_row({"seed", std::to_string(cfg.seed)});
  recovery.add_row({"faults_injected",
                    std::to_string(run.log.total_injected())});
  recovery.add_row({"recv_missing", std::to_string(stats.recv_missing)});
  recovery.add_row({"recv_wrong_size",
                    std::to_string(stats.recv_wrong_size)});
  recovery.add_row({"crc_mismatches", std::to_string(stats.crc_mismatch)});
  recovery.add_row({"retransmits", std::to_string(stats.retransmits)});
  recovery.add_row({"stragglers_drained",
                    std::to_string(stats.stragglers_drained)});
  recovery.add_row({"halo_audit_mismatches",
                    std::to_string(stats.halo_audit_mismatches)});
  recovery.add_row({"health_errors", std::to_string(stats.health_errors)});
  recovery.add_row({"rollbacks", std::to_string(stats.rollbacks)});
  recovery.add_row({"snapshots", std::to_string(stats.snapshots)});
  recovery.add_row({"rank_deaths", std::to_string(stats.rank_deaths)});
  recovery.add_row({"shrinks", std::to_string(stats.shrinks)});
  recovery.add_row({"survivors", std::to_string(run.survivor_count)});
  recovery.add_row({"survived", yes_no(run.survived)});
  recovery.add_row({"bit_identical", yes_no(identical)});
  if (!cfg.kills.empty())
    recovery.add_row({"rerun_identical", yes_no(rerun_identical)});

  if (!cfg.quiet) {
    injection.print_aligned(std::cout);
    std::cout << '\n';
    recovery.print_aligned(std::cout);
    if (!run.survived)
      std::cout << "\nUNRECOVERED: " << run.fault_message << '\n';
    else if (!identical)
      std::cout << "\nMISMATCH: recovered run diverged from the clean "
                   "reference\n";
    else if (!rerun_identical)
      std::cout << "\nMISMATCH: rerun with the same kill schedule did not "
                   "reproduce the recovery\n";
    else
      std::cout << "\nall injected faults recovered; final state "
                   "bit-identical to the clean run\n";
    for (const auto& d : stats.diagnostics)
      std::cout << "  [" << d.rule_id << "] " << d.file << ": " << d.message
                << '\n';
  }
  write_report(cfg, {injection, recovery});
  write_json(cfg, run, reference_mass, identical, rerun_identical, exit_code);
  return exit_code;
}

// ---------------------------------------------------------------------------
// --sdc: silent-data-corruption gate for the RS006 sentinel
// ---------------------------------------------------------------------------

/// One injected flip, scored against the sentinel's detections.
struct FlipOutcome {
  const resilience::FaultEvent* event = nullptr;
  bool detected = false;      // some detection on the rank it landed on
  bool localized = false;     // ...naming the exact tile it landed in
  std::int64_t latency = -1;  // steps from injection to first localization
};

struct SdcRun {
  bool survived = false;
  std::string fault_message;
  resilience::RunStats stats;
  std::vector<FlipOutcome> flips;
  int fired = 0;
  int detected = 0;
  int localized = 0;
  int spurious = 0;  // detections no fired flip explains
  std::int64_t max_latency = 0;
  double final_mass = 0.0;
  int survivor_count = 0;
  bool identical = false;
};

void write_sdc_json(const Config& cfg, const SdcRun& run, int planned,
                    double coverage, double localization, bool latency_ok,
                    double reference_mass, int exit_code) {
  if (cfg.json_path.empty()) return;
  std::ofstream file;
  if (cfg.json_path != "-") {
    file.open(cfg.json_path);
    if (!file) {
      std::fprintf(stderr, "hemo_chaos: cannot open json file '%s'\n",
                   cfg.json_path.c_str());
      return;
    }
  }
  std::ostream& os = cfg.json_path == "-" ? std::cout : file;

  os << "{\n";
  os << "  \"config\": {\"mode\": \"sdc\", \"ranks\": " << cfg.ranks
     << ", \"steps\": " << cfg.steps << ", \"seed\": " << cfg.seed
     << ", \"flips\": " << cfg.flips << ", \"tile_points\": "
     << cfg.tile_points << ", \"check_interval\": " << cfg.check_interval
     << ", \"reexec_sample\": " << cfg.reexec_sample
     << ", \"quarantine_threshold\": " << cfg.quarantine_threshold
     << ", \"snapshot_interval\": " << cfg.snapshot_interval << "},\n";

  os << "  \"injection\": {\"planned\": " << planned << ", \"fired\": "
     << run.fired << "},\n";

  char cov[32], loc[32];
  std::snprintf(cov, sizeof(cov), "%.4f", coverage);
  std::snprintf(loc, sizeof(loc), "%.4f", localization);
  const resilience::RunStats& s = run.stats;
  os << "  \"detection\": {\"checks\": " << s.sdc_checks
     << ", \"detected\": " << s.sdc_detected
     << ", \"flips_detected\": " << run.detected
     << ", \"flips_localized\": " << run.localized
     << ", \"coverage\": " << cov << ", \"localization\": " << loc
     << ", \"max_latency_steps\": " << run.max_latency
     << ", \"spurious\": " << run.spurious
     << ", \"false_positives\": " << s.sdc_false_positive
     << ", \"quarantines\": " << s.sdc_quarantines << "},\n";

  os << "  \"recovery\": {\"rollbacks\": " << s.rollbacks
     << ", \"snapshots\": " << s.snapshots << ", \"shrinks\": " << s.shrinks
     << ", \"health_errors\": " << s.health_errors
     << ", \"survivor_count\": " << run.survivor_count << "},\n";

  os << "  \"flips\": [";
  for (std::size_t k = 0; k < run.flips.size(); ++k) {
    const FlipOutcome& o = run.flips[k];
    const resilience::FaultEvent& e = *o.event;
    os << (k ? ",\n    " : "\n    ") << "{\"step\": " << e.step
       << ", \"point\": " << e.flip_point << ", \"q\": " << e.flip_q
       << ", \"bit\": " << e.flip_bit << ", \"rank\": " << e.fired_rank
       << ", \"tile\": " << e.fired_tile
       << ", \"detected\": " << (o.detected ? "true" : "false")
       << ", \"localized\": " << (o.localized ? "true" : "false")
       << ", \"latency_steps\": " << o.latency << "}";
  }
  os << (run.flips.empty() ? "" : "\n  ") << "],\n";

  char mass[64], ref_mass[64];
  std::snprintf(mass, sizeof(mass), "%.17g", run.final_mass);
  std::snprintf(ref_mass, sizeof(ref_mass), "%.17g", reference_mass);
  os << "  \"verdict\": {\"survived\": " << (run.survived ? "true" : "false")
     << ", \"coverage_ok\": " << (coverage >= 0.99 ? "true" : "false")
     << ", \"localization_ok\": " << (localization >= 0.99 ? "true" : "false")
     << ", \"latency_ok\": " << (latency_ok ? "true" : "false")
     << ", \"clean\": "
     << (run.spurious == 0 && s.sdc_false_positive == 0 ? "true" : "false")
     << ", \"bit_identical\": " << (run.identical ? "true" : "false")
     << ", \"final_mass\": " << mass << ", \"reference_mass\": " << ref_mass
     << ", \"fault\": \"" << json_escape(run.fault_message)
     << "\", \"exit_code\": " << exit_code << "}\n";
  os << "}\n";
}

int run_sdc_chaos(const Config& cfg) {
  const SolverSetup setup = make_setup(cfg);
  const std::vector<double> reference = clean_reference(setup, cfg.steps);
  double reference_mass = 0.0;
  for (const double v : reference) reference_mass += v;

  resilience::FaultPlan plan = resilience::FaultPlan::bit_flips(
      cfg.seed, cfg.steps, setup.lattice->size(), cfg.flips);

  harvey::DistributedSolver solver(setup.lattice, setup.partition,
                                   setup.options);
  solver.set_fault_injection(&plan);
  solver.enable_resilience(resilience_options(cfg));

  SdcRun run;
  run.survived = true;
  try {
    solver.run(cfg.steps);
  } catch (const resilience::SolverFault& fault) {
    run.survived = false;
    run.fault_message = fault.what();
  }
  run.stats = solver.resilience_stats();
  run.final_mass = solver.total_mass();
  run.survivor_count = solver.survivor_count();
  if (run.survived)
    run.identical = bit_identical(solver.global_distributions(), reference);

  // Score detections against the plan's recorded ground truth.  A flip is
  // detected when some detection names the rank it landed on at or after
  // its step, localized when the detection also names the exact tile; one
  // detection may explain several flips that struck the same tile inside
  // one verify window.  Conversely a detection no fired flip explains is
  // spurious — the gate demands zero.
  const std::vector<resilience::SdcDetection>& detections =
      run.stats.sdc_detections;
  for (const resilience::FaultEvent& e : plan.events()) {
    if (e.kind != resilience::FaultKind::kBitFlip || !e.fired) continue;
    ++run.fired;
    FlipOutcome o;
    o.event = &e;
    for (const resilience::SdcDetection& d : detections) {
      if (d.step < e.step || d.rank != e.fired_rank) continue;
      o.detected = true;
      if (d.tile == e.fired_tile) {
        o.localized = true;
        const std::int64_t latency = d.step - e.step;
        if (o.latency < 0 || latency < o.latency) o.latency = latency;
      }
    }
    run.detected += o.detected ? 1 : 0;
    run.localized += o.localized ? 1 : 0;
    run.max_latency = std::max(run.max_latency, o.latency);
    run.flips.push_back(o);
  }
  for (const resilience::SdcDetection& d : detections) {
    bool explained = false;
    for (const resilience::FaultEvent& e : plan.events())
      explained |= e.kind == resilience::FaultKind::kBitFlip && e.fired &&
                   e.fired_rank == d.rank && e.fired_tile == d.tile &&
                   e.step <= d.step;
    if (!explained) ++run.spurious;
  }

  const double coverage =
      run.fired == 0 ? 1.0 : static_cast<double>(run.detected) / run.fired;
  const double localization =
      run.fired == 0 ? 1.0 : static_cast<double>(run.localized) / run.fired;
  const bool latency_ok = run.max_latency <= cfg.snapshot_interval;
  const bool clean =
      run.spurious == 0 && run.stats.sdc_false_positive == 0;
  const int exit_code =
      !run.survived ? kExitStructural
      : (coverage >= 0.99 && localization >= 0.99 && latency_ok && clean &&
         run.identical)
          ? kExitSurvived
          : kExitDivergence;

  char cov[32];
  std::snprintf(cov, sizeof(cov), "%.4f", coverage);
  Table summary({"Metric", "Value"});
  summary.add_row({"steps", std::to_string(cfg.steps)});
  summary.add_row({"ranks", std::to_string(cfg.ranks)});
  summary.add_row({"seed", std::to_string(cfg.seed)});
  summary.add_row({"flips_planned", std::to_string(plan.total())});
  summary.add_row({"flips_fired", std::to_string(run.fired)});
  summary.add_row({"flips_detected", std::to_string(run.detected)});
  summary.add_row({"flips_localized", std::to_string(run.localized)});
  summary.add_row({"coverage", cov});
  summary.add_row({"max_latency_steps", std::to_string(run.max_latency)});
  summary.add_row({"spurious_detections", std::to_string(run.spurious)});
  summary.add_row({"false_positives",
                   std::to_string(run.stats.sdc_false_positive)});
  summary.add_row({"quarantines",
                   std::to_string(run.stats.sdc_quarantines)});
  summary.add_row({"rollbacks", std::to_string(run.stats.rollbacks)});
  summary.add_row({"snapshots", std::to_string(run.stats.snapshots)});
  summary.add_row({"survived", yes_no(run.survived)});
  summary.add_row({"bit_identical", yes_no(run.identical)});

  Table per_flip({"Step", "Point", "Q", "Bit", "Rank", "Tile", "Detected",
                  "Latency"});
  for (const FlipOutcome& o : run.flips) {
    const resilience::FaultEvent& e = *o.event;
    per_flip.add_row({std::to_string(e.step), std::to_string(e.flip_point),
                      std::to_string(e.flip_q), std::to_string(e.flip_bit),
                      std::to_string(e.fired_rank),
                      std::to_string(e.fired_tile),
                      o.localized ? "localized"
                                  : (o.detected ? "rank-only" : "MISSED"),
                      o.latency < 0 ? "-" : std::to_string(o.latency)});
  }

  if (!cfg.quiet) {
    per_flip.print_aligned(std::cout);
    std::cout << '\n';
    summary.print_aligned(std::cout);
    if (!run.survived)
      std::cout << "\nUNRECOVERED: " << run.fault_message << '\n';
    else if (exit_code == kExitSurvived)
      std::cout << "\nall injected flips detected, localized to their "
                   "{rank, tile}, and rolled back; final state "
                   "bit-identical to the clean run\n";
    else
      std::cout << "\nSDC GATE FAILED: coverage " << cov << ", spurious "
                << run.spurious << ", false positives "
                << run.stats.sdc_false_positive << ", bit_identical "
                << yes_no(run.identical) << '\n';
  }
  write_report(cfg, {per_flip, summary});
  write_sdc_json(cfg, run, plan.total(), coverage, localization, latency_ok,
                 reference_mass, exit_code);
  return exit_code;
}

int run_campaign_chaos(const Config& cfg) {
  if (cfg.ranks < 2) {
    std::fprintf(stderr, "--campaign needs at least 2 ranks\n");
    return kExitStructural;
  }
  const SolverSetup setup = make_setup(cfg);
  const std::vector<double> reference = clean_reference(setup, cfg.steps);

  // One unrecoverable fault mid-run: a long stall with no rollback budget
  // forces a structured SolverFault on the first attempt.  The plan's
  // fired flags are carried across attempts (transient soft error), so the
  // retry resumes cleanly from the last on-disk checkpoint.  Rank 0 always
  // communicates in a slab/bisection decomposition with >= 2 ranks.
  resilience::FaultPlan plan;
  {
    resilience::FaultEvent e;
    e.kind = resilience::FaultKind::kStall;
    e.step = cfg.steps / 2;
    e.src = 0;
    e.stall_polls = 1000;  // far beyond any retransmission budget
    plan.add(e);
  }

  const std::string ckpt_path =
      "hemo_chaos_ckpt_" + std::to_string(cfg.seed) + ".bin";
  rt::CheckpointSlot slot;
  std::int64_t resume_step = -1;

  rt::JobOptions job;
  job.name = "chaos-campaign-point";
  job.retry.max_attempts = 3;

  rt::JobOutcome<std::vector<double>> outcome =
      rt::run_job<std::vector<double>>(job, [&](int attempt) {
        harvey::DistributedSolver solver(setup.lattice, setup.partition,
                                         setup.options);
        auto net = std::make_unique<resilience::FaultyNetwork>(
            solver.n_ranks(), plan);
        resilience::FaultyNetwork* net_raw = net.get();
        solver.set_network(std::move(net));
        resilience::Options opts = resilience_options(cfg);
        opts.recovery.max_rollbacks = 0;  // force the structured failure
        solver.enable_resilience(opts);

        if (attempt > 1 && slot.has_checkpoint()) {
          solver.restore_checkpoint(slot.path);
          resume_step = solver.step_count();
        }
        try {
          while (solver.step_count() < cfg.steps) {
            const int chunk = static_cast<int>(
                std::min<std::int64_t>(cfg.ckpt_interval,
                                       cfg.steps - solver.step_count()));
            solver.run(chunk);
            solver.save_checkpoint(ckpt_path);
            slot.record(ckpt_path, solver.step_count());
          }
        } catch (const resilience::SolverFault&) {
          // The fault fired; the next attempt must not re-encounter it.
          plan = net_raw->plan();
          throw;
        }
        return solver.global_distributions();
      });

  const bool survived = outcome.ok();
  const bool identical = survived && bit_identical(*outcome.value, reference);
  std::remove(ckpt_path.c_str());

  Table table({"Metric", "Value"});
  table.add_row({"steps", std::to_string(cfg.steps)});
  table.add_row({"ranks", std::to_string(cfg.ranks)});
  table.add_row({"attempts", std::to_string(outcome.attempts)});
  table.add_row({"fault_step", std::to_string(cfg.steps / 2)});
  table.add_row({"resume_step",
                 resume_step < 0 ? "-" : std::to_string(resume_step)});
  table.add_row({"survived", yes_no(survived)});
  table.add_row({"bit_identical", yes_no(identical)});

  if (!cfg.quiet) {
    table.print_aligned(std::cout);
    if (survived && identical)
      std::cout << "\ncampaign point failed structurally, resumed from its "
                   "checkpoint, and matched the uninterrupted run "
                   "bit-for-bit\n";
    else
      std::cout << "\ncampaign resume FAILED\n";
  }
  write_report(cfg, {table});
  // Structural (2): the job never completed, or the seeded fault never
  // forced a retry, so the scenario did not exercise checkpoint/restart.
  // Divergence (3): it resumed but did not reproduce the clean run.
  if (!survived || outcome.attempts <= 1) return kExitStructural;
  return identical ? kExitSurvived : kExitDivergence;
}

// ---------------------------------------------------------------------------
// --serve-crash: crash/recovery gate for the durable serving tier
// ---------------------------------------------------------------------------

/// Every server lives in a forked child: the parent never spawns a
/// thread, so fork() stays safe, and the crash injection's _exit(137)
/// takes down a whole process exactly as SIGKILL would.
int spawn_child(const std::function<int()>& body) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    int code = 1;
    try {
      code = body();
    } catch (...) {
      code = 1;
    }
    ::_exit(code);  // skip atexit: stdio buffers belong to the parent
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

std::string serve_campaign_csv(const rt::CampaignResult& result) {
  std::ostringstream os;
  rt::write_campaign_csv(result, os);
  return os.str();
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os << bytes;
  return static_cast<bool>(os);
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream os;
  os << is.rdbuf();
  *out = os.str();
  return true;
}

/// Uninterrupted reference: serves the campaign with no journal and
/// writes the assembled CSV.  Exit 0 on success.
int serve_golden_child(const Config& cfg,
                       const std::vector<rt::SeriesSpec>& series,
                       const std::string& csv_path) {
  serve::ServeOptions options;
  options.workers = cfg.workers;
  serve::Server server(options);
  serve::ServeHandle client(server, "chaos");
  const serve::Server::SubmitOutcome outcome =
      client.submit("serve-crash", series);
  if (!outcome.admitted) return 1;
  const rt::CampaignResult result = client.wait(outcome.request_id);
  return write_file(csv_path, serve_campaign_csv(result)) ? 0 : 1;
}

/// Crash victim: same campaign, journal armed to _exit(137) after the
/// crash_after-th record.  Reaching the return statement means the
/// injection never fired — reported as exit 1, which the parent treats
/// as structural.
int serve_crash_child(const Config& cfg,
                      const std::vector<rt::SeriesSpec>& series,
                      const std::string& wal_path, std::size_t crash_after) {
  serve::ServeOptions options;
  options.workers = cfg.workers;
  serve::JournalOptions journal;
  journal.path = wal_path;
  journal.group_commit = 1;
  journal.crash_after_records = crash_after;
  options.journal = journal;
  serve::Server server(options);
  // Journaled tenant config = record 1, so every kill point's record
  // count below is deterministic.
  server.configure_tenant("chaos", server.options().tenant_defaults);
  serve::ServeHandle client(server, "chaos");
  const serve::Server::SubmitOutcome outcome =
      client.submit("serve-crash", series);
  if (!outcome.admitted) return 1;
  client.wait(outcome.request_id);
  return 1;
}

/// Recovery: replays the crashed journal, resumes its unfinished request
/// (or, after a pre-admission crash, re-submits the campaign — the
/// journal never made the request durable, so the retry is the client's),
/// finishes it, and reports the dedup counters.
int serve_recover_child(const Config& cfg,
                        const std::vector<rt::SeriesSpec>& series,
                        const std::string& wal_path,
                        const std::string& csv_path,
                        const std::string& stats_path) {
  const serve::RecoveredState state = serve::replay_journal(wal_path);
  serve::ServeOptions options;
  options.workers = cfg.workers;
  serve::JournalOptions journal;
  journal.path = wal_path;
  journal.group_commit = 1;
  journal.resume_offset = state.valid_bytes;
  options.journal = journal;
  serve::Server server(options);
  serve::ServeHandle client(server, "chaos");

  std::vector<std::uint64_t> resumed_ids;
  if (state.records > 0) {
    server.restore(state, [&](const serve::RecoveredRequest& request) {
      resumed_ids.push_back(request.id);
      return client.adopt(request);
    });
  }
  std::uint64_t request_id = 0;
  if (resumed_ids.empty()) {
    const serve::Server::SubmitOutcome outcome =
        client.submit("serve-crash", series);
    if (!outcome.admitted) return 1;
    request_id = outcome.request_id;
  } else {
    request_id = resumed_ids.front();
  }
  const rt::CampaignResult result = client.wait(request_id);
  const serve::ServeStats stats = server.stats();

  if (!write_file(csv_path, serve_campaign_csv(result))) return 1;
  std::ostringstream os;
  os << "resumed=" << stats.requests_resumed << "\n"
     << "replayed=" << stats.points_replayed << "\n"
     << "executions=" << stats.board.executions << "\n"
     << "completed=" << stats.points_completed << "\n";
  return write_file(stats_path, os.str()) ? 0 : 1;
}

struct RecoverStats {
  std::uint64_t resumed = 0;
  std::uint64_t replayed = 0;
  std::uint64_t executions = 0;
  std::uint64_t completed = 0;
};

bool parse_recover_stats(const std::string& path, RecoverStats* out) {
  std::ifstream is(path);
  if (!is) return false;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::uint64_t value = std::strtoull(line.c_str() + eq + 1,
                                              nullptr, 10);
    if (key == "resumed") out->resumed = value;
    else if (key == "replayed") out->replayed = value;
    else if (key == "executions") out->executions = value;
    else if (key == "completed") out->completed = value;
  }
  return true;
}

struct KillPointOutcome {
  std::string label;
  std::size_t crash_after = 0;
  int crash_exit = 0;
  int recover_exit = 0;
  RecoverStats stats;
  std::uint64_t expected_replayed = 0;
  bool csv_identical = false;
  bool dedup_ok = false;
  bool journal_terminal = false;  // post-recovery replay: done + clean
  std::string note;

  bool structural() const { return crash_exit != 137 || recover_exit != 0; }
  bool ok() const {
    return !structural() && csv_identical && dedup_ok && journal_terminal;
  }
};

void write_serve_crash_json(const Config& cfg,
                            const std::vector<std::string>& series_labels,
                            std::size_t total_points,
                            const std::vector<KillPointOutcome>& outcomes,
                            int exit_code) {
  if (cfg.json_path.empty()) return;
  std::ofstream file;
  if (cfg.json_path != "-") {
    file.open(cfg.json_path);
    if (!file) {
      std::fprintf(stderr, "hemo_chaos: cannot open json file '%s'\n",
                   cfg.json_path.c_str());
      return;
    }
  }
  std::ostream& os = cfg.json_path == "-" ? std::cout : file;

  os << "{\n  \"config\": {\"mode\": \"serve-crash\", \"workers\": "
     << cfg.workers << ", \"seed\": " << cfg.seed << ", \"points\": "
     << total_points << ", \"series\": [";
  for (std::size_t k = 0; k < series_labels.size(); ++k)
    os << (k ? ", " : "") << "\"" << json_escape(series_labels[k]) << "\"";
  os << "]},\n";

  os << "  \"kill_points\": [";
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const KillPointOutcome& o = outcomes[k];
    os << (k ? ",\n    " : "\n    ") << "{\"label\": \"" << o.label
       << "\", \"crash_after_records\": " << o.crash_after
       << ", \"crash_exit\": " << o.crash_exit
       << ", \"recover_exit\": " << o.recover_exit
       << ", \"resumed\": " << o.stats.resumed
       << ", \"replayed\": " << o.stats.replayed
       << ", \"expected_replayed\": " << o.expected_replayed
       << ", \"executions\": " << o.stats.executions
       << ", \"csv_identical\": " << (o.csv_identical ? "true" : "false")
       << ", \"dedup_ok\": " << (o.dedup_ok ? "true" : "false")
       << ", \"journal_terminal\": " << (o.journal_terminal ? "true" : "false")
       << ", \"ok\": " << (o.ok() ? "true" : "false") << "}";
  }
  os << "\n  ],\n";

  bool all_ok = true;
  for (const KillPointOutcome& o : outcomes) all_ok &= o.ok();
  os << "  \"verdict\": {\"survived\": " << (all_ok ? "true" : "false")
     << ", \"exit_code\": " << exit_code << "}\n}\n";
}

int run_serve_crash(const Config& cfg) {
  std::vector<std::string> series_texts = cfg.serve_series;
  if (series_texts.empty())
    series_texts.push_back("polaris:cuda:harvey:cylinder-slab");
  std::vector<rt::SeriesSpec> series;
  std::vector<std::string> series_labels;
  std::size_t total_points = 0;
  for (const std::string& text : series_texts) {
    rt::SeriesSpec spec;
    if (!rt::parse_series(text, &spec)) {
      std::fprintf(stderr, "hemo_chaos: bad --series '%s'\n", text.c_str());
      return kExitStructural;
    }
    if (rt::unavailable_failure(spec)) {
      // An unavailable series never executes, which would skew the
      // record-count arithmetic the kill points are derived from.
      std::fprintf(stderr,
                   "hemo_chaos: --serve-crash needs an available series; "
                   "'%s' is not\n",
                   text.c_str());
      return kExitStructural;
    }
    series.push_back(spec);
    series_labels.push_back(rt::series_label(spec));
    total_points +=
        sys::piecewise_schedule(sys::system_spec(spec.system).max_devices)
            .size();
  }
  if (total_points < 2) {
    std::fprintf(stderr, "hemo_chaos: --serve-crash needs >= 2 points\n");
    return kExitStructural;
  }

  const std::string prefix = "hemo_chaos_serve_" + std::to_string(cfg.seed);
  const std::string golden_csv = prefix + "_golden.csv";
  const std::string wal_path = prefix + ".wal";
  const std::string recovered_csv = prefix + "_recovered.csv";
  const std::string stats_path = prefix + "_recover.stats";
  auto cleanup = [&] {
    std::remove(golden_csv.c_str());
    std::remove(wal_path.c_str());
    std::remove(recovered_csv.c_str());
    std::remove(stats_path.c_str());
  };

  const int golden_exit = spawn_child(
      [&] { return serve_golden_child(cfg, series, golden_csv); });
  std::string golden_bytes;
  if (golden_exit != 0 || !read_file(golden_csv, &golden_bytes)) {
    std::fprintf(stderr, "hemo_chaos: golden serve run failed (exit %d)\n",
                 golden_exit);
    cleanup();
    return kExitStructural;
  }

  // Journal records of this campaign: 1 tenant config, 1 admission,
  // total_points point records, 1 done.  The three kill points bracket
  // the request lifecycle: before the admission record is durable,
  // mid-campaign, and after every point but before the terminal record.
  struct KillPoint {
    const char* label;
    std::size_t crash_after;
  };
  const KillPoint kill_points[] = {
      {"pre-admission", 1},
      {"mid-campaign", 2 + total_points / 2},
      {"pre-terminal", 2 + total_points},
  };

  std::vector<KillPointOutcome> outcomes;
  for (const KillPoint& kill : kill_points) {
    KillPointOutcome o;
    o.label = kill.label;
    o.crash_after = kill.crash_after;
    o.expected_replayed =
        kill.crash_after >= 2 ? kill.crash_after - 2 : 0;
    std::remove(wal_path.c_str());
    std::remove(recovered_csv.c_str());
    std::remove(stats_path.c_str());

    o.crash_exit = spawn_child([&] {
      return serve_crash_child(cfg, series, wal_path, kill.crash_after);
    });
    if (o.crash_exit != 137) {
      o.note = "crash injection did not fire";
      outcomes.push_back(o);
      continue;
    }
    o.recover_exit = spawn_child([&] {
      return serve_recover_child(cfg, series, wal_path, recovered_csv,
                                 stats_path);
    });
    if (o.recover_exit != 0) {
      o.note = "recovery run failed";
      outcomes.push_back(o);
      continue;
    }

    std::string recovered_bytes;
    o.csv_identical = read_file(recovered_csv, &recovered_bytes) &&
                      recovered_bytes == golden_bytes;
    // The dedup proof: every durable point was delivered from the
    // journal, and only the lost remainder was (re-)executed.
    o.dedup_ok = parse_recover_stats(stats_path, &o.stats) &&
                 o.stats.replayed == o.expected_replayed &&
                 o.stats.executions == total_points - o.expected_replayed;
    try {
      const serve::RecoveredState final_state =
          serve::replay_journal(wal_path);
      bool all_done = !final_state.requests.empty();
      for (const serve::RecoveredRequest& r : final_state.requests)
        all_done &= r.done;
      o.journal_terminal = all_done && final_state.clean_shutdown &&
                           final_state.truncated_reason.empty();
    } catch (const serve::JournalError& error) {
      o.journal_terminal = false;
      o.note = error.what();
    }
    outcomes.push_back(o);
  }

  bool structural = false;
  bool all_ok = true;
  for (const KillPointOutcome& o : outcomes) {
    structural |= o.structural();
    all_ok &= o.ok();
  }
  const int exit_code = structural ? kExitStructural
                        : all_ok  ? kExitSurvived
                                  : kExitDivergence;

  Table table({"Kill point", "Records", "Crash", "Replayed", "Executed",
               "CSV identical", "Terminal"});
  for (const KillPointOutcome& o : outcomes)
    table.add_row({o.label, std::to_string(o.crash_after),
                   std::to_string(o.crash_exit),
                   std::to_string(o.stats.replayed) + "/" +
                       std::to_string(o.expected_replayed),
                   std::to_string(o.stats.executions),
                   yes_no(o.csv_identical), yes_no(o.journal_terminal)});

  if (!cfg.quiet) {
    table.print_aligned(std::cout);
    if (exit_code == kExitSurvived)
      std::cout << "\nall " << outcomes.size()
                << " kill points recovered byte-identically; journaled "
                   "points were never re-executed\n";
    else
      for (const KillPointOutcome& o : outcomes)
        if (!o.ok())
          std::cout << "\nFAILED " << o.label << ": "
                    << (o.note.empty() ? "recovered output diverged"
                                       : o.note)
                    << '\n';
  }
  write_report(cfg, {table});
  write_serve_crash_json(cfg, series_labels, total_points, outcomes,
                         exit_code);
  cleanup();
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--quiet") {
      cfg.quiet = true;
    } else if (arg == "--periodic") {
      cfg.periodic = true;
    } else if (arg == "--campaign") {
      cfg.campaign = true;
    } else if (arg == "--sdc") {
      cfg.sdc = true;
    } else if (arg == "--list-kinds") {
      return list_kinds();
    } else if (arg == "--flips") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.flips) || cfg.flips < 0)
        return usage(argv[0]);
    } else if (arg == "--tile-points") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.tile_points) ||
          cfg.tile_points < 1)
        return usage(argv[0]);
    } else if (arg == "--check-interval") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.check_interval) ||
          cfg.check_interval < 1)
        return usage(argv[0]);
    } else if (arg == "--reexec-sample") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.reexec_sample) ||
          cfg.reexec_sample < 0)
        return usage(argv[0]);
    } else if (arg == "--quarantine-threshold") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.quarantine_threshold) ||
          cfg.quarantine_threshold < 1)
        return usage(argv[0]);
    } else if (arg == "--serve-crash") {
      cfg.serve_crash = true;
    } else if (arg == "--series") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cfg.serve_series.push_back(v);
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.workers) || cfg.workers < 1)
        return usage(argv[0]);
    } else if (arg == "--no-frames") {
      cfg.frames = false;
    } else if (arg == "--scale") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cfg.scale = std::atof(v);
      if (cfg.scale <= 0.0) return usage(argv[0]);
    } else if (arg == "--ranks") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.ranks) || cfg.ranks < 1)
        return usage(argv[0]);
    } else if (arg == "--steps") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.steps) || cfg.steps < 1)
        return usage(argv[0]);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--kinds") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      std::string bad_token;
      if (!parse_kinds(v, &cfg.kinds, &bad_token)) {
        std::fprintf(stderr,
                     "hemo_chaos: --kinds: unknown fault kind '%s' "
                     "(valid: %s)\n",
                     bad_token.c_str(), valid_kinds_text().c_str());
        return kExitStructural;
      }
    } else if (arg == "--events") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.events_per_kind) ||
          cfg.events_per_kind < 0)
        return usage(argv[0]);
    } else if (arg == "--decomp") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "slab") == 0) cfg.bisection = false;
      else if (std::strcmp(v, "bisection") == 0) cfg.bisection = true;
      else return usage(argv[0]);
    } else if (arg == "--max-retransmits") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.max_retransmits) ||
          cfg.max_retransmits < 0)
        return usage(argv[0]);
    } else if (arg == "--max-rollbacks") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.max_rollbacks) ||
          cfg.max_rollbacks < 0)
        return usage(argv[0]);
    } else if (arg == "--snapshot-interval") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.snapshot_interval) ||
          cfg.snapshot_interval < 1)
        return usage(argv[0]);
    } else if (arg == "--ckpt-interval") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.ckpt_interval) ||
          cfg.ckpt_interval < 1)
        return usage(argv[0]);
    } else if (arg == "--kill-rank") {
      const char* v = value();
      KillSpec kill;
      if (v == nullptr || !parse_kill(v, &kill)) return usage(argv[0]);
      cfg.kills.push_back(kill);
    } else if (arg == "--death-deadline") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.death_deadline) ||
          cfg.death_deadline < 1)
        return usage(argv[0]);
    } else if (arg == "--min-survivors") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &cfg.min_survivors) ||
          cfg.min_survivors < 1)
        return usage(argv[0]);
    } else if (arg == "--report") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cfg.report_path = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cfg.json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (cfg.serve_crash) return run_serve_crash(cfg);
  if (cfg.sdc) return run_sdc_chaos(cfg);
  return cfg.campaign ? run_campaign_chaos(cfg) : run_solver_chaos(cfg);
}
