// hemo_serve: the multi-tenant campaign service daemon and its client.
//
//   hemo_serve --serve [--port P] [--workers N] [--shards N]
//              [--cache-capacity N] [--budget X] [--max-pending N]
//              [--journal FILE [--recover] [--fsync-every N]]
//              [--shed-queue N] [--quiet]
//       Boot the service on 127.0.0.1:P (0 picks a free port, printed on
//       stdout as "listening on <port>").  Runs until a client sends
//       {"op": "shutdown"} or the process receives SIGINT/SIGTERM, then
//       drains admitted work and prints final stats.  --budget/
//       --max-pending set the per-tenant admission defaults (a client
//       can override its own via {"op": "tenant"}).
//
//       --journal FILE arms the write-ahead journal: admissions, point
//       completions and terminal statuses are logged so a crashed server
//       can finish its unfinished campaigns.  An existing non-empty
//       journal refuses to boot without --recover, which replays the log
//       (tolerating the torn tail a SIGKILL leaves), re-admits
//       unfinished requests, delivers their already-completed points
//       from the journal without re-executing them, and resumes
//       appending.  --fsync-every N trades durability for throughput
//       (fsync once per N records; 1 = every record).  --shed-queue N
//       sheds new low-priority work with a retryable `overloaded`
//       rejection once the dispatch backlog reaches N points (0 = off).
//
//   hemo_serve --connect P --tenant T [--figure FIG] [--series S]...
//              [--name NAME] [--weight W] [--budget X] [--max-pending N]
//       Submit a campaign and stream its event lines to stdout until the
//       done (exit 0) or rejected (exit 1) event.  When --weight/--budget/
//       --max-pending are given, a tenant-config request is sent first.
//
//   hemo_serve --connect P --stats         Print the server's stats line.
//   hemo_serve --connect P --shutdown      Ask the server to shut down.
//
//   hemo_serve --smoke [--figure FIG] [--series S]... [--workers N]
//              [--quiet]
//       Self-contained end-to-end gate, no sockets: boots an in-process
//       server, has two tenants submit the identical campaign, and
//       verifies (a) the served results are byte-identical — CSV and
//       JSON — to run_campaign pricing the same spec, and (b) coalescing
//       collapsed the duplicate submission (fewer executions than
//       delivered points).  Exit 0 only if both hold.
//
// Examples:
//   hemo_serve --serve --port 7777 &
//   hemo_serve --connect 7777 --tenant alice --figure fig7
//   hemo_serve --connect 7777 --stats
//   hemo_serve --smoke --figure fig7 --workers 4

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "rt/campaign.hpp"
#include "serve/protocol.hpp"
#include "serve/recovery.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

namespace {

using namespace hemo;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --serve   [--port P] [--workers N] [--shards N]\n"
      "       %*s          [--cache-capacity N] [--budget X]\n"
      "       %*s          [--max-pending N] [--quiet]\n"
      "       %*s          [--journal FILE [--recover] [--fsync-every N]]\n"
      "       %*s          [--shed-queue N]\n"
      "       %s --connect P --tenant T [--figure FIG] [--series S]...\n"
      "       %*s          [--name NAME] [--weight W] [--budget X]\n"
      "       %*s          [--max-pending N]\n"
      "       %s --connect P (--stats | --shutdown)\n"
      "       %s --smoke   [--figure FIG] [--series S]... [--workers N]\n"
      "       %*s          [--quiet]\n",
      argv0, static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "", argv0,
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "", argv0, argv0,
      static_cast<int>(std::strlen(argv0)), "");
  return 2;
}

bool parse_int(const char* text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_double(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

struct Args {
  enum class Mode { kNone, kServe, kConnect, kSmoke } mode = Mode::kNone;
  int port = 0;
  int workers = 0;
  int shards = 16;
  int cache_capacity = 256;
  std::string tenant;
  std::string name = "campaign";
  std::string figure;
  std::vector<std::string> series;
  double weight = -1.0;       // < 0: not set
  double budget = -1.0;       // < 0: not set
  int max_pending = -1;       // < 0: not set
  bool stats = false;
  bool shutdown = false;
  bool quiet = false;
  std::string journal;        // WAL path; empty = no durability
  bool recover = false;       // replay an existing journal before serving
  int fsync_every = 1;        // journal group-commit interval
  int shed_queue = 0;         // overload-shed backlog threshold; 0 = off
};

serve::ServeOptions serve_options(const Args& args) {
  serve::ServeOptions options;
  options.workers = args.workers;
  options.cache_capacity = static_cast<std::size_t>(args.cache_capacity);
  options.cache_shards = static_cast<std::size_t>(args.shards);
  if (args.budget >= 0.0) options.tenant_defaults.budget = args.budget;
  if (args.max_pending >= 0)
    options.tenant_defaults.max_pending_points = args.max_pending;
  if (!args.journal.empty()) {
    serve::JournalOptions journal;
    journal.path = args.journal;
    journal.group_commit = static_cast<std::size_t>(args.fsync_every);
    options.journal = journal;
  }
  options.shed_queue_depth = static_cast<std::size_t>(args.shed_queue);
  return options;
}

std::vector<rt::SeriesSpec> resolve_series(const Args& args, bool* ok) {
  *ok = true;
  std::vector<rt::SeriesSpec> series;
  if (!args.figure.empty()) {
    bool known = false;
    for (const std::string& f : rt::known_figures()) known |= (f == args.figure);
    if (!known) {
      std::fprintf(stderr, "unknown figure '%s'\n", args.figure.c_str());
      *ok = false;
      return series;
    }
    series = rt::figure_matrix(args.figure);
  }
  for (const std::string& text : args.series) {
    rt::SeriesSpec spec;
    if (!rt::parse_series(text, &spec)) {
      std::fprintf(stderr, "bad --series '%s'\n", text.c_str());
      *ok = false;
      return series;
    }
    series.push_back(spec);
  }
  if (series.empty()) {
    std::fprintf(stderr, "nothing to submit: pass --figure and/or --series\n");
    *ok = false;
  }
  return series;
}

void print_stats_summary(const serve::ServeStats& stats) {
  std::cout << "requests: " << stats.requests_admitted << " admitted, "
            << stats.requests_rejected() << " rejected\n"
            << "points:   " << stats.points_completed << "/"
            << stats.points_admitted << " completed, "
            << stats.board.executions << " executions, "
            << stats.board.coalesced << " coalesced, "
            << stats.board.memo_hits << " memo hits\n"
            << "cache:    " << stats.cache.hits << " hits / "
            << stats.cache.misses << " misses across "
            << stats.cache_shards.size() << " shard(s)\n"
            << "executor: " << stats.executor.executed
            << " jobs, queue high watermark "
            << stats.executor.queue_high_watermark << "\n";
}

// ---------------------------------------------------------------------------
// --serve
// ---------------------------------------------------------------------------

// SIGINT/SIGTERM land on a self-pipe: the handler does the one
// async-signal-safe thing (write a byte) and a watcher thread turns the
// byte into SocketServer::request_shutdown(), which stops intake and
// releases wait_shutdown() so the daemon drains and journals a clean
// shutdown exactly as for {"op": "shutdown"}.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char byte = 's';
  // The return value is unused: if the pipe is full a wakeup is already
  // pending, and there is nothing a handler could do about other errors.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Installs the handlers and hands shutdown requests to `front` from a
/// watcher thread.  Destruction restores default dispositions, closes
/// the pipe and joins the watcher.
class SignalShutdown {
 public:
  explicit SignalShutdown(serve::SocketServer& front) {
    if (::pipe(g_signal_pipe) != 0) return;
    struct sigaction action {};
    action.sa_handler = on_terminate_signal;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    watcher_ = std::thread([&front] {
      char byte;
      // One byte is one shutdown request; EOF means the daemon is
      // exiting on its own and the watcher should too.
      while (::read(g_signal_pipe[0], &byte, 1) > 0)
        front.request_shutdown();
    });
  }

  ~SignalShutdown() {
    if (g_signal_pipe[1] < 0) return;
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    ::close(g_signal_pipe[1]);  // EOF wakes the watcher out of read()
    if (watcher_.joinable()) watcher_.join();
    ::close(g_signal_pipe[0]);
    g_signal_pipe[0] = g_signal_pipe[1] = -1;
  }

 private:
  std::thread watcher_;
};

bool journal_file_nonempty(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
}

int run_serve(const Args& args) {
  serve::ServeOptions options = serve_options(args);

  // Recovery boot: replay the journal before the server exists, resume
  // appending after its valid prefix, and re-admit the unfinished
  // requests.  Their clients are gone, so the resumed events are
  // dropped; what matters is that the work completes, is journaled and
  // stays memoized for the next asker.
  serve::RecoveredState recovered;
  if (!args.journal.empty() && journal_file_nonempty(args.journal)) {
    if (!args.recover) {
      std::fprintf(stderr,
                   "hemo_serve: journal '%s' already exists; pass --recover "
                   "to replay and resume it\n",
                   args.journal.c_str());
      return 2;
    }
    try {
      recovered = serve::replay_journal(args.journal);
    } catch (const serve::JournalError& error) {
      std::fprintf(stderr, "hemo_serve: cannot replay journal '%s': %s\n",
                   args.journal.c_str(), error.what());
      return 2;
    }
    options.journal->resume_offset = recovered.valid_bytes;
    if (!args.quiet) {
      std::cout << "journal: " << recovered.records << " records, "
                << recovered.requests.size() << " requests ("
                << recovered.unfinished_requests() << " unfinished), "
                << (recovered.clean_shutdown ? "clean shutdown"
                                             : "no clean shutdown");
      if (!recovered.truncated_reason.empty())
        std::cout << ", tail truncated: " << recovered.truncated_reason;
      std::cout << "\n";
    }
  }

  serve::Server server(options);
  if (recovered.records > 0) {
    const serve::Server::RestoreOutcome outcome = server.restore(
        recovered, [](const serve::RecoveredRequest&) {
          return [](const serve::Event&) {};  // original client is gone
        });
    if (!args.quiet)
      std::cout << "recovered: " << outcome.requests_resumed << " resumed, "
                << outcome.requests_already_done << " already done, "
                << outcome.points_replayed << " points replayed, "
                << outcome.points_requeued << " re-queued\n";
  }

  serve::SocketServer front(server,
                            {static_cast<std::uint16_t>(args.port)});
  SignalShutdown signals(front);
  std::cout << "listening on " << front.port() << std::endl;
  front.wait_shutdown();
  server.wait_idle();  // drain admitted campaigns before going away
  if (!args.quiet) print_stats_summary(server.stats());
  front.stop();
  // The Server destructor appends the CleanShutdown record after this
  // return — every admitted request is already terminal in the journal.
  return 0;
}

// ---------------------------------------------------------------------------
// --connect
// ---------------------------------------------------------------------------

std::string tenant_request_json(const Args& args) {
  std::ostringstream os;
  os << "{\"op\": \"tenant\", \"tenant\": \"" << serve::json_escape(args.tenant)
     << "\"";
  if (args.weight >= 0.0) os << ", \"weight\": " << args.weight;
  if (args.budget >= 0.0) os << ", \"budget\": " << args.budget;
  if (args.max_pending >= 0) os << ", \"max_pending\": " << args.max_pending;
  os << "}";
  return os.str();
}

std::string submit_request_json(const Args& args) {
  std::ostringstream os;
  os << "{\"op\": \"submit\", \"tenant\": \"" << serve::json_escape(args.tenant)
     << "\", \"name\": \"" << serve::json_escape(args.name) << "\"";
  if (!args.figure.empty())
    os << ", \"figure\": \"" << serve::json_escape(args.figure) << "\"";
  if (!args.series.empty()) {
    os << ", \"series\": [";
    for (std::size_t i = 0; i < args.series.size(); ++i)
      os << (i ? ", " : "") << "\"" << serve::json_escape(args.series[i])
         << "\"";
    os << "]";
  }
  os << "}";
  return os.str();
}

int run_connect(const Args& args) {
  serve::SocketClient client(static_cast<std::uint16_t>(args.port));
  if (!client.connected()) {
    std::fprintf(stderr, "hemo_serve: could not connect to 127.0.0.1:%d\n",
                 args.port);
    return 1;
  }
  std::string line;

  if (args.stats) {
    client.send_line("{\"op\": \"stats\"}");
    if (!client.recv_line(&line)) return 1;
    std::cout << line << "\n";
    return 0;
  }
  if (args.shutdown) {
    client.send_line("{\"op\": \"shutdown\"}");
    if (!client.recv_line(&line)) return 1;
    std::cout << line << "\n";
    return 0;
  }

  if (args.tenant.empty()) {
    std::fprintf(stderr, "--connect submissions need --tenant\n");
    return 2;
  }
  if (args.weight >= 0.0 || args.budget >= 0.0 || args.max_pending >= 0) {
    client.send_line(tenant_request_json(args));
    if (!client.recv_line(&line)) return 1;  // the tenant ack
    std::cout << line << "\n";
  }
  client.send_line(submit_request_json(args));
  while (client.recv_line(&line)) {
    std::cout << line << "\n";
    if (line.find("\"event\": \"done\"") != std::string::npos) return 0;
    if (line.find("\"event\": \"rejected\"") != std::string::npos) return 1;
  }
  std::fprintf(stderr, "connection closed before the done event\n");
  return 1;
}

// ---------------------------------------------------------------------------
// --smoke
// ---------------------------------------------------------------------------

std::string campaign_csv(const rt::CampaignResult& result) {
  std::ostringstream os;
  rt::write_campaign_csv(result, os);
  return os.str();
}

/// JSON with the runtime metadata (wall clock, shared cache/executor
/// counters) cleared on every input, so the comparison is about the
/// priced results — the fields the paper's figures are drawn from.
std::string normalized_campaign_json(rt::CampaignResult result) {
  result.wall_s = 0.0;
  result.workers = 0;
  result.cache = {};
  result.cache_shards.clear();
  result.executor = {};
  std::ostringstream os;
  rt::write_campaign_json(result, os);
  return os.str();
}

int run_smoke(const Args& args) {
  bool ok = false;
  const std::vector<rt::SeriesSpec> series = resolve_series(args, &ok);
  if (!ok) return 2;

  serve::Server server(serve_options(args));
  serve::ServeHandle alice(server, "alice");
  serve::ServeHandle bob(server, "bob");

  // Two tenants ask for the identical campaign; the coalescing layers
  // must collapse the duplicate points onto single executions.
  const serve::Server::SubmitOutcome a = alice.submit(args.name, series);
  const serve::Server::SubmitOutcome b = bob.submit(args.name, series);
  if (!a.admitted || !b.admitted) {
    std::fprintf(stderr, "smoke: submission rejected (%s)\n",
                 serve::reject_reason_name(!a.admitted ? a.reason : b.reason));
    return 1;
  }
  const rt::CampaignResult served_a = alice.wait(a.request_id);
  const rt::CampaignResult served_b = bob.wait(b.request_id);
  const serve::ServeStats stats = server.stats();

  // Reference: the batch runner pricing the same spec.
  rt::CampaignSpec spec;
  spec.name = args.name;
  spec.series = series;
  spec.workers = args.workers;
  const rt::CampaignResult reference = rt::run_campaign(spec);

  int failures = 0;
  const std::string reference_csv = campaign_csv(reference);
  if (campaign_csv(served_a) != reference_csv ||
      campaign_csv(served_b) != reference_csv) {
    std::fprintf(stderr, "smoke: served CSV differs from run_campaign\n");
    ++failures;
  }
  const std::string reference_json = normalized_campaign_json(reference);
  if (normalized_campaign_json(served_a) != reference_json ||
      normalized_campaign_json(served_b) != reference_json) {
    std::fprintf(stderr, "smoke: served JSON differs from run_campaign\n");
    ++failures;
  }
  const std::uint64_t shared =
      stats.board.coalesced + stats.board.memo_hits;
  if (shared == 0 || stats.board.executions >= stats.points_completed) {
    std::fprintf(stderr,
                 "smoke: no coalescing (%llu executions, %llu shared)\n",
                 static_cast<unsigned long long>(stats.board.executions),
                 static_cast<unsigned long long>(shared));
    ++failures;
  }

  if (!args.quiet) {
    print_stats_summary(stats);
    std::cout << (failures == 0 ? "smoke: OK — served output byte-identical "
                                  "to hemo_campaign, duplicates coalesced\n"
                                : "smoke: FAILED\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--serve") {
      args.mode = Args::Mode::kServe;
    } else if (arg == "--smoke") {
      args.mode = Args::Mode::kSmoke;
    } else if (arg == "--connect") {
      args.mode = Args::Mode::kConnect;
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.port) || args.port < 1 ||
          args.port > 65535)
        return usage(argv[0]);
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.port) || args.port < 0 ||
          args.port > 65535)
        return usage(argv[0]);
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.workers) || args.workers < 0)
        return usage(argv[0]);
    } else if (arg == "--shards") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.shards) || args.shards < 1)
        return usage(argv[0]);
    } else if (arg == "--cache-capacity") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.cache_capacity) ||
          args.cache_capacity < 1)
        return usage(argv[0]);
    } else if (arg == "--tenant") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      args.tenant = v;
    } else if (arg == "--name") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      args.name = v;
    } else if (arg == "--figure") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      args.figure = v;
    } else if (arg == "--series") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      args.series.push_back(v);
    } else if (arg == "--weight") {
      const char* v = value();
      if (v == nullptr || !parse_double(v, &args.weight) || args.weight <= 0)
        return usage(argv[0]);
    } else if (arg == "--budget") {
      const char* v = value();
      if (v == nullptr || !parse_double(v, &args.budget) || args.budget < 0)
        return usage(argv[0]);
    } else if (arg == "--max-pending") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.max_pending) ||
          args.max_pending < 1)
        return usage(argv[0]);
    } else if (arg == "--journal") {
      const char* v = value();
      if (v == nullptr || *v == '\0') return usage(argv[0]);
      args.journal = v;
    } else if (arg == "--recover") {
      args.recover = true;
    } else if (arg == "--fsync-every") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.fsync_every) ||
          args.fsync_every < 1)
        return usage(argv[0]);
    } else if (arg == "--shed-queue") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &args.shed_queue) ||
          args.shed_queue < 0)
        return usage(argv[0]);
    } else if (arg == "--stats") {
      args.stats = true;
    } else if (arg == "--shutdown") {
      args.shutdown = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (args.recover && args.journal.empty()) {
    std::fprintf(stderr, "--recover requires --journal\n");
    return usage(argv[0]);
  }

  switch (args.mode) {
    case Args::Mode::kServe:
      return run_serve(args);
    case Args::Mode::kConnect:
      return run_connect(args);
    case Args::Mode::kSmoke:
      return run_smoke(args);
    case Args::Mode::kNone:
      break;
  }
  return usage(argv[0]);
}
