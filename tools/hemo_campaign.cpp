// hemo_campaign: CLI driver for the hemo::rt campaign runtime.
//
//   hemo_campaign --figure [fig3|fig4|fig5|fig6|fig7|all]
//                 [--series system:model[:app[:workload]]]...
//                 [--workers N] [--retries N] [--timeout-ms N]
//                 [--name NAME] [--csv FILE|-] [--json FILE|-]
//                 [--preflight [RANKS]] [--traffic-audit] [--quiet]
//                 [--strict]
//       Price an evaluation matrix concurrently on the work-stealing
//       executor with artifact caching and per-point retry.  --figure and
//       --series compose (figure matrix first, then extra series).  A
//       failed point is reported, not fatal; --strict exits nonzero when
//       any point failed.  --preflight statically validates each series'
//       workload (DistributedSolver::validate, rules LC001-LC010) before
//       pricing; validation errors become structured failures on the
//       series' points.  --traffic-audit embeds the hemo-flux static
//       memory-traffic report (per-dialect bytes/point vs the Section 6
//       model) as a "traffic_audit" block in the --json output.
//
//   hemo_campaign --list
//       Print the known figures, systems, models, apps and workloads.
//
// Examples:
//   hemo_campaign --figure fig5 --workers 8 --csv fig5.csv
//   hemo_campaign --series crusher:hip:harvey:aorta --json -

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/flux_rules.hpp"
#include "base/table.hpp"
#include "perf/model.hpp"
#include "rt/campaign.hpp"
#include "sim/profiles.hpp"

namespace {

using namespace hemo;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--figure fig3|fig4|fig5|fig6|fig7|all]\n"
      "       %*s [--series system:model[:app[:workload]]]...\n"
      "       %*s [--workers N] [--retries N] [--timeout-ms N]\n"
      "       %*s [--name NAME] [--csv FILE|-] [--json FILE|-]\n"
      "       %*s [--preflight [RANKS]] [--traffic-audit] [--quiet] "
      "[--strict]\n"
      "       %s --list\n",
      argv0, static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "", argv0);
  return 2;
}

bool parse_int(const char* text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

int list_vocabulary() {
  std::cout << "figures:  ";
  for (const std::string& f : rt::known_figures()) std::cout << f << ' ';
  std::cout << "\nsystems:  summit polaris crusher sunspot\n";
  std::cout << "models:   ";
  for (const hal::Model m : hal::kAllModels)
    std::cout << hal::name_of(m) << ' ';
  std::cout << "\napps:     harvey proxy\n";
  std::cout << "workloads: ";
  for (const rt::WorkloadKind w : rt::kAllWorkloads)
    std::cout << rt::workload_name(w) << ' ';
  std::cout << "\n\navailability (system: models evaluated in the study):\n";
  for (const sys::SystemId id : sys::kAllSystems) {
    std::cout << "  " << sys::system_spec(id).name << ":";
    for (const hal::Model m : hal::kAllModels)
      if (sim::model_available(id, m)) std::cout << ' ' << hal::name_of(m);
    std::cout << '\n';
  }
  return 0;
}

/// Writes a sink to `path` ("-" for stdout); returns false on I/O failure.
template <class WriteFn>
bool write_sink(const std::string& path, const char* what, WriteFn&& write) {
  if (path == "-") {
    write(std::cout);
    return true;
  }
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "hemo_campaign: cannot open %s file '%s'\n", what,
                 path.c_str());
    return false;
  }
  write(os);
  return os.good();
}

void print_summary(const rt::CampaignResult& result) {
  Table table({"Series", "Points", "OK", "Failed", "Min MFLUPS",
               "Max MFLUPS"});
  for (const rt::SeriesResult& series : result.series) {
    std::size_t ok = 0;
    double lo = 0.0, hi = 0.0;
    for (const rt::PointResult& p : series.points) {
      if (!p.ok()) continue;
      if (ok == 0) {
        lo = hi = p.sim.mflups;
      } else {
        lo = std::min(lo, p.sim.mflups);
        hi = std::max(hi, p.sim.mflups);
      }
      ++ok;
    }
    table.add_row({rt::series_label(series.spec),
                   std::to_string(series.points.size()), std::to_string(ok),
                   std::to_string(series.points.size() - ok),
                   ok ? Table::num(lo, 0) : "-", ok ? Table::num(hi, 0) : "-"});
  }
  table.print_aligned(std::cout);
  std::cout << "\ncampaign '" << result.name << "': "
            << result.total_points() << " points, "
            << result.failed_points() << " failed, " << result.workers
            << " workers, wall " << Table::num(result.wall_s, 3) << " s\n";
  std::cout << "cache: " << result.cache.hits << " hits / "
            << result.cache.misses << " misses ("
            << Table::num(100.0 * result.cache.hit_rate(), 1)
            << "% hit rate), " << result.cache.evictions << " evictions, "
            << result.cache_shards.size() << " shard(s)\n";
  std::cout << "executor: " << result.executor.executed << " jobs executed, "
            << result.executor.stolen << " stolen, queue high watermark "
            << result.executor.queue_high_watermark << "\n";
  for (const rt::JobFailure& failure : result.failures())
    std::cout << "  " << rt::describe(failure) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::string figure;
  std::vector<rt::SeriesSpec> series;
  std::string name = "campaign";
  std::string csv_path;
  std::string json_path;
  int workers = 0;
  int retries = -1;
  int timeout_ms = -1;
  bool quiet = false;
  bool strict = false;
  bool preflight = false;
  bool traffic_audit = false;
  int preflight_ranks = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") return list_vocabulary();
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--figure") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      figure = v;
      bool known = false;
      for (const std::string& f : rt::known_figures()) known |= (f == figure);
      if (!known) {
        std::fprintf(stderr, "unknown figure '%s' (try --list)\n", v);
        return 2;
      }
    } else if (arg == "--series") {
      const char* v = value();
      rt::SeriesSpec spec;
      if (v == nullptr || !rt::parse_series(v, &spec)) {
        std::fprintf(stderr,
                     "bad --series '%s'; expected "
                     "system:model[:app[:workload]] (try --list)\n",
                     v == nullptr ? "" : v);
        return 2;
      }
      series.push_back(spec);
    } else if (arg == "--name") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      name = v;
    } else if (arg == "--csv") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      csv_path = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &workers) || workers < 0)
        return usage(argv[0]);
    } else if (arg == "--retries") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &retries) || retries < 0)
        return usage(argv[0]);
    } else if (arg == "--preflight") {
      preflight = true;
      // Optional rank-count operand; leave it for the next iteration when
      // the following token is another flag.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        const char* v = value();
        if (!parse_int(v, &preflight_ranks) || preflight_ranks < 1)
          return usage(argv[0]);
      }
    } else if (arg == "--traffic-audit") {
      traffic_audit = true;
    } else if (arg == "--timeout-ms") {
      const char* v = value();
      if (v == nullptr || !parse_int(v, &timeout_ms) || timeout_ms < 0)
        return usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  rt::CampaignSpec spec;
  spec.name = name;
  if (!figure.empty()) spec.series = rt::figure_matrix(figure);
  spec.series.insert(spec.series.end(), series.begin(), series.end());
  if (spec.series.empty()) {
    std::fprintf(stderr, "nothing to run: pass --figure and/or --series\n");
    return usage(argv[0]);
  }
  spec.workers = workers;
  spec.preflight = preflight;
  spec.preflight_ranks = preflight_ranks;
  if (retries >= 0) spec.job.retry.max_attempts = retries + 1;
  if (timeout_ms >= 0)
    spec.job.timeout = std::chrono::milliseconds(timeout_ms);

  // The CLI prices on a sharded cache — the serving-tier configuration —
  // so the per-shard stats block in --json reflects real lock striping.
  rt::ArtifactCache cache(/*capacity=*/256, /*shards=*/16);
  rt::CampaignResult result = rt::run_campaign(spec, cache);
  if (traffic_audit)
    result.traffic_audit_json =
        analysis::traffic_audit_json(perf::ModelParams{});

  if (!quiet) print_summary(result);

  bool sinks_ok = true;
  if (!csv_path.empty())
    sinks_ok &= write_sink(csv_path, "csv", [&](std::ostream& os) {
      rt::write_campaign_csv(result, os);
    });
  if (!json_path.empty())
    sinks_ok &= write_sink(json_path, "json", [&](std::ostream& os) {
      rt::write_campaign_json(result, os);
    });

  if (!sinks_ok) return 1;
  if (strict && result.failed_points() > 0) return 1;
  return 0;
}
