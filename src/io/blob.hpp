#pragma once
// CRC-checked binary record streams: the on-disk substrate of the
// resilience subsystem's checkpoints.  A blob is a magic/version header
// followed by tagged records, each carrying its own CRC-32 so a corrupted
// or truncated checkpoint is *detected and reported* (BlobError) instead
// of silently restoring garbage or aborting the process.  The format is
// versioned so future layouts can coexist with old checkpoint files.
//
// Layout:
//   header:  u64 magic | u32 version
//   record:  u32 tag | u64 payload bytes | u32 crc32(payload) | payload
//   ... records until EOF.

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hemo::io {

/// Recoverable blob failure: wrong magic, unsupported version, truncated
/// stream, or a CRC mismatch.  Callers (checkpoint restore, campaign
/// resume) catch it and fall back — a bad checkpoint must never take the
/// process down with it.
class BlobError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// `seed` chains incremental computations: crc32(b, crc32(a)) == crc32(ab).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

class BlobWriter {
 public:
  /// Opens `path` for writing and emits the header.  Throws BlobError when
  /// the file cannot be opened (a full disk is a campaign hazard, not a
  /// programmer error).
  ///
  /// The write is atomic: records accumulate in `path + ".tmp"` and only
  /// finish() renames the temporary over `path`, so a crash mid-checkpoint
  /// can never leave a torn blob behind — readers see either the previous
  /// complete file or the new one, never a prefix of the new one.
  BlobWriter(const std::string& path, std::uint64_t magic,
             std::uint32_t version);

  /// Appends one tagged, CRC-protected record.
  void add_record(std::uint32_t tag, const void* data, std::uint64_t bytes);

  /// Flushes, closes, and renames the temporary into place; throws
  /// BlobError if any write (or the rename) failed.  The destructor calls
  /// this best-effort (swallowing the throw), so callers that care about
  /// durability must call finish() explicitly.
  void finish();

  ~BlobWriter();

 private:
  std::ofstream out_;
  std::string path_;
  std::string tmp_path_;
  bool finished_ = false;
};

struct BlobRecord {
  std::uint32_t tag = 0;
  std::vector<char> bytes;
};

class BlobReader {
 public:
  /// Opens `path` and validates the header.  Throws BlobError on a missing
  /// file, wrong magic, or a version newer than `max_version`.
  BlobReader(const std::string& path, std::uint64_t magic,
             std::uint32_t max_version);

  std::uint32_t version() const { return version_; }

  /// True when the stream is cleanly exhausted.
  bool at_end();

  /// Reads the next record, validating size and CRC; throws BlobError on
  /// truncation or checksum mismatch.
  BlobRecord next();

 private:
  std::ifstream in_;
  std::string path_;
  std::uint32_t version_ = 0;
};

}  // namespace hemo::io
