#include "io/vtk.hpp"

#include <cstdio>
#include <fstream>

#include "base/contracts.hpp"
#include "lbm/hemodynamics.hpp"

namespace hemo::io {

std::int64_t write_vtk(const std::string& path, const lbm::Solver& solver,
                       const VtkFields& fields) {
  std::ofstream out(path);
  HEMO_EXPECTS(out.good());

  const lbm::SparseLattice& lattice = solver.lattice();
  const std::int64_t n = lattice.size();

  out << "# vtk DataFile Version 3.0\n";
  out << "HemoFlow LBM state, step " << solver.step_count() << "\n";
  out << "ASCII\n";
  out << "DATASET UNSTRUCTURED_GRID\n";

  out << "POINTS " << n << " float\n";
  for (PointIndex i = 0; i < n; ++i) {
    const Coord& c = lattice.coord(i);
    out << c.x << " " << c.y << " " << c.z << "\n";
  }

  // One vertex cell per fluid point.
  out << "CELLS " << n << " " << 2 * n << "\n";
  for (PointIndex i = 0; i < n; ++i) out << "1 " << i << "\n";
  out << "CELL_TYPES " << n << "\n";
  for (PointIndex i = 0; i < n; ++i) out << "1\n";  // VTK_VERTEX

  out << "POINT_DATA " << n << "\n";
  if (fields.density) {
    out << "SCALARS density float 1\nLOOKUP_TABLE default\n";
    for (PointIndex i = 0; i < n; ++i)
      out << static_cast<float>(solver.moments(i).rho) << "\n";
  }
  if (fields.velocity) {
    out << "VECTORS velocity float\n";
    for (PointIndex i = 0; i < n; ++i) {
      const lbm::Moments m = solver.moments(i);
      out << static_cast<float>(m.ux) << " " << static_cast<float>(m.uy)
          << " " << static_cast<float>(m.uz) << "\n";
    }
  }
  if (fields.shear) {
    out << "SCALARS shear float 1\nLOOKUP_TABLE default\n";
    for (PointIndex i = 0; i < n; ++i)
      out << static_cast<float>(lbm::shear_magnitude(solver.stress(i)))
          << "\n";
  }

  HEMO_ENSURES(out.good());
  return n;
}

}  // namespace hemo::io
