#include "io/blob.hpp"

#include <array>
#include <cstdio>

namespace hemo::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

template <class T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <class T>
bool read_pod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof *value);
  return in.gcount() == static_cast<std::streamsize>(sizeof *value);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

BlobWriter::BlobWriter(const std::string& path, std::uint64_t magic,
                       std::uint32_t version)
    : out_(path + ".tmp", std::ios::binary),
      path_(path),
      tmp_path_(path + ".tmp") {
  if (!out_.good())
    throw BlobError("cannot open blob file '" + path + "' for writing");
  write_pod(out_, magic);
  write_pod(out_, version);
}

void BlobWriter::add_record(std::uint32_t tag, const void* data,
                            std::uint64_t bytes) {
  write_pod(out_, tag);
  write_pod(out_, bytes);
  write_pod(out_, crc32(data, static_cast<std::size_t>(bytes)));
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_.good())
    throw BlobError("write failed on blob file '" + path_ + "'");
}

void BlobWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.flush();
  if (!out_.good()) {
    out_.close();
    std::remove(tmp_path_.c_str());
    throw BlobError("flush failed on blob file '" + path_ + "'");
  }
  out_.close();
  // The atomic publish: until this rename, `path_` still holds whatever
  // complete blob was there before (or nothing), so a crash anywhere
  // above leaves at worst a stale .tmp — never a torn blob.
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw BlobError("cannot rename '" + tmp_path_ + "' over '" + path_ + "'");
  }
}

BlobWriter::~BlobWriter() {
  try {
    finish();
  } catch (const BlobError&) {
    // Destructors must not throw; explicit finish() reports durably.
  }
}

BlobReader::BlobReader(const std::string& path, std::uint64_t magic,
                       std::uint32_t max_version)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_.good()) throw BlobError("cannot open blob file '" + path + "'");
  std::uint64_t got_magic = 0;
  if (!read_pod(in_, &got_magic) || got_magic != magic)
    throw BlobError("blob file '" + path + "' has the wrong magic number");
  if (!read_pod(in_, &version_) || version_ == 0 || version_ > max_version)
    throw BlobError("blob file '" + path + "' has unsupported version " +
                    std::to_string(version_));
}

bool BlobReader::at_end() {
  return in_.peek() == std::ifstream::traits_type::eof();
}

BlobRecord BlobReader::next() {
  BlobRecord record;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  if (!read_pod(in_, &record.tag) || !read_pod(in_, &bytes) ||
      !read_pod(in_, &crc))
    throw BlobError("blob file '" + path_ + "' is truncated (record header)");
  record.bytes.resize(static_cast<std::size_t>(bytes));
  in_.read(record.bytes.data(), static_cast<std::streamsize>(bytes));
  if (in_.gcount() != static_cast<std::streamsize>(bytes))
    throw BlobError("blob file '" + path_ + "' is truncated (record payload)");
  if (crc32(record.bytes.data(), record.bytes.size()) != crc)
    throw BlobError("CRC mismatch in blob file '" + path_ +
                    "': the record is corrupted");
  return record;
}

}  // namespace hemo::io
