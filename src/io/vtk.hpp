#pragma once
// Legacy-VTK output of sparse lattice fields: the visualization hand-off
// the paper's workflow ends in (Fig. 2a renders HARVEY output shaded by
// pressure with streamlines).  Writes an ASCII unstructured grid of
// vertex cells carrying density, velocity and shear-magnitude point data,
// loadable by ParaView/VisIt.

#include <string>

#include "lbm/solver.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::io {

struct VtkFields {
  bool density = true;
  bool velocity = true;
  bool shear = false;  // deviatoric shear magnitude (costlier)
};

/// Writes the solver's current state; returns the number of points
/// written.  Aborts on I/O failure (disk-full style errors are fatal to a
/// simulation campaign and must not pass silently).
std::int64_t write_vtk(const std::string& path, const lbm::Solver& solver,
                       const VtkFields& fields = {});

}  // namespace hemo::io
