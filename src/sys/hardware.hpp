#pragma once
// Hardware registry: the four systems of the paper's Table 1 (Sunspot,
// Crusher, Polaris, Summit) with their node characteristics, plus the
// link/latency parameters the performance model and cluster simulator
// consume.  Bandwidths are the paper's BabelStream-measured values; the
// latency figures are calibration constants chosen to respect the paper's
// qualitative statements (Summit and Crusher measured lower internodal
// latencies than Sunspot, Section 9.1).

#include <string>
#include <vector>

#include "hal/model.hpp"

namespace hemo::sys {

enum class SystemId { kSummit, kPolaris, kCrusher, kSunspot };

inline constexpr SystemId kAllSystems[] = {
    SystemId::kSummit, SystemId::kPolaris, SystemId::kCrusher,
    SystemId::kSunspot};

struct SystemSpec {
  std::string name;
  std::string cpu;
  int cores_per_cpu = 0;
  int cpus_per_node = 0;

  std::string gpu_label;       // e.g. "12x PVC Tiles (6 GPUs)"
  std::string device_label;    // unit of scaling: "V100 GPUs", "MI250X GCDs"...
  int devices_per_node = 0;    // logical GPUs (tiles / GCDs / whole GPUs)
  double gpu_memory_gb = 0.0;  // per logical device
  double mem_bandwidth_tbs = 0.0;  // BabelStream, Table 1

  std::string cpu_gpu_interface;
  double cpu_gpu_gbs = 0.0;    // host<->device transfer bandwidth

  std::string interconnect;
  double internode_gbs = 0.0;      // injection bandwidth per NIC
  int internode_links = 1;         // NICs per node
  double internode_latency_us = 0.0;
  double intranode_gbs = 0.0;      // device<->device within a node
  double intranode_latency_us = 0.0;

  int max_devices = 1024;      // testbed availability cap (Sunspot: 256)

  hal::Model native_model = hal::Model::kCuda;
  std::vector<hal::Model> harvey_models;  // models evaluated on this system
  std::vector<hal::Model> proxy_models;
};

const SystemSpec& system_spec(SystemId id);
const std::vector<SystemSpec>& all_system_specs();

// ---------------------------------------------------------------------------
// Measurement substrates.  The paper derives its model inputs from two
// benchmarks: BabelStream for device memory bandwidth and an adapted
// PingPong for link timing.  We reproduce both against the simulated node.
// ---------------------------------------------------------------------------

/// Simulated BabelStream triad: returns the measured bandwidth in TB/s for
/// one device of the system, with a small deterministic size-dependent
/// droop below the asymptotic Table 1 value for small arrays.
double babelstream_bandwidth_tbs(const SystemSpec& spec,
                                 std::int64_t array_bytes);

enum class LinkKind { kIntranode, kInternode, kCpuGpu };

/// Simulated PingPong: one-way message time in seconds for a message of
/// `bytes` over the given link of the system.  Piecewise latency model
/// with a rendezvous-protocol step at 64 KiB, as real MPI exhibits.
double pingpong_time_s(const SystemSpec& spec, LinkKind link,
                       std::int64_t bytes);

/// Effective one-way latency (seconds) of the link at zero payload.
double link_latency_s(const SystemSpec& spec, LinkKind link);

/// Effective bandwidth (bytes/second) of the link.
double link_bandwidth_Bps(const SystemSpec& spec, LinkKind link);

// ---------------------------------------------------------------------------
// Piecewise scaling schedule (Section 8.1): strong scale over four powers
// of two, then grow the problem; sizes double at device counts 16 and 128,
// producing the jump discontinuities the paper describes.
// ---------------------------------------------------------------------------

struct SchedulePoint {
  int devices = 0;
  /// Problem-size multiplier relative to the base size (1, 2 or 4 on the
  /// linear dimension: proxy sizes 12/24/48, aorta spacings 110/55/27.5 um).
  int size_multiplier = 1;
};

/// The full schedule 2..max_devices; boundary counts (16, 128) appear twice,
/// once per adjoining segment, which is what renders as the weak-scaling
/// jump in the figures.
std::vector<SchedulePoint> piecewise_schedule(int max_devices = 1024);

}  // namespace hemo::sys
