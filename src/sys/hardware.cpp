#include "sys/hardware.hpp"

#include <cmath>

#include "base/contracts.hpp"

namespace hemo::sys {

namespace {

using hal::Model;

std::vector<SystemSpec> build_registry() {
  std::vector<SystemSpec> specs;

  // Summit (ORNL): IBM, 2x POWER9 + 6x V100 per node.
  {
    SystemSpec s;
    s.name = "Summit";
    s.cpu = "2x POWER9";
    s.cores_per_cpu = 21;
    s.cpus_per_node = 2;
    s.gpu_label = "6x V100 GPUs";
    s.device_label = "V100 GPUs";
    s.devices_per_node = 6;
    s.gpu_memory_gb = 16.0;
    s.mem_bandwidth_tbs = 0.770;
    s.cpu_gpu_interface = "NVLink";
    s.cpu_gpu_gbs = 50.0;
    s.interconnect = "IB";
    s.internode_gbs = 25.0;
    s.internode_latency_us = 1.6;  // lowest of the four (Section 9.1)
    s.intranode_gbs = 50.0;        // NVLink GPU<->GPU
    s.intranode_latency_us = 0.9;
    s.native_model = Model::kCuda;
    // SYCL was not run on Summit (Section 5.2); HIP runs via its CUDA
    // backend with host-staged MPI (Section 7.2.2).
    s.harvey_models = {Model::kCuda, Model::kHip, Model::kKokkosCuda,
                       Model::kKokkosOpenAcc};
    s.proxy_models = s.harvey_models;
    specs.push_back(std::move(s));
  }

  // Polaris (ALCF): HPE Apollo, 1x EPYC Milan + 4x A100 per node.
  {
    SystemSpec s;
    s.name = "Polaris";
    s.cpu = "1x EPYC 7543P";
    s.cores_per_cpu = 32;
    s.cpus_per_node = 1;
    s.gpu_label = "4x A100 GPUs";
    s.device_label = "A100 GPUs";
    s.devices_per_node = 4;
    s.gpu_memory_gb = 40.0;
    s.mem_bandwidth_tbs = 1.30;
    s.cpu_gpu_interface = "NVLink";
    s.cpu_gpu_gbs = 64.0;
    s.interconnect = "Slingshot";
    s.internode_gbs = 25.0;
    s.internode_latency_us = 2.0;
    s.intranode_gbs = 64.0;
    s.intranode_latency_us = 0.9;
    s.native_model = Model::kCuda;
    s.harvey_models = {Model::kCuda, Model::kSycl, Model::kKokkosCuda,
                       Model::kKokkosSycl, Model::kKokkosOpenAcc};
    s.proxy_models = s.harvey_models;
    specs.push_back(std::move(s));
  }

  // Crusher (OLCF, Frontier testbed): 1x EPYC 7A53 + 4x MI250X (8 GCDs).
  {
    SystemSpec s;
    s.name = "Crusher";
    s.cpu = "1x EPYC 7A53";
    s.cores_per_cpu = 64;
    s.cpus_per_node = 1;
    s.gpu_label = "8x MI250X GCDs (4 GPUs)";
    s.device_label = "MI250X GCDs";
    s.devices_per_node = 8;
    s.gpu_memory_gb = 64.0;
    s.mem_bandwidth_tbs = 1.28;
    s.cpu_gpu_interface = "Infinity Fabric CPU-GPU";
    s.cpu_gpu_gbs = 72.0;
    s.interconnect = "4x HPE Slingshot";
    s.internode_gbs = 100.0;  // four NICs per node (Table 1)
    s.internode_latency_us = 1.9;  // lower than Sunspot (Section 9.1)
    s.intranode_gbs = 100.0;       // Infinity Fabric GCD<->GCD
    s.intranode_latency_us = 0.8;
    s.native_model = Model::kHip;
    // The open-source SYCL compiler is early-stage on Crusher (Section 9.2).
    s.harvey_models = {Model::kHip, Model::kSycl, Model::kKokkosHip,
                       Model::kKokkosSycl};
    s.proxy_models = s.harvey_models;
    specs.push_back(std::move(s));
  }

  // Sunspot (ALCF, Aurora testbed): 2x Xeon Max + 6x PVC (12 tiles).
  {
    SystemSpec s;
    s.name = "Sunspot";
    s.cpu = "2x Xeon Max";
    s.cores_per_cpu = 52;
    s.cpus_per_node = 2;
    s.gpu_label = "12x PVC Tiles (6 GPUs)";
    s.device_label = "PVC Tiles";
    s.devices_per_node = 12;
    s.gpu_memory_gb = 64.0;
    s.mem_bandwidth_tbs = 0.997;
    s.cpu_gpu_interface = "PCIe Gen5";
    s.cpu_gpu_gbs = 128.0;
    s.interconnect = "Slingshot 11";
    s.internode_gbs = 25.0;
    s.internode_links = 4;         // multiple NICs per Aurora-class node
    s.internode_latency_us = 4.5;  // highest measured latency (Section 9.1)
    s.intranode_gbs = 50.0;        // Xe Link tile<->tile
    s.intranode_latency_us = 1.4;
    s.max_devices = 256;  // testbed availability limit (Section 9.2)
    s.native_model = Model::kSycl;
    // HIP runs via chipStar (Section 7.2.3).
    s.harvey_models = {Model::kSycl, Model::kHip, Model::kKokkosSycl};
    s.proxy_models = s.harvey_models;
    specs.push_back(std::move(s));
  }

  return specs;
}

const std::vector<SystemSpec>& registry() {
  static const std::vector<SystemSpec> specs = build_registry();
  return specs;
}

}  // namespace

const SystemSpec& system_spec(SystemId id) {
  return registry()[static_cast<std::size_t>(id)];
}

const std::vector<SystemSpec>& all_system_specs() { return registry(); }

double babelstream_bandwidth_tbs(const SystemSpec& spec,
                                 std::int64_t array_bytes) {
  HEMO_EXPECTS(array_bytes > 0);
  // Small arrays underutilize the memory system: model the ramp with the
  // standard saturation curve B(s) = B_inf * s / (s + s_half), with the
  // half-bandwidth point at 4 MiB.  At the BabelStream default of 256 MiB
  // this recovers Table 1 to within ~2%.
  const double s_half = 4.0 * 1024 * 1024;
  const double s = static_cast<double>(array_bytes);
  return spec.mem_bandwidth_tbs * s / (s + s_half);
}

double link_latency_s(const SystemSpec& spec, LinkKind link) {
  switch (link) {
    case LinkKind::kIntranode: return spec.intranode_latency_us * 1e-6;
    case LinkKind::kInternode: return spec.internode_latency_us * 1e-6;
    case LinkKind::kCpuGpu: return 0.4e-6;  // driver enqueue cost
  }
  return 0.0;
}

double link_bandwidth_Bps(const SystemSpec& spec, LinkKind link) {
  switch (link) {
    case LinkKind::kIntranode: return spec.intranode_gbs * 1e9;
    case LinkKind::kInternode:
      return spec.internode_gbs * spec.internode_links * 1e9;
    case LinkKind::kCpuGpu: return spec.cpu_gpu_gbs * 1e9;
  }
  return 0.0;
}

double pingpong_time_s(const SystemSpec& spec, LinkKind link,
                       std::int64_t bytes) {
  HEMO_EXPECTS(bytes >= 0);
  const double latency = link_latency_s(spec, link);
  const double bandwidth = link_bandwidth_Bps(spec, link);
  // Rendezvous handshake above the eager threshold costs one extra
  // round-trip worth of latency, as in production MPI stacks.
  constexpr std::int64_t kEagerLimit = 64 * 1024;
  const double rendezvous = bytes > kEagerLimit ? 2.0 * latency : 0.0;
  return latency + rendezvous + static_cast<double>(bytes) / bandwidth;
}

std::vector<SchedulePoint> piecewise_schedule(int max_devices) {
  HEMO_EXPECTS(max_devices >= 2);
  std::vector<SchedulePoint> schedule;
  // Segment boundaries at 16 and 128 belong to both adjoining segments:
  // the repeated device count with the doubled size is the weak-scaling
  // jump visible in Figs. 3-6.
  for (int d = 2; d <= 16 && d <= max_devices; d *= 2)
    schedule.push_back({d, 1});
  for (int d = 16; d <= 128 && d <= max_devices; d *= 2)
    schedule.push_back({d, 2});
  for (int d = 128; d <= 1024 && d <= max_devices; d *= 2)
    schedule.push_back({d, 4});
  return schedule;
}

}  // namespace hemo::sys
