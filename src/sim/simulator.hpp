#pragma once
// ClusterSimulator: prices one iteration of a workload on a simulated
// system for a given programming model, from first principles:
//
//   per-rank time = launch overhead
//                 + bytes / (BabelStream bandwidth * model efficiency
//                            * occupancy(points))
//                 + sum over halo messages (link latency + size / link bw)
//                 + host staging transfers for pack/unpack
//
// with per-rank point counts and message sizes taken from the *measured*
// decomposition (hemo::sim::Workload) and link characteristics from the
// Table 1 registry (hemo::sys).  Internode bandwidth is shared by the
// devices of a node and halved for bidirectional traffic — the effect the
// paper identifies as making communication dominant on Polaris (Fig. 7).
//
// The iteration time is the slowest rank's; MFLUPS = points / time / 1e6.

#include <vector>

#include "hal/model.hpp"
#include "perf/model.hpp"
#include "sim/profiles.hpp"
#include "sim/workload.hpp"
#include "sys/hardware.hpp"

namespace hemo::sim {

/// Which application is being priced; they differ in kernel efficiency
/// (profiles) and decomposition (workload).
enum class App { kProxy, kHarvey };

/// Runtime composition of one rank's iteration (the Fig. 7 quantities).
struct Composition {
  double streamcollide_s = 0.0;
  double comm_s = 0.0;       // network transfer + latency
  double h2d_s = 0.0;        // CPU -> GPU staging (halo unpack)
  double d2h_s = 0.0;        // GPU -> CPU staging (halo pack)

  double total_s() const {
    return streamcollide_s + comm_s + h2d_s + d2h_s;
  }
};

struct SimPoint {
  int devices = 0;
  int size_multiplier = 1;
  double total_points = 0.0;
  double iteration_s = 0.0;
  double mflups = 0.0;
  Composition worst_rank;  // composition of the slowest rank (Fig. 7)
};

class ClusterSimulator {
 public:
  ClusterSimulator(sys::SystemId system, hal::Model model, App app);

  /// Calibration constructor: uses an explicit profile instead of the
  /// registry's (used by the tuning sweep and sensitivity benches).
  ClusterSimulator(sys::SystemId system, hal::Model model, App app,
                   const BackendProfile& profile);

  /// Prices one schedule point.
  SimPoint simulate(Workload& workload, int devices, int size_multiplier) const;

  /// Prices the full piecewise schedule (capped at the system's device
  /// availability, e.g. 256 on Sunspot).
  std::vector<SimPoint> simulate_schedule(Workload& workload) const;

  /// The paper's ideal prediction for the same schedule point (Eqs. 1-4).
  perf::Prediction predict(const Workload& workload, int devices,
                           int size_multiplier) const;

  /// Degraded-mode prediction: the point started at `devices` but rank
  /// deaths shrank it onto `survivors`, so its architectural efficiency is
  /// judged against the survivor-count ideal
  /// (perf::PerformanceModel::predict_degraded).
  perf::Prediction predict_degraded(const Workload& workload, int devices,
                                    int survivors, int size_multiplier) const;

  sys::SystemId system() const { return system_; }
  hal::Model model() const { return model_; }
  App app() const { return app_; }
  const BackendProfile& profile() const { return profile_; }

 private:
  sys::SystemId system_;
  hal::Model model_;
  App app_;
  sys::SystemSpec spec_;
  BackendProfile profile_;
};

/// Application efficiency (Section 8.1): each model's MFLUPS divided by
/// the best observed MFLUPS at the same device count.  `series` is one
/// vector of SimPoints per model, all over the same schedule.
std::vector<std::vector<double>> application_efficiencies(
    const std::vector<std::vector<SimPoint>>& series);

/// Architectural efficiency: measured MFLUPS / predicted MFLUPS.
double architectural_efficiency(const SimPoint& point,
                                const perf::Prediction& prediction);

}  // namespace hemo::sim
