#include "sim/portability.hpp"

#include <algorithm>

#include "base/contracts.hpp"

namespace hemo::sim {

double performance_portability(const std::vector<double>& efficiencies,
                               std::size_t platform_count) {
  HEMO_EXPECTS(platform_count >= 1);
  if (efficiencies.size() < platform_count) return 0.0;
  double inverse_sum = 0.0;
  for (const double e : efficiencies) {
    if (e <= 0.0) return 0.0;
    inverse_sum += 1.0 / e;
  }
  return static_cast<double>(efficiencies.size()) / inverse_sum;
}

std::vector<PortabilityRow> portability_table(App app, Workload& workload,
                                              int device_count,
                                              int size_multiplier,
                                              EfficiencyKind kind) {
  HEMO_EXPECTS(device_count >= 1);

  // Best observed MFLUPS per system at this point (for application
  // efficiency) and per-model measurements.
  std::map<sys::SystemId, double> best;
  std::map<hal::Model, std::map<sys::SystemId, double>> mflups;
  std::map<hal::Model, std::map<sys::SystemId, double>> predicted;

  for (const sys::SystemId id : sys::kAllSystems) {
    const sys::SystemSpec& spec = sys::system_spec(id);
    if (device_count > spec.max_devices) continue;
    for (const hal::Model m : spec.harvey_models) {
      const ClusterSimulator cs(id, m, app);
      const SimPoint p = cs.simulate(workload, device_count, size_multiplier);
      mflups[m][id] = p.mflups;
      predicted[m][id] =
          cs.predict(workload, device_count, size_multiplier).mflups;
      best[id] = std::max(best[id], p.mflups);
    }
  }

  std::vector<PortabilityRow> rows;
  for (const hal::Model m : hal::kAllModels) {
    auto it = mflups.find(m);
    if (it == mflups.end()) continue;
    PortabilityRow row;
    row.model = m;
    std::vector<double> efficiencies;
    for (const auto& [id, value] : it->second) {
      const double e = kind == EfficiencyKind::kApplication
                           ? value / best.at(id)
                           : value / predicted.at(m).at(id);
      row.efficiency[id] = e;
      efficiencies.push_back(e);
    }
    row.platforms = static_cast<int>(efficiencies.size());
    std::size_t all = 0;
    for (const sys::SystemId id : sys::kAllSystems)
      if (device_count <= sys::system_spec(id).max_devices) ++all;
    row.pp_all = performance_portability(efficiencies, all);
    row.pp_supported =
        performance_portability(efficiencies, efficiencies.size());
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hemo::sim
