#pragma once
// Per-(system, programming model) performance profiles for the cluster
// simulator.  These are the calibration layer of the reproduction: with no
// physical V100/A100/MI250X/PVC available, each profile encodes how far a
// given model's generated code falls short of the device's BabelStream
// bandwidth, how much parallelism the device needs to hide latency, and
// how efficiently the model's runtime drives the interconnect.  Values are
// chosen so the simulator reproduces the qualitative findings of the
// paper's Section 9 (see DESIGN.md for the target shape list and
// EXPERIMENTS.md for the resulting curves).

#include "hal/model.hpp"
#include "sys/hardware.hpp"

namespace hemo::sim {

struct BackendProfile {
  /// Fraction of BabelStream bandwidth the fused stream-collide kernel
  /// achieves at full occupancy, for the proxy app and for HARVEY (the
  /// production code does roughly 2x the per-point work: boundary
  /// handling, indirection, extra fields).
  double proxy_efficiency = 0.9;
  double harvey_efficiency = 0.47;

  /// Points per device at which the effective bandwidth halves; models
  /// the occupancy / latency-hiding loss at the end of each strong-scaling
  /// segment (largest on PVC, Section 9.1).
  double occupancy_half_points = 5e4;

  /// Fixed per-iteration cost: kernel launch + synchronization.
  double launch_overhead_us = 10.0;

  /// Multiplier on link bandwidth achieved by this model's halo path.
  double comm_efficiency = 0.9;

  /// GPU-aware MPI unavailable: halo bytes bounce through host memory
  /// (HIP on Summit, Section 7.2.2).
  bool host_staged_mpi = false;
};

/// Profile lookup; aborts if the model was not evaluated on that system
/// (mirrors Table 1 / Section 8.1 availability).
BackendProfile profile_for(sys::SystemId system, hal::Model model);

/// True if the paper ran this model on this system (for HARVEY; the proxy
/// availability is identical).
bool model_available(sys::SystemId system, hal::Model model);

}  // namespace hemo::sim
