#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "base/contracts.hpp"
#include "lbm/propagation.hpp"

namespace hemo::sim {

namespace {

/// Node of a rank under block assignment (rank r -> node r / per_node),
/// matching the one-rank-per-subdevice mapping of Section 8.1.
int node_of(Rank r, int devices_per_node) { return r / devices_per_node; }

}  // namespace

ClusterSimulator::ClusterSimulator(sys::SystemId system, hal::Model model,
                                   App app)
    : system_(system),
      model_(model),
      app_(app),
      spec_(sys::system_spec(system)),
      profile_(profile_for(system, model)) {}

ClusterSimulator::ClusterSimulator(sys::SystemId system, hal::Model model,
                                   App app, const BackendProfile& profile)
    : system_(system),
      model_(model),
      app_(app),
      spec_(sys::system_spec(system)),
      profile_(profile) {}

SimPoint ClusterSimulator::simulate(Workload& workload, int devices,
                                    int size_multiplier) const {
  HEMO_EXPECTS(devices >= 1);
  const RankStats& stats = workload.stats(devices);
  const double point_scale = workload.point_scale(size_multiplier);
  const double halo_scale = workload.halo_scale(size_multiplier);

  const double efficiency = app_ == App::kProxy
                                ? profile_.proxy_efficiency
                                : profile_.harvey_efficiency;
  // The measured campaigns all run the pull-SoA kernels (the paper's
  // configuration); AA-pattern runs are re-priced explicitly via
  // perf::ModelParams::for_propagation.
  const double bytes_per_point =
      lbm::propagation_bytes_per_point(lbm::Propagation::kPullSoA);

  // The proxy packs only the distributions that actually cross a face
  // (what the measured halo plan counts); HARVEY's production halo path
  // carries packing overhead and extra per-point state, ~1.6x the bytes.
  // This is part of what makes communication dominate HARVEY at scale
  // (Fig. 7) while the proxy stays closer to the model's bound.
  const double halo_multiplier = app_ == App::kProxy ? 1.0 : 1.6;

  // Halo exchange overlaps with interior computation.  The proxy's
  // idealized update pipeline hides most of its communication behind the
  // stream-collide kernel; HARVEY's boundary-condition dependencies limit
  // the overlap window.  Only the non-overlapped remainder is charged
  // (and reported as the Fig. 7 communication slice).
  const double overlap = app_ == App::kProxy ? 0.8 : 0.3;

  const auto n_ranks = static_cast<std::size_t>(devices);

  // Surface-saturation guard for bisection workloads: at the coarse
  // measurement resolution, high rank counts produce sliver-shaped
  // subdomains whose surface/volume ratio does not survive refinement —
  // at the target resolution the same split yields compact chunks obeying
  // the V^(2/3) law the paper's own Eq. 3 assumes.  Cap each rank's halo
  // at shape * V^(2/3), with the shape constant taken per workload from
  // its compact-chunk regime.  Slab decompositions extrapolate exactly
  // (a slab stays a slab) and are not capped.
  std::vector<double> rank_halo_values(n_ranks, 0.0);
  for (const decomp::HaloMessage& m : stats.halos) {
    const double v = static_cast<double>(m.values) * halo_scale;
    rank_halo_values[static_cast<std::size_t>(m.src)] += v;
    rank_halo_values[static_cast<std::size_t>(m.dst)] += v;
  }
  std::vector<double> halo_factor(n_ranks, 1.0);
  if (workload.kind() == DecompositionKind::kBisection) {
    for (std::size_t r = 0; r < n_ranks; ++r) {
      const double pts = static_cast<double>(stats.points[r]) * point_scale;
      const double bound =
          workload.surface_shape() * std::pow(pts, 2.0 / 3.0);
      if (rank_halo_values[r] > bound)
        halo_factor[r] = bound / rank_halo_values[r];
    }
  }

  // Index messages by participating rank once: O(messages + ranks).
  std::vector<std::vector<const decomp::HaloMessage*>> by_rank(n_ranks);
  for (const decomp::HaloMessage& m : stats.halos) {
    by_rank[static_cast<std::size_t>(m.src)].push_back(&m);
    if (m.dst != m.src) by_rank[static_cast<std::size_t>(m.dst)].push_back(&m);
  }

  // Effective per-rank internode bandwidth: the node's injection bandwidth
  // is shared across its devices and carries traffic both ways.
  const double internode_Bps_per_rank =
      sys::link_bandwidth_Bps(spec_, sys::LinkKind::kInternode) /
      (2.0 * spec_.devices_per_node) * profile_.comm_efficiency;
  const double intranode_Bps =
      sys::link_bandwidth_Bps(spec_, sys::LinkKind::kIntranode) *
      profile_.comm_efficiency;
  const double cpu_gpu_Bps =
      sys::link_bandwidth_Bps(spec_, sys::LinkKind::kCpuGpu);

  SimPoint out;
  out.devices = devices;
  out.size_multiplier = size_multiplier;
  out.total_points =
      static_cast<double>(workload.measured_points()) * point_scale;

  double worst = 0.0;
  for (std::size_t r = 0; r < n_ranks; ++r) {
    Composition comp;

    // Stream-collide: bandwidth-bound kernel at this rank's occupancy.
    const double points = static_cast<double>(stats.points[r]) * point_scale;
    const double occupancy =
        points / (points + profile_.occupancy_half_points);
    const auto working_set =
        static_cast<std::int64_t>(points * bytes_per_point);
    const double bandwidth =
        sys::babelstream_bandwidth_tbs(spec_,
                                       std::max<std::int64_t>(working_set, 1)) *
        1e12 * efficiency * occupancy;
    comp.streamcollide_s = profile_.launch_overhead_us * 1e-6 +
                           points * bytes_per_point / bandwidth;

    // Halo messages touching this rank.
    for (const decomp::HaloMessage* m : by_rank[r]) {
      const double bytes =
          static_cast<double>(m->bytes()) * halo_scale * halo_multiplier *
          std::min(halo_factor[static_cast<std::size_t>(m->src)],
                   halo_factor[static_cast<std::size_t>(m->dst)]);
      const bool internode = node_of(m->src, spec_.devices_per_node) !=
                             node_of(m->dst, spec_.devices_per_node);
      const sys::LinkKind link = internode ? sys::LinkKind::kInternode
                                           : sys::LinkKind::kIntranode;
      const double link_Bps =
          internode ? internode_Bps_per_rank : intranode_Bps;

      // Each rank pays for the messages it sends and the ones it waits to
      // receive; latency is per message.
      comp.comm_s += sys::link_latency_s(spec_, link) + bytes / link_Bps;

      // Pack/unpack staging over the CPU-GPU link; without GPU-aware MPI
      // (Summit HIP) the buffer makes an extra host bounce each way.
      const double staging_factor = profile_.host_staged_mpi ? 2.0 : 1.0;
      const double staging_s =
          sys::link_latency_s(spec_, sys::LinkKind::kCpuGpu) +
          staging_factor * bytes / cpu_gpu_Bps;
      if (m->src == static_cast<Rank>(r))
        comp.d2h_s += staging_s;
      else
        comp.h2d_s += staging_s;
    }

    comp.comm_s = std::max(0.0, comp.comm_s - overlap * comp.streamcollide_s);

    const double total = comp.total_s();
    if (total > worst) {
      worst = total;
      out.worst_rank = comp;
    }
  }

  out.iteration_s = worst;
  out.mflups = out.total_points / out.iteration_s / 1e6;
  HEMO_ENSURES(out.mflups > 0.0);
  return out;
}

std::vector<SimPoint> ClusterSimulator::simulate_schedule(
    Workload& workload) const {
  std::vector<SimPoint> series;
  for (const sys::SchedulePoint& sp :
       sys::piecewise_schedule(spec_.max_devices))
    series.push_back(simulate(workload, sp.devices, sp.size_multiplier));
  return series;
}

perf::Prediction ClusterSimulator::predict(const Workload& workload,
                                           int devices,
                                           int size_multiplier) const {
  const perf::PerformanceModel model(spec_);
  return model.predict(workload.target_points(size_multiplier), devices);
}

perf::Prediction ClusterSimulator::predict_degraded(
    const Workload& workload, int devices, int survivors,
    int size_multiplier) const {
  const perf::PerformanceModel model(spec_);
  return model.predict_degraded(workload.target_points(size_multiplier),
                                devices, survivors);
}

std::vector<std::vector<double>> application_efficiencies(
    const std::vector<std::vector<SimPoint>>& series) {
  HEMO_EXPECTS(!series.empty());
  const std::size_t n_points = series.front().size();
  for (const auto& s : series) HEMO_EXPECTS(s.size() == n_points);

  std::vector<std::vector<double>> eff(series.size(),
                                       std::vector<double>(n_points, 0.0));
  for (std::size_t k = 0; k < n_points; ++k) {
    double best = 0.0;
    for (const auto& s : series) best = std::max(best, s[k].mflups);
    HEMO_ASSERT(best > 0.0);
    for (std::size_t m = 0; m < series.size(); ++m)
      eff[m][k] = series[m][k].mflups / best;
  }
  return eff;
}

double architectural_efficiency(const SimPoint& point,
                                const perf::Prediction& prediction) {
  HEMO_EXPECTS(prediction.mflups > 0.0);
  return point.mflups / prediction.mflups;
}

}  // namespace hemo::sim
