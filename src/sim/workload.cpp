#include "sim/workload.hpp"

#include <cmath>
#include <map>
#include <mutex>

#include "base/contracts.hpp"
#include "geom/aorta.hpp"
#include "geom/cylinder.hpp"

namespace hemo::sim {

// One slot per rank count.  The map lock only guards slot acquisition; the
// expensive partition + halo-plan build runs under the slot's once_flag, so
// distinct rank counts decompose concurrently while a shared rank count is
// computed exactly once and every waiter blocks on that one computation.
struct Workload::StatsCache {
  struct Slot {
    std::once_flag once;
    RankStats stats;
  };
  std::mutex mu;
  std::map<int, std::shared_ptr<Slot>> slots;
};

Workload::Workload(std::string name,
                   std::shared_ptr<lbm::SparseLattice> lattice,
                   DecompositionKind kind, double base_linear_ratio)
    : name_(std::move(name)),
      lattice_(std::move(lattice)),
      kind_(kind),
      base_linear_ratio_(base_linear_ratio),
      stats_cache_(std::make_shared<StatsCache>()) {
  HEMO_EXPECTS(lattice_ != nullptr);
  HEMO_EXPECTS(base_linear_ratio_ >= 1.0);
}

Workload Workload::cylinder(DecompositionKind kind, double measure_scale,
                            double target_base_scale) {
  HEMO_EXPECTS(measure_scale > 0.0);
  HEMO_EXPECTS(target_base_scale >= measure_scale);
  geom::CylinderSpec spec;
  spec.scale = measure_scale;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
  const char* kind_name =
      kind == DecompositionKind::kSlab ? "slab" : "bisection";
  Workload w("cylinder-" + std::string(kind_name), std::move(lattice), kind,
             target_base_scale / measure_scale);
  w.set_surface_shape(20.0);  // compact chunks inside the wide cylinder
  return w;
}

Workload Workload::aorta(double measure_spacing_mm,
                         double target_base_spacing_mm) {
  HEMO_EXPECTS(measure_spacing_mm > 0.0);
  HEMO_EXPECTS(target_base_spacing_mm <= measure_spacing_mm);
  geom::AortaSpec spec;
  spec.spacing_mm = measure_spacing_mm;
  auto lattice = geom::make_aorta_lattice(spec);
  // HARVEY decomposes complex geometries with the bisection balancer.
  Workload w("aorta", std::move(lattice), DecompositionKind::kBisection,
             measure_spacing_mm / target_base_spacing_mm);
  w.set_surface_shape(55.0);  // elongated vessel chunks (see header)
  return w;
}

const RankStats& Workload::stats(int n_ranks) {
  HEMO_EXPECTS(n_ranks >= 1);
  std::shared_ptr<StatsCache::Slot> slot;
  {
    const std::lock_guard<std::mutex> lock(stats_cache_->mu);
    std::shared_ptr<StatsCache::Slot>& entry = stats_cache_->slots[n_ranks];
    if (!entry) entry = std::make_shared<StatsCache::Slot>();
    slot = entry;
  }

  std::call_once(slot->once, [&] {
    const decomp::Partition partition =
        kind_ == DecompositionKind::kSlab
            ? decomp::slab_partition(*lattice_, n_ranks)
            : decomp::bisection_partition(*lattice_, n_ranks);
    const decomp::HaloPlan plan =
        decomp::build_halo_plan(*lattice_, partition);

    slot->stats.n_ranks = n_ranks;
    slot->stats.points = partition.rank_counts();
    slot->stats.halos = plan.messages;
    slot->stats.imbalance = partition.imbalance();
  });
  return slot->stats;
}

double Workload::point_scale(int size_multiplier) const {
  HEMO_EXPECTS(size_multiplier >= 1);
  const double r = base_linear_ratio_ * size_multiplier;
  return r * r * r;
}

double Workload::halo_scale(int size_multiplier) const {
  HEMO_EXPECTS(size_multiplier >= 1);
  const double r = base_linear_ratio_ * size_multiplier;
  return r * r;
}

double Workload::target_points(int size_multiplier) const {
  return static_cast<double>(lattice_->size()) * point_scale(size_multiplier);
}

}  // namespace hemo::sim
