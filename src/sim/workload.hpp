#pragma once
// Workload models for the cluster simulator.  The paper's evaluation sizes
// (proxy scale 12/24/48; aorta at 110/55/27.5 um) reach billions of fluid
// points — far beyond what this machine can instantiate — so the workload
// is *measured* at a feasible resolution with the real geometry, the real
// decomposition and the real halo plan, and then extrapolated: fluid-point
// counts scale with the cube of the linear refinement ratio, halo volumes
// with its square.  Per-rank imbalance and neighbor structure are taken
// from the measured decomposition unchanged (bisection is scale-invariant
// to leading order).  This mirrors the approximation the paper's own
// performance model makes (Section 6), while retaining the measured load
// imbalance and message pattern the analytic model lacks.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "decomp/partition.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::sim {

/// Measured decomposition statistics for one rank count.
struct RankStats {
  int n_ranks = 0;
  std::vector<std::int64_t> points;        // per rank, at measure resolution
  std::vector<decomp::HaloMessage> halos;  // crossing values per rank pair
  double imbalance = 1.0;                  // max/mean point count
};

enum class DecompositionKind {
  kSlab,      // the proxy application's scheme
  kBisection  // HARVEY's load-bisection balancer
};

class Workload {
 public:
  /// Cylinder workload at a feasible measurement scale (the paper's proxy
  /// geometry with x = measure_scale).  `target_base_scale` is the paper's
  /// base size (12); extrapolation covers the size_multiplier (1, 2, 4).
  static Workload cylinder(DecompositionKind kind, double measure_scale = 3.0,
                           double target_base_scale = 12.0);

  /// Aorta workload measured at measure_spacing_mm; the paper's base grid
  /// spacing is 0.110 mm.
  static Workload aorta(double measure_spacing_mm = 0.66,
                        double target_base_spacing_mm = 0.110);

  const std::string& name() const { return name_; }
  DecompositionKind kind() const { return kind_; }

  /// Surface shape constant for the V^(2/3) saturation guard (see
  /// hemo::sim::ClusterSimulator): halo values per rank are capped at
  /// shape * V^(2/3) when extrapolating a bisection decomposition.  The
  /// compact cylinder measures ~26 in its compact-chunk regime; the
  /// aorta's thin branches keep chunks elongated, so its surfaces stay
  /// legitimately larger.
  double surface_shape() const { return surface_shape_; }
  void set_surface_shape(double shape) { surface_shape_ = shape; }

  /// Measured stats for a rank count (computed on first use, cached).
  /// Thread-safe: concurrent callers asking for distinct rank counts build
  /// their decompositions in parallel; callers sharing a rank count block
  /// until the single computation finishes.  The campaign runtime
  /// (hemo::rt) relies on this to price many schedule points of one
  /// workload concurrently.
  const RankStats& stats(int n_ranks);

  /// Fluid points at measurement resolution.
  std::int64_t measured_points() const { return lattice_->size(); }

  /// Linear refinement ratio from the measured instance to the paper's
  /// base problem size.
  double base_linear_ratio() const { return base_linear_ratio_; }

  /// Total fluid points of the target problem at a given size multiplier.
  double target_points(int size_multiplier) const;

  /// Scale factor applied to measured per-rank point counts (cubic).
  double point_scale(int size_multiplier) const;

  /// Scale factor applied to measured halo values (quadratic).
  double halo_scale(int size_multiplier) const;

  const lbm::SparseLattice& lattice() const { return *lattice_; }

  /// Shared handle to the measured lattice, for consumers that need shared
  /// ownership (e.g. the campaign preflight builds a DistributedSolver on
  /// it to run the static validators before pricing).
  std::shared_ptr<const lbm::SparseLattice> lattice_ptr() const {
    return lattice_;
  }

 private:
  struct StatsCache;  // thread-safe per-rank-count memo (workload.cpp)

  Workload(std::string name, std::shared_ptr<lbm::SparseLattice> lattice,
           DecompositionKind kind, double base_linear_ratio);

  std::string name_;
  std::shared_ptr<lbm::SparseLattice> lattice_;
  DecompositionKind kind_;
  double base_linear_ratio_;
  double surface_shape_ = 26.0;
  std::shared_ptr<StatsCache> stats_cache_;
};

}  // namespace hemo::sim
