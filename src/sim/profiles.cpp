#include "sim/profiles.hpp"

#include <algorithm>

#include "base/contracts.hpp"

namespace hemo::sim {

namespace {

using hal::Model;
using sys::SystemId;

BackendProfile summit_profile(Model m) {
  BackendProfile p;
  p.occupancy_half_points = 3e4;  // V100: modest device, saturates early
  switch (m) {
    case Model::kCuda:
      p = {.proxy_efficiency = 0.97, .harvey_efficiency = 0.51,
           .occupancy_half_points = 3e4, .launch_overhead_us = 8.0,
           .comm_efficiency = 0.90};
      break;
    case Model::kHip:
      // hipcc over the CUDA backend generates marginally better HARVEY
      // code (it wins at the lowest task count, Section 9.2) but cannot
      // use GPU-aware MPI on Summit (Section 7.2.2).
      p = {.proxy_efficiency = 0.97, .harvey_efficiency = 0.54,
           .occupancy_half_points = 3e4, .launch_overhead_us = 10.0,
           .comm_efficiency = 0.88, .host_staged_mpi = true};
      break;
    case Model::kKokkosCuda:
      p = {.proxy_efficiency = 0.80, .harvey_efficiency = 0.42,
           .occupancy_half_points = 3.5e4, .launch_overhead_us = 14.0,
           .comm_efficiency = 0.88};
      break;
    case Model::kKokkosOpenAcc:
      // Consistently outperforms Kokkos-CUDA on Summit (Section 9.2).
      p = {.proxy_efficiency = 0.88, .harvey_efficiency = 0.46,
           .occupancy_half_points = 3.2e4, .launch_overhead_us = 12.0,
           .comm_efficiency = 0.88};
      break;
    default:
      HEMO_EXPECTS(false && "model not evaluated on Summit");
  }
  return p;
}

BackendProfile polaris_profile(Model m) {
  BackendProfile p;
  switch (m) {
    case Model::kCuda:
      // Compute efficiency slightly above 1: caching effects the
      // performance model does not account for push a few architectural
      // efficiencies past unity (Section 9.2).
      p = {.proxy_efficiency = 1.04, .harvey_efficiency = 0.55,
           .occupancy_half_points = 6e4, .launch_overhead_us = 8.0,
           .comm_efficiency = 0.75};
      break;
    case Model::kSycl:
      // Marginally slower kernels than native CUDA but a better halo
      // path: matches native closely and exceeds it at 1024 GPUs.
      p = {.proxy_efficiency = 1.00, .harvey_efficiency = 0.53,
           .occupancy_half_points = 6e4, .launch_overhead_us = 6.0,
           .comm_efficiency = 0.88};
      break;
    case Model::kKokkosCuda:
      p = {.proxy_efficiency = 0.85, .harvey_efficiency = 0.45,
           .occupancy_half_points = 6.5e4, .launch_overhead_us = 14.0,
           .comm_efficiency = 0.72};
      break;
    case Model::kKokkosSycl:
      // Worst proxy among the Kokkos backends on Polaris, yet on par with
      // Kokkos-CUDA for HARVEY (Section 9.2).
      p = {.proxy_efficiency = 0.70, .harvey_efficiency = 0.44,
           .occupancy_half_points = 6.5e4, .launch_overhead_us = 14.0,
           .comm_efficiency = 0.72};
      break;
    case Model::kKokkosOpenAcc:
      // Proxy on par with Kokkos-CUDA; HARVEY clearly the worst, most
      // pronounced on the aorta (Section 9.2).
      p = {.proxy_efficiency = 0.85, .harvey_efficiency = 0.33,
           .occupancy_half_points = 6.5e4, .launch_overhead_us = 16.0,
           .comm_efficiency = 0.72};
      break;
    default:
      HEMO_EXPECTS(false && "model not evaluated on Polaris");
  }
  return p;
}

BackendProfile crusher_profile(Model m) {
  BackendProfile p;
  switch (m) {
    case Model::kHip:
      // Native HIP: architectural efficiency notably low (Fig. 5(g)), so
      // HARVEY trails every other system at small device counts, but the
      // four-NIC Slingshot fabric carries it past Summit/Sunspot at scale.
      p = {.proxy_efficiency = 0.60, .harvey_efficiency = 0.22,
           .occupancy_half_points = 8e4, .launch_overhead_us = 12.0,
           .comm_efficiency = 1.00};
      break;
    case Model::kSycl:
      // Early-development SYCL stack on Crusher (Section 9.2): kernels
      // comparable to Kokkos-HIP on the cylinder, but a poor halo path
      // that collapses on the comm-heavier aorta after the first point.
      p = {.proxy_efficiency = 0.45, .harvey_efficiency = 0.22,
           .occupancy_half_points = 9e4, .launch_overhead_us = 20.0,
           .comm_efficiency = 0.45};
      break;
    case Model::kKokkosHip:
      p = {.proxy_efficiency = 0.52, .harvey_efficiency = 0.22,
           .occupancy_half_points = 8.5e4, .launch_overhead_us = 16.0,
           .comm_efficiency = 0.95};
      break;
    case Model::kKokkosSycl:
      p = {.proxy_efficiency = 0.42, .harvey_efficiency = 0.20,
           .occupancy_half_points = 9e4, .launch_overhead_us = 18.0,
           .comm_efficiency = 0.80};
      break;
    default:
      HEMO_EXPECTS(false && "model not evaluated on Crusher");
  }
  return p;
}

BackendProfile sunspot_profile(Model m) {
  BackendProfile p;
  switch (m) {
    case Model::kSycl:
      // Native DPC++ on PVC.  Tiles need far more resident parallelism to
      // hide latency (4x the memory of V100, Section 9.1), hence the
      // large occupancy half point and the pronounced weak-scaling jumps.
      p = {.proxy_efficiency = 0.62, .harvey_efficiency = 0.36,
           .occupancy_half_points = 1.5e6, .launch_overhead_us = 10.0,
           .comm_efficiency = 0.90};
      break;
    case Model::kKokkosSycl:
      // Manually tuned for Sunspot: outperforms native SYCL nearly across
      // the board (Section 9.2).
      p = {.proxy_efficiency = 0.65, .harvey_efficiency = 0.38,
           .occupancy_half_points = 1.4e6, .launch_overhead_us = 11.0,
           .comm_efficiency = 0.92};
      break;
    case Model::kHip:
      // chipStar: functionality over performance.  HARVEY lands close to
      // native SYCL, but the proxy — compiled with prefetching disabled
      // and argument-passing warnings — is the worst code on the system
      // (Sections 7.2.3 and 9.2).
      p = {.proxy_efficiency = 0.30, .harvey_efficiency = 0.35,
           .occupancy_half_points = 1.6e6, .launch_overhead_us = 25.0,
           .comm_efficiency = 0.85};
      break;
    default:
      HEMO_EXPECTS(false && "model not evaluated on Sunspot");
  }
  return p;
}

}  // namespace

bool model_available(sys::SystemId system, hal::Model model) {
  const sys::SystemSpec& spec = sys::system_spec(system);
  return std::find(spec.harvey_models.begin(), spec.harvey_models.end(),
                   model) != spec.harvey_models.end();
}

BackendProfile profile_for(sys::SystemId system, hal::Model model) {
  HEMO_EXPECTS(model_available(system, model));
  switch (system) {
    case SystemId::kSummit: return summit_profile(model);
    case SystemId::kPolaris: return polaris_profile(model);
    case SystemId::kCrusher: return crusher_profile(model);
    case SystemId::kSunspot: return sunspot_profile(model);
  }
  return {};
}

}  // namespace hemo::sim
