#pragma once
// Performance-portability metric (Pennycook, Sewall, Lee — the standard
// P3HPC measure the paper's venue is built around): for an application a,
// problem p and platform set H,
//
//   PP(a, p, H) = |H| / sum_{i in H} 1 / e_i(a, p)    if a runs on all of H,
//                 0                                    otherwise,
//
// the harmonic mean of the per-platform efficiencies e_i.  Both efficiency
// flavors of the paper's Section 8.1 plug in: application efficiency
// (vs the best observed model per platform) and architectural efficiency
// (vs the performance-model bound).

#include <map>
#include <vector>

#include "hal/model.hpp"
#include "sim/simulator.hpp"
#include "sys/hardware.hpp"

namespace hemo::sim {

/// Harmonic mean of efficiencies; 0 if any platform is missing (the
/// metric's definition for non-portable applications) or any efficiency
/// is non-positive.
double performance_portability(const std::vector<double>& efficiencies,
                               std::size_t platform_count);

enum class EfficiencyKind { kApplication, kArchitectural };

struct PortabilityRow {
  hal::Model model;
  /// Efficiency per system the model runs on (system order follows
  /// sys::kAllSystems, absent systems skipped).
  std::map<sys::SystemId, double> efficiency;
  /// PP over the full four-system set (0 when the model does not run
  /// everywhere — only Kokkos backends can score here, and of those only
  /// Kokkos-SYCL actually covers all four systems in the study).
  double pp_all = 0.0;
  /// PP over the systems the model does support (coverage in the name of
  /// the paper's "trade-off between portability and performance").
  double pp_supported = 0.0;
  int platforms = 0;
};

/// Computes the PP table for one app/workload at a given schedule point,
/// using either efficiency definition.  `device_count` selects the
/// schedule point (must appear in the piecewise schedule).
std::vector<PortabilityRow> portability_table(App app, Workload& workload,
                                              int device_count,
                                              int size_multiplier,
                                              EfficiencyKind kind);

}  // namespace hemo::sim
