#pragma once
// DeviceEngine: the execution substrate beneath every programming-model
// dialect in hemo::hal.  It stands in for a GPU: it owns "device"
// allocations, executes data-parallel index ranges (optionally across host
// threads), and keeps byte/launch counters that the tests and the cluster
// simulator consume.
//
// All four dialects (cudax, hipx, syclx, kokkosx) lower onto this engine,
// mirroring how CUDA/HIP/SYCL/Kokkos all drive the same physical device in
// the paper's study.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace hemo::hal {

struct EngineCounters {
  std::int64_t allocations = 0;
  std::int64_t bytes_allocated = 0;
  std::int64_t bytes_h2d = 0;
  std::int64_t bytes_d2h = 0;
  std::int64_t bytes_d2d = 0;
  std::int64_t kernel_launches = 0;
  std::int64_t kernel_indices = 0;  // total work-items executed
};

class DeviceEngine {
 public:
  DeviceEngine() = default;
  DeviceEngine(const DeviceEngine&) = delete;
  DeviceEngine& operator=(const DeviceEngine&) = delete;
  ~DeviceEngine();

  /// Process-wide default engine used by the C-style dialect APIs
  /// (cudax/hipx) that, like their real counterparts, have an implicit
  /// current device.
  static DeviceEngine& instance();

  /// Allocates `bytes` of device memory; returns nullptr on failure
  /// (zero-byte requests yield a unique non-null pointer, as CUDA does).
  void* allocate(std::size_t bytes);
  /// Frees a pointer previously returned by allocate; returns false if the
  /// pointer is unknown (the dialects translate that into their own error
  /// idiom).
  bool deallocate(void* ptr);
  /// True if ptr was returned by allocate and not yet freed.
  bool owns(void* ptr) const;
  /// Size of the allocation at ptr, or 0 if unknown.
  std::size_t allocation_size(void* ptr) const;

  void copy_h2d(void* dst, const void* src, std::size_t bytes);
  void copy_d2h(void* dst, const void* src, std::size_t bytes);
  void copy_d2d(void* dst, const void* src, std::size_t bytes);

  /// Executes fn(i) for every i in [0, n).  With more than one worker
  /// thread the range is split into contiguous chunks; the kernel bodies
  /// used in HemoFlow write only to index i, so chunking is race-free.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// Number of worker threads used by parallel_for (default 1).
  void set_threads(int threads);
  int threads() const { return threads_; }

  const EngineCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = EngineCounters{}; }

  /// Number of live allocations (leak checks in tests).
  std::size_t live_allocations() const { return allocations_.size(); }

 private:
  std::unordered_map<void*, std::unique_ptr<std::byte[]>> allocations_;
  std::unordered_map<const void*, std::size_t> sizes_;
  EngineCounters counters_;
  int threads_ = 1;
};

}  // namespace hemo::hal
