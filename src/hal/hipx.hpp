#pragma once
// hipx: the mini-HIP dialect.  Exactly mirrors the cudax API surface with
// hipx-prefixed names — the property the paper highlights as what makes
// HIPify-perl's regex conversion possible (Section 7.2: cudaMallocManaged
// versus hipMallocManaged).  The implementation delegates to the same
// DeviceEngine; the *performance* distinction between the models is the
// business of hemo::sim, not of functional behaviour.

#include <cstddef>
#include <cstdint>

#include "hal/cudax.hpp"  // shared dim3x and the underlying engine hooks

enum hipxError_t {
  hipxSuccess = 0,
  hipxErrorInvalidValue = 1,
  hipxErrorMemoryAllocation = 2,
  hipxErrorInvalidDevicePointer = 3,
  hipxErrorInvalidConfiguration = 4,
};

enum hipxMemcpyKind {
  hipxMemcpyHostToDevice = 0,
  hipxMemcpyDeviceToHost = 1,
  hipxMemcpyDeviceToDevice = 2,
};

using hipxStream_t = std::uint64_t;

const char* hipxGetErrorString(hipxError_t err);

hipxError_t hipxMalloc(void** ptr, std::size_t bytes);
hipxError_t hipxMallocManaged(void** ptr, std::size_t bytes);
hipxError_t hipxFree(void* ptr);
hipxError_t hipxMemcpy(void* dst, const void* src, std::size_t bytes,
                       hipxMemcpyKind kind);
hipxError_t hipxMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                            hipxMemcpyKind kind, hipxStream_t stream);
hipxError_t hipxMemset(void* dst, int value, std::size_t bytes);
hipxError_t hipxMemcpyToSymbol(void* symbol, const void* src,
                               std::size_t bytes);
hipxError_t hipxMemPrefetchAsync(const void* ptr, std::size_t bytes,
                                 int device, hipxStream_t stream);
enum hipxFuncCache { hipxFuncCachePreferNone = 0, hipxFuncCachePreferL1 = 1 };
enum hipxLimit { hipxLimitMallocHeapSize = 0, hipxLimitStackSize = 1 };
hipxError_t hipxFuncSetCacheConfig(const void* func, hipxFuncCache config);
hipxError_t hipxDeviceSetLimit(hipxLimit limit, std::size_t value);
hipxError_t hipxStreamAttachMemAsync(hipxStream_t stream, void* ptr,
                                     std::size_t bytes);

hipxError_t hipxStreamCreate(hipxStream_t* stream);
hipxError_t hipxStreamDestroy(hipxStream_t stream);
hipxError_t hipxStreamSynchronize(hipxStream_t stream);
hipxError_t hipxDeviceSynchronize();
hipxError_t hipxGetLastError();

/// Launches `kernel(i)` over grid.x blocks of block.x threads, like
/// cudaxLaunchKernel.
template <typename Kernel>
hipxError_t hipxLaunchKernel(dim3x grid, dim3x block, Kernel kernel) {
  return static_cast<hipxError_t>(cudaxLaunchKernel(grid, block, kernel));
}
