#include "hal/syclx.hpp"

namespace hemo::hal::syclx {

queue& queue::memcpy(void* dst, const void* src, std::size_t bytes) {
  if (dst == nullptr || src == nullptr)
    throw exception("syclx: memcpy with null pointer");
  const bool dst_dev = engine_->owns(dst);
  const bool src_dev = engine_->owns(const_cast<void*>(src));
  if (dst_dev && src_dev) {
    engine_->copy_d2d(dst, src, bytes);
  } else if (dst_dev) {
    engine_->copy_h2d(dst, src, bytes);
  } else if (src_dev) {
    engine_->copy_d2h(dst, src, bytes);
  } else {
    throw exception("syclx: memcpy with no USM pointer involved");
  }
  return *this;
}

queue& queue::memset(void* dst, int value, std::size_t bytes) {
  if (dst == nullptr || !engine_->owns(dst))
    throw exception("syclx: memset on non-USM pointer");
  auto* p = static_cast<unsigned char*>(dst);
  for (std::size_t i = 0; i < bytes; ++i)
    p[i] = static_cast<unsigned char>(value);
  return *this;
}

void free(void* ptr, queue& q) {
  if (ptr == nullptr) return;
  if (!q.engine().deallocate(ptr))
    throw exception("syclx: free of unknown USM pointer");
}

}  // namespace hemo::hal::syclx
