#pragma once
// cudax: the mini-CUDA dialect.  A deliberately CUDA-shaped C/C++ API —
// error codes, dim3-style launch geometry, explicit and managed memory,
// streams, symbol copies — implemented over hemo::hal::DeviceEngine.
//
// Fidelity to the CUDA API surface matters here: the porting tools in
// hemo::port translate *this* dialect into hipx (regex, like HIPify-perl)
// and syclx (with warnings, like DPCT), so the names and call shapes follow
// the real API closely.

#include <cstddef>
#include <cstdint>

#include "hal/device.hpp"

// The cudax API is global-namespace and C-shaped, like CUDA itself.

enum cudaxError_t {
  cudaxSuccess = 0,
  cudaxErrorInvalidValue = 1,
  cudaxErrorMemoryAllocation = 2,
  cudaxErrorInvalidDevicePointer = 3,
  cudaxErrorInvalidConfiguration = 4,
};

enum cudaxMemcpyKind {
  cudaxMemcpyHostToDevice = 0,
  cudaxMemcpyDeviceToHost = 1,
  cudaxMemcpyDeviceToDevice = 2,
};

struct dim3x {
  unsigned int x = 1, y = 1, z = 1;
  constexpr dim3x() = default;
  constexpr dim3x(unsigned int x_, unsigned int y_ = 1, unsigned int z_ = 1)
      : x(x_), y(y_), z(z_) {}
};

using cudaxStream_t = std::uint64_t;

const char* cudaxGetErrorString(cudaxError_t err);

cudaxError_t cudaxMalloc(void** ptr, std::size_t bytes);
cudaxError_t cudaxMallocManaged(void** ptr, std::size_t bytes);
cudaxError_t cudaxFree(void* ptr);
cudaxError_t cudaxMemcpy(void* dst, const void* src, std::size_t bytes,
                         cudaxMemcpyKind kind);
cudaxError_t cudaxMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                              cudaxMemcpyKind kind, cudaxStream_t stream);
cudaxError_t cudaxMemset(void* dst, int value, std::size_t bytes);
/// Copies host data into a "symbol" (a device-resident constant block);
/// symbols are plain device allocations in this dialect.
cudaxError_t cudaxMemcpyToSymbol(void* symbol, const void* src,
                                 std::size_t bytes);
cudaxError_t cudaxMemPrefetchAsync(const void* ptr, std::size_t bytes,
                                   int device, cudaxStream_t stream);
/// Cache-configuration, limit and stream-attach controls: present for API
/// fidelity (legacy CUDA code calls them) but no-ops on the host engine.
/// These are the calls the mini-DPCT tool classifies as "unsupported
/// feature" — they have no DPC++ equivalent.
enum cudaxFuncCache { cudaxFuncCachePreferNone = 0, cudaxFuncCachePreferL1 = 1 };
enum cudaxLimit { cudaxLimitMallocHeapSize = 0, cudaxLimitStackSize = 1 };
cudaxError_t cudaxFuncSetCacheConfig(const void* func, cudaxFuncCache config);
cudaxError_t cudaxDeviceSetLimit(cudaxLimit limit, std::size_t value);
cudaxError_t cudaxStreamAttachMemAsync(cudaxStream_t stream, void* ptr,
                                       std::size_t bytes);

/// CUDA math-library intrinsic: sin(pi*x) with cos(pi*x) as a side
/// output.  Its DPC++ replacement is only functionally equivalent, not
/// bit-identical (Table 2's "functional equivalence" warning).
double sincospi(double x, double* cos_out);

cudaxError_t cudaxStreamCreate(cudaxStream_t* stream);
cudaxError_t cudaxStreamDestroy(cudaxStream_t stream);
cudaxError_t cudaxStreamSynchronize(cudaxStream_t stream);
cudaxError_t cudaxDeviceSynchronize();
cudaxError_t cudaxGetLastError();

namespace hemo::hal::cudax_detail {
cudaxError_t validate_launch(dim3x grid, dim3x block);
DeviceEngine& engine();
void set_last_error(cudaxError_t err);
}  // namespace hemo::hal::cudax_detail

/// Launches `kernel(i)` over a 1D grid of grid.x blocks of block.x threads,
/// i in [0, grid.x * block.x).  Kernels guard their tail as CUDA code does
/// (`if (i >= n) return;`).
template <typename Kernel>
cudaxError_t cudaxLaunchKernel(dim3x grid, dim3x block, Kernel kernel) {
  using namespace hemo::hal::cudax_detail;
  if (const cudaxError_t err = validate_launch(grid, block);
      err != cudaxSuccess) {
    set_last_error(err);
    return err;
  }
  const std::int64_t n = static_cast<std::int64_t>(grid.x) *
                         static_cast<std::int64_t>(block.x);
  engine().parallel_for(n, [&kernel](std::int64_t i) { kernel(i); });
  return cudaxSuccess;
}
