#include "hal/device.hpp"

#include <cstring>
#include <thread>
#include <vector>

#include "base/contracts.hpp"

namespace hemo::hal {

DeviceEngine::~DeviceEngine() = default;

DeviceEngine& DeviceEngine::instance() {
  static DeviceEngine engine;
  return engine;
}

void* DeviceEngine::allocate(std::size_t bytes) {
  const std::size_t n = bytes == 0 ? 1 : bytes;
  std::unique_ptr<std::byte[]> block;
  try {
    block = std::make_unique<std::byte[]>(n);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
  void* ptr = block.get();
  allocations_.emplace(ptr, std::move(block));
  sizes_.emplace(ptr, bytes);
  ++counters_.allocations;
  counters_.bytes_allocated += static_cast<std::int64_t>(bytes);
  return ptr;
}

bool DeviceEngine::deallocate(void* ptr) {
  auto it = allocations_.find(ptr);
  if (it == allocations_.end()) return false;
  allocations_.erase(it);
  sizes_.erase(ptr);
  return true;
}

bool DeviceEngine::owns(void* ptr) const {
  return allocations_.contains(ptr);
}

std::size_t DeviceEngine::allocation_size(void* ptr) const {
  auto it = sizes_.find(ptr);
  return it == sizes_.end() ? 0 : it->second;
}

void DeviceEngine::copy_h2d(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
  counters_.bytes_h2d += static_cast<std::int64_t>(bytes);
}

void DeviceEngine::copy_d2h(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
  counters_.bytes_d2h += static_cast<std::int64_t>(bytes);
}

void DeviceEngine::copy_d2d(void* dst, const void* src, std::size_t bytes) {
  std::memmove(dst, src, bytes);
  counters_.bytes_d2d += static_cast<std::int64_t>(bytes);
}

void DeviceEngine::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  ++counters_.kernel_launches;
  counters_.kernel_indices += n;
  if (n <= 0) return;

  if (threads_ <= 1 || n < 2 * threads_) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const int workers = threads_;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    const std::int64_t lo = n * t / workers;
    const std::int64_t hi = n * (t + 1) / workers;
    pool.emplace_back([&fn, lo, hi] {
      for (std::int64_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (std::thread& th : pool) th.join();
}

void DeviceEngine::set_threads(int threads) {
  HEMO_EXPECTS(threads >= 1);
  threads_ = threads;
}

}  // namespace hemo::hal
