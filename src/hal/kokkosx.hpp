#pragma once
// kokkosx: the mini-Kokkos dialect.  Reproduces the Kokkos constructs the
// paper's manual port relied on (Section 7.3): Views that manage
// platform-dependent device allocations, deep_copy for host-device
// transfer, parallel_for/parallel_reduce with range policies, per-backend
// memory spaces (CudaSpace, HIPSpace, Experimental::SYCLDeviceUSMSpace,
// OpenACC), parenthesis element access, data() for passing raw pointers
// through launch interfaces, and the constant-view initialization
// restriction (deep_copy cannot write a const view; one stages through a
// non-const view and assigns).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>

#include "base/contracts.hpp"
#include "hal/device.hpp"
#include "hal/model.hpp"

namespace hemo::hal::kokkosx {

// ---------------------------------------------------------------------------
// Memory spaces.  One tag type per backend, as in Kokkos; which one is the
// "default device space" follows the backend selected at initialize().
// ---------------------------------------------------------------------------

struct HostSpace {
  static constexpr bool is_host = true;
  static constexpr const char* name = "Host";
};
struct CudaSpace {
  static constexpr bool is_host = false;
  static constexpr const char* name = "CudaSpace";
};
struct HIPSpace {
  static constexpr bool is_host = false;
  static constexpr const char* name = "HIPSpace";
};
namespace Experimental {
struct SYCLDeviceUSMSpace {
  static constexpr bool is_host = false;
  static constexpr const char* name = "SYCLDeviceUSMSpace";
};
struct OpenACCSpace {
  static constexpr bool is_host = false;
  static constexpr const char* name = "OpenACCSpace";
};
}  // namespace Experimental

/// Runtime backend selection (real Kokkos fixes this at compile time via
/// CMake switches; a runtime switch lets one binary cover every backend,
/// which the benchmarks exploit).
void initialize(Backend backend);
void finalize();
bool is_initialized();
Backend current_backend();

/// Generic "default device memory space" used by views declared without an
/// explicit space; behaves like whichever backend is initialized.
struct DefaultDeviceSpace {
  static constexpr bool is_host = false;
  static constexpr const char* name = "DefaultDeviceSpace";
};

// ---------------------------------------------------------------------------
// Views.  DataType follows Kokkos spelling: View<double*> is a 1D view of
// double.  Only rank-1 views are modeled; HARVEY's sparse representation
// is flat, so rank-1 covers every kernel in this codebase.
// ---------------------------------------------------------------------------

namespace detail {

/// Shared allocation block; device blocks live in the DeviceEngine.
struct Allocation {
  void* data = nullptr;
  std::size_t bytes = 0;
  bool device = false;

  Allocation(std::size_t bytes_in, bool device_in);
  ~Allocation();
  Allocation(const Allocation&) = delete;
  Allocation& operator=(const Allocation&) = delete;
};

}  // namespace detail

template <typename DataType, typename Space = DefaultDeviceSpace>
class View {
  static_assert(std::is_pointer_v<DataType>,
                "kokkosx::View models rank-1 views: use View<T*>");

 public:
  using element_type = std::remove_pointer_t<DataType>;
  using value_type = std::remove_const_t<element_type>;
  using space = Space;
  using HostMirror = View<DataType, HostSpace>;

  View() = default;

  /// Allocating constructor (label + extent), as in Kokkos.
  View(std::string label, std::size_t extent)
      : label_(std::move(label)),
        extent_(extent),
        alloc_(std::make_shared<detail::Allocation>(extent * sizeof(value_type),
                                                    !Space::is_host)) {}

  /// Converting constructor: a const view aliasing a non-const view of the
  /// same space (the second half of the paper's constant-view workaround).
  template <typename OtherData,
            typename = std::enable_if_t<
                std::is_const_v<element_type> &&
                std::is_same_v<OtherData, value_type*>>>
  View(const View<OtherData, Space>& other)
      : label_(other.label()), extent_(other.extent(0)), alloc_(other.allocation()) {}

  std::size_t extent(int) const { return extent_; }
  std::size_t size() const { return extent_; }
  const std::string& label() const { return label_; }
  bool is_allocated() const { return alloc_ != nullptr; }

  /// Kokkos element access uses parentheses, not brackets (Section 7.3).
  element_type& operator()(std::size_t i) const {
    return data()[i];
  }

  element_type* data() const {
    return alloc_ ? static_cast<element_type*>(alloc_->data) : nullptr;
  }

  std::shared_ptr<detail::Allocation> allocation() const { return alloc_; }

 private:
  std::string label_;
  std::size_t extent_ = 0;
  std::shared_ptr<detail::Allocation> alloc_;
};

/// deep_copy between views: the only sanctioned host-device transfer in the
/// Kokkos model.  Writing requires a non-const destination element type, so
/// a `View<const T*>` destination fails to compile — exactly the restriction
/// that forces the stage-through-non-const initialization idiom.
template <typename DstData, typename DstSpace, typename SrcData,
          typename SrcSpace>
void deep_copy(const View<DstData, DstSpace>& dst,
               const View<SrcData, SrcSpace>& src) {
  static_assert(!std::is_const_v<std::remove_pointer_t<DstData>>,
                "kokkosx::deep_copy cannot write a view of const elements; "
                "stage through a non-const view and assign");
  HEMO_EXPECTS(dst.extent(0) == src.extent(0));
  const std::size_t bytes =
      dst.extent(0) * sizeof(std::remove_pointer_t<DstData>);
  auto& eng = DeviceEngine::instance();
  const bool dst_dev = !DstSpace::is_host;
  const bool src_dev = !SrcSpace::is_host;
  if (dst_dev && src_dev)
    eng.copy_d2d(dst.data(), src.data(), bytes);
  else if (dst_dev)
    eng.copy_h2d(dst.data(), src.data(), bytes);
  else if (src_dev)
    eng.copy_d2h(dst.data(), src.data(), bytes);
  else
    std::memcpy(dst.data(), src.data(), bytes);
}

/// Fill a view with one value.
template <typename Data, typename Space>
void deep_copy(const View<Data, Space>& dst,
               std::remove_const_t<std::remove_pointer_t<Data>> value) {
  static_assert(!std::is_const_v<std::remove_pointer_t<Data>>);
  auto* p = dst.data();
  for (std::size_t i = 0; i < dst.extent(0); ++i) p[i] = value;
}

/// Host mirror of a device view (allocates; device data is not copied until
/// deep_copy, matching Kokkos create_mirror_view semantics for non-host
/// views).
template <typename Data, typename Space>
typename View<Data, Space>::HostMirror create_mirror_view(
    const View<Data, Space>& v) {
  using Mirror = typename View<Data, Space>::HostMirror;
  return Mirror(v.label() + "_mirror", v.extent(0));
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

class RangePolicy {
 public:
  RangePolicy(std::int64_t begin, std::int64_t end) : begin_(begin), end_(end) {
    HEMO_EXPECTS(begin <= end);
  }
  std::int64_t begin() const { return begin_; }
  std::int64_t end() const { return end_; }

 private:
  std::int64_t begin_;
  std::int64_t end_;
};

template <typename Functor>
void parallel_for(const std::string& /*label*/, RangePolicy policy,
                  Functor functor) {
  HEMO_EXPECTS(is_initialized());
  DeviceEngine::instance().parallel_for(
      policy.end() - policy.begin(),
      [&functor, b = policy.begin()](std::int64_t i) { functor(b + i); });
}

template <typename Functor>
void parallel_for(RangePolicy policy, Functor functor) {
  parallel_for(std::string{}, policy, functor);
}

/// Sum reduction, the only reducer HemoFlow needs (mass/momentum totals).
template <typename Functor>
void parallel_reduce(const std::string& /*label*/, RangePolicy policy,
                     Functor functor, double& result) {
  HEMO_EXPECTS(is_initialized());
  // Chunk-local partials would be needed for a threaded engine; reduction
  // runs sequentially for bit-reproducible results across backends.
  double sum = 0.0;
  for (std::int64_t i = policy.begin(); i < policy.end(); ++i)
    functor(i, sum);
  result = sum;
}

template <typename Functor>
void parallel_reduce(RangePolicy policy, Functor functor, double& result) {
  parallel_reduce(std::string{}, policy, functor, result);
}

inline void fence() {}

}  // namespace hemo::hal::kokkosx
