#include "hal/hipx.hpp"

namespace {

hipxError_t wrap(cudaxError_t err) { return static_cast<hipxError_t>(err); }

}  // namespace

const char* hipxGetErrorString(hipxError_t err) {
  return cudaxGetErrorString(static_cast<cudaxError_t>(err));
}

hipxError_t hipxMalloc(void** ptr, std::size_t bytes) {
  return wrap(cudaxMalloc(ptr, bytes));
}

hipxError_t hipxMallocManaged(void** ptr, std::size_t bytes) {
  return wrap(cudaxMallocManaged(ptr, bytes));
}

hipxError_t hipxFree(void* ptr) { return wrap(cudaxFree(ptr)); }

hipxError_t hipxMemcpy(void* dst, const void* src, std::size_t bytes,
                       hipxMemcpyKind kind) {
  return wrap(cudaxMemcpy(dst, src, bytes, static_cast<cudaxMemcpyKind>(kind)));
}

hipxError_t hipxMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                            hipxMemcpyKind kind, hipxStream_t stream) {
  return wrap(cudaxMemcpyAsync(dst, src, bytes,
                               static_cast<cudaxMemcpyKind>(kind), stream));
}

hipxError_t hipxMemset(void* dst, int value, std::size_t bytes) {
  return wrap(cudaxMemset(dst, value, bytes));
}

hipxError_t hipxMemcpyToSymbol(void* symbol, const void* src,
                               std::size_t bytes) {
  return wrap(cudaxMemcpyToSymbol(symbol, src, bytes));
}

hipxError_t hipxMemPrefetchAsync(const void* ptr, std::size_t bytes,
                                 int device, hipxStream_t stream) {
  return wrap(cudaxMemPrefetchAsync(ptr, bytes, device, stream));
}

hipxError_t hipxFuncSetCacheConfig(const void* func, hipxFuncCache config) {
  return wrap(
      cudaxFuncSetCacheConfig(func, static_cast<cudaxFuncCache>(config)));
}

hipxError_t hipxDeviceSetLimit(hipxLimit limit, std::size_t value) {
  return wrap(cudaxDeviceSetLimit(static_cast<cudaxLimit>(limit), value));
}

hipxError_t hipxStreamAttachMemAsync(hipxStream_t stream, void* ptr,
                                     std::size_t bytes) {
  return wrap(cudaxStreamAttachMemAsync(stream, ptr, bytes));
}

hipxError_t hipxStreamCreate(hipxStream_t* stream) {
  return wrap(cudaxStreamCreate(stream));
}

hipxError_t hipxStreamDestroy(hipxStream_t stream) {
  return wrap(cudaxStreamDestroy(stream));
}

hipxError_t hipxStreamSynchronize(hipxStream_t stream) {
  return wrap(cudaxStreamSynchronize(stream));
}

hipxError_t hipxDeviceSynchronize() { return wrap(cudaxDeviceSynchronize()); }

hipxError_t hipxGetLastError() { return wrap(cudaxGetLastError()); }
