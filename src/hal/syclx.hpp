#pragma once
// syclx: the mini-SYCL dialect.  Models the SYCL constructs the paper
// describes (Section 5.2): queues as the concurrency mechanism, kernels as
// lambdas over ranges/nd_ranges, unified shared memory (USM) alongside
// buffer/accessor memory abstractions, and exceptions — not error codes —
// for failure reporting.  Executes synchronously on the DeviceEngine.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "hal/device.hpp"

namespace hemo::hal::syclx {

/// SYCL reports errors by exception (the root of most DPCT "error
/// handling" warnings when porting from CUDA's error codes).
class exception : public std::runtime_error {
 public:
  explicit exception(const std::string& what) : std::runtime_error(what) {}
};

template <int Dims = 1>
class range;

template <>
class range<1> {
 public:
  explicit constexpr range(std::size_t n) : n_(n) {}
  constexpr std::size_t size() const { return n_; }
  constexpr std::size_t get(int) const { return n_; }

 private:
  std::size_t n_;
};

template <int Dims = 1>
class id;

template <>
class id<1> {
 public:
  explicit constexpr id(std::size_t v) : v_(v) {}
  constexpr operator std::size_t() const { return v_; }
  constexpr std::size_t get(int) const { return v_; }

 private:
  std::size_t v_;
};

class nd_range {
 public:
  nd_range(range<1> global, range<1> local) : global_(global), local_(local) {}
  range<1> get_global_range() const { return global_; }
  range<1> get_local_range() const { return local_; }

 private:
  range<1> global_;
  range<1> local_;
};

class nd_item {
 public:
  nd_item(std::size_t global, std::size_t local, std::size_t group)
      : global_(global), local_(local), group_(group) {}
  std::size_t get_global_id(int) const { return global_; }
  std::size_t get_local_id(int) const { return local_; }
  std::size_t get_group(int) const { return group_; }

 private:
  std::size_t global_, local_, group_;
};

/// Command-group handler: collects exactly one parallel_for per submit.
class handler {
 public:
  template <typename F>
  void parallel_for(range<1> r, F f) {
    work_ = [r, f](DeviceEngine& eng) {
      eng.parallel_for(static_cast<std::int64_t>(r.size()),
                       [&f](std::int64_t i) {
                         f(id<1>(static_cast<std::size_t>(i)));
                       });
    };
  }

  template <typename F>
  void parallel_for(nd_range r, F f) {
    const std::size_t global = r.get_global_range().size();
    const std::size_t local = r.get_local_range().size();
    if (local == 0 || local > 1024 || global % local != 0) {
      // SYCL requires the local range to divide the global range and fit
      // the device; DPCT's "kernel invocation" warnings exist because
      // auto-generated work-group sizes can violate this.
      throw exception("syclx: invalid nd_range work-group size");
    }
    work_ = [global, local, f](DeviceEngine& eng) {
      eng.parallel_for(static_cast<std::int64_t>(global),
                       [&f, local](std::int64_t i) {
                         const auto gi = static_cast<std::size_t>(i);
                         f(nd_item(gi, gi % local, gi / local));
                       });
    };
  }

 private:
  friend class queue;
  std::function<void(DeviceEngine&)> work_;
};

class queue {
 public:
  queue() : engine_(&DeviceEngine::instance()) {}
  explicit queue(DeviceEngine& engine) : engine_(&engine) {}

  /// Submits a command group; execution is synchronous on this engine.
  template <typename CommandGroup>
  queue& submit(CommandGroup cgf) {
    handler h;
    cgf(h);
    if (h.work_) h.work_(*engine_);
    return *this;
  }

  /// Shortcut form, as in SYCL 2020.
  template <typename F>
  queue& parallel_for(range<1> r, F f) {
    return submit([&](handler& h) { h.parallel_for(r, f); });
  }

  queue& memcpy(void* dst, const void* src, std::size_t bytes);
  queue& memset(void* dst, int value, std::size_t bytes);
  void wait() {}
  void wait_and_throw() {}

  DeviceEngine& engine() { return *engine_; }

 private:
  DeviceEngine* engine_;
};

/// USM device allocation of `count` elements of T.
template <typename T>
T* malloc_device(std::size_t count, queue& q) {
  void* p = q.engine().allocate(count * sizeof(T));
  if (p == nullptr) throw exception("syclx: device allocation failed");
  return static_cast<T*>(p);
}

/// USM shared allocation: identical on the host engine, as with cudax
/// managed memory.
template <typename T>
T* malloc_shared(std::size_t count, queue& q) {
  return malloc_device<T>(count, q);
}

void free(void* ptr, queue& q);

enum class access_mode { read, write, read_write };

template <typename T>
class accessor {
 public:
  accessor(T* data, std::size_t size) : data_(data), size_(size) {}
  T& operator[](std::size_t i) const { return data_[i]; }
  T* get_pointer() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  T* data_;
  std::size_t size_;
};

/// Buffer: an abstract view of memory accessed through accessors.  With a
/// host pointer the construction copies in and destruction writes back,
/// mirroring SYCL's buffer lifetime semantics.
template <typename T>
class buffer {
 public:
  buffer(T* host_data, range<1> r)
      : queue_(), host_(host_data), count_(r.size()) {
    device_ = malloc_device<T>(count_, queue_);
    queue_.engine().copy_h2d(device_, host_, count_ * sizeof(T));
  }

  explicit buffer(range<1> r) : queue_(), host_(nullptr), count_(r.size()) {
    device_ = malloc_device<T>(count_, queue_);
  }

  buffer(const buffer&) = delete;
  buffer& operator=(const buffer&) = delete;

  ~buffer() {
    if (host_ != nullptr && written_)
      queue_.engine().copy_d2h(host_, device_, count_ * sizeof(T));
    queue_.engine().deallocate(device_);
  }

  accessor<T> get_access(handler&, access_mode mode = access_mode::read_write) {
    if (mode != access_mode::read) written_ = true;
    return accessor<T>(device_, count_);
  }

  /// Host-side access outside a command group (blocking in real SYCL).
  accessor<T> get_host_access() { return accessor<T>(device_, count_); }

  std::size_t size() const { return count_; }

 private:
  queue queue_;
  T* host_;
  T* device_;
  std::size_t count_;
  bool written_ = false;
};

}  // namespace hemo::hal::syclx
