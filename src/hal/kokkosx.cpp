#include "hal/kokkosx.hpp"

namespace hemo::hal::kokkosx {

namespace {
bool g_initialized = false;
Backend g_backend = Backend::kCuda;
}  // namespace

void initialize(Backend backend) {
  HEMO_EXPECTS(!g_initialized);
  g_initialized = true;
  g_backend = backend;
}

void finalize() {
  HEMO_EXPECTS(g_initialized);
  g_initialized = false;
}

bool is_initialized() { return g_initialized; }

Backend current_backend() {
  HEMO_EXPECTS(g_initialized);
  return g_backend;
}

namespace detail {

Allocation::Allocation(std::size_t bytes_in, bool device_in)
    : bytes(bytes_in), device(device_in) {
  if (device) {
    data = DeviceEngine::instance().allocate(bytes);
    HEMO_ENSURES(data != nullptr);
  } else {
    data = ::operator new(bytes == 0 ? 1 : bytes);
  }
}

Allocation::~Allocation() {
  if (device) {
    DeviceEngine::instance().deallocate(data);
  } else {
    ::operator delete(data);
  }
}

}  // namespace detail

}  // namespace hemo::hal::kokkosx
