#pragma once
// Taxonomy of the programming models evaluated in the paper (Section 5):
// the three single-model implementations (CUDA, HIP, SYCL) and Kokkos with
// its CUDA / HIP / SYCL / OpenACC backends.

#include <string_view>

namespace hemo::hal {

enum class Model {
  kCuda,
  kHip,
  kSycl,
  kKokkosCuda,
  kKokkosHip,
  kKokkosSycl,
  kKokkosOpenAcc,
};

/// The compiler/runtime backend a model ultimately executes through.
enum class Backend { kCuda, kHip, kSycl, kOpenAcc };

constexpr bool is_kokkos(Model m) {
  return m == Model::kKokkosCuda || m == Model::kKokkosHip ||
         m == Model::kKokkosSycl || m == Model::kKokkosOpenAcc;
}

constexpr Backend backend_of(Model m) {
  switch (m) {
    case Model::kCuda:
    case Model::kKokkosCuda:
      return Backend::kCuda;
    case Model::kHip:
    case Model::kKokkosHip:
      return Backend::kHip;
    case Model::kSycl:
    case Model::kKokkosSycl:
      return Backend::kSycl;
    case Model::kKokkosOpenAcc:
      return Backend::kOpenAcc;
  }
  return Backend::kCuda;  // unreachable
}

constexpr std::string_view name_of(Model m) {
  switch (m) {
    case Model::kCuda: return "CUDA";
    case Model::kHip: return "HIP";
    case Model::kSycl: return "SYCL";
    case Model::kKokkosCuda: return "Kokkos-CUDA";
    case Model::kKokkosHip: return "Kokkos-HIP";
    case Model::kKokkosSycl: return "Kokkos-SYCL";
    case Model::kKokkosOpenAcc: return "Kokkos-OpenACC";
  }
  return "?";
}

inline constexpr Model kAllModels[] = {
    Model::kCuda,       Model::kHip,        Model::kSycl,
    Model::kKokkosCuda, Model::kKokkosHip,  Model::kKokkosSycl,
    Model::kKokkosOpenAcc,
};

}  // namespace hemo::hal
