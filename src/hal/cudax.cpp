#include "hal/cudax.hpp"

#include <atomic>

#include "hal/device.hpp"

namespace {

std::atomic<cudaxError_t> g_last_error{cudaxSuccess};
std::atomic<std::uint64_t> g_next_stream{1};

hemo::hal::DeviceEngine& eng() {
  return hemo::hal::DeviceEngine::instance();
}

cudaxError_t fail(cudaxError_t err) {
  g_last_error.store(err);
  return err;
}

}  // namespace

namespace hemo::hal::cudax_detail {

cudaxError_t validate_launch(dim3x grid, dim3x block) {
  if (grid.x == 0 || block.x == 0 || grid.y != 1 || grid.z != 1 ||
      block.y != 1 || block.z != 1) {
    // This dialect only models 1D launch geometry; HARVEY's kernels are
    // flattened to 1D over the sparse fluid-point list anyway.
    return cudaxErrorInvalidConfiguration;
  }
  if (block.x > 1024) return cudaxErrorInvalidConfiguration;
  return cudaxSuccess;
}

DeviceEngine& engine() { return eng(); }

void set_last_error(cudaxError_t err) { g_last_error.store(err); }

}  // namespace hemo::hal::cudax_detail

const char* cudaxGetErrorString(cudaxError_t err) {
  switch (err) {
    case cudaxSuccess: return "no error";
    case cudaxErrorInvalidValue: return "invalid argument";
    case cudaxErrorMemoryAllocation: return "out of memory";
    case cudaxErrorInvalidDevicePointer: return "invalid device pointer";
    case cudaxErrorInvalidConfiguration: return "invalid configuration";
  }
  return "unknown error";
}

cudaxError_t cudaxMalloc(void** ptr, std::size_t bytes) {
  if (ptr == nullptr) return fail(cudaxErrorInvalidValue);
  void* p = eng().allocate(bytes);
  if (p == nullptr) return fail(cudaxErrorMemoryAllocation);
  *ptr = p;
  return cudaxSuccess;
}

cudaxError_t cudaxMallocManaged(void** ptr, std::size_t bytes) {
  // Managed memory behaves identically on the host engine; the distinction
  // matters to the porting tools and the performance profiles, not to
  // functional behaviour.
  return cudaxMalloc(ptr, bytes);
}

cudaxError_t cudaxFree(void* ptr) {
  if (ptr == nullptr) return cudaxSuccess;  // CUDA allows freeing nullptr
  if (!eng().deallocate(ptr)) return fail(cudaxErrorInvalidDevicePointer);
  return cudaxSuccess;
}

cudaxError_t cudaxMemcpy(void* dst, const void* src, std::size_t bytes,
                         cudaxMemcpyKind kind) {
  if (dst == nullptr || src == nullptr) return fail(cudaxErrorInvalidValue);
  switch (kind) {
    case cudaxMemcpyHostToDevice:
      if (!eng().owns(dst)) return fail(cudaxErrorInvalidDevicePointer);
      eng().copy_h2d(dst, src, bytes);
      return cudaxSuccess;
    case cudaxMemcpyDeviceToHost:
      if (!eng().owns(const_cast<void*>(src)))
        return fail(cudaxErrorInvalidDevicePointer);
      eng().copy_d2h(dst, src, bytes);
      return cudaxSuccess;
    case cudaxMemcpyDeviceToDevice:
      if (!eng().owns(dst) || !eng().owns(const_cast<void*>(src)))
        return fail(cudaxErrorInvalidDevicePointer);
      eng().copy_d2d(dst, src, bytes);
      return cudaxSuccess;
  }
  return fail(cudaxErrorInvalidValue);
}

cudaxError_t cudaxMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                              cudaxMemcpyKind kind, cudaxStream_t /*stream*/) {
  // The engine is synchronous; async degenerates to a blocking copy.
  return cudaxMemcpy(dst, src, bytes, kind);
}

cudaxError_t cudaxMemset(void* dst, int value, std::size_t bytes) {
  if (dst == nullptr) return fail(cudaxErrorInvalidValue);
  if (!eng().owns(dst)) return fail(cudaxErrorInvalidDevicePointer);
  auto* p = static_cast<unsigned char*>(dst);
  for (std::size_t i = 0; i < bytes; ++i)
    p[i] = static_cast<unsigned char>(value);
  return cudaxSuccess;
}

cudaxError_t cudaxMemcpyToSymbol(void* symbol, const void* src,
                                 std::size_t bytes) {
  return cudaxMemcpy(symbol, src, bytes, cudaxMemcpyHostToDevice);
}

cudaxError_t cudaxMemPrefetchAsync(const void* ptr, std::size_t /*bytes*/,
                                   int /*device*/, cudaxStream_t /*stream*/) {
  if (ptr == nullptr) return fail(cudaxErrorInvalidValue);
  return cudaxSuccess;  // a hint; nothing to do on the host engine
}

cudaxError_t cudaxFuncSetCacheConfig(const void* func,
                                     cudaxFuncCache /*config*/) {
  if (func == nullptr) return fail(cudaxErrorInvalidValue);
  return cudaxSuccess;
}

cudaxError_t cudaxDeviceSetLimit(cudaxLimit /*limit*/, std::size_t /*value*/) {
  return cudaxSuccess;
}

cudaxError_t cudaxStreamAttachMemAsync(cudaxStream_t /*stream*/, void* ptr,
                                       std::size_t /*bytes*/) {
  if (ptr == nullptr) return fail(cudaxErrorInvalidValue);
  return cudaxSuccess;
}

double sincospi(double x, double* cos_out) {
  // Emulates the fused CUDA intrinsic: exact at half-integer multiples,
  // where sin(pi*x)/cos(pi*x) computed via the standard library are not.
  constexpr double kPi = 3.14159265358979323846;
  const double r = x - static_cast<long long>(x);
  if (r == 0.0) {
    const bool even = static_cast<long long>(x) % 2 == 0;
    *cos_out = even ? 1.0 : -1.0;
    return 0.0;
  }
  *cos_out = __builtin_cos(kPi * x);
  return __builtin_sin(kPi * x);
}

cudaxError_t cudaxStreamCreate(cudaxStream_t* stream) {
  if (stream == nullptr) return fail(cudaxErrorInvalidValue);
  *stream = g_next_stream.fetch_add(1);
  return cudaxSuccess;
}

cudaxError_t cudaxStreamDestroy(cudaxStream_t stream) {
  if (stream == 0) return fail(cudaxErrorInvalidValue);
  return cudaxSuccess;
}

cudaxError_t cudaxStreamSynchronize(cudaxStream_t /*stream*/) {
  return cudaxSuccess;
}

cudaxError_t cudaxDeviceSynchronize() { return cudaxSuccess; }

cudaxError_t cudaxGetLastError() {
  return g_last_error.exchange(cudaxSuccess);
}
