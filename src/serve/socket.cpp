#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "base/contracts.hpp"
#include "serve/protocol.hpp"

namespace hemo::serve {

namespace {

// MSG_NOSIGNAL: a client that vanished mid-stream must not SIGPIPE the
// server; the failed write is simply dropped.
void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

void SocketServer::Connection::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu);
  if (fd < 0) return;  // connection already closed: drop the event
  write_all(fd, line + "\n");
}

void SocketServer::Connection::shutdown_fd() {
  std::lock_guard<std::mutex> lock(mu);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
}

void SocketServer::Connection::close_fd() {
  std::lock_guard<std::mutex> lock(mu);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  fd = -1;
}

SocketServer::SocketServer(Server& server, SocketOptions options)
    : server_(server) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HEMO_EXPECTS(listen_fd_ >= 0);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  HEMO_EXPECTS(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0 &&
               "hemo-serve: cannot bind the requested port");
  HEMO_EXPECTS(::listen(listen_fd_, 16) == 0);

  socklen_t len = sizeof(addr);
  HEMO_EXPECTS(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen socket shut down: stop() is running
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        connection->close_fd();
        return;
      }
      connections_.push_back(connection);
      threads_.emplace_back(
          [this, connection] { serve_connection(connection); });
    }
  }
}

void SocketServer::serve_connection(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(connection->mu);
      fd = connection->fd;
    }
    if (fd < 0) break;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or woken by stop()'s shutdown
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(line, connection);
    }
  }
  // The reader owns the descriptor's release: stop() only shuts the
  // socket down, so the fd number cannot be recycled by a new accept
  // while this thread could still pass it to recv().
  connection->close_fd();
}

void SocketServer::handle_line(const std::string& line,
                               const std::shared_ptr<Connection>& connection) {
  const Server::EventSink sink = [connection](const Event& event) {
    connection->write_line(event_json(event));
  };

  Request request;
  std::string error;
  if (!parse_request(line, &request, &error)) {
    server_.reject_bad_request(error, sink);
    return;
  }

  switch (request.op) {
    case Op::kSubmit: {
      std::vector<rt::SeriesSpec> series;
      if (!build_series(request, &series, &error)) {
        server_.reject_bad_request(error, sink);
        return;
      }
      Server::SubmitOptions options;
      if (request.deadline_ms)
        options.deadline = std::chrono::milliseconds(
            static_cast<std::chrono::milliseconds::rep>(*request.deadline_ms));
      server_.submit(request.tenant, request.name, series, sink, options);
      return;
    }
    case Op::kTenant: {
      TenantConfig config = server_.options().tenant_defaults;
      if (request.weight) config.weight = *request.weight;
      if (request.budget) config.budget = *request.budget;
      if (request.max_pending) config.max_pending_points = *request.max_pending;
      if (std::optional<std::string> bad =
              server_.configure_tenant(request.tenant, config)) {
        server_.reject_bad_request(*bad, sink);
        return;
      }
      connection->write_line("{\"event\": \"ack\", \"op\": \"tenant\"}");
      return;
    }
    case Op::kStats:
      connection->write_line(stats_json(server_.stats()));
      return;
    case Op::kShutdown: {
      server_.begin_shutdown();
      connection->write_line("{\"event\": \"ack\", \"op\": \"shutdown\"}");
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      cv_shutdown_.notify_all();
      return;
    }
  }
}

void SocketServer::wait_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_shutdown_.wait(lock, [this] { return shutdown_requested_; });
}

void SocketServer::request_shutdown() {
  server_.begin_shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_requested_ = true;
  cv_shutdown_.notify_all();
}

void SocketServer::stop() {
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    threads.swap(threads_);
    connections.swap(connections_);
  }
  // Wake the accept thread but keep the descriptor (and the member)
  // untouched until it has exited: closing or overwriting first would
  // race the accept() call still reading listen_fd_.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // shutdown, not close: each reader recv()s EOF, exits, and closes its
  // own fd — closing here could hand the number to a concurrent recv.
  for (const std::shared_ptr<Connection>& connection : connections)
    connection->shutdown_fd();
  for (std::thread& thread : threads) thread.join();
}

// ---------------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------------

SocketClient::SocketClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;  // a refused connection is the caller's to report, not abort
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketClient::send_line(const std::string& line) {
  write_all(fd_, line + "\n");
}

bool SocketClient::recv_line(std::string* line) {
  char chunk[4096];
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      *line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace hemo::serve
