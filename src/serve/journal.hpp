#pragma once
// Write-ahead journal of the hemo-durable serving layer: every externally
// visible serving decision — a tenant config, a request admission, a point
// completion, a terminal request status — is appended to an on-disk log
// BEFORE the corresponding event reaches a client, so a process crash can
// lose at most work the client was never told was accepted.
//
// Format: the io::Blob framing, append-oriented.
//   header:  u64 magic | u32 version
//   record:  u32 tag | u64 payload bytes | u32 crc32(payload) | payload
// Each record is written with one write(2) and (per the group-commit
// policy) fsync'd, so after SIGKILL the file is a valid prefix of the
// record stream plus at most one torn tail record — which the CRC framing
// detects and replay discards (serve/recovery.hpp).
//
// Payloads are binary: doubles are stored as raw IEEE-754 bit patterns,
// so a PointResult replayed from the journal formats to the byte-identical
// CSV/JSON the uninterrupted run produced — the property the crash harness
// (hemo_chaos --serve-crash) diffs for.
//
// Durability cost is configurable: group_commit = 1 fsyncs every record
// (strict WAL); larger windows batch records per fsync, trading the last
// few completions for throughput (bench_serve tables the difference).
// Losing a tail of *point* records is safe — points are pure functions of
// their key, so recovery simply re-executes them bit-identically.

#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "rt/campaign.hpp"
#include "serve/admission.hpp"

namespace hemo::serve {

/// Unrecoverable journal failure: the file cannot be opened, written, or
/// synced.  Torn/corrupt *records* are not errors — replay stops at them.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint64_t kJournalMagic = 0x4c41574f4d4548ull;  // "HEMOWAL"
// v2: point records carry an optional SDC sentinel report (flag + three
// i64 counters) after the shrink block.  v1 journals are not readable by
// v2 (the point payload grew), and recovery refuses newer-than-known
// versions — a version bump is a clean break, not a compatibility layer.
inline constexpr std::uint32_t kJournalVersion = 2;

enum class WalTag : std::uint32_t {
  kTenantConfig = 1,   // a configure_tenant that took effect
  kAdmitted = 2,       // a request passed admission (before its accepted event)
  kPoint = 3,          // one point's result delivered (before its point event)
  kDone = 4,           // a request reached a terminal status
  kCleanShutdown = 5,  // the server drained and exited on purpose
};

// ---------------------------------------------------------------------------
// Payload (de)serialization.
// ---------------------------------------------------------------------------

/// Append-only binary encoder for journal payloads (little-endian PODs,
/// length-prefixed strings, doubles as raw bit patterns).
class WalBuffer {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v.data(), v.size());
  }

  const std::vector<char>& bytes() const { return bytes_; }

 private:
  void raw(const void* data, std::size_t size) {
    const char* p = static_cast<const char*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  std::vector<char> bytes_;
};

/// Bounds-checked decoder over one record's payload; throws JournalError
/// on underflow (a CRC-valid record with a short payload is corruption).
class WalCursor {
 public:
  WalCursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() { return pod<std::uint8_t>(); }
  std::uint32_t u32() { return pod<std::uint32_t>(); }
  std::uint64_t u64() { return pod<std::uint64_t>(); }
  std::int32_t i32() { return pod<std::int32_t>(); }
  std::int64_t i64() { return pod<std::int64_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (size_ - pos_ < n) throw JournalError("journal payload underflow");
    std::string out(data_ + pos_, n);
    pos_ += n;
    return out;
  }
  bool at_end() const { return pos_ == size_; }

 private:
  template <class T>
  T pod() {
    if (size_ - pos_ < sizeof(T))
      throw JournalError("journal payload underflow");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// How a journaled request ended.
enum class WalDoneStatus : std::uint8_t {
  kCompleted = 0,         // every point delivered
  kDeadlineExceeded = 1,  // expired; undelivered points were cancelled
};

// Typed payload encoders/decoders, shared by the Server (append side) and
// the recovery replayer.  Decoders throw JournalError on malformed bytes.
void wal_encode_tenant(WalBuffer* out, const std::string& tenant,
                       const TenantConfig& config);
void wal_decode_tenant(WalCursor* in, std::string* tenant,
                       TenantConfig* config);

void wal_encode_admitted(WalBuffer* out, std::uint64_t request_id,
                         const std::string& tenant, const std::string& name,
                         const std::vector<rt::SeriesSpec>& series);
void wal_decode_admitted(WalCursor* in, std::uint64_t* request_id,
                         std::string* tenant, std::string* name,
                         std::vector<rt::SeriesSpec>* series);

void wal_encode_point(WalBuffer* out, std::uint64_t request_id,
                      std::uint32_t series_index, std::uint32_t point_index,
                      const rt::PointResult& result);
void wal_decode_point(WalCursor* in, std::uint64_t* request_id,
                      std::uint32_t* series_index, std::uint32_t* point_index,
                      rt::PointResult* result);

void wal_encode_done(WalBuffer* out, std::uint64_t request_id,
                     WalDoneStatus status, std::uint64_t failed);
void wal_decode_done(WalCursor* in, std::uint64_t* request_id,
                     WalDoneStatus* status, std::uint64_t* failed);

// ---------------------------------------------------------------------------
// The journal itself.
// ---------------------------------------------------------------------------

struct JournalOptions {
  std::string path;
  /// Records per fsync.  1 = fsync after every append (strict WAL);
  /// N > 1 batches: the sync happens on every Nth append and on sync().
  std::size_t group_commit = 1;
  /// Resume point: byte offset of the valid prefix found by replay
  /// (RecoveredState::valid_bytes).  The file is truncated here before
  /// appending, discarding a torn tail record.  Required (and > 0) when
  /// the file already has content: opening a non-empty journal without a
  /// replayed resume offset throws, so stale logs are never silently
  /// overwritten or blindly appended to.
  std::uint64_t resume_offset = 0;
  /// Crash-injection hook for the hemo_chaos --serve-crash harness: after
  /// the Nth record has been appended AND fsynced, the process _exit()s
  /// immediately — no destructors, no flushes, a faithful SIGKILL at a
  /// seeded journal offset.  0 = off.
  std::uint64_t crash_after_records = 0;
};

class Journal {
 public:
  /// Opens (creating or resuming) the journal file.  Throws JournalError
  /// when the file cannot be opened/truncated, when an existing file's
  /// header is foreign, or when a non-empty file is opened without a
  /// resume offset.
  explicit Journal(JournalOptions options);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record (single write(2)), fsyncing per the group-commit
  /// policy.  Thread-safe.  Throws JournalError on a failed write/sync —
  /// a full disk must surface, not silently drop durability.
  void append(WalTag tag, const WalBuffer& payload);

  /// Forces an fsync of everything appended so far.
  void sync();

  std::uint64_t appended() const;  // records appended this process
  std::uint64_t unsynced() const;  // appended since the last fsync
  // immutable after construction: journal options are fixed at open
  const std::string& path() const { return options_.path; }

 private:
  JournalOptions options_;
  int fd_ = -1;
  mutable std::mutex mu_;
  std::uint64_t appended_ = 0;
  std::uint64_t unsynced_ = 0;
};

}  // namespace hemo::serve
