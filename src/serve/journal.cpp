#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

#include "io/blob.hpp"

namespace hemo::serve {

namespace {

std::string errno_text() { return std::string(std::strerror(errno)); }

void wal_encode_series(WalBuffer* out, const rt::SeriesSpec& series) {
  out->i32(static_cast<std::int32_t>(series.system));
  out->i32(static_cast<std::int32_t>(series.model));
  out->i32(static_cast<std::int32_t>(series.app));
  out->i32(static_cast<std::int32_t>(series.workload));
}

rt::SeriesSpec wal_decode_series(WalCursor* in) {
  rt::SeriesSpec series;
  series.system = static_cast<sys::SystemId>(in->i32());
  series.model = static_cast<hal::Model>(in->i32());
  series.app = static_cast<sim::App>(in->i32());
  series.workload = static_cast<rt::WorkloadKind>(in->i32());
  return series;
}

void wal_encode_failure(WalBuffer* out, const rt::JobFailure& failure) {
  out->str(failure.job);
  out->i32(failure.attempts);
  out->u8(failure.timed_out ? 1 : 0);
  out->u8(failure.cancelled ? 1 : 0);
  out->str(failure.message);
}

rt::JobFailure wal_decode_failure(WalCursor* in) {
  rt::JobFailure failure;
  failure.job = in->str();
  failure.attempts = in->i32();
  failure.timed_out = in->u8() != 0;
  failure.cancelled = in->u8() != 0;
  failure.message = in->str();
  return failure;
}

void wal_encode_result(WalBuffer* out, const rt::PointResult& result) {
  out->i32(result.schedule.devices);
  out->i32(result.schedule.size_multiplier);
  out->i32(result.attempts);
  out->u8(result.failure.has_value() ? 1 : 0);
  if (result.failure) wal_encode_failure(out, *result.failure);
  out->i32(result.sim.devices);
  out->i32(result.sim.size_multiplier);
  out->f64(result.sim.total_points);
  out->f64(result.sim.iteration_s);
  out->f64(result.sim.mflups);
  out->f64(result.sim.worst_rank.streamcollide_s);
  out->f64(result.sim.worst_rank.comm_s);
  out->f64(result.sim.worst_rank.h2d_s);
  out->f64(result.sim.worst_rank.d2h_s);
  out->f64(result.prediction.t_streamcollide_s);
  out->f64(result.prediction.t_comm_s);
  out->f64(result.prediction.t_total_s);
  out->f64(result.prediction.mflups);
  out->f64(result.prediction.surface_points);
  out->i32(result.prediction.comm_events);
  out->u8(result.shrink.has_value() ? 1 : 0);
  if (result.shrink) {
    out->u32(static_cast<std::uint32_t>(result.shrink->failed_ranks.size()));
    for (Rank rank : result.shrink->failed_ranks)
      out->i32(static_cast<std::int32_t>(rank));
    out->i64(result.shrink->recovery_step);
    out->i32(result.shrink->survivor_count);
  }
  out->u8(result.sdc.has_value() ? 1 : 0);  // journal v2
  if (result.sdc) {
    out->i64(result.sdc->detected);
    out->i64(result.sdc->false_positives);
    out->i64(result.sdc->quarantines);
  }
}

rt::PointResult wal_decode_result(WalCursor* in) {
  rt::PointResult result;
  result.schedule.devices = in->i32();
  result.schedule.size_multiplier = in->i32();
  result.attempts = in->i32();
  if (in->u8() != 0) result.failure = wal_decode_failure(in);
  result.sim.devices = in->i32();
  result.sim.size_multiplier = in->i32();
  result.sim.total_points = in->f64();
  result.sim.iteration_s = in->f64();
  result.sim.mflups = in->f64();
  result.sim.worst_rank.streamcollide_s = in->f64();
  result.sim.worst_rank.comm_s = in->f64();
  result.sim.worst_rank.h2d_s = in->f64();
  result.sim.worst_rank.d2h_s = in->f64();
  result.prediction.t_streamcollide_s = in->f64();
  result.prediction.t_comm_s = in->f64();
  result.prediction.t_total_s = in->f64();
  result.prediction.mflups = in->f64();
  result.prediction.surface_points = in->f64();
  result.prediction.comm_events = in->i32();
  if (in->u8() != 0) {
    rt::ShrinkProvenance shrink;
    const std::uint32_t n_ranks = in->u32();
    shrink.failed_ranks.reserve(n_ranks);
    for (std::uint32_t i = 0; i < n_ranks; ++i)
      shrink.failed_ranks.push_back(static_cast<Rank>(in->i32()));
    shrink.recovery_step = in->i64();
    shrink.survivor_count = in->i32();
    result.shrink = std::move(shrink);
  }
  if (in->u8() != 0) {
    rt::SdcReport sdc;
    sdc.detected = in->i64();
    sdc.false_positives = in->i64();
    sdc.quarantines = in->i64();
    result.sdc = sdc;
  }
  return result;
}

}  // namespace

void wal_encode_tenant(WalBuffer* out, const std::string& tenant,
                       const TenantConfig& config) {
  out->str(tenant);
  out->f64(config.weight);
  out->f64(config.budget);
  out->i32(config.max_pending_points);
}

void wal_decode_tenant(WalCursor* in, std::string* tenant,
                       TenantConfig* config) {
  *tenant = in->str();
  config->weight = in->f64();
  config->budget = in->f64();
  config->max_pending_points = in->i32();
}

void wal_encode_admitted(WalBuffer* out, std::uint64_t request_id,
                         const std::string& tenant, const std::string& name,
                         const std::vector<rt::SeriesSpec>& series) {
  out->u64(request_id);
  out->str(tenant);
  out->str(name);
  out->u32(static_cast<std::uint32_t>(series.size()));
  for (const rt::SeriesSpec& s : series) wal_encode_series(out, s);
}

void wal_decode_admitted(WalCursor* in, std::uint64_t* request_id,
                         std::string* tenant, std::string* name,
                         std::vector<rt::SeriesSpec>* series) {
  *request_id = in->u64();
  *tenant = in->str();
  *name = in->str();
  const std::uint32_t n = in->u32();
  series->clear();
  series->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    series->push_back(wal_decode_series(in));
}

void wal_encode_point(WalBuffer* out, std::uint64_t request_id,
                      std::uint32_t series_index, std::uint32_t point_index,
                      const rt::PointResult& result) {
  out->u64(request_id);
  out->u32(series_index);
  out->u32(point_index);
  wal_encode_result(out, result);
}

void wal_decode_point(WalCursor* in, std::uint64_t* request_id,
                      std::uint32_t* series_index, std::uint32_t* point_index,
                      rt::PointResult* result) {
  *request_id = in->u64();
  *series_index = in->u32();
  *point_index = in->u32();
  *result = wal_decode_result(in);
}

void wal_encode_done(WalBuffer* out, std::uint64_t request_id,
                     WalDoneStatus status, std::uint64_t failed) {
  out->u64(request_id);
  out->u8(static_cast<std::uint8_t>(status));
  out->u64(failed);
}

void wal_decode_done(WalCursor* in, std::uint64_t* request_id,
                     WalDoneStatus* status, std::uint64_t* failed) {
  *request_id = in->u64();
  const std::uint8_t raw = in->u8();
  if (raw > static_cast<std::uint8_t>(WalDoneStatus::kDeadlineExceeded))
    throw JournalError("journal done record has unknown status " +
                       std::to_string(raw));
  *status = static_cast<WalDoneStatus>(raw);
  *failed = in->u64();
}

Journal::Journal(JournalOptions options) : options_(std::move(options)) {
  fd_ = ::open(options_.path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd_ < 0)
    throw JournalError("cannot open journal '" + options_.path +
                       "': " + errno_text());
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw JournalError("cannot stat journal '" + options_.path +
                       "': " + errno_text());
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size == 0) {
    // Fresh journal: write and sync the header before any record can land.
    WalBuffer header;
    header.u64(kJournalMagic);
    header.u32(kJournalVersion);
    const std::vector<char>& bytes = header.bytes();
    if (::write(fd_, bytes.data(), bytes.size()) !=
            static_cast<ssize_t>(bytes.size()) ||
        ::fsync(fd_) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw JournalError("cannot initialize journal '" + options_.path +
                         "': " + errno_text());
    }
    return;
  }
  if (options_.resume_offset == 0) {
    ::close(fd_);
    fd_ = -1;
    throw JournalError("journal '" + options_.path +
                       "' already has content; replay it first and resume "
                       "at RecoveredState::valid_bytes");
  }
  if (options_.resume_offset > size) {
    ::close(fd_);
    fd_ = -1;
    throw JournalError("journal '" + options_.path + "' resume offset " +
                       std::to_string(options_.resume_offset) +
                       " is past the end of the file");
  }
  // Drop the torn tail (if any) found by replay, then append after the
  // valid prefix.
  if (::ftruncate(fd_, static_cast<off_t>(options_.resume_offset)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0 || ::fsync(fd_) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw JournalError("cannot resume journal '" + options_.path +
                       "': " + errno_text());
  }
}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void Journal::append(WalTag tag, const WalBuffer& payload) {
  // Frame the whole record in one buffer so it reaches the kernel with a
  // single write(2): a crash leaves either the full record or a torn tail
  // the replayer's CRC check discards — never an interleaved mess.
  WalBuffer frame;
  frame.u32(static_cast<std::uint32_t>(tag));
  frame.u64(static_cast<std::uint64_t>(payload.bytes().size()));
  frame.u32(io::crc32(payload.bytes().data(), payload.bytes().size()));
  const std::vector<char>& body = payload.bytes();
  std::vector<char> record = frame.bytes();
  record.insert(record.end(), body.begin(), body.end());

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) throw JournalError("journal '" + options_.path + "' is closed");
  if (::write(fd_, record.data(), record.size()) !=
      static_cast<ssize_t>(record.size()))
    throw JournalError("write failed on journal '" + options_.path +
                       "': " + errno_text());
  ++appended_;
  ++unsynced_;
  if (options_.group_commit <= 1 || unsynced_ >= options_.group_commit) {
    if (::fsync(fd_) != 0)
      throw JournalError("fsync failed on journal '" + options_.path +
                         "': " + errno_text());
    unsynced_ = 0;
  }
  if (options_.crash_after_records > 0 &&
      appended_ >= options_.crash_after_records) {
    // Crash injection: die as abruptly as SIGKILL would, right after this
    // record became (or did not become, under group commit) durable.
    if (unsynced_ > 0) {
      // Group-commit mode: the harness still wants a deterministic durable
      // prefix, so force the pending records down before dying.
      ::fsync(fd_);
    }
    ::_exit(137);
  }
}

void Journal::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0)
    throw JournalError("fsync failed on journal '" + options_.path +
                       "': " + errno_text());
  unsynced_ = 0;
}

std::uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::uint64_t Journal::unsynced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unsynced_;
}

}  // namespace hemo::serve
