#include "serve/dispatch.hpp"

#include <algorithm>

#include "base/contracts.hpp"

namespace hemo::serve {

namespace {
// Floor on weights so a full ring pass always accumulates credit on some
// nonempty tenant (termination of pop()'s scan).
constexpr double kMinWeight = 0.01;
}  // namespace

void FairShareDispatcher::set_weight(const std::string& tenant,
                                     double weight) {
  tenant_of(tenant).weight = std::max(kMinWeight, weight);
}

void FairShareDispatcher::enqueue(PointTask task) {
  HEMO_EXPECTS(!task.tenant.empty());
  tenant_of(task.tenant).points.push_back(std::move(task));
  ++queued_;
}

bool FairShareDispatcher::pop(PointTask* out) {
  if (queued_ == 0) return false;
  // Bounded scan: each full ring pass adds >= kMinWeight of credit to the
  // first nonempty tenant it visits, so some tenant reaches credit >= 1
  // within ceil(1/kMinWeight) passes.
  for (;;) {
    TenantQueue& tenant = ring_[cursor_];
    if (tenant.points.empty()) {
      // No stockpiling: an empty tenant re-earns credit from zero when
      // its next burst arrives, instead of draining it all at once.
      tenant.credit = 0.0;
      cursor_ = (cursor_ + 1) % ring_.size();
      continue;
    }
    // Earn once per visit; a tenant mid-burst (credit still >= 1 from the
    // last visit) keeps spending before the ring moves on.
    if (tenant.credit < 1.0) tenant.credit += tenant.weight;
    if (tenant.credit >= 1.0) {
      tenant.credit -= 1.0;
      *out = std::move(tenant.points.front());
      tenant.points.pop_front();
      --queued_;
      ++dispatched_;
      if (tenant.points.empty()) {
        tenant.credit = 0.0;
        cursor_ = (cursor_ + 1) % ring_.size();
      } else if (tenant.credit < 1.0) {
        cursor_ = (cursor_ + 1) % ring_.size();  // burst spent
      }
      return true;
    }
    cursor_ = (cursor_ + 1) % ring_.size();  // weight < 1: keep earning
  }
}

std::size_t FairShareDispatcher::erase_request(
    std::uint64_t request_id, std::vector<PointTask>* removed) {
  std::size_t erased = 0;
  for (TenantQueue& tenant : ring_) {
    auto keep = tenant.points.begin();
    for (auto it = tenant.points.begin(); it != tenant.points.end(); ++it) {
      if (it->request_id == request_id) {
        if (removed) removed->push_back(std::move(*it));
        ++erased;
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    tenant.points.erase(keep, tenant.points.end());
    // An emptied queue forfeits its credit, same as pop()'s drain rule.
    if (tenant.points.empty()) tenant.credit = 0.0;
  }
  queued_ -= erased;
  return erased;
}

FairShareDispatcher::TenantQueue& FairShareDispatcher::tenant_of(
    const std::string& name) {
  for (TenantQueue& tenant : ring_)
    if (tenant.name == name) return tenant;
  ring_.push_back(TenantQueue{name, 1.0, 0.0, {}});
  return ring_.back();
}

}  // namespace hemo::serve
