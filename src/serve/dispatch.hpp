#pragma once
// Weighted fair-share dispatcher for the hemo-serve campaign service: a
// deficit-round-robin scheduler over per-tenant FIFO point queues, sitting
// between admission control and the shared rt::Executor.
//
// Why not just submit everything to the executor?  The executor drains
// its deques in submit order (modulo stealing), so a 10k-point bulk
// campaign submitted first would finish before an interactive tenant's
// 10 points even start.  The dispatcher instead holds the backlog in
// per-tenant queues and releases points into a bounded executor window,
// choosing tenants by weighted round robin — so an interactive tenant's
// completion time is bounded by the number of *tenants* ahead of each of
// its points, never by another tenant's backlog depth.
//
// Scheduling rule (deficit round robin, quantum = weight): the dispatcher
// cycles a stable tenant ring (first-enqueue order).  Visiting a tenant
// with queued work adds its weight to the tenant's credit; while the
// credit is >= 1 and work remains, points are popped (1 credit each)
// before the ring advances.  Equal weights therefore alternate strictly;
// weight 2 vs 1 yields A A B A A B.  A tenant's credit is cleared when
// its queue empties, so later bursts cannot cash in hoarded credit.
//
// The dispatcher is plain data guarded by its owner (the Server's one
// mutex); it does no locking of its own and is fully deterministic.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "rt/campaign.hpp"
#include "sys/hardware.hpp"

namespace hemo::serve {

/// One queued evaluation point of one admitted request.
struct PointTask {
  std::uint64_t request_id = 0;
  std::string tenant;
  std::size_t series_index = 0;
  std::size_t point_index = 0;
  rt::SeriesSpec series;
  sys::SchedulePoint schedule;
  std::string key;  // rt::point_key(series, schedule)
};

class FairShareDispatcher {
 public:
  /// Sets the weight used for a tenant's future scheduling decisions
  /// (default 1.0).  May be called before or after the tenant has work.
  void set_weight(const std::string& tenant, double weight);

  /// Appends a point to its tenant's FIFO queue.
  void enqueue(PointTask task);

  /// Pops the next point by weighted round robin.  False when empty.
  bool pop(PointTask* out);

  /// Removes every queued point of one request (deadline cancellation),
  /// appending the removed tasks to *removed (when non-null) so the
  /// caller can release their admission charges.  Returns the count.
  std::size_t erase_request(std::uint64_t request_id,
                            std::vector<PointTask>* removed = nullptr);

  std::size_t queued() const { return queued_; }
  bool empty() const { return queued_ == 0; }
  /// Points handed out so far; the dispatch sequence number of the next
  /// pop.  The fairness tests bound an interactive tenant's last point's
  /// sequence number independent of the bulk backlog.
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct TenantQueue {
    std::string name;
    double weight = 1.0;
    double credit = 0.0;
    std::deque<PointTask> points;
  };

  TenantQueue& tenant_of(const std::string& name);  // creates on first use

  std::vector<TenantQueue> ring_;  // stable first-enqueue order
  std::size_t cursor_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace hemo::serve
