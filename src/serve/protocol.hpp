#pragma once
// Wire protocol of the hemo-serve campaign service: line-delimited JSON.
// A client writes one JSON object per line; the server answers with one
// or more JSON event objects per line on the same connection.  The
// protocol is deliberately flat — every request is a single object of
// string/number/bool fields plus at most one array of strings — so the
// parser here covers exactly that grammar and rejects everything else.
//
// Requests:
//   {"op": "submit", "tenant": "alice", "name": "job1",
//    "figure": "fig7", "series": ["crusher:hip:harvey:aorta", ...],
//    "deadline_ms": 5000}
//   {"op": "tenant", "tenant": "alice", "weight": 2.0,
//    "budget": 50.0, "max_pending": 256}
//   {"op": "stats"}
//   {"op": "shutdown"}
//
// Responses (events):
//   {"event": "accepted", "request": 1, "tenant": "alice", "points": 12,
//    "cost": 1.5}
//   {"event": "rejected", "reason": "over_budget"|"queue_full"|
//    "bad_request"|"shutting_down", "detail": "..."}
//   {"event": "point", "request": 1, "series": 0, "point": 3, ...,
//    "coalesced": true|false}
//   {"event": "done", "request": 1, "points": 12, "failed": 0}
//   {"event": "ack", "op": "tenant"}
//   {"event": "stats", ...}
//
// The full field-by-field specification lives in DESIGN.md ("Serving
// tier").

#include <optional>
#include <string>
#include <vector>

#include "rt/campaign.hpp"

namespace hemo::serve {

enum class Op { kSubmit, kTenant, kStats, kShutdown };

/// One parsed request line.  Unknown fields are a parse error (catching
/// client typos like "weigth" beats silently ignoring them).
struct Request {
  Op op = Op::kSubmit;
  std::string tenant;
  std::string name;                  // submit: campaign name (optional)
  std::string figure;                // submit: figure matrix shorthand
  std::vector<std::string> series;   // submit: "system:model[:app[:workload]]"
  std::optional<double> weight;      // tenant
  std::optional<double> budget;      // tenant
  std::optional<int> max_pending;    // tenant
  /// submit: wall-clock budget in milliseconds; past it the request gets
  /// one deadline_exceeded event and its undelivered points are cancelled.
  std::optional<double> deadline_ms;
};

/// Parses one request line.  On failure returns false and sets *error to
/// a one-line description (which the server sends back verbatim in a
/// bad_request rejection).
bool parse_request(const std::string& line, Request* out, std::string* error);

/// Expands a submit request's figure + series strings into the series
/// list run_campaign would price.  Returns false (with *error set) on an
/// unknown figure or a malformed series string.
bool build_series(const Request& request, std::vector<rt::SeriesSpec>* out,
                  std::string* error);

/// Minimal JSON string escaping for the response writers.
std::string json_escape(const std::string& text);

}  // namespace hemo::serve
