#pragma once
// Journal replay for the hemo-durable serving layer: reads a write-ahead
// journal (serve/journal.hpp) back into the serving state it encoded —
// tenant configs in effect, every admitted request with its already-
// completed points, and whether the previous process shut down cleanly.
//
// Replay is crash-shaped by construction: it stops at the first torn or
// CRC-corrupt record (the at-most-one tail a SIGKILL can leave) and
// reports the byte offset of the valid prefix, which the resuming Journal
// truncates to before appending.  Records after a completed request's
// Done marker, duplicate point records, and points for unknown requests
// are tolerated and ignored — replay must never be the thing that keeps
// a server from coming back up.

#include <cstdint>
#include <string>
#include <vector>

#include "rt/campaign.hpp"
#include "serve/journal.hpp"

namespace hemo::serve {

/// One point the previous process completed and journaled: replaying it
/// delivers the stored result instead of re-executing the point.
struct RecoveredPoint {
  std::uint32_t series_index = 0;
  std::uint32_t point_index = 0;
  rt::PointResult result;
};

struct RecoveredRequest {
  std::uint64_t id = 0;
  std::string tenant;
  std::string name;
  std::vector<rt::SeriesSpec> series;
  std::vector<RecoveredPoint> completed;  // journal order, deduplicated
  bool done = false;
  WalDoneStatus status = WalDoneStatus::kCompleted;
  std::uint64_t failed = 0;  // failed-point count from the Done record
};

struct RecoveredState {
  /// Tenant configs in record order; a later record for the same tenant
  /// wins, matching the live configure_tenant semantics.
  std::vector<std::pair<std::string, TenantConfig>> tenants;
  /// Admitted requests in admission order (done ones included, so the
  /// caller can report them).
  std::vector<RecoveredRequest> requests;
  bool clean_shutdown = false;
  /// Byte offset of the valid record prefix — the Journal resume_offset.
  std::uint64_t valid_bytes = 0;
  std::uint64_t records = 0;
  /// Why replay stopped early (torn tail / corrupt record); empty when the
  /// whole file parsed.
  std::string truncated_reason;

  std::size_t unfinished_requests() const {
    std::size_t n = 0;
    for (const RecoveredRequest& r : requests)
      if (!r.done) ++n;
    return n;
  }
};

/// Replays the journal at `path`.  A missing file yields an empty state
/// (first boot); a file with a foreign header throws JournalError —
/// resuming against someone else's log is operator error, not a crash
/// artifact.  Torn/corrupt tails are absorbed into truncated_reason.
RecoveredState replay_journal(const std::string& path);

}  // namespace hemo::serve
