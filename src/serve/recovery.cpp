#include "serve/recovery.hpp"

#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "io/blob.hpp"

namespace hemo::serve {

namespace {

struct RawJournal {
  std::string bytes;
  bool exists = false;
};

RawJournal slurp(const std::string& path) {
  RawJournal raw;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return raw;  // missing file: empty state (first boot)
  raw.exists = true;
  raw.bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  return raw;
}

template <class T>
bool peek_pod(const std::string& bytes, std::size_t offset, T* out) {
  if (offset > bytes.size() || bytes.size() - offset < sizeof(T)) return false;
  std::memcpy(out, bytes.data() + offset, sizeof(T));
  return true;
}

}  // namespace

RecoveredState replay_journal(const std::string& path) {
  RecoveredState state;
  const RawJournal raw = slurp(path);
  if (!raw.exists) return state;

  constexpr std::size_t kHeaderBytes = sizeof(std::uint64_t) + sizeof(std::uint32_t);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  if (!peek_pod(raw.bytes, 0, &magic) || magic != kJournalMagic)
    throw JournalError("journal '" + path + "' has the wrong magic number");
  // Exact-version match: v2 grew the point payload (SDC report), so a v1
  // journal's point records would mis-decode rather than merely miss
  // fields.  Refusing loudly beats replaying garbage.
  if (!peek_pod(raw.bytes, sizeof magic, &version) ||
      version != kJournalVersion)
    throw JournalError("journal '" + path + "' has unsupported version " +
                       std::to_string(version));
  state.valid_bytes = kHeaderBytes;

  std::unordered_map<std::uint64_t, std::size_t> request_index;
  // (request_id << 32 | series << 16 | point) would overflow nothing here,
  // but a string key is unambiguous and this is a cold path.
  std::unordered_set<std::string> seen_points;

  std::size_t offset = kHeaderBytes;
  while (offset < raw.bytes.size()) {
    const std::size_t record_start = offset;
    std::uint32_t tag = 0;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
    if (!peek_pod(raw.bytes, offset, &tag) ||
        !peek_pod(raw.bytes, offset + sizeof tag, &bytes) ||
        !peek_pod(raw.bytes, offset + sizeof tag + sizeof bytes, &crc)) {
      state.truncated_reason = "torn record header at byte " +
                               std::to_string(record_start);
      break;
    }
    const std::size_t payload_at = offset + sizeof tag + sizeof bytes + sizeof crc;
    if (bytes > raw.bytes.size() - payload_at) {
      state.truncated_reason = "torn record payload at byte " +
                               std::to_string(record_start);
      break;
    }
    const char* payload = raw.bytes.data() + payload_at;
    if (io::crc32(payload, static_cast<std::size_t>(bytes)) != crc) {
      state.truncated_reason = "CRC mismatch at byte " +
                               std::to_string(record_start);
      break;
    }

    WalCursor cursor(payload, static_cast<std::size_t>(bytes));
    try {
      switch (static_cast<WalTag>(tag)) {
        case WalTag::kTenantConfig: {
          std::string tenant;
          TenantConfig config;
          wal_decode_tenant(&cursor, &tenant, &config);
          state.tenants.emplace_back(std::move(tenant), config);
          break;
        }
        case WalTag::kAdmitted: {
          RecoveredRequest request;
          wal_decode_admitted(&cursor, &request.id, &request.tenant,
                              &request.name, &request.series);
          if (request_index.count(request.id)) break;  // duplicate: ignore
          request_index[request.id] = state.requests.size();
          state.requests.push_back(std::move(request));
          break;
        }
        case WalTag::kPoint: {
          RecoveredPoint point;
          std::uint64_t request_id = 0;
          wal_decode_point(&cursor, &request_id, &point.series_index,
                           &point.point_index, &point.result);
          const auto it = request_index.find(request_id);
          if (it == request_index.end()) break;  // unknown request: ignore
          const std::string key = std::to_string(request_id) + "/" +
                                  std::to_string(point.series_index) + "/" +
                                  std::to_string(point.point_index);
          if (!seen_points.insert(key).second) break;  // duplicate: ignore
          state.requests[it->second].completed.push_back(std::move(point));
          break;
        }
        case WalTag::kDone: {
          std::uint64_t request_id = 0;
          WalDoneStatus status = WalDoneStatus::kCompleted;
          std::uint64_t failed = 0;
          wal_decode_done(&cursor, &request_id, &status, &failed);
          const auto it = request_index.find(request_id);
          if (it == request_index.end()) break;
          RecoveredRequest& request = state.requests[it->second];
          request.done = true;
          request.status = status;
          request.failed = failed;
          break;
        }
        case WalTag::kCleanShutdown:
          state.clean_shutdown = true;
          break;
        default:
          // Unknown tag from a newer same-major writer: skip the record
          // (it passed its CRC, so the framing is trustworthy).
          break;
      }
    } catch (const JournalError& e) {
      // CRC-valid but semantically malformed payload: stop here and let
      // the resume truncate it — the prefix before it is still good.
      state.truncated_reason = std::string(e.what()) + " at byte " +
                               std::to_string(record_start);
      break;
    }

    offset = payload_at + static_cast<std::size_t>(bytes);
    state.valid_bytes = offset;
    ++state.records;
  }

  return state;
}

}  // namespace hemo::serve
