#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace hemo::serve {

namespace {

/// Cursor over one request line.  The grammar is the flat subset the
/// protocol promises: an object of string keys with string, number, bool
/// or array-of-string values.
struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  bool fail(const std::string& message) {
    if (error.empty())
      error = message + " at byte " + std::to_string(pos);
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"')
      return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return fail("unterminated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      }
      *out += c;
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const char* begin = text.c_str() + pos;
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    if (end == begin) return fail("expected number");
    // strtod accepts "nan"/"inf" spellings and overflows to infinity;
    // none of those is a JSON number, and letting one through would feed
    // non-finite limits into admission control.
    if (!std::isfinite(*out)) return fail("expected a finite number");
    pos += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool parse_string_array(std::vector<std::string>* out) {
    if (!expect('[')) return false;
    out->clear();
    if (peek(']')) {
      ++pos;
      return true;
    }
    for (;;) {
      std::string item;
      if (!parse_string(&item)) return false;
      out->push_back(std::move(item));
      if (peek(',')) {
        ++pos;
        continue;
      }
      return expect(']');
    }
  }

};

bool parse_op(const std::string& name, Op* out) {
  if (name == "submit") *out = Op::kSubmit;
  else if (name == "tenant") *out = Op::kTenant;
  else if (name == "stats") *out = Op::kStats;
  else if (name == "shutdown") *out = Op::kShutdown;
  else return false;
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request* out, std::string* error) {
  Parser p(line);
  Request req;
  bool have_op = false;

  auto fail = [&](const std::string& message) {
    *error = message;
    return false;
  };

  if (!p.expect('{')) return fail(p.error);
  if (!p.peek('}')) {
    for (;;) {
      std::string key;
      if (!p.parse_string(&key)) return fail(p.error);
      if (!p.expect(':')) return fail(p.error);

      if (key == "op") {
        std::string op;
        if (!p.parse_string(&op)) return fail(p.error);
        if (!parse_op(op, &req.op)) return fail("unknown op '" + op + "'");
        have_op = true;
      } else if (key == "tenant") {
        if (!p.parse_string(&req.tenant)) return fail(p.error);
      } else if (key == "name") {
        if (!p.parse_string(&req.name)) return fail(p.error);
      } else if (key == "figure") {
        if (!p.parse_string(&req.figure)) return fail(p.error);
      } else if (key == "series") {
        if (!p.parse_string_array(&req.series)) return fail(p.error);
      } else if (key == "weight" || key == "budget") {
        double v = 0.0;
        if (!p.parse_number(&v)) return fail(p.error);
        if (v <= 0.0) return fail("'" + key + "' must be positive");
        (key == "weight" ? req.weight : req.budget) = v;
      } else if (key == "max_pending") {
        double v = 0.0;
        if (!p.parse_number(&v)) return fail(p.error);
        // The int cast below is UB outside int's range, so bound first.
        if (v < 1.0 ||
            v > static_cast<double>(std::numeric_limits<int>::max()))
          return fail("'max_pending' must be between 1 and 2147483647");
        req.max_pending = static_cast<int>(v);
      } else if (key == "deadline_ms") {
        double v = 0.0;
        if (!p.parse_number(&v)) return fail(p.error);
        // Bounded like max_pending: the value becomes a milliseconds rep,
        // so an absurd magnitude must not overflow the cast.
        if (v < 0.0 || v > 1e12)
          return fail("'deadline_ms' must be between 0 and 1e12");
        req.deadline_ms = v;
      } else {
        return fail("unknown field '" + key + "'");
      }

      if (p.peek(',')) {
        ++p.pos;
        continue;
      }
      break;
    }
  }
  if (!p.expect('}')) return fail(p.error);
  p.skip_ws();
  if (p.pos != line.size()) return fail("trailing bytes after object");

  if (!have_op) return fail("missing 'op'");
  if (req.op == Op::kSubmit && req.tenant.empty())
    return fail("submit requires 'tenant'");
  if (req.op == Op::kTenant && req.tenant.empty())
    return fail("tenant op requires 'tenant'");

  *out = std::move(req);
  return true;
}

bool build_series(const Request& request, std::vector<rt::SeriesSpec>* out,
                  std::string* error) {
  out->clear();
  if (!request.figure.empty()) {
    bool known = false;
    for (const std::string& f : rt::known_figures())
      known |= (f == request.figure);
    if (!known) {
      *error = "unknown figure '" + request.figure + "'";
      return false;
    }
    *out = rt::figure_matrix(request.figure);
  }
  for (const std::string& text : request.series) {
    rt::SeriesSpec spec;
    if (!rt::parse_series(text, &spec)) {
      *error = "bad series '" + text +
               "'; expected system:model[:app[:workload]]";
      return false;
    }
    out->push_back(spec);
  }
  if (out->empty()) {
    *error = "submit names no work: pass 'figure' and/or 'series'";
    return false;
  }
  return true;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hemo::serve
