#include "serve/admission.hpp"

#include <cmath>

#include "base/contracts.hpp"
#include "perf/model.hpp"

namespace hemo::serve {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kBadRequest: return "bad_request";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kOverBudget: return "over_budget";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kOverloaded: return "overloaded";
  }
  return "?";
}

bool reject_retryable(RejectReason reason) {
  return reason == RejectReason::kOverloaded;
}

std::optional<std::string> tenant_config_error(const TenantConfig& config) {
  if (!std::isfinite(config.weight) || config.weight <= 0.0)
    return "'weight' must be a positive finite number";
  if (std::isnan(config.budget) || config.budget <= 0.0)
    return "'budget' must be positive";
  if (config.max_pending_points < 1) return "'max_pending' must be >= 1";
  return std::nullopt;
}

AdmissionController::AdmissionController(TenantConfig defaults)
    : defaults_(defaults) {}

void AdmissionController::configure(const std::string& tenant,
                                    const TenantConfig& config) {
  HEMO_EXPECTS(!tenant_config_error(config).has_value());
  tenants_[tenant].config = config;
}

AdmissionController::Decision AdmissionController::admit(
    const std::string& tenant, double cost, int points) {
  HEMO_EXPECTS(cost >= 0.0);
  HEMO_EXPECTS(points >= 1);
  TenantUsage& usage = usage_of(tenant);

  Decision decision;
  if (usage.pending_points + points > usage.config.max_pending_points) {
    decision.reason = RejectReason::kQueueFull;
    decision.detail = "tenant '" + tenant + "' has " +
                      std::to_string(usage.pending_points) +
                      " pending points; +" + std::to_string(points) +
                      " exceeds the bound of " +
                      std::to_string(usage.config.max_pending_points);
    ++usage.rejected;
    return decision;
  }
  if (usage.charged + cost > usage.config.budget) {
    decision.reason = RejectReason::kOverBudget;
    decision.detail = "predicted cost " + std::to_string(cost) +
                      " device-seconds on top of " +
                      std::to_string(usage.charged) +
                      " outstanding exceeds tenant '" + tenant +
                      "' budget " + std::to_string(usage.config.budget);
    ++usage.rejected;
    return decision;
  }

  usage.charged += cost;
  usage.pending_points += points;
  ++usage.admitted;
  decision.admitted = true;
  return decision;
}

void AdmissionController::release_point(const std::string& tenant,
                                        double cost) {
  TenantUsage& usage = usage_of(tenant);
  HEMO_EXPECTS(usage.pending_points >= 1);
  usage.charged = std::max(0.0, usage.charged - cost);
  --usage.pending_points;
  // Rounding of per-point shares must not leave a phantom charge behind.
  if (usage.pending_points == 0 && usage.charged < 1e-9) usage.charged = 0.0;
  ++usage.completed_points;
}

void AdmissionController::restore(const std::string& tenant, double cost,
                                  int points) {
  HEMO_EXPECTS(cost >= 0.0);
  HEMO_EXPECTS(points >= 1);
  TenantUsage& usage = usage_of(tenant);
  usage.charged += cost;
  usage.pending_points += points;
  ++usage.admitted;
}

double AdmissionController::weight(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.config.weight : defaults_.weight;
}

const TenantUsage& AdmissionController::usage(const std::string& tenant) {
  return usage_of(tenant);
}

TenantUsage& AdmissionController::usage_of(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end())
    it = tenants_.emplace(tenant, TenantUsage{defaults_, 0.0, 0, 0, 0, 0})
             .first;
  return it->second;
}

double predicted_point_cost(rt::ArtifactCache& cache,
                            const rt::SeriesSpec& series,
                            const sys::SchedulePoint& schedule) {
  const std::shared_ptr<sim::Workload> workload =
      rt::shared_workload(cache, series.workload);
  const perf::PerformanceModel model(sys::system_spec(series.system));
  const perf::Prediction prediction = model.predict(
      workload->target_points(schedule.size_multiplier), schedule.devices);
  return prediction.t_total_s * schedule.devices;
}

}  // namespace hemo::serve
