#pragma once
// Request coalescing for the hemo-serve campaign service: identical
// evaluation points — same (system, model, app, workload, devices, size)
// key, from any tenant — are computed once and fanned out to every
// subscriber.
//
// Two layers:
//   - In-flight coalescing: while a point is executing, a second request
//     for the same key subscribes to the running execution instead of
//     starting its own (it also does not consume a dispatch slot).
//   - Result memo: a completed point's result is retained (bounded,
//     LRU-evicted) so an identical point submitted *after* completion is
//     answered immediately with zero executions — the serving-tier
//     analogue of the ArtifactCache, one level up: it memoizes priced
//     points, not intermediates.  Points are pure functions of their key,
//     so memoized delivery is byte-identical to re-execution.
//
// Only clean results are memoized: a failed point (e.g. a timeout) is
// fanned out to its subscribers but NOT retained, so later requests retry
// it — the same "failures are not cached" rule the ArtifactCache follows.
//
// The board is plain data guarded by its owner (the Server's one mutex);
// it does no locking of its own.

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/campaign.hpp"

namespace hemo::serve {

/// One (request, slot) waiting for a point's result.
struct PointSubscriber {
  std::uint64_t request_id = 0;
  std::string tenant;
  std::size_t series_index = 0;
  std::size_t point_index = 0;
};

class CoalescingBoard {
 public:
  explicit CoalescingBoard(std::size_t memo_capacity = 4096);

  enum class Claim {
    kExecute,    // caller must execute; subscriber registered as first
    kCoalesced,  // an identical point is in flight; subscriber attached
    kMemoized,   // completed result copied to *memoized; no execution
  };

  /// Routes one dispatched point: start an execution, join the in-flight
  /// one, or answer from the memo.
  Claim claim(const std::string& key, const PointSubscriber& subscriber,
              rt::PointResult* memoized);

  /// Completes the in-flight execution of `key`, returning its
  /// subscribers (first = the executor) and memoizing clean results.
  std::vector<PointSubscriber> complete(const std::string& key,
                                        const rt::PointResult& result);

  /// The subscribers of `key`'s in-flight execution, or nullptr when the
  /// key is not executing.  Read by the deadline layer to decide whether
  /// an execution still has a live (non-expired) requester.
  const std::vector<PointSubscriber>* inflight_subscribers(
      const std::string& key) const;

  /// Drops the in-flight execution of `key` without completing it,
  /// returning its subscribers (deadline cancellation: every subscriber
  /// expired, so the result has no recipient and is not memoized).  A
  /// later claim of the same key starts a fresh execution.
  std::vector<PointSubscriber> abandon(const std::string& key);

  struct Stats {
    std::uint64_t executions = 0;      // claims that started an execution
    std::uint64_t coalesced = 0;       // claims joined to an in-flight one
    std::uint64_t memo_hits = 0;       // claims answered from the memo
    std::uint64_t memo_evictions = 0;
    std::uint64_t memo_entries = 0;    // resident when stats() was taken
    std::uint64_t inflight = 0;        // executing when stats() was taken
    std::uint64_t abandoned = 0;       // executions dropped by deadlines
  };
  Stats stats() const;

 private:
  struct InFlight {
    std::vector<PointSubscriber> subscribers;
  };
  struct MemoEntry {
    rt::PointResult result;
    std::uint64_t last_used = 0;
  };

  void evict_memo_excess();

  std::size_t memo_capacity_;
  std::unordered_map<std::string, InFlight> inflight_;
  std::unordered_map<std::string, MemoEntry> memo_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace hemo::serve
