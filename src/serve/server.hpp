#pragma once
// The hemo-serve campaign service core: one long-running engine that
// multiplexes many tenants' campaign requests onto a single shared
// rt::Executor and a single sharded rt::ArtifactCache.
//
//   submit ─► admission control (perf-priced budget, pending bound)
//          ─► per-tenant fair-share queues (FairShareDispatcher)
//          ─► coalescing board (identical points computed once)
//          ─► bounded in-flight window on the shared executor
//          ─► per-point events streamed back as they complete
//
// Every point is priced by rt::price_point — the same function
// run_campaign calls — so a campaign served here is byte-identical to
// the same campaign run by the hemo_campaign CLI (the determinism gate
// in tests/serve asserts this).
//
// Threading: one mutex guards all scheduling state (admission,
// dispatcher, board, request table).  Point execution and event sinks
// run outside it: a worker prices a point, takes the lock to record the
// completion and pull the next dispatches, then emits events unlocked.
// Each request's events are staged under the lock into a per-request
// outbox and drained by exactly one thread at a time in staging order,
// so a request's sink is never called concurrently and its events
// arrive in a guaranteed order — accepted first, then points as they
// complete, then done last — even when a worker finishes a point before
// the submitting thread has returned.
//
// Durability (hemo-durable): with ServeOptions::journal set, tenant
// configs, admissions, point completions and terminal statuses are
// appended to a write-ahead journal *before* the corresponding event is
// staged for a client, so restore() can replay a crashed process's log
// and finish its unfinished requests byte-identically (already-completed
// points are delivered from the journal, never re-executed).
//
// Deadlines: a submit may carry a deadline; when it passes, the request's
// queued points are cancelled (their admission budget freed), in-flight
// executions every subscriber abandoned are dropped cooperatively, and
// the client receives exactly one deadline_exceeded event before done.
//
// Overload shedding: past a configurable dispatcher-backlog (or unsynced-
// journal) threshold, new work from non-exempt tenants is rejected with
// the retryable `overloaded` reason instead of queuing unboundedly.
//
// The in-process ServeHandle below is the no-socket client used by tests
// and embedders; the wire front-end lives in serve/socket.hpp.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rt/cache.hpp"
#include "rt/campaign.hpp"
#include "rt/executor.hpp"
#include "serve/admission.hpp"
#include "serve/coalesce.hpp"
#include "serve/dispatch.hpp"
#include "serve/journal.hpp"
#include "serve/recovery.hpp"

namespace hemo::serve {

struct ServeOptions {
  int workers = 0;                  // <= 0: hardware concurrency
  std::size_t cache_capacity = 256;
  /// Lock stripes of the shared ArtifactCache.  16 keeps cross-tenant
  /// contention negligible at every worker count this serves (see
  /// DESIGN.md, "Shard count") while costing nothing when idle.
  std::size_t cache_shards = 16;
  /// Points allowed in/on the executor at once; 0 = 2x workers.  The gap
  /// between this and the backlog is what the fair-share dispatcher
  /// schedules over.
  std::size_t max_inflight = 0;
  /// Completed-point memo capacity (CoalescingBoard).
  std::size_t memo_capacity = 4096;
  TenantConfig tenant_defaults;
  /// Per-point timeout/retry, forwarded to rt::price_point.
  rt::JobOptions job;
  /// Test hook, called on the worker at the start of every *execution*
  /// (never for coalesced or memoized deliveries).  The coalescing tests
  /// park executions here to force an in-flight overlap.
  std::function<void(const rt::SeriesSpec&, const sys::SchedulePoint&)>
      execution_hook;

  /// Write-ahead journal (serve/journal.hpp); nullopt = no durability.
  /// Resuming an existing journal additionally requires restore() with
  /// the replayed state (see JournalOptions::resume_offset).
  std::optional<JournalOptions> journal;

  /// Load shedding: when the fair-share backlog reaches this depth, new
  /// submits from tenants below shed_exempt_weight are rejected with the
  /// retryable kOverloaded reason.  0 = shedding off.
  std::size_t shed_queue_depth = 0;
  /// Tenants with weight >= this keep being admitted through a shed —
  /// until the hard limit below, which protects the server itself.
  double shed_exempt_weight = 2.0;
  /// Even exempt tenants are shed at shed_queue_depth * this factor.
  std::size_t shed_hard_factor = 2;
  /// Shed every new submit while this many journal records await fsync
  /// (group-commit backlog).  0 = off.  With group_commit == 1 the
  /// backlog is always 0 and this never fires.
  std::size_t shed_fsync_backlog = 0;
};

/// One streamed server-to-client notification.
struct Event {
  enum class Kind { kAccepted, kRejected, kPoint, kDeadlineExceeded, kDone };

  Kind kind = Kind::kAccepted;
  std::uint64_t request_id = 0;
  std::string tenant;
  std::string name;  // campaign name as submitted

  // kAccepted / kDeadlineExceeded / kDone
  std::size_t points = 0;
  double cost = 0.0;  // predicted device-seconds charged at admission

  // kRejected
  RejectReason reason = RejectReason::kBadRequest;
  std::string detail;

  // kPoint
  std::size_t series_index = 0;
  std::size_t point_index = 0;
  rt::SeriesSpec series;
  rt::PointResult result;
  /// True when this delivery did not run its own execution: it joined an
  /// in-flight identical point or was answered from the result memo.
  bool coalesced = false;
  /// True when the result was replayed from the write-ahead journal
  /// during crash recovery (no execution this process).
  bool recovered = false;

  // kDeadlineExceeded: points delivered before the deadline / cancelled by
  // it.  Exactly one such event per expired request, before its done.
  std::size_t delivered = 0;
  std::size_t cancelled = 0;

  // kDone
  std::size_t failed = 0;
  double wall_s = 0.0;
};

struct ServeStats {
  std::uint64_t requests_admitted = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_over_budget = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t rejected_overloaded = 0;  // load shed (retryable)
  std::uint64_t points_admitted = 0;
  std::uint64_t points_completed = 0;  // delivered to a live request
  std::uint64_t queued = 0;      // backlog in the fair-share queues
  std::uint64_t dispatched = 0;  // points handed to the coalescing board

  // Deadlines.
  std::uint64_t requests_expired = 0;  // deadline_exceeded events emitted
  std::uint64_t points_cancelled = 0;  // deliveries dropped by a deadline

  // Crash recovery (restore()).
  std::uint64_t requests_resumed = 0;  // unfinished requests re-admitted
  std::uint64_t points_replayed = 0;   // delivered from the journal, no
                                       // re-execution (the dedup counter)

  // SDC sentinel (RS006) activity aggregated over every delivered point's
  // SdcReport — the serving tier's self-audit against silent corruption.
  std::uint64_t sdc_detected = 0;
  std::uint64_t sdc_false_positive = 0;
  std::uint64_t sdc_quarantines = 0;

  // Journal.
  bool journal_active = false;
  std::uint64_t journal_records = 0;   // appended this process
  std::uint64_t journal_unsynced = 0;  // awaiting fsync (group commit)

  CoalescingBoard::Stats board;
  rt::ArtifactCache::Stats cache;
  std::vector<rt::ArtifactCache::Stats> cache_shards;
  rt::Executor::Stats executor;
  std::vector<std::pair<std::string, TenantUsage>> tenants;  // name order

  std::uint64_t requests_rejected() const {
    return rejected_bad_request + rejected_queue_full +
           rejected_over_budget + rejected_shutting_down +
           rejected_overloaded;
  }
};

class Server {
 public:
  /// Receives one request's events; called from worker threads and from
  /// inside submit().  Must not call back into this Server.
  using EventSink = std::function<void(const Event&)>;

  explicit Server(ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Applies one tenant's config.  Returns the rejection detail when the
  /// config is invalid (see tenant_config_error) — client input must
  /// never abort the server — or nullopt on success.
  std::optional<std::string> configure_tenant(const std::string& tenant,
                                              const TenantConfig& config);

  struct SubmitOutcome {
    bool admitted = false;
    std::uint64_t request_id = 0;  // valid iff admitted
    RejectReason reason = RejectReason::kBadRequest;
    std::string detail;
  };

  struct SubmitOptions {
    /// Time the request has to complete, measured from admission.  When
    /// it passes, undelivered points are cancelled, their admission
    /// budget freed, and the sink receives one deadline_exceeded event
    /// followed by done.  nullopt = no deadline.  Deadlines are NOT
    /// persisted: a request resumed from the journal runs to completion
    /// (its original wall-clock budget is meaningless after a restart).
    std::optional<std::chrono::milliseconds> deadline;
  };

  /// Admits or rejects one campaign request.  On admission the request's
  /// points are queued and `sink` will receive its accepted/point/done
  /// events (the accepted event is always delivered before any point
  /// event, and done strictly last); on rejection `sink` receives the
  /// rejected event before this returns and nothing else.  The sink must
  /// stay callable until the done event has been delivered.
  SubmitOutcome submit(const std::string& tenant, const std::string& name,
                       const std::vector<rt::SeriesSpec>& series,
                       EventSink sink);
  SubmitOutcome submit(const std::string& tenant, const std::string& name,
                       const std::vector<rt::SeriesSpec>& series,
                       EventSink sink, const SubmitOptions& options);

  struct RestoreOutcome {
    std::size_t requests_resumed = 0;       // unfinished, re-admitted
    std::size_t requests_already_done = 0;  // terminal in the journal
    std::size_t points_replayed = 0;        // delivered from the journal
    std::size_t points_requeued = 0;        // will (re-)execute
  };

  /// Crash recovery: applies a replayed journal (serve/recovery.hpp) —
  /// tenant configs first, then every unfinished request is re-admitted
  /// under its original id, its journaled points delivered immediately
  /// (marked recovered, never re-executed) and the remainder queued for
  /// execution.  `sink_factory` supplies the event sink of each resumed
  /// request (its accepted event is re-delivered, then points, then
  /// done).  Must be called before any submit, on a Server whose
  /// journal (if any) resumes the same log (JournalOptions::resume_offset
  /// = state.valid_bytes), so replayed records are not re-appended.
  RestoreOutcome restore(
      const RecoveredState& state,
      const std::function<EventSink(const RecoveredRequest&)>& sink_factory);

  /// Counts and emits a bad_request rejection for a request that never
  /// reached submit() — the wire front-end routes parse errors here so
  /// stats() stays a complete account of intake.
  void reject_bad_request(const std::string& detail, const EventSink& sink);

  ServeStats stats() const;

  /// Blocks until every admitted request has completed.
  void wait_idle();

  /// Stops intake: every later submit is rejected with kShuttingDown.
  /// Admitted work keeps running (drain with wait_idle()).
  void begin_shutdown();
  bool shutting_down() const;

  // immutable after construction: executor worker count is fixed
  int workers() const { return executor_.workers(); }
  // immutable after construction: serve options are fixed at startup
  const ServeOptions& options() const { return options_; }

 private:
  struct RequestState {
    std::uint64_t id = 0;
    std::string tenant;
    std::string name;
    std::vector<rt::SeriesSpec> series;
    std::vector<std::vector<double>> point_costs;  // [series][point]
    std::size_t total_points = 0;
    std::size_t done_points = 0;  // accounted: delivered, cancelled, dropped
    std::size_t failed_points = 0;
    std::size_t cancelled_points = 0;  // deadline-cancelled deliveries
    double cost = 0.0;
    std::chrono::steady_clock::time_point start;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    bool expired = false;  // deadline passed; no more point events
    EventSink sink;
    /// Events staged under mu_ in delivery order; drained outside the
    /// lock by one thread at a time (see drain()).  Sequencing per
    /// request is what guarantees accepted-first / done-last on the wire.
    std::deque<Event> outbox;
    bool draining = false;  // guarded by mu_: one active drainer
  };

  /// Requests whose outboxes a locked section touched; drained after the
  /// lock is released.
  using Touched = std::vector<std::shared_ptr<RequestState>>;

  void stage_locked(const std::shared_ptr<RequestState>& request,
                    Event event, Touched* touched);
  void drain(const Touched& touched);
  void pump_locked(Touched* touched);
  void record_point_locked(const PointSubscriber& subscriber,
                           const rt::PointResult& result, bool coalesced,
                           bool recovered, Touched* touched);
  void on_point_complete(const PointTask& task,
                         const rt::PointResult& result);
  /// Stages done + journals the terminal record + erases the request once
  /// every point is accounted for.
  void maybe_finish_locked(const std::shared_ptr<RequestState>& request,
                           Touched* touched);
  /// Accounts one delivery that was cancelled by the request's deadline:
  /// releases its admission share without staging a point event.
  void drop_cancelled_point_locked(
      const std::shared_ptr<RequestState>& request,
      const PointSubscriber& subscriber, Touched* touched);
  /// Deadline expiry of one request: erase its queued points, free their
  /// budgets, stage the single deadline_exceeded event.
  void expire_locked(const std::shared_ptr<RequestState>& request,
                     Touched* touched);
  /// The background deadline watcher (one thread, parked on cv_deadline_).
  void deadline_loop();
  /// True when `key`'s in-flight execution has no live subscriber left —
  /// the rt::JobOptions::cancelled callback of serve executions.
  bool execution_expired(const std::string& key);
  /// Worker-side fast path: if every subscriber of `key` expired, drop
  /// the execution (board abandon + accounting) and return true.
  bool abandon_if_expired(const std::string& key);
  /// Load-shed decision for one new submit (requires mu_).
  bool overloaded_locked(const std::string& tenant, std::string* detail);
  /// Appends one journal record iff journaling is on (requires mu_ so
  /// record order matches staging order).
  void journal_locked(WalTag tag, const WalBuffer& payload);

  ServeOptions options_;
  rt::ArtifactCache cache_;
  rt::Executor executor_;
  std::size_t max_inflight_;  // immutable after construction
  std::unique_ptr<Journal> journal_;  // null = durability off

  mutable std::mutex mu_;
  std::condition_variable cv_idle_;  // requests_ drained to empty
  std::condition_variable cv_deadline_;  // wakes the deadline watcher
  AdmissionController admission_;
  FairShareDispatcher dispatcher_;
  CoalescingBoard board_;
  std::unordered_map<std::uint64_t, std::shared_ptr<RequestState>> requests_;
  std::uint64_t next_request_id_ = 0;
  std::size_t inflight_ = 0;  // executions occupying the window
  bool shutting_down_ = false;
  bool stop_deadline_ = false;  // tells the watcher to exit
  ServeStats counters_;  // the plain tallies of stats(); subsystems add theirs

  std::thread deadline_watcher_;  // last member: joined in the destructor
};

// ---------------------------------------------------------------------------
// In-process client.
// ---------------------------------------------------------------------------

/// A no-socket client for one tenant: submits typed series lists and
/// consumes the event stream through a thread-safe queue.  Tests and
/// embedders use this; the wire protocol wraps the same Server API.
class ServeHandle {
 public:
  ServeHandle(Server& server, std::string tenant);

  /// Submits a campaign; events will arrive on this handle's queue.
  Server::SubmitOutcome submit(const std::string& name,
                               const std::vector<rt::SeriesSpec>& series);
  Server::SubmitOutcome submit(const std::string& name,
                               const std::vector<rt::SeriesSpec>& series,
                               const Server::SubmitOptions& options);

  /// Recovery adapter: returns the EventSink Server::restore() needs for
  /// one resumed request and registers the request on this handle, so
  /// wait(request.id) assembles its campaign exactly as for a request
  /// submitted here.  The handle's tenant is not consulted — the resumed
  /// request keeps its journaled tenant.
  Server::EventSink adopt(const RecoveredRequest& request);

  /// Pops the next event, blocking up to `timeout`.
  std::optional<Event> next_event(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Drains this request's events until done and assembles the campaign
  /// result exactly as run_campaign lays it out (series in spec order,
  /// points in schedule slots).  Events of other requests are left
  /// queued.  Only valid for an admitted request_id of this handle.  The
  /// result's runtime metadata (cache/executor stats) is the *server's*,
  /// shared across tenants.
  rt::CampaignResult wait(std::uint64_t request_id);

 private:
  struct Submitted {
    std::string name;
    std::vector<rt::SeriesSpec> series;
  };

  Event pop_event_of_locked(std::unique_lock<std::mutex>& lock,
                            std::uint64_t request_id);

  Server& server_;
  std::string tenant_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Event> events_;
  std::unordered_map<std::uint64_t, Submitted> submitted_;
};

// ---------------------------------------------------------------------------
// Wire serialization (used by the socket front-end and the CLI).
// ---------------------------------------------------------------------------

std::string event_json(const Event& event);
std::string stats_json(const ServeStats& stats);

}  // namespace hemo::serve
