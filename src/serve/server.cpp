#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "base/contracts.hpp"
#include "serve/protocol.hpp"

namespace hemo::serve {

namespace {

// %.9g, matching the campaign sinks, so the wire stream round-trips the
// same digits the CSV/JSON files carry.
std::string fmt_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

rt::ExecutorOptions executor_options(const ServeOptions& options) {
  rt::ExecutorOptions eo;
  eo.workers = options.workers;
  // The in-flight window must never hit the executor's queue bound:
  // pump_locked submits while holding the server mutex, and blocking
  // there on backpressure would stall every completion.
  eo.queue_capacity = std::max<std::size_t>(4096, options.max_inflight + 1);
  return eo;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      executor_(executor_options(options_)),
      max_inflight_(options_.max_inflight
                        ? options_.max_inflight
                        : 2 * static_cast<std::size_t>(executor_.workers())),
      journal_(options_.journal
                   ? std::make_unique<Journal>(*options_.journal)
                   : nullptr),
      admission_(options_.tenant_defaults),
      board_(options_.memo_capacity),
      deadline_watcher_([this] { deadline_loop(); }) {}

Server::~Server() {
  begin_shutdown();
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_deadline_ = true;
    cv_deadline_.notify_all();
  }
  deadline_watcher_.join();
  executor_.shutdown();
  if (journal_) {
    // Everything drained and no thread can append anymore: mark the log
    // cleanly terminated so a restart knows no work was in flight.
    try {
      journal_->append(WalTag::kCleanShutdown, WalBuffer());
      journal_->sync();
    } catch (const JournalError&) {
      // Destructor: a failed terminal record degrades the next recovery
      // to the crash path, which is correct anyway.
    }
  }
}

std::optional<std::string> Server::configure_tenant(
    const std::string& tenant, const TenantConfig& config) {
  if (std::optional<std::string> error = tenant_config_error(config))
    return error;
  std::lock_guard<std::mutex> lock(mu_);
  // Journal before applying: a crash right after the append replays into
  // the same config this process was about to serve under.
  if (journal_) {
    WalBuffer payload;
    wal_encode_tenant(&payload, tenant, config);
    journal_locked(WalTag::kTenantConfig, payload);
  }
  admission_.configure(tenant, config);
  dispatcher_.set_weight(tenant, config.weight);
  return std::nullopt;
}

Server::SubmitOutcome Server::submit(const std::string& tenant,
                                     const std::string& name,
                                     const std::vector<rt::SeriesSpec>& series,
                                     EventSink sink) {
  return submit(tenant, name, series, std::move(sink), SubmitOptions{});
}

Server::SubmitOutcome Server::submit(const std::string& tenant,
                                     const std::string& name,
                                     const std::vector<rt::SeriesSpec>& series,
                                     EventSink sink,
                                     const SubmitOptions& submit_options) {
  HEMO_EXPECTS(sink != nullptr);

  SubmitOutcome outcome;
  if (tenant.empty() || series.empty()) {
    outcome.reason = RejectReason::kBadRequest;
    outcome.detail = tenant.empty() ? "missing tenant" : "empty series list";
    reject_bad_request(outcome.detail, sink);
    return outcome;
  }

  // Phase 1, unlocked: lay out and price every point.  Pricing resolves
  // workloads through the shared cache, so a first-seen geometry is
  // voxelized here, outside the scheduling lock, and reused by execution.
  struct SeriesLayout {
    std::vector<sys::SchedulePoint> schedule;
    std::optional<rt::JobFailure> unavailable;
  };
  std::vector<SeriesLayout> layout(series.size());
  std::vector<std::vector<double>> point_costs(series.size());
  std::size_t total_points = 0;
  double total_cost = 0.0;
  for (std::size_t s = 0; s < series.size(); ++s) {
    layout[s].schedule = sys::piecewise_schedule(
        sys::system_spec(series[s].system).max_devices);
    layout[s].unavailable = rt::unavailable_failure(series[s]);
    point_costs[s].resize(layout[s].schedule.size(), 0.0);
    total_points += layout[s].schedule.size();
    if (layout[s].unavailable) continue;  // never priced, never executed
    for (std::size_t k = 0; k < layout[s].schedule.size(); ++k) {
      point_costs[s][k] =
          predicted_point_cost(cache_, series[s], layout[s].schedule[k]);
      total_cost += point_costs[s][k];
    }
  }

  // Phase 2, locked: shed, admit, journal, register, queue, pump.
  Touched touched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string shed_detail;
    if (shutting_down_) {
      ++counters_.rejected_shutting_down;
      outcome.reason = RejectReason::kShuttingDown;
      outcome.detail = "server is shutting down";
    } else if (overloaded_locked(tenant, &shed_detail)) {
      ++counters_.rejected_overloaded;
      outcome.reason = RejectReason::kOverloaded;
      outcome.detail = std::move(shed_detail);
    } else {
      const AdmissionController::Decision decision = admission_.admit(
          tenant, total_cost, static_cast<int>(total_points));
      if (!decision.admitted) {
        switch (decision.reason) {
          case RejectReason::kQueueFull: ++counters_.rejected_queue_full; break;
          case RejectReason::kOverBudget: ++counters_.rejected_over_budget; break;
          default: ++counters_.rejected_bad_request; break;
        }
        outcome.reason = decision.reason;
        outcome.detail = decision.detail;
      } else {
        auto request = std::make_shared<RequestState>();
        request->id = ++next_request_id_;
        request->tenant = tenant;
        request->name = name.empty() ? "campaign" : name;
        request->series = series;
        request->point_costs = std::move(point_costs);
        request->total_points = total_points;
        request->cost = total_cost;
        request->start = std::chrono::steady_clock::now();
        if (submit_options.deadline)
          request->deadline = request->start + *submit_options.deadline;
        request->sink = std::move(sink);

        // WAL discipline: the admission is durable before the accepted
        // event can reach the client.  A crash before this append means
        // the client never heard "accepted" and simply re-submits.
        if (journal_) {
          WalBuffer payload;
          wal_encode_admitted(&payload, request->id, tenant, request->name,
                              series);
          journal_locked(WalTag::kAdmitted, payload);
        }

        requests_.emplace(request->id, request);
        ++counters_.requests_admitted;
        counters_.points_admitted += total_points;

        outcome.admitted = true;
        outcome.request_id = request->id;

        // Staged first, before any task exists: outbox sequencing then
        // guarantees no point event can reach the sink ahead of it.
        Event accepted;
        accepted.kind = Event::Kind::kAccepted;
        accepted.request_id = request->id;
        accepted.tenant = tenant;
        accepted.name = request->name;
        accepted.points = total_points;
        accepted.cost = total_cost;
        stage_locked(request, std::move(accepted), &touched);

        for (std::size_t s = 0; s < series.size(); ++s) {
          for (std::size_t k = 0; k < layout[s].schedule.size(); ++k) {
            if (layout[s].unavailable) {
              // The study never evaluated this combination: deliver the
              // same structured failure run_campaign records, with no
              // dispatch (attempts stays 0).
              rt::PointResult failed;
              failed.schedule = layout[s].schedule[k];
              failed.failure = layout[s].unavailable;
              record_point_locked({request->id, tenant, s, k}, failed,
                                  /*coalesced=*/false, /*recovered=*/false,
                                  &touched);
              continue;
            }
            PointTask task;
            task.request_id = request->id;
            task.tenant = tenant;
            task.series_index = s;
            task.point_index = k;
            task.series = series[s];
            task.schedule = layout[s].schedule[k];
            task.key = rt::point_key(series[s], layout[s].schedule[k]);
            dispatcher_.enqueue(std::move(task));
          }
        }
        if (request->deadline &&
            std::chrono::steady_clock::now() >= *request->deadline) {
          // Deterministic zero-budget semantics: an already-expired
          // deadline cancels everything before anything can dispatch.
          expire_locked(request, &touched);
        } else {
          pump_locked(&touched);
          if (request->deadline) cv_deadline_.notify_all();
        }
      }
    }
  }

  if (!outcome.admitted && sink) {
    Event rejected;
    rejected.kind = Event::Kind::kRejected;
    rejected.tenant = tenant;
    rejected.name = name;
    rejected.reason = outcome.reason;
    rejected.detail = outcome.detail;
    sink(rejected);  // no request registered: nothing to sequence against
  }
  drain(touched);
  return outcome;
}

Server::RestoreOutcome Server::restore(
    const RecoveredState& state,
    const std::function<EventSink(const RecoveredRequest&)>& sink_factory) {
  HEMO_EXPECTS(sink_factory != nullptr);
  RestoreOutcome outcome;

  // Tenant configs first, in record order (later records win), so resumed
  // requests are re-admitted under the same weights/budgets they ran
  // under.  Configs are NOT re-journaled: the resumed log already holds
  // them (resume_offset keeps the valid prefix).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [tenant, config] : state.tenants) {
      if (tenant_config_error(config)) continue;  // CRC-valid garbage: skip
      admission_.configure(tenant, config);
      dispatcher_.set_weight(tenant, config.weight);
    }
  }

  for (const RecoveredRequest& recovered : state.requests) {
    {
      // Ids must stay unique across the crash even for finished requests.
      std::lock_guard<std::mutex> lock(mu_);
      next_request_id_ = std::max(next_request_id_, recovered.id);
    }
    if (recovered.done) {
      ++outcome.requests_already_done;
      continue;
    }

    // Unlocked: lay out and price exactly as submit() phase 1 does.
    struct SeriesLayout {
      std::vector<sys::SchedulePoint> schedule;
      std::optional<rt::JobFailure> unavailable;
    };
    std::vector<SeriesLayout> layout(recovered.series.size());
    std::vector<std::vector<double>> point_costs(recovered.series.size());
    std::size_t total_points = 0;
    double total_cost = 0.0;
    for (std::size_t s = 0; s < recovered.series.size(); ++s) {
      layout[s].schedule = sys::piecewise_schedule(
          sys::system_spec(recovered.series[s].system).max_devices);
      layout[s].unavailable = rt::unavailable_failure(recovered.series[s]);
      point_costs[s].resize(layout[s].schedule.size(), 0.0);
      total_points += layout[s].schedule.size();
      if (layout[s].unavailable) continue;
      for (std::size_t k = 0; k < layout[s].schedule.size(); ++k) {
        point_costs[s][k] = predicted_point_cost(cache_, recovered.series[s],
                                                 layout[s].schedule[k]);
        total_cost += point_costs[s][k];
      }
    }

    // Journaled completions, indexed by slot; out-of-range ones (a log
    // from a different schedule build) are dropped rather than trusted.
    std::vector<std::vector<const rt::PointResult*>> replayed(
        recovered.series.size());
    for (std::size_t s = 0; s < recovered.series.size(); ++s)
      replayed[s].assign(layout[s].schedule.size(), nullptr);
    for (const RecoveredPoint& point : recovered.completed)
      if (point.series_index < replayed.size() &&
          point.point_index < replayed[point.series_index].size())
        replayed[point.series_index][point.point_index] = &point.result;

    Touched touched;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto request = std::make_shared<RequestState>();
      request->id = recovered.id;
      request->tenant = recovered.tenant;
      request->name = recovered.name;
      request->series = recovered.series;
      request->point_costs = std::move(point_costs);
      request->total_points = total_points;
      request->cost = total_cost;
      request->start = std::chrono::steady_clock::now();
      request->sink = sink_factory(recovered);
      HEMO_EXPECTS(request->sink != nullptr);

      // Force-charge: this request already passed admission in the
      // previous process and its client was told so.
      admission_.restore(recovered.tenant, total_cost,
                         static_cast<int>(total_points));
      requests_.emplace(request->id, request);
      ++counters_.requests_resumed;
      counters_.points_admitted += total_points;
      ++outcome.requests_resumed;

      // Re-deliver the accepted event: the client of the resumed stream
      // gets the same prologue an uninterrupted run produced.
      Event accepted;
      accepted.kind = Event::Kind::kAccepted;
      accepted.request_id = request->id;
      accepted.tenant = request->tenant;
      accepted.name = request->name;
      accepted.points = total_points;
      accepted.cost = total_cost;
      stage_locked(request, std::move(accepted), &touched);

      for (std::size_t s = 0; s < recovered.series.size(); ++s) {
        for (std::size_t k = 0; k < layout[s].schedule.size(); ++k) {
          const PointSubscriber subscriber{request->id, request->tenant, s, k};
          if (replayed[s][k]) {
            // The dedup path: deliver the journaled result, no execution.
            record_point_locked(subscriber, *replayed[s][k],
                                /*coalesced=*/false, /*recovered=*/true,
                                &touched);
            ++outcome.points_replayed;
            continue;
          }
          if (layout[s].unavailable) {
            // Deterministic re-derivation, same as submit().
            rt::PointResult failed;
            failed.schedule = layout[s].schedule[k];
            failed.failure = layout[s].unavailable;
            record_point_locked(subscriber, failed, /*coalesced=*/false,
                                /*recovered=*/false, &touched);
            continue;
          }
          PointTask task;
          task.request_id = request->id;
          task.tenant = request->tenant;
          task.series_index = s;
          task.point_index = k;
          task.series = recovered.series[s];
          task.schedule = layout[s].schedule[k];
          task.key = rt::point_key(recovered.series[s], layout[s].schedule[k]);
          dispatcher_.enqueue(std::move(task));
          ++outcome.points_requeued;
        }
      }
      pump_locked(&touched);
    }
    drain(touched);
  }

  return outcome;
}

void Server::reject_bad_request(const std::string& detail,
                                const EventSink& sink) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected_bad_request;
  }
  if (!sink) return;
  Event rejected;
  rejected.kind = Event::Kind::kRejected;
  rejected.reason = RejectReason::kBadRequest;
  rejected.detail = detail;
  sink(rejected);
}

void Server::pump_locked(Touched* touched) {
  // requires mu_ held
  PointTask task;
  while (inflight_ < max_inflight_ && dispatcher_.pop(&task)) {
    ++counters_.dispatched;
    const PointSubscriber subscriber{task.request_id, task.tenant,
                                     task.series_index, task.point_index};
    rt::PointResult memoized;
    const CoalescingBoard::Claim claim =
        board_.claim(task.key, subscriber, &memoized);
    switch (claim) {
      case CoalescingBoard::Claim::kExecute:
        ++inflight_;
        executor_.submit([this, task] {
          // Deadline fast path: if every subscriber expired while this
          // task waited for a worker, drop it without pricing.
          if (abandon_if_expired(task.key)) return;
          if (options_.execution_hook)
            options_.execution_hook(task.series, task.schedule);
          rt::JobOptions job = options_.job;
          job.cancelled = [this, key = task.key] {
            return execution_expired(key);
          };
          rt::PointResult result = rt::price_point(cache_, task.series,
                                                   task.schedule, job);
          if (!result.ok() && result.failure->cancelled) {
            if (abandon_if_expired(task.key)) return;
            // Rare race: a live subscriber coalesced on while the job was
            // cancelling.  Re-price without the cancel hook — someone is
            // waiting for a real result now.
            result = rt::price_point(cache_, task.series, task.schedule,
                                     options_.job);
          }
          on_point_complete(task, result);
        });
        break;
      case CoalescingBoard::Claim::kMemoized:
        record_point_locked(subscriber, memoized, /*coalesced=*/true,
                            /*recovered=*/false, touched);
        break;
      case CoalescingBoard::Claim::kCoalesced:
        // Attached to the in-flight execution; delivered on completion.
        // No in-flight slot consumed: the window bounds executions.
        break;
    }
  }
}

void Server::record_point_locked(const PointSubscriber& subscriber,
                                 const rt::PointResult& result,
                                 bool coalesced, bool recovered,
                                 Touched* touched) {
  // requires mu_ held
  auto it = requests_.find(subscriber.request_id);
  HEMO_EXPECTS(it != requests_.end());
  const std::shared_ptr<RequestState> request = it->second;

  if (request->expired) {
    // The deadline already fired: the completion frees its budget but no
    // further point event may follow the deadline_exceeded event.
    drop_cancelled_point_locked(request, subscriber, touched);
    return;
  }

  admission_.release_point(
      request->tenant,
      request->point_costs[subscriber.series_index][subscriber.point_index]);
  ++counters_.points_completed;
  if (recovered) ++counters_.points_replayed;
  if (result.sdc.has_value()) {
    counters_.sdc_detected += static_cast<std::uint64_t>(result.sdc->detected);
    counters_.sdc_false_positive +=
        static_cast<std::uint64_t>(result.sdc->false_positives);
    counters_.sdc_quarantines +=
        static_cast<std::uint64_t>(result.sdc->quarantines);
  }
  ++request->done_points;
  if (!result.ok()) ++request->failed_points;

  // Journal before staging: once the client sees this point event, a
  // restart must replay the identical result instead of re-executing.
  // Replayed deliveries are already in the resumed log.
  if (journal_ && !recovered) {
    WalBuffer payload;
    wal_encode_point(&payload, request->id,
                     static_cast<std::uint32_t>(subscriber.series_index),
                     static_cast<std::uint32_t>(subscriber.point_index),
                     result);
    journal_locked(WalTag::kPoint, payload);
  }

  Event point;
  point.kind = Event::Kind::kPoint;
  point.request_id = request->id;
  point.tenant = request->tenant;
  point.name = request->name;
  point.series_index = subscriber.series_index;
  point.point_index = subscriber.point_index;
  point.series = request->series[subscriber.series_index];
  point.result = result;
  point.coalesced = coalesced;
  point.recovered = recovered;
  stage_locked(request, std::move(point), touched);

  maybe_finish_locked(request, touched);
}

void Server::maybe_finish_locked(const std::shared_ptr<RequestState>& request,
                                 Touched* touched) {
  // requires mu_ held
  if (request->done_points != request->total_points) return;

  if (journal_) {
    WalBuffer payload;
    wal_encode_done(&payload, request->id,
                    request->expired ? WalDoneStatus::kDeadlineExceeded
                                     : WalDoneStatus::kCompleted,
                    request->failed_points);
    journal_locked(WalTag::kDone, payload);
  }

  Event done;
  done.kind = Event::Kind::kDone;
  done.request_id = request->id;
  done.tenant = request->tenant;
  done.name = request->name;
  done.points = request->total_points;
  done.cost = request->cost;
  done.failed = request->failed_points;
  done.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - request->start)
                    .count();
  stage_locked(request, std::move(done), touched);
  // The shared_ptr in *touched keeps the outbox alive through drain().
  requests_.erase(request->id);
  if (requests_.empty()) cv_idle_.notify_all();
}

void Server::drop_cancelled_point_locked(
    const std::shared_ptr<RequestState>& request,
    const PointSubscriber& subscriber, Touched* touched) {
  // requires mu_ held
  admission_.release_point(
      request->tenant,
      request->point_costs[subscriber.series_index][subscriber.point_index]);
  ++counters_.points_cancelled;
  ++request->done_points;
  ++request->cancelled_points;
  maybe_finish_locked(request, touched);
}

void Server::on_point_complete(const PointTask& task,
                               const rt::PointResult& result) {
  Touched touched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    const std::vector<PointSubscriber> subscribers =
        board_.complete(task.key, result);
    // The first subscriber claimed the execution; the rest coalesced
    // onto it and are marked as such in their events.
    for (std::size_t i = 0; i < subscribers.size(); ++i)
      record_point_locked(subscribers[i], result, /*coalesced=*/i > 0,
                          /*recovered=*/false, &touched);
    pump_locked(&touched);
  }
  drain(touched);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

void Server::expire_locked(const std::shared_ptr<RequestState>& request,
                           Touched* touched) {
  // requires mu_ held
  if (request->expired || !requests_.count(request->id)) return;
  request->expired = true;
  ++counters_.requests_expired;

  // Queued points are cancelled outright; their admission shares free
  // immediately so the tenant's budget never waits on dead work.
  std::vector<PointTask> removed;
  dispatcher_.erase_request(request->id, &removed);
  const std::size_t delivered =
      request->done_points - request->cancelled_points;
  for (const PointTask& task : removed) {
    admission_.release_point(
        request->tenant,
        request->point_costs[task.series_index][task.point_index]);
    ++counters_.points_cancelled;
    ++request->done_points;
    ++request->cancelled_points;
  }

  Event expired_event;
  expired_event.kind = Event::Kind::kDeadlineExceeded;
  expired_event.request_id = request->id;
  expired_event.tenant = request->tenant;
  expired_event.name = request->name;
  expired_event.points = request->total_points;
  expired_event.delivered = delivered;
  expired_event.cancelled = request->total_points - delivered;
  stage_locked(request, std::move(expired_event), touched);

  // In-flight completions (board subscriptions) account on arrival via
  // drop_cancelled_point_locked; when none are outstanding this finishes
  // the request right here.
  maybe_finish_locked(request, touched);
}

void Server::deadline_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_deadline_) {
    std::optional<std::chrono::steady_clock::time_point> next;
    for (const auto& [id, request] : requests_)
      if (request->deadline && !request->expired &&
          (!next || *request->deadline < *next))
        next = request->deadline;
    if (!next) {
      cv_deadline_.wait(lock);
      continue;
    }
    if (cv_deadline_.wait_until(lock, *next) != std::cv_status::timeout)
      continue;  // re-scan: new request, or shutdown
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<RequestState>> due;
    for (const auto& [id, request] : requests_)
      if (request->deadline && !request->expired && now >= *request->deadline)
        due.push_back(request);
    Touched touched;
    for (const std::shared_ptr<RequestState>& request : due)
      expire_locked(request, &touched);
    if (!touched.empty()) {
      lock.unlock();
      drain(touched);
      lock.lock();
    }
  }
}

bool Server::execution_expired(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<PointSubscriber>* subscribers =
      board_.inflight_subscribers(key);
  if (!subscribers || subscribers->empty()) return false;
  for (const PointSubscriber& subscriber : *subscribers) {
    const auto it = requests_.find(subscriber.request_id);
    if (it != requests_.end() && !it->second->expired) return false;
  }
  return true;
}

bool Server::abandon_if_expired(const std::string& key) {
  Touched touched;
  bool abandoned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::vector<PointSubscriber>* subscribers =
        board_.inflight_subscribers(key);
    bool all_expired = subscribers && !subscribers->empty();
    if (all_expired)
      for (const PointSubscriber& subscriber : *subscribers) {
        const auto it = requests_.find(subscriber.request_id);
        if (it != requests_.end() && !it->second->expired) {
          all_expired = false;
          break;
        }
      }
    if (all_expired) {
      for (const PointSubscriber& subscriber : board_.abandon(key)) {
        const auto it = requests_.find(subscriber.request_id);
        if (it != requests_.end())
          drop_cancelled_point_locked(it->second, subscriber, &touched);
      }
      --inflight_;
      pump_locked(&touched);
      abandoned = true;
    }
  }
  drain(touched);
  return abandoned;
}

// ---------------------------------------------------------------------------
// Load shedding & journaling
// ---------------------------------------------------------------------------

bool Server::overloaded_locked(const std::string& tenant,
                               std::string* detail) {
  // requires mu_ held
  if (options_.shed_queue_depth > 0) {
    const std::size_t backlog = dispatcher_.queued();
    if (backlog >= options_.shed_queue_depth) {
      const std::size_t hard =
          options_.shed_queue_depth *
          std::max<std::size_t>(1, options_.shed_hard_factor);
      const bool exempt =
          admission_.weight(tenant) >= options_.shed_exempt_weight &&
          backlog < hard;
      if (!exempt) {
        *detail = "service overloaded: " + std::to_string(backlog) +
                  " points queued (shed threshold " +
                  std::to_string(options_.shed_queue_depth) +
                  "); retry later";
        return true;
      }
    }
  }
  if (options_.shed_fsync_backlog > 0 && journal_ &&
      journal_->unsynced() >= options_.shed_fsync_backlog) {
    *detail = "service overloaded: " +
              std::to_string(journal_->unsynced()) +
              " journal records awaiting fsync (threshold " +
              std::to_string(options_.shed_fsync_backlog) + "); retry later";
    return true;
  }
  return false;
}

void Server::journal_locked(WalTag tag, const WalBuffer& payload) {
  // requires mu_ held (record order must match event staging order)
  journal_->append(tag, payload);
}

void Server::stage_locked(const std::shared_ptr<RequestState>& request,
                          Event event, Touched* touched) {
  // requires mu_ held
  request->outbox.push_back(std::move(event));
  for (const std::shared_ptr<RequestState>& seen : *touched)
    if (seen == request) return;
  touched->push_back(request);
}

void Server::drain(const Touched& touched) {
  for (const std::shared_ptr<RequestState>& request : touched) {
    std::unique_lock<std::mutex> lock(mu_);
    // One drainer at a time per request: a second thread arriving here
    // leaves its staged events to the active drainer's re-check below,
    // which preserves the staging order end to end.
    if (request->draining) continue;
    request->draining = true;
    while (!request->outbox.empty()) {
      std::deque<Event> batch;
      batch.swap(request->outbox);
      lock.unlock();
      for (const Event& event : batch) request->sink(event);
      lock.lock();
    }
    request->draining = false;
  }
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats out = counters_;
  if (journal_) {
    out.journal_active = true;
    out.journal_records = journal_->appended();
    out.journal_unsynced = journal_->unsynced();
  }
  out.queued = dispatcher_.queued();
  out.dispatched = dispatcher_.dispatched();
  out.board = board_.stats();
  out.cache = cache_.stats();
  out.cache_shards = cache_.shard_stats();
  out.executor = executor_.stats();
  for (const auto& [name, usage] : admission_.tenants())
    out.tenants.emplace_back(name, usage);
  return out;
}

void Server::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return requests_.empty(); });
}

void Server::begin_shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutting_down_ = true;
}

bool Server::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutting_down_;
}

// ---------------------------------------------------------------------------
// ServeHandle
// ---------------------------------------------------------------------------

ServeHandle::ServeHandle(Server& server, std::string tenant)
    : server_(server), tenant_(std::move(tenant)) {}

Server::SubmitOutcome ServeHandle::submit(
    const std::string& name, const std::vector<rt::SeriesSpec>& series) {
  return submit(name, series, Server::SubmitOptions{});
}

Server::SubmitOutcome ServeHandle::submit(
    const std::string& name, const std::vector<rt::SeriesSpec>& series,
    const Server::SubmitOptions& options) {
  const Server::SubmitOutcome outcome = server_.submit(
      tenant_, name, series,
      [this](const Event& event) {
        // Notify *under* the lock: a waiter that pops the done event may
        // destroy this handle the moment it can reacquire mu_, so the
        // notify must have returned by then.
        std::lock_guard<std::mutex> lock(mu_);
        events_.push_back(event);
        cv_.notify_all();
      },
      options);
  if (outcome.admitted) {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_[outcome.request_id] =
        Submitted{name.empty() ? "campaign" : name, series};
  }
  return outcome;
}

Server::EventSink ServeHandle::adopt(const RecoveredRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_[request.id] = Submitted{request.name, request.series};
  }
  return [this](const Event& event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
    cv_.notify_all();
  };
}

std::optional<Event> ServeHandle::next_event(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return !events_.empty(); }))
    return std::nullopt;
  Event event = std::move(events_.front());
  events_.pop_front();
  return event;
}

Event ServeHandle::pop_event_of_locked(std::unique_lock<std::mutex>& lock,
                                       std::uint64_t request_id) {
  // requires `lock` held on mu_
  for (;;) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->request_id != request_id) continue;
      Event event = std::move(*it);
      events_.erase(it);
      return event;
    }
    cv_.wait(lock);
  }
}

rt::CampaignResult ServeHandle::wait(std::uint64_t request_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto submitted = submitted_.find(request_id);
  HEMO_EXPECTS(submitted != submitted_.end() &&
               "wait() is only valid for an admitted request of this handle");

  // Pre-assign the slot layout exactly as run_campaign does, then fill
  // slots from point events as they arrive (any completion order).
  rt::CampaignResult result;
  result.name = submitted->second.name;
  result.workers = server_.workers();
  result.series.resize(submitted->second.series.size());
  for (std::size_t s = 0; s < result.series.size(); ++s) {
    result.series[s].spec = submitted->second.series[s];
    const std::vector<sys::SchedulePoint> schedule = sys::piecewise_schedule(
        sys::system_spec(submitted->second.series[s].system).max_devices);
    result.series[s].points.resize(schedule.size());
    for (std::size_t k = 0; k < schedule.size(); ++k)
      result.series[s].points[k].schedule = schedule[k];
  }
  submitted_.erase(submitted);

  for (;;) {
    const Event event = pop_event_of_locked(lock, request_id);
    if (event.kind == Event::Kind::kPoint) {
      result.series[event.series_index].points[event.point_index] =
          event.result;
    } else if (event.kind == Event::Kind::kDone) {
      result.wall_s = event.wall_s;
      break;
    }
  }
  lock.unlock();

  // Runtime metadata is the server's, shared across every tenant.
  const ServeStats stats = server_.stats();
  result.cache = stats.cache;
  result.cache_shards = stats.cache_shards;
  result.executor = stats.executor;
  return result;
}

// ---------------------------------------------------------------------------
// Wire serialization
// ---------------------------------------------------------------------------

std::string event_json(const Event& event) {
  std::ostringstream os;
  switch (event.kind) {
    case Event::Kind::kAccepted:
      os << "{\"event\": \"accepted\", \"request\": " << event.request_id
         << ", \"tenant\": \"" << json_escape(event.tenant)
         << "\", \"name\": \"" << json_escape(event.name)
         << "\", \"points\": " << event.points
         << ", \"cost\": " << fmt_double(event.cost) << "}";
      break;
    case Event::Kind::kRejected:
      os << "{\"event\": \"rejected\", \"tenant\": \""
         << json_escape(event.tenant) << "\", \"reason\": \""
         << reject_reason_name(event.reason) << "\", \"retryable\": "
         << (reject_retryable(event.reason) ? "true" : "false")
         << ", \"detail\": \"" << json_escape(event.detail) << "\"}";
      break;
    case Event::Kind::kPoint: {
      const rt::PointResult& p = event.result;
      os << "{\"event\": \"point\", \"request\": " << event.request_id
         << ", \"tenant\": \"" << json_escape(event.tenant)
         << "\", \"series\": " << event.series_index
         << ", \"point\": " << event.point_index << ", \"label\": \""
         << json_escape(rt::series_label(event.series))
         << "\", \"devices\": " << p.schedule.devices
         << ", \"size_multiplier\": " << p.schedule.size_multiplier
         << ", \"attempts\": " << p.attempts;
      if (p.ok()) {
        os << ", \"status\": \"" << (p.degraded() ? "degraded" : "ok")
           << "\", \"mflups\": " << fmt_double(p.sim.mflups)
           << ", \"iteration_s\": " << fmt_double(p.sim.iteration_s)
           << ", \"predicted_mflups\": " << fmt_double(p.prediction.mflups);
      } else {
        os << ", \"status\": \""
           << (p.failure->timed_out ? "timeout" : "failed")
           << "\", \"error\": \"" << json_escape(p.failure->message) << "\"";
      }
      os << ", \"coalesced\": " << (event.coalesced ? "true" : "false");
      if (event.recovered) os << ", \"recovered\": true";
      os << "}";
      break;
    }
    case Event::Kind::kDeadlineExceeded:
      os << "{\"event\": \"deadline_exceeded\", \"request\": "
         << event.request_id << ", \"tenant\": \""
         << json_escape(event.tenant) << "\", \"points\": " << event.points
         << ", \"delivered\": " << event.delivered
         << ", \"cancelled\": " << event.cancelled << "}";
      break;
    case Event::Kind::kDone:
      os << "{\"event\": \"done\", \"request\": " << event.request_id
         << ", \"tenant\": \"" << json_escape(event.tenant)
         << "\", \"points\": " << event.points
         << ", \"failed\": " << event.failed
         << ", \"wall_s\": " << fmt_double(event.wall_s) << "}";
      break;
  }
  return os.str();
}

std::string stats_json(const ServeStats& stats) {
  std::ostringstream os;
  os << "{\"event\": \"stats\", \"requests\": {\"admitted\": "
     << stats.requests_admitted
     << ", \"rejected\": " << stats.requests_rejected()
     << ", \"rejected_bad_request\": " << stats.rejected_bad_request
     << ", \"rejected_queue_full\": " << stats.rejected_queue_full
     << ", \"rejected_over_budget\": " << stats.rejected_over_budget
     << ", \"rejected_shutting_down\": " << stats.rejected_shutting_down
     << ", \"rejected_overloaded\": " << stats.rejected_overloaded
     << ", \"expired\": " << stats.requests_expired
     << ", \"resumed\": " << stats.requests_resumed
     << "}, \"points\": {\"admitted\": " << stats.points_admitted
     << ", \"completed\": " << stats.points_completed
     << ", \"cancelled\": " << stats.points_cancelled
     << ", \"replayed\": " << stats.points_replayed
     << ", \"queued\": " << stats.queued
     << ", \"dispatched\": " << stats.dispatched
     << "}, \"sdc\": {\"detected\": " << stats.sdc_detected
     << ", \"false_positives\": " << stats.sdc_false_positive
     << ", \"quarantines\": " << stats.sdc_quarantines
     << "}, \"journal\": {\"active\": "
     << (stats.journal_active ? "true" : "false")
     << ", \"records\": " << stats.journal_records
     << ", \"unsynced\": " << stats.journal_unsynced
     << "}, \"coalescing\": {\"executions\": " << stats.board.executions
     << ", \"coalesced\": " << stats.board.coalesced
     << ", \"memo_hits\": " << stats.board.memo_hits
     << ", \"memo_evictions\": " << stats.board.memo_evictions
     << ", \"memo_entries\": " << stats.board.memo_entries
     << ", \"inflight\": " << stats.board.inflight
     << ", \"abandoned\": " << stats.board.abandoned
     << "}, \"cache\": {\"hits\": " << stats.cache.hits
     << ", \"misses\": " << stats.cache.misses
     << ", \"evictions\": " << stats.cache.evictions
     << ", \"entries\": " << stats.cache.entries
     << ", \"hit_rate\": " << fmt_double(stats.cache.hit_rate())
     << ", \"shards\": [";
  for (std::size_t i = 0; i < stats.cache_shards.size(); ++i) {
    const rt::ArtifactCache::Stats& shard = stats.cache_shards[i];
    os << (i ? ", " : "") << "{\"hits\": " << shard.hits
       << ", \"misses\": " << shard.misses
       << ", \"evictions\": " << shard.evictions
       << ", \"entries\": " << shard.entries << "}";
  }
  os << "]}, \"executor\": {\"submitted\": " << stats.executor.submitted
     << ", \"executed\": " << stats.executor.executed
     << ", \"stolen\": " << stats.executor.stolen
     << ", \"queue_high_watermark\": " << stats.executor.queue_high_watermark
     << "}, \"tenants\": [";
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const TenantUsage& usage = stats.tenants[i].second;
    os << (i ? ", " : "") << "{\"tenant\": \""
       << json_escape(stats.tenants[i].first)
       << "\", \"weight\": " << fmt_double(usage.config.weight);
    if (usage.config.budget !=
        std::numeric_limits<double>::infinity())  // JSON has no inf
      os << ", \"budget\": " << fmt_double(usage.config.budget);
    os << ", \"charged\": " << fmt_double(usage.charged)
       << ", \"pending_points\": " << usage.pending_points
       << ", \"admitted\": " << usage.admitted
       << ", \"rejected\": " << usage.rejected
       << ", \"completed_points\": " << usage.completed_points << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hemo::serve
