#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "base/contracts.hpp"
#include "serve/protocol.hpp"

namespace hemo::serve {

namespace {

// %.9g, matching the campaign sinks, so the wire stream round-trips the
// same digits the CSV/JSON files carry.
std::string fmt_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

rt::ExecutorOptions executor_options(const ServeOptions& options) {
  rt::ExecutorOptions eo;
  eo.workers = options.workers;
  // The in-flight window must never hit the executor's queue bound:
  // pump_locked submits while holding the server mutex, and blocking
  // there on backpressure would stall every completion.
  eo.queue_capacity = std::max<std::size_t>(4096, options.max_inflight + 1);
  return eo;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      executor_(executor_options(options_)),
      max_inflight_(options_.max_inflight
                        ? options_.max_inflight
                        : 2 * static_cast<std::size_t>(executor_.workers())),
      admission_(options_.tenant_defaults),
      board_(options_.memo_capacity) {}

Server::~Server() {
  begin_shutdown();
  wait_idle();
  executor_.shutdown();
}

std::optional<std::string> Server::configure_tenant(
    const std::string& tenant, const TenantConfig& config) {
  if (std::optional<std::string> error = tenant_config_error(config))
    return error;
  std::lock_guard<std::mutex> lock(mu_);
  admission_.configure(tenant, config);
  dispatcher_.set_weight(tenant, config.weight);
  return std::nullopt;
}

Server::SubmitOutcome Server::submit(const std::string& tenant,
                                     const std::string& name,
                                     const std::vector<rt::SeriesSpec>& series,
                                     EventSink sink) {
  HEMO_EXPECTS(sink != nullptr);

  SubmitOutcome outcome;
  if (tenant.empty() || series.empty()) {
    outcome.reason = RejectReason::kBadRequest;
    outcome.detail = tenant.empty() ? "missing tenant" : "empty series list";
    reject_bad_request(outcome.detail, sink);
    return outcome;
  }

  // Phase 1, unlocked: lay out and price every point.  Pricing resolves
  // workloads through the shared cache, so a first-seen geometry is
  // voxelized here, outside the scheduling lock, and reused by execution.
  struct SeriesLayout {
    std::vector<sys::SchedulePoint> schedule;
    std::optional<rt::JobFailure> unavailable;
  };
  std::vector<SeriesLayout> layout(series.size());
  std::vector<std::vector<double>> point_costs(series.size());
  std::size_t total_points = 0;
  double total_cost = 0.0;
  for (std::size_t s = 0; s < series.size(); ++s) {
    layout[s].schedule = sys::piecewise_schedule(
        sys::system_spec(series[s].system).max_devices);
    layout[s].unavailable = rt::unavailable_failure(series[s]);
    point_costs[s].resize(layout[s].schedule.size(), 0.0);
    total_points += layout[s].schedule.size();
    if (layout[s].unavailable) continue;  // never priced, never executed
    for (std::size_t k = 0; k < layout[s].schedule.size(); ++k) {
      point_costs[s][k] =
          predicted_point_cost(cache_, series[s], layout[s].schedule[k]);
      total_cost += point_costs[s][k];
    }
  }

  // Phase 2, locked: admit, register, queue, pump.
  Touched touched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      ++counters_.rejected_shutting_down;
      outcome.reason = RejectReason::kShuttingDown;
      outcome.detail = "server is shutting down";
    } else {
      const AdmissionController::Decision decision = admission_.admit(
          tenant, total_cost, static_cast<int>(total_points));
      if (!decision.admitted) {
        switch (decision.reason) {
          case RejectReason::kQueueFull: ++counters_.rejected_queue_full; break;
          case RejectReason::kOverBudget: ++counters_.rejected_over_budget; break;
          default: ++counters_.rejected_bad_request; break;
        }
        outcome.reason = decision.reason;
        outcome.detail = decision.detail;
      } else {
        auto request = std::make_shared<RequestState>();
        request->id = ++next_request_id_;
        request->tenant = tenant;
        request->name = name.empty() ? "campaign" : name;
        request->series = series;
        request->point_costs = std::move(point_costs);
        request->total_points = total_points;
        request->cost = total_cost;
        request->start = std::chrono::steady_clock::now();
        request->sink = std::move(sink);
        requests_.emplace(request->id, request);
        ++counters_.requests_admitted;
        counters_.points_admitted += total_points;

        outcome.admitted = true;
        outcome.request_id = request->id;

        // Staged first, before any task exists: outbox sequencing then
        // guarantees no point event can reach the sink ahead of it.
        Event accepted;
        accepted.kind = Event::Kind::kAccepted;
        accepted.request_id = request->id;
        accepted.tenant = tenant;
        accepted.name = request->name;
        accepted.points = total_points;
        accepted.cost = total_cost;
        stage_locked(request, std::move(accepted), &touched);

        for (std::size_t s = 0; s < series.size(); ++s) {
          for (std::size_t k = 0; k < layout[s].schedule.size(); ++k) {
            if (layout[s].unavailable) {
              // The study never evaluated this combination: deliver the
              // same structured failure run_campaign records, with no
              // dispatch (attempts stays 0).
              rt::PointResult failed;
              failed.schedule = layout[s].schedule[k];
              failed.failure = layout[s].unavailable;
              record_point_locked({request->id, tenant, s, k}, failed,
                                  /*coalesced=*/false, &touched);
              continue;
            }
            PointTask task;
            task.request_id = request->id;
            task.tenant = tenant;
            task.series_index = s;
            task.point_index = k;
            task.series = series[s];
            task.schedule = layout[s].schedule[k];
            task.key = rt::point_key(series[s], layout[s].schedule[k]);
            dispatcher_.enqueue(std::move(task));
          }
        }
        pump_locked(&touched);
      }
    }
  }

  if (!outcome.admitted && sink) {
    Event rejected;
    rejected.kind = Event::Kind::kRejected;
    rejected.tenant = tenant;
    rejected.name = name;
    rejected.reason = outcome.reason;
    rejected.detail = outcome.detail;
    sink(rejected);  // no request registered: nothing to sequence against
  }
  drain(touched);
  return outcome;
}

void Server::reject_bad_request(const std::string& detail,
                                const EventSink& sink) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected_bad_request;
  }
  if (!sink) return;
  Event rejected;
  rejected.kind = Event::Kind::kRejected;
  rejected.reason = RejectReason::kBadRequest;
  rejected.detail = detail;
  sink(rejected);
}

void Server::pump_locked(Touched* touched) {
  // requires mu_ held
  PointTask task;
  while (inflight_ < max_inflight_ && dispatcher_.pop(&task)) {
    ++counters_.dispatched;
    const PointSubscriber subscriber{task.request_id, task.tenant,
                                     task.series_index, task.point_index};
    rt::PointResult memoized;
    const CoalescingBoard::Claim claim =
        board_.claim(task.key, subscriber, &memoized);
    switch (claim) {
      case CoalescingBoard::Claim::kExecute:
        ++inflight_;
        executor_.submit([this, task] {
          if (options_.execution_hook)
            options_.execution_hook(task.series, task.schedule);
          const rt::PointResult result = rt::price_point(
              cache_, task.series, task.schedule, options_.job);
          on_point_complete(task, result);
        });
        break;
      case CoalescingBoard::Claim::kMemoized:
        record_point_locked(subscriber, memoized, /*coalesced=*/true,
                            touched);
        break;
      case CoalescingBoard::Claim::kCoalesced:
        // Attached to the in-flight execution; delivered on completion.
        // No in-flight slot consumed: the window bounds executions.
        break;
    }
  }
}

void Server::record_point_locked(const PointSubscriber& subscriber,
                                 const rt::PointResult& result,
                                 bool coalesced, Touched* touched) {
  // requires mu_ held
  auto it = requests_.find(subscriber.request_id);
  HEMO_EXPECTS(it != requests_.end());
  const std::shared_ptr<RequestState> request = it->second;

  admission_.release_point(
      request->tenant,
      request->point_costs[subscriber.series_index][subscriber.point_index]);
  ++counters_.points_completed;
  ++request->done_points;
  if (!result.ok()) ++request->failed_points;

  Event point;
  point.kind = Event::Kind::kPoint;
  point.request_id = request->id;
  point.tenant = request->tenant;
  point.name = request->name;
  point.series_index = subscriber.series_index;
  point.point_index = subscriber.point_index;
  point.series = request->series[subscriber.series_index];
  point.result = result;
  point.coalesced = coalesced;
  stage_locked(request, std::move(point), touched);

  if (request->done_points == request->total_points) {
    Event done;
    done.kind = Event::Kind::kDone;
    done.request_id = request->id;
    done.tenant = request->tenant;
    done.name = request->name;
    done.points = request->total_points;
    done.cost = request->cost;
    done.failed = request->failed_points;
    done.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - request->start)
                      .count();
    stage_locked(request, std::move(done), touched);
    // The shared_ptr in *touched keeps the outbox alive through drain().
    requests_.erase(it);
    if (requests_.empty()) cv_idle_.notify_all();
  }
}

void Server::on_point_complete(const PointTask& task,
                               const rt::PointResult& result) {
  Touched touched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    const std::vector<PointSubscriber> subscribers =
        board_.complete(task.key, result);
    // The first subscriber claimed the execution; the rest coalesced
    // onto it and are marked as such in their events.
    for (std::size_t i = 0; i < subscribers.size(); ++i)
      record_point_locked(subscribers[i], result, /*coalesced=*/i > 0,
                          &touched);
    pump_locked(&touched);
  }
  drain(touched);
}

void Server::stage_locked(const std::shared_ptr<RequestState>& request,
                          Event event, Touched* touched) {
  // requires mu_ held
  request->outbox.push_back(std::move(event));
  for (const std::shared_ptr<RequestState>& seen : *touched)
    if (seen == request) return;
  touched->push_back(request);
}

void Server::drain(const Touched& touched) {
  for (const std::shared_ptr<RequestState>& request : touched) {
    std::unique_lock<std::mutex> lock(mu_);
    // One drainer at a time per request: a second thread arriving here
    // leaves its staged events to the active drainer's re-check below,
    // which preserves the staging order end to end.
    if (request->draining) continue;
    request->draining = true;
    while (!request->outbox.empty()) {
      std::deque<Event> batch;
      batch.swap(request->outbox);
      lock.unlock();
      for (const Event& event : batch) request->sink(event);
      lock.lock();
    }
    request->draining = false;
  }
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats out = counters_;
  out.queued = dispatcher_.queued();
  out.dispatched = dispatcher_.dispatched();
  out.board = board_.stats();
  out.cache = cache_.stats();
  out.cache_shards = cache_.shard_stats();
  out.executor = executor_.stats();
  for (const auto& [name, usage] : admission_.tenants())
    out.tenants.emplace_back(name, usage);
  return out;
}

void Server::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return requests_.empty(); });
}

void Server::begin_shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutting_down_ = true;
}

bool Server::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutting_down_;
}

// ---------------------------------------------------------------------------
// ServeHandle
// ---------------------------------------------------------------------------

ServeHandle::ServeHandle(Server& server, std::string tenant)
    : server_(server), tenant_(std::move(tenant)) {}

Server::SubmitOutcome ServeHandle::submit(
    const std::string& name, const std::vector<rt::SeriesSpec>& series) {
  const Server::SubmitOutcome outcome =
      server_.submit(tenant_, name, series, [this](const Event& event) {
        // Notify *under* the lock: a waiter that pops the done event may
        // destroy this handle the moment it can reacquire mu_, so the
        // notify must have returned by then.
        std::lock_guard<std::mutex> lock(mu_);
        events_.push_back(event);
        cv_.notify_all();
      });
  if (outcome.admitted) {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_[outcome.request_id] =
        Submitted{name.empty() ? "campaign" : name, series};
  }
  return outcome;
}

std::optional<Event> ServeHandle::next_event(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return !events_.empty(); }))
    return std::nullopt;
  Event event = std::move(events_.front());
  events_.pop_front();
  return event;
}

Event ServeHandle::pop_event_of_locked(std::unique_lock<std::mutex>& lock,
                                       std::uint64_t request_id) {
  // requires `lock` held on mu_
  for (;;) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->request_id != request_id) continue;
      Event event = std::move(*it);
      events_.erase(it);
      return event;
    }
    cv_.wait(lock);
  }
}

rt::CampaignResult ServeHandle::wait(std::uint64_t request_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto submitted = submitted_.find(request_id);
  HEMO_EXPECTS(submitted != submitted_.end() &&
               "wait() is only valid for an admitted request of this handle");

  // Pre-assign the slot layout exactly as run_campaign does, then fill
  // slots from point events as they arrive (any completion order).
  rt::CampaignResult result;
  result.name = submitted->second.name;
  result.workers = server_.workers();
  result.series.resize(submitted->second.series.size());
  for (std::size_t s = 0; s < result.series.size(); ++s) {
    result.series[s].spec = submitted->second.series[s];
    const std::vector<sys::SchedulePoint> schedule = sys::piecewise_schedule(
        sys::system_spec(submitted->second.series[s].system).max_devices);
    result.series[s].points.resize(schedule.size());
    for (std::size_t k = 0; k < schedule.size(); ++k)
      result.series[s].points[k].schedule = schedule[k];
  }
  submitted_.erase(submitted);

  for (;;) {
    const Event event = pop_event_of_locked(lock, request_id);
    if (event.kind == Event::Kind::kPoint) {
      result.series[event.series_index].points[event.point_index] =
          event.result;
    } else if (event.kind == Event::Kind::kDone) {
      result.wall_s = event.wall_s;
      break;
    }
  }
  lock.unlock();

  // Runtime metadata is the server's, shared across every tenant.
  const ServeStats stats = server_.stats();
  result.cache = stats.cache;
  result.cache_shards = stats.cache_shards;
  result.executor = stats.executor;
  return result;
}

// ---------------------------------------------------------------------------
// Wire serialization
// ---------------------------------------------------------------------------

std::string event_json(const Event& event) {
  std::ostringstream os;
  switch (event.kind) {
    case Event::Kind::kAccepted:
      os << "{\"event\": \"accepted\", \"request\": " << event.request_id
         << ", \"tenant\": \"" << json_escape(event.tenant)
         << "\", \"name\": \"" << json_escape(event.name)
         << "\", \"points\": " << event.points
         << ", \"cost\": " << fmt_double(event.cost) << "}";
      break;
    case Event::Kind::kRejected:
      os << "{\"event\": \"rejected\", \"tenant\": \""
         << json_escape(event.tenant) << "\", \"reason\": \""
         << reject_reason_name(event.reason) << "\", \"detail\": \""
         << json_escape(event.detail) << "\"}";
      break;
    case Event::Kind::kPoint: {
      const rt::PointResult& p = event.result;
      os << "{\"event\": \"point\", \"request\": " << event.request_id
         << ", \"tenant\": \"" << json_escape(event.tenant)
         << "\", \"series\": " << event.series_index
         << ", \"point\": " << event.point_index << ", \"label\": \""
         << json_escape(rt::series_label(event.series))
         << "\", \"devices\": " << p.schedule.devices
         << ", \"size_multiplier\": " << p.schedule.size_multiplier
         << ", \"attempts\": " << p.attempts;
      if (p.ok()) {
        os << ", \"status\": \"" << (p.degraded() ? "degraded" : "ok")
           << "\", \"mflups\": " << fmt_double(p.sim.mflups)
           << ", \"iteration_s\": " << fmt_double(p.sim.iteration_s)
           << ", \"predicted_mflups\": " << fmt_double(p.prediction.mflups);
      } else {
        os << ", \"status\": \""
           << (p.failure->timed_out ? "timeout" : "failed")
           << "\", \"error\": \"" << json_escape(p.failure->message) << "\"";
      }
      os << ", \"coalesced\": " << (event.coalesced ? "true" : "false")
         << "}";
      break;
    }
    case Event::Kind::kDone:
      os << "{\"event\": \"done\", \"request\": " << event.request_id
         << ", \"tenant\": \"" << json_escape(event.tenant)
         << "\", \"points\": " << event.points
         << ", \"failed\": " << event.failed
         << ", \"wall_s\": " << fmt_double(event.wall_s) << "}";
      break;
  }
  return os.str();
}

std::string stats_json(const ServeStats& stats) {
  std::ostringstream os;
  os << "{\"event\": \"stats\", \"requests\": {\"admitted\": "
     << stats.requests_admitted
     << ", \"rejected\": " << stats.requests_rejected()
     << ", \"rejected_bad_request\": " << stats.rejected_bad_request
     << ", \"rejected_queue_full\": " << stats.rejected_queue_full
     << ", \"rejected_over_budget\": " << stats.rejected_over_budget
     << ", \"rejected_shutting_down\": " << stats.rejected_shutting_down
     << "}, \"points\": {\"admitted\": " << stats.points_admitted
     << ", \"completed\": " << stats.points_completed
     << ", \"queued\": " << stats.queued
     << ", \"dispatched\": " << stats.dispatched
     << "}, \"coalescing\": {\"executions\": " << stats.board.executions
     << ", \"coalesced\": " << stats.board.coalesced
     << ", \"memo_hits\": " << stats.board.memo_hits
     << ", \"memo_evictions\": " << stats.board.memo_evictions
     << ", \"memo_entries\": " << stats.board.memo_entries
     << ", \"inflight\": " << stats.board.inflight
     << "}, \"cache\": {\"hits\": " << stats.cache.hits
     << ", \"misses\": " << stats.cache.misses
     << ", \"evictions\": " << stats.cache.evictions
     << ", \"entries\": " << stats.cache.entries
     << ", \"hit_rate\": " << fmt_double(stats.cache.hit_rate())
     << ", \"shards\": [";
  for (std::size_t i = 0; i < stats.cache_shards.size(); ++i) {
    const rt::ArtifactCache::Stats& shard = stats.cache_shards[i];
    os << (i ? ", " : "") << "{\"hits\": " << shard.hits
       << ", \"misses\": " << shard.misses
       << ", \"evictions\": " << shard.evictions
       << ", \"entries\": " << shard.entries << "}";
  }
  os << "]}, \"executor\": {\"submitted\": " << stats.executor.submitted
     << ", \"executed\": " << stats.executor.executed
     << ", \"stolen\": " << stats.executor.stolen
     << ", \"queue_high_watermark\": " << stats.executor.queue_high_watermark
     << "}, \"tenants\": [";
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const TenantUsage& usage = stats.tenants[i].second;
    os << (i ? ", " : "") << "{\"tenant\": \""
       << json_escape(stats.tenants[i].first)
       << "\", \"weight\": " << fmt_double(usage.config.weight);
    if (usage.config.budget !=
        std::numeric_limits<double>::infinity())  // JSON has no inf
      os << ", \"budget\": " << fmt_double(usage.config.budget);
    os << ", \"charged\": " << fmt_double(usage.charged)
       << ", \"pending_points\": " << usage.pending_points
       << ", \"admitted\": " << usage.admitted
       << ", \"rejected\": " << usage.rejected
       << ", \"completed_points\": " << usage.completed_points << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hemo::serve
