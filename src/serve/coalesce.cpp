#include "serve/coalesce.hpp"

#include <algorithm>

#include "base/contracts.hpp"

namespace hemo::serve {

CoalescingBoard::CoalescingBoard(std::size_t memo_capacity)
    : memo_capacity_(std::max<std::size_t>(1, memo_capacity)) {}

CoalescingBoard::Claim CoalescingBoard::claim(
    const std::string& key, const PointSubscriber& subscriber,
    rt::PointResult* memoized) {
  auto flight = inflight_.find(key);
  if (flight != inflight_.end()) {
    flight->second.subscribers.push_back(subscriber);
    ++stats_.coalesced;
    return Claim::kCoalesced;
  }
  auto memo = memo_.find(key);
  if (memo != memo_.end()) {
    memo->second.last_used = ++tick_;
    *memoized = memo->second.result;
    ++stats_.memo_hits;
    return Claim::kMemoized;
  }
  inflight_.emplace(key, InFlight{{subscriber}});
  ++stats_.executions;
  return Claim::kExecute;
}

std::vector<PointSubscriber> CoalescingBoard::complete(
    const std::string& key, const rt::PointResult& result) {
  auto flight = inflight_.find(key);
  HEMO_EXPECTS(flight != inflight_.end());
  std::vector<PointSubscriber> subscribers =
      std::move(flight->second.subscribers);
  inflight_.erase(flight);

  if (result.ok()) {  // failures are not memoized: later requests retry
    memo_[key] = MemoEntry{result, ++tick_};
    evict_memo_excess();
  }
  return subscribers;
}

const std::vector<PointSubscriber>* CoalescingBoard::inflight_subscribers(
    const std::string& key) const {
  const auto flight = inflight_.find(key);
  return flight != inflight_.end() ? &flight->second.subscribers : nullptr;
}

std::vector<PointSubscriber> CoalescingBoard::abandon(const std::string& key) {
  auto flight = inflight_.find(key);
  HEMO_EXPECTS(flight != inflight_.end());
  std::vector<PointSubscriber> subscribers =
      std::move(flight->second.subscribers);
  inflight_.erase(flight);
  ++stats_.abandoned;
  return subscribers;
}

void CoalescingBoard::evict_memo_excess() {
  while (memo_.size() > memo_capacity_) {
    auto victim = memo_.begin();
    for (auto it = memo_.begin(); it != memo_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    memo_.erase(victim);
    ++stats_.memo_evictions;
  }
}

CoalescingBoard::Stats CoalescingBoard::stats() const {
  Stats out = stats_;
  out.memo_entries = memo_.size();
  out.inflight = inflight_.size();
  return out;
}

}  // namespace hemo::serve
