#pragma once
// TCP loopback front-end for the hemo-serve campaign service: accepts
// connections, reads one JSON request per line (serve/protocol.hpp),
// routes it to the shared Server, and streams the request's event lines
// back on the same connection.
//
// One reader thread per connection; event sinks write from executor
// worker threads concurrently, serialized per connection by a write
// mutex so event lines never interleave.  A connection that disappears
// mid-request is tolerated: its remaining events are dropped (writes to
// the dead socket are ignored), the work itself completes normally and
// stays memoized for the next asker.
//
// This layer holds no scheduling state — everything interesting lives in
// serve::Server; tests exercise that directly through ServeHandle and
// keep only a smoke-level suite here.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace hemo::serve {

struct SocketOptions {
  /// Port to listen on; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
};

class SocketServer {
 public:
  /// Binds and starts accepting on 127.0.0.1.  `server` must outlive
  /// this object.  Aborts if the port cannot be bound.
  SocketServer(Server& server, SocketOptions options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound port (the chosen one when options.port was 0).
  std::uint16_t port() const { return port_; }  // immutable after construction

  /// Blocks until a client sends {"op": "shutdown"} or
  /// request_shutdown() is called.
  void wait_shutdown();

  /// Out-of-band shutdown trigger (the SIGINT/SIGTERM path of the CLI):
  /// stops the Server's intake and releases wait_shutdown().  Safe from
  /// any thread — but NOT from a signal handler directly; handlers hand
  /// it to a watcher thread via a self-pipe (see tools/hemo_serve.cpp).
  void request_shutdown();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  /// Per-connection write end, shared with in-flight event sinks; keeps
  /// the fd mutex alive until the last event of a dead connection drops.
  struct Connection {
    std::mutex mu;
    int fd = -1;      // guarded by mu; -1 once closed
    void write_line(const std::string& line);
    /// Wakes a blocked reader without releasing the descriptor number,
    /// so a concurrent recv() can never land on a recycled fd.
    void shutdown_fd();
    /// Releases the descriptor.  Only safe where no reader can still
    /// hold the fd value: the reader thread's own exit path, or before
    /// a reader thread was ever started.
    void close_fd();
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> connection);
  void handle_line(const std::string& line,
                   const std::shared_ptr<Connection>& connection);

  Server& server_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::mutex mu_;
  std::condition_variable cv_shutdown_;
  bool shutdown_requested_ = false;
  bool stopping_ = false;
  std::vector<std::thread> threads_;  // accept loop + one per connection
  std::vector<std::shared_ptr<Connection>> connections_;
  std::thread accept_thread_;
};

/// Minimal blocking line-oriented client for tests and the CLI: connects
/// to 127.0.0.1:port, sends request lines, reads event lines.
class SocketClient {
 public:
  /// Connects to loopback:port.  On failure the client is left
  /// disconnected — check connected() before use; send/recv on a
  /// disconnected client are no-ops that report EOF.
  explicit SocketClient(std::uint16_t port);
  ~SocketClient();

  bool connected() const { return fd_ >= 0; }

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  void send_line(const std::string& line);

  /// Reads the next newline-terminated line (without the newline).
  /// False on EOF.
  bool recv_line(std::string* line);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace hemo::serve
