#pragma once
// Admission control for the hemo-serve campaign service: every submit is
// priced before it is accepted, and a tenant can only hold a bounded
// amount of predicted work in the system at once.
//
// Pricing: the cost of a request is the sum over its points of the
// paper's ideal iteration time (perf::PerformanceModel, Eqs. 1-4)
// multiplied by the point's device count — predicted device-seconds, the
// same quantity the miniLB-style per-point cost model prices (PAPERS.md).
// A cheap interactive probe on 2 devices and a 1024-device weak-scaling
// sweep therefore charge proportionally to the capacity they would
// actually occupy, not per request.
//
// Budget model: a tenant's budget is the predicted cost it may have
// *outstanding* (admitted but not yet completed).  Admission charges the
// request's cost; completion releases it.  This is deliberately
// wall-clock-free — deterministic to test, and self-correcting: a tenant
// that floods the service is throttled until its own work drains.
//
// The controller is plain data guarded by its owner (the Server's one
// mutex); it does no locking of its own.

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>

#include "rt/cache.hpp"
#include "rt/campaign.hpp"
#include "sys/hardware.hpp"

namespace hemo::serve {

/// Why a submit was turned away.  Wire spelling via reject_reason_name.
enum class RejectReason {
  kBadRequest,    // malformed JSON, unknown figure/series, no tenant
  kQueueFull,     // tenant's pending-point bound exceeded
  kOverBudget,    // predicted cost exceeds the tenant's remaining budget
  kShuttingDown,  // server no longer accepts work
  kOverloaded,    // load shed: backlog/journal thresholds crossed (retryable)
};

/// True when the client may simply retry the same request later (the
/// rejection reflects transient server state, not the request itself).
bool reject_retryable(RejectReason reason);

const char* reject_reason_name(RejectReason reason);

struct TenantConfig {
  /// Fair-share weight: a tenant with weight 2 is dispatched twice as
  /// often as a tenant with weight 1 while both have queued points.
  double weight = 1.0;
  /// Max predicted cost (device-seconds) admitted but not yet completed.
  double budget = std::numeric_limits<double>::infinity();
  /// Max points admitted but not yet completed.
  int max_pending_points = 4096;
};

/// Validates a TenantConfig as *client input*: weight must be a positive
/// finite number (an infinite weight would monopolize fair share),
/// budget positive (infinity = unlimited is fine), max_pending_points at
/// least 1.  Returns the rejection detail, or nullopt when valid.
/// Callers holding client-supplied configs must check this instead of
/// relying on AdmissionController::configure's contract check, which
/// treats an invalid config as a programmer error.
std::optional<std::string> tenant_config_error(const TenantConfig& config);

/// Live accounting for one tenant.
struct TenantUsage {
  TenantConfig config;
  double charged = 0.0;      // outstanding predicted cost
  int pending_points = 0;    // outstanding points
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed_points = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(TenantConfig defaults = {});

  /// Sets (or replaces) one tenant's config; existing charges carry over.
  void configure(const std::string& tenant, const TenantConfig& config);

  struct Decision {
    bool admitted = false;
    RejectReason reason = RejectReason::kBadRequest;
    std::string detail;
  };

  /// Decides one request of `points` points with predicted cost `cost`,
  /// charging the tenant on admission.
  Decision admit(const std::string& tenant, double cost, int points);

  /// Releases one completed point's share; `cost` must be the per-point
  /// cost charged at admission (the server tracks it per request).
  void release_point(const std::string& tenant, double cost);

  /// Re-charges a journaled request during crash recovery, bypassing the
  /// admit() checks: the request was already admitted (and the client
  /// told so) by the previous process, so the resumed server must honor
  /// it even if budgets have since been tightened.  Replayed/re-executed
  /// completions then release the charge through release_point as usual.
  void restore(const std::string& tenant, double cost, int points);

  /// The fair-share weight in effect for `tenant` (defaults included);
  /// read by the load shedder to exempt high-priority tenants.
  double weight(const std::string& tenant) const;

  const TenantUsage& usage(const std::string& tenant);
  const std::map<std::string, TenantUsage>& tenants() const {
    return tenants_;
  }

 private:
  TenantUsage& usage_of(const std::string& tenant);  // creates on first use

  TenantConfig defaults_;
  std::map<std::string, TenantUsage> tenants_;  // ordered: stable reports
};

/// Predicted cost of one evaluation point in device-seconds: the paper's
/// ideal iteration time (Eqs. 1-4) for the point's workload at its device
/// count, times the devices it occupies.  The workload is resolved
/// through `cache`, so pricing shares the voxelization with execution.
double predicted_point_cost(rt::ArtifactCache& cache,
                            const rt::SeriesSpec& series,
                            const sys::SchedulePoint& schedule);

}  // namespace hemo::serve
