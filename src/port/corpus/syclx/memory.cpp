// HARVEY mini-corpus: device memory management.

#include "common.h"

namespace harveyx {

void allocate_state(DeviceState* state, std::int64_t n_points,
                    std::int64_t halo_values) {
  state->n_points = n_points;
  const std::size_t f_bytes =
      static_cast<std::size_t>(kQ) * n_points * sizeof(double);
  DPCTX_CHECK(dpctx::malloc_device(reinterpret_cast<void**>(&state->f_old), f_bytes));
  DPCTX_CHECK(dpctx::malloc_device(reinterpret_cast<void**>(&state->f_new), f_bytes));
  DPCTX_CHECK(dpctx::malloc_device(reinterpret_cast<void**>(&state->adjacency),
                          static_cast<std::size_t>(kQ) * n_points *
                              sizeof(std::int64_t)));
  DPCTX_CHECK(dpctx::malloc_device(reinterpret_cast<void**>(&state->node_type),
                          static_cast<std::size_t>(n_points)));
  DPCTX_CHECK(dpctx::malloc_device(reinterpret_cast<void**>(&state->reduce_scratch),
                          n_points * sizeof(double)));
  DPCTX_CHECK(dpctx::memset(state->node_type, 0,
                          static_cast<std::size_t>(n_points)));
  allocate_comm_buffers(state, halo_values);
}

void free_state(DeviceState* state) {
  DPCTX_CHECK(dpctx::free(state->f_old));
  DPCTX_CHECK(dpctx::free(state->f_new));
  // Adjacency, node types and scratch share one cleanup path; any error
  // here is fatal to the run.
  if (dpctx::free(state->adjacency) != 0 ||
      dpctx::free(state->node_type) != 0 ||
      dpctx::free(state->reduce_scratch) != 0) {
    std::fprintf(stderr, "teardown failed\n");
    std::abort();
  }
  release_comm_buffers(state);
  *state = DeviceState{};
}

}  // namespace harveyx
