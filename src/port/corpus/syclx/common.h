#pragma once
// HARVEY mini-corpus, CUDA dialect: shared device state and the error
// check macro used throughout the legacy code base.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "port/dpctx.hpp"

#define DPCTX_CHECK(expr)                                   \
  do {                                                      \
    try {                                                   \
      (void)(expr);                                         \
    } catch (const hemo::hal::syclx::exception& e_) {       \
      std::fprintf(stderr, "SYCL error %s at %s:%d\n",   \
                   e_.what(), __FILE__, __LINE__);          \
      std::abort();                                         \
    }                                                       \
  } while (0)

namespace harveyx {

constexpr int kQ = 19;

// All device allocations of one simulation rank.
struct DeviceState {
  double* f_old = nullptr;
  double* f_new = nullptr;
  std::int64_t* adjacency = nullptr;
  std::uint8_t* node_type = nullptr;
  std::int64_t n_points = 0;

  double omega = 1.0;
  double force_z = 0.0;
  double inlet_velocity = 0.0;
  double outlet_density = 1.0;

  double* send_buffer = nullptr;
  double* recv_buffer = nullptr;
  std::int64_t halo_values = 0;

  double* reduce_scratch = nullptr;
};

struct RunConfig {
  int nx = 8;
  int ny = 8;
  int nz = 8;
  int steps = 10;
  double tau = 1.0;
  double force_z = 1e-6;
};

// memory.cpp
void allocate_state(DeviceState* state, std::int64_t n_points,
                    std::int64_t halo_values);
void free_state(DeviceState* state);

// adjacency.cpp
void upload_periodic_box_adjacency(DeviceState* state, int nx, int ny, int nz);

// distribution_init.cpp
void initialize_distributions(DeviceState* state, double rho0);

// stream_collide.cpp
void run_stream_collide(DeviceState* state);
void swap_distributions(DeviceState* state);

// collision.cpp / streaming.cpp / bounce_back.cpp
void run_collision_only(DeviceState* state);
void run_streaming_only(DeviceState* state);
void apply_bounce_back(DeviceState* state);

// inlet.cpp / outlet.cpp
void apply_inlet_profile(DeviceState* state, double velocity);
void apply_outlet_pressure(DeviceState* state, double density);

// macroscopic.cpp / forcing.cpp
void compute_macroscopic(DeviceState* state, double* rho_out, double* ux_out);
void apply_body_force(DeviceState* state, double gz);

// halo_pack.cpp / halo_unpack.cpp / comm_buffers.cpp
void pack_halo(DeviceState* state, const std::int64_t* indices_device);
void unpack_halo(DeviceState* state, const std::int64_t* indices_device);
void allocate_comm_buffers(DeviceState* state, std::int64_t halo_values);
void release_comm_buffers(DeviceState* state);

// reduce_mass.cpp / reduce_momentum.cpp
double total_mass(DeviceState* state);
double total_momentum_z(DeviceState* state);

// wall_shear.cpp
double pulsatile_scale(double phase);
void accumulate_wall_shear(DeviceState* state, double phase, double* shear_out);

// geometry_io.cpp / constants.cpp / checkpoint.cpp / vtk_output.cpp
void upload_node_types(DeviceState* state, const std::uint8_t* host_types);
void upload_lattice_constants();
void write_checkpoint(DeviceState* state, double* host_scratch);
void read_checkpoint(DeviceState* state, const double* host_data);
void export_density_slice(DeviceState* state, double* host_slice,
                          std::int64_t slice_points);

// timers.cpp / device_query.cpp / managed.cpp / streams.cpp
void synchronize_for_timing();
void configure_device();
double* allocate_managed_field(std::int64_t n_points);
void release_managed_field(double* field);
void setup_streams(dpctx::stream* compute, dpctx::stream* copy);
void teardown_streams(dpctx::stream compute, dpctx::stream copy);

// main.cpp
double run_simulation(const RunConfig& config);

}  // namespace harveyx
