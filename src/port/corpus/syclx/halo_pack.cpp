// HARVEY mini-corpus: halo packing.  Three launches per exchange: the
// face values, then the edge and corner remainders (separate passes keep
// the index lists sorted for coalesced reads).

#include "common.h"
#include "kernels.h"

namespace harveyx {

void pack_halo(DeviceState* state, const std::int64_t* indices_device) {
  if (state->halo_values == 0) return;

  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;

  const std::int64_t faces = (state->halo_values * 3) / 4;
  const std::int64_t edges = (state->halo_values - faces) / 2;
  const std::int64_t corners = state->halo_values - faces - edges;

  PackHaloKernel face{state->f_old, indices_device, state->send_buffer,
                      faces};
  grid_dim.x = static_cast<unsigned int>((faces + 255) / 256);
  dpctx::parallel_for(grid_dim, block_dim, face);
  DPCTX_CHECK(dpctx::get_last_error());

  PackHaloKernel edge{state->f_old, indices_device + faces,
                      state->send_buffer + faces, edges};
  grid_dim.x = static_cast<unsigned int>((edges + 255) / 256);
  if (edges > 0) {
    dpctx::parallel_for(grid_dim, block_dim, edge);
    DPCTX_CHECK(dpctx::get_last_error());
  }

  PackHaloKernel corner{state->f_old, indices_device + faces + edges,
                        state->send_buffer + faces + edges, corners};
  grid_dim.x = static_cast<unsigned int>((corners + 255) / 256);
  if (corners > 0) {
    dpctx::parallel_for(grid_dim, block_dim, corner);
    DPCTX_CHECK(dpctx::get_last_error());
  }

  DPCTX_CHECK(dpctx::device_synchronize());
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
