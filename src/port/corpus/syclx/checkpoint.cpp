// HARVEY mini-corpus: checkpoint save/restore of the distribution state.

#include "common.h"

namespace harveyx {

void write_checkpoint(DeviceState* state, double* host_scratch) {
  const std::size_t bytes = static_cast<std::size_t>(kQ) *
                            static_cast<std::size_t>(state->n_points) *
                            sizeof(double);
  DPCTX_CHECK(dpctx::device_synchronize());
  DPCTX_CHECK(dpctx::memcpy(host_scratch, state->f_old, bytes,
                          dpctx::device_to_host));
}

void read_checkpoint(DeviceState* state, const double* host_data) {
  const std::size_t bytes = static_cast<std::size_t>(kQ) *
                            static_cast<std::size_t>(state->n_points) *
                            sizeof(double);
  DPCTX_CHECK(dpctx::memcpy(state->f_old, host_data, bytes,
                          dpctx::host_to_device));
  DPCTX_CHECK(dpctx::memcpy(state->f_new, host_data, bytes,
                          dpctx::host_to_device));
}

}  // namespace harveyx
