// HARVEY mini-corpus: simulation driver.  Runs a body-force-driven
// periodic box for a configured number of steps and returns the final
// axial momentum (the quantity the port-equivalence tests compare).

#include <vector>

#include "common.h"

namespace harveyx {

double run_simulation(const RunConfig& config) {
  configure_device();
  upload_lattice_constants();

  const std::int64_t n = static_cast<std::int64_t>(config.nx) * config.ny *
                         config.nz;
  DeviceState state;
  allocate_state(&state, n, /*halo_values=*/0);
  state.omega = 1.0 / config.tau;

  upload_periodic_box_adjacency(&state, config.nx, config.ny, config.nz);
  initialize_distributions(&state, 1.0);
  apply_body_force(&state, config.force_z);

  dpctx::stream compute = 0;
  dpctx::stream copy = 0;
  setup_streams(&compute, &copy);
  DPCTX_CHECK(dpctx::stream_synchronize(compute));

  DPCTX_CHECK(dpctx::device_synchronize());
  const double mass_before = total_mass(&state);
  for (int step = 0; step < config.steps; ++step) {
    run_stream_collide(&state);
    swap_distributions(&state);
  }
  DPCTX_CHECK(dpctx::get_last_error());
  synchronize_for_timing();

  const double mass_after = total_mass(&state);
  if (mass_after < 0.999 * mass_before || mass_after > 1.001 * mass_before) {
    std::fprintf(stderr, "mass conservation violated: %f -> %f\n",
                 mass_before, mass_after);
    std::abort();
  }

  const double momentum = total_momentum_z(&state);

  teardown_streams(compute, copy);
  DPCTX_CHECK(dpctx::device_synchronize());
  free_state(&state);
  return momentum;
}

}  // namespace harveyx
