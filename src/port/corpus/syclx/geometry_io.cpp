// HARVEY mini-corpus: node-type upload from the host-side geometry
// pipeline.

#include <vector>

#include "common.h"

namespace harveyx {

void upload_node_types(DeviceState* state, const std::uint8_t* host_types) {
  DPCTX_CHECK(dpctx::memcpy(state->node_type, host_types,
                          static_cast<std::size_t>(state->n_points),
                          dpctx::host_to_device));
  DPCTX_CHECK(dpctx::device_synchronize());

  // Round-trip verification: geometry corruption at upload time is far
  // cheaper to catch here than as NaNs a thousand steps later.
  std::vector<std::uint8_t> verify(static_cast<std::size_t>(state->n_points));
  DPCTX_CHECK(dpctx::memcpy(verify.data(), state->node_type, verify.size(),
                          dpctx::device_to_host));
  for (std::size_t i = 0; i < verify.size(); ++i) {
    if (verify[i] != host_types[i]) {
      std::fprintf(stderr, "node type upload mismatch at %zu\n", i);
      std::abort();
    }
  }
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
