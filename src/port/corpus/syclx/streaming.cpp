// HARVEY mini-corpus: standalone streaming (gather) pass.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_streaming_only(DeviceState* state) {
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 128;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 127) / 128);

  StreamOnlyKernel kernel{kernel_args(*state)};
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
