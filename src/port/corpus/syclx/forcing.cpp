// HARVEY mini-corpus: body-force configuration (Guo forcing is applied
// inside the collision kernel; this module stages the force field).

#include "common.h"
#include "kernels.h"

namespace harveyx {

void apply_body_force(DeviceState* state, double gz) {
  state->force_z = gz;

  // Warm the kernel pipeline once so the new force constant reaches every
  // cached launch configuration.
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 64;
  grid_dim.x = 1;

  ZeroFieldKernel probe{state->reduce_scratch, 1};
  dpctx::parallel_for(grid_dim, block_dim, probe);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
