// HARVEY mini-corpus: the fused stream-collide update, split over three
// launches (bulk, then two halves of the boundary layer) as the
// production scheduler does to overlap communication.

#include <utility>

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_stream_collide(DeviceState* state) {
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;

  StreamCollideKernel kernel{kernel_args(*state)};

  // Bulk pass over the full range.
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());

  // Touch-up passes: re-run the head slab after the halo has arrived,
  // by shrinking the launch geometry only (the kernel still carries the
  // full SoA stride).  Idempotent because the pull gather reads f_old.
  const std::int64_t slab = (state->n_points + 7) / 8;
  grid_dim.x = static_cast<unsigned int>((slab + 255) / 256);
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());

  DPCTX_CHECK(dpctx::device_synchronize());
}

void swap_distributions(DeviceState* state) {
  std::swap(state->f_old, state->f_new);
  DPCTX_CHECK(dpctx::get_last_error());
}

}  // namespace harveyx
