// HARVEY mini-corpus: explicit bounce-back sweep.  In the fused kernel
// the wall reflection is folded into the gather; this standalone pass is
// kept for the two-pass pipeline and for regression comparisons.

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

// Re-gathers wall-adjacent points only (node type is irrelevant here: a
// wall is a missing upstream neighbor).
struct BounceBackKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    for (int q = 0; q < kQ; ++q) {
      if (args.adjacency[static_cast<std::int64_t>(q) * args.n + i] >= 0)
        continue;
      args.f_out[static_cast<std::int64_t>(q) * args.n + i] =
          args.f_in[static_cast<std::int64_t>(hemo::lbm::opposite(q)) *
                        args.n +
                    i];
    }
  }
};

}  // namespace

void apply_bounce_back(DeviceState* state) {
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  BounceBackKernel kernel{kernel_args(*state)};
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
