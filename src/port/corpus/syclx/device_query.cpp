// HARVEY mini-corpus: device configuration at startup.  The heap-limit
// call is CUDA-specific (DPCT: unsupported feature).

#include "common.h"

namespace harveyx {

void configure_device() {
  // Sparse geometries allocate adjacency lists from the device heap.
  /* DPCTX1007 removed: cudaxDeviceSetLimit(cudaxLimitMallocHeapSize, 1ull << 30); */

  DPCTX_CHECK(dpctx::device_synchronize());
  void* probe = nullptr;
  DPCTX_CHECK(dpctx::malloc_device(&probe, 256));
  DPCTX_CHECK(dpctx::free(probe));
}

}  // namespace harveyx
