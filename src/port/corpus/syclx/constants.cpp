// HARVEY mini-corpus: lattice constants uploaded to device-resident
// symbol storage, plus the L1-preference hint for the gather-heavy
// kernels (a CUDA-only knob: DPCT classifies it as unsupported).

#include <array>

#include "common.h"
#include "lbm/d3q19.hpp"

namespace harveyx {

namespace {

void* g_weights_symbol = nullptr;
void* g_velocities_symbol = nullptr;

}  // namespace

void upload_lattice_constants() {
  if (g_weights_symbol == nullptr) {
    DPCTX_CHECK(dpctx::malloc_device(&g_weights_symbol, kQ * sizeof(double)));
    DPCTX_CHECK(dpctx::malloc_device(&g_velocities_symbol, kQ * 3 * sizeof(int)));
  }

  std::array<double, kQ> weights{};
  std::array<int, kQ * 3> velocities{};
  for (int q = 0; q < kQ; ++q) {
    weights[static_cast<std::size_t>(q)] = hemo::lbm::kWeights[q];
    for (int a = 0; a < 3; ++a)
      velocities[static_cast<std::size_t>(q * 3 + a)] = hemo::lbm::c(q, a);
  }

  DPCTX_CHECK(dpctx::memcpy_to_symbol(g_weights_symbol, weights.data(),
                                  weights.size() * sizeof(double)));
  DPCTX_CHECK(dpctx::memcpy_to_symbol(g_velocities_symbol, velocities.data(),
                                  velocities.size() * sizeof(int)));

  // The stream-collide gather is bandwidth-bound; prefer L1 over shared.
  /* DPCTX1007 removed: cudaxFuncSetCacheConfig(g_weights_symbol, cudaxFuncCachePreferL1); */
}

}  // namespace harveyx
