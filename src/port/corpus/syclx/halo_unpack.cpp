// HARVEY mini-corpus: halo unpacking (receive side of the exchange).

#include "common.h"
#include "kernels.h"

namespace harveyx {

void unpack_halo(DeviceState* state, const std::int64_t* indices_device) {
  if (state->halo_values == 0) return;

  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;

  const std::int64_t bulk = (state->halo_values * 3) / 4;
  const std::int64_t tail = state->halo_values - bulk;

  UnpackHaloKernel head{state->f_old, indices_device, state->recv_buffer,
                        bulk};
  grid_dim.x = static_cast<unsigned int>((bulk + 255) / 256);
  dpctx::parallel_for(grid_dim, block_dim, head);
  DPCTX_CHECK(dpctx::get_last_error());

  UnpackHaloKernel rest{state->f_old, indices_device + bulk,
                        state->recv_buffer + bulk, tail};
  grid_dim.x = static_cast<unsigned int>((tail + 255) / 256);
  if (tail > 0) {
    dpctx::parallel_for(grid_dim, block_dim, rest);
    DPCTX_CHECK(dpctx::get_last_error());
  }

  DPCTX_CHECK(dpctx::device_synchronize());
  // The unpack must land before the boundary touch-up passes read it.
  DPCTX_CHECK(dpctx::stream_synchronize(0));
  DPCTX_CHECK(dpctx::get_last_error());
}

}  // namespace harveyx
