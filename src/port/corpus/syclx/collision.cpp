// HARVEY mini-corpus: standalone BGK collision pass (two-pass pipeline).

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_collision_only(DeviceState* state) {
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 128;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 127) / 128);

  CollideOnlyKernel kernel{kernel_args(*state)};
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());
  // Collision operates in place on f_new; mark completion for profiling.
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
