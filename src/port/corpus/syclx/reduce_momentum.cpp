// HARVEY mini-corpus: axial-momentum reduction (flow-rate monitor).

#include <vector>

#include "common.h"
#include "kernels.h"

namespace harveyx {

double total_momentum_z(DeviceState* state) {
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  PointMomentumZKernel kernel{state->f_old, state->reduce_scratch,
                              state->n_points};
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());

  std::vector<double> host(static_cast<std::size_t>(state->n_points));
  DPCTX_CHECK(dpctx::memcpy(host.data(), state->reduce_scratch,
                          host.size() * sizeof(double),
                          dpctx::device_to_host));
  double momentum = 0.0;
  for (double m : host) momentum += m;
  DPCTX_CHECK(dpctx::stream_synchronize(0));
  return momentum;
}

}  // namespace harveyx
