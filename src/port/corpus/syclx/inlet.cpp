// HARVEY mini-corpus: velocity-inlet sweep (Zou-He completion happens in
// the fused kernel; this pass updates the prescribed velocity field).

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct InletStampKernel {
  hemo::lbm::KernelArgs args;
  double velocity;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    if (args.node_type[i] !=
        static_cast<std::uint8_t>(hemo::lbm::NodeType::kVelocityInlet))
      return;
    for (int q = 0; q < kQ; ++q)
      args.f_out[static_cast<std::int64_t>(q) * args.n + i] =
          hemo::lbm::equilibrium(q, 1.0, 0.0, 0.0, velocity);
  }
};

}  // namespace

void apply_inlet_profile(DeviceState* state, double velocity) {
  state->inlet_velocity = velocity;

  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  InletStampKernel kernel{kernel_args(*state), velocity};
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());
  // Inlets feed the waveform monitor; make sure its staging area exists.
  DPCTX_CHECK(dpctx::memset(state->reduce_scratch, 0,
                          static_cast<std::size_t>(state->n_points) *
                              sizeof(double)));
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
