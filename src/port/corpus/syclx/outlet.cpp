// HARVEY mini-corpus: pressure-outlet sweep.

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct OutletStampKernel {
  hemo::lbm::KernelArgs args;
  double density;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    const auto type = args.node_type[i];
    if (type != static_cast<std::uint8_t>(
                    hemo::lbm::NodeType::kPressureOutlet) &&
        type != static_cast<std::uint8_t>(
                    hemo::lbm::NodeType::kPressureOutletLow))
      return;
    for (int q = 0; q < kQ; ++q)
      args.f_out[static_cast<std::int64_t>(q) * args.n + i] =
          hemo::lbm::equilibrium(q, density, 0.0, 0.0, 0.0);
  }
};

}  // namespace

void apply_outlet_pressure(DeviceState* state, double density) {
  state->outlet_density = density;

  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  OutletStampKernel kernel{kernel_args(*state), density};
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());
  DPCTX_CHECK(dpctx::memset(state->reduce_scratch, 0,
                          static_cast<std::size_t>(state->n_points) *
                              sizeof(double)));
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
