// HARVEY mini-corpus: pull-scheme adjacency for a fully periodic box,
// built on the host and uploaded to the device.

#include <vector>

#include "common.h"
#include "lbm/d3q19.hpp"

namespace harveyx {

void upload_periodic_box_adjacency(DeviceState* state, int nx, int ny,
                                   int nz) {
  const std::int64_t n = static_cast<std::int64_t>(nx) * ny * nz;
  std::vector<std::int64_t> adjacency(static_cast<std::size_t>(kQ) * n);

  auto index_of = [&](int x, int y, int z) {
    return (static_cast<std::int64_t>(z) * ny + y) * nx + x;
  };
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        const std::int64_t i = index_of(x, y, z);
        for (int q = 0; q < kQ; ++q) {
          // Pull: direction q streams from the site at r - c_q.
          const int ux = (x - hemo::lbm::c(q, 0) + nx) % nx;
          const int uy = (y - hemo::lbm::c(q, 1) + ny) % ny;
          const int uz = (z - hemo::lbm::c(q, 2) + nz) % nz;
          adjacency[static_cast<std::size_t>(q) * n + i] =
              index_of(ux, uy, uz);
        }
      }

  DPCTX_CHECK(dpctx::memcpy(state->adjacency, adjacency.data(),
                          adjacency.size() * sizeof(std::int64_t),
                          dpctx::host_to_device));
  DPCTX_CHECK(dpctx::memset(state->node_type, 0,
                          static_cast<std::size_t>(n)));
  // Touch both distribution buffers so first-use faults are not timed.
  DPCTX_CHECK(dpctx::memset(state->f_old, 0,
                          static_cast<std::size_t>(kQ) * n * sizeof(double)));
  DPCTX_CHECK(dpctx::memset(state->f_new, 0,
                          static_cast<std::size_t>(kQ) * n * sizeof(double)));
}

}  // namespace harveyx
