// HARVEY mini-corpus: wall-shear-stress accumulation under a pulsatile
// inflow waveform.  The waveform factor uses the CUDA math-library
// sincospi intrinsic, the call DPCT can only replace with a functional
// (not bit-identical) equivalent.

#include <vector>

#include "common.h"
#include "kernels.h"

namespace harveyx {

double pulsatile_scale(double phase) {
  double cos_part = 0.0;
  const double sin_part = dpctx::sincospi(phase, &cos_part);
  // Systolic-weighted waveform: positive lobe plus a diastolic offset.
  return 0.75 + 0.5 * sin_part + 0.1 * cos_part;
}

void accumulate_wall_shear(DeviceState* state, double phase,
                           double* shear_out) {
  dpctx::range launch_dim(0);
  launch_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  WallShearKernel kernel{kernel_args(*state), pulsatile_scale(phase),
                         state->reduce_scratch};
  dpctx::parallel_for(launch_dim, dpctx::range(256), kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());

  std::vector<double> host(static_cast<std::size_t>(state->n_points));
  DPCTX_CHECK(dpctx::memcpy(host.data(), state->reduce_scratch,
                          host.size() * sizeof(double),
                          dpctx::device_to_host));
  double shear = 0.0;
  for (double s : host) shear += s;
  *shear_out = shear;
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
