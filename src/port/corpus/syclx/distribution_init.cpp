// HARVEY mini-corpus: initialize distributions to the rest equilibrium
// and clear the reduction scratch field.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void initialize_distributions(DeviceState* state, double rho0) {
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  InitEquilibriumKernel init{state->f_old, state->n_points, rho0};
  dpctx::parallel_for(grid_dim, block_dim, init);
  DPCTX_CHECK(dpctx::get_last_error());

  ZeroFieldKernel zero{state->reduce_scratch, state->n_points};
  dpctx::parallel_for(grid_dim, block_dim, zero);
  DPCTX_CHECK(dpctx::get_last_error());

  // Both buffers start from the same state so the first pull step reads
  // valid upstream values.
  DPCTX_CHECK(dpctx::memcpy(state->f_new, state->f_old,
                          static_cast<std::size_t>(kQ) * state->n_points *
                              sizeof(double),
                          dpctx::device_to_device));
  DPCTX_CHECK(dpctx::device_synchronize());
}

}  // namespace harveyx
