// HARVEY mini-corpus: macroscopic moment extraction for monitoring.

#include <vector>

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct MomentProbeKernel {
  hemo::lbm::KernelArgs args;
  double* rho_scratch;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    double f[kQ];
    for (int q = 0; q < kQ; ++q)
      f[q] = args.f_in[static_cast<std::int64_t>(q) * args.n + i];
    const hemo::lbm::Moments m =
        hemo::lbm::moments_of(f, 0.0, 0.0, args.force_z);
    rho_scratch[i] = m.rho;
  }
};

}  // namespace

void compute_macroscopic(DeviceState* state, double* rho_out,
                         double* ux_out) {
  dpctx::range grid_dim(0);
  dpctx::range block_dim(0);
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  MomentProbeKernel kernel{kernel_args(*state), state->reduce_scratch};
  dpctx::parallel_for(grid_dim, block_dim, kernel);
  DPCTX_CHECK(dpctx::get_last_error());
  DPCTX_CHECK(dpctx::device_synchronize());

  std::vector<double> host(static_cast<std::size_t>(state->n_points));
  DPCTX_CHECK(dpctx::memcpy(host.data(), state->reduce_scratch,
                          host.size() * sizeof(double),
                          dpctx::device_to_host));
  double rho_sum = 0.0;
  for (double r : host) rho_sum += r;
  *rho_out = rho_sum / static_cast<double>(state->n_points);
  *ux_out = 0.0;  // transverse mean vanishes for the channel workloads
  DPCTX_CHECK(dpctx::stream_synchronize(0));
}

}  // namespace harveyx
