// HARVEY mini-corpus: stream management for compute/copy overlap.  The
// stream-attach call is a CUDA managed-memory knob with no DPC++
// equivalent (DPCT: unsupported feature).

#include "common.h"

namespace harveyx {

void setup_streams(dpctx::stream* compute, dpctx::stream* copy) {
  DPCTX_CHECK(dpctx::stream_create(compute));
  DPCTX_CHECK(dpctx::stream_create(copy));
  /* DPCTX1007 removed: cudaxStreamAttachMemAsync(*copy, compute, sizeof *compute); */
  DPCTX_CHECK(dpctx::stream_synchronize(*compute));
}

void teardown_streams(dpctx::stream compute, dpctx::stream copy) {
  DPCTX_CHECK(dpctx::stream_destroy(compute));
  DPCTX_CHECK(dpctx::stream_destroy(copy));
}

}  // namespace harveyx
