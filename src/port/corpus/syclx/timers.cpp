// HARVEY mini-corpus: synchronization points bracketing timed regions.

#include "common.h"

namespace harveyx {

void synchronize_for_timing() {
  DPCTX_CHECK(dpctx::device_synchronize());
  DPCTX_CHECK(dpctx::get_last_error());
}

}  // namespace harveyx
