// HARVEY mini-corpus: managed (unified) memory for the monitor fields,
// with prefetch hints (DPCT: performance-improvement suggestions).

#include "common.h"

namespace harveyx {

double* allocate_managed_field(std::int64_t n_points) {
  void* field = nullptr;
  const std::size_t bytes =
      static_cast<std::size_t>(n_points) * sizeof(double);
  DPCTX_CHECK(dpctx::malloc_shared(&field, bytes));
  DPCTX_CHECK(dpctx::memset(field, 0, bytes));
  dpctx::prefetch(field, bytes, 0, 0);
  DPCTX_CHECK(dpctx::device_synchronize());
  return static_cast<double*>(field);
}

void release_managed_field(double* field) {
  if (field == nullptr) return;
  dpctx::prefetch(field, 0, -1, 0);  // migrate back before the free
  DPCTX_CHECK(dpctx::free(field));
}

}  // namespace harveyx
