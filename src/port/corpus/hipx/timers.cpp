// HARVEY mini-corpus: synchronization points bracketing timed regions.

#include "common.h"

namespace harveyx {

void synchronize_for_timing() {
  HIPX_CHECK(hipxDeviceSynchronize());
  HIPX_CHECK(hipxGetLastError());
}

}  // namespace harveyx
