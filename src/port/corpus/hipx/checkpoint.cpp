// HARVEY mini-corpus: checkpoint save/restore of the distribution state.

#include "common.h"

namespace harveyx {

void write_checkpoint(DeviceState* state, double* host_scratch) {
  const std::size_t bytes = static_cast<std::size_t>(kQ) *
                            static_cast<std::size_t>(state->n_points) *
                            sizeof(double);
  HIPX_CHECK(hipxDeviceSynchronize());
  HIPX_CHECK(hipxMemcpy(host_scratch, state->f_old, bytes,
                          hipxMemcpyDeviceToHost));
}

void read_checkpoint(DeviceState* state, const double* host_data) {
  const std::size_t bytes = static_cast<std::size_t>(kQ) *
                            static_cast<std::size_t>(state->n_points) *
                            sizeof(double);
  HIPX_CHECK(hipxMemcpy(state->f_old, host_data, bytes,
                          hipxMemcpyHostToDevice));
  HIPX_CHECK(hipxMemcpy(state->f_new, host_data, bytes,
                          hipxMemcpyHostToDevice));
}

}  // namespace harveyx
