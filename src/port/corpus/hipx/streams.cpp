// HARVEY mini-corpus: stream management for compute/copy overlap.  The
// stream-attach call is a CUDA managed-memory knob with no DPC++
// equivalent (DPCT: unsupported feature).

#include "common.h"

namespace harveyx {

void setup_streams(hipxStream_t* compute, hipxStream_t* copy) {
  HIPX_CHECK(hipxStreamCreate(compute));
  HIPX_CHECK(hipxStreamCreate(copy));
  hipxStreamAttachMemAsync(*copy, compute, sizeof *compute);
  HIPX_CHECK(hipxStreamSynchronize(*compute));
}

void teardown_streams(hipxStream_t compute, hipxStream_t copy) {
  HIPX_CHECK(hipxStreamDestroy(compute));
  HIPX_CHECK(hipxStreamDestroy(copy));
}

}  // namespace harveyx
