// HARVEY mini-corpus: device memory management.

#include "common.h"

namespace harveyx {

void allocate_state(DeviceState* state, std::int64_t n_points,
                    std::int64_t halo_values) {
  state->n_points = n_points;
  const std::size_t f_bytes =
      static_cast<std::size_t>(kQ) * n_points * sizeof(double);
  HIPX_CHECK(hipxMalloc(reinterpret_cast<void**>(&state->f_old), f_bytes));
  HIPX_CHECK(hipxMalloc(reinterpret_cast<void**>(&state->f_new), f_bytes));
  HIPX_CHECK(hipxMalloc(reinterpret_cast<void**>(&state->adjacency),
                          static_cast<std::size_t>(kQ) * n_points *
                              sizeof(std::int64_t)));
  HIPX_CHECK(hipxMalloc(reinterpret_cast<void**>(&state->node_type),
                          static_cast<std::size_t>(n_points)));
  HIPX_CHECK(hipxMalloc(reinterpret_cast<void**>(&state->reduce_scratch),
                          n_points * sizeof(double)));
  HIPX_CHECK(hipxMemset(state->node_type, 0,
                          static_cast<std::size_t>(n_points)));
  allocate_comm_buffers(state, halo_values);
}

void free_state(DeviceState* state) {
  HIPX_CHECK(hipxFree(state->f_old));
  HIPX_CHECK(hipxFree(state->f_new));
  // Adjacency, node types and scratch share one cleanup path; any error
  // here is fatal to the run.
  if (hipxFree(state->adjacency) != hipxSuccess ||
      hipxFree(state->node_type) != hipxSuccess ||
      hipxFree(state->reduce_scratch) != hipxSuccess) {
    std::fprintf(stderr, "teardown failed\n");
    std::abort();
  }
  release_comm_buffers(state);
  *state = DeviceState{};
}

}  // namespace harveyx
