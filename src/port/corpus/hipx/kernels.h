#pragma once
// HARVEY mini-corpus: device kernel functors.  The numerical bodies are
// the production LBM kernels; these wrappers add the launch-geometry tail
// guard that CUDA grids require.

#include <cstdint>

#include "common.h"
#include "lbm/kernels.hpp"

namespace harveyx {

inline hemo::lbm::KernelArgs kernel_args(const DeviceState& s) {
  hemo::lbm::KernelArgs a;
  a.f_in = s.f_old;
  a.f_out = s.f_new;
  a.adjacency = s.adjacency;
  a.node_type = s.node_type;
  a.n = s.n_points;
  a.omega = s.omega;
  a.force_z = s.force_z;
  a.inlet_velocity = s.inlet_velocity;
  a.outlet_density = s.outlet_density;
  return a;
}

struct InitEquilibriumKernel {
  double* f;
  std::int64_t n;
  double rho0;
  void operator()(std::int64_t i) const {
    if (i >= n) return;
    for (int q = 0; q < kQ; ++q)
      f[static_cast<std::int64_t>(q) * n + i] =
          hemo::lbm::equilibrium(q, rho0, 0.0, 0.0, 0.0);
  }
};

struct ZeroFieldKernel {
  double* field;
  std::int64_t n;
  void operator()(std::int64_t i) const {
    if (i >= n) return;
    field[i] = 0.0;
  }
};

struct StreamCollideKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    hemo::lbm::stream_collide_point(args, i);
  }
};

struct StreamOnlyKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    hemo::lbm::stream_point(args, i);
  }
};

struct CollideOnlyKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    hemo::lbm::collide_point(args, i);
  }
};

// AA in-place propagation: a single distribution array (args.f), updated
// by alternating even/odd kernels — one array pass per step instead of
// the pull pair's two.
struct StreamCollideAAEvenKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    hemo::lbm::stream_collide_point_aa_even(args, i);
  }
};

struct StreamCollideAAOddKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    hemo::lbm::stream_collide_point_aa_odd(args, i);
  }
};

// Pack one distribution value per halo index into the send buffer.
struct PackHaloKernel {
  const double* f;
  const std::int64_t* indices;  // halo_values entries into f
  double* send;
  std::int64_t halo_values;
  void operator()(std::int64_t i) const {
    if (i >= halo_values) return;
    send[i] = f[indices[i]];
  }
};

struct UnpackHaloKernel {
  double* f;
  const std::int64_t* indices;
  const double* recv;
  std::int64_t halo_values;
  void operator()(std::int64_t i) const {
    if (i >= halo_values) return;
    f[indices[i]] = recv[i];
  }
};

// Per-point mass (sum over q) into the reduction scratch field.
struct PointMassKernel {
  const double* f;
  double* scratch;
  std::int64_t n;
  void operator()(std::int64_t i) const {
    if (i >= n) return;
    double mass = 0.0;
    for (int q = 0; q < kQ; ++q)
      mass += f[static_cast<std::int64_t>(q) * n + i];
    scratch[i] = mass;
  }
};

struct PointMomentumZKernel {
  const double* f;
  double* scratch;
  std::int64_t n;
  void operator()(std::int64_t i) const {
    if (i >= n) return;
    double mz = 0.0;
    for (int q = 0; q < kQ; ++q)
      mz += f[static_cast<std::int64_t>(q) * n + i] * hemo::lbm::c(q, 2);
    scratch[i] = mz;
  }
};

// Near-wall velocity-gradient magnitude proxy, scaled by the pulsatile
// waveform factor computed on the host.
struct WallShearKernel {
  hemo::lbm::KernelArgs args;
  double waveform;
  double* scratch;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    double f[kQ];
    for (int q = 0; q < kQ; ++q)
      f[q] = args.f_in[static_cast<std::int64_t>(q) * args.n + i];
    const hemo::lbm::Moments m =
        hemo::lbm::moments_of(f, 0.0, 0.0, args.force_z);
    scratch[i] = waveform * (m.ux * m.ux + m.uy * m.uy);
  }
};

}  // namespace harveyx
