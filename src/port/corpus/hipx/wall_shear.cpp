// HARVEY mini-corpus: wall-shear-stress accumulation under a pulsatile
// inflow waveform.  The waveform factor uses the CUDA math-library
// sincospi intrinsic, the call DPCT can only replace with a functional
// (not bit-identical) equivalent.

#include <vector>

#include "common.h"
#include "kernels.h"

namespace harveyx {

double pulsatile_scale(double phase) {
  double cos_part = 0.0;
  const double sin_part = sincospi(phase, &cos_part);
  // Systolic-weighted waveform: positive lobe plus a diastolic offset.
  return 0.75 + 0.5 * sin_part + 0.1 * cos_part;
}

void accumulate_wall_shear(DeviceState* state, double phase,
                           double* shear_out) {
  dim3x launch_dim;
  launch_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  WallShearKernel kernel{kernel_args(*state), pulsatile_scale(phase),
                         state->reduce_scratch};
  hipxLaunchKernel(launch_dim, dim3x(256), kernel);
  HIPX_CHECK(hipxGetLastError());
  HIPX_CHECK(hipxDeviceSynchronize());

  std::vector<double> host(static_cast<std::size_t>(state->n_points));
  HIPX_CHECK(hipxMemcpy(host.data(), state->reduce_scratch,
                          host.size() * sizeof(double),
                          hipxMemcpyDeviceToHost));
  double shear = 0.0;
  for (double s : host) shear += s;
  *shear_out = shear;
  HIPX_CHECK(hipxStreamSynchronize(0));
}

}  // namespace harveyx
