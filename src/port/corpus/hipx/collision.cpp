// HARVEY mini-corpus: standalone BGK collision pass (two-pass pipeline).

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_collision_only(DeviceState* state) {
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 128;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 127) / 128);

  CollideOnlyKernel kernel{kernel_args(*state)};
  hipxLaunchKernel(grid_dim, block_dim, kernel);
  HIPX_CHECK(hipxGetLastError());
  HIPX_CHECK(hipxDeviceSynchronize());
  // Collision operates in place on f_new; mark completion for profiling.
  HIPX_CHECK(hipxStreamSynchronize(0));
}

}  // namespace harveyx
