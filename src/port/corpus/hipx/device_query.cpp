// HARVEY mini-corpus: device configuration at startup.  The heap-limit
// call is CUDA-specific (DPCT: unsupported feature).

#include "common.h"

namespace harveyx {

void configure_device() {
  // Sparse geometries allocate adjacency lists from the device heap.
  hipxDeviceSetLimit(hipxLimitMallocHeapSize, 1ull << 30);

  HIPX_CHECK(hipxDeviceSynchronize());
  void* probe = nullptr;
  HIPX_CHECK(hipxMalloc(&probe, 256));
  HIPX_CHECK(hipxFree(probe));
}

}  // namespace harveyx
