// HARVEY mini-corpus: staging a density slice for visualization output.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void export_density_slice(DeviceState* state, double* host_slice,
                          std::int64_t slice_points) {
  if (slice_points > state->n_points) slice_points = state->n_points;

  // Densities were staged into the scratch field by the last macroscopic
  // pass; pull the leading slice asynchronously and wait.
  HIPX_CHECK(hipxMemcpyAsync(host_slice, state->reduce_scratch,
                               static_cast<std::size_t>(slice_points) *
                                   sizeof(double),
                               hipxMemcpyDeviceToHost, 0));
  HIPX_CHECK(hipxStreamSynchronize(0));
  HIPX_CHECK(hipxDeviceSynchronize());
  HIPX_CHECK(hipxGetLastError());
}

}  // namespace harveyx
