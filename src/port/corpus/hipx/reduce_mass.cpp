// HARVEY mini-corpus: total-mass reduction (conservation monitor).

#include <vector>

#include "common.h"
#include "kernels.h"

namespace harveyx {

double total_mass(DeviceState* state) {
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  PointMassKernel kernel{state->f_old, state->reduce_scratch,
                         state->n_points};
  hipxLaunchKernel(grid_dim, block_dim, kernel);
  HIPX_CHECK(hipxGetLastError());
  HIPX_CHECK(hipxDeviceSynchronize());

  std::vector<double> host(static_cast<std::size_t>(state->n_points));
  HIPX_CHECK(hipxMemcpy(host.data(), state->reduce_scratch,
                          host.size() * sizeof(double),
                          hipxMemcpyDeviceToHost));
  double mass = 0.0;
  for (double m : host) mass += m;
  HIPX_CHECK(hipxStreamSynchronize(0));
  return mass;
}

}  // namespace harveyx
