// HARVEY mini-corpus: body-force configuration (Guo forcing is applied
// inside the collision kernel; this module stages the force field).

#include "common.h"
#include "kernels.h"

namespace harveyx {

void apply_body_force(DeviceState* state, double gz) {
  state->force_z = gz;

  // Warm the kernel pipeline once so the new force constant reaches every
  // cached launch configuration.
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 64;
  grid_dim.x = 1;

  ZeroFieldKernel probe{state->reduce_scratch, 1};
  hipxLaunchKernel(grid_dim, block_dim, probe);
  HIPX_CHECK(hipxGetLastError());
  HIPX_CHECK(hipxDeviceSynchronize());
  HIPX_CHECK(hipxStreamSynchronize(0));
}

}  // namespace harveyx
