// HARVEY mini-corpus: initialize distributions to the rest equilibrium
// and clear the reduction scratch field.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void initialize_distributions(DeviceState* state, double rho0) {
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  InitEquilibriumKernel init{state->f_old, state->n_points, rho0};
  hipxLaunchKernel(grid_dim, block_dim, init);
  HIPX_CHECK(hipxGetLastError());

  ZeroFieldKernel zero{state->reduce_scratch, state->n_points};
  hipxLaunchKernel(grid_dim, block_dim, zero);
  HIPX_CHECK(hipxGetLastError());

  // Both buffers start from the same state so the first pull step reads
  // valid upstream values.
  HIPX_CHECK(hipxMemcpy(state->f_new, state->f_old,
                          static_cast<std::size_t>(kQ) * state->n_points *
                              sizeof(double),
                          hipxMemcpyDeviceToDevice));
  HIPX_CHECK(hipxDeviceSynchronize());
}

}  // namespace harveyx
