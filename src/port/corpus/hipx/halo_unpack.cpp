// HARVEY mini-corpus: halo unpacking (receive side of the exchange).

#include "common.h"
#include "kernels.h"

namespace harveyx {

void unpack_halo(DeviceState* state, const std::int64_t* indices_device) {
  if (state->halo_values == 0) return;

  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 256;

  const std::int64_t bulk = (state->halo_values * 3) / 4;
  const std::int64_t tail = state->halo_values - bulk;

  UnpackHaloKernel head{state->f_old, indices_device, state->recv_buffer,
                        bulk};
  grid_dim.x = static_cast<unsigned int>((bulk + 255) / 256);
  hipxLaunchKernel(grid_dim, block_dim, head);
  HIPX_CHECK(hipxGetLastError());

  UnpackHaloKernel rest{state->f_old, indices_device + bulk,
                        state->recv_buffer + bulk, tail};
  grid_dim.x = static_cast<unsigned int>((tail + 255) / 256);
  if (tail > 0) {
    hipxLaunchKernel(grid_dim, block_dim, rest);
    HIPX_CHECK(hipxGetLastError());
  }

  HIPX_CHECK(hipxDeviceSynchronize());
  // The unpack must land before the boundary touch-up passes read it.
  HIPX_CHECK(hipxStreamSynchronize(0));
  HIPX_CHECK(hipxGetLastError());
}

}  // namespace harveyx
