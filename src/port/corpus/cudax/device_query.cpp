// HARVEY mini-corpus: device configuration at startup.  The heap-limit
// call is CUDA-specific (DPCT: unsupported feature).

#include "common.h"

namespace harveyx {

void configure_device() {
  // Sparse geometries allocate adjacency lists from the device heap.
  cudaxDeviceSetLimit(cudaxLimitMallocHeapSize, 1ull << 30);

  CUDAX_CHECK(cudaxDeviceSynchronize());
  void* probe = nullptr;
  CUDAX_CHECK(cudaxMalloc(&probe, 256));
  CUDAX_CHECK(cudaxFree(probe));
}

}  // namespace harveyx
