// HARVEY mini-corpus: macroscopic moment extraction for monitoring.

#include <vector>

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct MomentProbeKernel {
  hemo::lbm::KernelArgs args;
  double* rho_scratch;
  void operator()(std::int64_t i) const {
    if (i >= args.n) return;
    double f[kQ];
    for (int q = 0; q < kQ; ++q)
      f[q] = args.f_in[static_cast<std::int64_t>(q) * args.n + i];
    const hemo::lbm::Moments m =
        hemo::lbm::moments_of(f, 0.0, 0.0, args.force_z);
    rho_scratch[i] = m.rho;
  }
};

}  // namespace

void compute_macroscopic(DeviceState* state, double* rho_out,
                         double* ux_out) {
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  MomentProbeKernel kernel{kernel_args(*state), state->reduce_scratch};
  cudaxLaunchKernel(grid_dim, block_dim, kernel);
  CUDAX_CHECK(cudaxGetLastError());
  CUDAX_CHECK(cudaxDeviceSynchronize());

  std::vector<double> host(static_cast<std::size_t>(state->n_points));
  CUDAX_CHECK(cudaxMemcpy(host.data(), state->reduce_scratch,
                          host.size() * sizeof(double),
                          cudaxMemcpyDeviceToHost));
  double rho_sum = 0.0;
  for (double r : host) rho_sum += r;
  *rho_out = rho_sum / static_cast<double>(state->n_points);
  *ux_out = 0.0;  // transverse mean vanishes for the channel workloads
  CUDAX_CHECK(cudaxStreamSynchronize(0));
}

}  // namespace harveyx
