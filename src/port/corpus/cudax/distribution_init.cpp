// HARVEY mini-corpus: initialize distributions to the rest equilibrium
// and clear the reduction scratch field.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void initialize_distributions(DeviceState* state, double rho0) {
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  InitEquilibriumKernel init{state->f_old, state->n_points, rho0};
  cudaxLaunchKernel(grid_dim, block_dim, init);
  CUDAX_CHECK(cudaxGetLastError());

  ZeroFieldKernel zero{state->reduce_scratch, state->n_points};
  cudaxLaunchKernel(grid_dim, block_dim, zero);
  CUDAX_CHECK(cudaxGetLastError());

  // Both buffers start from the same state so the first pull step reads
  // valid upstream values.
  CUDAX_CHECK(cudaxMemcpy(state->f_new, state->f_old,
                          static_cast<std::size_t>(kQ) * state->n_points *
                              sizeof(double),
                          cudaxMemcpyDeviceToDevice));
  CUDAX_CHECK(cudaxDeviceSynchronize());
}

}  // namespace harveyx
