// HARVEY mini-corpus: standalone streaming (gather) pass.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_streaming_only(DeviceState* state) {
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 128;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 127) / 128);

  StreamOnlyKernel kernel{kernel_args(*state)};
  cudaxLaunchKernel(grid_dim, block_dim, kernel);
  CUDAX_CHECK(cudaxGetLastError());
  CUDAX_CHECK(cudaxDeviceSynchronize());
  CUDAX_CHECK(cudaxStreamSynchronize(0));
}

}  // namespace harveyx
