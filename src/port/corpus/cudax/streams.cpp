// HARVEY mini-corpus: stream management for compute/copy overlap.  The
// stream-attach call is a CUDA managed-memory knob with no DPC++
// equivalent (DPCT: unsupported feature).

#include "common.h"

namespace harveyx {

void setup_streams(cudaxStream_t* compute, cudaxStream_t* copy) {
  CUDAX_CHECK(cudaxStreamCreate(compute));
  CUDAX_CHECK(cudaxStreamCreate(copy));
  cudaxStreamAttachMemAsync(*copy, compute, sizeof *compute);
  CUDAX_CHECK(cudaxStreamSynchronize(*compute));
}

void teardown_streams(cudaxStream_t compute, cudaxStream_t copy) {
  CUDAX_CHECK(cudaxStreamDestroy(compute));
  CUDAX_CHECK(cudaxStreamDestroy(copy));
}

}  // namespace harveyx
