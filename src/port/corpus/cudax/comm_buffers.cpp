// HARVEY mini-corpus: communication staging buffers (pinned in the
// production code; plain device allocations here).

#include "common.h"

namespace harveyx {

void allocate_comm_buffers(DeviceState* state, std::int64_t halo_values) {
  state->halo_values = halo_values;
  if (halo_values == 0) {
    state->send_buffer = nullptr;
    state->recv_buffer = nullptr;
    return;
  }
  const std::size_t bytes =
      static_cast<std::size_t>(halo_values) * sizeof(double);
  CUDAX_CHECK(cudaxMalloc(reinterpret_cast<void**>(&state->send_buffer),
                          bytes));
  CUDAX_CHECK(cudaxMalloc(reinterpret_cast<void**>(&state->recv_buffer),
                          bytes));
  CUDAX_CHECK(cudaxMemset(state->send_buffer, 0, bytes));
  CUDAX_CHECK(cudaxMemset(state->recv_buffer, 0, bytes));
}

void release_comm_buffers(DeviceState* state) {
  if (state->send_buffer != nullptr) {
    CUDAX_CHECK(cudaxFree(state->send_buffer));
    // recv buffer shares the lifetime of send; a failure here indicates
    // heap corruption, so abort via the same path.
    if (cudaxFree(state->recv_buffer) != cudaxSuccess) {
      std::fprintf(stderr, "recv buffer teardown failed\n");
      std::abort();
    }
  }
  state->send_buffer = nullptr;
  state->recv_buffer = nullptr;
  state->halo_values = 0;
}

}  // namespace harveyx
