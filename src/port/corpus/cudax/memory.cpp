// HARVEY mini-corpus: device memory management.

#include "common.h"

namespace harveyx {

void allocate_state(DeviceState* state, std::int64_t n_points,
                    std::int64_t halo_values) {
  state->n_points = n_points;
  const std::size_t f_bytes =
      static_cast<std::size_t>(kQ) * n_points * sizeof(double);
  CUDAX_CHECK(cudaxMalloc(reinterpret_cast<void**>(&state->f_old), f_bytes));
  CUDAX_CHECK(cudaxMalloc(reinterpret_cast<void**>(&state->f_new), f_bytes));
  CUDAX_CHECK(cudaxMalloc(reinterpret_cast<void**>(&state->adjacency),
                          static_cast<std::size_t>(kQ) * n_points *
                              sizeof(std::int64_t)));
  CUDAX_CHECK(cudaxMalloc(reinterpret_cast<void**>(&state->node_type),
                          static_cast<std::size_t>(n_points)));
  CUDAX_CHECK(cudaxMalloc(reinterpret_cast<void**>(&state->reduce_scratch),
                          n_points * sizeof(double)));
  CUDAX_CHECK(cudaxMemset(state->node_type, 0,
                          static_cast<std::size_t>(n_points)));
  allocate_comm_buffers(state, halo_values);
}

void free_state(DeviceState* state) {
  CUDAX_CHECK(cudaxFree(state->f_old));
  CUDAX_CHECK(cudaxFree(state->f_new));
  // Adjacency, node types and scratch share one cleanup path; any error
  // here is fatal to the run.
  if (cudaxFree(state->adjacency) != cudaxSuccess ||
      cudaxFree(state->node_type) != cudaxSuccess ||
      cudaxFree(state->reduce_scratch) != cudaxSuccess) {
    std::fprintf(stderr, "teardown failed\n");
    std::abort();
  }
  release_comm_buffers(state);
  *state = DeviceState{};
}

}  // namespace harveyx
