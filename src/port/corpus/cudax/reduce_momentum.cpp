// HARVEY mini-corpus: axial-momentum reduction (flow-rate monitor).

#include <vector>

#include "common.h"
#include "kernels.h"

namespace harveyx {

double total_momentum_z(DeviceState* state) {
  dim3x grid_dim;
  dim3x block_dim;
  block_dim.x = 256;
  grid_dim.x = static_cast<unsigned int>((state->n_points + 255) / 256);

  PointMomentumZKernel kernel{state->f_old, state->reduce_scratch,
                              state->n_points};
  cudaxLaunchKernel(grid_dim, block_dim, kernel);
  CUDAX_CHECK(cudaxGetLastError());
  CUDAX_CHECK(cudaxDeviceSynchronize());

  std::vector<double> host(static_cast<std::size_t>(state->n_points));
  CUDAX_CHECK(cudaxMemcpy(host.data(), state->reduce_scratch,
                          host.size() * sizeof(double),
                          cudaxMemcpyDeviceToHost));
  double momentum = 0.0;
  for (double m : host) momentum += m;
  CUDAX_CHECK(cudaxStreamSynchronize(0));
  return momentum;
}

}  // namespace harveyx
