// HARVEY mini-corpus: synchronization points bracketing timed regions.

#include "common.h"

namespace harveyx {

void synchronize_for_timing() {
  CUDAX_CHECK(cudaxDeviceSynchronize());
  CUDAX_CHECK(cudaxGetLastError());
}

}  // namespace harveyx
