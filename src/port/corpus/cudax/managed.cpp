// HARVEY mini-corpus: managed (unified) memory for the monitor fields,
// with prefetch hints (DPCT: performance-improvement suggestions).

#include "common.h"

namespace harveyx {

double* allocate_managed_field(std::int64_t n_points) {
  void* field = nullptr;
  const std::size_t bytes =
      static_cast<std::size_t>(n_points) * sizeof(double);
  CUDAX_CHECK(cudaxMallocManaged(&field, bytes));
  CUDAX_CHECK(cudaxMemset(field, 0, bytes));
  cudaxMemPrefetchAsync(field, bytes, 0, 0);
  CUDAX_CHECK(cudaxDeviceSynchronize());
  return static_cast<double*>(field);
}

void release_managed_field(double* field) {
  if (field == nullptr) return;
  cudaxMemPrefetchAsync(field, 0, -1, 0);  // migrate back before the free
  CUDAX_CHECK(cudaxFree(field));
}

}  // namespace harveyx
