// HARVEY mini-corpus, Kokkos dialect: equilibrium initialization.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void initialize_distributions(DeviceState* state, double rho0) {
  kx::parallel_for("init_equilibrium",
                   kx::RangePolicy(0, state->n_points),
                   InitEquilibriumKernel{state->f_old.data(),
                                         state->n_points, rho0});
  kx::parallel_for("zero_scratch", kx::RangePolicy(0, state->n_points),
                   ZeroFieldKernel{state->reduce_scratch.data()});
  // Both buffers start from the same state so the first pull step reads
  // valid upstream values.
  kx::deep_copy(state->f_new, state->f_old);
  kx::fence();
}

}  // namespace harveyx
