// HARVEY mini-corpus, Kokkos dialect: body-force configuration.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void apply_body_force(DeviceState* state, double gz) {
  state->force_z = gz;
  // Warm one launch so the new constant reaches every cached policy.
  kx::parallel_for("force_probe", kx::RangePolicy(0, 1),
                   ZeroFieldKernel{state->reduce_scratch.data()});
  kx::fence();
}

}  // namespace harveyx
