// HARVEY mini-corpus, Kokkos dialect: node-type upload through a host
// mirror, with the same round-trip verification as the CUDA version.

#include <cstring>

#include "common.h"

namespace harveyx {

void upload_node_types(DeviceState* state, const std::uint8_t* host_types) {
  auto mirror = kx::create_mirror_view(state->node_type);
  std::memcpy(mirror.data(), host_types,
              static_cast<std::size_t>(state->n_points));
  kx::deep_copy(state->node_type, mirror);

  auto verify = kx::create_mirror_view(state->node_type);
  kx::deep_copy(verify, state->node_type);
  for (std::size_t i = 0; i < verify.extent(0); ++i) {
    if (verify(i) != host_types[i]) {
      std::fprintf(stderr, "node type upload mismatch at %zu\n", i);
      std::abort();
    }
  }
}

}  // namespace harveyx
