// HARVEY mini-corpus, Kokkos dialect: standalone streaming pass.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_streaming_only(DeviceState* state) {
  kx::parallel_for("stream_only", kx::RangePolicy(0, state->n_points),
                   StreamOnlyKernel{kernel_args(*state)});
  kx::fence();
}

}  // namespace harveyx
