// HARVEY mini-corpus, Kokkos dialect: standalone BGK collision pass.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_collision_only(DeviceState* state) {
  kx::parallel_for("collide_only", kx::RangePolicy(0, state->n_points),
                   CollideOnlyKernel{kernel_args(*state)});
  kx::fence();
}

}  // namespace harveyx
