// HARVEY mini-corpus, Kokkos dialect: axial momentum via parallel_reduce.

#include "common.h"
#include "kernels.h"

namespace harveyx {

double total_momentum_z(DeviceState* state) {
  double momentum = 0.0;
  kx::parallel_reduce(
      "total_momentum_z", kx::RangePolicy(0, state->n_points),
      PointMomentumZKernel{state->f_old.data(), state->n_points}, momentum);
  return momentum;
}

}  // namespace harveyx
