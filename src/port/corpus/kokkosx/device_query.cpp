// HARVEY mini-corpus, Kokkos dialect: device configuration is owned by
// the Kokkos runtime; only a liveness probe remains.

#include "common.h"

namespace harveyx {

void configure_device() {
  if (!kx::is_initialized()) {
    std::fprintf(stderr, "Kokkos runtime not initialized\n");
    std::abort();
  }
  kx::View<double*> probe("probe", 32);
  kx::deep_copy(probe, 0.0);
}

}  // namespace harveyx
