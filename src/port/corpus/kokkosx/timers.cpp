// HARVEY mini-corpus, Kokkos dialect: fences bracket timed regions.

#include "common.h"

namespace harveyx {

void synchronize_for_timing() { kx::fence(); }

}  // namespace harveyx
