// HARVEY mini-corpus, Kokkos dialect: pressure-outlet sweep.

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct OutletStampKernel {
  hemo::lbm::KernelArgs args;
  double density;
  void operator()(std::int64_t i) const {
    const auto type = args.node_type[i];
    if (type != static_cast<std::uint8_t>(
                    hemo::lbm::NodeType::kPressureOutlet) &&
        type != static_cast<std::uint8_t>(
                    hemo::lbm::NodeType::kPressureOutletLow))
      return;
    for (int q = 0; q < kQ; ++q)
      args.f_out[static_cast<std::int64_t>(q) * args.n + i] =
          hemo::lbm::equilibrium(q, density, 0.0, 0.0, 0.0);
  }
};

}  // namespace

void apply_outlet_pressure(DeviceState* state, double density) {
  state->outlet_density = density;
  kx::parallel_for("outlet_stamp", kx::RangePolicy(0, state->n_points),
                   OutletStampKernel{kernel_args(*state), density});
  kx::parallel_for("zero_monitor", kx::RangePolicy(0, state->n_points),
                   ZeroFieldKernel{state->reduce_scratch.data()});
  kx::fence();
}

}  // namespace harveyx
