// HARVEY mini-corpus, Kokkos dialect: fused stream-collide with the same
// three-pass schedule as the CUDA original (bulk + two boundary slabs).

#include <algorithm>
#include <utility>

#include "common.h"
#include "kernels.h"

namespace harveyx {

void run_stream_collide(DeviceState* state) {
  StreamCollideKernel kernel{kernel_args(*state)};
  kx::parallel_for("stream_collide_bulk",
                   kx::RangePolicy(0, state->n_points), kernel);

  // Touch-up passes over the head slab after the halo has arrived;
  // idempotent because the pull gather reads f_old only.
  const std::int64_t slab = std::max<std::int64_t>(state->n_points / 8, 1);
  kx::parallel_for("stream_collide_head1", kx::RangePolicy(0, slab), kernel);
  kx::parallel_for("stream_collide_head2", kx::RangePolicy(0, slab), kernel);
  kx::fence();
}

void swap_distributions(DeviceState* state) {
  std::swap(state->f_old, state->f_new);
}

}  // namespace harveyx
