// HARVEY mini-corpus, Kokkos dialect: communication staging buffers.

#include "common.h"

namespace harveyx {

void allocate_comm_buffers(DeviceState* state, std::int64_t halo_values) {
  state->halo_values = halo_values;
  if (halo_values == 0) {
    state->send_buffer = kx::View<double*>();
    state->recv_buffer = kx::View<double*>();
    return;
  }
  const auto n = static_cast<std::size_t>(halo_values);
  state->send_buffer = kx::View<double*>("send_buffer", n);
  state->recv_buffer = kx::View<double*>("recv_buffer", n);
}

void release_comm_buffers(DeviceState* state) {
  state->send_buffer = kx::View<double*>();
  state->recv_buffer = kx::View<double*>();
  state->halo_values = 0;
}

}  // namespace harveyx
