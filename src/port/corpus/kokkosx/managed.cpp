// HARVEY mini-corpus, Kokkos dialect: the managed-memory monitor field
// becomes an ordinary View (Views manage residency; the prefetch hints
// of the CUDA version have no Kokkos counterpart and were dropped).

#include "common.h"

namespace harveyx {

kx::View<double*> allocate_monitor_field(std::int64_t n_points) {
  kx::View<double*> field("monitor_field",
                          static_cast<std::size_t>(n_points));
  kx::deep_copy(field, 0.0);
  return field;
}

void release_monitor_field(kx::View<double*>* field) {
  *field = kx::View<double*>();
}

}  // namespace harveyx
