// HARVEY mini-corpus, Kokkos dialect: halo packing with the same
// face/edge/corner schedule as the CUDA original.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void pack_halo(DeviceState* state, const std::int64_t* indices_device) {
  if (state->halo_values == 0) return;

  const std::int64_t faces = (state->halo_values * 3) / 4;
  const std::int64_t edges = (state->halo_values - faces) / 2;
  const std::int64_t corners = state->halo_values - faces - edges;

  double* send = state->send_buffer.data();
  const double* f = state->f_old.data();

  kx::parallel_for("pack_faces", kx::RangePolicy(0, faces),
                   PackHaloKernel{f, indices_device, send});
  if (edges > 0)
    kx::parallel_for("pack_edges", kx::RangePolicy(0, edges),
                     PackHaloKernel{f, indices_device + faces, send + faces});
  if (corners > 0)
    kx::parallel_for(
        "pack_corners", kx::RangePolicy(0, corners),
        PackHaloKernel{f, indices_device + faces + edges,
                       send + faces + edges});
  kx::fence();
}

}  // namespace harveyx
