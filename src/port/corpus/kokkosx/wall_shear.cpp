// HARVEY mini-corpus, Kokkos dialect: pulsatile wall-shear accumulation.
// The waveform factor keeps the standard-library formulation; Kokkos has
// no sincospi intrinsic, so the fused call was unrolled by hand.

#include <cmath>

#include "common.h"
#include "kernels.h"

namespace harveyx {

double pulsatile_scale(double phase) {
  constexpr double kPi = 3.14159265358979323846;
  const double sin_part = std::sin(kPi * phase);
  const double cos_part = std::cos(kPi * phase);
  // Systolic-weighted waveform: positive lobe plus a diastolic offset.
  return 0.75 + 0.5 * sin_part + 0.1 * cos_part;
}

void accumulate_wall_shear(DeviceState* state, double phase,
                           double* shear_out) {
  double shear = 0.0;
  kx::parallel_reduce(
      "wall_shear", kx::RangePolicy(0, state->n_points),
      WallShearKernel{kernel_args(*state), pulsatile_scale(phase)}, shear);
  *shear_out = shear;
}

}  // namespace harveyx
