// HARVEY mini-corpus, Kokkos dialect: total mass via parallel_reduce
// (the CUDA scratch-field staging disappears).

#include "common.h"
#include "kernels.h"

namespace harveyx {

double total_mass(DeviceState* state) {
  double mass = 0.0;
  kx::parallel_reduce("total_mass", kx::RangePolicy(0, state->n_points),
                      PointMassKernel{state->f_old.data(), state->n_points},
                      mass);
  return mass;
}

}  // namespace harveyx
