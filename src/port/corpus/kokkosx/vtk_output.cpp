// HARVEY mini-corpus, Kokkos dialect: density-slice export.

#include <cstring>

#include "common.h"

namespace harveyx {

void export_density_slice(DeviceState* state, double* host_slice,
                          std::int64_t slice_points) {
  if (slice_points > state->n_points) slice_points = state->n_points;
  auto mirror = kx::create_mirror_view(state->reduce_scratch);
  kx::deep_copy(mirror, state->reduce_scratch);
  std::memcpy(host_slice, mirror.data(),
              static_cast<std::size_t>(slice_points) * sizeof(double));
}

}  // namespace harveyx
