// HARVEY mini-corpus, Kokkos dialect: halo unpacking.

#include "common.h"
#include "kernels.h"

namespace harveyx {

void unpack_halo(DeviceState* state, const std::int64_t* indices_device) {
  if (state->halo_values == 0) return;

  const std::int64_t bulk = (state->halo_values * 3) / 4;
  const std::int64_t tail = state->halo_values - bulk;

  double* f = state->f_old.data();
  const double* recv = state->recv_buffer.data();

  kx::parallel_for("unpack_bulk", kx::RangePolicy(0, bulk),
                   UnpackHaloKernel{f, indices_device, recv});
  if (tail > 0)
    kx::parallel_for("unpack_tail", kx::RangePolicy(0, tail),
                     UnpackHaloKernel{f, indices_device + bulk, recv + bulk});
  kx::fence();
}

}  // namespace harveyx
