// HARVEY mini-corpus, Kokkos dialect: macroscopic monitoring.  The
// scratch-plus-copy pattern of the CUDA version becomes a single
// parallel_reduce.

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct MeanDensityKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i, double& sum) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q)
      f[q] = args.f_in[static_cast<std::int64_t>(q) * args.n + i];
    sum += hemo::lbm::moments_of(f, 0.0, 0.0, args.force_z).rho;
  }
};

}  // namespace

void compute_macroscopic(DeviceState* state, double* rho_out,
                         double* ux_out) {
  double rho_sum = 0.0;
  kx::parallel_reduce("mean_density", kx::RangePolicy(0, state->n_points),
                      MeanDensityKernel{kernel_args(*state)}, rho_sum);
  *rho_out = rho_sum / static_cast<double>(state->n_points);
  *ux_out = 0.0;  // transverse mean vanishes for the channel workloads
}

}  // namespace harveyx
