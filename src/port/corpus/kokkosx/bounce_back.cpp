// HARVEY mini-corpus, Kokkos dialect: explicit bounce-back sweep.

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct BounceBackKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    for (int q = 0; q < kQ; ++q) {
      if (args.adjacency[static_cast<std::int64_t>(q) * args.n + i] >= 0)
        continue;
      args.f_out[static_cast<std::int64_t>(q) * args.n + i] =
          args.f_in[static_cast<std::int64_t>(hemo::lbm::opposite(q)) *
                        args.n +
                    i];
    }
  }
};

}  // namespace

void apply_bounce_back(DeviceState* state) {
  kx::parallel_for("bounce_back", kx::RangePolicy(0, state->n_points),
                   BounceBackKernel{kernel_args(*state)});
  kx::fence();
}

}  // namespace harveyx
