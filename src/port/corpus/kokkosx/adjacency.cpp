// HARVEY mini-corpus, Kokkos dialect: adjacency built into a host mirror
// and staged to the device with deep_copy.

#include "common.h"
#include "kernels.h"
#include "lbm/d3q19.hpp"

namespace harveyx {

void upload_periodic_box_adjacency(DeviceState* state, int nx, int ny,
                                   int nz) {
  const std::int64_t n = static_cast<std::int64_t>(nx) * ny * nz;
  auto mirror = kx::create_mirror_view(state->adjacency);

  auto index_of = [&](int x, int y, int z) {
    return (static_cast<std::int64_t>(z) * ny + y) * nx + x;
  };
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        const std::int64_t i = index_of(x, y, z);
        for (int q = 0; q < kQ; ++q) {
          // Pull: direction q streams from the site at r - c_q.
          const int ux = (x - hemo::lbm::c(q, 0) + nx) % nx;
          const int uy = (y - hemo::lbm::c(q, 1) + ny) % ny;
          const int uz = (z - hemo::lbm::c(q, 2) + nz) % nz;
          mirror(static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(i)) = index_of(ux, uy, uz);
        }
      }
  kx::deep_copy(state->adjacency, mirror);

  // Zero both distribution buffers (first-touch).
  kx::parallel_for("zero_f_old", kx::RangePolicy(0, kQ * n),
                   ZeroFieldKernel{state->f_old.data()});
  kx::parallel_for("zero_f_new", kx::RangePolicy(0, kQ * n),
                   ZeroFieldKernel{state->f_new.data()});
  kx::fence();
}

}  // namespace harveyx
