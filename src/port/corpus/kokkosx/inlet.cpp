// HARVEY mini-corpus, Kokkos dialect: velocity-inlet sweep.

#include "common.h"
#include "kernels.h"

namespace harveyx {

namespace {

struct InletStampKernel {
  hemo::lbm::KernelArgs args;
  double velocity;
  void operator()(std::int64_t i) const {
    if (args.node_type[i] !=
        static_cast<std::uint8_t>(hemo::lbm::NodeType::kVelocityInlet))
      return;
    for (int q = 0; q < kQ; ++q)
      args.f_out[static_cast<std::int64_t>(q) * args.n + i] =
          hemo::lbm::equilibrium(q, 1.0, 0.0, 0.0, velocity);
  }
};

}  // namespace

void apply_inlet_profile(DeviceState* state, double velocity) {
  state->inlet_velocity = velocity;
  kx::parallel_for("inlet_stamp", kx::RangePolicy(0, state->n_points),
                   InletStampKernel{kernel_args(*state), velocity});
  kx::parallel_for("zero_monitor", kx::RangePolicy(0, state->n_points),
                   ZeroFieldKernel{state->reduce_scratch.data()});
  kx::fence();
}

}  // namespace harveyx
