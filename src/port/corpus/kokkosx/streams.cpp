// HARVEY mini-corpus, Kokkos dialect: explicit streams have no direct
// equivalent; execution spaces plus fences replace the overlap plumbing.

#include "common.h"

namespace harveyx {

void setup_execution_spaces() {
  if (!kx::is_initialized()) {
    std::fprintf(stderr, "execution spaces require the Kokkos runtime\n");
    std::abort();
  }
}

void teardown_execution_spaces() { kx::fence(); }

}  // namespace harveyx
