// HARVEY mini-corpus, Kokkos dialect: lattice constants as global const
// Views.  deep_copy cannot write a const view, so the data is staged
// through a non-const view and the const view aliases it — the exact
// initialization workaround of Section 7.3.

#include "common.h"
#include "lbm/d3q19.hpp"

namespace harveyx {

namespace {

kx::View<const double*> g_weights;
kx::View<const int*> g_velocities;

}  // namespace

void upload_lattice_constants() {
  if (g_weights.is_allocated()) return;

  kx::View<double*> weights_staging("weights_staging", kQ);
  kx::View<int*> velocities_staging("velocities_staging", kQ * 3);

  auto host_w = kx::create_mirror_view(weights_staging);
  auto host_c = kx::create_mirror_view(velocities_staging);
  for (int q = 0; q < kQ; ++q) {
    host_w(static_cast<std::size_t>(q)) = hemo::lbm::kWeights[q];
    for (int a = 0; a < 3; ++a)
      host_c(static_cast<std::size_t>(q * 3 + a)) = hemo::lbm::c(q, a);
  }
  kx::deep_copy(weights_staging, host_w);
  kx::deep_copy(velocities_staging, host_c);

  // Const views alias the staged data; no further copies.
  g_weights = weights_staging;
  g_velocities = velocities_staging;
}

}  // namespace harveyx
