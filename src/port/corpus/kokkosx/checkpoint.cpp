// HARVEY mini-corpus, Kokkos dialect: checkpoint save/restore through
// host mirrors.

#include <cstring>

#include "common.h"

namespace harveyx {

void write_checkpoint(DeviceState* state, double* host_scratch) {
  auto mirror = kx::create_mirror_view(state->f_old);
  kx::deep_copy(mirror, state->f_old);
  std::memcpy(host_scratch, mirror.data(),
              mirror.extent(0) * sizeof(double));
}

void read_checkpoint(DeviceState* state, const double* host_data) {
  auto mirror = kx::create_mirror_view(state->f_old);
  std::memcpy(mirror.data(), host_data, mirror.extent(0) * sizeof(double));
  kx::deep_copy(state->f_old, mirror);
  kx::deep_copy(state->f_new, mirror);
}

}  // namespace harveyx
