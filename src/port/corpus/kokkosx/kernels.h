#pragma once
// HARVEY mini-corpus, Kokkos dialect: kernel functors.  The numerical
// bodies are inherited from the CUDA version by passing raw pointers
// (view.data()) through the launch interface — the mechanism Section 7.3
// adopted so existing kernel bodies survive the port.  RangePolicies are
// exact, so the CUDA-style tail guards are gone.

#include <cstdint>

#include "common.h"
#include "lbm/kernels.hpp"

namespace harveyx {

inline hemo::lbm::KernelArgs kernel_args(const DeviceState& s) {
  hemo::lbm::KernelArgs a;
  a.f_in = s.f_old.data();
  a.f_out = s.f_new.data();
  a.adjacency = s.adjacency.data();
  a.node_type = s.node_type.data();
  a.n = s.n_points;
  a.omega = s.omega;
  a.force_z = s.force_z;
  a.inlet_velocity = s.inlet_velocity;
  a.outlet_density = s.outlet_density;
  return a;
}

struct InitEquilibriumKernel {
  double* f;
  std::int64_t n;
  double rho0;
  void operator()(std::int64_t i) const {
    for (int q = 0; q < kQ; ++q)
      f[static_cast<std::int64_t>(q) * n + i] =
          hemo::lbm::equilibrium(q, rho0, 0.0, 0.0, 0.0);
  }
};

struct ZeroFieldKernel {
  double* field;
  void operator()(std::int64_t i) const { field[i] = 0.0; }
};

struct StreamCollideKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    hemo::lbm::stream_collide_point(args, i);
  }
};

struct StreamOnlyKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    hemo::lbm::stream_point(args, i);
  }
};

struct CollideOnlyKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    hemo::lbm::collide_point(args, i);
  }
};

// AA in-place propagation: a single distribution array (args.f), updated
// by alternating even/odd kernels — one array pass per step instead of
// the pull pair's two.
struct StreamCollideAAEvenKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    hemo::lbm::stream_collide_point_aa_even(args, i);
  }
};

struct StreamCollideAAOddKernel {
  hemo::lbm::KernelArgs args;
  void operator()(std::int64_t i) const {
    hemo::lbm::stream_collide_point_aa_odd(args, i);
  }
};

struct PackHaloKernel {
  const double* f;
  const std::int64_t* indices;
  double* send;
  void operator()(std::int64_t i) const { send[i] = f[indices[i]]; }
};

struct UnpackHaloKernel {
  double* f;
  const std::int64_t* indices;
  const double* recv;
  void operator()(std::int64_t i) const { f[indices[i]] = recv[i]; }
};

struct PointMassKernel {
  const double* f;
  std::int64_t n;
  void operator()(std::int64_t i, double& sum) const {
    for (int q = 0; q < kQ; ++q)
      sum += f[static_cast<std::int64_t>(q) * n + i];
  }
};

struct PointMomentumZKernel {
  const double* f;
  std::int64_t n;
  void operator()(std::int64_t i, double& sum) const {
    for (int q = 0; q < kQ; ++q)
      sum += f[static_cast<std::int64_t>(q) * n + i] * hemo::lbm::c(q, 2);
  }
};

struct WallShearKernel {
  hemo::lbm::KernelArgs args;
  double waveform;
  void operator()(std::int64_t i, double& sum) const {
    double f[kQ];
    for (int q = 0; q < kQ; ++q)
      f[q] = args.f_in[static_cast<std::int64_t>(q) * args.n + i];
    const hemo::lbm::Moments m =
        hemo::lbm::moments_of(f, 0.0, 0.0, args.force_z);
    sum += waveform * (m.ux * m.ux + m.uy * m.uy);
  }
};

}  // namespace harveyx
