// HARVEY mini-corpus, Kokkos dialect: Views replace malloc/free; the
// explicit teardown shrinks to dropping references.

#include "common.h"

namespace harveyx {

void allocate_state(DeviceState* state, std::int64_t n_points,
                    std::int64_t halo_values) {
  state->n_points = n_points;
  const auto n = static_cast<std::size_t>(n_points);
  state->f_old = kx::View<double*>("f_old", static_cast<std::size_t>(kQ) * n);
  state->f_new = kx::View<double*>("f_new", static_cast<std::size_t>(kQ) * n);
  state->adjacency = kx::View<std::int64_t*>(
      "adjacency", static_cast<std::size_t>(kQ) * n);
  state->node_type = kx::View<std::uint8_t*>("node_type", n);
  state->reduce_scratch = kx::View<double*>("reduce_scratch", n);

  // Views start uninitialized on the device engine; zero the type field
  // explicitly (the CUDA version used cudaMemset).
  auto host_types = kx::create_mirror_view(state->node_type);
  kx::deep_copy(host_types, static_cast<std::uint8_t>(0));
  kx::deep_copy(state->node_type, host_types);

  allocate_comm_buffers(state, halo_values);
}

void free_state(DeviceState* state) {
  // Reference-counted Views release their allocations on reassignment.
  *state = DeviceState{};
}

}  // namespace harveyx
