#include "port/hipify.hpp"

#include <cctype>
#include <string_view>

namespace hemo::port {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces `from` with `to` wherever `from` starts an identifier (the
/// character before it is not an identifier character).  This is the
/// whole trick behind HIPify-perl: the APIs differ only in prefix.
std::string replace_prefix(const std::string& text, const std::string& from,
                           const std::string& to) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const bool at_ident_start = i == 0 || !is_ident_char(text[i - 1]);
    if (at_ident_start && text.compare(i, from.size(), from) == 0) {
      out += to;
      i += from.size();
    } else {
      out += text[i];
      ++i;
    }
  }
  return out;
}

}  // namespace

HipifyResult hipify(const std::string& cudax_source) {
  HipifyResult result;
  std::string text = cudax_source;

  // Include path: the only non-identifier rewrite.
  {
    const std::string from = "hal/cudax.hpp";
    const std::string to = "hal/hipx.hpp";
    std::size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
      text.replace(pos, from.size(), to);
      pos += to.size();
    }
  }

  // API identifiers: cudaxFoo -> hipxFoo; the corpus error-check macro
  // follows the same convention (CUDAX_CHECK -> HIPX_CHECK).
  text = replace_prefix(text, "cudax", "hipx");
  text = replace_prefix(text, "CUDAX_", "HIPX_");

  // Count rewritten lines by comparing against the input line by line.
  // string_view slices: the comparison must not allocate per line.
  const std::string_view src_view = cudax_source;
  const std::string_view out_view = text;
  std::size_t a = 0, b = 0;
  while (a < src_view.size() || b < out_view.size()) {
    const std::size_t ae = src_view.find('\n', a);
    const std::size_t be = out_view.find('\n', b);
    const std::string_view la = src_view.substr(
        a, (ae == std::string::npos ? src_view.size() : ae) - a);
    const std::string_view lb = out_view.substr(
        b, (be == std::string::npos ? out_view.size() : be) - b);
    if (la != lb) ++result.lines_touched;
    if (ae == std::string::npos || be == std::string::npos) break;
    a = ae + 1;
    b = be + 1;
  }

  result.output = std::move(text);
  return result;
}

}  // namespace hemo::port
