#include "port/dpct.hpp"

#include <array>
#include <sstream>

namespace hemo::port {

namespace {

void replace_all(std::string& line, const std::string& from,
                 const std::string& to) {
  std::size_t pos = 0;
  while ((pos = line.find(from, pos)) != std::string::npos) {
    line.replace(pos, from.size(), to);
    pos += to.size();
  }
}

bool contains(const std::string& line, const std::string& needle) {
  return line.find(needle) != std::string::npos;
}

std::string trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// CUDA APIs with no dpctx equivalent: the whole call line is removed
/// (left as a comment), as DPCT does for unsupported features.
constexpr std::array<const char*, 3> kUnsupported = {
    "cudaxFuncSetCacheConfig",
    "cudaxDeviceSetLimit",
    "cudaxStreamAttachMemAsync",
};

}  // namespace

DpctResult dpct_translate(const std::string& cudax_source,
                          const std::string& file_name) {
  DpctResult result;
  std::istringstream in(cudax_source);
  std::ostringstream out;
  std::string line;
  int line_no = 0;

  auto warn = [&](WarningCategory cat, const char* id, const char* msg) {
    result.warnings.push_back(Warning{file_name, line_no, cat, id, msg});
  };

  bool skipping_check_macro = false;
  while (std::getline(in, line)) {
    ++line_no;

    // --- The canonical CUDA error-check macro: replaced wholesale with an
    // exception-catching equivalent, since SYCL has no error codes.
    if (contains(line, "#define CUDAX_CHECK(")) {
      warn(WarningCategory::kErrorHandling, "DPCTX1000",
           "error codes are not preserved; SYCL reports errors by "
           "exception, the macro was rewritten to catch them");
      out << "#define DPCTX_CHECK(expr)                                   \\\n"
             "  do {                                                      \\\n"
             "    try {                                                   \\\n"
             "      (void)(expr);                                         \\\n"
             "    } catch (const hemo::hal::syclx::exception& e_) {       \\\n"
             "      std::fprintf(stderr, \"SYCL error %s at %s:%d\\n\",   \\\n"
             "                   e_.what(), __FILE__, __LINE__);          \\\n"
             "      std::abort();                                         \\\n"
             "    }                                                       \\\n"
             "  } while (0)\n";
      skipping_check_macro = true;
      continue;
    }
    if (skipping_check_macro) {
      // Consume the original macro's continuation lines.
      if (!line.empty() && line.back() == '\\') continue;
      skipping_check_macro = false;
      continue;
    }

    // --- Unsupported features: remove the call, keep a breadcrumb.
    bool unsupported = false;
    for (const char* api : kUnsupported) {
      if (contains(line, api)) {
        warn(WarningCategory::kUnsupportedFeature, "DPCTX1007",
             "the CUDA API has no DPC++ equivalent; the call was removed");
        out << "  /* DPCTX1007 removed: " << trimmed(line) << " */\n";
        unsupported = true;
        break;
      }
    }
    if (unsupported) continue;

    // --- Warnings on the original line content.
    if (contains(line, "CUDAX_CHECK(") || contains(line, "cudaxGetLastError")) {
      warn(WarningCategory::kErrorHandling, "DPCTX1003",
           "the error-code idiom was migrated; verify the exception-based "
           "replacement preserves the intended handling");
    }
    if (contains(line, "cudaxLaunchKernel(")) {
      warn(WarningCategory::kKernelInvocation, "DPCTX1049",
           "the generated work-group size may exceed device limits; "
           "adjust if needed");
    }
    if (contains(line, "cudaxMemPrefetchAsync(")) {
      warn(WarningCategory::kPerformanceImprovement, "DPCTX1026",
           "consider tuning the prefetch granularity for the target "
           "device");
    }
    if (contains(line, "sincospi(") && !contains(line, "dpctx::sincospi")) {
      warn(WarningCategory::kFunctionalEquivalence, "DPCTX1017",
           "dpctx::sincospi is not bit-identical to the CUDA intrinsic");
    }

    // --- Mechanical API mapping (order matters: longest prefixes first).
    replace_all(line, "#include \"hal/cudax.hpp\"",
                "#include \"port/dpctx.hpp\"");
    replace_all(line, "CUDAX_CHECK(", "DPCTX_CHECK(");
    replace_all(line, "cudaxMallocManaged(", "dpctx::malloc_shared(");
    replace_all(line, "cudaxMalloc(", "dpctx::malloc_device(");
    replace_all(line, "cudaxFree(", "dpctx::free(");
    replace_all(line, "cudaxMemcpyToSymbol(", "dpctx::memcpy_to_symbol(");
    replace_all(line, "cudaxMemcpyAsync(", "dpctx::memcpy_async(");
    replace_all(line, "cudaxMemcpy(", "dpctx::memcpy(");
    replace_all(line, "cudaxMemset(", "dpctx::memset(");
    replace_all(line, "cudaxMemPrefetchAsync(", "dpctx::prefetch(");
    replace_all(line, "cudaxDeviceSynchronize()",
                "dpctx::device_synchronize()");
    replace_all(line, "cudaxGetLastError()", "dpctx::get_last_error()");
    replace_all(line, "cudaxStreamCreate(", "dpctx::stream_create(");
    replace_all(line, "cudaxStreamDestroy(", "dpctx::stream_destroy(");
    replace_all(line, "cudaxStreamSynchronize(",
                "dpctx::stream_synchronize(");
    replace_all(line, "cudaxLaunchKernel(", "dpctx::parallel_for(");
    replace_all(line, "cudaxStream_t", "dpctx::stream");
    replace_all(line, "cudaxError_t", "int");
    replace_all(line, "cudaxSuccess", "0");
    // Memcpy kinds map onto dpctx direction tags (advisory: the USM queue
    // infers the real direction from pointer ownership).
    replace_all(line, "cudaxMemcpyHostToDevice", "dpctx::host_to_device");
    replace_all(line, "cudaxMemcpyDeviceToHost", "dpctx::device_to_host");
    replace_all(line, "cudaxMemcpyDeviceToDevice", "dpctx::device_to_device");
    // dim3 -> range.  Uninitialized declarations become invalid code
    // (dpctx::range has no default constructor); see header comment.
    replace_all(line, "dim3x", "dpctx::range");
    replace_all(line, "sincospi(", "dpctx::sincospi(");
    // The compat sincospi lives in dpctx; undo double-qualification if the
    // source already spelled a namespace.
    replace_all(line, "dpctx::dpctx::", "dpctx::");

    out << line << '\n';
  }

  result.output = out.str();
  return result;
}

std::vector<int> warning_histogram(const std::vector<Warning>& warnings) {
  std::vector<int> counts(5, 0);
  for (const Warning& w : warnings)
    ++counts[static_cast<std::size_t>(w.category)];
  return counts;
}

}  // namespace hemo::port
