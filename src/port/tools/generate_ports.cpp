// Regenerates the hipx and syclx corpora from the cudax corpus by running
// the mini-HIPify and mini-DPCT tools, exactly as the paper's porting
// workflow ran HIPify-perl and DPCT over the HARVEY sources.
//
//   hemo_generate_ports <output-root>
//
// writes <output-root>/hipx/* and <output-root>/syclx/* and prints the
// DPCT warning log.  The checked-in corpus/hipx is byte-identical to this
// tool's output (zero manual lines, Table 3); corpus/syclx additionally
// carries the manual dim3/range initializations the DPC++ port needs.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "port/corpus.hpp"
#include "port/dpct.hpp"
#include "port/hipify.hpp"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  namespace port = hemo::port;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 1;
  }
  const fs::path root = argv[1];
  fs::create_directories(root / "hipx");
  fs::create_directories(root / "syclx");

  int total_warnings = 0;
  for (const std::string& name : port::corpus_files()) {
    const std::string source =
        port::read_corpus_file(port::CorpusDialect::kCudax, name);

    const port::HipifyResult hip = port::hipify(source);
    std::ofstream(root / "hipx" / name) << hip.output;

    const port::DpctResult sycl = port::dpct_translate(source, name);
    std::ofstream(root / "syclx" / name) << sycl.output;
    for (const port::Warning& w : sycl.warnings) {
      std::printf("%s:%d: %s [%s] %s\n", w.file.c_str(), w.line,
                  w.id.c_str(), port::category_name(w.category),
                  w.message.c_str());
      ++total_warnings;
    }
  }
  std::printf("total DPCT warnings: %d over %zu files\n", total_warnings,
              port::corpus_files().size());
  return 0;
}
