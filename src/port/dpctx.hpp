#pragma once
// dpctx: the compatibility layer emitted by the mini-DPCT translator,
// standing in for the dpct/dpct.hpp helper header that DPCT-generated
// code depends on (the paper had to build it from SYCLomatic sources on
// Polaris and Crusher, Sections 7.1.1-7.1.2).  Implemented over the syclx
// dialect.  Functions return int error codes (always 0) so that migrated
// CUDA error-code plumbing still compiles — exactly the style of the real
// dpct helpers.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "hal/syclx.hpp"

namespace dpctx {

/// Default in-order queue, as dpct::get_default_queue().
inline hemo::hal::syclx::queue& queue() {
  static hemo::hal::syclx::queue q;
  return q;
}

/// SYCL ranges are not default-constructible; translated *uninitialized*
/// dim3 declarations therefore fail to compile until a human initializes
/// them (Table 3's manual DPCT lines).
struct range {
  explicit range(unsigned int x_) : x(x_) {}
  unsigned int x;
};

inline int malloc_device(void** ptr, std::size_t bytes) {
  *ptr = hemo::hal::syclx::malloc_device<std::byte>(bytes, queue());
  return 0;
}

inline int malloc_shared(void** ptr, std::size_t bytes) {
  *ptr = hemo::hal::syclx::malloc_shared<std::byte>(bytes, queue());
  return 0;
}

inline int free(void* ptr) {
  hemo::hal::syclx::free(ptr, queue());
  return 0;
}

/// Transfer directions, as dpct::memcpy_direction; the USM queue infers
/// the real direction from pointer ownership, so the tag is advisory.
enum direction {
  host_to_device = 0,
  device_to_host = 1,
  device_to_device = 2,
  automatic = 3,
};

inline int memcpy(void* dst, const void* src, std::size_t bytes,
                  direction /*dir*/ = automatic) {
  queue().memcpy(dst, src, bytes).wait();
  return 0;
}

using stream = std::uint64_t;

inline int memcpy_async(void* dst, const void* src, std::size_t bytes,
                        direction /*dir*/ = automatic, stream /*s*/ = 0) {
  queue().memcpy(dst, src, bytes);
  return 0;
}

inline int memcpy_to_symbol(void* symbol, const void* src,
                            std::size_t bytes) {
  return memcpy(symbol, src, bytes);
}

inline int memset(void* dst, int value, std::size_t bytes) {
  queue().memset(dst, value, bytes).wait();
  return 0;
}

inline int prefetch(const void* /*ptr*/, std::size_t /*bytes*/,
                    int /*device*/ = 0, stream /*s*/ = 0) {
  return 0;  // advisory
}

inline int device_synchronize() {
  queue().wait_and_throw();
  return 0;
}

inline int get_last_error() { return 0; }  // SYCL reports via exceptions

inline int stream_create(stream* s) {
  static stream next = 1;
  *s = next++;
  return 0;
}

inline int stream_destroy(stream /*s*/) { return 0; }
inline int stream_synchronize(stream /*s*/) { return 0; }

/// Launches kernel(i) over grid.x * block.x work items via an nd_range,
/// preserving the CUDA launch geometry.
template <typename Kernel>
int parallel_for(range grid, range block, Kernel kernel) {
  namespace sx = hemo::hal::syclx;
  const std::size_t global =
      static_cast<std::size_t>(grid.x) * static_cast<std::size_t>(block.x);
  queue().submit([&](sx::handler& h) {
    h.parallel_for(sx::nd_range(sx::range<1>(global),
                                sx::range<1>(block.x)),
                   [kernel](sx::nd_item item) {
                     kernel(static_cast<std::int64_t>(item.get_global_id(0)));
                   });
  });
  queue().wait();
  return 0;
}

/// Functional-equivalence case of Table 2: not bit-identical to the CUDA
/// intrinsic (computed via the standard library, not a fused pi-scaled
/// polynomial).
inline double sincospi(double x, double* cos_out) {
  constexpr double kPi = 3.14159265358979323846;
  *cos_out = std::cos(kPi * x);
  return std::sin(kPi * x);
}

}  // namespace dpctx
