#pragma once
// Line-of-code accounting for the porting study (Table 3): diff two
// versions of a source file and report lines added/changed/removed, the
// measure the paper uses to quantify porting effort.

#include <string>
#include <vector>

namespace hemo::port {

struct LocDelta {
  int added = 0;
  int changed = 0;
  int removed = 0;

  LocDelta& operator+=(const LocDelta& o) {
    added += o.added;
    changed += o.changed;
    removed += o.removed;
    return *this;
  }
};

/// Longest-common-subsequence line diff.  Within each divergent region,
/// paired old/new lines count as "changed"; surplus new lines as "added";
/// surplus old lines as "removed".
LocDelta loc_diff(const std::string& old_text, const std::string& new_text);

/// Source lines of code: non-blank, non-comment-only lines.
int count_sloc(const std::string& text);

std::vector<std::string> split_lines(const std::string& text);

}  // namespace hemo::port
