#pragma once
// Warning taxonomy of the mini-DPCT tool, mirroring the five categories
// the paper reports in Table 2 for Intel's DPC++ Compatibility Tool.

#include <string>
#include <vector>

namespace hemo::port {

enum class WarningCategory {
  kErrorHandling,       // CUDA error codes vs SYCL exceptions
  kUnsupportedFeature,  // CUDA API with no DPC++ equivalent
  kFunctionalEquivalence,  // replacement differs from an exact equivalent
  kKernelInvocation,    // auto-generated work-group sizes may need tuning
  kPerformanceImprovement,  // optional suggestions
};

constexpr const char* category_name(WarningCategory c) {
  switch (c) {
    case WarningCategory::kErrorHandling: return "Error handling";
    case WarningCategory::kUnsupportedFeature: return "Unsupported feature";
    case WarningCategory::kFunctionalEquivalence:
      return "Functional equivalence";
    case WarningCategory::kKernelInvocation: return "Kernel invocation";
    case WarningCategory::kPerformanceImprovement:
      return "Performance improvement";
  }
  return "?";
}

inline constexpr WarningCategory kAllWarningCategories[] = {
    WarningCategory::kErrorHandling,
    WarningCategory::kUnsupportedFeature,
    WarningCategory::kFunctionalEquivalence,
    WarningCategory::kKernelInvocation,
    WarningCategory::kPerformanceImprovement,
};

struct Warning {
  std::string file;
  int line = 0;  // 1-based line in the source file
  WarningCategory category = WarningCategory::kErrorHandling;
  std::string id;       // e.g. "DPCTX1003"
  std::string message;
};

/// Count warnings per category (indexed like kAllWarningCategories).
std::vector<int> warning_histogram(const std::vector<Warning>& warnings);

}  // namespace hemo::port
