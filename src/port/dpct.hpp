#pragma once
// Mini-DPCT: the cudax -> syclx (DPC++-style) translator, reproducing the
// role of Intel's DPC++ Compatibility Tool in the paper (Section 7.1).
// Like the real tool it performs a mechanical API mapping onto a compat
// layer ("port/dpctx.hpp", standing in for dpct/dpct.hpp), and emits
// categorized warnings wherever the translation is not a perfect
// equivalent — the five categories of Table 2:
//
//   Error handling:        CUDA reports by error code, SYCL by exception.
//   Unsupported feature:   CUDA APIs with no DPC++ equivalent (removed).
//   Functional equivalence: replacements that differ in detail (sincospi).
//   Kernel invocation:     auto-chosen work-group geometry may not fit.
//   Performance improvement: suggestions (prefetch hints).
//
// One deliberate imperfection mirrors the paper's experience: CUDA's dim3
// is default-constructible but dpctx::range is not, so translated
// *uninitialized* dim3x declarations do not compile until a human
// zero-initializes them — the manual lines counted in Table 3.

#include <string>
#include <vector>

#include "port/warnings.hpp"

namespace hemo::port {

struct DpctResult {
  std::string output;
  std::vector<Warning> warnings;
};

/// Translates one cudax source file; `file_name` labels the warnings.
DpctResult dpct_translate(const std::string& cudax_source,
                          const std::string& file_name);

}  // namespace hemo::port
