#pragma once
// Mini-HIPify: the regex-style cudax -> hipx translator, reproducing
// HIPify-perl (Section 7.2).  Because the hipx API mirrors cudax name for
// name — exactly as HIP mirrors CUDA — the conversion is a prefix rewrite
// plus an include switch, and the output needs zero manual lines (the
// paper's Table 3 HIPify row).

#include <string>

namespace hemo::port {

struct HipifyResult {
  std::string output;
  int lines_touched = 0;  // lines the tool rewrote (automatic, not manual)
};

/// Translates one cudax source to hipx.  Identifier-aware: replaces the
/// `cudax` prefix only at identifier starts, so e.g. "mycudax" survives.
HipifyResult hipify(const std::string& cudax_source);

}  // namespace hemo::port
