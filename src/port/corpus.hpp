#pragma once
// Access to the mini-CUDA source corpus: the 28 cudax source files under
// src/port/corpus/ that stand in for the HARVEY CUDA codebase in the
// porting study, together with the checked-in ports:
//
//   corpus/cudax/    the "legacy" code (compiled as hemo_corpus_cudax)
//   corpus/hipx/     exactly the mini-HIPify output (zero manual lines)
//   corpus/syclx/    mini-DPCT output plus the manual dim3/range fixes
//   corpus/kokkosx/  the fully manual Kokkos port
//
// Paths resolve against the repository root baked in at configure time.

#include <string>
#include <vector>

namespace hemo::port {

enum class CorpusDialect { kCudax, kHipx, kSyclx, kKokkosx };

/// Repository-absolute directory of one corpus dialect.
std::string corpus_directory(CorpusDialect dialect);

/// Sorted file names (e.g. "stream_collide.cpp") of the cudax corpus;
/// the other dialects mirror the same names.
std::vector<std::string> corpus_files();

/// Reads one corpus file; aborts if missing (the corpus ships with the
/// repository).
std::string read_corpus_file(CorpusDialect dialect, const std::string& name);

}  // namespace hemo::port
