#include "port/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/contracts.hpp"

#ifndef HEMO_REPO_DIR
#error "HEMO_REPO_DIR must be defined by the build system"
#endif

namespace hemo::port {

namespace {

const char* dialect_dir(CorpusDialect d) {
  switch (d) {
    case CorpusDialect::kCudax: return "cudax";
    case CorpusDialect::kHipx: return "hipx";
    case CorpusDialect::kSyclx: return "syclx";
    case CorpusDialect::kKokkosx: return "kokkosx";
  }
  return "";
}

}  // namespace

std::string corpus_directory(CorpusDialect dialect) {
  return std::string(HEMO_REPO_DIR) + "/src/port/corpus/" +
         dialect_dir(dialect);
}

std::vector<std::string> corpus_files() {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  const fs::path dir = corpus_directory(CorpusDialect::kCudax);
  HEMO_EXPECTS(fs::is_directory(dir));
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.ends_with(".cpp") || name.ends_with(".h"))
      names.push_back(std::move(name));
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string read_corpus_file(CorpusDialect dialect, const std::string& name) {
  const std::string path = corpus_directory(dialect) + "/" + name;
  std::ifstream in(path);
  HEMO_EXPECTS(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace hemo::port
