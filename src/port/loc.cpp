#include "port/loc.hpp"

#include <algorithm>

namespace hemo::port {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(
                    std::count(text.begin(), text.end(), '\n')) +
                1);
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

LocDelta loc_diff(const std::string& old_text, const std::string& new_text) {
  const std::vector<std::string> a = split_lines(old_text);
  const std::vector<std::string> b = split_lines(new_text);
  const std::size_t n = a.size(), m = b.size();

  // LCS table; corpus files are small (hundreds of lines), so the
  // quadratic table is fine.
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;)
    for (std::size_t j = m; j-- > 0;)
      lcs[i][j] = (a[i] == b[j]) ? lcs[i + 1][j + 1] + 1
                                 : std::max(lcs[i + 1][j], lcs[i][j + 1]);

  // Backtrace into an edit script, then pair removals with additions in
  // each divergent run: pairs are "changed", the surplus is added/removed.
  LocDelta delta;
  std::size_t i = 0, j = 0;
  int run_removed = 0, run_added = 0;
  auto flush_run = [&] {
    const int paired = std::min(run_removed, run_added);
    delta.changed += paired;
    delta.added += run_added - paired;
    delta.removed += run_removed - paired;
    run_removed = run_added = 0;
  };
  while (i < n || j < m) {
    if (i < n && j < m && a[i] == b[j]) {
      flush_run();
      ++i;
      ++j;
    } else if (j >= m || (i < n && lcs[i + 1][j] >= lcs[i][j + 1])) {
      ++run_removed;
      ++i;
    } else {
      ++run_added;
      ++j;
    }
  }
  flush_run();
  return delta;
}

int count_sloc(const std::string& text) {
  int sloc = 0;
  for (const std::string& line : split_lines(text)) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 2, "//") == 0) continue;
    if (line.compare(first, 2, "/*") == 0 &&
        line.find("*/") == line.size() - 2)
      continue;
    ++sloc;
  }
  return sloc;
}

}  // namespace hemo::port
