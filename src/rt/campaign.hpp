#pragma once
// Campaign layer of hemo-rt: turns the paper's evaluation matrix —
// {systems} x {programming models} x {apps} x {workloads} x {schedule
// points} — into a job graph and executes it concurrently on the
// work-stealing executor, with the expensive intermediates (workload
// voxelizations, decompositions, halo plans) shared through the
// ArtifactCache and per-point fault isolation through the job layer.
//
// Determinism: every (series, schedule point) job computes from the same
// inputs regardless of scheduling, and results are written into
// pre-assigned slots, so a campaign's output is bit-identical for any
// worker count — including 1, which is the serial path.
//
// Fault tolerance: a point whose job throws (or times out) is retried
// with backoff; if it still fails, the failure is captured on that point
// and the rest of the campaign completes normally.

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/types.hpp"
#include "hal/model.hpp"
#include "perf/model.hpp"
#include "rt/cache.hpp"
#include "rt/executor.hpp"
#include "rt/job.hpp"
#include "sim/simulator.hpp"
#include "sys/hardware.hpp"

namespace hemo::rt {

// ---------------------------------------------------------------------------
// Workloads by name, so campaign specs are plain data.
// ---------------------------------------------------------------------------

enum class WorkloadKind { kCylinderSlab, kCylinderBisection, kAorta };

inline constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kCylinderSlab, WorkloadKind::kCylinderBisection,
    WorkloadKind::kAorta};

std::string_view workload_name(WorkloadKind kind);

/// Builds the workload from scratch (voxelize + fresh stats memo): the
/// uncached serial path, and the producer behind the cached artifact.
sim::Workload make_workload(WorkloadKind kind);

/// The cached workload artifact: voxelized once per cache, shared by every
/// job that prices it.
std::shared_ptr<sim::Workload> shared_workload(ArtifactCache& cache,
                                               WorkloadKind kind);

/// The cached decomposition + halo-plan artifact of one rank count,
/// aliasing into the workload's stats memo (the returned pointer keeps the
/// workload alive).
std::shared_ptr<const sim::RankStats> shared_rank_stats(
    ArtifactCache& cache, const std::shared_ptr<sim::Workload>& workload,
    int n_ranks);

// ---------------------------------------------------------------------------
// Campaign specification.
// ---------------------------------------------------------------------------

/// One curve of the evaluation matrix: a (system, model, app, workload)
/// combination priced over the system's full piecewise schedule.
struct SeriesSpec {
  sys::SystemId system = sys::SystemId::kSummit;
  hal::Model model = hal::Model::kCuda;
  sim::App app = sim::App::kHarvey;
  WorkloadKind workload = WorkloadKind::kCylinderBisection;
};

/// Shrink provenance of one degraded point: which ranks died, where the
/// solver re-decomposed and resumed, and how many devices finished the
/// work (the count MFLUPS/efficiency are reported against).  Mirrors
/// resilience::RunStats' {dead_ranks, last_recovery_step} plus the
/// survivor count.
struct ShrinkProvenance {
  std::vector<Rank> failed_ranks;       // death order
  std::int64_t recovery_step = -1;      // step the last shrink resumed at
  int survivor_count = 0;               // devices that finished the point
};

/// SDC sentinel provenance of one point: silent-data-corruption events the
/// solver's RS006 guard detected (and recovered from) while the point ran.
/// Mirrors resilience::RunStats' sdc counters.  A point with detections is
/// still "ok" — detection plus rollback IS the success path; the report
/// makes the campaign self-auditing rather than failing.
struct SdcReport {
  std::int64_t detected = 0;         // confirmed RS006 detections
  std::int64_t false_positives = 0;  // retracted (checker-fault) mismatches
  std::int64_t quarantines = 0;      // ranks retired via the shrink path
};

/// "Summit/CUDA/HARVEY/cylinder-bisection" — job names and report rows.
std::string series_label(const SeriesSpec& spec);

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<SeriesSpec> series;
  int workers = 0;  // <= 0: hardware concurrency
  /// Per-point timeout/retry defaults; JobOptions::name is overridden with
  /// the point's label.
  JobOptions job;
  /// Optional override for workload acquisition (bench shared statics,
  /// ablation variants).  When set, the campaign does not consult the
  /// artifact cache for workloads; the provider's workload must outlive
  /// the campaign AND the cache (its rank stats are cached by reference).
  std::function<std::shared_ptr<sim::Workload>(const SeriesSpec&)>
      workload_provider;
  /// Test hook, called at the start of every attempt; throwing fails the
  /// attempt (used to seed faults in the retry tests).
  std::function<void(const SeriesSpec&, const sys::SchedulePoint&,
                     int attempt)>
      fault_injector;
  /// Rank-death hook: called once per point after it priced cleanly; a
  /// returned provenance means the point lost ranks mid-run and finished
  /// in degraded mode on the survivors.  The point is then re-priced —
  /// measured MFLUPS and the ideal prediction both — against the
  /// post-shrink device count (ClusterSimulator::predict_degraded), its
  /// status becomes "degraded" in every sink, and the campaign continues;
  /// a rank death never aborts a campaign.
  std::function<std::optional<ShrinkProvenance>(const SeriesSpec&,
                                                const sys::SchedulePoint&)>
      rank_failure_injector;
  /// SDC hook: called once per point after it priced; a returned report
  /// means the point's solver run detected (and survived) silent data
  /// corruption.  The report is attached to the point and surfaced in the
  /// CSV/JSON sinks; it never fails or re-prices the point.
  std::function<std::optional<SdcReport>(const SeriesSpec&,
                                         const sys::SchedulePoint&)>
      sdc_injector;
  /// Statically validates every series' workload before pricing it: a
  /// small decomposition of the measured lattice is built and run through
  /// DistributedSolver::validate() (lattice, partition and halo-exchange
  /// checkers, rules LC001-LC010).  Error diagnostics become structured
  /// failures on every point of the offending series — the campaign
  /// completes and reports them instead of pricing a corrupted geometry.
  bool preflight = false;
  int preflight_ranks = 4;
};

// ---------------------------------------------------------------------------
// Campaign results.
// ---------------------------------------------------------------------------

struct PointResult {
  sys::SchedulePoint schedule;
  sim::SimPoint sim;            // valid iff ok()
  perf::Prediction prediction;  // valid iff ok()
  int attempts = 0;
  std::optional<JobFailure> failure;
  /// Present when the point lost ranks and completed on the survivors;
  /// sim/prediction are then priced against shrink->survivor_count
  /// devices, not schedule.devices.
  std::optional<ShrinkProvenance> shrink;
  /// Present when the point's run reported SDC sentinel activity.
  std::optional<SdcReport> sdc;

  bool ok() const { return !failure.has_value(); }
  bool degraded() const { return ok() && shrink.has_value(); }
};

struct SeriesResult {
  SeriesSpec spec;
  std::vector<PointResult> points;  // schedule order
};

// ---------------------------------------------------------------------------
// Point-level pricing: the unit of work both run_campaign and the
// hemo-serve dispatcher execute.  Factored out so the serving tier prices
// points through literally the same code path as the batch campaign —
// the byte-identical-output guarantee between the two rests on this.
// ---------------------------------------------------------------------------

/// The optional per-point hooks of CampaignSpec, bundled so price_point
/// can be called outside a campaign (the serving tier passes none).
struct PointHooks {
  std::function<std::shared_ptr<sim::Workload>(const SeriesSpec&)>
      workload_provider;
  std::function<void(const SeriesSpec&, const sys::SchedulePoint&,
                     int attempt)>
      fault_injector;
  std::function<std::optional<ShrinkProvenance>(const SeriesSpec&,
                                                const sys::SchedulePoint&)>
      rank_failure_injector;
  std::function<std::optional<SdcReport>(const SeriesSpec&,
                                         const sys::SchedulePoint&)>
      sdc_injector;
};

/// Canonical identity of one evaluation point — the coalescing and
/// result-memo key of the serving tier:
/// "point/Summit/CUDA/HARVEY/aorta/devices=64/size=2".
std::string point_key(const SeriesSpec& series,
                      const sys::SchedulePoint& schedule);

/// The structured failure a series gets when the study never evaluated
/// its model on its system (attempts = 0, one message per point);
/// nullopt when the combination is available.
std::optional<JobFailure> unavailable_failure(const SeriesSpec& series);

/// Prices one (series, schedule point) with job-level retry/timeout and
/// artifact sharing through `cache`.  Never throws: a failed job is
/// captured on the returned PointResult.  Availability is NOT checked
/// here (see unavailable_failure).
PointResult price_point(ArtifactCache& cache, const SeriesSpec& series,
                        const sys::SchedulePoint& schedule,
                        const JobOptions& job, const PointHooks& hooks = {});

struct CampaignResult {
  std::string name;
  int workers = 0;
  double wall_s = 0.0;
  std::vector<SeriesResult> series;  // spec order
  ArtifactCache::Stats cache;                 // aggregate across shards
  std::vector<ArtifactCache::Stats> cache_shards;  // per lock stripe
  Executor::Stats executor;

  /// Optional pre-rendered JSON object from the hemo-flux static traffic
  /// audit (analysis::traffic_audit_json).  Filled by the campaign tool,
  /// not by run_campaign — rt stays independent of the analysis layer.
  /// When non-empty, write_campaign_json emits it as "traffic_audit".
  std::string traffic_audit_json;

  std::size_t total_points() const;
  std::size_t failed_points() const;
  /// Points that lost ranks but completed on the survivors.
  std::size_t degraded_points() const;
  /// Confirmed SDC detections summed over every point's report.
  std::int64_t sdc_detected_total() const;
  /// The captured failures, in deterministic (series, point) order.
  std::vector<JobFailure> failures() const;
};

/// Runs the campaign on a private artifact cache.
CampaignResult run_campaign(const CampaignSpec& spec);

/// Runs the campaign sharing `cache` (e.g. across several campaigns or
/// with the bench layer's process-wide cache).
CampaignResult run_campaign(const CampaignSpec& spec, ArtifactCache& cache);

// ---------------------------------------------------------------------------
// Figure matrices and spec parsing.
// ---------------------------------------------------------------------------

/// The full evaluation matrix behind one of the paper's figures: "fig3",
/// "fig4", "fig5", "fig6", "fig7", or "all" (their concatenation).
/// Aborts on an unknown figure name (use known_figures() to validate).
std::vector<SeriesSpec> figure_matrix(std::string_view figure);
std::vector<std::string> known_figures();

bool parse_system(std::string_view text, sys::SystemId* out);
bool parse_model(std::string_view text, hal::Model* out);
bool parse_app(std::string_view text, sim::App* out);
bool parse_workload(std::string_view text, WorkloadKind* out);

/// "system:model:app:workload", e.g. "crusher:hip:harvey:aorta".  The app
/// and workload parts are optional ("crusher:hip" prices HARVEY on the
/// bisection cylinder).
bool parse_series(std::string_view text, SeriesSpec* out);

// ---------------------------------------------------------------------------
// Result sinks.
// ---------------------------------------------------------------------------

/// One CSV row per (series, point) with status/attempts/error columns.
void write_campaign_csv(const CampaignResult& result, std::ostream& os);

/// Full structured dump: campaign metadata, cache/executor counters, and
/// every point (failures included).
void write_campaign_json(const CampaignResult& result, std::ostream& os);

}  // namespace hemo::rt
