#include "rt/cache.hpp"

#include <algorithm>

#include "base/contracts.hpp"

namespace hemo::rt {

ArtifactCache::ArtifactCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<void> ArtifactCache::lookup(
    const std::string& key, std::type_index type,
    const std::function<std::shared_ptr<void>()>& make) {
  std::promise<std::shared_ptr<void>> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      HEMO_EXPECTS(it->second.type == type);
      it->second.last_used = ++tick_;
      ++stats_.hits;
      std::shared_future<std::shared_ptr<void>> value = it->second.value;
      lock.unlock();
      return value.get();  // blocks while the producer is still computing
    }
    ++stats_.misses;
    map_.emplace(key,
                 Entry{promise.get_future().share(), type, ++tick_, false});
  }

  // Compute outside the lock so distinct keys build concurrently.
  std::shared_ptr<void> value;
  try {
    value = make();
  } catch (...) {
    promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mu_);
    map_.erase(key);  // failed computes are not cached
    throw;
  }

  promise.set_value(value);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) it->second.ready = true;
  evict_excess_locked();
  return value;
}

void ArtifactCache::evict_excess_locked() {
  while (map_.size() > capacity_) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (!it->second.ready) continue;  // never drop an in-flight compute
      if (victim == map_.end() || it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == map_.end()) return;  // everything resident is in flight
    map_.erase(victim);
    ++stats_.evictions;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = map_.size();
  return out;
}

void ArtifactCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  stats_ = Stats{};
  tick_ = 0;
}

std::string canonical_key(std::initializer_list<std::string> parts) {
  std::string key;
  for (const std::string& part : parts) {
    if (!key.empty()) key += '/';
    key += part;
  }
  return key;
}

}  // namespace hemo::rt
