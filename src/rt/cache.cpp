#include "rt/cache.hpp"

#include <algorithm>

#include "base/contracts.hpp"

namespace hemo::rt {

ArtifactCache::ArtifactCache(std::size_t capacity, std::size_t shards) {
  const std::size_t n = std::max<std::size_t>(1, shards);
  // Per-shard slice of the requested capacity, rounded up so the total is
  // never below what the caller asked for.
  shard_capacity_ = std::max<std::size_t>(1, (std::max<std::size_t>(1, capacity) + n - 1) / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

// shards_ is immutable after construction; only each Shard's interior
// state is mutable, and that is guarded by the shard's own mutex.
ArtifactCache::Shard& ArtifactCache::shard_of(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<void> ArtifactCache::lookup(
    const std::string& key, std::type_index type,
    const std::function<std::shared_ptr<void>()>& make) {
  Shard& shard = shard_of(key);
  std::promise<std::shared_ptr<void>> promise;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      HEMO_EXPECTS(it->second.type == type);
      it->second.last_used = ++shard.tick;
      ++shard.stats.hits;
      std::shared_future<std::shared_ptr<void>> value = it->second.value;
      lock.unlock();
      return value.get();  // blocks while the producer is still computing
    }
    ++shard.stats.misses;
    shard.map.emplace(
        key, Entry{promise.get_future().share(), type, ++shard.tick, false});
  }

  // Compute outside the lock so distinct keys build concurrently.
  std::shared_ptr<void> value;
  try {
    value = make();
  } catch (...) {
    promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(key);  // failed computes are not cached
    throw;
  }

  promise.set_value(value);
  const std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) it->second.ready = true;
  evict_excess_locked(shard);
  return value;
}

void ArtifactCache::evict_excess_locked(Shard& shard) {
  while (shard.map.size() > shard_capacity_) {
    auto victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (!it->second.ready) continue;  // never drop an in-flight compute
      if (victim == shard.map.end() ||
          it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == shard.map.end()) return;  // everything resident is in flight
    shard.map.erase(victim);
    ++shard.stats.evictions;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->stats.hits;
    out.misses += shard->stats.misses;
    out.evictions += shard->stats.evictions;
    out.entries += shard->map.size();
  }
  return out;
}

std::vector<ArtifactCache::Stats> ArtifactCache::shard_stats() const {
  std::vector<Stats> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    Stats s = shard->stats;
    s.entries = shard->map.size();
    out.push_back(s);
  }
  return out;
}

void ArtifactCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->stats = Stats{};
    shard->tick = 0;
  }
}

std::string canonical_key(std::initializer_list<std::string> parts) {
  std::string key;
  for (const std::string& part : parts) {
    if (!key.empty()) key += '/';
    key += part;
  }
  return key;
}

}  // namespace hemo::rt
