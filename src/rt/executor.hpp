#pragma once
// Work-stealing thread-pool executor for the campaign runtime.
//
// Shape: one deque per worker.  submit() places tasks round-robin across
// the deques; a worker pops the newest task from its own deque (LIFO, the
// cache-warm end) and, when its deque is empty, steals the *oldest* task
// from the longest other deque (FIFO steal).  The deques hang off a single
// pool mutex — jobs here are millisecond-scale simulator pricings, so lock
// traffic is noise compared to the work, and a lock-based pool keeps the
// drain/shutdown semantics easy to reason about.
//
// The queue is bounded: submit() from outside the pool blocks while
// `queue_capacity` tasks are already waiting (backpressure for huge
// campaigns).  A task that submits from inside a worker bypasses the
// bound, because blocking a worker on a full queue would deadlock the
// pool.
//
// Shutdown is graceful: shutdown() (and the destructor) stop intake,
// finish every queued task, then join the workers.
//
// The executor itself imposes no completion order; deterministic result
// ordering is the caller's job (the campaign layer writes each result
// into a pre-assigned slot, so output is independent of worker count).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hemo::rt {

struct ExecutorOptions {
  int workers = 0;                    // <= 0: hardware concurrency
  std::size_t queue_capacity = 4096;  // bound on queued (not yet running) tasks
};

class Executor {
 public:
  using Task = std::function<void()>;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;  // tasks a worker took from another's deque
    /// Most tasks ever waiting in the deques at once: how deep the backlog
    /// got behind the workers.  Admission control (hemo::serve) reads this
    /// to see how close a serving executor came to its queue bound.
    std::uint64_t queue_high_watermark = 0;
  };

  explicit Executor(ExecutorOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task.  Blocks while the queue is at capacity (unless
  /// called from a worker thread of this executor).  Precondition: the
  /// executor has not been shut down.
  void submit(Task task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Stops intake, drains the queue, joins the workers.  Idempotent.
  void shutdown();

  // immutable after construction: deques_ is sized once, before workers run
  int workers() const { return static_cast<int>(deques_.size()); }
  Stats stats() const;

 private:
  void worker_loop(std::size_t self);
  bool pop_task(std::size_t self, Task* out);  // requires mu_ held

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // workers: a task or stop arrived
  std::condition_variable cv_space_;  // producers: queue has room
  std::condition_variable cv_idle_;   // waiters: pending dropped to zero
  std::vector<std::deque<Task>> deques_;
  std::vector<std::thread> threads_;
  std::size_t next_deque_ = 0;  // round-robin placement cursor
  std::size_t queued_ = 0;      // tasks sitting in deques
  std::size_t pending_ = 0;     // queued + currently running
  std::size_t capacity_;
  bool stop_ = false;
  Stats stats_;
};

}  // namespace hemo::rt
