#include "rt/campaign.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "analysis/diagnostics.hpp"
#include "base/contracts.hpp"
#include "base/table.hpp"
#include "decomp/partition.hpp"
#include "harvey/distributed_solver.hpp"
#include "sim/profiles.hpp"

namespace hemo::rt {

namespace {

std::string lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Shortest-round-trip double formatting for the machine-readable sinks
/// (Table::num's fixed precision would truncate iteration times).
std::string fmt_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

/// Death-order rank list for one CSV cell; ';'-separated so the cell
/// survives comma-splitting CSV consumers.
std::string join_ranks(const std::vector<Rank>& ranks) {
  std::string out;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i) out += ';';
    out += std::to_string(ranks[i]);
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view system_token(sys::SystemId id) {
  switch (id) {
    case sys::SystemId::kSummit: return "summit";
    case sys::SystemId::kPolaris: return "polaris";
    case sys::SystemId::kCrusher: return "crusher";
    case sys::SystemId::kSunspot: return "sunspot";
  }
  return "?";
}

std::string_view app_name(sim::App app) {
  return app == sim::App::kHarvey ? "HARVEY" : "ProxyApp";
}

struct Priced {
  sim::SimPoint sim;
  perf::Prediction prediction;
  std::optional<ShrinkProvenance> shrink;
  std::optional<SdcReport> sdc;
};

/// Preflight validation: decomposes the measured lattice the way the
/// workload itself would and runs the distributed solver's static
/// validators.  Returns "" when clean, else a one-line summary of the
/// error diagnostics (warnings do not fail a series).
std::string preflight_errors(const sim::Workload& workload, int ranks) {
  const std::shared_ptr<const lbm::SparseLattice> lattice =
      workload.lattice_ptr();
  const int r = std::max<int>(
      1, std::min<std::int64_t>(ranks, lattice->size()));
  decomp::Partition partition =
      workload.kind() == sim::DecompositionKind::kSlab
          ? decomp::slab_partition(*lattice, r)
          : decomp::bisection_partition(*lattice, r);
  const harvey::DistributedSolver solver(lattice, std::move(partition),
                                         lbm::SolverOptions{});
  const std::vector<analysis::Diagnostic> diagnostics = solver.validate();
  const int errors =
      analysis::count_at(diagnostics, analysis::Severity::kError);
  if (errors == 0) return "";
  std::string msg = "preflight: " + std::to_string(errors) +
                    " validation error(s) on workload '" + workload.name() +
                    "' at " + std::to_string(r) + " ranks";
  for (const analysis::Diagnostic& d : diagnostics) {
    if (d.severity != analysis::Severity::kError) continue;
    msg += "; first: [" + d.rule_id + "] " + d.message;
    break;
  }
  return msg;
}

}  // namespace

std::string_view workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCylinderSlab: return "cylinder-slab";
    case WorkloadKind::kCylinderBisection: return "cylinder-bisection";
    case WorkloadKind::kAorta: return "aorta";
  }
  return "?";
}

sim::Workload make_workload(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCylinderSlab:
      return sim::Workload::cylinder(sim::DecompositionKind::kSlab);
    case WorkloadKind::kCylinderBisection:
      return sim::Workload::cylinder(sim::DecompositionKind::kBisection);
    case WorkloadKind::kAorta:
      return sim::Workload::aorta();
  }
  HEMO_ASSERT(false);  // unreachable
  return sim::Workload::aorta();
}

std::shared_ptr<sim::Workload> shared_workload(ArtifactCache& cache,
                                               WorkloadKind kind) {
  const std::string key =
      canonical_key({"workload", std::string(workload_name(kind))});
  return cache.get_or_compute<sim::Workload>(key, [kind] {
    return std::make_shared<sim::Workload>(make_workload(kind));
  });
}

std::shared_ptr<const sim::RankStats> shared_rank_stats(
    ArtifactCache& cache, const std::shared_ptr<sim::Workload>& workload,
    int n_ranks) {
  HEMO_EXPECTS(workload != nullptr);
  // measured_points disambiguates workloads that share a name but were
  // built at different measurement resolutions within one process.
  const std::string key = canonical_key(
      {"stats", workload->name(),
       "points=" + std::to_string(workload->measured_points()),
       "ranks=" + std::to_string(n_ranks)});
  return cache.get_or_compute<const sim::RankStats>(key, [&] {
    // Aliasing: the artifact points into the workload's own stats memo
    // and shares ownership of the workload.
    return std::shared_ptr<const sim::RankStats>(workload,
                                                 &workload->stats(n_ranks));
  });
}

std::string series_label(const SeriesSpec& spec) {
  std::string label = sys::system_spec(spec.system).name;
  label += '/';
  label += hal::name_of(spec.model);
  label += '/';
  label += app_name(spec.app);
  label += '/';
  label += workload_name(spec.workload);
  return label;
}

std::string point_key(const SeriesSpec& series,
                      const sys::SchedulePoint& schedule) {
  return canonical_key({"point", series_label(series),
                        "devices=" + std::to_string(schedule.devices),
                        "size=" + std::to_string(schedule.size_multiplier)});
}

std::optional<JobFailure> unavailable_failure(const SeriesSpec& series) {
  if (sim::model_available(series.system, series.model)) return std::nullopt;
  return JobFailure{series_label(series), 0, false,
                    std::string(hal::name_of(series.model)) +
                        " was not evaluated on " +
                        sys::system_spec(series.system).name +
                        " in the study"};
}

PointResult price_point(ArtifactCache& cache, const SeriesSpec& series,
                        const sys::SchedulePoint& schedule,
                        const JobOptions& job, const PointHooks& hooks) {
  PointResult out;
  out.schedule = schedule;

  JobOptions options = job;
  options.name = series_label(series) +
                 "/devices=" + std::to_string(schedule.devices) +
                 "/size=" + std::to_string(schedule.size_multiplier);

  JobOutcome<Priced> outcome =
      run_job<Priced>(options, [&](int attempt) -> Priced {
        if (hooks.fault_injector)
          hooks.fault_injector(series, schedule, attempt);
        const std::shared_ptr<sim::Workload> workload =
            hooks.workload_provider ? hooks.workload_provider(series)
                                    : shared_workload(cache, series.workload);
        // Warm the shared decomposition/halo artifact through the
        // instrumented cache; simulate() then hits the workload's
        // own memo for the same rank count.
        shared_rank_stats(cache, workload, schedule.devices);
        const sim::ClusterSimulator simulator(series.system, series.model,
                                              series.app);
        Priced priced;
        priced.sim = simulator.simulate(*workload, schedule.devices,
                                        schedule.size_multiplier);
        priced.prediction = simulator.predict(*workload, schedule.devices,
                                              schedule.size_multiplier);

        // A rank death mid-run never fails the point: the solver
        // shrinks onto the survivors and the point completes
        // degraded, priced — measured and predicted both — against
        // the devices that finished the work.
        if (hooks.rank_failure_injector) {
          std::optional<ShrinkProvenance> shrink =
              hooks.rank_failure_injector(series, schedule);
          if (shrink.has_value()) {
            HEMO_EXPECTS(shrink->survivor_count >= 1);
            HEMO_EXPECTS(shrink->survivor_count <= schedule.devices);
            priced.sim = simulator.simulate(*workload, shrink->survivor_count,
                                            schedule.size_multiplier);
            priced.prediction = simulator.predict_degraded(
                *workload, schedule.devices, shrink->survivor_count,
                schedule.size_multiplier);
            priced.shrink = std::move(shrink);
          }
        }
        // SDC sentinel activity annotates the point; detection + recovery
        // is the success path, so it neither fails nor re-prices it.
        if (hooks.sdc_injector)
          priced.sdc = hooks.sdc_injector(series, schedule);
        return priced;
      });

  out.attempts = outcome.attempts;
  if (outcome.ok()) {
    out.sim = outcome.value->sim;
    out.prediction = outcome.value->prediction;
    out.shrink = std::move(outcome.value->shrink);
    out.sdc = outcome.value->sdc;
  } else {
    out.failure = std::move(outcome.failure);
  }
  return out;
}

std::size_t CampaignResult::total_points() const {
  std::size_t n = 0;
  for (const SeriesResult& s : series) n += s.points.size();
  return n;
}

std::size_t CampaignResult::failed_points() const {
  std::size_t n = 0;
  for (const SeriesResult& s : series)
    for (const PointResult& p : s.points)
      if (!p.ok()) ++n;
  return n;
}

std::size_t CampaignResult::degraded_points() const {
  std::size_t n = 0;
  for (const SeriesResult& s : series)
    for (const PointResult& p : s.points)
      if (p.degraded()) ++n;
  return n;
}

std::int64_t CampaignResult::sdc_detected_total() const {
  std::int64_t n = 0;
  for (const SeriesResult& s : series)
    for (const PointResult& p : s.points)
      if (p.sdc.has_value()) n += p.sdc->detected;
  return n;
}

std::vector<JobFailure> CampaignResult::failures() const {
  std::vector<JobFailure> out;
  for (const SeriesResult& s : series)
    for (const PointResult& p : s.points)
      if (p.failure) out.push_back(*p.failure);
  return out;
}

CampaignResult run_campaign(const CampaignSpec& spec) {
  ArtifactCache cache;
  return run_campaign(spec, cache);
}

CampaignResult run_campaign(const CampaignSpec& spec, ArtifactCache& cache) {
  using clock = std::chrono::steady_clock;
  const clock::time_point start = clock::now();

  CampaignResult out;
  out.name = spec.name;

  // Pre-assign every result slot so the output layout is fixed before any
  // job runs: ordering is (series, schedule point), independent of worker
  // count and steal pattern.
  out.series.resize(spec.series.size());
  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    out.series[s].spec = spec.series[s];
    const std::vector<sys::SchedulePoint> schedule = sys::piecewise_schedule(
        sys::system_spec(spec.series[s].system).max_devices);
    out.series[s].points.resize(schedule.size());
    for (std::size_t k = 0; k < schedule.size(); ++k)
      out.series[s].points[k].schedule = schedule[k];
  }

  Executor executor({spec.workers, /*queue_capacity=*/4096});
  out.workers = executor.workers();

  for (std::size_t s = 0; s < out.series.size(); ++s) {
    const SeriesSpec& series = out.series[s].spec;

    // A model the study never ran on this system is a structured failure
    // of the whole series, not an abort (profile_for's contract would
    // otherwise kill the process).
    if (const std::optional<JobFailure> unavailable =
            unavailable_failure(series)) {
      for (PointResult& point : out.series[s].points)
        point.failure = unavailable;
      continue;
    }

    if (spec.preflight) {
      // Validation failures are structured, per-series, and non-fatal to
      // the rest of the campaign — exactly like any other point failure.
      std::string error;
      try {
        const std::shared_ptr<sim::Workload> workload =
            spec.workload_provider ? spec.workload_provider(series)
                                   : shared_workload(cache, series.workload);
        error = preflight_errors(*workload, spec.preflight_ranks);
      } catch (const std::exception& ex) {
        error = std::string("preflight: ") + ex.what();
      }
      if (!error.empty()) {
        for (PointResult& point : out.series[s].points)
          point.failure = JobFailure{series_label(series), 0, false, error};
        continue;
      }
    }

    for (PointResult& point : out.series[s].points) {
      PointResult* slot = &point;
      executor.submit([&spec, &cache, &series, slot] {
        PointHooks hooks;
        hooks.workload_provider = spec.workload_provider;
        hooks.fault_injector = spec.fault_injector;
        hooks.rank_failure_injector = spec.rank_failure_injector;
        hooks.sdc_injector = spec.sdc_injector;
        *slot = price_point(cache, series, slot->schedule, spec.job, hooks);
      });
    }
  }

  executor.wait_idle();
  out.executor = executor.stats();
  executor.shutdown();
  out.cache = cache.stats();
  out.cache_shards = cache.shard_stats();
  out.wall_s = std::chrono::duration<double>(clock::now() - start).count();
  return out;
}

std::vector<SeriesSpec> figure_matrix(std::string_view figure) {
  const std::string name = lower(figure);
  std::vector<SeriesSpec> specs;

  if (name == "all") {
    for (const std::string& f : known_figures()) {
      if (f == "all") continue;
      const std::vector<SeriesSpec> part = figure_matrix(f);
      specs.insert(specs.end(), part.begin(), part.end());
    }
    return specs;
  }

  if (name == "fig3") {
    // Native models on the cylinder, HARVEY and proxy (hardware panels).
    for (const sys::SystemId id : sys::kAllSystems) {
      const sys::SystemSpec& spec = sys::system_spec(id);
      specs.push_back({id, spec.native_model, sim::App::kHarvey,
                       WorkloadKind::kCylinderBisection});
      specs.push_back({id, spec.native_model, sim::App::kProxy,
                       WorkloadKind::kCylinderBisection});
    }
    return specs;
  }
  if (name == "fig4") {
    // Native models on the aorta, HARVEY only.
    for (const sys::SystemId id : sys::kAllSystems)
      specs.push_back({id, sys::system_spec(id).native_model,
                       sim::App::kHarvey, WorkloadKind::kAorta});
    return specs;
  }
  if (name == "fig5") {
    // Every backend on the cylinder, both apps (software panels).
    for (const sys::SystemId id : sys::kAllSystems)
      for (const sim::App app : {sim::App::kHarvey, sim::App::kProxy})
        for (const hal::Model model : sys::system_spec(id).harvey_models)
          specs.push_back({id, model, app, WorkloadKind::kCylinderBisection});
    return specs;
  }
  if (name == "fig6") {
    // Every backend on the aorta, HARVEY only.
    for (const sys::SystemId id : sys::kAllSystems)
      for (const hal::Model model : sys::system_spec(id).harvey_models)
        specs.push_back({id, model, sim::App::kHarvey, WorkloadKind::kAorta});
    return specs;
  }
  if (name == "fig7") {
    // Runtime composition: native HARVEY aorta on the Fig. 7 systems.
    for (const sys::SystemId id :
         {sys::SystemId::kPolaris, sys::SystemId::kCrusher,
          sys::SystemId::kSunspot})
      specs.push_back({id, sys::system_spec(id).native_model,
                       sim::App::kHarvey, WorkloadKind::kAorta});
    return specs;
  }

  HEMO_EXPECTS(false && "unknown figure name");
  return specs;
}

std::vector<std::string> known_figures() {
  return {"fig3", "fig4", "fig5", "fig6", "fig7", "all"};
}

bool parse_system(std::string_view text, sys::SystemId* out) {
  const std::string name = lower(text);
  for (const sys::SystemId id : sys::kAllSystems)
    if (name == system_token(id)) {
      *out = id;
      return true;
    }
  return false;
}

bool parse_model(std::string_view text, hal::Model* out) {
  const std::string name = lower(text);
  for (const hal::Model m : hal::kAllModels)
    if (name == lower(hal::name_of(m))) {
      *out = m;
      return true;
    }
  return false;
}

bool parse_app(std::string_view text, sim::App* out) {
  const std::string name = lower(text);
  if (name == "harvey") {
    *out = sim::App::kHarvey;
    return true;
  }
  if (name == "proxy" || name == "proxyapp") {
    *out = sim::App::kProxy;
    return true;
  }
  return false;
}

bool parse_workload(std::string_view text, WorkloadKind* out) {
  const std::string name = lower(text);
  if (name == "cylinder" || name == "cylinder-bisection") {
    *out = WorkloadKind::kCylinderBisection;
    return true;
  }
  if (name == "cylinder-slab") {
    *out = WorkloadKind::kCylinderSlab;
    return true;
  }
  if (name == "aorta") {
    *out = WorkloadKind::kAorta;
    return true;
  }
  return false;
}

bool parse_series(std::string_view text, SeriesSpec* out) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == ':') {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  if (parts.size() < 2 || parts.size() > 4) return false;

  SeriesSpec spec;
  if (!parse_system(parts[0], &spec.system)) return false;
  if (!parse_model(parts[1], &spec.model)) return false;
  if (parts.size() >= 3 && !parse_app(parts[2], &spec.app)) return false;
  if (parts.size() >= 4 && !parse_workload(parts[3], &spec.workload))
    return false;
  *out = spec;
  return true;
}

void write_campaign_csv(const CampaignResult& result, std::ostream& os) {
  Table table({"campaign", "system", "model", "app", "workload", "devices",
               "size_multiplier", "status", "attempts", "mflups",
               "iteration_s", "predicted_mflups", "survivors",
               "failed_ranks", "recovery_step", "sdc_detected",
               "sdc_false_positive", "sdc_quarantines", "error"});
  for (const SeriesResult& series : result.series) {
    const sys::SystemSpec& sys_spec = sys::system_spec(series.spec.system);
    for (const PointResult& p : series.points) {
      const bool ok = p.ok();
      const bool degraded = p.degraded();
      // Degraded points report the devices that finished the work; clean
      // points finished on everything they started with.
      const int survivors =
          degraded ? p.shrink->survivor_count : p.schedule.devices;
      table.add_row(
          {result.name, sys_spec.name, std::string(hal::name_of(series.spec.model)),
           std::string(app_name(series.spec.app)),
           std::string(workload_name(series.spec.workload)),
           std::to_string(p.schedule.devices),
           std::to_string(p.schedule.size_multiplier),
           !ok ? (p.failure->timed_out ? "timeout" : "failed")
               : (degraded ? "degraded" : "ok"),
           std::to_string(p.attempts), ok ? fmt_double(p.sim.mflups) : "",
           ok ? fmt_double(p.sim.iteration_s) : "",
           ok ? fmt_double(p.prediction.mflups) : "",
           ok ? std::to_string(survivors) : "",
           degraded ? join_ranks(p.shrink->failed_ranks) : "",
           degraded ? std::to_string(p.shrink->recovery_step) : "",
           p.sdc ? std::to_string(p.sdc->detected) : "",
           p.sdc ? std::to_string(p.sdc->false_positives) : "",
           p.sdc ? std::to_string(p.sdc->quarantines) : "",
           ok ? "" : p.failure->message});
    }
  }
  table.print_csv(os);
}

void write_campaign_json(const CampaignResult& result, std::ostream& os) {
  os << "{\n";
  os << "  \"campaign\": \"" << json_escape(result.name) << "\",\n";
  os << "  \"workers\": " << result.workers << ",\n";
  os << "  \"wall_s\": " << fmt_double(result.wall_s) << ",\n";
  os << "  \"points\": " << result.total_points() << ",\n";
  os << "  \"failed_points\": " << result.failed_points() << ",\n";
  os << "  \"degraded_points\": " << result.degraded_points() << ",\n";
  os << "  \"sdc_detected_total\": " << result.sdc_detected_total() << ",\n";
  os << "  \"cache\": {\"hits\": " << result.cache.hits
     << ", \"misses\": " << result.cache.misses
     << ", \"evictions\": " << result.cache.evictions
     << ", \"entries\": " << result.cache.entries
     << ", \"hit_rate\": " << fmt_double(result.cache.hit_rate());
  if (!result.cache_shards.empty()) {
    os << ",\n    \"shards\": [";
    for (std::size_t i = 0; i < result.cache_shards.size(); ++i) {
      const ArtifactCache::Stats& shard = result.cache_shards[i];
      os << (i ? ",\n               " : "") << "{\"hits\": " << shard.hits
         << ", \"misses\": " << shard.misses
         << ", \"evictions\": " << shard.evictions
         << ", \"entries\": " << shard.entries << "}";
    }
    os << "]";
  }
  os << "},\n";
  os << "  \"executor\": {\"submitted\": " << result.executor.submitted
     << ", \"executed\": " << result.executor.executed
     << ", \"stolen\": " << result.executor.stolen
     << ", \"queue_high_watermark\": "
     << result.executor.queue_high_watermark << "},\n";
  if (!result.traffic_audit_json.empty())
    os << "  \"traffic_audit\": " << result.traffic_audit_json << ",\n";
  os << "  \"series\": [\n";
  for (std::size_t s = 0; s < result.series.size(); ++s) {
    const SeriesResult& series = result.series[s];
    os << "    {\"system\": \""
       << json_escape(sys::system_spec(series.spec.system).name)
       << "\", \"model\": \"" << hal::name_of(series.spec.model)
       << "\", \"app\": \"" << app_name(series.spec.app)
       << "\", \"workload\": \"" << workload_name(series.spec.workload)
       << "\",\n     \"points\": [\n";
    for (std::size_t k = 0; k < series.points.size(); ++k) {
      const PointResult& p = series.points[k];
      os << "      {\"devices\": " << p.schedule.devices
         << ", \"size_multiplier\": " << p.schedule.size_multiplier
         << ", \"attempts\": " << p.attempts;
      if (p.ok()) {
        os << ", \"status\": \"" << (p.degraded() ? "degraded" : "ok")
           << "\", \"mflups\": " << fmt_double(p.sim.mflups)
           << ", \"iteration_s\": " << fmt_double(p.sim.iteration_s)
           << ", \"predicted_mflups\": " << fmt_double(p.prediction.mflups);
        if (p.degraded()) {
          os << ", \"shrink\": {\"failed_ranks\": [";
          for (std::size_t r = 0; r < p.shrink->failed_ranks.size(); ++r)
            os << (r ? ", " : "") << p.shrink->failed_ranks[r];
          os << "], \"recovery_step\": " << p.shrink->recovery_step
             << ", \"survivor_count\": " << p.shrink->survivor_count << "}";
        }
        if (p.sdc.has_value()) {
          os << ", \"sdc\": {\"detected\": " << p.sdc->detected
             << ", \"false_positives\": " << p.sdc->false_positives
             << ", \"quarantines\": " << p.sdc->quarantines << "}";
        }
      } else {
        os << ", \"status\": \""
           << (p.failure->timed_out ? "timeout" : "failed")
           << "\", \"error\": \"" << json_escape(p.failure->message) << "\"";
      }
      os << "}" << (k + 1 < series.points.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (s + 1 < result.series.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace hemo::rt
