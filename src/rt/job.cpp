#include "rt/job.hpp"

#include <algorithm>
#include <cmath>

namespace hemo::rt {

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int attempt) {
  if (policy.initial_backoff.count() <= 0)
    return std::chrono::milliseconds{0};
  const double scale =
      std::pow(std::max(1.0, policy.backoff_multiplier),
               static_cast<double>(std::max(0, attempt - 1)));
  const double delay_ms =
      static_cast<double>(policy.initial_backoff.count()) * scale;
  const auto capped = std::min<double>(
      delay_ms, static_cast<double>(policy.max_backoff.count()));
  return std::chrono::milliseconds{
      static_cast<std::chrono::milliseconds::rep>(capped)};
}

std::string describe(const JobFailure& failure) {
  std::string out = "job '" + failure.job + "' ";
  out += failure.cancelled ? "was cancelled"
                           : (failure.timed_out ? "timed out" : "failed");
  out += " after " + std::to_string(failure.attempts) + " attempt";
  if (failure.attempts != 1) out += "s";
  if (!failure.message.empty()) out += ": " + failure.message;
  return out;
}

}  // namespace hemo::rt
