#pragma once
// ArtifactCache: a memoizing, thread-safe cache for the expensive
// intermediates of a campaign — geometry voxelizations (sim::Workload),
// decompositions and halo-exchange plans (sim::RankStats) — keyed by
// canonical parameter strings.
//
// Semantics:
//   - get_or_compute<T>(key, make) returns the cached artifact for `key`,
//     computing it with `make` on first use.  Concurrent callers of the
//     same key share one in-flight computation (the others block on it);
//     callers of distinct keys compute in parallel.
//   - Every call is counted as a hit (entry present or in flight) or a
//     miss (this caller computed it); completed entries beyond the
//     capacity are dropped least-recently-used and counted as evictions.
//   - A compute that throws is not cached: in-flight waiters observe the
//     same exception, later callers recompute.
//
// Sharding: the cache is split into `shards` lock-striped segments, each
// with its own mutex, map, LRU clock and counters; a key lives in the
// shard its hash selects.  With the default single shard the semantics
// are exactly the original global-mutex cache (one LRU order over the
// whole capacity).  With N > 1 shards, lookups of keys in different
// shards never contend on a lock — the configuration the multi-tenant
// serving tier (hemo::serve) uses so the cache stops being a global
// choke point — at the cost of LRU eviction becoming per-shard (each
// shard evicts over its own capacity/N slice).
//
// Artifacts are shared_ptrs, so an evicted artifact stays alive for the
// jobs still holding it.  Type safety across callers of one key is
// enforced with a type_index check (mixing types on a key is a contract
// violation, not a silent cast).

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hemo::rt {

class ArtifactCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;  // resident entries when stats() was taken

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  explicit ArtifactCache(std::size_t capacity = 256, std::size_t shards = 1);

  /// Returns the artifact for `key`, computing it with `make` (which must
  /// return std::shared_ptr<T>) if absent.  Blocks if another thread is
  /// already computing the same key.
  template <class T, class Make>
  std::shared_ptr<T> get_or_compute(const std::string& key, Make&& make) {
    // const is stripped at the type-erasure boundary only; the typed
    // pointer handed back re-applies the caller's T (const included).
    std::shared_ptr<void> erased =
        lookup(key, std::type_index(typeid(T)), [&]() -> std::shared_ptr<void> {
          return std::static_pointer_cast<void>(
              std::const_pointer_cast<std::remove_const_t<T>>(
                  std::shared_ptr<T>(std::forward<Make>(make)())));
        });
    return std::static_pointer_cast<T>(std::move(erased));
  }

  /// Aggregate counters across every shard.
  Stats stats() const;
  /// Per-shard counters, in shard order (size() == shard_count()).
  std::vector<Stats> shard_stats() const;

  // immutable after construction: shard layout is fixed by the constructor
  std::size_t capacity() const { return shard_capacity_ * shards_.size(); }
  // immutable after construction: shard layout is fixed by the constructor
  std::size_t shard_count() const { return shards_.size(); }
  void clear();

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<void>> value;
    std::type_index type;
    std::uint64_t last_used = 0;
    bool ready = false;  // producing future has resolved successfully
  };

  /// One lock stripe: an independent map with its own LRU clock.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::uint64_t tick = 0;
    Stats stats;
  };

  Shard& shard_of(const std::string& key);
  std::shared_ptr<void> lookup(
      const std::string& key, std::type_index type,
      const std::function<std::shared_ptr<void>()>& make);
  void evict_excess_locked(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_capacity_;
};

/// Joins key parts with '/' into the canonical "a/b/c" cache-key spelling.
std::string canonical_key(std::initializer_list<std::string> parts);

}  // namespace hemo::rt
