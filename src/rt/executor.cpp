#include "rt/executor.hpp"

#include <algorithm>

#include "base/contracts.hpp"

namespace hemo::rt {

namespace {

// Identifies the executor whose worker is running on this thread, so
// worker-submitted tasks can bypass the queue bound (see header).
thread_local const Executor* tls_executor = nullptr;

}  // namespace

Executor::Executor(ExecutorOptions options)
    : capacity_(std::max<std::size_t>(1, options.queue_capacity)) {
  int workers = options.workers;
  if (workers <= 0)
    workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers <= 0) workers = 1;

  deques_.resize(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < static_cast<std::size_t>(workers); ++i)
    threads_.emplace_back([this, i] {
      tls_executor = this;
      worker_loop(i);
    });
}

Executor::~Executor() { shutdown(); }

void Executor::submit(Task task) {
  HEMO_EXPECTS(task != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  HEMO_EXPECTS(!stop_);
  if (tls_executor != this)
    cv_space_.wait(lock, [&] { return queued_ < capacity_ || stop_; });
  HEMO_EXPECTS(!stop_);

  deques_[next_deque_].push_back(std::move(task));
  next_deque_ = (next_deque_ + 1) % deques_.size();
  ++queued_;
  ++pending_;
  ++stats_.submitted;
  stats_.queue_high_watermark =
      std::max<std::uint64_t>(stats_.queue_high_watermark, queued_);
  cv_work_.notify_one();
}

// requires mu_ held (worker_loop and shutdown drain under the pool lock)
bool Executor::pop_task(std::size_t self, Task* out) {
  std::deque<Task>& own = deques_[self];
  if (!own.empty()) {
    *out = std::move(own.back());  // newest of our own work
    own.pop_back();
  } else {
    // Steal path: oldest task of the longest other deque.
    std::size_t victim = deques_.size();
    std::size_t longest = 0;
    for (std::size_t i = 0; i < deques_.size(); ++i) {
      if (i == self) continue;
      if (deques_[i].size() > longest) {
        longest = deques_[i].size();
        victim = i;
      }
    }
    if (victim == deques_.size()) return false;
    *out = std::move(deques_[victim].front());
    deques_[victim].pop_front();
    ++stats_.stolen;
  }
  --queued_;
  cv_space_.notify_one();
  return true;
}

void Executor::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (pop_task(self, &task)) {
      lock.unlock();
      task();
      task = nullptr;  // release captures before reporting completion
      lock.lock();
      ++stats_.executed;
      --pending_;
      if (pending_ == 0) cv_idle_.notify_all();
      continue;
    }
    if (stop_) return;
    cv_work_.wait(lock);
  }
}

void Executor::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return pending_ == 0; });
}

void Executor::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
}

Executor::Stats Executor::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hemo::rt
