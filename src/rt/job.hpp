#pragma once
// Fault-tolerant job wrapper for the campaign runtime: bounded retry with
// exponential backoff, a per-job wall-clock timeout, and structured
// failure capture so one faulted job degrades a campaign report instead
// of aborting it.
//
// Timeout model: jobs run in-process and cannot be killed mid-flight, so
// the timeout is cooperative — an attempt that returns after its deadline
// is discarded and classified as timed out (and retried like any other
// failure).  This matches the runtime's jobs, which are short pure
// computations; a timeout here means "this parameter point is pathological,
// keep the campaign moving", not "reclaim a wedged thread".

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace hemo::rt {

struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{100};
};

/// Delay before the retry that follows failed attempt number `attempt`
/// (1-based): initial_backoff * multiplier^(attempt-1), capped.
std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int attempt);

struct JobOptions {
  std::string name = "job";
  std::chrono::milliseconds timeout{0};  // 0 = unlimited
  RetryPolicy retry;
  /// Cooperative cancellation: consulted before every attempt (so a
  /// multi-attempt job stops retrying the moment its requester goes
  /// away — e.g. a serve request whose deadline expired).  Returning true
  /// fails the job with JobFailure::cancelled set; an attempt already in
  /// flight is not interrupted, matching the cooperative timeout model.
  std::function<bool()> cancelled;
};

struct JobFailure {
  std::string job;
  int attempts = 0;
  bool timed_out = false;
  std::string message;
  bool cancelled = false;  // stopped by JobOptions::cancelled, not by error
};

/// "job 'name' failed after N attempts: message" (or "timed out ...").
std::string describe(const JobFailure& failure);

/// Cross-attempt checkpoint handle for resumable jobs.  A body that
/// periodically checkpoints (e.g. DistributedSolver::save_checkpoint)
/// record()s the file here; when a later attempt of the same job starts,
/// has_checkpoint() tells it whether to restore and resume instead of
/// recomputing from step zero.  The slot is plain bookkeeping shared
/// across the attempts of one run_job call — the checkpoint files
/// themselves are written and validated by the caller.
struct CheckpointSlot {
  std::string path;        // last recorded checkpoint file
  std::int64_t step = -1;  // step it was taken at; -1 = none recorded

  bool has_checkpoint() const { return step >= 0; }
  void record(std::string checkpoint_path, std::int64_t at_step) {
    path = std::move(checkpoint_path);
    step = at_step;
  }
  void clear() {
    path.clear();
    step = -1;
  }
};

template <class T>
struct JobOutcome {
  std::optional<T> value;
  std::optional<JobFailure> failure;
  int attempts = 0;
  double elapsed_s = 0.0;  // all attempts + backoff sleeps

  bool ok() const { return value.has_value(); }
};

/// Runs `body(attempt)` (attempt is 1-based) up to retry.max_attempts
/// times, sleeping backoff_delay() between attempts.  An attempt fails by
/// throwing or by exceeding options.timeout; the last failure is captured
/// in the outcome.  Exceptions never escape.
template <class T, class Body>
JobOutcome<T> run_job(const JobOptions& options, Body&& body) {
  using clock = std::chrono::steady_clock;
  const int max_attempts = options.retry.max_attempts > 0
                               ? options.retry.max_attempts
                               : 1;
  JobOutcome<T> out;
  const clock::time_point start = clock::now();
  std::string last_message;
  bool last_timed_out = false;
  bool was_cancelled = false;

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (options.cancelled && options.cancelled()) {
      was_cancelled = true;
      last_timed_out = false;
      last_message = "cancelled before attempt " + std::to_string(attempt);
      break;
    }
    out.attempts = attempt;
    const clock::time_point attempt_start = clock::now();
    try {
      T value = body(attempt);
      const auto attempt_elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              clock::now() - attempt_start);
      if (options.timeout.count() > 0 && attempt_elapsed > options.timeout) {
        last_timed_out = true;
        last_message = "attempt took " + std::to_string(attempt_elapsed.count()) +
                       " ms, timeout " + std::to_string(options.timeout.count()) +
                       " ms";
      } else {
        out.value = std::move(value);
        break;
      }
    } catch (const std::exception& e) {
      last_timed_out = false;
      last_message = e.what();
    } catch (...) {
      last_timed_out = false;
      last_message = "unknown exception";
    }
    if (attempt < max_attempts)
      std::this_thread::sleep_for(backoff_delay(options.retry, attempt));
  }

  if (!out.value)
    out.failure = JobFailure{options.name, out.attempts, last_timed_out,
                             last_message, was_cancelled};
  out.elapsed_s =
      std::chrono::duration<double>(clock::now() - start).count();
  return out;
}

}  // namespace hemo::rt
