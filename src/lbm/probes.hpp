#pragma once
// Flow probes and dimensionless numbers: the quantities a hemodynamics
// campaign actually monitors (flow rates, pressure drops) and the
// similarity parameters (Reynolds, Womersley) used to match lattice
// simulations to physiological conditions.

#include <cmath>

#include "base/contracts.hpp"
#include "lbm/solver.hpp"

namespace hemo::lbm {

/// Mass flux (sum of rho*u_z) through the axial slice z.
double slice_mass_flux(const Solver& solver, std::int32_t z);

/// Mean density over the axial slice z; rho relates to pressure via
/// p = cs^2 rho in lattice units.
double slice_mean_density(const Solver& solver, std::int32_t z);

/// Pressure drop between two axial slices, in lattice units
/// (cs^2 * (rho(z0) - rho(z1))).
double pressure_drop(const Solver& solver, std::int32_t z0, std::int32_t z1);

/// Total momentum: sum over fluid points of rho * u, with the Guo
/// half-force correction included in u.  Under body-force driving in a
/// closed (periodic) geometry, the z-component grows by one force impulse
/// per bulk point per step until wall friction balances it, while mass
/// stays constant to rounding — the invariants the resilience subsystem's
/// mass-drift guard (RS002) is calibrated against.
Vec3 total_momentum(const Solver& solver);

/// Reynolds number Re = U L / nu.
constexpr double reynolds_number(double velocity, double length,
                                 double viscosity) {
  return velocity * length / viscosity;
}

/// Womersley number alpha = R sqrt(omega / nu) with omega = 2 pi / T;
/// the pulsatility parameter of arterial flow (aorta: alpha ~ 10-20).
inline double womersley_number(double radius, double period_steps,
                               double viscosity) {
  HEMO_EXPECTS(period_steps > 0.0 && viscosity > 0.0);
  constexpr double kPi = 3.14159265358979323846;
  return radius * std::sqrt(2.0 * kPi / (period_steps * viscosity));
}

}  // namespace hemo::lbm
