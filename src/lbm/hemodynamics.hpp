#pragma once
// Hemodynamic analysis utilities on top of the LBM core: the pulsatile
// cardiac inflow waveform driving the paper's "realistic, pulsatile
// hemodynamic workflow" (Fig. 2a), and the deviatoric stress tensor from
// which wall shear stress — the clinically relevant output of blood-flow
// simulation — is computed.

#include <array>
#include <cmath>

#include "base/contracts.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/kernels.hpp"

namespace hemo::lbm {

/// A one-parameter cardiac cycle: a raised-cosine systolic pulse over the
/// first third of the period on top of a diastolic baseline.  Everything
/// is in lattice units; peak_velocity is the systolic maximum of the
/// inlet plug velocity.
class CardiacWaveform {
 public:
  CardiacWaveform(int period_steps, double peak_velocity,
                  double diastolic_fraction = 0.2)
      : period_(period_steps),
        peak_(peak_velocity),
        baseline_(peak_velocity * diastolic_fraction) {
    HEMO_EXPECTS(period_steps > 0);
    HEMO_EXPECTS(peak_velocity > 0.0 && peak_velocity < 0.3);
    HEMO_EXPECTS(diastolic_fraction >= 0.0 && diastolic_fraction < 1.0);
  }

  int period() const { return period_; }
  double peak() const { return peak_; }
  double baseline() const { return baseline_; }

  /// Inlet velocity at a time step (periodic).
  double at(std::int64_t step) const {
    const double phase =
        static_cast<double>(step % period_) / static_cast<double>(period_);
    if (phase >= 1.0 / 3.0) return baseline_;
    // Raised cosine over the systolic window [0, T/3): zero slope at both
    // ends, maximum at T/6.
    constexpr double kPi = 3.14159265358979323846;
    const double s = 0.5 * (1.0 - std::cos(6.0 * kPi * phase));
    return baseline_ + (peak_ - baseline_) * s;
  }

  /// Cycle-averaged inlet velocity.
  double mean() const {
    double sum = 0.0;
    for (int s = 0; s < period_; ++s) sum += at(s);
    return sum / period_;
  }

 private:
  int period_;
  double peak_;
  double baseline_;
};

/// Symmetric 3x3 tensor in Voigt-like order: xx, yy, zz, xy, xz, yz.
using StressTensor = std::array<double, 6>;

/// Deviatoric (viscous) stress from the non-equilibrium part of the
/// distributions: sigma_ab = -(1 - omega/2) sum_q f^neq_q c_qa c_qb.
/// For Poiseuille flow this recovers mu * du/dr on the off-diagonals.
inline StressTensor deviatoric_stress(const double f[kQ], double omega,
                                      double fx = 0.0, double fy = 0.0,
                                      double fz = 0.0) {
  const Moments m = moments_of(f, fx, fy, fz);
  double pi[6] = {0, 0, 0, 0, 0, 0};
  for (int q = 0; q < kQ; ++q) {
    const double fneq = f[q] - equilibrium(q, m.rho, m.ux, m.uy, m.uz);
    const double cx = c(q, 0), cy = c(q, 1), cz = c(q, 2);
    pi[0] += fneq * cx * cx;
    pi[1] += fneq * cy * cy;
    pi[2] += fneq * cz * cz;
    pi[3] += fneq * cx * cy;
    pi[4] += fneq * cx * cz;
    pi[5] += fneq * cy * cz;
  }
  const double prefactor = -(1.0 - 0.5 * omega);
  StressTensor sigma;
  for (int k = 0; k < 6; ++k) sigma[static_cast<std::size_t>(k)] =
      prefactor * pi[k];
  return sigma;
}

/// Magnitude of the traction tangential stress proxy: the Frobenius norm
/// of the off-diagonal components (a practical wall-shear indicator on
/// voxel walls where the exact surface normal is not resolved).
inline double shear_magnitude(const StressTensor& sigma) {
  return std::sqrt(sigma[3] * sigma[3] + sigma[4] * sigma[4] +
                   sigma[5] * sigma[5]);
}

}  // namespace hemo::lbm
