#include "lbm/probes.hpp"

namespace hemo::lbm {

double slice_mass_flux(const Solver& solver, std::int32_t z) {
  double flux = 0.0;
  bool found = false;
  for (PointIndex i = 0; i < solver.size(); ++i) {
    if (solver.lattice().coord(i).z != z) continue;
    const Moments m = solver.moments(i);
    flux += m.rho * m.uz;
    found = true;
  }
  HEMO_EXPECTS(found);  // probing an empty slice is a caller bug
  return flux;
}

double slice_mean_density(const Solver& solver, std::int32_t z) {
  double rho = 0.0;
  std::int64_t count = 0;
  for (PointIndex i = 0; i < solver.size(); ++i) {
    if (solver.lattice().coord(i).z != z) continue;
    rho += solver.moments(i).rho;
    ++count;
  }
  HEMO_EXPECTS(count > 0);
  return rho / static_cast<double>(count);
}

double pressure_drop(const Solver& solver, std::int32_t z0, std::int32_t z1) {
  return kCs2 *
         (slice_mean_density(solver, z0) - slice_mean_density(solver, z1));
}

Vec3 total_momentum(const Solver& solver) {
  Vec3 p;
  for (PointIndex i = 0; i < solver.size(); ++i) {
    const Moments m = solver.moments(i);
    p.x += m.rho * m.ux;
    p.y += m.rho * m.uy;
    p.z += m.rho * m.uz;
  }
  return p;
}

}  // namespace hemo::lbm
