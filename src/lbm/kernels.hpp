#pragma once
// Kernel bodies for the fused stream-collide update and its ablation
// variants.  Bodies are expressed as per-point inline functions over raw
// pointers so the same code can be launched through every programming-model
// dialect in hemo::hal (mini-CUDA, mini-HIP, mini-SYCL, mini-Kokkos), as the
// paper does with HARVEY's kernels across CUDA/HIP/SYCL/Kokkos.
//
// Storage layout is structure-of-arrays (q-major): value (q, i) lives at
// f[q * n + i].  Two propagation patterns are implemented (see
// lbm/propagation.hpp):
//
//   Pull (f_in/f_out): direction q of point i is gathered from the
//   upstream neighbor adjacency[q * n + i]; a missing neighbor
//   (kSolidNeighbor) applies halfway bounce-back.  Each step reads one
//   full array and writes a second.
//
//   AA in-place (f): a single array updated in place.  Even steps are
//   purely local — each point reads its straight slots (which hold the
//   streamed-in pre-collision populations), collides, and writes the
//   results to its opposite slots.  Odd steps gather direction q from the
//   upstream neighbor's opposite slot, collide, and scatter direction q to
//   the downstream neighbor's straight slot (or bounce it into the point's
//   own opposite slot at walls), re-establishing the even-step invariant.
//   Per odd step every slot is written by exactly one point and every slot
//   a point reads is touched by no other point, so the update is race-free
//   under any launch chunking without double buffering.
//
// Inlet/outlet points complete their unknown populations with the Zou-He
// (non-equilibrium bounce-back) construction before colliding; both
// patterns and both layouts share one boundary-completion helper so the
// variants cannot drift.

#include <cstdint>

#include "base/types.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::lbm {

/// Everything a stream-collide launch needs, as plain pointers: this struct
/// is the kernel ABI shared by all hal dialects.
struct KernelArgs {
  const double* f_in = nullptr;    // pull: post-collision values of step t-1
  double* f_out = nullptr;         // pull: post-collision values of step t
  double* f = nullptr;             // AA: the single in-place array
  const PointIndex* adjacency = nullptr;  // kQ * n, q-major, pull neighbors
  const std::uint8_t* node_type = nullptr;  // NodeType per point
  std::int64_t n = 0;              // number of fluid points
  double omega = 1.0;              // BGK relaxation rate (1/tau)
  double force_x = 0.0, force_y = 0.0, force_z = 0.0;  // body force (Guo)
  double inlet_velocity = 0.0;     // prescribed u_z at velocity inlets
  double outlet_density = 1.0;     // prescribed rho at pressure outlets
};

struct Moments {
  double rho = 0.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
};

/// Density and (force-corrected) velocity moments of one distribution set.
inline Moments moments_of(const double f[kQ], double fx, double fy, double fz) {
  Moments m;
  for (int q = 0; q < kQ; ++q) {
    m.rho += f[q];
    m.ux += f[q] * c(q, 0);
    m.uy += f[q] * c(q, 1);
    m.uz += f[q] * c(q, 2);
  }
  // Guo forcing: macroscopic velocity includes half the force impulse.
  m.ux = (m.ux + 0.5 * fx) / m.rho;
  m.uy = (m.uy + 0.5 * fy) / m.rho;
  m.uz = (m.uz + 0.5 * fz) / m.rho;
  return m;
}

/// BGK relaxation with the Guo forcing term, writing post-collision values.
inline void bgk_collide(const double f[kQ], const Moments& m, double omega,
                        double fx, double fy, double fz, double out[kQ]) {
  const double prefactor = 1.0 - 0.5 * omega;
  for (int q = 0; q < kQ; ++q) {
    const double feq = equilibrium(q, m.rho, m.ux, m.uy, m.uz);
    const double cu = c(q, 0) * m.ux + c(q, 1) * m.uy + c(q, 2) * m.uz;
    const double cf = c(q, 0) * fx + c(q, 1) * fy + c(q, 2) * fz;
    const double uf = m.ux * fx + m.uy * fy + m.uz * fz;
    const double source =
        prefactor * kWeights[q] * (3.0 * (cf - uf) + 9.0 * cu * cf);
    out[q] = f[q] - omega * (f[q] - feq) + source;
  }
}

namespace detail {

/// True when direction q at a node of this type is an unknown population
/// when its upstream neighbor is missing: it points in through an open
/// inlet/outlet face rather than a wall, so bounce-back does not apply and
/// the Zou-He construction must supply it.
inline bool boundary_unknown(NodeType type, int q) {
  const bool zmin_unknown = (type == NodeType::kVelocityInlet ||
                             type == NodeType::kPressureOutletLow) &&
                            c(q, 2) > 0;
  const bool zmax_unknown = type == NodeType::kPressureOutlet && c(q, 2) < 0;
  return zmin_unknown || zmax_unknown;
}

/// Completes unknown populations with non-equilibrium bounce-back against
/// target moments (rho, u), then repairs transverse momentum exactly using
/// the +/- diagonal pair (qa carries +e_axis, qb carries -e_axis).  The
/// repair is only applied when both pair members are unknown (true on face
/// interiors; corner points keep the plain NEBB value).
inline void zou_he_complete(double f[kQ], std::uint32_t unknown, double rho,
                            double ux, double uy, double uz, int qa_x, int qb_x,
                            int qa_y, int qb_y) {
  for (int q = 0; q < kQ; ++q) {
    if (!(unknown & (1u << q))) continue;
    const int qo = opposite(q);
    f[q] = f[qo] + equilibrium(q, rho, ux, uy, uz) -
           equilibrium(qo, rho, ux, uy, uz);
  }
  const auto both_unknown = [unknown](int qa, int qb) {
    return (unknown & (1u << qa)) && (unknown & (1u << qb));
  };
  if (both_unknown(qa_x, qb_x)) {
    double mx = 0.0;
    for (int q = 0; q < kQ; ++q) mx += f[q] * c(q, 0);
    const double err = 0.5 * (mx - rho * ux);
    f[qa_x] -= err * c(qa_x, 0);
    f[qb_x] -= err * c(qb_x, 0);
  }
  if (both_unknown(qa_y, qb_y)) {
    double my = 0.0;
    for (int q = 0; q < kQ; ++q) my += f[q] * c(q, 1);
    const double err = 0.5 * (my - rho * uy);
    f[qa_y] -= err * c(qa_y, 1);
    f[qb_y] -= err * c(qb_y, 1);
  }
}

/// Zou-He boundary completion dispatched by node type.  Shared by the
/// pull-SoA, AoS-ablation and AA kernel variants — the per-face target
/// moments (density from the z-momentum balance at velocity inlets,
/// velocity from the prescribed density at pressure outlets, with the
/// normal flipped on z-min faces) are written once here so the layouts
/// cannot drift.  Node types that never produce unknown populations
/// (boundary_unknown above) complete nothing.
inline void complete_boundary(NodeType type, std::uint32_t unknown,
                              double inlet_velocity, double outlet_density,
                              double f[kQ]) {
  if (unknown == 0) return;
  if (type == NodeType::kVelocityInlet) {
    // Prescribed u = (0, 0, w); unknowns have c_z > 0.  Density follows
    // from the z-momentum balance: rho = (S_0 + 2 S_-) / (1 - w).
    double s0 = 0.0, sm = 0.0;
    for (int q = 0; q < kQ; ++q) {
      if (c(q, 2) == 0) s0 += f[q];
      if (c(q, 2) < 0) sm += f[q];
    }
    const double w = inlet_velocity;
    const double rho = (s0 + 2.0 * sm) / (1.0 - w);
    zou_he_complete(f, unknown, rho, 0.0, 0.0, w,
                    /*+x,+z*/ 11, /*-x,+z*/ 14,
                    /*+y,+z*/ 15, /*-y,+z*/ 18);
  } else if (type == NodeType::kPressureOutlet) {
    // Prescribed rho; unknowns have c_z < 0.  Outflow velocity follows
    // from the same balance with the opposite normal.
    double s0 = 0.0, sp = 0.0;
    for (int q = 0; q < kQ; ++q) {
      if (c(q, 2) == 0) s0 += f[q];
      if (c(q, 2) > 0) sp += f[q];
    }
    const double rho = outlet_density;
    const double uz = -1.0 + (s0 + 2.0 * sp) / rho;
    zou_he_complete(f, unknown, rho, 0.0, 0.0, uz,
                    /*+x,-z*/ 13, /*-x,-z*/ 12,
                    /*+y,-z*/ 17, /*-y,-z*/ 16);
  } else if (type == NodeType::kPressureOutletLow) {
    // Pressure boundary on a z-min face (outflow toward -z); unknowns have
    // c_z > 0 and the velocity follows with the normal flipped.
    double s0 = 0.0, sm = 0.0;
    for (int q = 0; q < kQ; ++q) {
      if (c(q, 2) == 0) s0 += f[q];
      if (c(q, 2) < 0) sm += f[q];
    }
    const double rho = outlet_density;
    const double uz = 1.0 - (s0 + 2.0 * sm) / rho;
    zou_he_complete(f, unknown, rho, 0.0, 0.0, uz,
                    /*+x,+z*/ 11, /*-x,+z*/ 14,
                    /*+y,+z*/ 15, /*-y,+z*/ 18);
  }
}

/// Gather step of the pull scheme for one point.  Returns a bitmask of the
/// directions left unknown (only possible on inlet/outlet faces); all other
/// missing neighbors take the halfway bounce-back value.
inline std::uint32_t gather(const KernelArgs& a, std::int64_t i,
                            NodeType type, double f[kQ]) {
  std::uint32_t unknown = 0;
  for (int q = 0; q < kQ; ++q) {
    const PointIndex up = a.adjacency[static_cast<std::size_t>(q) * a.n + i];
    if (up != kSolidNeighbor) {
      f[q] = a.f_in[static_cast<std::size_t>(q) * a.n + up];
      continue;
    }
    if (boundary_unknown(type, q)) {
      unknown |= 1u << q;
      f[q] = 0.0;
    } else {
      f[q] = a.f_in[static_cast<std::size_t>(opposite(q)) * a.n + i];
    }
  }
  return unknown;
}

}  // namespace detail

/// Gather + boundary completion: reconstructs the full pre-collision
/// distribution set of point i (pull streaming, bounce-back, Zou-He).
/// Used by the update kernels and by post-processing that needs the
/// pre-collision state (e.g. the deviatoric stress, whose
/// non-equilibrium content is destroyed by collision at omega = 1).
inline void gather_pre_collision(const KernelArgs& a, std::int64_t i,
                                 double f[kQ]) {
  const auto type = static_cast<NodeType>(a.node_type[i]);
  const std::uint32_t unknown = detail::gather(a, i, type, f);
  detail::complete_boundary(type, unknown, a.inlet_velocity,
                            a.outlet_density, f);
}

/// Fused pull-stream + boundary + BGK collide update for point i.
/// This is the performance-critical kernel of the whole application; the
/// paper's performance model charges it kQ reads + kQ writes of 8 bytes
/// per fluid point (Section 6, Eq. 1).
inline void stream_collide_point(const KernelArgs& a, std::int64_t i) {
  double f[kQ];
  gather_pre_collision(a, i, f);

  const Moments m = moments_of(f, a.force_x, a.force_y, a.force_z);
  double out[kQ];
  bgk_collide(f, m, a.omega, a.force_x, a.force_y, a.force_z, out);
  for (int q = 0; q < kQ; ++q)
    a.f_out[static_cast<std::size_t>(q) * a.n + i] = out[q];
}

/// Ablation variant: streaming only (gather + boundary completion), used by
/// the two-pass update in bench_ablation_fused.
inline void stream_point(const KernelArgs& a, std::int64_t i) {
  double f[kQ];
  gather_pre_collision(a, i, f);
  for (int q = 0; q < kQ; ++q)
    a.f_out[static_cast<std::size_t>(q) * a.n + i] = f[q];
}

/// Ablation variant: collision only, applied in place over f_out.
inline void collide_point(const KernelArgs& a, std::int64_t i) {
  double f[kQ];
  for (int q = 0; q < kQ; ++q)
    f[q] = a.f_out[static_cast<std::size_t>(q) * a.n + i];
  const Moments m = moments_of(f, a.force_x, a.force_y, a.force_z);
  double out[kQ];
  bgk_collide(f, m, a.omega, a.force_x, a.force_y, a.force_z, out);
  for (int q = 0; q < kQ; ++q)
    a.f_out[static_cast<std::size_t>(q) * a.n + i] = out[q];
}

/// Layout-ablation variant of the fused kernel: array-of-structures
/// storage, value (q, i) at f[i * kQ + q].
inline void stream_collide_point_aos(const KernelArgs& a, std::int64_t i) {
  const auto type = static_cast<NodeType>(a.node_type[i]);
  double f[kQ];
  std::uint32_t unknown = 0;
  for (int q = 0; q < kQ; ++q) {
    const PointIndex up = a.adjacency[static_cast<std::size_t>(q) * a.n + i];
    if (up != kSolidNeighbor) {
      f[q] = a.f_in[static_cast<std::size_t>(up) * kQ + q];
    } else if (detail::boundary_unknown(type, q)) {
      unknown |= 1u << q;
      f[q] = 0.0;
    } else {
      f[q] = a.f_in[static_cast<std::size_t>(i) * kQ + opposite(q)];
    }
  }
  detail::complete_boundary(type, unknown, a.inlet_velocity,
                            a.outlet_density, f);
  const Moments m = moments_of(f, a.force_x, a.force_y, a.force_z);
  double out[kQ];
  bgk_collide(f, m, a.omega, a.force_x, a.force_y, a.force_z, out);
  for (int q = 0; q < kQ; ++q)
    a.f_out[static_cast<std::size_t>(i) * kQ + q] = out[q];
}

/// AA pattern, even step: purely local.  Before the step, slot (q, i) of
/// the single array a.f holds the streamed-in pre-collision population
/// f_q(i) — bounce-back values included, because the previous odd step
/// (or the initial decanonicalization) deposited them there.  Unknown
/// inlet/outlet directions are the one exception: no neighbor writes
/// them, so they are rebuilt by Zou-He exactly as the pull gather does.
/// After colliding, result q is written to the point's own OPPOSITE slot,
/// which is where the next odd step's gather looks for it.
inline void stream_collide_point_aa_even(const KernelArgs& a, std::int64_t i) {
  const auto type = static_cast<NodeType>(a.node_type[i]);
  double f[kQ];
  std::uint32_t unknown = 0;
  if (type == NodeType::kBulk) {
    for (int q = 0; q < kQ; ++q)
      f[q] = a.f[static_cast<std::size_t>(q) * a.n + i];
  } else {
    for (int q = 0; q < kQ; ++q) {
      const PointIndex up = a.adjacency[static_cast<std::size_t>(q) * a.n + i];
      if (up == kSolidNeighbor && detail::boundary_unknown(type, q)) {
        unknown |= 1u << q;
        f[q] = 0.0;
      } else {
        f[q] = a.f[static_cast<std::size_t>(q) * a.n + i];
      }
    }
  }
  detail::complete_boundary(type, unknown, a.inlet_velocity,
                            a.outlet_density, f);
  const Moments m = moments_of(f, a.force_x, a.force_y, a.force_z);
  double out[kQ];
  bgk_collide(f, m, a.omega, a.force_x, a.force_y, a.force_z, out);
  for (int q = 0; q < kQ; ++q)
    a.f[static_cast<std::size_t>(opposite(q)) * a.n + i] = out[q];
}

/// AA pattern, odd step: gather, collide, scatter — all against the same
/// single array.  Direction q is gathered from the upstream neighbor's
/// opposite slot (where the even step left it); a missing upstream reads
/// the bounce-back value from the point's own straight slot.  After
/// colliding, result q is scattered to the downstream neighbor's straight
/// slot; a missing downstream bounces it into the point's own opposite
/// slot.  Every slot this point reads or writes is touched by this point
/// alone, and the full gather precedes the first scatter, so the update
/// is bit-deterministic under any parallel chunking.
inline void stream_collide_point_aa_odd(const KernelArgs& a, std::int64_t i) {
  const auto type = static_cast<NodeType>(a.node_type[i]);
  std::int64_t up[kQ];
  double f[kQ];
  std::uint32_t unknown = 0;
  for (int q = 0; q < kQ; ++q)
    up[q] = a.adjacency[static_cast<std::size_t>(q) * a.n + i];
  for (int q = 0; q < kQ; ++q) {
    const std::int64_t u = up[q];
    if (u != kSolidNeighbor) {
      f[q] = a.f[static_cast<std::size_t>(opposite(q)) * a.n + u];
    } else if (detail::boundary_unknown(type, q)) {
      unknown |= 1u << q;
      f[q] = 0.0;
    } else {
      f[q] = a.f[static_cast<std::size_t>(q) * a.n + i];
    }
  }
  detail::complete_boundary(type, unknown, a.inlet_velocity,
                            a.outlet_density, f);
  const Moments m = moments_of(f, a.force_x, a.force_y, a.force_z);
  double out[kQ];
  bgk_collide(f, m, a.omega, a.force_x, a.force_y, a.force_z, out);
  for (int q = 0; q < kQ; ++q) {
    const std::int64_t down = up[opposite(q)];
    if (down != kSolidNeighbor) {
      a.f[static_cast<std::size_t>(q) * a.n + down] = out[q];
    } else {
      a.f[static_cast<std::size_t>(opposite(q)) * a.n + i] = out[q];
    }
  }
}

}  // namespace hemo::lbm
